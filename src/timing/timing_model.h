#pragma once

#include <set>

#include "src/dbms/federation.h"
#include "src/dbms/run_trace.h"

namespace xdb {

/// \brief Modelled execution time of a recorded run (DESIGN.md §5).
struct TimingBreakdown {
  double total = 0;           // modelled end-to-end seconds
  double compute_only = 0;    // same run with a free network ("localized"
                              // tables, the paper's white bars)
  double transfer_share = 0;  // total - compute_only (the shaded µ fraction)
};

/// \brief Options for the hybrid timing model.
struct TimingOptions {
  /// Row/byte counters are multiplied by this factor before costing: the
  /// run executes at laptop scale but is costed at paper scale (the local
  /// SF -> paper SF mapping in DESIGN.md §1).
  double scale_up = 1.0;
};

/// \brief Converts a RunTrace into modelled seconds.
///
/// Compute: each trace frame (one delegated query on one DBMS) is a
/// weighted sum of its row counters under that DBMS's engine profile, with
/// Amdahl scaling for engines with intra-query parallelism, plus the
/// engine's per-query startup.
///
/// Transfer: each inter-DBMS edge costs volume/bandwidth plus per-batch
/// latency on the (src,dst) link.
///
/// Composition over the transfer tree: finish(t) = producer-compute(t) +
/// max over t's nested fetches of arrival(child); arrival of an implicit
/// (pipelined) edge overlaps production and shipping — max(finish,
/// transfer) — while an explicit edge serialises finish + transfer +
/// materialisation.
class TimingModel {
 public:
  TimingModel(const Federation* fed, TimingOptions options = {})
      : fed_(fed), options_(options) {}

  TimingBreakdown ModelRun(const RunTrace& trace) const;

  /// The paper's "localized tables" estimate for MW systems: only the
  /// mediator's own compute, as if every subquery result were preloaded
  /// into mediator-local tables (no source work, no wire, no ingestion).
  double LocalizedCompute(const RunTrace& trace) const;

  /// Modelled seconds of one frame's compute under `profile`.
  double ComputeSeconds(const ComputeTrace& t, const EngineProfile& profile,
                        bool free_network) const;

  /// Modelled seconds on the wire for one transfer record.
  double TransferSeconds(const TransferRecord& rec) const;

 private:
  /// `path` holds the record ids on the current recursion stack; a
  /// prerequisite already being accounted upstream is skipped (transfer
  /// chains that bounce between two servers would otherwise cycle).
  double Finish(const RunTrace& trace, int record_id,
                const ComputeTrace& compute, const std::string& server,
                bool free_network, std::set<int>* path) const;

  const Federation* fed_;
  TimingOptions options_;
};

}  // namespace xdb
