#include "src/timing/timing_model.h"

#include <algorithm>
#include <cmath>

#include "src/dbms/server.h"

namespace xdb {

namespace {
constexpr double kRowsPerMessage = 10000.0;
}

double TimingModel::ComputeSeconds(const ComputeTrace& t,
                                   const EngineProfile& p,
                                   bool free_network) const {
  double s = options_.scale_up;
  double work = t.scan_rows * s * p.scan_row_cost +
                t.filter_input_rows * s * p.filter_row_cost +
                t.project_rows * s * p.project_row_cost +
                (t.join_build_rows + t.join_probe_rows +
                 t.join_output_rows) * s * p.join_row_cost +
                (t.agg_input_rows + t.agg_output_rows) * s * p.agg_row_cost +
                t.sort_rows * s * p.sort_row_cost;
  // Note: materialized_rows is deliberately *not* costed here — explicit
  // movements charge their write in MaterializedDuration so the cost lands
  // on the correct consumer regardless of which frame recorded the counter.
  if (p.parallelism > 1) {
    work = work * (1.0 - p.parallel_fraction) +
           work * p.parallel_fraction / static_cast<double>(p.parallelism);
  }
  if (!free_network) {
    // Ingesting foreign rows through the wrapper is compute on the
    // consumer, but it vanishes when tables are localized — matching the
    // paper's µ estimation method — so the free-network variant drops it.
    // It does NOT benefit from worker parallelism: connector ingestion is
    // serialized through the coordinator, which is exactly why scaling
    // Presto's workers does not help (paper Figure 11).
    work += t.foreign_rows * s * p.fetch_row_cost;
  }
  return work + p.startup_cost;
}

double TimingModel::TransferSeconds(const TransferRecord& rec) const {
  LinkProps link = fed_->network().GetLink(rec.src, rec.dst);
  double s = options_.scale_up;
  double messages = std::ceil(rec.rows * s / kRowsPerMessage) + 1.0;
  return rec.bytes * s / link.bandwidth + link.latency * messages;
}

namespace {
EngineProfile ProfileOf(const Federation* fed, const std::string& server) {
  const DatabaseServer* srv = fed->GetServer(server);
  return srv != nullptr ? srv->profile() : EngineProfile{};
}
}  // namespace

/// End-to-end duration of one explicit (materialised) transfer: produce the
/// child fully, ship it, write it into the consumer's local table.
double TimingModel::Finish(const RunTrace& trace, int record_id,
                           const ComputeTrace& compute,
                           const std::string& server,
                           bool free_network, std::set<int>* path) const {
  EngineProfile profile = ProfileOf(fed_, server);
  double own = ComputeSeconds(compute, profile, free_network);
  path->insert(record_id);

  auto materialized_duration = [&](const TransferRecord& rec) {
    double child_finish =
        Finish(trace, rec.id, rec.producer_compute, rec.src, free_network,
               path);
    double wire = free_network ? 0.0 : TransferSeconds(rec);
    double write = rec.rows * options_.scale_up *
                   ProfileOf(fed_, rec.dst).materialize_row_cost;
    return child_finish + wire + write;
  };

  // Pipelined (implicit) children overlap with each other and with the
  // wire; explicit (materialised) children are issued as sequential DDL
  // statements, so their durations add up.
  double implicit_arrival = 0;
  double materialized_total = 0;
  for (const auto& rec : trace.transfers) {
    if (rec.parent_id != record_id) continue;
    if (rec.materialized) {
      materialized_total += materialized_duration(rec);
    } else {
      double child_finish =
          Finish(trace, rec.id, rec.producer_compute, rec.src, free_network,
                 path);
      double wire = free_network ? 0.0 : TransferSeconds(rec);
      implicit_arrival = std::max(implicit_arrival,
                                  std::max(child_finish, wire));
    }
  }

  // Cross-task prerequisite: a materialised input created *on this server*
  // by an earlier DDL (XDB's explicit movements run before the consumer
  // task's view is read) must exist before this frame can produce rows.
  double prereq = 0;
  for (const auto& rec : trace.transfers) {
    if (!rec.materialized || rec.dst != server) continue;
    if (rec.parent_id == record_id) continue;  // already counted above
    if (record_id >= 0 && rec.id >= record_id) continue;  // not earlier
    if (record_id < 0) continue;  // root's own children handled above
    if (path->count(rec.id)) continue;  // already accounted upstream
    prereq += materialized_duration(rec);
  }

  path->erase(record_id);
  return std::max(implicit_arrival, materialized_total + prereq) + own;
}

double TimingModel::LocalizedCompute(const RunTrace& trace) const {
  return ComputeSeconds(trace.root_compute,
                        ProfileOf(fed_, trace.root_server),
                        /*free_network=*/true);
}

TimingBreakdown TimingModel::ModelRun(const RunTrace& trace) const {
  TimingBreakdown out;
  std::set<int> path;
  out.total = Finish(trace, -1, trace.root_compute, trace.root_server,
                     /*free_network=*/false, &path);
  path.clear();
  out.compute_only = Finish(trace, -1, trace.root_compute,
                            trace.root_server, /*free_network=*/true,
                            &path);
  out.transfer_share = out.total - out.compute_only;
  return out;
}

}  // namespace xdb
