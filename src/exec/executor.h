#pragma once

#include <functional>
#include <string>

#include "src/common/result.h"
#include "src/plan/plan.h"
#include "src/types/table.h"

namespace xdb {

class OperatorProfiler;

/// \brief Row-flow counters recorded while a plan executes.
///
/// These feed the timing model: modelled compute time is a weighted sum of
/// these counters under the executing DBMS's engine profile (DESIGN.md §5).
struct ComputeTrace {
  double scan_rows = 0;         // rows produced by local scans
  double foreign_rows = 0;      // rows fetched through foreign tables
  double filter_input_rows = 0;
  double project_rows = 0;
  double join_build_rows = 0;
  double join_probe_rows = 0;
  double join_output_rows = 0;
  double agg_input_rows = 0;
  double agg_output_rows = 0;
  double sort_rows = 0;
  double materialized_rows = 0;  // rows written by explicit materialisation
  double output_rows = 0;        // final result rows

  void Add(const ComputeTrace& other);

  /// Total of all row counters; a coarse work measure used in tests.
  double TotalRows() const;
};

/// \brief Services a plan needs at execution time.
///
/// A DatabaseServer implements this: local tables resolve against its
/// storage, and foreign fetches go through the (simulated) network to the
/// remote server — the SQL/MED wrapper path.
class ExecContext {
 public:
  virtual ~ExecContext() = default;

  /// Resolves a local base/materialised relation by name.
  virtual Result<TablePtr> GetLocalTable(const std::string& name) = 0;

  /// Fetches `SELECT * FROM relation` from a remote server (foreign scan).
  /// `est_rows`/`est_bytes` carry the planner's stamped estimate for the
  /// scan node driving the fetch (-1 when the plan was never stamped);
  /// implementations attribute them to the transfer they record.
  virtual Result<TablePtr> ForeignFetch(const std::string& server,
                                        const std::string& relation,
                                        double est_rows = -1,
                                        double est_bytes = -1) = 0;

  /// Row-flow counters for this execution.
  virtual ComputeTrace* trace() = 0;

  /// Worker budget for morsel-driven operators (Filter/Project/join probe/
  /// Aggregate). 1 — the default — runs every morsel inline on the calling
  /// thread; results are bit-identical for any value (see ParallelFor).
  virtual int exec_threads() const { return 1; }

  /// Per-operator profiler, or nullptr (the default — EXPLAIN ANALYZE and
  /// benches attach one). When null the executor pays one pointer compare
  /// per plan node; when attached, profiling is purely observational: row
  /// flow, trace counters, and result bits are unchanged.
  virtual OperatorProfiler* profiler() { return nullptr; }
};

/// \brief Executes a fully bound logical plan, materialising each operator.
///
/// Pipelining is modelled in the timing layer, not here: materialising
/// per-operator keeps the executor simple and does not change row/byte
/// accounting, which is what the reproduction's metrics derive from.
/// Hot operators run morsel-parallel when ctx->exec_threads() > 1; the
/// morsel layout is fixed, so results, row orders, and all trace counters
/// are bit-identical to serial execution (DESIGN.md, "Parallel execution
/// vs. the timing model").
Result<TablePtr> ExecutePlan(const PlanNode& plan, ExecContext* ctx);

}  // namespace xdb
