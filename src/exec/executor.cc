#include "src/exec/executor.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "src/common/thread_pool.h"

namespace xdb {

void ComputeTrace::Add(const ComputeTrace& other) {
  scan_rows += other.scan_rows;
  foreign_rows += other.foreign_rows;
  filter_input_rows += other.filter_input_rows;
  project_rows += other.project_rows;
  join_build_rows += other.join_build_rows;
  join_probe_rows += other.join_probe_rows;
  join_output_rows += other.join_output_rows;
  agg_input_rows += other.agg_input_rows;
  agg_output_rows += other.agg_output_rows;
  sort_rows += other.sort_rows;
  materialized_rows += other.materialized_rows;
  output_rows += other.output_rows;
}

double ComputeTrace::TotalRows() const {
  return scan_rows + foreign_rows + filter_input_rows + project_rows +
         join_build_rows + join_probe_rows + join_output_rows +
         agg_input_rows + agg_output_rows + sort_rows + materialized_rows;
}

namespace {

// Morsel granules. Fixed constants — never derived from the worker count —
// because morsel boundaries are part of the deterministic contract: output
// row order and floating-point accumulation order depend only on the input,
// so exec_threads=1 and exec_threads=N produce bit-identical results (and
// therefore identical ComputeTrace counters, transfer volumes, and figure
// reproductions).
constexpr size_t kMorselRows = 4096;      // filter / project / join probe
constexpr size_t kAggMorselRows = 16384;  // aggregation partial-state ranges

/// Runs `fn(begin, end, buf)` over fixed-size morsels of [0, n), each morsel
/// filling its own output buffer, then concatenates the buffers into `out`
/// in morsel order. Row order is identical to a serial row-at-a-time loop
/// for any worker count.
template <typename MorselFn>
void MorselParallelAppend(int workers, size_t n, Table* out,
                          const MorselFn& fn) {
  const size_t num_morsels = (n + kMorselRows - 1) / kMorselRows;
  std::vector<std::vector<Row>> buffers(num_morsels);
  ParallelFor(workers, n, kMorselRows,
              [&](size_t m, size_t begin, size_t end) {
                fn(begin, end, &buffers[m]);
              });
  size_t total = 0;
  for (const auto& buf : buffers) total += buf.size();
  out->Reserve(out->num_rows() + total);
  for (auto& buf : buffers) {
    for (auto& row : buf) out->AppendRow(std::move(row));
  }
}

/// Serializes the key columns of `row` into `key` (cleared first) as a flat
/// normalized byte string. Returns false when any key column is NULL (join
/// keys never match on NULL).
bool NormalizedJoinKey(const Row& row, const std::vector<int>& key_cols,
                       std::string* key) {
  key->clear();
  for (int k : key_cols) {
    const Value& v = row[static_cast<size_t>(k)];
    if (v.is_null()) return false;
    v.AppendNormalizedKey(key);
  }
  return true;
}

/// One aggregate's running state.
struct AggState {
  double sum = 0;
  int64_t isum = 0;
  bool int_sum = true;
  int64_t count = 0;
  Value min = Value::Null(TypeId::kInt64);
  Value max = Value::Null(TypeId::kInt64);

  /// Folds a later partition's state into this one. Merge order is fixed
  /// (partition order), keeping double summation associativity — and thus
  /// SUM/AVG bits — independent of the worker count. Ties in MIN/MAX keep
  /// the earlier partition's value, matching serial first-seen semantics.
  void Merge(const AggState& o) {
    sum += o.sum;
    isum += o.isum;
    int_sum = int_sum && o.int_sum;
    count += o.count;
    if (!o.min.is_null() && (min.is_null() || o.min.Compare(min) < 0)) {
      min = o.min;
    }
    if (!o.max.is_null() && (max.is_null() || o.max.Compare(max) > 0)) {
      max = o.max;
    }
  }
};

/// A group's representative key values plus per-aggregate states, keyed in
/// the hash table by the normalized key bytes.
struct GroupEntry {
  Row key;
  std::vector<AggState> states;
};

using GroupMap = std::unordered_map<std::string, GroupEntry>;

Result<TablePtr> ExecJoin(const PlanNode& plan, ExecContext* ctx,
                          TablePtr left, TablePtr right) {
  ComputeTrace* trace = ctx->trace();
  const int workers = ctx->exec_threads();
  Schema out_schema = plan.output_schema;
  auto out = std::make_shared<Table>(out_schema);

  if (plan.left_keys.empty()) {
    // Cross product (kept for completeness; the planners avoid it).
    trace->join_build_rows += static_cast<double>(right->num_rows());
    trace->join_probe_rows += static_cast<double>(left->num_rows());
    MorselParallelAppend(
        workers, left->num_rows(), out.get(),
        [&](size_t begin, size_t end, std::vector<Row>* buf) {
          for (size_t i = begin; i < end; ++i) {
            const Row& lr = left->row(i);
            for (const auto& rr : right->rows()) {
              Row row;
              row.reserve(lr.size() + rr.size());
              row.insert(row.end(), lr.begin(), lr.end());
              row.insert(row.end(), rr.begin(), rr.end());
              if (plan.residual && !EvalPredicate(*plan.residual, row)) {
                continue;
              }
              buf->push_back(std::move(row));
            }
          }
        });
    trace->join_output_rows += static_cast<double>(out->num_rows());
    return out;
  }

  // Hash join; build on the smaller input, probe with the larger, emitting
  // rows in (left || right) schema order either way. The build side keys the
  // table on normalized key bytes — one serialization per row instead of
  // hashing and comparing vector<Value> on every probe.
  bool build_right = right->num_rows() <= left->num_rows();
  const Table& build = build_right ? *right : *left;
  const Table& probe = build_right ? *left : *right;
  const std::vector<int>& build_keys =
      build_right ? plan.right_keys : plan.left_keys;
  const std::vector<int>& probe_keys =
      build_right ? plan.left_keys : plan.right_keys;

  trace->join_build_rows += static_cast<double>(build.num_rows());
  trace->join_probe_rows += static_cast<double>(probe.num_rows());

  std::unordered_map<std::string, std::vector<size_t>> ht;
  ht.reserve(build.num_rows());
  {
    std::string key;
    for (size_t i = 0; i < build.num_rows(); ++i) {
      if (!NormalizedJoinKey(build.row(i), build_keys, &key)) continue;
      ht[key].push_back(i);
    }
  }

  // Probe runs per-morsel; the build table is shared read-only.
  MorselParallelAppend(
      workers, probe.num_rows(), out.get(),
      [&](size_t begin, size_t end, std::vector<Row>* buf) {
        std::string key;
        for (size_t i = begin; i < end; ++i) {
          if (!NormalizedJoinKey(probe.row(i), probe_keys, &key)) continue;
          auto it = ht.find(key);
          if (it == ht.end()) continue;
          for (size_t j : it->second) {
            const Row& lr = build_right ? probe.row(i) : build.row(j);
            const Row& rr = build_right ? build.row(j) : probe.row(i);
            Row row;
            row.reserve(lr.size() + rr.size());
            row.insert(row.end(), lr.begin(), lr.end());
            row.insert(row.end(), rr.begin(), rr.end());
            if (plan.residual && !EvalPredicate(*plan.residual, row)) {
              continue;
            }
            buf->push_back(std::move(row));
          }
        }
      });
  trace->join_output_rows += static_cast<double>(out->num_rows());
  return out;
}

Result<TablePtr> ExecAggregate(const PlanNode& plan, ExecContext* ctx,
                               TablePtr input) {
  ComputeTrace* trace = ctx->trace();
  const int workers = ctx->exec_threads();
  trace->agg_input_rows += static_cast<double>(input->num_rows());

  const size_t nkeys = plan.group_keys.size();
  const size_t naggs = plan.aggregates.size();
  const size_t n = input->num_rows();

  // Partial aggregation over fixed row ranges, merged in range order. The
  // range cut depends only on n, so accumulation order — and with it every
  // SUM/AVG double — is identical for any worker count.
  const size_t num_parts =
      std::max<size_t>(1, (n + kAggMorselRows - 1) / kAggMorselRows);
  std::vector<GroupMap> partials(num_parts);
  // Global aggregation (no GROUP BY) must yield one row even on empty input.
  if (nkeys == 0) {
    GroupEntry& e = partials[0][std::string()];
    e.states.resize(naggs);
  }

  ParallelFor(workers, n, kAggMorselRows, [&](size_t part, size_t begin,
                                              size_t end) {
    GroupMap& groups = partials[part];
    std::string norm;
    for (size_t r = begin; r < end; ++r) {
      const Row& row = input->row(r);
      norm.clear();
      Row key_vals;
      key_vals.reserve(nkeys);
      for (const auto& g : plan.group_keys) {
        key_vals.push_back(EvalExpr(*g, row));
        key_vals.back().AppendNormalizedKey(&norm);
      }
      auto [it, inserted] = groups.try_emplace(norm);
      if (inserted) {
        it->second.key = std::move(key_vals);
        it->second.states.resize(naggs);
      }
      for (size_t a = 0; a < naggs; ++a) {
        const Expr& agg = *plan.aggregates[a];
        AggState& st = it->second.states[a];
        if (agg.agg_kind == AggKind::kCountStar) {
          ++st.count;
          continue;
        }
        Value v = EvalExpr(*agg.children[0], row);
        if (v.is_null()) continue;  // SQL aggregates skip NULLs
        ++st.count;
        switch (agg.agg_kind) {
          case AggKind::kSum:
          case AggKind::kAvg:
            if (v.type() == TypeId::kDouble) st.int_sum = false;
            st.sum += v.AsDouble();
            st.isum += v.type() == TypeId::kDouble ? 0 : v.int64_value();
            break;
          case AggKind::kMin:
            if (st.min.is_null() || v.Compare(st.min) < 0) st.min = v;
            break;
          case AggKind::kMax:
            if (st.max.is_null() || v.Compare(st.max) > 0) st.max = v;
            break;
          default:
            break;
        }
      }
    }
  });

  // Deterministic merge: partitions fold into the first map in range order,
  // so the merged map's contents (and its iteration order, which sets the
  // output row order) are a pure function of the input.
  GroupMap merged = std::move(partials[0]);
  for (size_t p = 1; p < partials.size(); ++p) {
    for (auto& [key, entry] : partials[p]) {
      auto [it, inserted] = merged.try_emplace(key);
      if (inserted) {
        it->second = std::move(entry);
        continue;
      }
      for (size_t a = 0; a < naggs; ++a) {
        it->second.states[a].Merge(entry.states[a]);
      }
    }
  }

  auto out = std::make_shared<Table>(plan.output_schema);
  out->Reserve(merged.size());
  for (auto& [key, entry] : merged) {
    Row row = std::move(entry.key);
    row.reserve(nkeys + naggs);
    for (size_t a = 0; a < naggs; ++a) {
      const Expr& agg = *plan.aggregates[a];
      const AggState& st = entry.states[a];
      switch (agg.agg_kind) {
        case AggKind::kCountStar:
        case AggKind::kCount:
          row.push_back(Value::Int64(st.count));
          break;
        case AggKind::kSum:
          if (st.count == 0) {
            row.push_back(Value::Null(InferType(plan.aggregates[a])));
          } else if (st.int_sum) {
            row.push_back(Value::Int64(st.isum));
          } else {
            row.push_back(Value::Double(st.sum));
          }
          break;
        case AggKind::kAvg:
          if (st.count == 0) {
            row.push_back(Value::Null(TypeId::kDouble));
          } else {
            row.push_back(
                Value::Double(st.sum / static_cast<double>(st.count)));
          }
          break;
        case AggKind::kMin:
          // An all-NULL (or empty) group yields a NULL of the aggregate's
          // inferred type, not the AggState's kInt64 placeholder.
          if (st.min.is_null()) {
            row.push_back(Value::Null(InferType(plan.aggregates[a])));
          } else {
            row.push_back(st.min);
          }
          break;
        case AggKind::kMax:
          if (st.max.is_null()) {
            row.push_back(Value::Null(InferType(plan.aggregates[a])));
          } else {
            row.push_back(st.max);
          }
          break;
      }
    }
    out->AppendRow(std::move(row));
  }
  trace->agg_output_rows += static_cast<double>(out->num_rows());
  return out;
}

}  // namespace

Result<TablePtr> ExecutePlan(const PlanNode& plan, ExecContext* ctx) {
  ComputeTrace* trace = ctx->trace();
  switch (plan.kind) {
    case PlanKind::kScan: {
      if (plan.is_foreign) {
        XDB_ASSIGN_OR_RETURN(
            TablePtr t,
            ctx->ForeignFetch(plan.foreign_server, plan.remote_relation));
        trace->foreign_rows += static_cast<double>(t->num_rows());
        return t;
      }
      XDB_ASSIGN_OR_RETURN(TablePtr t, ctx->GetLocalTable(plan.table));
      trace->scan_rows += static_cast<double>(t->num_rows());
      return t;
    }
    case PlanKind::kFilter: {
      XDB_ASSIGN_OR_RETURN(TablePtr in, ExecutePlan(*plan.children[0], ctx));
      trace->filter_input_rows += static_cast<double>(in->num_rows());
      auto out = std::make_shared<Table>(plan.output_schema);
      MorselParallelAppend(
          ctx->exec_threads(), in->num_rows(), out.get(),
          [&](size_t begin, size_t end, std::vector<Row>* buf) {
            for (size_t i = begin; i < end; ++i) {
              const Row& row = in->row(i);
              if (EvalPredicate(*plan.predicate, row)) buf->push_back(row);
            }
          });
      return out;
    }
    case PlanKind::kProject: {
      XDB_ASSIGN_OR_RETURN(TablePtr in, ExecutePlan(*plan.children[0], ctx));
      trace->project_rows += static_cast<double>(in->num_rows());
      auto out = std::make_shared<Table>(plan.output_schema);
      MorselParallelAppend(
          ctx->exec_threads(), in->num_rows(), out.get(),
          [&](size_t begin, size_t end, std::vector<Row>* buf) {
            buf->reserve(end - begin);
            for (size_t i = begin; i < end; ++i) {
              const Row& row = in->row(i);
              Row projected;
              projected.reserve(plan.exprs.size());
              for (const auto& e : plan.exprs) {
                projected.push_back(EvalExpr(*e, row));
              }
              buf->push_back(std::move(projected));
            }
          });
      return out;
    }
    case PlanKind::kJoin: {
      XDB_ASSIGN_OR_RETURN(TablePtr l, ExecutePlan(*plan.children[0], ctx));
      XDB_ASSIGN_OR_RETURN(TablePtr r, ExecutePlan(*plan.children[1], ctx));
      return ExecJoin(plan, ctx, std::move(l), std::move(r));
    }
    case PlanKind::kAggregate: {
      XDB_ASSIGN_OR_RETURN(TablePtr in, ExecutePlan(*plan.children[0], ctx));
      return ExecAggregate(plan, ctx, std::move(in));
    }
    case PlanKind::kSort: {
      XDB_ASSIGN_OR_RETURN(TablePtr in, ExecutePlan(*plan.children[0], ctx));
      trace->sort_rows += static_cast<double>(in->num_rows());
      auto out = std::make_shared<Table>(plan.output_schema, in->rows());
      std::stable_sort(
          out->mutable_rows().begin(), out->mutable_rows().end(),
          [&](const Row& a, const Row& b) {
            for (const auto& [idx, desc] : plan.sort_keys) {
              int c = a[static_cast<size_t>(idx)].Compare(
                  b[static_cast<size_t>(idx)]);
              if (c != 0) return desc ? c > 0 : c < 0;
            }
            return false;
          });
      return out;
    }
    case PlanKind::kLimit: {
      // Top-N fusion: LIMIT directly over a Sort keeps only the N best
      // rows with a bounded partial sort instead of ordering everything —
      // the pattern TPC-H Q3/Q10 ("ORDER BY revenue DESC LIMIT k") hits.
      const PlanNode& child = *plan.children[0];
      if (child.kind == PlanKind::kSort && plan.limit >= 0) {
        XDB_ASSIGN_OR_RETURN(TablePtr in,
                             ExecutePlan(*child.children[0], ctx));
        trace->sort_rows += static_cast<double>(in->num_rows());
        auto less = [&](const Row& a, const Row& b) {
          for (const auto& [idx, desc] : child.sort_keys) {
            int c = a[static_cast<size_t>(idx)].Compare(
                b[static_cast<size_t>(idx)]);
            if (c != 0) return desc ? c > 0 : c < 0;
          }
          return false;
        };
        size_t n = std::min<size_t>(static_cast<size_t>(plan.limit),
                                    in->num_rows());
        std::vector<Row> rows = in->rows();
        std::partial_sort(rows.begin(),
                          rows.begin() + static_cast<long>(n), rows.end(),
                          less);
        rows.resize(n);
        return std::make_shared<Table>(plan.output_schema,
                                       std::move(rows));
      }
      XDB_ASSIGN_OR_RETURN(TablePtr in, ExecutePlan(child, ctx));
      auto out = std::make_shared<Table>(plan.output_schema);
      size_t n = std::min<size_t>(static_cast<size_t>(plan.limit),
                                  in->num_rows());
      out->Reserve(n);
      for (size_t i = 0; i < n; ++i) out->AppendRow(in->row(i));
      return out;
    }
    case PlanKind::kPlaceholder:
      return Status::Internal(
          "placeholder node reached the executor; delegation should have "
          "replaced it with a foreign table reference");
  }
  return Status::Internal("unknown plan node kind");
}

}  // namespace xdb
