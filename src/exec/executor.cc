#include "src/exec/executor.h"

#include <algorithm>
#include <unordered_map>

namespace xdb {

void ComputeTrace::Add(const ComputeTrace& other) {
  scan_rows += other.scan_rows;
  foreign_rows += other.foreign_rows;
  filter_input_rows += other.filter_input_rows;
  project_rows += other.project_rows;
  join_build_rows += other.join_build_rows;
  join_probe_rows += other.join_probe_rows;
  join_output_rows += other.join_output_rows;
  agg_input_rows += other.agg_input_rows;
  agg_output_rows += other.agg_output_rows;
  sort_rows += other.sort_rows;
  materialized_rows += other.materialized_rows;
  output_rows += other.output_rows;
}

double ComputeTrace::TotalRows() const {
  return scan_rows + foreign_rows + filter_input_rows + project_rows +
         join_build_rows + join_probe_rows + join_output_rows +
         agg_input_rows + agg_output_rows + sort_rows + materialized_rows;
}

namespace {

/// Hash of a multi-column key.
struct KeyHash {
  size_t operator()(const std::vector<Value>& key) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const auto& v : key) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct KeyEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].is_null() || b[i].is_null()) return false;  // SQL semantics
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

/// Group-key equality must treat NULL == NULL (GROUP BY semantics), unlike
/// join keys.
struct GroupKeyEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].is_null() != b[i].is_null()) return false;
      if (!a[i].is_null() && a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

/// One aggregate's running state.
struct AggState {
  double sum = 0;
  int64_t isum = 0;
  bool int_sum = true;
  int64_t count = 0;
  Value min = Value::Null(TypeId::kInt64);
  Value max = Value::Null(TypeId::kInt64);
};

Result<TablePtr> ExecJoin(const PlanNode& plan, ExecContext* ctx,
                          TablePtr left, TablePtr right) {
  ComputeTrace* trace = ctx->trace();
  Schema out_schema = plan.output_schema;
  auto out = std::make_shared<Table>(out_schema);

  if (plan.left_keys.empty()) {
    // Cross product (kept for completeness; the planners avoid it).
    trace->join_build_rows += static_cast<double>(right->num_rows());
    trace->join_probe_rows += static_cast<double>(left->num_rows());
    for (const auto& lr : left->rows()) {
      for (const auto& rr : right->rows()) {
        Row row = lr;
        row.insert(row.end(), rr.begin(), rr.end());
        if (plan.residual && !EvalPredicate(*plan.residual, row)) continue;
        out->AppendRow(std::move(row));
      }
    }
    trace->join_output_rows += static_cast<double>(out->num_rows());
    return out;
  }

  // Hash join; build on the smaller input, probe with the larger, emitting
  // rows in (left || right) schema order either way.
  bool build_right = right->num_rows() <= left->num_rows();
  const Table& build = build_right ? *right : *left;
  const Table& probe = build_right ? *left : *right;
  const std::vector<int>& build_keys =
      build_right ? plan.right_keys : plan.left_keys;
  const std::vector<int>& probe_keys =
      build_right ? plan.left_keys : plan.right_keys;

  trace->join_build_rows += static_cast<double>(build.num_rows());
  trace->join_probe_rows += static_cast<double>(probe.num_rows());

  std::unordered_map<std::vector<Value>, std::vector<size_t>, KeyHash, KeyEq>
      ht;
  ht.reserve(build.num_rows());
  for (size_t i = 0; i < build.num_rows(); ++i) {
    std::vector<Value> key;
    key.reserve(build_keys.size());
    bool has_null = false;
    for (int k : build_keys) {
      const Value& v = build.row(i)[static_cast<size_t>(k)];
      if (v.is_null()) has_null = true;
      key.push_back(v);
    }
    if (has_null) continue;  // NULL keys never join
    ht[std::move(key)].push_back(i);
  }

  for (size_t i = 0; i < probe.num_rows(); ++i) {
    std::vector<Value> key;
    key.reserve(probe_keys.size());
    bool has_null = false;
    for (int k : probe_keys) {
      const Value& v = probe.row(i)[static_cast<size_t>(k)];
      if (v.is_null()) has_null = true;
      key.push_back(v);
    }
    if (has_null) continue;
    auto it = ht.find(key);
    if (it == ht.end()) continue;
    for (size_t j : it->second) {
      const Row& lr = build_right ? probe.row(i) : build.row(j);
      const Row& rr = build_right ? build.row(j) : probe.row(i);
      Row row = lr;
      row.insert(row.end(), rr.begin(), rr.end());
      if (plan.residual && !EvalPredicate(*plan.residual, row)) continue;
      out->AppendRow(std::move(row));
    }
  }
  trace->join_output_rows += static_cast<double>(out->num_rows());
  return out;
}

Result<TablePtr> ExecAggregate(const PlanNode& plan, ExecContext* ctx,
                               TablePtr input) {
  ComputeTrace* trace = ctx->trace();
  trace->agg_input_rows += static_cast<double>(input->num_rows());

  const size_t nkeys = plan.group_keys.size();
  const size_t naggs = plan.aggregates.size();

  std::unordered_map<std::vector<Value>, std::vector<AggState>, KeyHash,
                     GroupKeyEq>
      groups;
  // Global aggregation (no GROUP BY) must yield one row even on empty input.
  if (nkeys == 0) groups[{}] = std::vector<AggState>(naggs);

  for (const auto& row : input->rows()) {
    std::vector<Value> key;
    key.reserve(nkeys);
    for (const auto& g : plan.group_keys) key.push_back(EvalExpr(*g, row));
    auto [it, inserted] = groups.try_emplace(std::move(key));
    if (inserted) it->second.resize(naggs);
    for (size_t a = 0; a < naggs; ++a) {
      const Expr& agg = *plan.aggregates[a];
      AggState& st = it->second[a];
      if (agg.agg_kind == AggKind::kCountStar) {
        ++st.count;
        continue;
      }
      Value v = EvalExpr(*agg.children[0], row);
      if (v.is_null()) continue;  // SQL aggregates skip NULLs
      ++st.count;
      switch (agg.agg_kind) {
        case AggKind::kSum:
        case AggKind::kAvg:
          if (v.type() == TypeId::kDouble) st.int_sum = false;
          st.sum += v.AsDouble();
          st.isum += v.type() == TypeId::kDouble ? 0 : v.int64_value();
          break;
        case AggKind::kMin:
          if (st.min.is_null() || v.Compare(st.min) < 0) st.min = v;
          break;
        case AggKind::kMax:
          if (st.max.is_null() || v.Compare(st.max) > 0) st.max = v;
          break;
        default:
          break;
      }
    }
  }

  auto out = std::make_shared<Table>(plan.output_schema);
  for (auto& [key, states] : groups) {
    Row row = key;
    for (size_t a = 0; a < naggs; ++a) {
      const Expr& agg = *plan.aggregates[a];
      const AggState& st = states[a];
      switch (agg.agg_kind) {
        case AggKind::kCountStar:
        case AggKind::kCount:
          row.push_back(Value::Int64(st.count));
          break;
        case AggKind::kSum:
          if (st.count == 0) {
            row.push_back(Value::Null(InferType(plan.aggregates[a])));
          } else if (st.int_sum) {
            row.push_back(Value::Int64(st.isum));
          } else {
            row.push_back(Value::Double(st.sum));
          }
          break;
        case AggKind::kAvg:
          if (st.count == 0) {
            row.push_back(Value::Null(TypeId::kDouble));
          } else {
            row.push_back(
                Value::Double(st.sum / static_cast<double>(st.count)));
          }
          break;
        case AggKind::kMin:
          row.push_back(st.min);
          break;
        case AggKind::kMax:
          row.push_back(st.max);
          break;
      }
    }
    out->AppendRow(std::move(row));
  }
  trace->agg_output_rows += static_cast<double>(out->num_rows());
  return out;
}

}  // namespace

Result<TablePtr> ExecutePlan(const PlanNode& plan, ExecContext* ctx) {
  ComputeTrace* trace = ctx->trace();
  switch (plan.kind) {
    case PlanKind::kScan: {
      if (plan.is_foreign) {
        XDB_ASSIGN_OR_RETURN(
            TablePtr t,
            ctx->ForeignFetch(plan.foreign_server, plan.remote_relation));
        trace->foreign_rows += static_cast<double>(t->num_rows());
        return t;
      }
      XDB_ASSIGN_OR_RETURN(TablePtr t, ctx->GetLocalTable(plan.table));
      trace->scan_rows += static_cast<double>(t->num_rows());
      return t;
    }
    case PlanKind::kFilter: {
      XDB_ASSIGN_OR_RETURN(TablePtr in, ExecutePlan(*plan.children[0], ctx));
      trace->filter_input_rows += static_cast<double>(in->num_rows());
      auto out = std::make_shared<Table>(plan.output_schema);
      for (const auto& row : in->rows()) {
        if (EvalPredicate(*plan.predicate, row)) out->AppendRow(row);
      }
      return out;
    }
    case PlanKind::kProject: {
      XDB_ASSIGN_OR_RETURN(TablePtr in, ExecutePlan(*plan.children[0], ctx));
      trace->project_rows += static_cast<double>(in->num_rows());
      auto out = std::make_shared<Table>(plan.output_schema);
      for (const auto& row : in->rows()) {
        Row projected;
        projected.reserve(plan.exprs.size());
        for (const auto& e : plan.exprs) projected.push_back(
            EvalExpr(*e, row));
        out->AppendRow(std::move(projected));
      }
      return out;
    }
    case PlanKind::kJoin: {
      XDB_ASSIGN_OR_RETURN(TablePtr l, ExecutePlan(*plan.children[0], ctx));
      XDB_ASSIGN_OR_RETURN(TablePtr r, ExecutePlan(*plan.children[1], ctx));
      return ExecJoin(plan, ctx, std::move(l), std::move(r));
    }
    case PlanKind::kAggregate: {
      XDB_ASSIGN_OR_RETURN(TablePtr in, ExecutePlan(*plan.children[0], ctx));
      return ExecAggregate(plan, ctx, std::move(in));
    }
    case PlanKind::kSort: {
      XDB_ASSIGN_OR_RETURN(TablePtr in, ExecutePlan(*plan.children[0], ctx));
      trace->sort_rows += static_cast<double>(in->num_rows());
      auto out = std::make_shared<Table>(plan.output_schema, in->rows());
      std::stable_sort(
          out->mutable_rows().begin(), out->mutable_rows().end(),
          [&](const Row& a, const Row& b) {
            for (const auto& [idx, desc] : plan.sort_keys) {
              int c = a[static_cast<size_t>(idx)].Compare(
                  b[static_cast<size_t>(idx)]);
              if (c != 0) return desc ? c > 0 : c < 0;
            }
            return false;
          });
      return out;
    }
    case PlanKind::kLimit: {
      // Top-N fusion: LIMIT directly over a Sort keeps only the N best
      // rows with a bounded partial sort instead of ordering everything —
      // the pattern TPC-H Q3/Q10 ("ORDER BY revenue DESC LIMIT k") hits.
      const PlanNode& child = *plan.children[0];
      if (child.kind == PlanKind::kSort && plan.limit >= 0) {
        XDB_ASSIGN_OR_RETURN(TablePtr in,
                             ExecutePlan(*child.children[0], ctx));
        trace->sort_rows += static_cast<double>(in->num_rows());
        auto less = [&](const Row& a, const Row& b) {
          for (const auto& [idx, desc] : child.sort_keys) {
            int c = a[static_cast<size_t>(idx)].Compare(
                b[static_cast<size_t>(idx)]);
            if (c != 0) return desc ? c > 0 : c < 0;
          }
          return false;
        };
        size_t n = std::min<size_t>(static_cast<size_t>(plan.limit),
                                    in->num_rows());
        std::vector<Row> rows = in->rows();
        std::partial_sort(rows.begin(),
                          rows.begin() + static_cast<long>(n), rows.end(),
                          less);
        rows.resize(n);
        return std::make_shared<Table>(plan.output_schema,
                                       std::move(rows));
      }
      XDB_ASSIGN_OR_RETURN(TablePtr in, ExecutePlan(child, ctx));
      auto out = std::make_shared<Table>(plan.output_schema);
      size_t n = std::min<size_t>(static_cast<size_t>(plan.limit),
                                  in->num_rows());
      for (size_t i = 0; i < n; ++i) out->AppendRow(in->row(i));
      return out;
    }
    case PlanKind::kPlaceholder:
      return Status::Internal(
          "placeholder node reached the executor; delegation should have "
          "replaced it with a foreign table reference");
  }
  return Status::Internal("unknown plan node kind");
}

}  // namespace xdb
