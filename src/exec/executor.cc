#include "src/exec/executor.h"

#include <algorithm>
#include <functional>
#include <string>
#include <unordered_map>

#include "src/common/thread_pool.h"
#include "src/exec/profile.h"
#include "src/expr/vector_eval.h"

namespace xdb {

void ComputeTrace::Add(const ComputeTrace& other) {
  scan_rows += other.scan_rows;
  foreign_rows += other.foreign_rows;
  filter_input_rows += other.filter_input_rows;
  project_rows += other.project_rows;
  join_build_rows += other.join_build_rows;
  join_probe_rows += other.join_probe_rows;
  join_output_rows += other.join_output_rows;
  agg_input_rows += other.agg_input_rows;
  agg_output_rows += other.agg_output_rows;
  sort_rows += other.sort_rows;
  materialized_rows += other.materialized_rows;
  output_rows += other.output_rows;
}

double ComputeTrace::TotalRows() const {
  return scan_rows + foreign_rows + filter_input_rows + project_rows +
         join_build_rows + join_probe_rows + join_output_rows +
         agg_input_rows + agg_output_rows + sort_rows + materialized_rows;
}

namespace {

// Morsel granules. Fixed constants — never derived from the worker count —
// because morsel boundaries are part of the deterministic contract: output
// row order and floating-point accumulation order depend only on the input,
// so exec_threads=1 and exec_threads=N produce bit-identical results (and
// therefore identical ComputeTrace counters, transfer volumes, and figure
// reproductions).
constexpr size_t kMorselRows = 4096;      // filter / project / join probe
constexpr size_t kAggMorselRows = 16384;  // aggregation partial-state ranges

/// The profiler record of the operator currently executing, or nullptr when
/// no profiler is attached. Only touched on the coordinating thread (stats
/// are filled around — never inside — the morsel-parallel regions).
OperatorStats* ProfCurrent(ExecContext* ctx) {
  OperatorProfiler* prof = ctx->profiler();
  return prof != nullptr ? prof->current() : nullptr;
}

int64_t MorselCount(size_t n, size_t morsel_rows) {
  return static_cast<int64_t>((n + morsel_rows - 1) / morsel_rows);
}

/// Runs `fn(begin, end, buf)` over fixed-size morsels of [0, n), each morsel
/// filling its own output buffer, then concatenates the buffers into `out`
/// in morsel order. Row order is identical to a serial row-at-a-time loop
/// for any worker count.
template <typename MorselFn>
void MorselParallelAppend(int workers, size_t n, Table* out,
                          const MorselFn& fn) {
  const size_t num_morsels = (n + kMorselRows - 1) / kMorselRows;
  std::vector<std::vector<Row>> buffers(num_morsels);
  ParallelFor(workers, n, kMorselRows,
              [&](size_t m, size_t begin, size_t end) {
                fn(begin, end, &buffers[m]);
              });
  size_t total = 0;
  for (const auto& buf : buffers) total += buf.size();
  out->Reserve(out->num_rows() + total);
  for (auto& buf : buffers) {
    for (auto& row : buf) out->AppendRow(std::move(row));
  }
}

/// Serializes the key columns of `row` into `key` (cleared first) as a flat
/// normalized byte string. Returns false when any key column is NULL (join
/// keys never match on NULL).
bool NormalizedJoinKey(const Row& row, const std::vector<int>& key_cols,
                       std::string* key) {
  key->clear();
  for (int k : key_cols) {
    const Value& v = row[static_cast<size_t>(k)];
    if (v.is_null()) return false;
    v.AppendNormalizedKey(key);
  }
  return true;
}

/// Columnar variant: reads the key bytes straight from the column chunks
/// (dictionary codes, RLE runs, typed payloads) without materializing
/// Values. Byte-identical to the row variant — both delegate to the shared
/// normalized-key primitives in value.cc.
bool NormalizedJoinKeyChunked(const ChunkedTable& chunks, size_t row,
                              const std::vector<int>& key_cols,
                              std::string* key) {
  key->clear();
  for (int k : key_cols) {
    const ColumnChunk& c = chunks.column(static_cast<size_t>(k));
    if (c.IsNull(row)) return false;
    c.AppendNormalizedKey(row, key);
  }
  return true;
}

/// \brief Hash-partitioned join build table.
///
/// Build rows are partitioned by the hash of their normalized key and each
/// partition's map is built concurrently. The partition a key lands in is a
/// pure function of the key (never of the worker count), each partition
/// receives its row indices in ascending original order (morsels are drained
/// in morsel order), and probes look a key up in exactly one partition — so
/// match lists, first-occurrence tie order, and the emitted row order are
/// bit-identical to the old single-threaded single-map build for any
/// `exec_threads`.
struct PartitionedJoinTable {
  using Partition = std::unordered_map<std::string, std::vector<size_t>>;

  size_t num_partitions = 1;
  std::vector<Partition> parts;

  static size_t PartitionOf(const std::string& key, size_t num_partitions) {
    return std::hash<std::string>{}(key) % num_partitions;
  }

  const std::vector<size_t>* Find(const std::string& key) const {
    const Partition& p = parts[PartitionOf(key, num_partitions)];
    auto it = p.find(key);
    return it == p.end() ? nullptr : &it->second;
  }
};

PartitionedJoinTable BuildJoinTable(const Table& build,
                                    const std::vector<int>& build_keys,
                                    int workers,
                                    const ChunkedTable* chunks) {
  const size_t n = build.num_rows();
  PartitionedJoinTable ht;
  ht.num_partitions =
      std::min<size_t>(64, static_cast<size_t>(std::max(1, workers)));
  ht.parts.resize(ht.num_partitions);

  // Phase 1 (morsel-parallel): serialize every row's normalized key once and
  // bucket row indices by target partition, per morsel. When the build side
  // has a columnar mirror (base tables), keys come straight from the chunks.
  const size_t num_morsels = (n + kMorselRows - 1) / kMorselRows;
  std::vector<std::string> keys(n);
  std::vector<std::vector<std::vector<uint32_t>>> morsel_buckets(num_morsels);
  ParallelFor(workers, n, kMorselRows,
              [&](size_t m, size_t begin, size_t end) {
                auto& buckets = morsel_buckets[m];
                buckets.resize(ht.num_partitions);
                for (size_t i = begin; i < end; ++i) {
                  const bool ok =
                      chunks != nullptr
                          ? NormalizedJoinKeyChunked(*chunks, i, build_keys,
                                                     &keys[i])
                          : NormalizedJoinKey(build.row(i), build_keys,
                                              &keys[i]);
                  if (!ok) continue;  // NULL key columns never match
                  buckets[PartitionedJoinTable::PartitionOf(
                              keys[i], ht.num_partitions)]
                      .push_back(static_cast<uint32_t>(i));
                }
              });

  // Phase 2 (partition-parallel): each partition drains its buckets in
  // morsel order, so per-key index lists stay in ascending build-row order —
  // the serial first-occurrence semantics.
  ParallelFor(workers, ht.num_partitions, 1,
              [&](size_t p, size_t /*begin*/, size_t /*end*/) {
                auto& part = ht.parts[p];
                size_t total = 0;
                for (const auto& buckets : morsel_buckets) {
                  total += buckets[p].size();
                }
                part.reserve(total);
                for (const auto& buckets : morsel_buckets) {
                  for (uint32_t i : buckets[p]) {
                    part[keys[i]].push_back(i);
                  }
                }
              });
  return ht;
}

/// One aggregate's running state.
struct AggState {
  double sum = 0;
  int64_t isum = 0;
  bool int_sum = true;
  int64_t count = 0;
  Value min = Value::Null(TypeId::kInt64);
  Value max = Value::Null(TypeId::kInt64);

  /// Folds a later partition's state into this one. Merge order is fixed
  /// (partition order), keeping double summation associativity — and thus
  /// SUM/AVG bits — independent of the worker count. Ties in MIN/MAX keep
  /// the earlier partition's value, matching serial first-seen semantics.
  void Merge(const AggState& o) {
    sum += o.sum;
    isum += o.isum;
    int_sum = int_sum && o.int_sum;
    count += o.count;
    if (!o.min.is_null() && (min.is_null() || o.min.Compare(min) < 0)) {
      min = o.min;
    }
    if (!o.max.is_null() && (max.is_null() || o.max.Compare(max) > 0)) {
      max = o.max;
    }
  }
};

/// A group's representative key values plus per-aggregate states, keyed in
/// the hash table by the normalized key bytes.
struct GroupEntry {
  Row key;
  std::vector<AggState> states;
};

using GroupMap = std::unordered_map<std::string, GroupEntry>;

/// Moves `cand` into `buf`, keeping only rows passing `residual` (nullptr =
/// keep all). One EvalPredicateBatch sweep per morsel instead of a scalar
/// EvalPredicate per joined row, so a residual's typed inner loops amortize
/// over the whole candidate batch. Selection semantics are identical to the
/// scalar path by the batch evaluator's contract, and morsel boundaries are
/// unchanged — output order and traces stay bit-identical.
void AppendResidualFiltered(const Expr* residual, std::vector<Row>* cand,
                            std::vector<Row>* buf) {
  if (residual == nullptr) {
    for (Row& r : *cand) buf->push_back(std::move(r));
    cand->clear();
    return;
  }
  SelVector sel;
  SelRange(0, cand->size(), &sel);
  EvalPredicateBatch(*residual, *cand, &sel);
  for (uint32_t idx : sel) buf->push_back(std::move((*cand)[idx]));
  cand->clear();
}

Result<TablePtr> ExecJoin(const PlanNode& plan, ExecContext* ctx,
                          TablePtr left, TablePtr right) {
  ComputeTrace* trace = ctx->trace();
  const int workers = ctx->exec_threads();
  Schema out_schema = plan.output_schema;
  auto out = std::make_shared<Table>(out_schema);

  if (plan.left_keys.empty()) {
    // Cross product (kept for completeness; the planners avoid it).
    trace->join_build_rows += static_cast<double>(right->num_rows());
    trace->join_probe_rows += static_cast<double>(left->num_rows());
    if (OperatorStats* s = ProfCurrent(ctx)) {
      s->build_rows = static_cast<double>(right->num_rows());
      s->probe_rows = static_cast<double>(left->num_rows());
      s->batches = MorselCount(left->num_rows(), kMorselRows);
    }
    MorselParallelAppend(
        workers, left->num_rows(), out.get(),
        [&](size_t begin, size_t end, std::vector<Row>* buf) {
          std::vector<Row> cand;
          for (size_t i = begin; i < end; ++i) {
            const Row& lr = left->row(i);
            for (const auto& rr : right->rows()) {
              Row row;
              row.reserve(lr.size() + rr.size());
              row.insert(row.end(), lr.begin(), lr.end());
              row.insert(row.end(), rr.begin(), rr.end());
              cand.push_back(std::move(row));
            }
          }
          AppendResidualFiltered(plan.residual.get(), &cand, buf);
        });
    trace->join_output_rows += static_cast<double>(out->num_rows());
    return out;
  }

  // Hash join; build on the smaller input, probe with the larger, emitting
  // rows in (left || right) schema order either way. The build side keys the
  // table on normalized key bytes — one serialization per row instead of
  // hashing and comparing vector<Value> on every probe.
  bool build_right = right->num_rows() <= left->num_rows();
  const Table& build = build_right ? *right : *left;
  const Table& probe = build_right ? *left : *right;
  const std::vector<int>& build_keys =
      build_right ? plan.right_keys : plan.left_keys;
  const std::vector<int>& probe_keys =
      build_right ? plan.left_keys : plan.right_keys;

  trace->join_build_rows += static_cast<double>(build.num_rows());
  trace->join_probe_rows += static_cast<double>(probe.num_rows());
  if (OperatorStats* s = ProfCurrent(ctx)) {
    s->build_rows = static_cast<double>(build.num_rows());
    s->probe_rows = static_cast<double>(probe.num_rows());
    s->batches = MorselCount(probe.num_rows(), kMorselRows);
  }

  // Columnar mirrors (present on base tables, encoded at load time) feed
  // key extraction directly; the shared_ptrs keep them alive across the
  // parallel regions.
  const std::shared_ptr<const ChunkedTable> build_chunks = build.chunked();
  const std::shared_ptr<const ChunkedTable> probe_chunks = probe.chunked();
  const ChunkedTable* pc = probe_chunks.get();

  const PartitionedJoinTable ht =
      BuildJoinTable(build, build_keys, workers, build_chunks.get());

  // Probe runs per-morsel; the partitioned build table is shared read-only.
  // Each morsel first extracts all its probe keys in one batch pass (one
  // normalized-key sweep over rows or chunks), then probes.
  MorselParallelAppend(
      workers, probe.num_rows(), out.get(),
      [&](size_t begin, size_t end, std::vector<Row>* buf) {
        const size_t m = end - begin;
        std::vector<std::string> keys(m);
        std::vector<uint8_t> valid(m);
        for (size_t i = begin; i < end; ++i) {
          valid[i - begin] =
              pc != nullptr
                  ? NormalizedJoinKeyChunked(*pc, i, probe_keys,
                                             &keys[i - begin])
                  : NormalizedJoinKey(probe.row(i), probe_keys,
                                      &keys[i - begin]);
        }
        std::vector<Row> cand;
        for (size_t i = begin; i < end; ++i) {
          if (!valid[i - begin]) continue;
          const std::vector<size_t>* matches = ht.Find(keys[i - begin]);
          if (matches == nullptr) continue;
          for (size_t j : *matches) {
            const Row& lr = build_right ? probe.row(i) : build.row(j);
            const Row& rr = build_right ? build.row(j) : probe.row(i);
            Row row;
            row.reserve(lr.size() + rr.size());
            row.insert(row.end(), lr.begin(), lr.end());
            row.insert(row.end(), rr.begin(), rr.end());
            cand.push_back(std::move(row));
          }
        }
        AppendResidualFiltered(plan.residual.get(), &cand, buf);
      });
  trace->join_output_rows += static_cast<double>(out->num_rows());
  return out;
}

Result<TablePtr> ExecAggregate(const PlanNode& plan, ExecContext* ctx,
                               TablePtr input) {
  ComputeTrace* trace = ctx->trace();
  const int workers = ctx->exec_threads();
  trace->agg_input_rows += static_cast<double>(input->num_rows());
  if (OperatorStats* s = ProfCurrent(ctx)) {
    s->input_rows = static_cast<double>(input->num_rows());
    s->batches = MorselCount(input->num_rows(), kAggMorselRows);
  }

  const size_t nkeys = plan.group_keys.size();
  const size_t naggs = plan.aggregates.size();
  const size_t n = input->num_rows();

  // Code-space group keys: when the input has a columnar mirror and every
  // group key is a plain column reference, normalized key bytes come
  // straight from the chunks (dictionary codes / RLE runs / typed payloads)
  // and the representative key values materialize only when a group is
  // first seen — identical values, since the representative is always the
  // group's first row either way.
  const std::shared_ptr<const ChunkedTable> chunks_sp = input->chunked();
  const ChunkedTable* chunks = chunks_sp.get();
  bool chunked_keys = chunks != nullptr && nkeys > 0;
  if (chunked_keys) {
    for (const auto& g : plan.group_keys) {
      if (g->kind != ExprKind::kColumnRef || g->column_index < 0 ||
          static_cast<size_t>(g->column_index) >= chunks->num_columns()) {
        chunked_keys = false;
        break;
      }
    }
  }

  // Partial aggregation over fixed row ranges, merged in range order. The
  // range cut depends only on n, so accumulation order — and with it every
  // SUM/AVG double — is identical for any worker count.
  const size_t num_parts =
      std::max<size_t>(1, (n + kAggMorselRows - 1) / kAggMorselRows);
  std::vector<GroupMap> partials(num_parts);
  // Global aggregation (no GROUP BY) must yield one row even on empty input.
  if (nkeys == 0) {
    GroupEntry& e = partials[0][std::string()];
    e.states.resize(naggs);
  }

  ParallelFor(workers, n, kAggMorselRows, [&](size_t part, size_t begin,
                                              size_t end) {
    GroupMap& groups = partials[part];
    std::string norm;
    for (size_t r = begin; r < end; ++r) {
      const Row& row = input->row(r);
      norm.clear();
      GroupMap::iterator it;
      if (chunked_keys) {
        for (const auto& g : plan.group_keys) {
          chunks->column(static_cast<size_t>(g->column_index))
              .AppendNormalizedKey(r, &norm);
        }
        auto res = groups.try_emplace(norm);
        it = res.first;
        if (res.second) {
          Row key_vals;
          key_vals.reserve(nkeys);
          for (const auto& g : plan.group_keys) {
            key_vals.push_back(
                chunks->column(static_cast<size_t>(g->column_index))
                    .GetValue(r));
          }
          it->second.key = std::move(key_vals);
          it->second.states.resize(naggs);
        }
      } else {
        Row key_vals;
        key_vals.reserve(nkeys);
        for (const auto& g : plan.group_keys) {
          key_vals.push_back(EvalExpr(*g, row));
          key_vals.back().AppendNormalizedKey(&norm);
        }
        auto res = groups.try_emplace(norm);
        it = res.first;
        if (res.second) {
          it->second.key = std::move(key_vals);
          it->second.states.resize(naggs);
        }
      }
      for (size_t a = 0; a < naggs; ++a) {
        const Expr& agg = *plan.aggregates[a];
        AggState& st = it->second.states[a];
        if (agg.agg_kind == AggKind::kCountStar) {
          ++st.count;
          continue;
        }
        Value v = EvalExpr(*agg.children[0], row);
        if (v.is_null()) continue;  // SQL aggregates skip NULLs
        ++st.count;
        switch (agg.agg_kind) {
          case AggKind::kSum:
          case AggKind::kAvg:
            if (v.type() == TypeId::kDouble) st.int_sum = false;
            st.sum += v.AsDouble();
            st.isum += v.type() == TypeId::kDouble ? 0 : v.int64_value();
            break;
          case AggKind::kMin:
            if (st.min.is_null() || v.Compare(st.min) < 0) st.min = v;
            break;
          case AggKind::kMax:
            if (st.max.is_null() || v.Compare(st.max) > 0) st.max = v;
            break;
          default:
            break;
        }
      }
    }
  });

  // Deterministic merge: partitions fold into the first map in range order,
  // so the merged map's contents (and its iteration order, which sets the
  // output row order) are a pure function of the input.
  GroupMap merged = std::move(partials[0]);
  for (size_t p = 1; p < partials.size(); ++p) {
    for (auto& [key, entry] : partials[p]) {
      auto [it, inserted] = merged.try_emplace(key);
      if (inserted) {
        it->second = std::move(entry);
        continue;
      }
      for (size_t a = 0; a < naggs; ++a) {
        it->second.states[a].Merge(entry.states[a]);
      }
    }
  }

  auto out = std::make_shared<Table>(plan.output_schema);
  out->Reserve(merged.size());
  for (auto& [key, entry] : merged) {
    Row row = std::move(entry.key);
    row.reserve(nkeys + naggs);
    for (size_t a = 0; a < naggs; ++a) {
      const Expr& agg = *plan.aggregates[a];
      const AggState& st = entry.states[a];
      switch (agg.agg_kind) {
        case AggKind::kCountStar:
        case AggKind::kCount:
          row.push_back(Value::Int64(st.count));
          break;
        case AggKind::kSum:
          if (st.count == 0) {
            row.push_back(Value::Null(InferType(plan.aggregates[a])));
          } else if (st.int_sum) {
            row.push_back(Value::Int64(st.isum));
          } else {
            row.push_back(Value::Double(st.sum));
          }
          break;
        case AggKind::kAvg:
          if (st.count == 0) {
            row.push_back(Value::Null(TypeId::kDouble));
          } else {
            row.push_back(
                Value::Double(st.sum / static_cast<double>(st.count)));
          }
          break;
        case AggKind::kMin:
          // An all-NULL (or empty) group yields a NULL of the aggregate's
          // inferred type, not the AggState's kInt64 placeholder.
          if (st.min.is_null()) {
            row.push_back(Value::Null(InferType(plan.aggregates[a])));
          } else {
            row.push_back(st.min);
          }
          break;
        case AggKind::kMax:
          if (st.max.is_null()) {
            row.push_back(Value::Null(InferType(plan.aggregates[a])));
          } else {
            row.push_back(st.max);
          }
          break;
      }
    }
    out->AppendRow(std::move(row));
  }
  trace->agg_output_rows += static_cast<double>(out->num_rows());
  return out;
}

/// The unprofiled executor body; ExecutePlan wraps it with the per-operator
/// profiling hook. Child recursion goes back through ExecutePlan so every
/// node gets its own record.
Result<TablePtr> ExecutePlanNode(const PlanNode& plan, ExecContext* ctx) {
  ComputeTrace* trace = ctx->trace();
  switch (plan.kind) {
    case PlanKind::kScan: {
      if (plan.is_foreign) {
        XDB_ASSIGN_OR_RETURN(
            TablePtr t,
            ctx->ForeignFetch(plan.foreign_server, plan.remote_relation,
                              plan.est_rows,
                              plan.est_rows >= 0
                                  ? plan.est_rows * plan.est_width
                                  : -1));
        trace->foreign_rows += static_cast<double>(t->num_rows());
        return t;
      }
      XDB_ASSIGN_OR_RETURN(TablePtr t, ctx->GetLocalTable(plan.table));
      trace->scan_rows += static_cast<double>(t->num_rows());
      return t;
    }
    case PlanKind::kFilter: {
      XDB_ASSIGN_OR_RETURN(TablePtr in, ExecutePlan(*plan.children[0], ctx));
      trace->filter_input_rows += static_cast<double>(in->num_rows());
      if (OperatorStats* s = ProfCurrent(ctx)) {
        s->input_rows = static_cast<double>(in->num_rows());
        s->batches = MorselCount(in->num_rows(), kMorselRows);
      }
      auto out = std::make_shared<Table>(plan.output_schema);
      // Base tables carry a columnar mirror: predicates then gather typed
      // payloads (or compare dictionary codes) instead of boxing Values.
      const auto chunks = in->chunked();
      const RowBlock block{&in->rows(), chunks.get()};
      MorselParallelAppend(
          ctx->exec_threads(), in->num_rows(), out.get(),
          [&](size_t begin, size_t end, std::vector<Row>* buf) {
            buf->reserve(end - begin);
            SelVector sel;
            SelRange(begin, end, &sel);
            EvalPredicateBatch(*plan.predicate, block, &sel);
            for (uint32_t i : sel) buf->push_back(in->row(i));
          });
      return out;
    }
    case PlanKind::kProject: {
      XDB_ASSIGN_OR_RETURN(TablePtr in, ExecutePlan(*plan.children[0], ctx));
      trace->project_rows += static_cast<double>(in->num_rows());
      if (OperatorStats* s = ProfCurrent(ctx)) {
        s->input_rows = static_cast<double>(in->num_rows());
        s->batches = MorselCount(in->num_rows(), kMorselRows);
      }
      auto out = std::make_shared<Table>(plan.output_schema);
      const auto chunks = in->chunked();
      const RowBlock block{&in->rows(), chunks.get()};
      MorselParallelAppend(
          ctx->exec_threads(), in->num_rows(), out.get(),
          [&](size_t begin, size_t end, std::vector<Row>* buf) {
            const size_t m = end - begin;
            buf->reserve(m);
            SelVector sel;
            SelRange(begin, end, &sel);
            // Batch-evaluate each output expression down its column, then
            // transpose the column vectors into output rows.
            std::vector<std::vector<Value>> cols(plan.exprs.size());
            for (size_t c = 0; c < plan.exprs.size(); ++c) {
              EvalExprBatch(*plan.exprs[c], block, sel, &cols[c]);
            }
            for (size_t i = 0; i < m; ++i) {
              Row projected;
              projected.reserve(plan.exprs.size());
              for (size_t c = 0; c < plan.exprs.size(); ++c) {
                projected.push_back(std::move(cols[c][i]));
              }
              buf->push_back(std::move(projected));
            }
          });
      return out;
    }
    case PlanKind::kJoin: {
      XDB_ASSIGN_OR_RETURN(TablePtr l, ExecutePlan(*plan.children[0], ctx));
      XDB_ASSIGN_OR_RETURN(TablePtr r, ExecutePlan(*plan.children[1], ctx));
      return ExecJoin(plan, ctx, std::move(l), std::move(r));
    }
    case PlanKind::kAggregate: {
      XDB_ASSIGN_OR_RETURN(TablePtr in, ExecutePlan(*plan.children[0], ctx));
      return ExecAggregate(plan, ctx, std::move(in));
    }
    case PlanKind::kSort: {
      XDB_ASSIGN_OR_RETURN(TablePtr in, ExecutePlan(*plan.children[0], ctx));
      trace->sort_rows += static_cast<double>(in->num_rows());
      if (OperatorStats* s = ProfCurrent(ctx)) {
        s->input_rows = static_cast<double>(in->num_rows());
        s->batches = 1;
      }
      auto out = std::make_shared<Table>(plan.output_schema, in->rows());
      std::stable_sort(
          out->mutable_rows().begin(), out->mutable_rows().end(),
          [&](const Row& a, const Row& b) {
            for (const auto& [idx, desc] : plan.sort_keys) {
              int c = a[static_cast<size_t>(idx)].Compare(
                  b[static_cast<size_t>(idx)]);
              if (c != 0) return desc ? c > 0 : c < 0;
            }
            return false;
          });
      return out;
    }
    case PlanKind::kLimit: {
      // Top-N fusion: LIMIT directly over a Sort keeps only the N best
      // rows with a bounded partial sort instead of ordering everything —
      // the pattern TPC-H Q3/Q10 ("ORDER BY revenue DESC LIMIT k") hits.
      const PlanNode& child = *plan.children[0];
      if (child.kind == PlanKind::kSort && plan.limit >= 0) {
        XDB_ASSIGN_OR_RETURN(TablePtr in,
                             ExecutePlan(*child.children[0], ctx));
        trace->sort_rows += static_cast<double>(in->num_rows());
        if (OperatorStats* s = ProfCurrent(ctx)) {
          s->input_rows = static_cast<double>(in->num_rows());
          s->batches = 1;
        }
        auto less = [&](const Row& a, const Row& b) {
          for (const auto& [idx, desc] : child.sort_keys) {
            int c = a[static_cast<size_t>(idx)].Compare(
                b[static_cast<size_t>(idx)]);
            if (c != 0) return desc ? c > 0 : c < 0;
          }
          return false;
        };
        size_t n = std::min<size_t>(static_cast<size_t>(plan.limit),
                                    in->num_rows());
        std::vector<Row> rows = in->rows();
        std::partial_sort(rows.begin(),
                          rows.begin() + static_cast<long>(n), rows.end(),
                          less);
        rows.resize(n);
        return std::make_shared<Table>(plan.output_schema,
                                       std::move(rows));
      }
      XDB_ASSIGN_OR_RETURN(TablePtr in, ExecutePlan(child, ctx));
      if (OperatorStats* s = ProfCurrent(ctx)) {
        s->input_rows = static_cast<double>(in->num_rows());
        s->batches = 1;
      }
      auto out = std::make_shared<Table>(plan.output_schema);
      size_t n = std::min<size_t>(static_cast<size_t>(plan.limit),
                                  in->num_rows());
      out->Reserve(n);
      for (size_t i = 0; i < n; ++i) out->AppendRow(in->row(i));
      return out;
    }
    case PlanKind::kPlaceholder:
      return Status::Internal(
          "placeholder node reached the executor; delegation should have "
          "replaced it with a foreign table reference");
  }
  return Status::Internal("unknown plan node kind");
}

}  // namespace

Result<TablePtr> ExecutePlan(const PlanNode& plan, ExecContext* ctx) {
  OperatorProfiler* prof = ctx->profiler();
  if (prof == nullptr) return ExecutePlanNode(plan, ctx);
  size_t idx = prof->Enter(plan);
  Result<TablePtr> result = ExecutePlanNode(plan, ctx);
  OperatorStats& s = prof->stats(idx);
  s.threads = ctx->exec_threads();
  if (result.ok()) {
    s.output_rows = static_cast<double>((*result)->num_rows());
  }
  prof->Exit(idx);
  return result;
}

}  // namespace xdb
