#include "src/exec/profile.h"

#include <cmath>
#include <cstdio>

#include "src/common/str_util.h"
#include "src/dbms/run_trace.h"

namespace xdb {

size_t OperatorProfiler::Enter(const PlanNode& node) {
  OperatorStats s;
  // First line of the node's rendering = the node's own label.
  std::string rendered = node.ToString();
  size_t eol = rendered.find('\n');
  s.label = eol == std::string::npos ? rendered : rendered.substr(0, eol);
  s.kind = node.kind;
  s.depth = static_cast<int>(open_.size());
  s.is_foreign = node.kind == PlanKind::kScan && node.is_foreign;
  s.est_rows = node.est_rows;
  if (node.est_rows >= 0) {
    s.est_bytes = node.est_rows * node.est_width;
    for (const auto& child : node.children) {
      s.est_input_rows += std::max(0.0, child->est_rows);
    }
  }
  records_.push_back(std::move(s));
  open_.push_back(records_.size() - 1);
  return records_.size() - 1;
}

void OperatorProfiler::Exit(size_t index) {
  // Balanced callers pop exactly one; popping through `index` is defensive
  // against an operator erroring out past its children's Exits.
  while (!open_.empty()) {
    size_t top = open_.back();
    open_.pop_back();
    if (top == index) break;
  }
}

void OperatorProfiler::Clear() {
  records_.clear();
  open_.clear();
}

double OperatorProfiler::ModelledSeconds(const OperatorStats& s,
                                         const EngineProfile& p,
                                         double scale_up) {
  double rows = 0;
  switch (s.kind) {
    case PlanKind::kScan:
      return s.output_rows * scale_up *
             (s.is_foreign ? p.fetch_row_cost : p.scan_row_cost);
    case PlanKind::kFilter:
      rows = s.input_rows * p.filter_row_cost;
      break;
    case PlanKind::kProject:
      rows = s.input_rows * p.project_row_cost;
      break;
    case PlanKind::kJoin:
      rows = (s.build_rows + s.probe_rows + s.output_rows) * p.join_row_cost;
      break;
    case PlanKind::kAggregate:
      rows = (s.input_rows + s.output_rows) * p.agg_row_cost;
      break;
    case PlanKind::kSort:
      rows = s.input_rows * p.sort_row_cost;
      break;
    case PlanKind::kLimit:
    case PlanKind::kPlaceholder:
      rows = 0;
      break;
  }
  return rows * scale_up;
}

double OperatorProfiler::EstimatedSeconds(const OperatorStats& s,
                                          const EngineProfile& p,
                                          double scale_up) {
  if (s.est_rows < 0) return 0;
  // Re-run the ModelledSeconds weights over the stamped cardinalities. The
  // join formula only consumes build + probe + output, so the combined
  // input estimate stands in for the per-side split.
  OperatorStats est = s;
  est.input_rows = s.est_input_rows;
  est.output_rows = s.est_rows;
  est.build_rows = s.est_input_rows;
  est.probe_rows = 0;
  return ModelledSeconds(est, p, scale_up);
}

std::vector<std::string> OperatorProfiler::Render(const EngineProfile& p,
                                                  double scale_up) const {
  std::vector<std::string> lines;
  lines.reserve(records_.size());
  for (const auto& s : records_) {
    std::string line(static_cast<size_t>(s.depth) * 2, ' ');
    line += s.label;
    char buf[160];
    if (s.kind == PlanKind::kJoin) {
      std::snprintf(buf, sizeof(buf),
                    "  (build=%.0f probe=%.0f rows=%.0f batches=%lld "
                    "threads=%d modelled=%.6fs)",
                    s.build_rows, s.probe_rows, s.output_rows,
                    static_cast<long long>(s.batches), s.threads,
                    ModelledSeconds(s, p, scale_up));
    } else if (s.kind == PlanKind::kFilter) {
      std::snprintf(buf, sizeof(buf),
                    "  (in=%.0f rows=%.0f sel=%.1f%% batches=%lld "
                    "threads=%d modelled=%.6fs)",
                    s.input_rows, s.output_rows, 100.0 * s.Selectivity(),
                    static_cast<long long>(s.batches), s.threads,
                    ModelledSeconds(s, p, scale_up));
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  (in=%.0f rows=%.0f batches=%lld threads=%d "
                    "modelled=%.6fs)",
                    s.input_rows, s.output_rows,
                    static_cast<long long>(s.batches), s.threads,
                    ModelledSeconds(s, p, scale_up));
    }
    line += buf;
    if (s.est_rows >= 0) {
      // Estimation-accountability columns, present only when the executed
      // plan carried stamps — unstamped profiles render byte-identically
      // to the pre-accountability format.
      std::snprintf(buf, sizeof(buf), "  [est=%.0f act=%.0f q-err=%.2f]",
                    s.est_rows, s.output_rows,
                    QError(s.est_rows, s.output_rows));
      line += buf;
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

}  // namespace xdb
