#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/dbms/engine_profile.h"
#include "src/plan/plan.h"

namespace xdb {

/// \brief Per-operator execution statistics recorded by the Volcano
/// executor when a profiler is attached (EXPLAIN ANALYZE, benches).
struct OperatorStats {
  std::string label;  // e.g. "Filter(l_quantity < 24)"
  PlanKind kind = PlanKind::kScan;
  int depth = 0;      // nesting depth within the executed plan
  bool is_foreign = false;  // kScan through a SQL/MED foreign table

  double input_rows = 0;   // rows consumed (filter/project/agg/sort input)
  double output_rows = 0;  // rows produced
  double build_rows = 0;   // kJoin: build-side input
  double probe_rows = 0;   // kJoin: probe-side input
  int64_t batches = 0;     // morsels processed by parallel operators
  int threads = 1;         // worker budget the operator ran under

  // Planning-time estimates copied off the stamped plan node at Enter.
  // est_rows stays -1 when the plan was never stamped, in which case the
  // render and the accountability ledger skip this record.
  double est_rows = -1;
  double est_input_rows = 0;  // sum of child-node estimates
  double est_bytes = 0;       // est_rows * stamped row width

  /// Output/input fraction for cardinality-reducing operators; 1 when the
  /// operator had no input rows.
  double Selectivity() const {
    return input_rows > 0 ? output_rows / input_rows : 1.0;
  }
};

/// \brief Execution-order operator profile of one plan execution.
///
/// Attached to an ExecContext the same way the fault injector attaches to
/// the federation: a null profiler costs the executor one pointer compare
/// per plan node, and an attached profiler never changes row flow, trace
/// counters, or result bits — it only observes them. Operators are appended
/// in pre-order (parent before children) with their nesting depth, so the
/// profile renders as a tree without retaining plan-node pointers.
class OperatorProfiler {
 public:
  /// Opens a record for `node` at the current depth; returns its index.
  /// The pointer remains valid until the next Enter (callers fill it within
  /// the operator's own scope).
  size_t Enter(const PlanNode& node);
  /// Closes the record opened by the matching Enter.
  void Exit(size_t index);

  /// The innermost record still open (entered, not exited), or nullptr.
  /// Operators fill their own stats through this between executing their
  /// children and returning. Invalidated by the next Enter.
  OperatorStats* current() {
    return open_.empty() ? nullptr : &records_[open_.back()];
  }

  OperatorStats& stats(size_t index) { return records_[index]; }
  const std::vector<OperatorStats>& records() const { return records_; }
  void Clear();

  /// Modelled seconds of one operator under an engine profile (the same
  /// per-row weights the timing model charges — DESIGN.md §5), scaled by
  /// `scale_up`.
  static double ModelledSeconds(const OperatorStats& s,
                                const EngineProfile& profile,
                                double scale_up = 1.0);

  /// Modelled seconds the planner expected for this operator: the same
  /// per-row weights as ModelledSeconds, but fed the stamped estimates
  /// instead of the observed row counts. 0 when the record is unstamped.
  static double EstimatedSeconds(const OperatorStats& s,
                                 const EngineProfile& profile,
                                 double scale_up = 1.0);

  /// Renders the profile as an indented tree, one operator per line, with
  /// rows in/out, selectivity, batches, threads, and modelled seconds —
  /// the body of EXPLAIN ANALYZE.
  std::vector<std::string> Render(const EngineProfile& profile,
                                  double scale_up = 1.0) const;

 private:
  std::vector<OperatorStats> records_;
  std::vector<size_t> open_;  // stack of entered-but-not-exited indices
};

}  // namespace xdb
