#include "src/types/value.h"

#include <cstdio>
#include <cstring>
#include <functional>

namespace xdb {

const char* TypeIdToString(TypeId t) {
  switch (t) {
    case TypeId::kBool:
      return "bool";
    case TypeId::kInt64:
      return "int64";
    case TypeId::kDouble:
      return "double";
    case TypeId::kString:
      return "string";
    case TypeId::kDate:
      return "date";
  }
  return "unknown";
}

// Howard Hinnant's days-from-civil algorithm.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<int>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

Result<int64_t> ParseDate(const std::string& s) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(s.c_str(), "%d-%d-%d", &y, &m, &d) != 3 || m < 1 ||
      m > 12 || d < 1 || d > 31) {
    return Status::ParseError("invalid date literal: '" + s + "'");
  }
  return DaysFromCivil(y, m, d);
}

std::string FormatDate(int64_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

double Value::AsDouble() const {
  switch (type_) {
    case TypeId::kDouble:
      return f64_;
    default:
      return static_cast<double>(i64_);
  }
}

namespace {
bool IsNumericType(TypeId t) { return t != TypeId::kString; }
}  // namespace

int Value::Compare(const Value& other) const {
  if (is_null_ || other.is_null_) {
    if (is_null_ && other.is_null_) return 0;
    return is_null_ ? -1 : 1;
  }
  if (type_ == TypeId::kString && other.type_ == TypeId::kString) {
    return str_.compare(other.str_) < 0 ? -1 : (str_ == other.str_ ? 0 : 1);
  }
  if (IsNumericType(type_) && IsNumericType(other.type_)) {
    // Avoid double rounding for same-repr integer comparisons.
    if (type_ != TypeId::kDouble && other.type_ != TypeId::kDouble) {
      return i64_ < other.i64_ ? -1 : (i64_ == other.i64_ ? 0 : 1);
    }
    double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a == b ? 0 : 1);
  }
  // Mixed string/numeric: deterministic order by type tag.
  return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
}

size_t Value::SerializedSize() const {
  if (is_null_) return 1;
  switch (type_) {
    case TypeId::kBool:
      return 1;
    case TypeId::kInt64:
    case TypeId::kDouble:
    case TypeId::kDate:
      return 8;
    case TypeId::kString:
      return 4 + str_.size();
  }
  return 8;
}

size_t Value::Hash() const {
  if (is_null_) return 0x9e3779b97f4a7c15ULL;
  switch (type_) {
    case TypeId::kString:
      return std::hash<std::string>()(str_);
    case TypeId::kDouble: {
      double d = f64_;
      // Normalize -0.0 so it hashes like 0.0 (they compare equal).
      if (d == 0.0) d = 0.0;
      return std::hash<double>()(d);
    }
    default:
      return std::hash<int64_t>()(i64_);
  }
}

namespace {

void AppendFixed64(std::string* out, uint64_t bits) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

}  // namespace

// Tag bytes keep different type classes (and NULL) from colliding; fixed or
// length-prefixed payloads keep concatenated keys unambiguous. These free
// functions are the single source of truth for the encoding — Value and the
// columnar chunks both call them, so code-space key extraction cannot drift
// from the row path.

void AppendNormalizedNullKey(std::string* out) {
  out->push_back('\1');  // NULL, regardless of declared type (Compare: all
                         // NULLs are equal)
}

void AppendNormalizedStringKey(const std::string& s, std::string* out) {
  out->push_back('s');
  AppendFixed64(out, static_cast<uint64_t>(s.size()));
  out->append(s);
}

void AppendNormalizedInt64Key(int64_t i, std::string* out) {
  // One class for the int64-payload types: Compare treats bool, int64 and
  // date as the same numeric domain.
  out->push_back('i');
  AppendFixed64(out, static_cast<uint64_t>(i));
}

void AppendNormalizedDoubleKey(double d, std::string* out) {
  if (d == 0.0) d = 0.0;  // -0.0 compares equal to 0.0
  // Integral doubles encode as int64 so that 1.0 == 1 (Compare widens the
  // int side to double for mixed comparisons).
  int64_t i = static_cast<int64_t>(d);
  if (d >= -9007199254740992.0 && d <= 9007199254740992.0 &&
      static_cast<double>(i) == d) {
    AppendNormalizedInt64Key(i, out);
    return;
  }
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  out->push_back('d');
  AppendFixed64(out, bits);
}

void Value::AppendNormalizedKey(std::string* out) const {
  if (is_null_) {
    AppendNormalizedNullKey(out);
    return;
  }
  switch (type_) {
    case TypeId::kString:
      AppendNormalizedStringKey(str_, out);
      return;
    case TypeId::kDouble:
      AppendNormalizedDoubleKey(f64_, out);
      return;
    case TypeId::kBool:
    case TypeId::kInt64:
    case TypeId::kDate:
      AppendNormalizedInt64Key(i64_, out);
      return;
  }
}

std::string Value::ToSqlLiteral() const {
  if (is_null_) return "NULL";
  switch (type_) {
    case TypeId::kBool:
      return i64_ ? "TRUE" : "FALSE";
    case TypeId::kInt64:
      return std::to_string(i64_);
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.10g", f64_);
      return buf;
    }
    case TypeId::kString: {
      std::string out = "'";
      for (char c : str_) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
    case TypeId::kDate:
      return "DATE '" + FormatDate(i64_) + "'";
  }
  return "NULL";
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  switch (type_) {
    case TypeId::kBool:
      return i64_ ? "true" : "false";
    case TypeId::kInt64:
      return std::to_string(i64_);
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4f", f64_);
      return buf;
    }
    case TypeId::kString:
      return str_;
    case TypeId::kDate:
      return FormatDate(i64_);
  }
  return "NULL";
}

}  // namespace xdb
