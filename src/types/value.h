#pragma once

#include <cstdint>
#include <string>

#include "src/common/result.h"

namespace xdb {

/// \brief Physical type of a Value / column.
enum class TypeId : uint8_t {
  kBool,
  kInt64,
  kDouble,
  kString,
  kDate,  // stored as days since 1970-01-01 in an int64 payload
};

/// \brief Stable lowercase name of a type ("int64", "date", ...).
const char* TypeIdToString(TypeId t);

/// \brief Converts a calendar date to days since the Unix epoch.
///
/// Valid for years 1..9999 (proleptic Gregorian), which covers TPC-H's
/// 1992-1998 date range with room to spare.
int64_t DaysFromCivil(int year, int month, int day);

/// \brief Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

/// \brief Parses "YYYY-MM-DD" into days since epoch.
Result<int64_t> ParseDate(const std::string& s);

/// \brief Formats days since epoch as "YYYY-MM-DD".
std::string FormatDate(int64_t days);

/// Normalized-key encoding primitives shared by Value::AppendNormalizedKey
/// and the columnar chunk encoders (column_chunk.cc), so code-space key
/// extraction is byte-identical to the row path by construction.
void AppendNormalizedNullKey(std::string* out);
void AppendNormalizedStringKey(const std::string& s, std::string* out);
void AppendNormalizedInt64Key(int64_t i, std::string* out);
void AppendNormalizedDoubleKey(double d, std::string* out);

/// \brief A single, nullable SQL value.
///
/// Values are small (int64/double inline, string out-of-line) and carry their
/// type tag. NULL values still have a type. Comparison follows SQL semantics
/// except that NULLs order first (used by ORDER BY and group keys; expression
/// evaluation handles three-valued logic separately).
class Value {
 public:
  /// Constructs a typed NULL.
  static Value Null(TypeId t) {
    Value v;
    v.type_ = t;
    v.is_null_ = true;
    return v;
  }
  static Value Bool(bool b) {
    Value v;
    v.type_ = TypeId::kBool;
    v.i64_ = b ? 1 : 0;
    return v;
  }
  static Value Int64(int64_t i) {
    Value v;
    v.type_ = TypeId::kInt64;
    v.i64_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = TypeId::kDouble;
    v.f64_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = TypeId::kString;
    v.str_ = std::move(s);
    return v;
  }
  static Value Date(int64_t days) {
    Value v;
    v.type_ = TypeId::kDate;
    v.i64_ = days;
    return v;
  }

  TypeId type() const { return type_; }
  bool is_null() const { return is_null_; }

  bool bool_value() const { return i64_ != 0; }
  int64_t int64_value() const { return i64_; }
  double double_value() const { return f64_; }
  const std::string& string_value() const { return str_; }
  int64_t date_value() const { return i64_; }

  /// Numeric view: int64 and date widen to double; bool to 0/1.
  double AsDouble() const;

  /// Total order: NULL < non-NULL; cross-numeric compares as double.
  /// Comparing string to numeric is an ordering by type id (deterministic).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Approximate serialized width in bytes, used for transfer accounting.
  size_t SerializedSize() const;

  /// Hash combining type class and payload; equal values hash equally.
  size_t Hash() const;

  /// Appends a normalized-key encoding of this value to `out`: byte strings
  /// that are equal exactly when the values are equal under Compare()
  /// (including NULL == NULL and cross-numeric equality like 1 == 1.0), and
  /// unambiguous under concatenation, so a multi-column join/group key can be
  /// serialized once into a flat std::string and hashed/compared as raw
  /// bytes instead of re-hashing a vector<Value> per probe.
  void AppendNormalizedKey(std::string* out) const;

  /// SQL-literal rendering: strings quoted, dates as DATE '...', NULL as NULL.
  std::string ToSqlLiteral() const;

  /// Display rendering (no quotes), used for result printing.
  std::string ToString() const;

 private:
  TypeId type_ = TypeId::kInt64;
  bool is_null_ = false;
  int64_t i64_ = 0;
  double f64_ = 0.0;
  std::string str_;
};

}  // namespace xdb
