#pragma once

#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/types/schema.h"
#include "src/types/value.h"

namespace xdb {

/// \brief A row of values; widths match the owning relation's schema.
using Row = std::vector<Value>;

/// \brief Approximate serialized size of a row (for transfer accounting).
size_t RowSerializedSize(const Row& row);

/// \brief In-memory relation: a schema plus a vector of rows.
///
/// This is the storage substrate for the simulated DBMS nodes. Row store is
/// deliberate: the paper's experiments are dominated by data movement, not by
/// local scan micro-performance, and a row layout keeps the foreign-wrapper
/// streaming path simple.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() {
    // Handing out mutable rows voids the size cache; the caller may rewrite
    // anything.
    InvalidateSerializedSize();
    return rows_;
  }
  const Row& row(size_t i) const { return rows_[i]; }

  void AppendRow(Row row) {
    rows_.push_back(std::move(row));
    InvalidateSerializedSize();
  }

  /// Pre-sizes the row vector for `n` total rows (see std::vector::reserve);
  /// output paths that know their cardinality use this to avoid repeated
  /// reallocation while appending.
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Total approximate serialized size of all rows. Computed on first call
  /// and cached until the rows change (AppendRow / mutable_rows): this sits
  /// on the transfer-accounting path of every foreign fetch, which used to
  /// re-walk every row per call.
  size_t SerializedSize() const;

  /// Renders the first `max_rows` rows as an ASCII table (for examples).
  std::string ToDisplayString(size_t max_rows = 20) const;

 private:
  static constexpr size_t kSizeUnknown = std::numeric_limits<size_t>::max();

  void InvalidateSerializedSize() {
    serialized_size_.store(kSizeUnknown, std::memory_order_relaxed);
  }

  Schema schema_;
  std::vector<Row> rows_;
  // Atomic so concurrent const readers (tables are shared read-only across
  // morsel workers) may race to fill the cache without UB; both compute the
  // same value.
  mutable std::atomic<size_t> serialized_size_{kSizeUnknown};
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace xdb
