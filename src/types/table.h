#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/types/schema.h"
#include "src/types/value.h"

namespace xdb {

/// \brief A row of values; widths match the owning relation's schema.
using Row = std::vector<Value>;

/// \brief Approximate serialized size of a row (for transfer accounting).
size_t RowSerializedSize(const Row& row);

/// \brief In-memory relation: a schema plus a vector of rows.
///
/// This is the storage substrate for the simulated DBMS nodes. Row store is
/// deliberate: the paper's experiments are dominated by data movement, not by
/// local scan micro-performance, and a row layout keeps the foreign-wrapper
/// streaming path simple.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  const Row& row(size_t i) const { return rows_[i]; }

  void AppendRow(Row row) { rows_.push_back(std::move(row)); }

  /// Pre-sizes the row vector for `n` total rows (see std::vector::reserve);
  /// output paths that know their cardinality use this to avoid repeated
  /// reallocation while appending.
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Total approximate serialized size of all rows.
  size_t SerializedSize() const;

  /// Renders the first `max_rows` rows as an ASCII table (for examples).
  std::string ToDisplayString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace xdb
