#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/types/column_chunk.h"
#include "src/types/schema.h"
#include "src/types/value.h"

namespace xdb {

/// \brief Approximate serialized size of a row (for transfer accounting).
size_t RowSerializedSize(const Row& row);

/// \brief In-memory relation: a schema plus a vector of rows.
///
/// This is the storage substrate for the simulated DBMS nodes. Row store is
/// deliberate: the paper's experiments are dominated by data movement, not by
/// local scan micro-performance, and a row layout keeps the foreign-wrapper
/// streaming path simple.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() {
    // Handing out mutable rows bumps the generation: the derived caches
    // (serialized size, chunked mirror) lazily revalidate on next read
    // instead of being rebuilt eagerly, so repeated read-modify cycles cost
    // one rebuild per burst and pure readers never pay anything.
    BumpGeneration();
    return rows_;
  }
  const Row& row(size_t i) const { return rows_[i]; }

  void AppendRow(Row row) {
    rows_.push_back(std::move(row));
    BumpGeneration();
  }

  /// Pre-sizes the row vector for `n` total rows (see std::vector::reserve);
  /// output paths that know their cardinality use this to avoid repeated
  /// reallocation while appending.
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Monotone mutation counter; derived caches key off it.
  uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

  /// Total approximate serialized size of all rows in row format (what the
  /// classic wire mode ships). Cached per generation: this sits on the
  /// transfer-accounting path of every foreign fetch.
  size_t SerializedSize() const;

  /// Wire width of the columnar encoding (dictionary/RLE compressed; see
  /// ColumnChunk). Encodes and caches the chunked mirror on first call.
  /// Always <= SerializedSize(); falls back to it when the rows cannot be
  /// chunked (ragged widths).
  size_t EncodedSerializedSize() const;

  /// Builds (or revalidates) the cached columnar mirror and returns it.
  /// Thread-safe; nullptr only when the rows don't match the schema.
  std::shared_ptr<const ChunkedTable> EnsureChunked() const;

  /// The cached columnar mirror if one exists for the current generation,
  /// else nullptr. Never encodes — operators use this so only tables that
  /// were chunked up front (base tables at load time) take the column path.
  std::shared_ptr<const ChunkedTable> chunked() const;

  /// Renders the first `max_rows` rows as an ASCII table (for examples).
  std::string ToDisplayString(size_t max_rows = 20) const;

 private:
  static constexpr uint64_t kNoGeneration =
      std::numeric_limits<uint64_t>::max();

  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_relaxed);
  }

  Schema schema_;
  std::vector<Row> rows_;
  // Mutations are single-writer (executor output paths); the caches below
  // may be filled from concurrent const readers (tables are shared
  // read-only across morsel workers), hence the mutex + atomic generation.
  std::atomic<uint64_t> generation_{0};
  mutable std::mutex cache_mu_;
  mutable uint64_t size_generation_ = kNoGeneration;
  mutable size_t cached_size_ = 0;
  mutable uint64_t chunk_generation_ = kNoGeneration;
  mutable std::shared_ptr<const ChunkedTable> chunks_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace xdb
