#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/types/schema.h"
#include "src/types/value.h"

namespace xdb {

using Row = std::vector<Value>;

/// \brief Physical encoding chosen for one column chunk.
enum class ColumnEncoding : uint8_t {
  kPlain,       // typed vector, one slot per lane
  kDictionary,  // string dictionary + per-lane codes
  kRle,         // run-length encoded int64 runs (null-free columns only)
  kFor,         // frame-of-reference: base value + narrow per-lane offsets
  kBoxed,       // vector<Value> fallback (mixed/unknown lane types)
};

const char* ColumnEncodingToString(ColumnEncoding e);

/// \brief One column of a table in columnar form.
///
/// Encode() picks the cheapest representation per column: strings get a
/// first-occurrence dictionary with narrow codes when that beats plain,
/// int64-class columns (bool/int64/date) get RLE when the run structure pays
/// for itself or frame-of-reference offsets when the value range fits a
/// narrow width (keys, dates, and years almost always do), everything whose
/// lanes do not all match the declared schema
/// type falls back to boxed Values (bit-identical trivially). Decoding via
/// GetValue() reconstructs the original Value exactly — type tag, NULL-ness
/// and double bit patterns included — which the Columnar* property tests
/// assert across randomized tables.
///
/// EncodedSize() is the modelled wire width of the chunk (what the columnar
/// wire format charges); DecodedSize() matches the row-format accounting
/// (sum of Value::SerializedSize). EncodedSize() <= DecodedSize() always:
/// dictionary/RLE are only chosen when smaller, plain equals the row width,
/// and the null bytemap never costs more than row-format NULL markers.
class ColumnChunk {
 public:
  /// Encodes column `col` of `rows` (declared schema type `declared`).
  static ColumnChunk Encode(const std::vector<Row>& rows, size_t col,
                            TypeId declared);

  ColumnEncoding encoding() const { return encoding_; }
  TypeId type() const { return type_; }
  size_t size() const { return size_; }
  bool has_nulls() const { return !nulls_.empty(); }
  bool IsNull(size_t i) const { return !nulls_.empty() && nulls_[i] != 0; }

  /// Reconstructs lane `i` as the exact original Value.
  Value GetValue(size_t i) const;

  /// Appends lane `i`'s normalized-key bytes — byte-identical to
  /// Value::AppendNormalizedKey on the decoded value (shared primitives).
  void AppendNormalizedKey(size_t i, std::string* out) const;

  size_t EncodedSize() const { return encoded_size_; }
  size_t DecodedSize() const { return decoded_size_; }

  // Typed payload access for the vectorized kernels. Valid per encoding().
  const std::vector<int64_t>& i64_data() const { return i64_; }
  const std::vector<double>& f64_data() const { return f64_; }
  const std::vector<std::string>& str_data() const { return strs_; }
  const std::vector<std::string>& dict() const { return dict_; }
  const std::vector<uint32_t>& codes() const { return codes_; }
  const std::vector<int64_t>& run_values() const { return run_values_; }
  const std::vector<uint32_t>& run_starts() const { return run_starts_; }
  int64_t for_ref() const { return for_ref_; }
  const std::vector<uint8_t>& null_bytemap() const { return nulls_; }
  const std::vector<Value>& boxed() const { return boxed_; }

 private:
  ColumnEncoding encoding_ = ColumnEncoding::kBoxed;
  TypeId type_ = TypeId::kInt64;
  size_t size_ = 0;
  std::vector<uint8_t> nulls_;  // 1 = NULL; empty when the column has none
  std::vector<int64_t> i64_;    // kPlain bool/int64/date payload
  std::vector<double> f64_;     // kPlain double payload
  std::vector<std::string> strs_;  // kPlain string payload
  std::vector<std::string> dict_;  // kDictionary: first-occurrence order
  std::vector<uint32_t> codes_;    // kDictionary: per-lane dict index;
                                   // kFor: per-lane offset from for_ref_
  int64_t for_ref_ = 0;            // kFor: base (minimum non-null) value
  std::vector<int64_t> run_values_;   // kRle: value of each run
  std::vector<uint32_t> run_starts_;  // kRle: first lane of each run (asc)
  std::vector<Value> boxed_;          // kBoxed fallback
  size_t encoded_size_ = 0;
  size_t decoded_size_ = 0;
};

/// \brief Columnar mirror of a Table: one ColumnChunk per schema field.
class ChunkedTable {
 public:
  /// Encodes `rows` under `schema`. Returns nullptr if any row's width does
  /// not match the schema (defensive: such tables stay on the row path).
  static std::shared_ptr<const ChunkedTable> FromRows(
      const Schema& schema, const std::vector<Row>& rows);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnChunk& column(size_t c) const { return columns_[c]; }

  /// Modelled wire width of the encoded table (sum over columns).
  size_t EncodedSize() const;
  /// Row-format width (matches Table::SerializedSize on the same rows).
  size_t DecodedSize() const;

 private:
  size_t num_rows_ = 0;
  std::vector<ColumnChunk> columns_;
};

}  // namespace xdb
