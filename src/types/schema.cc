#include "src/types/schema.h"

#include "src/common/str_util.h"

namespace xdb {

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return i;
  }
  return std::nullopt;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Field> fields = left.fields();
  for (const auto& f : right.fields()) fields.push_back(f);
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += TypeIdToString(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace xdb
