#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/types/value.h"

namespace xdb {

/// \brief A named, typed column.
struct Field {
  std::string name;
  TypeId type = TypeId::kInt64;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief Ordered list of fields describing a relation's shape.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Case-insensitive lookup; returns nullopt when absent.
  std::optional<size_t> IndexOf(const std::string& name) const;

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  /// Concatenation, used for join output schemas.
  static Schema Concat(const Schema& left, const Schema& right);

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace xdb
