#include "src/types/table.h"

#include <algorithm>

namespace xdb {

size_t RowSerializedSize(const Row& row) {
  size_t n = 0;
  for (const auto& v : row) n += v.SerializedSize();
  return n;
}

size_t Table::SerializedSize() const {
  size_t cached = serialized_size_.load(std::memory_order_relaxed);
  if (cached != kSizeUnknown) return cached;
  size_t n = 0;
  for (const auto& r : rows_) n += RowSerializedSize(r);
  serialized_size_.store(n, std::memory_order_relaxed);
  return n;
}

std::string Table::ToDisplayString(size_t max_rows) const {
  // Compute column widths over header + shown rows.
  size_t shown = std::min(max_rows, rows_.size());
  std::vector<size_t> widths(schema_.num_fields());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    widths[c] = schema_.field(c).name.size();
  }
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(schema_.num_fields());
    for (size_t c = 0; c < schema_.num_fields(); ++c) {
      cells[r][c] = rows_[r][c].ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  std::string out;
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    out += (c ? " | " : "| ") + pad(schema_.field(c).name, widths[c]);
  }
  out += " |\n";
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    out += (c ? "-+-" : "+-") + std::string(widths[c], '-');
  }
  out += "-+\n";
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < schema_.num_fields(); ++c) {
      out += (c ? " | " : "| ") + pad(cells[r][c], widths[c]);
    }
    out += " |\n";
  }
  if (shown < rows_.size()) {
    out += "... (" + std::to_string(rows_.size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace xdb
