#include "src/types/table.h"

#include <algorithm>

namespace xdb {

size_t RowSerializedSize(const Row& row) {
  size_t n = 0;
  for (const auto& v : row) n += v.SerializedSize();
  return n;
}

size_t Table::SerializedSize() const {
  const uint64_t gen = generation();
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (size_generation_ == gen) return cached_size_;
  size_t n = 0;
  for (const auto& r : rows_) n += RowSerializedSize(r);
  cached_size_ = n;
  size_generation_ = gen;
  return n;
}

size_t Table::EncodedSerializedSize() const {
  auto chunks = EnsureChunked();
  if (!chunks) return SerializedSize();
  return chunks->EncodedSize();
}

std::shared_ptr<const ChunkedTable> Table::EnsureChunked() const {
  const uint64_t gen = generation();
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (chunk_generation_ != gen) {
    chunks_ = ChunkedTable::FromRows(schema_, rows_);
    chunk_generation_ = gen;
  }
  return chunks_;
}

std::shared_ptr<const ChunkedTable> Table::chunked() const {
  const uint64_t gen = generation();
  std::lock_guard<std::mutex> lock(cache_mu_);
  return chunk_generation_ == gen ? chunks_ : nullptr;
}

std::string Table::ToDisplayString(size_t max_rows) const {
  // Compute column widths over header + shown rows.
  size_t shown = std::min(max_rows, rows_.size());
  std::vector<size_t> widths(schema_.num_fields());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    widths[c] = schema_.field(c).name.size();
  }
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(schema_.num_fields());
    for (size_t c = 0; c < schema_.num_fields(); ++c) {
      cells[r][c] = rows_[r][c].ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  std::string out;
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    out += (c ? " | " : "| ") + pad(schema_.field(c).name, widths[c]);
  }
  out += " |\n";
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    out += (c ? "-+-" : "+-") + std::string(widths[c], '-');
  }
  out += "-+\n";
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < schema_.num_fields(); ++c) {
      out += (c ? " | " : "| ") + pad(cells[r][c], widths[c]);
    }
    out += " |\n";
  }
  if (shown < rows_.size()) {
    out += "... (" + std::to_string(rows_.size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace xdb
