#include "src/types/column_chunk.h"

#include <algorithm>
#include <unordered_map>

namespace xdb {

const char* ColumnEncodingToString(ColumnEncoding e) {
  switch (e) {
    case ColumnEncoding::kPlain:
      return "plain";
    case ColumnEncoding::kDictionary:
      return "dict";
    case ColumnEncoding::kRle:
      return "rle";
    case ColumnEncoding::kFor:
      return "for";
    case ColumnEncoding::kBoxed:
      return "boxed";
  }
  return "unknown";
}

namespace {

// Modelled wire cost of the null marks: a bytemap, but never more than the
// row format's one-byte-per-NULL markers (a sparse null list is cheaper than
// a bitmap when NULLs are very rare), so EncodedSize <= DecodedSize holds.
size_t NullOverhead(size_t n, size_t null_count) {
  if (null_count == 0) return 0;
  return std::min((n + 7) / 8, null_count);
}

size_t PlainLaneWidth(TypeId t) { return t == TypeId::kBool ? 1 : 8; }

size_t DictCodeWidth(size_t dict_size) {
  if (dict_size <= 256) return 1;
  if (dict_size <= 65536) return 2;
  return 4;
}

// Narrowest offset width covering an unsigned range; 0 = range too wide for
// frame-of-reference to pay (an 8-byte offset is just plain again).
size_t ForOffsetWidth(uint64_t range) {
  if (range < (1ull << 8)) return 1;
  if (range < (1ull << 16)) return 2;
  if (range < (1ull << 32)) return 4;
  return 0;
}

}  // namespace

ColumnChunk ColumnChunk::Encode(const std::vector<Row>& rows, size_t col,
                                TypeId declared) {
  ColumnChunk c;
  c.type_ = declared;
  const size_t n = rows.size();
  c.size_ = n;

  size_t null_count = 0;
  bool uniform = true;
  for (size_t i = 0; i < n; ++i) {
    const Value& v = rows[i][col];
    c.decoded_size_ += v.SerializedSize();
    if (v.is_null()) ++null_count;
    // NULL lanes carry type tags too; a foreign tag forces the boxed
    // fallback so GetValue can reconstruct it exactly.
    if (v.type() != declared) uniform = false;
  }

  if (!uniform) {
    c.encoding_ = ColumnEncoding::kBoxed;
    c.boxed_.reserve(n);
    for (size_t i = 0; i < n; ++i) c.boxed_.push_back(rows[i][col]);
    if (null_count > 0) {
      c.nulls_.resize(n, 0);
      for (size_t i = 0; i < n; ++i) c.nulls_[i] = rows[i][col].is_null();
    }
    c.encoded_size_ = c.decoded_size_;  // boxed ships as rows
    return c;
  }

  if (null_count > 0) {
    c.nulls_.resize(n, 0);
    for (size_t i = 0; i < n; ++i) c.nulls_[i] = rows[i][col].is_null();
  }
  const size_t non_null = n - null_count;
  const size_t null_bytes = NullOverhead(n, null_count);

  switch (declared) {
    case TypeId::kBool:
    case TypeId::kInt64:
    case TypeId::kDate: {
      c.i64_.resize(n, 0);
      for (size_t i = 0; i < n; ++i) {
        const Value& v = rows[i][col];
        if (!v.is_null()) c.i64_[i] = v.int64_value();
      }
      const size_t plain_bytes = PlainLaneWidth(declared) * non_null;
      size_t rle_bytes = plain_bytes;
      if (null_count == 0 && n > 0) {
        size_t runs = 1;
        for (size_t i = 1; i < n; ++i) runs += c.i64_[i] != c.i64_[i - 1];
        rle_bytes = runs * 12;  // 8B value + 4B length per run
      }
      // Frame of reference: keys, dates, and years span tiny ranges, so
      // narrow offsets from the column minimum beat full 8-byte lanes.
      // Bools are excluded (plain is already 1 byte per lane).
      size_t for_bytes = plain_bytes;
      size_t for_width = 0;
      int64_t for_min = 0;
      if (declared != TypeId::kBool && non_null > 0) {
        int64_t mn = 0;
        int64_t mx = 0;
        bool first = true;
        for (size_t i = 0; i < n; ++i) {
          if (c.IsNull(i)) continue;
          if (first || c.i64_[i] < mn) mn = c.i64_[i];
          if (first || c.i64_[i] > mx) mx = c.i64_[i];
          first = false;
        }
        const uint64_t range =
            static_cast<uint64_t>(mx) - static_cast<uint64_t>(mn);
        for_width = ForOffsetWidth(range);
        if (for_width > 0) {
          for_min = mn;
          for_bytes = 8 + for_width * non_null + null_bytes;
        }
      }
      if (rle_bytes < plain_bytes && rle_bytes <= for_bytes) {
        c.encoding_ = ColumnEncoding::kRle;
        c.run_values_.reserve(rle_bytes / 12);
        c.run_starts_.reserve(rle_bytes / 12);
        for (size_t i = 0; i < n; ++i) {
          if (i == 0 || c.i64_[i] != c.i64_[i - 1]) {
            c.run_values_.push_back(c.i64_[i]);
            c.run_starts_.push_back(static_cast<uint32_t>(i));
          }
        }
        c.i64_.clear();
        c.i64_.shrink_to_fit();
        c.encoded_size_ = rle_bytes;
        return c;
      }
      if (for_width > 0 && for_bytes < plain_bytes + null_bytes) {
        c.encoding_ = ColumnEncoding::kFor;
        c.for_ref_ = for_min;
        c.codes_.resize(n, 0);
        for (size_t i = 0; i < n; ++i) {
          if (c.IsNull(i)) continue;
          c.codes_[i] = static_cast<uint32_t>(
              static_cast<uint64_t>(c.i64_[i]) -
              static_cast<uint64_t>(for_min));
        }
        c.i64_.clear();
        c.i64_.shrink_to_fit();
        c.encoded_size_ = for_bytes;
        return c;
      }
      c.encoding_ = ColumnEncoding::kPlain;
      c.encoded_size_ = plain_bytes + null_bytes;
      return c;
    }
    case TypeId::kDouble: {
      c.encoding_ = ColumnEncoding::kPlain;
      c.f64_.resize(n, 0.0);
      for (size_t i = 0; i < n; ++i) {
        const Value& v = rows[i][col];
        if (!v.is_null()) c.f64_[i] = v.double_value();
      }
      c.encoded_size_ = 8 * non_null + null_bytes;
      return c;
    }
    case TypeId::kString: {
      size_t plain_bytes = 0;
      std::unordered_map<std::string, uint32_t> index;
      c.codes_.resize(n, 0);
      for (size_t i = 0; i < n; ++i) {
        const Value& v = rows[i][col];
        if (v.is_null()) continue;
        plain_bytes += 4 + v.string_value().size();
        auto [it, inserted] = index.emplace(
            v.string_value(), static_cast<uint32_t>(c.dict_.size()));
        if (inserted) c.dict_.push_back(v.string_value());
        c.codes_[i] = it->second;
      }
      size_t dict_bytes = DictCodeWidth(c.dict_.size()) * non_null;
      for (const std::string& s : c.dict_) dict_bytes += 4 + s.size();
      if (dict_bytes < plain_bytes) {
        c.encoding_ = ColumnEncoding::kDictionary;
        c.encoded_size_ = dict_bytes + null_bytes;
        return c;
      }
      c.encoding_ = ColumnEncoding::kPlain;
      c.strs_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        const Value& v = rows[i][col];
        if (!v.is_null()) c.strs_[i] = v.string_value();
      }
      c.dict_.clear();
      c.codes_.clear();
      c.codes_.shrink_to_fit();
      c.encoded_size_ = plain_bytes + null_bytes;
      return c;
    }
  }
  // Unreachable; keep the boxed default if a new TypeId ever appears.
  c.encoding_ = ColumnEncoding::kBoxed;
  c.boxed_.reserve(n);
  for (size_t i = 0; i < n; ++i) c.boxed_.push_back(rows[i][col]);
  c.encoded_size_ = c.decoded_size_;
  return c;
}

namespace {

size_t RunIndexFor(const std::vector<uint32_t>& starts, size_t i) {
  auto it = std::upper_bound(starts.begin(), starts.end(),
                             static_cast<uint32_t>(i));
  return static_cast<size_t>(it - starts.begin()) - 1;
}

}  // namespace

Value ColumnChunk::GetValue(size_t i) const {
  if (encoding_ == ColumnEncoding::kBoxed) return boxed_[i];
  if (IsNull(i)) return Value::Null(type_);
  switch (encoding_) {
    case ColumnEncoding::kPlain:
      switch (type_) {
        case TypeId::kBool:
          return Value::Bool(i64_[i] != 0);
        case TypeId::kInt64:
          return Value::Int64(i64_[i]);
        case TypeId::kDate:
          return Value::Date(i64_[i]);
        case TypeId::kDouble:
          return Value::Double(f64_[i]);
        case TypeId::kString:
          return Value::String(strs_[i]);
      }
      break;
    case ColumnEncoding::kDictionary:
      return Value::String(dict_[codes_[i]]);
    case ColumnEncoding::kRle: {
      int64_t v = run_values_[RunIndexFor(run_starts_, i)];
      switch (type_) {
        case TypeId::kBool:
          return Value::Bool(v != 0);
        case TypeId::kDate:
          return Value::Date(v);
        default:
          return Value::Int64(v);
      }
    }
    case ColumnEncoding::kFor: {
      const int64_t v = static_cast<int64_t>(
          static_cast<uint64_t>(for_ref_) + codes_[i]);
      return type_ == TypeId::kDate ? Value::Date(v) : Value::Int64(v);
    }
    case ColumnEncoding::kBoxed:
      break;
  }
  return Value::Null(type_);
}

void ColumnChunk::AppendNormalizedKey(size_t i, std::string* out) const {
  if (encoding_ == ColumnEncoding::kBoxed) {
    boxed_[i].AppendNormalizedKey(out);
    return;
  }
  if (IsNull(i)) {
    AppendNormalizedNullKey(out);
    return;
  }
  switch (encoding_) {
    case ColumnEncoding::kPlain:
      switch (type_) {
        case TypeId::kBool:
        case TypeId::kInt64:
        case TypeId::kDate:
          AppendNormalizedInt64Key(i64_[i], out);
          return;
        case TypeId::kDouble:
          AppendNormalizedDoubleKey(f64_[i], out);
          return;
        case TypeId::kString:
          AppendNormalizedStringKey(strs_[i], out);
          return;
      }
      return;
    case ColumnEncoding::kDictionary:
      AppendNormalizedStringKey(dict_[codes_[i]], out);
      return;
    case ColumnEncoding::kRle:
      AppendNormalizedInt64Key(run_values_[RunIndexFor(run_starts_, i)], out);
      return;
    case ColumnEncoding::kFor:
      AppendNormalizedInt64Key(
          static_cast<int64_t>(static_cast<uint64_t>(for_ref_) + codes_[i]),
          out);
      return;
    case ColumnEncoding::kBoxed:
      return;
  }
}

std::shared_ptr<const ChunkedTable> ChunkedTable::FromRows(
    const Schema& schema, const std::vector<Row>& rows) {
  const size_t width = schema.num_fields();
  for (const Row& r : rows) {
    if (r.size() != width) return nullptr;
  }
  auto t = std::make_shared<ChunkedTable>();
  t->num_rows_ = rows.size();
  t->columns_.reserve(width);
  for (size_t c = 0; c < width; ++c) {
    t->columns_.push_back(ColumnChunk::Encode(rows, c, schema.field(c).type));
  }
  return t;
}

size_t ChunkedTable::EncodedSize() const {
  size_t total = 0;
  for (const ColumnChunk& c : columns_) total += c.EncodedSize();
  return total;
}

size_t ChunkedTable::DecodedSize() const {
  size_t total = 0;
  for (const ColumnChunk& c : columns_) total += c.DecodedSize();
  return total;
}

}  // namespace xdb
