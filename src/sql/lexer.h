#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace xdb {
namespace sql {

enum class TokenType : uint8_t {
  kIdentifier,
  kKeyword,    // recognised SQL keyword (normalised uppercase in `text`)
  kNumber,
  kString,     // contents without quotes
  kOperator,   // punctuation / operators, text holds the lexeme
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  double number = 0;
  bool is_integer = false;
  size_t position = 0;  // byte offset, for error messages
};

/// \brief Tokenises SQL text. Keywords are case-insensitive; identifiers
/// may be double-quoted or backquoted (dialect tolerance).
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace sql
}  // namespace xdb
