#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/expr/expr.h"

namespace xdb {
namespace sql {

struct SelectStmt;
using SelectPtr = std::shared_ptr<SelectStmt>;

/// \brief A FROM-clause item: `[db.]table [AS alias]` or a derived table
/// `(SELECT ...) AS alias`.
struct TableRef {
  std::string db;     // optional database qualifier (cross-database queries)
  std::string table;  // relation name (empty for derived tables)
  std::string alias;  // defaults to `table` when empty; required for
                      // derived tables
  SelectPtr subquery; // non-null for derived tables

  const std::string& EffectiveAlias() const {
    return alias.empty() ? table : alias;
  }
};

/// \brief ORDER BY item.
struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

/// \brief A parsed SELECT statement (possibly `SELECT *`).
struct SelectStmt {
  bool select_star = false;
  std::vector<ExprPtr> select_list;  // empty when select_star
  std::vector<TableRef> from;
  ExprPtr where;                     // null when absent; conjunctions intact
  std::vector<ExprPtr> group_by;
  ExprPtr having;                    // null when absent
  std::vector<OrderItem> order_by;
  int64_t limit = -1;                // -1 means no LIMIT

  /// Renders back to (dialect-neutral) SQL; used in tests and logging.
  std::string ToSql() const;
};

enum class StatementKind : uint8_t {
  kSelect,
  kCreateView,
  kCreateForeignTable,
  kCreateTableAs,
  kDrop,
  kExplain,
};

enum class RelationKind : uint8_t { kTable, kView, kForeignTable };

/// \brief Any parsed statement. A single struct keeps the DBMS session's
/// dispatch trivial; only fields relevant to `kind` are populated.
struct Statement {
  StatementKind kind = StatementKind::kSelect;

  SelectPtr select;  // kSelect / kExplain / kCreateView / kCreateTableAs

  /// kExplain: EXPLAIN ANALYZE — execute the query and annotate the plan
  /// with observed per-operator statistics instead of estimates.
  bool explain_analyze = false;

  // CREATE VIEW / CREATE TABLE AS / CREATE FOREIGN TABLE / DROP
  std::string relation_name;
  RelationKind relation_kind = RelationKind::kTable;  // for DROP
  bool if_exists = false;

  // CREATE FOREIGN TABLE
  std::vector<std::string> column_names;  // optional; inferred when empty
  std::string server;                     // remote DBMS name
  std::string remote_relation;            // OPTIONS(table '<name>'); defaults
                                          // to relation_name when empty
};

using StatementPtr = std::shared_ptr<Statement>;

}  // namespace sql
}  // namespace xdb
