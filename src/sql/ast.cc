#include "src/sql/ast.h"

namespace xdb {
namespace sql {

std::string SelectStmt::ToSql() const {
  std::string out = "SELECT ";
  if (select_star) {
    out += "*";
  } else {
    for (size_t i = 0; i < select_list.size(); ++i) {
      if (i > 0) out += ", ";
      out += select_list[i]->ToSql();
      if (!select_list[i]->alias.empty()) {
        out += " AS " + select_list[i]->alias;
      }
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    if (from[i].subquery) {
      out += "(" + from[i].subquery->ToSql() + ") AS " + from[i].alias;
      continue;
    }
    if (!from[i].db.empty()) out += from[i].db + ".";
    out += from[i].table;
    if (!from[i].alias.empty() && from[i].alias != from[i].table) {
      out += " AS " + from[i].alias;
    }
  }
  if (where) out += " WHERE " + where->ToSql();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToSql();
    }
  }
  if (having) out += " HAVING " + having->ToSql();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToSql();
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

}  // namespace sql
}  // namespace xdb
