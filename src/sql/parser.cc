#include "src/sql/parser.h"

#include <cstdint>

#include "src/common/str_util.h"
#include "src/sql/lexer.h"

namespace xdb {
namespace sql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<StatementPtr> ParseStatement() {
    auto stmt = std::make_shared<Statement>();
    if (MatchKeyword("EXPLAIN")) {
      stmt->kind = StatementKind::kExplain;
      stmt->explain_analyze = MatchKeyword("ANALYZE");
      XDB_ASSIGN_OR_RETURN(stmt->select, ParseSelectStmt());
      XDB_RETURN_NOT_OK(ExpectEnd());
      return stmt;
    }
    if (MatchKeyword("CREATE")) return ParseCreate();
    if (MatchKeyword("DROP")) return ParseDrop();
    stmt->kind = StatementKind::kSelect;
    XDB_ASSIGN_OR_RETURN(stmt->select, ParseSelectStmt());
    XDB_RETURN_NOT_OK(ExpectEnd());
    return stmt;
  }

  Result<SelectPtr> ParseSelectOnly() {
    XDB_ASSIGN_OR_RETURN(SelectPtr sel, ParseSelectStmt());
    XDB_RETURN_NOT_OK(ExpectEnd());
    return sel;
  }

 private:
  const Token& Peek(size_t off = 0) const {
    size_t i = pos_ + off;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool CheckKeyword(const char* kw, size_t off = 0) const {
    const Token& t = Peek(off);
    return t.type == TokenType::kKeyword && t.text == kw;
  }
  bool MatchKeyword(const char* kw) {
    if (CheckKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool CheckOp(const char* op, size_t off = 0) const {
    const Token& t = Peek(off);
    return t.type == TokenType::kOperator && t.text == op;
  }
  bool MatchOp(const char* op) {
    if (CheckOp(op)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) {
      return Status::ParseError(std::string("expected ") + kw + " near '" +
                                Peek().text + "' (offset " +
                                std::to_string(Peek().position) + ")");
    }
    return Status::OK();
  }
  Status ExpectOp(const char* op) {
    if (!MatchOp(op)) {
      return Status::ParseError(std::string("expected '") + op + "' near '" +
                                Peek().text + "' (offset " +
                                std::to_string(Peek().position) + ")");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    const Token& t = Peek();
    // Tolerate keywords used as identifiers in non-ambiguous spots (e.g. a
    // column named "date" or a relation named after a keyword).
    if (t.type == TokenType::kIdentifier ||
        t.type == TokenType::kKeyword) {
      ++pos_;
      return ToLower(t.text);
    }
    return Status::ParseError("expected identifier near '" + t.text +
                              "' (offset " + std::to_string(t.position) + ")");
  }
  Status ExpectEnd() {
    MatchOp(";");
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("unexpected trailing input near '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }

  // ---- statements ----

  Result<StatementPtr> ParseCreate() {
    auto stmt = std::make_shared<Statement>();
    MatchKeyword("MATERIALIZED");  // treated identically to a plain view
    if (MatchKeyword("VIEW")) {
      stmt->kind = StatementKind::kCreateView;
      XDB_ASSIGN_OR_RETURN(stmt->relation_name, ExpectIdentifier());
      XDB_RETURN_NOT_OK(ExpectKeyword("AS"));
      XDB_ASSIGN_OR_RETURN(stmt->select, ParseSelectStmt());
      XDB_RETURN_NOT_OK(ExpectEnd());
      return stmt;
    }
    if (MatchKeyword("FOREIGN")) {
      XDB_RETURN_NOT_OK(ExpectKeyword("TABLE"));
      stmt->kind = StatementKind::kCreateForeignTable;
      XDB_ASSIGN_OR_RETURN(stmt->relation_name, ExpectIdentifier());
      if (MatchOp("(")) {
        while (true) {
          XDB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
          stmt->column_names.push_back(std::move(col));
          if (!MatchOp(",")) break;
        }
        XDB_RETURN_NOT_OK(ExpectOp(")"));
      }
      XDB_RETURN_NOT_OK(ExpectKeyword("SERVER"));
      XDB_ASSIGN_OR_RETURN(stmt->server, ExpectIdentifier());
      if (MatchKeyword("OPTIONS")) {
        XDB_RETURN_NOT_OK(ExpectOp("("));
        while (true) {
          XDB_ASSIGN_OR_RETURN(std::string key, ExpectIdentifier());
          const Token& v = Peek();
          if (v.type != TokenType::kString) {
            return Status::ParseError("expected string option value near '" +
                                      v.text + "'");
          }
          ++pos_;
          if (key == "table" || key == "table_name") {
            stmt->remote_relation = ToLower(v.text);
          }
          if (!MatchOp(",")) break;
        }
        XDB_RETURN_NOT_OK(ExpectOp(")"));
      }
      if (stmt->remote_relation.empty()) {
        stmt->remote_relation = stmt->relation_name;
      }
      XDB_RETURN_NOT_OK(ExpectEnd());
      return stmt;
    }
    if (MatchKeyword("TABLE")) {
      stmt->kind = StatementKind::kCreateTableAs;
      XDB_ASSIGN_OR_RETURN(stmt->relation_name, ExpectIdentifier());
      XDB_RETURN_NOT_OK(ExpectKeyword("AS"));
      XDB_ASSIGN_OR_RETURN(stmt->select, ParseSelectStmt());
      XDB_RETURN_NOT_OK(ExpectEnd());
      return stmt;
    }
    return Status::ParseError("expected VIEW, TABLE or FOREIGN TABLE after "
                              "CREATE");
  }

  Result<StatementPtr> ParseDrop() {
    auto stmt = std::make_shared<Statement>();
    stmt->kind = StatementKind::kDrop;
    if (MatchKeyword("FOREIGN")) {
      XDB_RETURN_NOT_OK(ExpectKeyword("TABLE"));
      stmt->relation_kind = RelationKind::kForeignTable;
    } else if (MatchKeyword("VIEW")) {
      stmt->relation_kind = RelationKind::kView;
    } else if (MatchKeyword("TABLE")) {
      stmt->relation_kind = RelationKind::kTable;
    } else {
      return Status::ParseError("expected TABLE, VIEW or FOREIGN TABLE after "
                                "DROP");
    }
    if (MatchKeyword("IF")) {
      XDB_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
      stmt->if_exists = true;
    }
    XDB_ASSIGN_OR_RETURN(stmt->relation_name, ExpectIdentifier());
    XDB_RETURN_NOT_OK(ExpectEnd());
    return stmt;
  }

  Result<SelectPtr> ParseSelectStmt() {
    XDB_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    auto sel = std::make_shared<SelectStmt>();
    MatchKeyword("DISTINCT");  // accepted; evaluation treats GROUP BY as dedup
    if (MatchOp("*")) {
      sel->select_star = true;
    } else {
      while (true) {
        XDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        if (MatchKeyword("AS")) {
          // Alias may be an identifier or a quoted string (paper's example
          // query uses AS 'age_group').
          const Token& t = Peek();
          if (t.type == TokenType::kString) {
            e->alias = ToLower(t.text);
            ++pos_;
          } else {
            XDB_ASSIGN_OR_RETURN(e->alias, ExpectIdentifier());
          }
        } else if (Peek().type == TokenType::kIdentifier &&
                   !CheckKeyword("FROM")) {
          e->alias = ToLower(Advance().text);
        }
        sel->select_list.push_back(std::move(e));
        if (!MatchOp(",")) break;
      }
    }
    XDB_RETURN_NOT_OK(ExpectKeyword("FROM"));
    while (true) {
      XDB_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      sel->from.push_back(std::move(ref));
      if (!MatchOp(",")) break;
    }
    if (MatchKeyword("WHERE")) {
      XDB_ASSIGN_OR_RETURN(sel->where, ParseExpr());
    }
    if (MatchKeyword("GROUP")) {
      XDB_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        XDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        sel->group_by.push_back(std::move(e));
        if (!MatchOp(",")) break;
      }
    }
    if (MatchKeyword("HAVING")) {
      XDB_ASSIGN_OR_RETURN(sel->having, ParseExpr());
    }
    if (MatchKeyword("ORDER")) {
      XDB_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        XDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("DESC")) {
          item.descending = true;
        } else {
          MatchKeyword("ASC");
        }
        sel->order_by.push_back(std::move(item));
        if (!MatchOp(",")) break;
      }
    }
    if (MatchKeyword("LIMIT")) {
      const Token& t = Peek();
      if (t.type != TokenType::kNumber || !t.is_integer) {
        return Status::ParseError("expected integer after LIMIT");
      }
      sel->limit = static_cast<int64_t>(t.number);
      ++pos_;
    }
    return sel;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (MatchOp("(")) {
      // Derived table: (SELECT ...) AS alias.
      XDB_ASSIGN_OR_RETURN(ref.subquery, ParseSelectStmt());
      XDB_RETURN_NOT_OK(ExpectOp(")"));
      MatchKeyword("AS");
      XDB_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
      return ref;
    }
    XDB_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier());
    if (MatchOp(".")) {
      ref.db = std::move(first);
      XDB_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier());
    } else {
      ref.table = std::move(first);
    }
    if (MatchKeyword("AS")) {
      XDB_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = ToLower(Advance().text);
    }
    return ref;
  }

  // ---- expressions (precedence climbing) ----

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    XDB_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (MatchKeyword("OR")) {
      XDB_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Expr::Binary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    XDB_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (CheckKeyword("AND")) {
      ++pos_;
      XDB_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = Expr::Binary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (MatchKeyword("NOT")) {
      XDB_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    XDB_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    // BETWEEN / LIKE / IN / IS, possibly NOT-prefixed.
    bool negated = false;
    size_t save = pos_;
    if (MatchKeyword("NOT")) {
      if (CheckKeyword("BETWEEN") || CheckKeyword("LIKE") ||
          CheckKeyword("IN")) {
        negated = true;
      } else {
        pos_ = save;
        return left;
      }
    }
    if (MatchKeyword("BETWEEN")) {
      XDB_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      XDB_RETURN_NOT_OK(ExpectKeyword("AND"));
      XDB_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      ExprPtr e = Expr::Between(std::move(left), std::move(lo), std::move(hi));
      return negated ? Expr::Unary(UnaryOp::kNot, std::move(e)) : e;
    }
    if (MatchKeyword("LIKE")) {
      XDB_ASSIGN_OR_RETURN(ExprPtr pat, ParseAdditive());
      ExprPtr e = Expr::Like(std::move(left), std::move(pat));
      return negated ? Expr::Unary(UnaryOp::kNot, std::move(e)) : e;
    }
    if (MatchKeyword("IN")) {
      XDB_RETURN_NOT_OK(ExpectOp("("));
      std::vector<ExprPtr> list;
      while (true) {
        XDB_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        list.push_back(std::move(item));
        if (!MatchOp(",")) break;
      }
      XDB_RETURN_NOT_OK(ExpectOp(")"));
      ExprPtr e = Expr::InList(std::move(left), std::move(list));
      return negated ? Expr::Unary(UnaryOp::kNot, std::move(e)) : e;
    }
    if (MatchKeyword("IS")) {
      bool is_not = MatchKeyword("NOT");
      XDB_RETURN_NOT_OK(ExpectKeyword("NULL"));
      return Expr::Unary(is_not ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                         std::move(left));
    }
    static const struct {
      const char* text;
      BinaryOp op;
    } kCmp[] = {{"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe},
                {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
                {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
    for (const auto& c : kCmp) {
      if (MatchOp(c.text)) {
        XDB_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return Expr::Binary(c.op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    XDB_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      if (MatchOp("+")) {
        XDB_ASSIGN_OR_RETURN(ExprPtr r, ParseMultiplicative());
        left = Expr::Binary(BinaryOp::kAdd, std::move(left), std::move(r));
      } else if (MatchOp("-")) {
        XDB_ASSIGN_OR_RETURN(ExprPtr r, ParseMultiplicative());
        left = Expr::Binary(BinaryOp::kSub, std::move(left), std::move(r));
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    XDB_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (true) {
      if (MatchOp("*")) {
        XDB_ASSIGN_OR_RETURN(ExprPtr r, ParseUnary());
        left = Expr::Binary(BinaryOp::kMul, std::move(left), std::move(r));
      } else if (MatchOp("/")) {
        XDB_ASSIGN_OR_RETURN(ExprPtr r, ParseUnary());
        left = Expr::Binary(BinaryOp::kDiv, std::move(left), std::move(r));
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (MatchOp("-")) {
      XDB_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.type == TokenType::kNumber) {
      ++pos_;
      if (t.is_integer) {
        return Expr::Literal(Value::Int64(static_cast<int64_t>(t.number)));
      }
      return Expr::Literal(Value::Double(t.number));
    }
    if (t.type == TokenType::kString) {
      ++pos_;
      return Expr::Literal(Value::String(t.text));
    }
    if (MatchKeyword("NULL")) {
      return Expr::Literal(Value::Null(TypeId::kString));
    }
    if (MatchKeyword("TRUE")) return Expr::Literal(Value::Bool(true));
    if (MatchKeyword("FALSE")) return Expr::Literal(Value::Bool(false));
    if (CheckKeyword("DATE") && Peek(1).type == TokenType::kString) {
      ++pos_;
      const Token& d = Advance();
      XDB_ASSIGN_OR_RETURN(int64_t days, ParseDate(d.text));
      return Expr::Literal(Value::Date(days));
    }
    if (MatchKeyword("EXTRACT")) {
      XDB_RETURN_NOT_OK(ExpectOp("("));
      XDB_RETURN_NOT_OK(ExpectKeyword("YEAR"));
      // The FROM keyword inside EXTRACT.
      XDB_RETURN_NOT_OK(ExpectKeyword("FROM"));
      XDB_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      XDB_RETURN_NOT_OK(ExpectOp(")"));
      return Expr::Function("extract_year", {std::move(arg)});
    }
    if (MatchKeyword("CASE")) return ParseCase();
    // Aggregates.
    static const struct {
      const char* kw;
      AggKind kind;
    } kAggs[] = {{"SUM", AggKind::kSum},
                 {"AVG", AggKind::kAvg},
                 {"COUNT", AggKind::kCount},
                 {"MIN", AggKind::kMin},
                 {"MAX", AggKind::kMax}};
    for (const auto& a : kAggs) {
      if (CheckKeyword(a.kw) && CheckOp("(", 1)) {
        pos_ += 2;
        if (a.kind == AggKind::kCount && MatchOp("*")) {
          XDB_RETURN_NOT_OK(ExpectOp(")"));
          return Expr::Aggregate(AggKind::kCountStar, nullptr);
        }
        XDB_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        XDB_RETURN_NOT_OK(ExpectOp(")"));
        return Expr::Aggregate(a.kind, std::move(arg));
      }
    }
    if (MatchOp("(")) {
      XDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      XDB_RETURN_NOT_OK(ExpectOp(")"));
      return e;
    }
    if (t.type == TokenType::kIdentifier || t.type == TokenType::kKeyword) {
      // Scalar function call: ident '(' args ')'.
      if (t.type == TokenType::kIdentifier && CheckOp("(", 1)) {
        std::string name = ToLower(Advance().text);
        ++pos_;  // '('
        std::vector<ExprPtr> args;
        if (!CheckOp(")")) {
          while (true) {
            XDB_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
            args.push_back(std::move(a));
            if (!MatchOp(",")) break;
          }
        }
        XDB_RETURN_NOT_OK(ExpectOp(")"));
        return Expr::Function(std::move(name), std::move(args));
      }
      XDB_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier());
      if (MatchOp(".")) {
        XDB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        return Expr::Column(std::move(first), std::move(col));
      }
      return Expr::Column("", std::move(first));
    }
    return Status::ParseError("unexpected token '" + t.text + "' at offset " +
                              std::to_string(t.position));
  }

  Result<ExprPtr> ParseCase() {
    std::vector<ExprPtr> pairs;
    while (MatchKeyword("WHEN")) {
      XDB_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      XDB_RETURN_NOT_OK(ExpectKeyword("THEN"));
      XDB_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
      pairs.push_back(std::move(cond));
      pairs.push_back(std::move(then));
    }
    if (pairs.empty()) {
      return Status::ParseError("CASE requires at least one WHEN clause");
    }
    ExprPtr else_expr;
    if (MatchKeyword("ELSE")) {
      XDB_ASSIGN_OR_RETURN(else_expr, ParseExpr());
    }
    XDB_RETURN_NOT_OK(ExpectKeyword("END"));
    return Expr::Case(std::move(pairs), std::move(else_expr));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<StatementPtr> ParseStatement(const std::string& text) {
  XDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<SelectPtr> ParseSelect(const std::string& text) {
  XDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseSelectOnly();
}

}  // namespace sql
}  // namespace xdb
