#pragma once

#include <string>

#include "src/common/result.h"
#include "src/sql/ast.h"

namespace xdb {
namespace sql {

/// \brief Parses a single SQL statement (trailing semicolon allowed).
///
/// Supported grammar (the subset the XDB system needs end-to-end):
///   SELECT [DISTINCT] * | expr [AS alias], ...
///     FROM [db.]table [AS alias], ...
///     [WHERE expr] [GROUP BY expr, ...]
///     [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
///   CREATE [MATERIALIZED] VIEW name AS select
///   CREATE TABLE name AS select
///   CREATE FOREIGN TABLE name [(col, ...)] SERVER ident
///     [OPTIONS (table 'name')]
///   DROP TABLE|VIEW|FOREIGN TABLE [IF EXISTS] name
///   EXPLAIN select
Result<StatementPtr> ParseStatement(const std::string& text);

/// \brief Convenience: parses text that must be a SELECT.
Result<SelectPtr> ParseSelect(const std::string& text);

}  // namespace sql
}  // namespace xdb
