#include "src/sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "src/common/str_util.h"

namespace xdb {
namespace sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "FROM",   "WHERE",  "GROUP",  "BY",      "ORDER",
      "HAVING",
      "LIMIT",  "AS",     "AND",    "OR",     "NOT",     "BETWEEN",
      "LIKE",   "IN",     "IS",     "NULL",   "TRUE",    "FALSE",
      "CASE",   "WHEN",   "THEN",   "ELSE",   "END",     "CREATE",
      "VIEW",   "TABLE",  "FOREIGN", "SERVER", "OPTIONS", "DROP",
      "EXPLAIN", "ANALYZE", "DATE", "EXTRACT", "YEAR",  "ASC",   "DESC",
      "MATERIALIZED", "IF", "EXISTS", "DISTINCT",
      "SUM",    "AVG",    "COUNT",  "MIN",    "MAX",
  };
  return kKeywords;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();

  auto peek = [&](size_t off = 0) -> char {
    return i + off < n ? input[i + off] : '\0';
  };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comment
    if (c == '-' && peek(1) == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (Keywords().count(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = ToLower(word);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t start = i;
      bool has_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        if (input[i] == '.') {
          if (has_dot) break;
          has_dot = true;
        }
        ++i;
      }
      // exponent
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (input[j] == '+' || input[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(input[i])))
            ++i;
          has_dot = true;
        }
      }
      tok.type = TokenType::kNumber;
      tok.text = input.substr(start, i - start);
      tok.number = std::stod(tok.text);
      tok.is_integer = !has_dot;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string s;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (peek(1) == '\'') {  // escaped quote
            s += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        s += input[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.position));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(s);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '"' || c == '`') {
      char quote = c;
      ++i;
      std::string s;
      bool closed = false;
      while (i < n) {
        if (input[i] == quote) {
          ++i;
          closed = true;
          break;
        }
        s += input[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated quoted identifier at offset " +
                                  std::to_string(tok.position));
      }
      tok.type = TokenType::kIdentifier;
      tok.text = ToLower(s);
      tokens.push_back(std::move(tok));
      continue;
    }
    // multi-char operators
    if ((c == '<' && (peek(1) == '=' || peek(1) == '>')) ||
        (c == '>' && peek(1) == '=') || (c == '!' && peek(1) == '=')) {
      tok.type = TokenType::kOperator;
      tok.text = input.substr(i, 2);
      if (tok.text == "!=") tok.text = "<>";
      i += 2;
      tokens.push_back(std::move(tok));
      continue;
    }
    static const std::string kSingle = "+-*/=<>(),.;";
    if (kSingle.find(c) != std::string::npos) {
      tok.type = TokenType::kOperator;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace sql
}  // namespace xdb
