#include "src/mediator/mediator.h"

#include <chrono>
#include <optional>

#include "src/sql/parser.h"
#include "src/xdb/delegation_engine.h"
#include "src/xdb/finalizer.h"

namespace xdb {

const char* MediatorKindToString(MediatorKind kind) {
  switch (kind) {
    case MediatorKind::kGarlic:
      return "garlic";
    case MediatorKind::kPresto:
      return "presto";
    case MediatorKind::kSclera:
      return "sclera";
  }
  return "unknown";
}

namespace {
double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

MediatorSystem::MediatorSystem(Federation* fed, MediatorKind kind,
                               MediatorOptions options)
    : fed_(fed), kind_(kind), options_(std::move(options)) {
  mediator_name_ = options_.mediator_node.empty()
                       ? MediatorKindToString(kind)
                       : options_.mediator_node;
  EngineProfile profile;
  switch (kind) {
    case MediatorKind::kGarlic:
      profile = EngineProfile::GarlicMediator();
      break;
    case MediatorKind::kPresto:
      profile = EngineProfile::PrestoMediator(options_.presto_workers);
      break;
    case MediatorKind::kSclera:
      profile = EngineProfile::ScleraMediator();
      break;
  }
  // Component connectors first (before the mediator node joins the
  // federation, so it is not part of the global schema).
  for (const auto& name : fed_->ServerNames()) {
    DatabaseServer* server = fed_->GetServer(name);
    if (options_.exec_threads > 0) {
      server->set_exec_threads(options_.exec_threads);
    }
    auto dc = std::make_unique<DbmsConnector>(server, Dialect::Postgres(),
                                              fed_, mediator_name_);
    connector_ptrs_[name] = dc.get();
    connectors_[name] = std::move(dc);
  }
  catalog_ = std::make_unique<GlobalCatalog>(connector_ptrs_);

  mediator_ = fed_->GetServer(mediator_name_);
  if (mediator_ == nullptr) {
    mediator_ = fed_->AddServer(mediator_name_, profile);
  }
  if (options_.exec_threads > 0) {
    mediator_->set_exec_threads(options_.exec_threads);
  }
  // The mediator issues DDL to itself with zero-latency "round trips".
  auto self = std::make_unique<DbmsConnector>(mediator_, Dialect::Postgres(),
                                              fed_, mediator_name_);
  connector_ptrs_[mediator_name_] = self.get();
  connectors_[mediator_name_] = std::move(self);
}

/// MW placement policy: scans stay put, unary operators follow their input,
/// and every cross-DBMS (for Presto: every) join lands on the mediator.
Status MediatorSystem::AnnotateMw(PlanNode* node) const {
  for (auto& child : node->children) {
    XDB_RETURN_NOT_OK(AnnotateMw(child.get()));
  }
  switch (node->kind) {
    case PlanKind::kScan:
      node->annotation = node->db;
      return Status::OK();
    case PlanKind::kPlaceholder:
      return Status::Internal("unexpected placeholder in MW annotation");
    case PlanKind::kFilter:
    case PlanKind::kProject:
    case PlanKind::kSort:
    case PlanKind::kLimit:
      node->annotation = node->children[0]->annotation;
      node->children[0]->edge_movement = Movement::kImplicit;
      return Status::OK();
    case PlanKind::kAggregate:
      // MW systems aggregate in the mediator unless the whole input is a
      // single pushed-down source subquery under Garlic/Sclera.
      if (kind_ != MediatorKind::kPresto &&
          node->children[0]->annotation != mediator_name_) {
        node->annotation = node->children[0]->annotation;
      } else {
        node->annotation = mediator_name_;
      }
      node->children[0]->edge_movement = kind_ == MediatorKind::kSclera &&
                                                 node->annotation !=
                                                     node->children[0]
                                                         ->annotation
                                             ? Movement::kExplicit
                                             : Movement::kImplicit;
      return Status::OK();
    case PlanKind::kJoin: {
      const std::string& la = node->children[0]->annotation;
      const std::string& ra = node->children[1]->annotation;
      bool pushdown_joins = kind_ != MediatorKind::kPresto;
      if (pushdown_joins && la == ra && la != mediator_name_) {
        // Co-located join: the wrapper pushes it down to the source.
        node->annotation = la;
        node->children[0]->edge_movement = Movement::kImplicit;
        node->children[1]->edge_movement = Movement::kImplicit;
        return Status::OK();
      }
      node->annotation = mediator_name_;
      for (auto& child : node->children) {
        if (child->annotation == mediator_name_) {
          child->edge_movement = Movement::kImplicit;
        } else {
          // ScleraDB materialises every intermediate in the mediator; the
          // pipelining mediators stream through the wrapper.
          child->edge_movement = kind_ == MediatorKind::kSclera
                                     ? Movement::kExplicit
                                     : Movement::kImplicit;
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown plan kind");
}

Result<XdbReport> MediatorSystem::Query(const std::string& sql) {
  Result<XdbReport> result = QueryImpl(sql);
  RecordQueryStats(sql, result);
  return result;
}

void MediatorSystem::RecordQueryStats(const std::string& sql,
                                      const Result<XdbReport>& result) {
  QueryLog* qlog = fed_->query_log();
  MetricsRegistry* metrics = fed_->metrics();
  if (qlog == nullptr && metrics == nullptr) return;

  QueryStats qs;
  qs.system = MediatorKindToString(kind_);
  qs.sql = sql;
  qs.ok = result.ok();
  if (result.ok()) {
    const XdbReport& rep = *result;
    qs.prep_seconds = rep.phases.prep;
    qs.lopt_seconds = rep.phases.lopt;
    qs.ann_seconds = rep.phases.ann;
    qs.exec_seconds = rep.phases.exec;
    qs.useful_bytes = rep.trace.UsefulTransferredBytes();
    qs.wasted_bytes = rep.trace.WastedTransferredBytes();
    qs.raw_bytes = rep.trace.TotalRawTransferredBytes();
    qs.transfer_rows = rep.trace.TotalTransferredRows();
    qs.transfers = static_cast<int>(rep.trace.transfers.size());
    qs.retries = static_cast<int>(rep.trace.retries.size());
    qs.recovery_action = rep.trace.recovery_action;
    qs.partial = !rep.completeness.complete;
    qs.completeness_fraction = rep.completeness.completeness_fraction;
    qs.lost_fragments = static_cast<int>(rep.trace.lost_fragments.size());
    TimingModel model(fed_, TimingOptions{options_.scale_up});
    for (const auto& [srv, compute] : rep.trace.per_server) {
      const DatabaseServer* server = fed_->GetServer(srv);
      if (server == nullptr) continue;
      qs.per_server_seconds[srv] =
          model.ComputeSeconds(compute, server->profile(),
                               /*free_network=*/false);
    }
  } else {
    qs.error = result.status().message();
  }

  if (metrics != nullptr) {
    std::string label =
        qlog != nullptr && !qlog->next_label().empty() ? qlog->next_label()
                                                       : "adhoc";
    metrics
        ->GetCounter("xdb_queries_total",
                     {{"status", qs.ok ? "ok" : "error"}},
                     "Top-level queries by final status")
        ->Increment();
    metrics
        ->GetCounter("xdb_query_modelled_seconds_total", {{"query", label}},
                     "Modelled end-to-end seconds per query label")
        ->Increment(qs.total_seconds());
  }
  if (qlog != nullptr) qlog->Record(std::move(qs));
}

Result<XdbReport> MediatorSystem::QueryImpl(const std::string& sql) {
  XdbReport report;
  const double wall_start = NowSeconds();
  const int query_id = ++query_counter_;

  // Mediators share the deadline budget and partial-results machinery with
  // XDB (same retry and fetch paths under the hood) but have no failover:
  // an undeliverable fragment either degrades (allow_partial) or fails the
  // query outright.
  fed_->ArmQueryBudget(options_.deadline_seconds, options_.allow_partial);
  struct DisarmBudget {
    Federation* fed;
    ~DisarmBudget() { fed->DisarmQueryBudget(); }
  } disarm_budget{fed_};

  SpanRecorder* spans = fed_->span_recorder();
  struct FinalizeSpans {
    SpanRecorder* r;
    ~FinalizeSpans() {
      if (r != nullptr) r->FinalizeTimeline();
    }
  } finalize_spans{spans};
  SpanGuard query_span(spans, "mediator query " + std::to_string(query_id));
  if (Span* sp = query_span.span()) {
    sp->Tag("mediator", MediatorKindToString(kind_));
    sp->Tag("sql", sql);
  }
  // Span *id* window, not an index: under ring-buffer retention ids are
  // stable while positions shift.
  const int64_t span_begin = spans != nullptr ? spans->next_id() : 0;

  catalog_->ResetCounters();

  XDB_ASSIGN_OR_RETURN(sql::SelectPtr stmt, sql::ParseSelect(sql));
  for (const auto& ref : stmt->from) {
    XDB_RETURN_NOT_OK(catalog_->Resolve(ref.db, ref.table).status());
  }
  report.metadata_roundtrips = catalog_->metadata_roundtrips();
  report.phases.prep = 0.05 + 0.02 * report.metadata_roundtrips;

  PlannerOptions popts;
  // Garlic and ScleraDB decompose by source first (maximal single-DBMS
  // subqueries); Presto's connectors cannot push joins down at all, so its
  // plan follows the global order.
  popts.colocate_joins_first = kind_ != MediatorKind::kPresto;
  Planner planner(catalog_.get(), popts);
  XDB_ASSIGN_OR_RETURN(PlanPtr plan, planner.Plan(*stmt));
  report.phases.lopt =
      0.1 + 0.05 * static_cast<double>(
                       stmt->from.size() > 0 ? stmt->from.size() - 1 : 0);

  XDB_RETURN_NOT_OK(AnnotateMw(plan.get()));
  report.phases.ann = 0;  // MW systems plan centrally — no consulting

  fed_->ChargeBudget(report.phases.prep + report.phases.lopt);
  if (fed_->RemainingBudget() == 0.0) {
    return Status::Timeout("query deadline (" +
                           std::to_string(options_.deadline_seconds) +
                           "s of modelled time) exhausted during planning");
  }

  XDB_ASSIGN_OR_RETURN(DelegationPlan dplan,
                       FinalizePlan(*plan, query_id, mediator_name_));

  // Mediator baselines get the same retry/rollback machinery (so injected
  // faults degrade them comparably) but no failover replanning — their
  // placement policy is fixed by design.
  DelegationEngine engine(connector_ptrs_, fed_);
  fed_->BeginRun(dplan.tasks.back().server);
  Result<XdbQuery> query = engine.Deploy(&dplan);
  if (!query.ok()) {
    fed_->FinishRun();
    (void)engine.Cleanup();
    return query.status();
  }
  DbmsConnector* root_dc = connector_ptrs_.at(query->server);
  std::optional<Result<TablePtr>> exec_result;
  {
    SpanGuard exec_span(spans, "execute");
    if (Span* sp = exec_span.span()) sp->Tag("server", query->server);
    exec_result.emplace(root_dc->RunQuery(query->sql));
  }
  Result<TablePtr>& result = *exec_result;
  if (!result.ok()) {
    fed_->FinishRun();
    (void)engine.Cleanup();
    return result.status();
  }
  report.trace = fed_->FinishRun();
  report.ddl_statements = engine.ddl_count();
  report.ddl_log = engine.ddl_log();

  report.completeness.lost = report.trace.lost_fragments;
  report.completeness.complete = report.trace.lost_fragments.empty();
  if (!report.completeness.complete) {
    double delivered = 0;
    for (const auto& t : report.trace.transfers) {
      if (!t.failed) delivered += 1;
    }
    const double lost =
        static_cast<double>(report.trace.lost_fragments.size());
    report.completeness.completeness_fraction = delivered / (delivered + lost);
  }

  TimingModel model(fed_, TimingOptions{options_.scale_up});
  report.exec_timing = model.ModelRun(report.trace);
  if (spans != nullptr) {
    // Attach modelled wire seconds to this query's transfer spans.
    for (Span& s : spans->mutable_spans()) {
      if (s.id < span_begin || s.record_id < 0) continue;
      size_t idx = static_cast<size_t>(s.record_id);
      if (idx < report.trace.transfers.size() &&
          report.trace.transfers[idx].id == s.record_id) {
        s.duration_seconds =
            model.TransferSeconds(report.trace.transfers[idx]);
      }
    }
  }
  // MW systems report "actual execution" the way the paper measures it:
  // mediator-local compute with subquery results preloaded.
  report.exec_timing.compute_only = model.LocalizedCompute(report.trace);
  report.exec_timing.transfer_share =
      report.exec_timing.total - report.exec_timing.compute_only;
  report.phases.exec = report.exec_timing.total +
                       0.02 * static_cast<double>(report.ddl_statements) +
                       report.trace.total_backoff_seconds +
                       report.trace.injected_delay_seconds;

  report.result = std::move(result).value();
  report.plan = std::move(dplan);
  report.xdb_query = *query;

  if (options_.cleanup_after_query) {
    XDB_RETURN_NOT_OK(engine.Cleanup());
  }
  report.wall_seconds = NowSeconds() - wall_start;
  return report;
}

}  // namespace xdb
