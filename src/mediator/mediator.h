#pragma once

#include <map>
#include <memory>
#include <string>

#include "src/connect/connector.h"
#include "src/timing/timing_model.h"
#include "src/xdb/delegation_plan.h"
#include "src/xdb/xdb.h"

namespace xdb {

/// \brief Which mediator-wrapper baseline to emulate (paper Section VI).
enum class MediatorKind {
  /// Garlic-like: a single PostgreSQL mediator with SQL/MED wrappers.
  /// Pushes down maximal single-DBMS subqueries (including co-located
  /// joins); fetches intermediates with the binary protocol, pipelined.
  kGarlic,

  /// Presto/Trino-like: an MPP mediator with W workers. Connectors push
  /// down only scans (filters + projections); all joins and aggregation run
  /// in the mediator; fetches pay JDBC per-row overhead.
  kPresto,

  /// ScleraDB-like: "in-situ" querying that nevertheless moves every
  /// intermediate table *explicitly* through its mediator (the paper's
  /// naive execution of Section V), with row-at-a-time transfer.
  kSclera,
};

const char* MediatorKindToString(MediatorKind kind);

/// \brief Options for a mediator system.
struct MediatorOptions {
  double scale_up = 1.0;
  int presto_workers = 4;
  /// Node name for the mediator; defaults to the kind's name.
  std::string mediator_node;
  bool cleanup_after_query = true;
  /// Executor worker budget for the mediator node and every component DBMS:
  /// 0 = hardware concurrency, 1 = legacy serial (see XdbOptions).
  int exec_threads = 0;
  /// Modelled-time deadline per query (seconds; 0 = none) and opt-in
  /// partial results, sharing XDB's budget machinery. Mediators have no
  /// failover, so an undeliverable fragment either degrades under
  /// allow_partial or fails the query.
  double deadline_seconds = 0;
  bool allow_partial = false;
};

/// \brief A mediator-wrapper federated query system (the paper's Figure 4a
/// baseline family).
///
/// Deliberately built from the same substrate as XDB — the same parser,
/// logical optimizer, connectors, and SQL/MED foreign tables — so that the
/// *only* differences are architectural: where cross-database operators are
/// placed (always the mediator) and how intermediates move (always through
/// the mediator). This isolates the paper's claim: the MW architecture
/// itself, not implementation quality, causes the overhead.
class MediatorSystem {
 public:
  /// Registers a mediator DBMS node in `fed` (with the kind's engine
  /// profile) and builds connectors for the component DBMSes.
  MediatorSystem(Federation* fed, MediatorKind kind,
                 MediatorOptions options = {});

  /// Runs a federated query through the mediator. Like XdbSystem::Query,
  /// banks one QueryStats record (system = the mediator kind) when the
  /// federation has a QueryLog attached.
  Result<XdbReport> Query(const std::string& sql);

  const std::string& mediator_name() const { return mediator_name_; }
  MediatorKind kind() const { return kind_; }

 private:
  Status AnnotateMw(PlanNode* node) const;

  Result<XdbReport> QueryImpl(const std::string& sql);
  void RecordQueryStats(const std::string& sql,
                        const Result<XdbReport>& result);

  Federation* fed_;
  MediatorKind kind_;
  MediatorOptions options_;
  std::string mediator_name_;
  DatabaseServer* mediator_ = nullptr;
  std::map<std::string, std::unique_ptr<DbmsConnector>> connectors_;
  std::map<std::string, DbmsConnector*> connector_ptrs_;
  std::unique_ptr<GlobalCatalog> catalog_;
  int query_counter_ = 0;
};

}  // namespace xdb
