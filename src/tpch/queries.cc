#include "src/tpch/queries.h"

namespace xdb {
namespace tpch {

const std::vector<TpchQuery>& EvaluationQueries() {
  static const std::vector<TpchQuery> kQueries = {
      {"Q3", 3,
       "SELECT l.l_orderkey, "
       "       SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue, "
       "       o.o_orderdate, o.o_shippriority "
       "FROM customer c, orders o, lineitem l "
       "WHERE c.c_mktsegment = 'BUILDING' "
       "  AND c.c_custkey = o.o_custkey "
       "  AND l.l_orderkey = o.o_orderkey "
       "  AND o.o_orderdate < DATE '1995-03-15' "
       "  AND l.l_shipdate > DATE '1995-03-15' "
       "GROUP BY l.l_orderkey, o.o_orderdate, o.o_shippriority "
       "ORDER BY revenue DESC, o_orderdate LIMIT 10"},

      {"Q5", 6,
       "SELECT n.n_name, "
       "       SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue "
       "FROM customer c, orders o, lineitem l, supplier s, nation n, "
       "     region r "
       "WHERE c.c_custkey = o.o_custkey "
       "  AND l.l_orderkey = o.o_orderkey "
       "  AND l.l_suppkey = s.s_suppkey "
       "  AND c.c_nationkey = s.s_nationkey "
       "  AND s.s_nationkey = n.n_nationkey "
       "  AND n.n_regionkey = r.r_regionkey "
       "  AND r.r_name = 'ASIA' "
       "  AND o.o_orderdate >= DATE '1994-01-01' "
       "  AND o.o_orderdate < DATE '1995-01-01' "
       "GROUP BY n.n_name ORDER BY revenue DESC"},

      {"Q7", 6,
       "SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, "
       "       EXTRACT(YEAR FROM l.l_shipdate) AS l_year, "
       "       SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue "
       "FROM supplier s, lineitem l, orders o, customer c, "
       "     nation n1, nation n2 "
       "WHERE s.s_suppkey = l.l_suppkey "
       "  AND o.o_orderkey = l.l_orderkey "
       "  AND c.c_custkey = o.o_custkey "
       "  AND s.s_nationkey = n1.n_nationkey "
       "  AND c.c_nationkey = n2.n_nationkey "
       "  AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY') "
       "    OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE')) "
       "  AND l.l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' "
       "GROUP BY supp_nation, cust_nation, l_year "
       "ORDER BY supp_nation, cust_nation, l_year"},

      {"Q8", 8,
       "SELECT EXTRACT(YEAR FROM o.o_orderdate) AS o_year, "
       "       SUM(CASE WHEN n2.n_name = 'BRAZIL' "
       "                THEN l.l_extendedprice * (1 - l.l_discount) "
       "                ELSE 0 END) "
       "         / SUM(l.l_extendedprice * (1 - l.l_discount)) "
       "         AS mkt_share "
       "FROM part p, supplier s, lineitem l, orders o, customer c, "
       "     nation n1, nation n2, region r "
       "WHERE p.p_partkey = l.l_partkey "
       "  AND s.s_suppkey = l.l_suppkey "
       "  AND l.l_orderkey = o.o_orderkey "
       "  AND o.o_custkey = c.c_custkey "
       "  AND c.c_nationkey = n1.n_nationkey "
       "  AND n1.n_regionkey = r.r_regionkey "
       "  AND r.r_name = 'AMERICA' "
       "  AND s.s_nationkey = n2.n_nationkey "
       "  AND o.o_orderdate BETWEEN DATE '1995-01-01' "
       "        AND DATE '1996-12-31' "
       "  AND p.p_type = 'ECONOMY ANODIZED STEEL' "
       "GROUP BY o_year ORDER BY o_year"},

      {"Q9", 6,
       "SELECT n.n_name AS nation, "
       "       EXTRACT(YEAR FROM o.o_orderdate) AS o_year, "
       "       SUM(l.l_extendedprice * (1 - l.l_discount) "
       "           - ps.ps_supplycost * l.l_quantity) AS sum_profit "
       "FROM part p, supplier s, lineitem l, partsupp ps, orders o, "
       "     nation n "
       "WHERE s.s_suppkey = l.l_suppkey "
       "  AND ps.ps_suppkey = l.l_suppkey "
       "  AND ps.ps_partkey = l.l_partkey "
       "  AND p.p_partkey = l.l_partkey "
       "  AND o.o_orderkey = l.l_orderkey "
       "  AND s.s_nationkey = n.n_nationkey "
       "  AND p.p_name LIKE '%green%' "
       "GROUP BY nation, o_year ORDER BY nation, o_year DESC"},

      {"Q10", 4,
       "SELECT c.c_custkey, c.c_name, "
       "       SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue, "
       "       c.c_acctbal, n.n_name, c.c_address, c.c_phone "
       "FROM customer c, orders o, lineitem l, nation n "
       "WHERE c.c_custkey = o.o_custkey "
       "  AND l.l_orderkey = o.o_orderkey "
       "  AND o.o_orderdate >= DATE '1993-10-01' "
       "  AND o.o_orderdate < DATE '1994-01-01' "
       "  AND l.l_returnflag = 'R' "
       "  AND c.c_nationkey = n.n_nationkey "
       "GROUP BY c.c_custkey, c.c_name, c.c_acctbal, c.c_phone, "
       "         n.n_name, c.c_address "
       "ORDER BY revenue DESC LIMIT 20"},
  };
  return kQueries;
}

const TpchQuery* FindQuery(const std::string& id) {
  for (const auto& q : EvaluationQueries()) {
    if (q.id == id) return &q;
  }
  return nullptr;
}

}  // namespace tpch
}  // namespace xdb
