#include "src/tpch/dbgen.h"

#include <algorithm>
#include <cmath>

namespace xdb {
namespace tpch {

namespace {

const char* kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                           "MIDDLE EAST"};

// The 25 TPC-H nations with their region assignment.
struct NationDef {
  const char* name;
  int region;
};
const NationDef kNations[25] = {
    {"ALGERIA", 0},     {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},      {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},      {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},   {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},       {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},     {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},       {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},     {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                            "HOUSEHOLD", "MACHINERY"};

const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                              "4-NOT SPECIFIED", "5-LOW"};

const char* kColors[10] = {"green", "blue", "red",    "ivory",  "khaki",
                           "lace",  "lemon", "linen", "magenta", "maroon"};

const char* kPartNouns[8] = {"widget", "gear", "bolt", "spring",
                             "flange", "rivet", "axle", "bracket"};

const char* kTypeSyl1[6] = {"STANDARD", "SMALL", "MEDIUM",
                            "LARGE", "ECONOMY", "PROMO"};
const char* kTypeSyl2[5] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                            "BRUSHED"};
const char* kTypeSyl3[5] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};

const char* kModes[7] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                         "FOB"};

const int64_t kStartDate = 8035;   // 1992-01-01 in days since epoch
const int64_t kEndDate = 10591;    // 1998-12-31
const int64_t kLastOrderDate = 10440;  // ~1998-08-02

}  // namespace

DbGen::DbGen(double scale_factor, uint64_t seed)
    : sf_(scale_factor), seed_(seed) {
  auto scaled = [&](double base, int64_t min_rows) {
    return std::max<int64_t>(min_rows,
                             static_cast<int64_t>(std::llround(base * sf_)));
  };
  suppliers_ = scaled(10000, 10);
  customers_ = scaled(150000, 30);
  parts_ = scaled(200000, 40);
  orders_ = scaled(1500000, 150);
}

uint64_t DbGen::Next(uint64_t* state) const {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

int64_t DbGen::Uniform(uint64_t* state, int64_t lo, int64_t hi) const {
  return lo + static_cast<int64_t>(Next(state) %
                                   static_cast<uint64_t>(hi - lo + 1));
}

double DbGen::UniformDouble(uint64_t* state, double lo, double hi) const {
  return lo + (hi - lo) * (static_cast<double>(Next(state) >> 11) /
                           static_cast<double>(1ULL << 53));
}

int64_t DbGen::SuppForPart(int64_t partkey, int64_t j) const {
  // TPC-H-style spread of a part's four suppliers across the supplier
  // space. The step is chosen so that j=0..3 always yield four *distinct*
  // suppliers (j1*step ≢ j2*step mod s), which keeps (ps_partkey,
  // ps_suppkey) a key even at tiny scale factors.
  int64_t s = suppliers_;
  int64_t step = std::max<int64_t>(1, s / 4);
  while (step % s == 0 || (2 * step) % s == 0 || (3 * step) % s == 0) {
    ++step;
  }
  return (partkey + j * step) % s + 1;
}

TablePtr DbGen::Region() {
  auto t = std::make_shared<Table>(
      Schema({{"r_regionkey", TypeId::kInt64}, {"r_name", TypeId::kString}}));
  for (int i = 0; i < 5; ++i) {
    t->AppendRow({Value::Int64(i), Value::String(kRegions[i])});
  }
  return t;
}

TablePtr DbGen::Nation() {
  auto t = std::make_shared<Table>(Schema({{"n_nationkey", TypeId::kInt64},
                                           {"n_name", TypeId::kString},
                                           {"n_regionkey", TypeId::kInt64}}));
  for (int i = 0; i < 25; ++i) {
    t->AppendRow({Value::Int64(i), Value::String(kNations[i].name),
                  Value::Int64(kNations[i].region)});
  }
  return t;
}

TablePtr DbGen::Supplier() {
  auto t = std::make_shared<Table>(Schema({{"s_suppkey", TypeId::kInt64},
                                           {"s_name", TypeId::kString},
                                           {"s_address", TypeId::kString},
                                           {"s_nationkey", TypeId::kInt64},
                                           {"s_phone", TypeId::kString},
                                           {"s_acctbal", TypeId::kDouble}}));
  t->Reserve(static_cast<size_t>(suppliers_));
  uint64_t rng = seed_ ^ 0x5u;
  for (int64_t i = 1; i <= suppliers_; ++i) {
    int64_t nation = Uniform(&rng, 0, 24);
    t->AppendRow({Value::Int64(i),
                  Value::String("Supplier#" + std::to_string(i)),
                  Value::String("sa" + std::to_string(i % 1000)),
                  Value::Int64(nation),
                  Value::String(std::to_string(10 + nation) + "-555-" +
                                std::to_string(1000 + i % 9000)),
                  Value::Double(UniformDouble(&rng, -999.99, 9999.99))});
  }
  return t;
}

TablePtr DbGen::Customer() {
  auto t = std::make_shared<Table>(
      Schema({{"c_custkey", TypeId::kInt64},
              {"c_name", TypeId::kString},
              {"c_address", TypeId::kString},
              {"c_nationkey", TypeId::kInt64},
              {"c_phone", TypeId::kString},
              {"c_acctbal", TypeId::kDouble},
              {"c_mktsegment", TypeId::kString}}));
  t->Reserve(static_cast<size_t>(customers_));
  uint64_t rng = seed_ ^ 0xCu;
  for (int64_t i = 1; i <= customers_; ++i) {
    int64_t nation = Uniform(&rng, 0, 24);
    t->AppendRow({Value::Int64(i),
                  Value::String("Customer#" + std::to_string(i)),
                  Value::String("ca" + std::to_string(i % 1000)),
                  Value::Int64(nation),
                  Value::String(std::to_string(10 + nation) + "-555-" +
                                std::to_string(1000 + i % 9000)),
                  Value::Double(UniformDouble(&rng, -999.99, 9999.99)),
                  Value::String(kSegments[Uniform(&rng, 0, 4)])});
  }
  return t;
}

TablePtr DbGen::Part() {
  auto t = std::make_shared<Table>(
      Schema({{"p_partkey", TypeId::kInt64},
              {"p_name", TypeId::kString},
              {"p_mfgr", TypeId::kString},
              {"p_brand", TypeId::kString},
              {"p_type", TypeId::kString},
              {"p_size", TypeId::kInt64},
              {"p_retailprice", TypeId::kDouble}}));
  t->Reserve(static_cast<size_t>(parts_));
  uint64_t rng = seed_ ^ 0x9u;
  for (int64_t i = 1; i <= parts_; ++i) {
    // Two color words per name (TPC-H uses 5 of 92 words; Q9 matches
    // '%green%' which hits ~1/10 + ~1/10 overlap of parts here).
    std::string name = std::string(kColors[Uniform(&rng, 0, 9)]) + " " +
                       kColors[Uniform(&rng, 0, 9)] + " " +
                       kPartNouns[Uniform(&rng, 0, 7)];
    int64_t m = Uniform(&rng, 1, 5);
    std::string type = std::string(kTypeSyl1[Uniform(&rng, 0, 5)]) + " " +
                       kTypeSyl2[Uniform(&rng, 0, 4)] + " " +
                       kTypeSyl3[Uniform(&rng, 0, 4)];
    t->AppendRow({Value::Int64(i), Value::String(std::move(name)),
                  Value::String("Manufacturer#" + std::to_string(m)),
                  Value::String("Brand#" + std::to_string(m * 10 +
                                                          Uniform(&rng, 1,
                                                                  5))),
                  Value::String(std::move(type)),
                  Value::Int64(Uniform(&rng, 1, 50)),
                  Value::Double(900.0 + static_cast<double>(i % 1000))});
  }
  return t;
}

TablePtr DbGen::PartSupp() {
  auto t = std::make_shared<Table>(
      Schema({{"ps_partkey", TypeId::kInt64},
              {"ps_suppkey", TypeId::kInt64},
              {"ps_availqty", TypeId::kInt64},
              {"ps_supplycost", TypeId::kDouble}}));
  t->Reserve(static_cast<size_t>(4 * parts_));
  uint64_t rng = seed_ ^ 0x25u;
  for (int64_t p = 1; p <= parts_; ++p) {
    for (int64_t j = 0; j < 4; ++j) {
      t->AppendRow({Value::Int64(p), Value::Int64(SuppForPart(p, j)),
                    Value::Int64(Uniform(&rng, 1, 9999)),
                    Value::Double(UniformDouble(&rng, 1.0, 1000.0))});
    }
  }
  return t;
}

TablePtr DbGen::Orders() {
  auto t = std::make_shared<Table>(
      Schema({{"o_orderkey", TypeId::kInt64},
              {"o_custkey", TypeId::kInt64},
              {"o_orderstatus", TypeId::kString},
              {"o_totalprice", TypeId::kDouble},
              {"o_orderdate", TypeId::kDate},
              {"o_orderpriority", TypeId::kString},
              {"o_shippriority", TypeId::kInt64}}));
  t->Reserve(static_cast<size_t>(orders_));
  uint64_t rng = seed_ ^ 0x0Fu;
  for (int64_t i = 1; i <= orders_; ++i) {
    int64_t date = Uniform(&rng, kStartDate, kLastOrderDate);
    t->AppendRow({Value::Int64(i),
                  Value::Int64(Uniform(&rng, 1, customers_)),
                  Value::String(date + 90 < kLastOrderDate ? "F" : "O"),
                  Value::Double(UniformDouble(&rng, 1000.0, 400000.0)),
                  Value::Date(date),
                  Value::String(kPriorities[Uniform(&rng, 0, 4)]),
                  Value::Int64(0)});
  }
  return t;
}

TablePtr DbGen::Lineitem() {
  auto t = std::make_shared<Table>(
      Schema({{"l_orderkey", TypeId::kInt64},
              {"l_partkey", TypeId::kInt64},
              {"l_suppkey", TypeId::kInt64},
              {"l_linenumber", TypeId::kInt64},
              {"l_quantity", TypeId::kDouble},
              {"l_extendedprice", TypeId::kDouble},
              {"l_discount", TypeId::kDouble},
              {"l_tax", TypeId::kDouble},
              {"l_returnflag", TypeId::kString},
              {"l_linestatus", TypeId::kString},
              {"l_shipdate", TypeId::kDate},
              {"l_commitdate", TypeId::kDate},
              {"l_receiptdate", TypeId::kDate},
              {"l_shipmode", TypeId::kString}}));
  // Regenerate order dates with the same stream so line dates stay
  // consistent with their order.
  t->Reserve(static_cast<size_t>(4 * orders_));  // ~4 lines/order mean
  uint64_t order_rng = seed_ ^ 0x0Fu;
  uint64_t rng = seed_ ^ 0x11u;
  for (int64_t o = 1; o <= orders_; ++o) {
    int64_t odate = Uniform(&order_rng, kStartDate, kLastOrderDate);
    // Skip the other per-order draws to stay aligned with Orders().
    Uniform(&order_rng, 1, customers_);
    UniformDouble(&order_rng, 1000.0, 400000.0);
    Uniform(&order_rng, 0, 4);

    int64_t lines = Uniform(&rng, 1, 7);
    for (int64_t ln = 1; ln <= lines; ++ln) {
      int64_t part = Uniform(&rng, 1, parts_);
      int64_t supp = SuppForPart(part, Uniform(&rng, 0, 3));
      double qty = static_cast<double>(Uniform(&rng, 1, 50));
      double price = qty * (900.0 + static_cast<double>(part % 1000)) / 10.0;
      int64_t shipdate = odate + Uniform(&rng, 1, 121);
      int64_t commitdate = odate + Uniform(&rng, 30, 90);
      int64_t receiptdate = shipdate + Uniform(&rng, 1, 30);
      // ~25% of lines shipped "long ago" get returnflag R (TPC-H: R/A for
      // received-before-cutoff lines, N otherwise).
      const char* rf = receiptdate <= 9500 ? (Uniform(&rng, 0, 1) ? "R" : "A")
                                           : "N";
      t->AppendRow({Value::Int64(o), Value::Int64(part), Value::Int64(supp),
                    Value::Int64(ln), Value::Double(qty),
                    Value::Double(price),
                    Value::Double(Uniform(&rng, 0, 10) / 100.0),
                    Value::Double(Uniform(&rng, 0, 8) / 100.0),
                    Value::String(rf),
                    Value::String(shipdate > 9500 ? "O" : "F"),
                    Value::Date(shipdate), Value::Date(commitdate),
                    Value::Date(receiptdate),
                    Value::String(kModes[Uniform(&rng, 0, 6)])});
    }
  }
  (void)kEndDate;
  return t;
}

std::map<std::string, TablePtr> DbGen::GenerateAll() {
  return {
      {"region", Region()},     {"nation", Nation()},
      {"supplier", Supplier()}, {"customer", Customer()},
      {"part", Part()},         {"partsupp", PartSupp()},
      {"orders", Orders()},     {"lineitem", Lineitem()},
  };
}

}  // namespace tpch
}  // namespace xdb
