#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/types/table.h"

namespace xdb {
namespace tpch {

/// \brief Deterministic TPC-H-style data generator.
///
/// Reproduces the benchmark's schema (minus the free-text *_comment
/// columns, which no evaluation query touches — DESIGN.md §1), its relative
/// cardinalities (lineitem ≈ 6M·SF, orders = 1.5M·SF, ...), and the value
/// distributions that drive the evaluation queries' selectivities:
/// mktsegment (5 values, Q3), region/nation names (Q5/Q7/Q8/Q9), order and
/// ship dates over 1992–1998 (Q3/Q5/Q7/Q8/Q10), part types and colored part
/// names (Q8/Q9), return flags (Q10), and the partsupp supplier formula
/// that keeps lineitem.(l_partkey,l_suppkey) referentially valid (Q9).
///
/// Generation is seeded and reproducible; the same SF always yields the
/// same tables.
class DbGen {
 public:
  explicit DbGen(double scale_factor, uint64_t seed = 19920101);

  /// Generates all eight tables keyed by lowercase TPC-H table name.
  std::map<std::string, TablePtr> GenerateAll();

  TablePtr Region();
  TablePtr Nation();
  TablePtr Supplier();
  TablePtr Customer();
  TablePtr Part();
  TablePtr PartSupp();
  TablePtr Orders();
  TablePtr Lineitem();

  int64_t num_suppliers() const { return suppliers_; }
  int64_t num_customers() const { return customers_; }
  int64_t num_parts() const { return parts_; }
  int64_t num_orders() const { return orders_; }

 private:
  /// xorshift-based per-stream deterministic PRNG.
  uint64_t Next(uint64_t* state) const;
  int64_t Uniform(uint64_t* state, int64_t lo, int64_t hi) const;
  double UniformDouble(uint64_t* state, double lo, double hi) const;

  /// The j-th (0..3) supplier of part p (TPC-H partsupp formula).
  int64_t SuppForPart(int64_t partkey, int64_t j) const;

  double sf_;
  uint64_t seed_;
  int64_t suppliers_;
  int64_t customers_;
  int64_t parts_;
  int64_t orders_;
};

}  // namespace tpch
}  // namespace xdb
