#pragma once

#include <string>
#include <vector>

namespace xdb {
namespace tpch {

/// \brief The paper's evaluation queries (Section VI-A): TPC-H Q3 (3-way
/// join), Q5 (6), Q7 (5, with a nation self-join), Q8 (8, flattened market
/// share), Q9 (6, profit), Q10 (4). Q8's and Q7's subquery forms are
/// flattened into single SELECTs (the paper also evaluates them as flat
/// cross-database join queries).
struct TpchQuery {
  std::string id;     // "Q3", ...
  int num_tables;     // relations in FROM
  std::string sql;
};

/// All six evaluation queries, in the paper's order.
const std::vector<TpchQuery>& EvaluationQueries();

/// Lookup by id ("Q3".."Q10"); returns nullptr when unknown.
const TpchQuery* FindQuery(const std::string& id);

}  // namespace tpch
}  // namespace xdb
