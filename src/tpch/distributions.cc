#include "src/tpch/distributions.h"

#include <cassert>

#include "src/dbms/server.h"

namespace xdb {
namespace tpch {

TableDistribution TD1() {
  return {{"lineitem", "db1"}, {"customer", "db2"}, {"orders", "db2"},
          {"supplier", "db3"}, {"nation", "db3"},   {"region", "db3"},
          {"part", "db4"},     {"partsupp", "db4"}};
}

TableDistribution TD2() {
  return {{"lineitem", "db1"}, {"supplier", "db1"}, {"orders", "db2"},
          {"nation", "db2"},   {"region", "db2"},   {"customer", "db3"},
          {"part", "db4"},     {"partsupp", "db4"}};
}

TableDistribution TD3() {
  return {{"lineitem", "db1"}, {"orders", "db2"}, {"supplier", "db3"},
          {"partsupp", "db4"}, {"customer", "db5"}, {"part", "db6"},
          {"nation", "db7"},   {"region", "db7"}};
}

TableDistribution DistributionByIndex(int td) {
  switch (td) {
    case 1:
      return TD1();
    case 2:
      return TD2();
    case 3:
      return TD3();
    default:
      assert(false && "table distribution index must be 1..3");
      return TD1();
  }
}

std::vector<std::string> TpchNodes() {
  return {"db1", "db2", "db3", "db4", "db5", "db6", "db7"};
}

EngineAssignment AllPostgres() {
  EngineAssignment out;
  for (const auto& n : TpchNodes()) out[n] = EngineProfile::Postgres();
  return out;
}

EngineAssignment HeterogeneousAssignment() {
  EngineAssignment out = AllPostgres();
  out["db2"] = EngineProfile::MariaDb();
  out["db3"] = EngineProfile::Hive();
  return out;
}

std::unique_ptr<Federation> BuildTpchFederation(
    double scale_factor, const TableDistribution& td,
    const EngineAssignment& engines) {
  auto fed = std::make_unique<Federation>();
  for (const auto& node : TpchNodes()) {
    auto it = engines.find(node);
    fed->AddServer(node, it != engines.end() ? it->second
                                             : EngineProfile::Postgres());
  }
  fed->SetNetwork(Network::Lan(TpchNodes()));

  DbGen gen(scale_factor);
  for (auto& [table, data] : gen.GenerateAll()) {
    auto it = td.find(table);
    assert(it != td.end() && "distribution must place every table");
    Status st = fed->GetServer(it->second)->CreateBaseTable(table, data);
    assert(st.ok());
    (void)st;
  }
  return fed;
}

}  // namespace tpch
}  // namespace xdb
