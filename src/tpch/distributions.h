#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dbms/federation.h"
#include "src/tpch/dbgen.h"

namespace xdb {
namespace tpch {

/// \brief A table distribution: TPC-H table -> DBMS node (paper Table III).
using TableDistribution = std::map<std::string, std::string>;

/// TD1: db1={l}, db2={c,o}, db3={s,n,r}, db4={p,ps}.
TableDistribution TD1();
/// TD2: db1={l,s}, db2={o,n,r}, db3={c}, db4={p,ps}.
TableDistribution TD2();
/// TD3: db1={l}, db2={o}, db3={s}, db4={ps}, db5={c}, db6={p}, db7={n,r}.
TableDistribution TD3();

/// Distribution by index 1..3.
TableDistribution DistributionByIndex(int td);

/// \brief Per-node engine assignment; defaults to PostgreSQL everywhere.
/// The heterogeneous experiment (paper Figure 10) uses MariaDB for db2 and
/// Hive for db3.
using EngineAssignment = std::map<std::string, EngineProfile>;

EngineAssignment AllPostgres();
EngineAssignment HeterogeneousAssignment();

/// \brief Builds a federation with seven DBMS nodes (db1..db7), loads the
/// generated TPC-H tables according to `td`, and wires a LAN network (the
/// paper's single-cluster testbed). The caller may replace the network with
/// another topology afterwards (the Figure 14 scenarios).
std::unique_ptr<Federation> BuildTpchFederation(
    double scale_factor, const TableDistribution& td,
    const EngineAssignment& engines = AllPostgres());

/// All seven node names.
std::vector<std::string> TpchNodes();

}  // namespace tpch
}  // namespace xdb
