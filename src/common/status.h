#pragma once

#include <memory>
#include <string>
#include <utility>

namespace xdb {

/// \brief Error categories used throughout the library.
///
/// Mirrors the Arrow/RocksDB convention of a cheap, movable status object:
/// an OK status carries no allocation; error statuses carry a code and a
/// human-readable message.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kBindError,
  kCatalogError,
  kExecutionError,
  kNetworkError,
  kNotImplemented,
  kInternal,
  kUnavailable,  // node/engine temporarily down or refusing the operation
  kTimeout,      // operation gave up mid-flight (e.g. link drop)
};

/// \brief Returns a stable, human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Operation outcome: OK or (code, message).
///
/// Functions that can fail return Status (or Result<T> when they produce a
/// value). Statuses must be checked; they are cheap to move and copy.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status CatalogError(std::string msg) {
    return Status(StatusCode::kCatalogError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status NetworkError(std::string msg) {
    return Status(StatusCode::kNetworkError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsBindError() const { return code() == StatusCode::kBindError; }
  bool IsCatalogError() const { return code() == StatusCode::kCatalogError; }
  bool IsExecutionError() const {
    return code() == StatusCode::kExecutionError;
  }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsTimeout() const { return code() == StatusCode::kTimeout; }

  /// \brief True for transient failure classes (unavailable engine, dropped
  /// link) that a caller may reasonably retry with backoff. Static errors
  /// (parse/bind/catalog/...) are never retryable.
  bool IsRetryable() const {
    return code() == StatusCode::kUnavailable ||
           code() == StatusCode::kTimeout;
  }

  /// \brief Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// \brief Returns a copy of this status with extra context prepended.
  Status WithContext(const std::string& context) const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  Status(StatusCode code, std::string msg)
      : state_(std::make_shared<State>(State{code, std::move(msg)})) {}

  std::shared_ptr<State> state_;  // nullptr means OK
};

}  // namespace xdb

/// Propagates a non-OK Status from the current function.
#define XDB_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::xdb::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (false)
