#include "src/common/status.h"

namespace xdb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kCatalogError:
      return "CatalogError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kNetworkError:
      return "NetworkError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimeout:
      return "Timeout";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  Status st(code(), context + ": " + message());
  return st;
}

}  // namespace xdb
