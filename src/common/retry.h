#pragma once

#include <algorithm>
#include <utility>

#include "src/common/status.h"

namespace xdb {

/// \brief Bounded retry with exponential backoff, in *modelled* seconds.
///
/// Backoff never sleeps: the waiting time is charged to the query's timing
/// breakdown (RunTrace::total_backoff_seconds), consistent with the
/// simulator's "time is modelled, not spent" design (src/net/network.h).
struct RetryPolicy {
  int max_attempts = 3;                   // total attempts, including first
  double initial_backoff_seconds = 0.05;  // wait after the first failure
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 5.0;

  /// A policy that never retries (single attempt, no backoff).
  static RetryPolicy NoRetry() { return RetryPolicy{1, 0.0, 1.0, 0.0}; }

  /// Modelled seconds waited after failed attempt `attempt` (1-based).
  double BackoffAfter(int attempt) const {
    double b = initial_backoff_seconds;
    for (int i = 1; i < attempt; ++i) b *= backoff_multiplier;
    return std::min(b, max_backoff_seconds);
  }
};

/// \brief Result of a retry loop: final status plus the modelled cost the
/// loop actually incurred.
struct RetryOutcome {
  Status status;
  int attempts = 1;            // attempts actually made, including first
  double backoff_seconds = 0;  // modelled backoff actually charged
  /// True when the loop stopped because the next backoff did not fit the
  /// remaining deadline budget. The final status is still the last
  /// attempt's (retryable) failure; the caller decides whether to degrade
  /// or fail with kTimeout.
  bool budget_exhausted = false;
};

/// Runs `fn` (a Status-returning callable) up to `policy.max_attempts`
/// times, backing off between attempts that fail with a retryable status
/// (Status::IsRetryable). Non-retryable failures abort immediately.
///
/// `budget_seconds` caps the modelled backoff the loop may charge
/// (negative = unlimited). The budget check runs *before* the backoff is
/// charged: a retry abandoned by the deadline bills only the time actually
/// spent, never a phantom full-backoff wait that no attempt consumed.
template <typename Fn>
RetryOutcome RetryWithBackoffBudget(const RetryPolicy& policy, Fn&& fn,
                                    double budget_seconds) {
  const int budget = std::max(1, policy.max_attempts);
  RetryOutcome out;
  int attempt = 1;
  for (;; ++attempt) {
    out.status = fn();
    if (out.status.ok() || !out.status.IsRetryable() || attempt >= budget) {
      break;
    }
    const double wait = policy.BackoffAfter(attempt);
    if (budget_seconds >= 0 && out.backoff_seconds + wait > budget_seconds) {
      out.budget_exhausted = true;
      break;
    }
    out.backoff_seconds += wait;
  }
  out.attempts = attempt;
  return out;
}

/// Unbudgeted retry loop, reporting the attempt count and total modelled
/// backoff through the out parameters and returning the final status.
template <typename Fn>
Status RetryWithBackoff(const RetryPolicy& policy, Fn&& fn, int* attempts,
                        double* backoff_seconds) {
  RetryOutcome out =
      RetryWithBackoffBudget(policy, std::forward<Fn>(fn), -1.0);
  if (attempts != nullptr) *attempts = out.attempts;
  if (backoff_seconds != nullptr) *backoff_seconds = out.backoff_seconds;
  return out.status;
}

}  // namespace xdb
