#pragma once

#include <algorithm>

#include "src/common/status.h"

namespace xdb {

/// \brief Bounded retry with exponential backoff, in *modelled* seconds.
///
/// Backoff never sleeps: the waiting time is charged to the query's timing
/// breakdown (RunTrace::total_backoff_seconds), consistent with the
/// simulator's "time is modelled, not spent" design (src/net/network.h).
struct RetryPolicy {
  int max_attempts = 3;                   // total attempts, including first
  double initial_backoff_seconds = 0.05;  // wait after the first failure
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 5.0;

  /// A policy that never retries (single attempt, no backoff).
  static RetryPolicy NoRetry() { return RetryPolicy{1, 0.0, 1.0, 0.0}; }

  /// Modelled seconds waited after failed attempt `attempt` (1-based).
  double BackoffAfter(int attempt) const {
    double b = initial_backoff_seconds;
    for (int i = 1; i < attempt; ++i) b *= backoff_multiplier;
    return std::min(b, max_backoff_seconds);
  }
};

/// Runs `fn` (a Status-returning callable) up to `policy.max_attempts`
/// times, backing off between attempts that fail with a retryable status
/// (Status::IsRetryable). Non-retryable failures abort immediately. Reports
/// the attempt count and the total modelled backoff through the out
/// parameters and returns the final status.
template <typename Fn>
Status RetryWithBackoff(const RetryPolicy& policy, Fn&& fn, int* attempts,
                        double* backoff_seconds) {
  const int budget = std::max(1, policy.max_attempts);
  double waited = 0;
  Status st;
  int attempt = 1;
  for (;; ++attempt) {
    st = fn();
    if (st.ok() || !st.IsRetryable() || attempt >= budget) break;
    waited += policy.BackoffAfter(attempt);
  }
  if (attempts != nullptr) *attempts = attempt;
  if (backoff_seconds != nullptr) *backoff_seconds = waited;
  return st;
}

}  // namespace xdb
