#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace xdb {

/// \brief ASCII-lowercases a string (SQL identifiers are case-insensitive).
std::string ToLower(std::string_view s);

/// \brief ASCII-uppercases a string.
std::string ToUpper(std::string_view s);

/// \brief Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// \brief Splits on a delimiter character; empty tokens are kept.
std::vector<std::string> Split(std::string_view s, char delim);

/// \brief Joins tokens with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// \brief Trims ASCII whitespace from both ends.
std::string Trim(std::string_view s);

/// \brief True if `s` starts with `prefix` (case-sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief SQL LIKE match with % and _ wildcards (case-sensitive).
bool LikeMatch(std::string_view value, std::string_view pattern);

/// \brief Renders a byte count as a human-readable string (e.g. "1.5 MB").
std::string HumanBytes(double bytes);

}  // namespace xdb
