#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace xdb {

namespace {
// The calling thread's query tag; 0 means untagged (single-query paths and
// background work). Pool workers set it to the tag of the task they run.
thread_local uint64_t t_query_tag = 0;
}  // namespace

uint64_t CurrentQueryTag() { return t_query_tag; }

ScopedQueryTag::ScopedQueryTag(uint64_t tag) : saved_(t_query_tag) {
  t_query_tag = tag;
}

ScopedQueryTag::~ScopedQueryTag() { t_query_tag = saved_; }

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  Submit(t_query_tag, std::move(fn));
}

void ThreadPool::Submit(uint64_t tag, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TagQueue& q = queues_[tag];
    q.tasks.push_back(std::move(fn));
    if (!q.in_rotation) {
      q.in_rotation = true;
      rr_.push_back(tag);
    }
    ++pending_;
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    uint64_t tag = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || pending_ > 0; });
      if (pending_ == 0) return;  // shutdown and drained
      // Fair pick: one task from the front tag, then rotate the tag to the
      // back so every active query advances before any repeats.
      tag = rr_.front();
      rr_.pop_front();
      auto it = queues_.find(tag);
      TagQueue& q = it->second;
      fn = std::move(q.tasks.front());
      q.tasks.pop_front();
      --pending_;
      if (q.tasks.empty()) {
        queues_.erase(it);
      } else {
        rr_.push_back(tag);
      }
    }
    uint64_t saved = t_query_tag;
    t_query_tag = tag;
    fn();
    t_query_tag = saved;
  }
}

ThreadPool* ThreadPool::Shared() {
  // Leaked on purpose: pool threads may outlive static destruction order.
  static ThreadPool* pool = new ThreadPool(DefaultExecThreads());
  return pool;
}

int DefaultExecThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {
// Set while a ParallelFor worker body runs, so a nested ParallelFor (which
// could deadlock waiting for pool slots its own ancestors hold) degrades to
// the inline path instead.
thread_local bool t_in_parallel_worker = false;
}  // namespace

void ParallelFor(int max_workers, size_t num_items, size_t morsel_rows,
                 const std::function<void(size_t morsel_index, size_t begin,
                                          size_t end)>& fn) {
  if (num_items == 0) return;
  morsel_rows = std::max<size_t>(1, morsel_rows);
  const size_t num_morsels = (num_items + morsel_rows - 1) / morsel_rows;

  auto run_morsel = [&](size_t m) {
    size_t begin = m * morsel_rows;
    size_t end = std::min(num_items, begin + morsel_rows);
    fn(m, begin, end);
  };

  ThreadPool* pool = ThreadPool::Shared();
  int workers = std::min(max_workers, pool->num_threads() + 1);
  if (num_morsels < static_cast<size_t>(workers)) {
    workers = static_cast<int>(num_morsels);
  }
  if (workers <= 1 || t_in_parallel_worker) {
    for (size_t m = 0; m < num_morsels; ++m) run_morsel(m);
    return;
  }

  // Dynamic morsel dispatch: workers steal the next morsel index from a
  // shared counter, so skew (one expensive morsel) does not serialize the
  // tail. Which worker runs which morsel is nondeterministic; determinism
  // of the *result* is the caller's per-morsel-buffer contract.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto done = std::make_shared<std::atomic<int>>(0);
  std::mutex done_mu;
  std::condition_variable done_cv;

  auto work = [next, num_morsels, &run_morsel]() {
    t_in_parallel_worker = true;
    for (;;) {
      size_t m = next->fetch_add(1, std::memory_order_relaxed);
      if (m >= num_morsels) break;
      run_morsel(m);
    }
    t_in_parallel_worker = false;
  };

  const int helpers = workers - 1;  // the caller is worker 0
  for (int i = 0; i < helpers; ++i) {
    // Helpers carry the caller's query tag so the fair scheduler attributes
    // this loop's morsels to the query that spawned them.
    pool->Submit(t_query_tag, [&work, &done_mu, &done_cv, done]() {
      work();
      // Notify under the lock: the waiter may destroy the condvar the
      // moment the predicate holds, so the notify must not race past it.
      std::lock_guard<std::mutex> lock(done_mu);
      done->fetch_add(1, std::memory_order_release);
      done_cv.notify_one();
    });
  }
  work();
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] {
    return done->load(std::memory_order_acquire) == helpers;
  });
}

}  // namespace xdb
