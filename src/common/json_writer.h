#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace xdb {

/// \brief Minimal streaming JSON writer (no external dependency).
///
/// The exporters in src/obs emit machine-readable run artefacts (Chrome
/// trace-event files, RunTrace dumps, bench reports); this writer keeps that
/// emission dependency-free and deterministic — keys are written in the
/// order the caller supplies them, doubles use a fixed shortest-round-trip
/// format, and non-finite doubles degrade to null (JSON has no NaN/Inf).
class JsonWriter {
 public:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\r':
          out += "\\r";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  const std::string& str() const { return out_; }

  void BeginObject() {
    Comma();
    out_ += '{';
    fresh_ = true;
  }
  void EndObject() {
    out_ += '}';
    fresh_ = false;
  }
  void BeginArray() {
    Comma();
    out_ += '[';
    fresh_ = true;
  }
  void EndArray() {
    out_ += ']';
    fresh_ = false;
  }

  void Key(const std::string& k) {
    Comma();
    out_ += '"';
    out_ += Escape(k);
    out_ += "\":";
    fresh_ = true;  // the value follows without a comma
  }

  void String(const std::string& v) {
    Comma();
    out_ += '"';
    out_ += Escape(v);
    out_ += '"';
  }
  void Int(int64_t v) {
    Comma();
    out_ += std::to_string(v);
  }
  void Bool(bool v) {
    Comma();
    out_ += v ? "true" : "false";
  }
  void Double(double v) {
    Comma();
    if (!std::isfinite(v)) {
      out_ += "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
  }

  // Convenience: key/value in one call.
  void Field(const std::string& k, const std::string& v) {
    Key(k);
    String(v);
  }
  void Field(const std::string& k, const char* v) {
    Key(k);
    String(v);
  }
  void Field(const std::string& k, double v) {
    Key(k);
    Double(v);
  }
  void Field(const std::string& k, int64_t v) {
    Key(k);
    Int(v);
  }
  void Field(const std::string& k, int v) {
    Key(k);
    Int(v);
  }
  void Field(const std::string& k, uint64_t v) {
    Key(k);
    Int(static_cast<int64_t>(v));
  }
  void Field(const std::string& k, bool v) {
    Key(k);
    Bool(v);
  }

 private:
  void Comma() {
    if (!fresh_ && !out_.empty()) {
      char c = out_.back();
      if (c != '{' && c != '[' && c != ':') out_ += ',';
    }
    fresh_ = false;
  }

  std::string out_;
  bool fresh_ = true;
};

}  // namespace xdb
