#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace xdb {

/// \brief A fixed-size pool of worker threads executing submitted tasks.
///
/// The executor's morsel-driven operators share one process-wide pool (see
/// Shared()) instead of spawning threads per operator: thread creation costs
/// more than most morsels, and a shared pool bounds total oversubscription
/// when several DatabaseServers execute in one process (the simulated
/// federation).
///
/// Tasks carry a *query tag* (see CurrentQueryTag); the pool keeps one FIFO
/// per tag and drains tags round-robin, so under concurrent serving one
/// large query's morsel backlog cannot starve a short query's morsels.
/// With a single active tag the pool degenerates to the original one-FIFO
/// behaviour.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` for execution on some worker thread, tagged with the
  /// calling thread's current query tag.
  void Submit(std::function<void()> fn);

  /// Enqueues `fn` under an explicit query tag. Workers inherit the tag for
  /// the duration of `fn`, so nested submissions stay with their query.
  void Submit(uint64_t tag, std::function<void()> fn);

  /// Process-wide pool sized to the hardware, created on first use.
  static ThreadPool* Shared();

 private:
  struct TagQueue {
    std::deque<std::function<void()>> tasks;
    bool in_rotation = false;  // tag currently queued in rr_
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  // Per-tag FIFOs plus the round-robin rotation of tags with pending work.
  // A tag's queue is erased once drained, so the map stays bounded by the
  // number of *active* queries, not by the query-id space.
  std::map<uint64_t, TagQueue> queues_;
  std::deque<uint64_t> rr_;
  size_t pending_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// \brief The query tag of the calling thread (0 = untagged/background).
/// Pool workers inherit the tag of the task they execute.
uint64_t CurrentQueryTag();

/// \brief RAII scope setting the calling thread's query tag — used by the
/// serving layer to attribute all morsels spawned while running one query.
class ScopedQueryTag {
 public:
  explicit ScopedQueryTag(uint64_t tag);
  ~ScopedQueryTag();
  ScopedQueryTag(const ScopedQueryTag&) = delete;
  ScopedQueryTag& operator=(const ScopedQueryTag&) = delete;

 private:
  uint64_t saved_;
};

/// \brief Number of execution threads meant by "use the hardware": at least
/// 1, otherwise std::thread::hardware_concurrency().
int DefaultExecThreads();

/// \brief Morsel-driven parallel loop over [0, num_items).
///
/// The range is cut into morsels of `morsel_rows` items; up to `max_workers`
/// workers (the calling thread plus shared-pool threads) pull morsel indices
/// from a shared counter and invoke `fn(morsel_index, begin, end)`. Morsel
/// boundaries depend only on (num_items, morsel_rows) — never on the worker
/// count — so callers that buffer per-morsel output and concatenate it in
/// morsel order produce results that are bit-identical for any `max_workers`,
/// including 1 (which runs everything inline on the caller, the legacy
/// serial path). Blocks until every morsel has completed. `fn` must not
/// throw and must not itself call ParallelFor.
void ParallelFor(int max_workers, size_t num_items, size_t morsel_rows,
                 const std::function<void(size_t morsel_index, size_t begin,
                                          size_t end)>& fn);

}  // namespace xdb
