#include "src/common/str_util.h"

#include <cctype>
#include <cstdio>

namespace xdb {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool LikeMatch(std::string_view value, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking on the last '%'.
  size_t v = 0, p = 0;
  size_t star_p = std::string_view::npos, star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == value[v])) {
      ++v;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[u]);
  return buf;
}

}  // namespace xdb
