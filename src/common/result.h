#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace xdb {

/// \brief Value-or-Status, in the style of arrow::Result.
///
/// A Result<T> holds either a T (status is OK) or a non-OK Status. Use
/// XDB_ASSIGN_OR_RETURN to unwrap within Status/Result-returning functions.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out, or returns the given default when not OK.
  T ValueOr(T alternative) && {
    return ok() ? std::move(*value_) : std::move(alternative);
  }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace xdb

#define XDB_CONCAT_IMPL(a, b) a##b
#define XDB_CONCAT(a, b) XDB_CONCAT_IMPL(a, b)

/// Unwraps a Result<T> into `lhs`, propagating errors to the caller.
#define XDB_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  auto XDB_CONCAT(_res_, __LINE__) = (rexpr);                  \
  if (!XDB_CONCAT(_res_, __LINE__).ok())                       \
    return XDB_CONCAT(_res_, __LINE__).status();               \
  lhs = std::move(XDB_CONCAT(_res_, __LINE__)).value()
