#pragma once

#include <functional>
#include <string>

#include "src/common/result.h"
#include "src/plan/estimator.h"
#include "src/plan/plan.h"
#include "src/sql/ast.h"

namespace xdb {

/// \brief Resolves a FROM-clause relation to a plan subtree.
///
/// Implementations: a DBMS session resolves against its local catalog (base
/// table → Scan, view → the view's plan, foreign table → foreign Scan);
/// XDB's optimizer resolves against the global catalog across DBMSes.
class RelationResolver {
 public:
  virtual ~RelationResolver() = default;

  /// Returns a subtree whose output is the named relation. The planner
  /// re-labels the subtree's output qualifiers with the FROM alias.
  virtual Result<PlanPtr> Resolve(const std::string& db,
                                  const std::string& table) = 0;
};

/// \brief Planner options; both knobs exist so ablation benches can switch
/// the paper's "textbook" logical optimizations off.
struct PlannerOptions {
  bool reorder_joins = true;     // Selinger-style left-deep DP
  bool prune_columns = true;     // projection pushdown below joins
  bool push_down_filters = true; // selection pushdown onto inputs

  /// Explore bushy join trees instead of only left-deep ones. The paper
  /// restricts itself to left-deep trees but observes (footnote 5) that
  /// bushy plans increase inter-DBMS pipeline parallelism and defers them
  /// to future work — this implements that extension. Cost: full DP over
  /// subset splits (3^n joins states) instead of 2^n * n.
  bool bushy_joins = false;

  /// Join co-located (same-DBMS) relations before anything else — the
  /// Garlic-style source decomposition: each DBMS's connected tables form
  /// one maximal pushed-down subquery, and only the composites are ordered
  /// globally. The MW baselines use this; XDB's global optimizer does not.
  bool colocate_joins_first = false;
};

/// \brief Translates a SELECT into a bound, optimized logical plan.
///
/// Implements the paper's *Logical Optimizer* stage: selection and projection
/// pushdown plus left-deep join-ordering over the estimator's cardinalities
/// (Section IV-B-1). The same code plans queries inside each component DBMS,
/// mirroring how a real PostgreSQL/MariaDB would plan the delegated task.
class Planner {
 public:
  Planner(RelationResolver* resolver, PlannerOptions options = {})
      : resolver_(resolver), options_(options) {}

  Result<PlanPtr> Plan(const sql::SelectStmt& stmt);

 private:
  RelationResolver* resolver_;
  PlannerOptions options_;
  Estimator estimator_;
};

/// \brief Splits a predicate tree into top-level AND conjuncts.
void SplitConjuncts(const ExprPtr& predicate, std::vector<ExprPtr>* out);

/// \brief Rebuilds a conjunction from parts (nullptr when empty).
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& parts);

}  // namespace xdb
