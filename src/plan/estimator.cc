#include "src/plan/estimator.h"

#include <algorithm>
#include <cmath>

namespace xdb {

namespace {

constexpr double kDefaultSelectivity = 0.25;
constexpr double kLikeSelectivity = 0.1;

double ValueAsDouble(const Value& v) { return v.AsDouble(); }

/// Fraction of [min,max] below/above a constant, for range predicates.
double RangeFraction(const ColumnStats& cs, const Value& constant,
                     bool less_than) {
  if (!cs.has_min_max() || constant.is_null()) return 0.3;
  if (cs.min.type() == TypeId::kString) return 0.3;
  double lo = ValueAsDouble(cs.min), hi = ValueAsDouble(cs.max);
  double c = ValueAsDouble(constant);
  if (hi <= lo) return 0.5;
  double f = (c - lo) / (hi - lo);
  f = std::clamp(f, 0.0, 1.0);
  return less_than ? f : 1.0 - f;
}

const Expr* StripToColumn(const Expr& e) {
  if (e.kind == ExprKind::kColumnRef) return &e;
  if (e.kind == ExprKind::kFunction && e.children.size() == 1) {
    return StripToColumn(*e.children[0]);
  }
  return nullptr;
}

bool IsConstant(const Expr& e) {
  if (e.kind == ExprKind::kColumnRef) return false;
  if (e.kind == ExprKind::kAggregate) return false;
  for (const auto& c : e.children) {
    if (!IsConstant(*c)) return false;
  }
  return true;
}

Value EvalConstant(const Expr& e) {
  static const Row kEmptyRow;
  return EvalExpr(e, kEmptyRow);
}

}  // namespace

double Estimator::Selectivity(const Expr& predicate,
                              const PlanEstimate& input) const {
  switch (predicate.kind) {
    case ExprKind::kBinary: {
      const Expr& l = *predicate.children[0];
      const Expr& r = *predicate.children[1];
      switch (predicate.binary_op) {
        case BinaryOp::kAnd:
          return Selectivity(l, input) * Selectivity(r, input);
        case BinaryOp::kOr: {
          double a = Selectivity(l, input);
          double b = Selectivity(r, input);
          return std::min(1.0, a + b - a * b);
        }
        case BinaryOp::kEq: {
          const Expr* lc = StripToColumn(l);
          const Expr* rc = StripToColumn(r);
          if (lc && rc && lc->column_index >= 0 && rc->column_index >= 0) {
            // column = column (within one input): 1/max(ndv).
            double nl = input.columns.empty()
                            ? 1000.0
                            : input.columns[static_cast<size_t>(
                                                lc->column_index)].ndv;
            double nr = input.columns.empty()
                            ? 1000.0
                            : input.columns[static_cast<size_t>(
                                                rc->column_index)].ndv;
            return 1.0 / std::max(1.0, std::max(nl, nr));
          }
          const Expr* col = lc ? lc : rc;
          if (col && col->column_index >= 0 && !input.columns.empty()) {
            return 1.0 /
                   std::max(1.0, input.columns[static_cast<size_t>(
                                                   col->column_index)].ndv);
          }
          return 0.05;
        }
        case BinaryOp::kNe:
          return 1.0 - Selectivity(*Expr::Binary(BinaryOp::kEq,
                                                 predicate.children[0],
                                                 predicate.children[1]),
                                   input);
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          bool less = predicate.binary_op == BinaryOp::kLt ||
                      predicate.binary_op == BinaryOp::kLe;
          const Expr* lc = StripToColumn(l);
          if (lc && lc->column_index >= 0 && IsConstant(r) &&
              !input.columns.empty()) {
            return RangeFraction(
                input.columns[static_cast<size_t>(lc->column_index)],
                EvalConstant(r), less);
          }
          const Expr* rc = StripToColumn(r);
          if (rc && rc->column_index >= 0 && IsConstant(l) &&
              !input.columns.empty()) {
            return RangeFraction(
                input.columns[static_cast<size_t>(rc->column_index)],
                EvalConstant(l), !less);
          }
          return 0.3;
        }
        default:
          return kDefaultSelectivity;
      }
    }
    case ExprKind::kUnary:
      if (predicate.unary_op == UnaryOp::kNot) {
        return 1.0 - Selectivity(*predicate.children[0], input);
      }
      return 0.05;  // IS NULL / IS NOT NULL: generated data has few nulls
    case ExprKind::kBetween: {
      const Expr* col = StripToColumn(*predicate.children[0]);
      if (col && col->column_index >= 0 &&
          IsConstant(*predicate.children[1]) &&
          IsConstant(*predicate.children[2]) && !input.columns.empty()) {
        const ColumnStats& cs =
            input.columns[static_cast<size_t>(col->column_index)];
        double above_lo =
            RangeFraction(cs, EvalConstant(*predicate.children[1]), false);
        double below_hi =
            RangeFraction(cs, EvalConstant(*predicate.children[2]), true);
        return std::clamp(above_lo + below_hi - 1.0, 0.001, 1.0);
      }
      return 0.1;
    }
    case ExprKind::kLike:
      return kLikeSelectivity;
    case ExprKind::kInList: {
      const Expr* col = StripToColumn(*predicate.children[0]);
      double n = static_cast<double>(predicate.children.size() - 1);
      if (col && col->column_index >= 0 && !input.columns.empty()) {
        double ndv =
            input.columns[static_cast<size_t>(col->column_index)].ndv;
        return std::min(1.0, n / std::max(1.0, ndv));
      }
      return std::min(1.0, n * 0.05);
    }
    case ExprKind::kLiteral:
      if (!predicate.literal.is_null() &&
          predicate.literal.type() == TypeId::kBool) {
        return predicate.literal.bool_value() ? 1.0 : 0.0;
      }
      return kDefaultSelectivity;
    default:
      return kDefaultSelectivity;
  }
}

PlanEstimate Estimator::Estimate(const PlanNode& node) const {
  std::vector<PlanEstimate> inputs;
  inputs.reserve(node.children.size());
  for (const auto& child : node.children) inputs.push_back(Estimate(*child));
  return EstimateWithInputs(node, inputs);
}

PlanEstimate Estimator::StampEstimates(PlanNode& node) const {
  std::vector<PlanEstimate> inputs;
  inputs.reserve(node.children.size());
  for (const auto& child : node.children) {
    inputs.push_back(StampEstimates(*child));
  }
  PlanEstimate est = EstimateWithInputs(node, inputs);
  node.est_rows = est.rows;
  node.est_width = est.row_width;
  return est;
}

PlanEstimate Estimator::EstimateWithInputs(
    const PlanNode& node, const std::vector<PlanEstimate>& inputs) const {
  switch (node.kind) {
    case PlanKind::kScan: {
      PlanEstimate est;
      est.rows = node.scan_stats.row_count;
      est.columns = node.scan_stats.columns;
      if (est.columns.size() != node.output_schema.num_fields()) {
        est.columns.assign(node.output_schema.num_fields(), ColumnStats{});
      }
      est.row_width = 0;
      for (const auto& c : est.columns) est.row_width += c.avg_width;
      if (est.row_width <= 0) est.row_width = 64.0;
      return est;
    }
    case PlanKind::kPlaceholder: {
      PlanEstimate est;
      est.rows = node.placeholder_rows;
      est.columns.assign(node.output_schema.num_fields(), ColumnStats{});
      est.row_width = 16.0 * static_cast<double>(
                                 node.output_schema.num_fields());
      return est;
    }
    case PlanKind::kFilter: {
      const PlanEstimate& in = inputs[0];
      double sel = std::clamp(Selectivity(*node.predicate, in), 1e-6, 1.0);
      PlanEstimate out = in;
      out.rows = std::max(1.0, in.rows * sel);
      // Distinct counts shrink with the row count but never exceed rows.
      for (auto& c : out.columns) c.ndv = std::min(c.ndv, out.rows);
      return out;
    }
    case PlanKind::kProject: {
      const PlanEstimate& in = inputs[0];
      PlanEstimate out;
      out.rows = in.rows;
      for (const auto& e : node.exprs) {
        if (e->kind == ExprKind::kColumnRef && e->column_index >= 0 &&
            static_cast<size_t>(e->column_index) < in.columns.size()) {
          out.columns.push_back(in.columns[
              static_cast<size_t>(e->column_index)]);
        } else {
          ColumnStats cs;
          cs.ndv = std::min(in.rows, 1000.0);
          cs.avg_width = InferType(e) == TypeId::kString ? 16.0 : 8.0;
          out.columns.push_back(cs);
        }
      }
      out.row_width = 0;
      for (const auto& c : out.columns) out.row_width += c.avg_width;
      if (out.row_width <= 0) out.row_width = 8.0;
      return out;
    }
    case PlanKind::kJoin: {
      const PlanEstimate& l = inputs[0];
      const PlanEstimate& r = inputs[1];
      double rows = l.rows * r.rows;
      for (size_t i = 0; i < node.left_keys.size(); ++i) {
        double nl = node.left_keys[i] >= 0 &&
                            static_cast<size_t>(node.left_keys[i]) <
                                l.columns.size()
                        ? l.columns[static_cast<size_t>(
                                        node.left_keys[i])].ndv
                        : 1000.0;
        double nr = node.right_keys[i] >= 0 &&
                            static_cast<size_t>(node.right_keys[i]) <
                                r.columns.size()
                        ? r.columns[static_cast<size_t>(
                                        node.right_keys[i])].ndv
                        : 1000.0;
        rows /= std::max(1.0, std::max(nl, nr));
      }
      if (node.left_keys.empty()) rows = l.rows * r.rows;  // cross product
      PlanEstimate out;
      out.rows = std::max(1.0, rows);
      out.columns = l.columns;
      out.columns.insert(out.columns.end(), r.columns.begin(),
                         r.columns.end());
      for (auto& c : out.columns) c.ndv = std::min(c.ndv, out.rows);
      out.row_width = l.row_width + r.row_width;
      if (node.residual) {
        double sel = std::clamp(Selectivity(*node.residual, out), 1e-6, 1.0);
        out.rows = std::max(1.0, out.rows * sel);
      }
      return out;
    }
    case PlanKind::kAggregate: {
      const PlanEstimate& in = inputs[0];
      double groups = 1.0;
      for (const auto& g : node.group_keys) {
        const Expr* col = StripToColumn(*g);
        double ndv = 100.0;
        if (col && col->column_index >= 0 &&
            static_cast<size_t>(col->column_index) < in.columns.size()) {
          ndv = in.columns[static_cast<size_t>(col->column_index)].ndv;
        } else if (g->kind == ExprKind::kCaseWhen) {
          ndv = static_cast<double>(g->children.size() / 2 + 1);
        }
        groups *= std::max(1.0, ndv);
      }
      PlanEstimate out;
      out.rows = std::max(1.0, std::min(groups, in.rows));
      out.columns.assign(node.output_schema.num_fields(), ColumnStats{});
      for (auto& c : out.columns) c.ndv = out.rows;
      out.row_width = 12.0 * static_cast<double>(
                                 node.output_schema.num_fields());
      return out;
    }
    case PlanKind::kSort:
      return inputs[0];
    case PlanKind::kLimit: {
      PlanEstimate in = inputs[0];
      if (node.limit >= 0) {
        in.rows = std::min(in.rows, static_cast<double>(node.limit));
      }
      return in;
    }
  }
  return PlanEstimate{};
}

}  // namespace xdb
