#include "src/plan/plan.h"

#include <algorithm>

namespace xdb {

const char* MovementToString(Movement m) {
  return m == Movement::kImplicit ? "implicit" : "explicit";
}

PlanPtr PlanNode::MakeScan(std::string db, std::string table,
                           std::string alias, Schema schema,
                           TableStats stats) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kScan;
  n->db = std::move(db);
  n->table = std::move(table);
  n->alias = std::move(alias);
  n->scan_stats = std::move(stats);
  n->output_qualifiers.assign(schema.num_fields(),
                              n->alias.empty() ? n->table : n->alias);
  n->output_schema = std::move(schema);
  return n;
}

PlanPtr PlanNode::MakeFilter(PlanPtr child, ExprPtr predicate) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kFilter;
  n->output_schema = child->output_schema;
  n->output_qualifiers = child->output_qualifiers;
  n->children = {std::move(child)};
  n->predicate = std::move(predicate);
  return n;
}

PlanPtr PlanNode::MakeProject(PlanPtr child, std::vector<ExprPtr> exprs) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kProject;
  Schema schema;
  std::vector<std::string> quals;
  for (const auto& e : exprs) {
    schema.AddField({e->OutputName(), InferType(e)});
    // A pass-through column keeps its qualifier so that later binding by
    // alias (e.g. in residual join predicates) still works.
    if (e->kind == ExprKind::kColumnRef && e->alias.empty() &&
        e->column_index >= 0) {
      quals.push_back(child->output_qualifiers[
          static_cast<size_t>(e->column_index)]);
    } else {
      quals.push_back("");
    }
  }
  n->output_schema = std::move(schema);
  n->output_qualifiers = std::move(quals);
  n->children = {std::move(child)};
  n->exprs = std::move(exprs);
  return n;
}

PlanPtr PlanNode::MakeJoin(PlanPtr left, PlanPtr right,
                           std::vector<int> left_keys,
                           std::vector<int> right_keys, ExprPtr residual) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kJoin;
  n->output_schema = Schema::Concat(left->output_schema,
                                    right->output_schema);
  n->output_qualifiers = left->output_qualifiers;
  n->output_qualifiers.insert(n->output_qualifiers.end(),
                              right->output_qualifiers.begin(),
                              right->output_qualifiers.end());
  n->children = {std::move(left), std::move(right)};
  n->left_keys = std::move(left_keys);
  n->right_keys = std::move(right_keys);
  n->residual = std::move(residual);
  return n;
}

PlanPtr PlanNode::MakeAggregate(PlanPtr child,
                                std::vector<ExprPtr> group_keys,
                                std::vector<ExprPtr> aggregates) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kAggregate;
  Schema schema;
  std::vector<std::string> quals;
  for (const auto& g : group_keys) {
    schema.AddField({g->OutputName(), InferType(g)});
    quals.push_back("");
  }
  for (const auto& a : aggregates) {
    schema.AddField({a->OutputName(), InferType(a)});
    quals.push_back("");
  }
  n->output_schema = std::move(schema);
  n->output_qualifiers = std::move(quals);
  n->children = {std::move(child)};
  n->group_keys = std::move(group_keys);
  n->aggregates = std::move(aggregates);
  return n;
}

PlanPtr PlanNode::MakeSort(PlanPtr child,
                           std::vector<std::pair<int, bool>> sort_keys) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kSort;
  n->output_schema = child->output_schema;
  n->output_qualifiers = child->output_qualifiers;
  n->children = {std::move(child)};
  n->sort_keys = std::move(sort_keys);
  return n;
}

PlanPtr PlanNode::MakeLimit(PlanPtr child, int64_t limit) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kLimit;
  n->output_schema = child->output_schema;
  n->output_qualifiers = child->output_qualifiers;
  n->children = {std::move(child)};
  n->limit = limit;
  return n;
}

PlanPtr PlanNode::MakePlaceholder(std::string name, Schema schema,
                                  std::vector<std::string> qualifiers,
                                  double est_rows) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kPlaceholder;
  n->placeholder_name = std::move(name);
  n->output_schema = std::move(schema);
  n->output_qualifiers = std::move(qualifiers);
  if (n->output_qualifiers.empty()) {
    n->output_qualifiers.assign(n->output_schema.num_fields(), "");
  }
  n->placeholder_rows = est_rows;
  return n;
}

PlanPtr PlanNode::Clone() const {
  auto n = std::make_shared<PlanNode>(*this);
  for (auto& c : n->children) c = c->Clone();
  if (n->predicate) n->predicate = n->predicate->Clone();
  if (n->residual) n->residual = n->residual->Clone();
  for (auto& e : n->exprs) e = e->Clone();
  for (auto& e : n->group_keys) e = e->Clone();
  for (auto& e : n->aggregates) e = e->Clone();
  return n;
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad;
  switch (kind) {
    case PlanKind::kScan:
      out += "Scan(" + db + "." + table;
      if (!alias.empty() && alias != table) out += " AS " + alias;
      out += ")";
      break;
    case PlanKind::kFilter:
      out += "Filter(" + predicate->ToSql() + ")";
      break;
    case PlanKind::kProject: {
      out += "Project(";
      for (size_t i = 0; i < exprs.size(); ++i) {
        if (i > 0) out += ", ";
        out += exprs[i]->ToSql();
      }
      out += ")";
      break;
    }
    case PlanKind::kJoin: {
      out += "Join(";
      for (size_t i = 0; i < left_keys.size(); ++i) {
        if (i > 0) out += " AND ";
        out += children[0]->output_schema.field(
                   static_cast<size_t>(left_keys[i])).name +
               " = " +
               children[1]->output_schema.field(
                   static_cast<size_t>(right_keys[i])).name;
      }
      if (residual) out += " residual: " + residual->ToSql();
      out += ")";
      break;
    }
    case PlanKind::kAggregate: {
      out += "Aggregate(keys: ";
      for (size_t i = 0; i < group_keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += group_keys[i]->ToSql();
      }
      out += "; aggs: ";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) out += ", ";
        out += aggregates[i]->ToSql();
      }
      out += ")";
      break;
    }
    case PlanKind::kSort:
      out += "Sort";
      break;
    case PlanKind::kLimit:
      out += "Limit(" + std::to_string(limit) + ")";
      break;
    case PlanKind::kPlaceholder:
      out += "?(" + placeholder_name + ")";
      break;
  }
  if (!annotation.empty()) out += " @" + annotation;
  out += "\n";
  for (const auto& c : children) out += c->ToString(indent + 1);
  return out;
}

std::string PlanNode::ToAlgebraString() const {
  switch (kind) {
    case PlanKind::kScan: {
      // Abbreviate in the paper's style: first letter(s) of the table.
      return table;
    }
    case PlanKind::kFilter:
      return "s(" + children[0]->ToAlgebraString() + ")";
    case PlanKind::kProject:
      return "p(" + children[0]->ToAlgebraString() + ")";
    case PlanKind::kJoin:
      return "join(" + children[0]->ToAlgebraString() + "," +
             children[1]->ToAlgebraString() + ")";
    case PlanKind::kAggregate:
      return "agg(" + children[0]->ToAlgebraString() + ")";
    case PlanKind::kSort:
      return "sort(" + children[0]->ToAlgebraString() + ")";
    case PlanKind::kLimit:
      return "limit(" + children[0]->ToAlgebraString() + ")";
    case PlanKind::kPlaceholder:
      return "?";
  }
  return "?";
}

namespace {
void CollectDatabases(const PlanNode& node, std::vector<std::string>* out) {
  if (node.kind == PlanKind::kScan && !node.db.empty()) {
    if (std::find(out->begin(), out->end(), node.db) == out->end()) {
      out->push_back(node.db);
    }
  }
  for (const auto& c : node.children) CollectDatabases(*c, out);
}
}  // namespace

std::vector<std::string> PlanNode::ReferencedDatabases() const {
  std::vector<std::string> out;
  CollectDatabases(*this, &out);
  return out;
}

}  // namespace xdb
