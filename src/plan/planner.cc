#include "src/plan/planner.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/common/str_util.h"

namespace xdb {

void SplitConjuncts(const ExprPtr& predicate, std::vector<ExprPtr>* out) {
  if (!predicate) return;
  if (predicate->kind == ExprKind::kBinary &&
      predicate->binary_op == BinaryOp::kAnd) {
    SplitConjuncts(predicate->children[0], out);
    SplitConjuncts(predicate->children[1], out);
    return;
  }
  out->push_back(predicate);
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& parts) {
  ExprPtr out;
  for (const auto& p : parts) {
    out = out ? Expr::Binary(BinaryOp::kAnd, out, p) : p;
  }
  return out;
}

namespace {

/// Remaps bound column indices through `mapping` (old index -> new index).
void RewriteIndices(Expr* e, const std::vector<int>& mapping) {
  if (e->kind == ExprKind::kColumnRef && e->column_index >= 0) {
    e->column_index = mapping[static_cast<size_t>(e->column_index)];
    return;
  }
  for (auto& c : e->children) RewriteIndices(c.get(), mapping);
}

ExprPtr RewrittenClone(const ExprPtr& e, const std::vector<int>& mapping) {
  ExprPtr c = e->Clone();
  RewriteIndices(c.get(), mapping);
  return c;
}

/// Replaces subtrees of `e` that structurally equal one of `targets[i]` by a
/// bound reference to output column `target_index(i)`. Used to rewrite
/// post-aggregation select expressions over the Aggregate node's output.
ExprPtr ReplaceMatching(const ExprPtr& e, const std::vector<ExprPtr>& targets,
                        const std::vector<int>& target_indices,
                        const Schema& out_schema,
                        std::set<const Expr*>* replacements) {
  for (size_t i = 0; i < targets.size(); ++i) {
    if (e->Equals(*targets[i])) {
      size_t idx = static_cast<size_t>(target_indices[i]);
      ExprPtr col = Expr::BoundColumn(target_indices[i],
                                      out_schema.field(idx).type,
                                      out_schema.field(idx).name);
      col->alias = e->alias;
      replacements->insert(col.get());
      return col;
    }
  }
  ExprPtr c = std::make_shared<Expr>(*e);
  for (auto& child : c->children) {
    child = ReplaceMatching(child, targets, target_indices, out_schema,
                            replacements);
  }
  return c;
}

/// After ReplaceMatching, any column reference that is not one of the
/// inserted replacements refers to a pre-aggregation column — invalid SQL
/// (a select item outside GROUP BY).
bool ContainsUnreplacedColumn(const Expr& e,
                              const std::set<const Expr*>& replacements) {
  if (e.kind == ExprKind::kColumnRef) return replacements.count(&e) == 0;
  if (e.kind == ExprKind::kAggregate) return false;  // args live pre-agg
  for (const auto& c : e.children) {
    if (ContainsUnreplacedColumn(*c, replacements)) return true;
  }
  return false;
}

void CollectAggregates(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind == ExprKind::kAggregate) {
    for (const auto& existing : *out) {
      if (existing->Equals(*e)) return;
    }
    out->push_back(e);
    return;
  }
  for (const auto& c : e->children) CollectAggregates(c, out);
}

struct RelInfo {
  PlanPtr plan;             // resolved (and later filtered/pruned) subtree
  std::string alias;        // FROM alias
  size_t offset = 0;        // first column in the combined global schema
  size_t width = 0;         // column count in the combined global schema
  std::vector<int> kept;    // global indices kept after pruning (sorted)
};

/// Which relations does a bound (global-index) expression touch?
uint32_t RelMask(const Expr& e, const std::vector<RelInfo>& rels) {
  std::vector<int> cols;
  CollectColumnIndices(e, &cols);
  uint32_t mask = 0;
  for (int c : cols) {
    for (size_t r = 0; r < rels.size(); ++r) {
      if (static_cast<size_t>(c) >= rels[r].offset &&
          static_cast<size_t>(c) < rels[r].offset + rels[r].width) {
        mask |= 1u << r;
      }
    }
  }
  return mask;
}

struct JoinConjunct {
  int left_global = -1;   // global column index
  int right_global = -1;
  size_t rel_a = 0, rel_b = 0;  // relations of left/right side
};

}  // namespace

Result<PlanPtr> Planner::Plan(const sql::SelectStmt& stmt) {
  if (stmt.from.empty()) {
    return Status::BindError("query has no FROM clause");
  }
  if (stmt.from.size() > 20) {
    return Status::NotImplemented("more than 20 relations in FROM");
  }

  // --- 1. Resolve relations; build the combined (global) schema. ---
  std::vector<RelInfo> rels;
  Schema combined;
  std::vector<std::string> combined_quals;
  for (const auto& ref : stmt.from) {
    PlanPtr sub;
    if (ref.subquery) {
      // Derived table: plan the subquery with the same resolver/options.
      Planner subplanner(resolver_, options_);
      XDB_ASSIGN_OR_RETURN(sub, subplanner.Plan(*ref.subquery));
    } else {
      XDB_ASSIGN_OR_RETURN(sub, resolver_->Resolve(ref.db, ref.table));
    }
    RelInfo info;
    info.alias = ref.EffectiveAlias();
    // Re-qualify the subtree's outputs under the FROM alias.
    sub->output_qualifiers.assign(sub->output_schema.num_fields(),
                                  info.alias);
    info.offset = combined.num_fields();
    info.width = sub->output_schema.num_fields();
    for (const auto& f : sub->output_schema.fields()) {
      combined.AddField(f);
      combined_quals.push_back(info.alias);
    }
    info.plan = std::move(sub);
    rels.push_back(std::move(info));
  }

  // --- 2. Bind WHERE; classify conjuncts. ---
  std::vector<std::vector<ExprPtr>> local_filters(rels.size());
  std::vector<JoinConjunct> join_conjuncts;
  std::vector<ExprPtr> residuals;  // cross-relation non-equi, bound globally
  if (stmt.where) {
    XDB_ASSIGN_OR_RETURN(ExprPtr where,
                         BindExpr(stmt.where, combined, &combined_quals));
    std::vector<ExprPtr> conjuncts;
    SplitConjuncts(where, &conjuncts);
    for (auto& c : conjuncts) {
      uint32_t mask = RelMask(*c, rels);
      int nrels = __builtin_popcount(mask);
      if (nrels <= 1 && options_.push_down_filters) {
        size_t r = mask == 0 ? 0 : static_cast<size_t>(
                                       __builtin_ctz(mask));
        local_filters[r].push_back(c);
        continue;
      }
      // Pure equi-join conjunct between two relations?
      if (nrels == 2 && c->kind == ExprKind::kBinary &&
          c->binary_op == BinaryOp::kEq &&
          c->children[0]->kind == ExprKind::kColumnRef &&
          c->children[1]->kind == ExprKind::kColumnRef) {
        JoinConjunct jc;
        jc.left_global = c->children[0]->column_index;
        jc.right_global = c->children[1]->column_index;
        for (size_t r = 0; r < rels.size(); ++r) {
          size_t lo = rels[r].offset, hi = rels[r].offset + rels[r].width;
          if (static_cast<size_t>(jc.left_global) >= lo &&
              static_cast<size_t>(jc.left_global) < hi) {
            jc.rel_a = r;
          }
          if (static_cast<size_t>(jc.right_global) >= lo &&
              static_cast<size_t>(jc.right_global) < hi) {
            jc.rel_b = r;
          }
        }
        join_conjuncts.push_back(jc);
        continue;
      }
      residuals.push_back(c);
    }
  }

  // --- 3. Bind SELECT / GROUP BY / ORDER BY against the global schema. ---
  std::vector<ExprPtr> select_exprs;
  if (stmt.select_star) {
    for (size_t i = 0; i < combined.num_fields(); ++i) {
      select_exprs.push_back(Expr::BoundColumn(
          static_cast<int>(i), combined.field(i).type,
          combined.field(i).name));
    }
  } else {
    for (const auto& e : stmt.select_list) {
      XDB_ASSIGN_OR_RETURN(ExprPtr bound,
                           BindExpr(e, combined, &combined_quals));
      select_exprs.push_back(std::move(bound));
    }
  }

  auto resolve_by_alias = [&](const ExprPtr& e) -> ExprPtr {
    // SQL scoping: a bare name in GROUP BY / ORDER BY may refer to a SELECT
    // alias (the paper's example groups by the alias 'age_group').
    if (e->kind == ExprKind::kColumnRef && e->qualifier.empty()) {
      for (const auto& s : select_exprs) {
        if (!s->alias.empty() && EqualsIgnoreCase(s->alias, e->column)) {
          return s->Clone();
        }
      }
    }
    return nullptr;
  };

  std::vector<ExprPtr> group_keys;
  for (const auto& g : stmt.group_by) {
    if (ExprPtr aliased = resolve_by_alias(g)) {
      group_keys.push_back(std::move(aliased));
      continue;
    }
    XDB_ASSIGN_OR_RETURN(ExprPtr bound,
                         BindExpr(g, combined, &combined_quals));
    group_keys.push_back(std::move(bound));
  }

  ExprPtr having_bound;
  if (stmt.having) {
    if (ExprPtr aliased = resolve_by_alias(stmt.having)) {
      having_bound = std::move(aliased);
    } else {
      XDB_ASSIGN_OR_RETURN(having_bound,
                           BindExpr(stmt.having, combined, &combined_quals));
    }
  }

  bool has_aggregates = !group_keys.empty();
  for (const auto& s : select_exprs) {
    if (s->ContainsAggregate()) has_aggregates = true;
  }
  if (having_bound && having_bound->ContainsAggregate()) {
    has_aggregates = true;
  }
  if (having_bound && !has_aggregates) {
    return Status::BindError("HAVING requires aggregation");
  }

  // --- 4. Column pruning: find the global columns anything references. ---
  std::set<int> needed;
  auto note = [&](const ExprPtr& e) {
    std::vector<int> cols;
    CollectColumnIndices(*e, &cols);
    needed.insert(cols.begin(), cols.end());
  };
  for (const auto& e : select_exprs) note(e);
  for (const auto& e : group_keys) note(e);
  for (const auto& e : residuals) note(e);
  if (having_bound) note(having_bound);
  for (const auto& jc : join_conjuncts) {
    needed.insert(jc.left_global);
    needed.insert(jc.right_global);
  }
  for (const auto& item : stmt.order_by) {
    // Order keys resolve against select output later, but if they name a
    // raw column we must keep that column alive.
    if (ExprPtr aliased = resolve_by_alias(item.expr)) continue;
    auto bound = BindExpr(item.expr, combined, &combined_quals);
    if (bound.ok()) note(*bound);
  }

  // --- 5. Per-relation: apply pushed filters, then prune columns. ---
  // `global_to_local[g]` = column position within the (pruned) relation.
  std::vector<int> global_to_local(combined.num_fields(), -1);
  for (size_t r = 0; r < rels.size(); ++r) {
    RelInfo& info = rels[r];
    // Rebase local filters from global to relation-local indices.
    std::vector<int> rebase(combined.num_fields(), -1);
    for (size_t i = 0; i < info.width; ++i) {
      rebase[info.offset + i] = static_cast<int>(i);
    }
    if (!local_filters[r].empty()) {
      std::vector<ExprPtr> rebased;
      for (const auto& f : local_filters[r]) {
        rebased.push_back(RewrittenClone(f, rebase));
      }
      info.plan = PlanNode::MakeFilter(info.plan, CombineConjuncts(rebased));
    }
    // Prune.
    for (size_t i = 0; i < info.width; ++i) {
      int g = static_cast<int>(info.offset + i);
      if (needed.count(g) ||
          (!options_.prune_columns)) {
        info.kept.push_back(g);
      }
    }
    if (info.kept.empty()) {
      // Keep one column so the relation still produces row multiplicity.
      info.kept.push_back(static_cast<int>(info.offset));
    }
    if (options_.prune_columns &&
        info.kept.size() < info.width) {
      std::vector<ExprPtr> cols;
      for (int g : info.kept) {
        int local = g - static_cast<int>(info.offset);
        cols.push_back(Expr::BoundColumn(
            local,
            info.plan->output_schema.field(static_cast<size_t>(local)).type,
            info.plan->output_schema.field(
                static_cast<size_t>(local)).name));
      }
      std::vector<std::string> quals = info.plan->output_qualifiers;
      info.plan = PlanNode::MakeProject(info.plan, std::move(cols));
      // Projection of pass-through columns keeps the alias qualifier.
      info.plan->output_qualifiers.assign(
          info.plan->output_schema.num_fields(), info.alias);
    }
    for (size_t i = 0; i < info.kept.size(); ++i) {
      global_to_local[static_cast<size_t>(info.kept[i])] =
          static_cast<int>(i);
    }
  }

  // --- 6. Join ordering (left-deep DP over connected subsets). ---
  struct State {
    PlanPtr plan;
    double cost = 0;                 // sum of intermediate cardinalities
    std::vector<int> col_map;        // global index -> plan output index
    bool valid = false;
  };

  auto make_leaf_state = [&](size_t r) {
    State s;
    s.plan = rels[r].plan;
    s.cost = 0;
    s.col_map.assign(combined.num_fields(), -1);
    for (size_t i = 0; i < rels[r].kept.size(); ++i) {
      s.col_map[static_cast<size_t>(rels[r].kept[i])] =
          static_cast<int>(i);
    }
    s.valid = true;
    return s;
  };

  /// Joins two disjoint states; keys come from the equi-conjuncts with one
  /// side in each. Returns (state, had-join-keys).
  auto join_two = [&](const State& left, const State& right) {
    std::vector<int> lk, rk;
    for (const auto& jc : join_conjuncts) {
      size_t lg = static_cast<size_t>(jc.left_global);
      size_t rg = static_cast<size_t>(jc.right_global);
      int l_idx = -1, r_idx = -1;
      if (left.col_map[lg] >= 0 && right.col_map[rg] >= 0) {
        l_idx = left.col_map[lg];
        r_idx = right.col_map[rg];
      } else if (left.col_map[rg] >= 0 && right.col_map[lg] >= 0) {
        l_idx = left.col_map[rg];
        r_idx = right.col_map[lg];
      } else {
        continue;
      }
      lk.push_back(l_idx);
      rk.push_back(r_idx);
    }
    State out;
    out.plan = PlanNode::MakeJoin(left.plan, right.plan, lk, rk, nullptr);
    size_t left_width = left.plan->output_schema.num_fields();
    out.col_map = left.col_map;
    for (size_t i = 0; i < out.col_map.size(); ++i) {
      if (right.col_map[i] >= 0) {
        out.col_map[i] = static_cast<int>(left_width) + right.col_map[i];
      }
    }
    Estimator est;
    out.cost = left.cost + right.cost + est.Estimate(*out.plan).rows;
    out.valid = true;
    return std::make_pair(out, !lk.empty());
  };

  // Base planning units: one per FROM relation, or — under Garlic-style
  // source decomposition — one per maximal co-located connected group.
  std::vector<State> units;
  for (size_t r = 0; r < rels.size(); ++r) {
    units.push_back(make_leaf_state(r));
  }
  if (options_.colocate_joins_first && units.size() > 1) {
    auto home_db = [](const State& st) -> std::string {
      auto dbs = st.plan->ReferencedDatabases();
      return dbs.size() == 1 ? dbs[0] : "";
    };
    bool merged = true;
    while (merged) {
      merged = false;
      for (size_t i = 0; i < units.size() && !merged; ++i) {
        for (size_t j = i + 1; j < units.size() && !merged; ++j) {
          std::string a = home_db(units[i]), b = home_db(units[j]);
          if (a.empty() || a != b) continue;
          auto [cand, connected] = join_two(units[i], units[j]);
          if (!connected) continue;  // never cross-join inside a source
          units[i] = cand;
          units.erase(units.begin() + static_cast<long>(j));
          merged = true;
        }
      }
    }
  }

  State final_state;
  if (units.size() == 1) {
    final_state = units[0];
  } else if (!options_.reorder_joins) {
    final_state = units[0];
    for (size_t r = 1; r < units.size(); ++r) {
      final_state = join_two(final_state, units[r]).first;
    }
  } else {
    const size_t n = units.size();
    std::vector<State> dp(static_cast<size_t>(1) << n);
    for (size_t r = 0; r < n; ++r) {
      dp[static_cast<size_t>(1) << r] = units[r];
    }
    if (!options_.bushy_joins) {
      // Left-deep DP: extend each state by one base relation, preferring
      // connected extensions (cross joins only when unavoidable).
      for (size_t mask = 1; mask < dp.size(); ++mask) {
        if (!dp[mask].valid) continue;
        bool any_connected = false;
        for (int pass = 0; pass < 2 && !any_connected; ++pass) {
          for (size_t r = 0; r < n; ++r) {
            if (mask & (static_cast<size_t>(1) << r)) continue;
            auto [cand, connected] = join_two(dp[mask], units[r]);
            if (pass == 0 && !connected) continue;
            if (connected) any_connected = true;
            size_t nm = mask | (static_cast<size_t>(1) << r);
            if (!dp[nm].valid || cand.cost < dp[nm].cost) dp[nm] = cand;
          }
          if (pass == 0 && any_connected) break;
        }
      }
    } else {
      // Bushy DP: every (sub, mask^sub) split of every subset. Both parts
      // are numerically smaller than `mask`, so ascending order suffices.
      for (size_t mask = 1; mask < dp.size(); ++mask) {
        if (__builtin_popcountll(mask) < 2) continue;
        for (int pass = 0; pass < 2; ++pass) {
          bool any_connected = false;
          for (size_t sub = (mask - 1) & mask; sub != 0;
               sub = (sub - 1) & mask) {
            size_t other = mask ^ sub;
            if (sub < other) continue;  // each split once
            if (!dp[sub].valid || !dp[other].valid) continue;
            auto [cand, connected] = join_two(dp[sub], dp[other]);
            if (pass == 0 && !connected) continue;
            if (connected) any_connected = true;
            if (!dp[mask].valid || cand.cost < dp[mask].cost) {
              dp[mask] = cand;
            }
          }
          if (pass == 0 && any_connected) break;
        }
      }
    }
    final_state = dp[dp.size() - 1];
    if (!final_state.valid) {
      return Status::Internal("join ordering produced no complete plan");
    }
  }

  PlanPtr plan = final_state.plan;
  const std::vector<int>& col_map = final_state.col_map;

  // --- 7. Residual cross-relation predicates on top of the join tree. ---
  if (!residuals.empty()) {
    std::vector<ExprPtr> rebased;
    for (const auto& rexpr : residuals) {
      rebased.push_back(RewrittenClone(rexpr, col_map));
    }
    plan = PlanNode::MakeFilter(plan, CombineConjuncts(rebased));
  }

  // --- 8. Aggregation / projection. ---
  if (has_aggregates) {
    std::vector<ExprPtr> keys_rebased;
    for (const auto& g : group_keys) {
      keys_rebased.push_back(RewrittenClone(g, col_map));
    }
    std::vector<ExprPtr> agg_calls;
    for (const auto& s : select_exprs) CollectAggregates(s, &agg_calls);
    if (having_bound) CollectAggregates(having_bound, &agg_calls);
    if (agg_calls.empty()) {
      // GROUP BY without aggregates: plain deduplication.
      agg_calls.push_back(Expr::Aggregate(AggKind::kCountStar, nullptr));
    }
    std::vector<ExprPtr> aggs_rebased;
    for (const auto& a : agg_calls) {
      aggs_rebased.push_back(RewrittenClone(a, col_map));
    }
    PlanPtr agg =
        PlanNode::MakeAggregate(plan, keys_rebased, aggs_rebased);

    // Rewrite the select list over the aggregate's output: group keys map
    // to leading columns, aggregate calls to trailing columns.
    std::vector<ExprPtr> targets;
    std::vector<int> target_idx;
    for (size_t i = 0; i < group_keys.size(); ++i) {
      targets.push_back(group_keys[i]);
      target_idx.push_back(static_cast<int>(i));
    }
    for (size_t i = 0; i < agg_calls.size(); ++i) {
      targets.push_back(agg_calls[i]);
      target_idx.push_back(static_cast<int>(group_keys.size() + i));
    }
    PlanPtr agg_out = agg;
    std::set<const Expr*> replacements;
    if (having_bound) {
      ExprPtr having_rewritten =
          ReplaceMatching(having_bound, targets, target_idx,
                          agg->output_schema, &replacements);
      if (ContainsUnreplacedColumn(*having_rewritten, replacements)) {
        return Status::BindError(
            "HAVING references columns outside GROUP BY: " +
            having_bound->ToSql());
      }
      agg_out = PlanNode::MakeFilter(agg_out, std::move(having_rewritten));
    }
    std::vector<ExprPtr> final_exprs;
    for (const auto& s : select_exprs) {
      ExprPtr rewritten = ReplaceMatching(s, targets, target_idx,
                                          agg->output_schema, &replacements);
      if (ContainsUnreplacedColumn(*rewritten, replacements)) {
        return Status::BindError(
            "select expression references columns outside GROUP BY: " +
            s->ToSql());
      }
      final_exprs.push_back(std::move(rewritten));
    }
    plan = PlanNode::MakeProject(agg_out, std::move(final_exprs));
  } else if (!stmt.select_star) {
    std::vector<ExprPtr> rebased;
    for (const auto& s : select_exprs) {
      rebased.push_back(RewrittenClone(s, col_map));
    }
    plan = PlanNode::MakeProject(plan, std::move(rebased));
  } else if (rels.size() > 1 || options_.prune_columns) {
    // SELECT * over multiple relations: produce the FROM-order columns.
    std::vector<ExprPtr> rebased;
    for (const auto& s : select_exprs) {
      rebased.push_back(RewrittenClone(s, col_map));
    }
    plan = PlanNode::MakeProject(plan, std::move(rebased));
  }

  // --- 9. ORDER BY over the final output. ---
  if (!stmt.order_by.empty()) {
    std::vector<std::pair<int, bool>> sort_keys;
    for (const auto& item : stmt.order_by) {
      int idx = -1;
      // (a) name/alias of an output column;
      if (item.expr->kind == ExprKind::kColumnRef &&
          item.expr->qualifier.empty()) {
        if (auto found = plan->output_schema.IndexOf(item.expr->column)) {
          idx = static_cast<int>(*found);
        }
      }
      // (b) structural match against a select expression.
      if (idx < 0 && !stmt.select_star) {
        auto bound = BindExpr(item.expr, combined, &combined_quals);
        if (bound.ok()) {
          for (size_t i = 0; i < select_exprs.size(); ++i) {
            if (select_exprs[i]->Equals(**bound)) {
              idx = static_cast<int>(i);
              break;
            }
          }
        }
      }
      if (idx < 0) {
        return Status::BindError("cannot resolve ORDER BY item: " +
                                 item.expr->ToSql());
      }
      sort_keys.emplace_back(idx, item.descending);
    }
    plan = PlanNode::MakeSort(plan, std::move(sort_keys));
  }

  // --- 10. LIMIT. ---
  if (stmt.limit >= 0) plan = PlanNode::MakeLimit(plan, stmt.limit);

  return plan;
}

}  // namespace xdb
