#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/expr/expr.h"
#include "src/plan/stats.h"
#include "src/types/schema.h"

namespace xdb {

enum class PlanKind : uint8_t {
  kScan,         // base table / view target / foreign table
  kFilter,
  kProject,
  kJoin,         // inner equi-join (+ optional residual predicate)
  kAggregate,    // hash aggregate: group keys + aggregate functions
  kSort,
  kLimit,
  kPlaceholder,  // "?" — input produced by another delegation task
};

/// \brief Movement type on a delegation-plan edge (paper Section IV-A).
enum class Movement : uint8_t {
  kImplicit,  // pipelined through a foreign-table read
  kExplicit,  // materialised on the consumer before use
};

const char* MovementToString(Movement m);

struct PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

/// \brief A logical-plan node.
///
/// The same representation serves (a) the per-DBMS local planner, (b) XDB's
/// cross-database optimizer, and (c) — once annotated — the input to plan
/// finalization. Expressions held by a node are bound against the node's
/// child output schema. `output_schema`/`output_qualifiers` are maintained by
/// the Make* factories.
struct PlanNode {
  PlanKind kind = PlanKind::kScan;
  std::vector<PlanPtr> children;

  // --- kScan ---
  std::string db;       // owning DBMS name (annotation source for leaves)
  std::string table;    // relation name in that DBMS
  std::string alias;    // exposure alias (qualifier for column resolution)
  TableStats scan_stats;
  bool is_foreign = false;        // scan of a SQL/MED foreign table
  std::string foreign_server;     // remote DBMS (when is_foreign)
  std::string remote_relation;    // relation on the remote DBMS

  // --- kFilter ---
  ExprPtr predicate;  // bound against children[0] output

  // --- kProject ---
  std::vector<ExprPtr> exprs;  // bound against children[0] output

  // --- kJoin ---
  std::vector<int> left_keys;   // column indices into left child output
  std::vector<int> right_keys;  // column indices into right child output
  ExprPtr residual;             // bound against concat(left, right); may be null

  // --- kAggregate ---
  std::vector<ExprPtr> group_keys;  // bound against children[0] output
  std::vector<ExprPtr> aggregates;  // kAggregate exprs, args bound likewise

  // --- kSort ---
  std::vector<std::pair<int, bool>> sort_keys;  // (output column, descending)

  // --- kLimit ---
  int64_t limit = -1;

  // --- kPlaceholder ---
  std::string placeholder_name;  // name of the producing task's relation
  double placeholder_rows = 0;   // estimated input cardinality
  bool placeholder_foreign = false;  // arrives as a pipelined foreign stream
                                     // (implicit movement) rather than a
                                     // local materialised table

  // --- derived / annotations ---
  Schema output_schema;
  std::vector<std::string> output_qualifiers;  // per output field
  std::string annotation;            // DBMS prescribed by the annotator
  Movement edge_movement = Movement::kImplicit;  // edge to parent (annotated)

  // --- estimation accountability (Estimator::StampEstimates) ---
  // Planning-time output estimates, carried through Clone() and the plan
  // cache so execution can report estimate-vs-actual divergence. -1 means
  // the subtree was never stamped.
  double est_rows = -1;
  double est_width = 0;  // estimated serialized bytes per row

  // ---- factories (compute output schema/qualifiers) ----
  static PlanPtr MakeScan(std::string db, std::string table,
                          std::string alias, Schema schema, TableStats stats);
  static PlanPtr MakeFilter(PlanPtr child, ExprPtr predicate);
  static PlanPtr MakeProject(PlanPtr child, std::vector<ExprPtr> exprs);
  static PlanPtr MakeJoin(PlanPtr left, PlanPtr right,
                          std::vector<int> left_keys,
                          std::vector<int> right_keys, ExprPtr residual);
  static PlanPtr MakeAggregate(PlanPtr child, std::vector<ExprPtr> group_keys,
                               std::vector<ExprPtr> aggregates);
  static PlanPtr MakeSort(PlanPtr child,
                          std::vector<std::pair<int, bool>> sort_keys);
  static PlanPtr MakeLimit(PlanPtr child, int64_t limit);
  static PlanPtr MakePlaceholder(std::string name, Schema schema,
                                 std::vector<std::string> qualifiers,
                                 double est_rows);

  /// Deep copy (expressions cloned too).
  PlanPtr Clone() const;

  /// Multi-line indented rendering for debugging and EXPLAIN output.
  std::string ToString(int indent = 0) const;

  /// One-line algebraic rendering in the paper's style, e.g.
  /// "⋈(π(σ(C)), ?)" — used by the Table IV bench and plan logging.
  std::string ToAlgebraString() const;

  /// Set of distinct leaf-level DBMS names under this subtree
  /// (placeholders contribute nothing).
  std::vector<std::string> ReferencedDatabases() const;
};

}  // namespace xdb
