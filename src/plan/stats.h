#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/types/table.h"

namespace xdb {

/// \brief Per-column statistics used by the cardinality estimator.
struct ColumnStats {
  double ndv = 1000.0;   // number of distinct values (estimate)
  Value min = Value::Null(TypeId::kInt64);
  Value max = Value::Null(TypeId::kInt64);
  double avg_width = 8.0;  // average serialized width in bytes

  bool has_min_max() const { return !min.is_null() && !max.is_null(); }
};

/// \brief Per-relation statistics.
struct TableStats {
  double row_count = 0;
  std::vector<ColumnStats> columns;  // aligned with the relation's schema

  double avg_row_width() const {
    double w = 0;
    for (const auto& c : columns) w += c.avg_width;
    return w > 0 ? w : 64.0;
  }
};

/// \brief Scans a table once and computes exact min/max/ndv/width stats.
///
/// This is the "ANALYZE" of the simulated DBMS: the statistics every
/// component DBMS exposes through its declarative interface (and which XDB
/// gathers in its preparation phase through the connectors).
TableStats ComputeTableStats(const Table& table);

}  // namespace xdb
