#include "src/plan/stats.h"

#include <unordered_set>

namespace xdb {

TableStats ComputeTableStats(const Table& table) {
  TableStats stats;
  stats.row_count = static_cast<double>(table.num_rows());
  const size_t ncols = table.schema().num_fields();
  stats.columns.resize(ncols);

  std::vector<std::unordered_set<size_t>> distinct_hashes(ncols);
  std::vector<double> width_sums(ncols, 0.0);

  for (const auto& row : table.rows()) {
    for (size_t c = 0; c < ncols; ++c) {
      const Value& v = row[c];
      width_sums[c] += static_cast<double>(v.SerializedSize());
      if (v.is_null()) continue;
      distinct_hashes[c].insert(v.Hash());
      ColumnStats& cs = stats.columns[c];
      if (cs.min.is_null() || v.Compare(cs.min) < 0) cs.min = v;
      if (cs.max.is_null() || v.Compare(cs.max) > 0) cs.max = v;
    }
  }
  for (size_t c = 0; c < ncols; ++c) {
    ColumnStats& cs = stats.columns[c];
    cs.ndv = std::max<double>(1.0, static_cast<double>(
                                       distinct_hashes[c].size()));
    cs.avg_width = table.num_rows() > 0
                       ? width_sums[c] / static_cast<double>(table.num_rows())
                       : 8.0;
  }
  return stats;
}

}  // namespace xdb
