#pragma once

#include "src/plan/plan.h"

namespace xdb {

/// \brief Estimated properties of a plan node's output.
struct PlanEstimate {
  double rows = 0;
  double row_width = 64.0;  // average serialized bytes per row
  std::vector<ColumnStats> columns;

  double bytes() const { return rows * row_width; }
};

/// \brief Textbook System-R-style cardinality estimation.
///
/// Selectivities: equality 1/ndv, range by min/max interpolation, LIKE 0.1,
/// IN-list n/ndv, conjunction multiplies, disjunction adds (capped). Joins
/// use |L||R| / max(ndv_l, ndv_r) per key pair. Aggregates cap at the
/// product of group-key NDVs. Placeholders carry their producer's estimate.
class Estimator {
 public:
  /// Estimates the whole subtree rooted at `node` (recursive, no caching;
  /// plans here are small).
  PlanEstimate Estimate(const PlanNode& node) const;

  /// Stamps `est_rows`/`est_width` on every node of the subtree in a single
  /// bottom-up pass (one estimate per node, not O(n^2) re-estimation) and
  /// returns the root estimate. The stamps survive Clone() and the plan
  /// cache, so a cached plan replays identical estimates.
  PlanEstimate StampEstimates(PlanNode& node) const;

  /// Selectivity of a bound predicate against input column stats.
  double Selectivity(const Expr& predicate, const PlanEstimate& input) const;

 private:
  /// Estimate of one node given already-computed child estimates.
  PlanEstimate EstimateWithInputs(
      const PlanNode& node, const std::vector<PlanEstimate>& inputs) const;
};

}  // namespace xdb
