#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xdb {

/// \brief Monotonic counter. Increment is a relaxed atomic CAS loop —
/// callers may increment from morsel workers without coordination, and the
/// counter never feeds back into modelled results, so relaxed ordering is
/// sufficient.
class Counter {
 public:
  void Increment(double v = 1.0) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// \brief Last-written-wins gauge.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// \brief Fixed-bucket histogram: cumulative bucket counts over caller-
/// supplied upper bounds (an implicit +Inf bucket collects the rest), plus
/// observation count and sum — the Prometheus histogram shape.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Non-cumulative count of observations that fell into bucket `i`
  /// (`i == bounds.size()` is the overflow bucket).
  int64_t BucketCount(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> bounds_;  // ascending
  std::unique_ptr<std::atomic<int64_t>[]> counts_storage_;
  std::atomic<int64_t>* counts_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// \brief Process-wide registry of named metrics with text exposition.
///
/// Registration is mutex-guarded and idempotent (GetCounter twice returns
/// the same object); the returned pointers are stable for the registry's
/// lifetime, so hot paths register once and increment lock-free thereafter.
/// Federation-level instrumentation (fetches, useful/wasted bytes, retries,
/// rollbacks, replans) reports here; `TextExposition()` renders everything
/// in Prometheus text format for scraping or test assertions.
class MetricsRegistry {
 public:
  /// The process-wide default instance.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  /// `upper_bounds` is only consulted on first registration.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds,
                          const std::string& help = "");

  /// Prometheus-style text exposition (HELP/TYPE + samples, name-sorted).
  std::string TextExposition() const;

  /// Zeroes every registered metric (the metrics stay registered).
  void ResetAll();

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace xdb
