#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace xdb {

/// \brief Monotonic counter. Increment is a relaxed atomic CAS loop —
/// callers may increment from morsel workers without coordination, and the
/// counter never feeds back into modelled results, so relaxed ordering is
/// sufficient.
class Counter {
 public:
  void Increment(double v = 1.0) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// \brief Last-written-wins gauge.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// \brief Fixed-bucket histogram: cumulative bucket counts over caller-
/// supplied upper bounds (an implicit +Inf bucket collects the rest), plus
/// observation count and sum — the Prometheus histogram shape.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Non-cumulative count of observations that fell into bucket `i`
  /// (`i == bounds.size()` is the overflow bucket).
  int64_t BucketCount(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> bounds_;  // ascending
  std::unique_ptr<std::atomic<int64_t>[]> counts_storage_;
  std::atomic<int64_t>* counts_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// \brief One rendered sample of the registry — the structured counterpart
/// of one ExposeText() line, consumed by the `xdb_stat.metrics` system
/// table. Histogram cells expand exactly like the exposition: one `bucket`
/// sample per bound (cumulative, `le=` rendered last in `labels`), then
/// `sum` and `count`.
struct MetricSample {
  std::string family;  // family name (no _bucket/_sum/_count suffix)
  std::string labels;  // canonical `{k="v",...}` rendering; "" if unlabeled
  std::string kind;    // "counter" | "gauge" | "bucket" | "sum" | "count"
  double value = 0;
};

/// \brief One dimension of a metric: `{server="db1"}`, `{link="db1->db3"}`.
///
/// Label sets are canonicalized (sorted by key, duplicate keys last-wins)
/// before they identify a cell, so `{a=1,b=2}` and `{b=2,a=1}` name the same
/// time series. Values may contain any bytes — exposition escapes them.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// \brief Process-wide registry of named metric families with text
/// exposition.
///
/// A family is one metric name holding one cell per label set (the empty
/// label set is the plain process-wide series — the PR-4 metrics). Lookup is
/// mutex-guarded and idempotent: the same name + canonicalized labels always
/// returns the same cell, and the returned pointers are stable for the
/// registry's lifetime, so hot paths resolve once and increment lock-free
/// thereafter.
///
/// `ExposeText()` renders everything in Prometheus text format and is
/// byte-for-byte deterministic for a given workload: families sort by name,
/// cells sort by canonicalized label set, label values and HELP text are
/// escaped per the exposition spec.
class MetricsRegistry {
 public:
  /// The process-wide default instance.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  /// `upper_bounds` is only consulted on the family's first registration:
  /// every labeled cell of one histogram family shares one bucket layout.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds,
                          const std::string& help = "");

  /// Labeled variants: one cell per canonicalized label set.
  Counter* GetCounter(const std::string& name, const MetricLabels& labels,
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const MetricLabels& labels,
                  const std::string& help = "");
  Histogram* GetHistogram(const std::string& name, const MetricLabels& labels,
                          std::vector<double> upper_bounds,
                          const std::string& help = "");

  /// Prometheus text exposition: HELP/TYPE per family + one sample line per
  /// cell, deterministic (name-sorted families, label-sorted cells, escaped
  /// label values and HELP).
  std::string ExposeText() const;
  /// Older name for ExposeText(), kept for callers predating labels.
  std::string TextExposition() const { return ExposeText(); }

  /// Structured snapshot of every cell, in exactly ExposeText() order
  /// (name-sorted families; counters, then gauges, then histograms within a
  /// family; label-sorted cells; cumulative buckets before sum/count) — so
  /// the `xdb_stat.metrics` rows and the exposition always agree.
  std::vector<MetricSample> CollectSamples() const;

  /// Zeroes every registered cell (families and cells stay registered).
  void ResetAll();

  /// Escapes a label value for exposition: `\` -> `\\`, `"` -> `\"`,
  /// newline -> `\n` (the Prometheus text-format rules).
  static std::string EscapeLabelValue(const std::string& v);
  /// Escapes HELP text: `\` -> `\\`, newline -> `\n`.
  static std::string EscapeHelp(const std::string& v);
  /// Sorts by key; on duplicate keys the later entry wins.
  static MetricLabels Canonicalize(MetricLabels labels);

 private:
  struct Family {
    std::string help;
    std::vector<double> bounds;  // histogram families only
    std::map<MetricLabels, std::unique_ptr<Counter>> counters;
    std::map<MetricLabels, std::unique_ptr<Gauge>> gauges;
    std::map<MetricLabels, std::unique_ptr<Histogram>> histograms;
  };

  mutable std::mutex mu_;
  std::map<std::string, Family> entries_;
};

}  // namespace xdb
