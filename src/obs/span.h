#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace xdb {

/// \brief One node of a query's hierarchical timeline: a named interval in
/// *modelled* time (the repository never measures wall clock for reported
/// figures — see DESIGN.md §5), with string tags and a parent link.
///
/// Spans mirror the delegation DAG: the root span is the query, phase spans
/// (prepare / lopt / round / annotate / deploy / execute) nest under it,
/// deploy emits one span per delegation task, and every inter-DBMS fetch,
/// retry and replan round gets its own span. Transfer spans carry the
/// RunTrace record id so the timing model's per-transfer seconds can be
/// attached after the run is modelled.
struct Span {
  int64_t id = -1;
  int64_t parent_id = -1;  // -1: a root
  std::string name;

  /// Modelled interval, filled by SpanRecorder::FinalizeTimeline().
  double start_seconds = 0;
  double finish_seconds = 0;

  /// This span's own modelled duration (excluding children), set by whoever
  /// knows the modelled cost (phase costs, retry backoff, transfer seconds).
  double duration_seconds = 0;

  /// RunTrace transfer record id for fetch/transfer spans; -1 otherwise.
  int64_t record_id = -1;

  std::vector<std::pair<std::string, std::string>> tags;

  void Tag(std::string key, std::string value) {
    tags.emplace_back(std::move(key), std::move(value));
  }
  void Tag(std::string key, double value);
  void Tag(std::string key, int64_t value) {
    tags.emplace_back(std::move(key), std::to_string(value));
  }
  const std::string* FindTag(const std::string& key) const;
};

/// \brief Recorder for span trees, attached to a Federation like the fault
/// injector: a null pointer disables every hook (the fault-free discipline —
/// when detached, instrumented code performs exactly one pointer compare).
///
/// Spans are append-only and identified by index; StartSpan/EndSpan maintain
/// an open-span stack so nested instrumentation (fetches triggering fetches)
/// parents correctly without threading ids through every call site.
/// Recording never advances modelled time by itself: durations are attached
/// where they are known, and FinalizeTimeline() lays out start/finish so the
/// tree renders as a timeline (children sequential within their parent,
/// parents covering their children).
class SpanRecorder {
 public:
  /// Opens a span under the current innermost open span (or as a root) and
  /// returns its id.
  int64_t StartSpan(std::string name);

  /// Closes the innermost open span with id `id`. Ids of spans above it on
  /// the stack are closed too (defensive; balanced callers never hit this).
  void EndSpan(int64_t id);

  /// The innermost open span id, or -1.
  int64_t current() const { return stack_.empty() ? -1 : stack_.back(); }

  /// Mutable access for tagging / setting durations. Invalidated by the
  /// next StartSpan (vector growth) — do not hold across calls.
  Span* mutable_span(int64_t id);
  const std::vector<Span>& spans() const { return spans_; }
  /// Bulk mutation (attaching modelled transfer durations post-run).
  std::vector<Span>& mutable_spans() { return spans_; }

  /// Drops every recorded span (e.g. between queries when exporting one
  /// query per file).
  void Clear();

  /// Assigns start/finish: roots and siblings are laid out sequentially,
  /// children start at their parent's start, and each span covers
  /// max(own duration, sum of child extents). Call after the run (and after
  /// transfer durations were attached); idempotent.
  void FinalizeTimeline();

  size_t size() const { return spans_.size(); }

 private:
  double Layout(size_t index, double start,
                const std::vector<std::vector<size_t>>& children);

  std::vector<Span> spans_;
  std::vector<int64_t> stack_;
};

/// \brief RAII guard: opens a span on a possibly-null recorder and closes it
/// on scope exit. The null case costs one pointer compare.
class SpanGuard {
 public:
  SpanGuard(SpanRecorder* recorder, std::string name)
      : recorder_(recorder) {
    if (recorder_ != nullptr) id_ = recorder_->StartSpan(std::move(name));
  }
  ~SpanGuard() {
    if (recorder_ != nullptr) recorder_->EndSpan(id_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  bool active() const { return recorder_ != nullptr; }
  int64_t id() const { return id_; }
  /// Null when no recorder is attached.
  Span* span() { return recorder_ ? recorder_->mutable_span(id_) : nullptr; }

 private:
  SpanRecorder* recorder_;
  int64_t id_ = -1;
};

}  // namespace xdb
