#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace xdb {

/// \brief One node of a query's hierarchical timeline: a named interval in
/// *modelled* time (the repository never measures wall clock for reported
/// figures — see DESIGN.md §5), with string tags and a parent link.
///
/// Spans mirror the delegation DAG: the root span is the query, phase spans
/// (prepare / lopt / round / annotate / deploy / execute) nest under it,
/// deploy emits one span per delegation task, and every inter-DBMS fetch,
/// retry and replan round gets its own span. Transfer spans carry the
/// RunTrace record id so the timing model's per-transfer seconds can be
/// attached after the run is modelled.
struct Span {
  int64_t id = -1;
  int64_t parent_id = -1;  // -1: a root
  std::string name;

  /// Modelled interval, filled by SpanRecorder::FinalizeTimeline().
  double start_seconds = 0;
  double finish_seconds = 0;

  /// This span's own modelled duration (excluding children), set by whoever
  /// knows the modelled cost (phase costs, retry backoff, transfer seconds).
  double duration_seconds = 0;

  /// RunTrace transfer record id for fetch/transfer spans; -1 otherwise.
  int64_t record_id = -1;

  std::vector<std::pair<std::string, std::string>> tags;

  void Tag(std::string key, std::string value) {
    tags.emplace_back(std::move(key), std::move(value));
  }
  void Tag(std::string key, double value);
  void Tag(std::string key, int64_t value) {
    tags.emplace_back(std::move(key), std::to_string(value));
  }
  const std::string* FindTag(const std::string& key) const;
};

/// \brief Recorder for span trees, attached to a Federation like the fault
/// injector: a null pointer disables every hook (the fault-free discipline —
/// when detached, instrumented code performs exactly one pointer compare).
///
/// Spans are append-only with monotonically increasing ids; StartSpan/EndSpan
/// maintain an open-span stack so nested instrumentation (fetches triggering
/// fetches) parents correctly without threading ids through every call site.
/// Recording never advances modelled time by itself: durations are attached
/// where they are known, and FinalizeTimeline() lays out start/finish so the
/// tree renders as a timeline (children sequential within their parent,
/// parents covering their children).
///
/// Retention (long-running sessions): by default the recorder grows without
/// bound — right for one-shot benches that dump everything at exit. Two
/// knobs bound it:
///  - set_capacity(n): ring-buffer retention. When the recorder holds more
///    than `n` spans, whole *closed* root trees (oldest first) are evicted;
///    ids keep increasing, evicted ids resolve to nullptr. The tree being
///    recorded is never evicted, so memory is O(capacity + one query).
///  - SetSampling(head, every): head/tail sampling at root-tree granularity.
///    The first `head` trees are kept in full; afterwards only every
///    `every`-th tree is kept, the rest are dropped wholesale at StartSpan
///    time (their StartSpan returns kDroppedSpan and tag writes land in a
///    scratch span). Kept trees are recorded bit-identically to an
///    unsampled recorder.
class SpanRecorder {
 public:
  /// Id returned by StartSpan for spans in sampled-out trees. mutable_span
  /// maps it to a scratch span so call sites need no sampling awareness.
  static constexpr int64_t kDroppedSpan = -2;

  /// Opens a span under the current innermost open span (or as a root) and
  /// returns its id (kDroppedSpan when the enclosing tree is sampled out).
  int64_t StartSpan(std::string name);

  /// Closes the innermost open span with id `id`. Ids of spans above it on
  /// the stack are closed too (defensive; balanced callers never hit this).
  void EndSpan(int64_t id);

  /// The innermost open span id, or -1.
  int64_t current() const { return stack_.empty() ? -1 : stack_.back(); }

  /// Mutable access for tagging / setting durations. Returns nullptr for
  /// evicted ids; kDroppedSpan resolves to a reusable scratch span.
  /// Invalidated by the next StartSpan — do not hold across calls.
  Span* mutable_span(int64_t id);
  const std::vector<Span>& spans() const { return spans_; }
  /// Bulk mutation (attaching modelled transfer durations post-run). Under
  /// retention, `spans()[i].id != i` — match on Span::id, not position.
  std::vector<Span>& mutable_spans() { return spans_; }

  /// The id the next StartSpan will allocate. Callers that later want "every
  /// span recorded since X" capture this and filter on `span.id >= X` (ids
  /// stay comparable across evictions; indices do not).
  int64_t next_id() const {
    return base_id_ + static_cast<int64_t>(spans_.size());
  }

  /// Drops every recorded span (e.g. between queries when exporting one
  /// query per file). Retention/sampling knobs and id monotonicity persist.
  void Clear();

  // --- retention policy ---

  /// Caps retained spans at `max_spans` (0 — the default — is unbounded).
  /// Eviction drops whole closed root trees, oldest first.
  void set_capacity(size_t max_spans) { capacity_ = max_spans; }
  size_t capacity() const { return capacity_; }

  /// Head/tail sampling over root trees: keep the first `head_trees` in
  /// full, then keep every `keep_every`-th tree of the tail (1 keeps all —
  /// the default; 0 drops the whole tail).
  void SetSampling(int64_t head_trees, int64_t keep_every) {
    sample_head_ = head_trees;
    sample_every_ = keep_every;
  }

  /// Root trees started (kept or dropped) — the sampling denominator.
  int64_t trees_started() const { return trees_started_; }
  /// Spans discarded so far (evicted by capacity + dropped by sampling).
  int64_t dropped_spans() const { return dropped_spans_; }

  /// Assigns start/finish: roots and siblings are laid out sequentially,
  /// children start at their parent's start, and each span covers
  /// max(own duration, sum of child extents). Call after the run (and after
  /// transfer durations were attached); idempotent.
  void FinalizeTimeline();

  size_t size() const { return spans_.size(); }

 private:
  double Layout(size_t index, double start,
                const std::vector<std::vector<size_t>>& children);

  /// Evicts whole closed root trees from the front while over capacity.
  void EnforceCapacity();

  std::vector<Span> spans_;
  std::vector<int64_t> stack_;
  int64_t base_id_ = 0;  // id of spans_[0]; grows as trees are evicted
  size_t capacity_ = 0;  // 0 = unbounded
  int64_t sample_head_ = 0;
  int64_t sample_every_ = 1;
  int64_t trees_started_ = 0;
  int64_t dropped_spans_ = 0;
  bool dropping_tree_ = false;  // current root tree is sampled out
  Span scratch_;                // sink for writes to dropped spans
};

/// \brief RAII guard: opens a span on a possibly-null recorder and closes it
/// on scope exit. The null case costs one pointer compare.
class SpanGuard {
 public:
  SpanGuard(SpanRecorder* recorder, std::string name)
      : recorder_(recorder) {
    if (recorder_ != nullptr) id_ = recorder_->StartSpan(std::move(name));
  }
  ~SpanGuard() {
    if (recorder_ != nullptr) recorder_->EndSpan(id_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  bool active() const { return recorder_ != nullptr; }
  int64_t id() const { return id_; }
  /// Null when no recorder is attached.
  Span* span() { return recorder_ ? recorder_->mutable_span(id_) : nullptr; }

 private:
  SpanRecorder* recorder_;
  int64_t id_ = -1;
};

}  // namespace xdb
