#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/types/schema.h"
#include "src/types/table.h"

namespace xdb {

class Federation;
class SessionManager;
class XdbSystem;

/// Database qualifier reserved for the virtual system tables
/// (`SELECT ... FROM xdb_stat.queries ...`). No component DBMS may use it.
inline constexpr char kXdbStatDb[] = "xdb_stat";

/// Version string exposed through the `xdb_build_info` metric (one minor
/// bump per PR in the stacked sequence).
inline constexpr char kXdbVersion[] = "0.10";

/// \brief One virtual system table: a name under the `xdb_stat` database, a
/// fixed schema, and a Snapshot() that materializes the current state as an
/// ordinary Table (the pg_stat_* / information_schema pattern).
///
/// Contract:
///  - Snapshot() is thread-safe and purely observational — it must read its
///    source through that source's own thread-safe snapshot API, never hold
///    references into live structures, and never mutate modelled state.
///  - Rows are deterministically ordered by a stable per-table sort key
///    (documented per provider), so repeated snapshots of the same state
///    render byte-identically.
///  - The returned table is private to the query that asked: the executor
///    may consume it destructively.
class SystemTableProvider {
 public:
  virtual ~SystemTableProvider() = default;

  /// Bare table name under `xdb_stat` ("queries", "servers", ...).
  virtual const std::string& name() const = 0;

  /// The table's fixed schema (stable across snapshots).
  virtual const Schema& schema() const = 0;

  /// Materializes the current state. Never nullptr — an empty source yields
  /// an empty table with the fixed schema.
  virtual TablePtr Snapshot() const = 0;
};

/// \brief The set of registered system tables, owned by the XdbSystem that
/// enabled introspection.
///
/// Registration is setup-time only (EnableIntrospection); queries only call
/// the const lookups, so no locking is needed on the read path.
class IntrospectionRegistry {
 public:
  /// Registers a provider under its name(). Replaces an existing provider
  /// with the same name.
  void Register(std::unique_ptr<SystemTableProvider> provider);

  /// Case-insensitive lookup by bare table name; nullptr when unknown.
  SystemTableProvider* Find(const std::string& table) const;

  /// Registered table names, sorted.
  std::vector<std::string> TableNames() const;

  size_t size() const { return providers_.size(); }

 private:
  std::map<std::string, std::unique_ptr<SystemTableProvider>> providers_;
};

/// \brief Registers the standard `xdb_stat.*` providers:
///
///   metrics     one row per metric cell (histograms expand like the text
///               exposition), in ExposeText() order
///   queries     the QueryLog's retained history, by sequence
///   operators   per-operator estimate-vs-actual ledger, by (sequence, index)
///   transfers   per-link transfer aggregates over the retained history,
///               by link
///   plan_cache  resident delegation-plan cache entries, by key
///   sessions    open serving sessions, by id (empty unless `sessions`)
///   servers     component DBMSes with breaker state + engine profile,
///               by server name
///
/// `sessions` may be nullptr (no serving layer — the table is then always
/// empty). `fed` and `xdb` must outlive the registry.
void RegisterStandardProviders(IntrospectionRegistry* registry,
                               Federation* fed, XdbSystem* xdb,
                               SessionManager* sessions);

}  // namespace xdb
