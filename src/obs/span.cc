#include "src/obs/span.h"

#include <algorithm>
#include <cstdio>

namespace xdb {

void Span::Tag(std::string key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  tags.emplace_back(std::move(key), buf);
}

const std::string* Span::FindTag(const std::string& key) const {
  for (const auto& [k, v] : tags) {
    if (k == key) return &v;
  }
  return nullptr;
}

int64_t SpanRecorder::StartSpan(std::string name) {
  Span span;
  span.id = static_cast<int64_t>(spans_.size());
  span.parent_id = stack_.empty() ? -1 : stack_.back();
  span.name = std::move(name);
  spans_.push_back(std::move(span));
  stack_.push_back(spans_.back().id);
  return spans_.back().id;
}

void SpanRecorder::EndSpan(int64_t id) {
  // Pop until (and including) `id`; unbalanced inner spans close with it.
  while (!stack_.empty()) {
    int64_t top = stack_.back();
    stack_.pop_back();
    if (top == id) break;
  }
}

Span* SpanRecorder::mutable_span(int64_t id) {
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return nullptr;
  return &spans_[static_cast<size_t>(id)];
}

void SpanRecorder::Clear() {
  spans_.clear();
  stack_.clear();
}

double SpanRecorder::Layout(
    size_t index, double start,
    const std::vector<std::vector<size_t>>& children) {
  Span& span = spans_[index];
  span.start_seconds = start;
  double cursor = start;
  for (size_t child : children[index]) {
    cursor = Layout(child, cursor, children);
  }
  double extent = std::max(cursor - start, span.duration_seconds);
  span.finish_seconds = start + extent;
  return span.finish_seconds;
}

void SpanRecorder::FinalizeTimeline() {
  std::vector<std::vector<size_t>> children(spans_.size());
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans_.size(); ++i) {
    int64_t p = spans_[i].parent_id;
    if (p < 0) {
      roots.push_back(i);
    } else {
      children[static_cast<size_t>(p)].push_back(i);
    }
  }
  double cursor = 0;
  for (size_t r : roots) cursor = Layout(r, cursor, children);
}

}  // namespace xdb
