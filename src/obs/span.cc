#include "src/obs/span.h"

#include <algorithm>
#include <cstdio>

namespace xdb {

void Span::Tag(std::string key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  tags.emplace_back(std::move(key), buf);
}

const std::string* Span::FindTag(const std::string& key) const {
  for (const auto& [k, v] : tags) {
    if (k == key) return &v;
  }
  return nullptr;
}

int64_t SpanRecorder::StartSpan(std::string name) {
  if (stack_.empty()) {
    // A new root tree: the sampling decision is made once per tree and
    // inherited by everything nested under it, so kept trees are complete.
    ++trees_started_;
    if (trees_started_ <= sample_head_ || sample_head_ < 0) {
      dropping_tree_ = false;
    } else if (sample_every_ <= 0) {
      dropping_tree_ = true;
    } else {
      dropping_tree_ = (trees_started_ - sample_head_ - 1) % sample_every_ !=
                       0;
    }
    EnforceCapacity();
  }
  if (dropping_tree_) {
    ++dropped_spans_;
    stack_.push_back(kDroppedSpan);
    return kDroppedSpan;
  }
  Span span;
  span.id = next_id();
  span.parent_id = stack_.empty() ? -1 : stack_.back();
  span.name = std::move(name);
  spans_.push_back(std::move(span));
  stack_.push_back(spans_.back().id);
  return spans_.back().id;
}

void SpanRecorder::EndSpan(int64_t id) {
  // Pop until (and including) `id`; unbalanced inner spans close with it.
  // Dropped spans all share kDroppedSpan, which still matches correctly for
  // balanced callers (LIFO order pops the innermost first).
  while (!stack_.empty()) {
    int64_t top = stack_.back();
    stack_.pop_back();
    if (top == id) break;
  }
  if (stack_.empty()) {
    dropping_tree_ = false;
    EnforceCapacity();
  }
}

Span* SpanRecorder::mutable_span(int64_t id) {
  if (id == kDroppedSpan) {
    // Writes to sampled-out spans land here so instrumentation sites need no
    // sampling awareness; reset per hand-out to keep the sink O(1).
    scratch_ = Span{};
    return &scratch_;
  }
  int64_t index = id - base_id_;
  if (index < 0 || static_cast<size_t>(index) >= spans_.size()) {
    return nullptr;
  }
  return &spans_[static_cast<size_t>(index)];
}

void SpanRecorder::Clear() {
  base_id_ = next_id();
  spans_.clear();
  stack_.clear();
  dropping_tree_ = false;
}

void SpanRecorder::EnforceCapacity() {
  if (capacity_ == 0) return;
  while (spans_.size() > capacity_) {
    // The front root tree runs until the next root span.
    size_t end = 1;
    while (end < spans_.size() && spans_[end].parent_id != -1) ++end;
    if (end == spans_.size()) {
      // Single tree left (open or just closed): a query larger than the
      // capacity stays inspectable until the next query begins.
      return;
    }
    // A kept open tree is always the *last* tree, so any earlier tree is
    // closed; stack ids below the front tree's end would mean the front tree
    // itself is open (only possible in the single-tree case handled above).
    if (!stack_.empty() && stack_.front() >= 0 &&
        stack_.front() < base_id_ + static_cast<int64_t>(end)) {
      return;
    }
    spans_.erase(spans_.begin(), spans_.begin() + static_cast<long>(end));
    base_id_ += static_cast<int64_t>(end);
    dropped_spans_ += static_cast<int64_t>(end);
  }
}

double SpanRecorder::Layout(
    size_t index, double start,
    const std::vector<std::vector<size_t>>& children) {
  Span& span = spans_[index];
  span.start_seconds = start;
  double cursor = start;
  for (size_t child : children[index]) {
    cursor = Layout(child, cursor, children);
  }
  double extent = std::max(cursor - start, span.duration_seconds);
  span.finish_seconds = start + extent;
  return span.finish_seconds;
}

void SpanRecorder::FinalizeTimeline() {
  std::vector<std::vector<size_t>> children(spans_.size());
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans_.size(); ++i) {
    int64_t p = spans_[i].parent_id < 0 ? -1
                                        : spans_[i].parent_id - base_id_;
    if (p < 0) {
      // True roots, plus children whose parent was evicted by retention.
      roots.push_back(i);
    } else {
      children[static_cast<size_t>(p)].push_back(i);
    }
  }
  double cursor = 0;
  for (size_t r : roots) cursor = Layout(r, cursor, children);
}

}  // namespace xdb
