#include "src/obs/query_log.h"

#include <cmath>
#include <cstdio>

#include "src/common/json_writer.h"

namespace xdb {

namespace {

/// Digit runs -> '*', so "Filter(o_orderkey = 4711)" and "... = 12" share a
/// predicate shape and recurring misestimates group in the drill-down.
std::string PredicateShape(const std::string& detail) {
  std::string out;
  bool in_digits = false;
  for (char c : detail) {
    if (c >= '0' && c <= '9') {
      if (!in_digits) out += '*';
      in_digits = true;
    } else {
      out += c;
      in_digits = false;
    }
  }
  return out;
}

}  // namespace

void QueryLog::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  while (capacity_ > 0 && entries_.size() > capacity_) {
    entries_.pop_front();
  }
}

void QueryLog::set_drift_threshold(double fraction) {
  std::lock_guard<std::mutex> lock(mu_);
  drift_threshold_ = fraction;
}

double QueryLog::drift_threshold() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drift_threshold_;
}

void QueryLog::set_qerror_threshold(double q) {
  std::lock_guard<std::mutex> lock(mu_);
  qerror_threshold_ = q;
}

double QueryLog::qerror_threshold() const {
  std::lock_guard<std::mutex> lock(mu_);
  return qerror_threshold_;
}

void QueryLog::Record(QueryStats stats) {
  std::lock_guard<std::mutex> lock(mu_);
  stats.sequence = ++total_recorded_;
  if (stats.label.empty()) {
    if (!next_label_.empty()) {
      stats.label = std::move(next_label_);
      next_label_.clear();
    } else {
      stats.label = "q" + std::to_string(stats.sequence);
    }
  }
  if (!stats.ok) ++total_failed_;
  lifetime_modelled_seconds_ += stats.total_seconds();
  lifetime_useful_bytes_ += stats.useful_bytes;
  lifetime_wasted_bytes_ += stats.wasted_bytes;

  // Per-label aggregates + drift check against the history *before* this
  // run (a drifted run must not drag the mean toward itself first).
  LabelStats& ls = label_stats_[stats.label];
  const double total = stats.total_seconds();
  if (stats.ok && ls.ok_runs() >= kDriftMinSamples &&
      ls.mean_seconds() > 0) {
    const double mean = ls.mean_seconds();
    const double delta = (total - mean) / mean;
    if (std::fabs(delta) > drift_threshold_) {
      ++ls.drifts;
      drift_events_.push_back(
          DriftEvent{stats.sequence, stats.label, mean, total, delta});
      while (drift_events_.size() > kDriftRingCapacity) {
        drift_events_.pop_front();
      }
    }
  }
  // Misestimate check: the worst q-error across the run's estimate ledger
  // defines the query's accountability verdict; crossing the threshold
  // banks the offending operator (not the whole ledger) into the ring.
  const EstimateActual* worst = nullptr;
  for (const auto& ea : stats.estimates) {
    if (worst == nullptr || ea.q_error > worst->q_error) worst = &ea;
  }
  if (worst != nullptr) stats.max_q_error = worst->q_error;
  if (worst != nullptr && worst->q_error >= qerror_threshold_) {
    misestimate_events_.push_back(MisestimateEvent{
        stats.sequence, stats.label, worst->op, worst->server,
        PredicateShape(worst->detail), worst->est_rows, worst->act_rows,
        worst->q_error});
    while (misestimate_events_.size() > kMisestimateRingCapacity) {
      misestimate_events_.pop_front();
    }
  }

  ++ls.runs;
  if (!stats.ok) ++ls.failures;
  if (stats.plan_cache_hit) ++ls.cache_hits;
  if (stats.ok) {
    if (ls.ok_runs() == 1) {
      ls.min_seconds = ls.max_seconds = total;
    } else {
      if (total < ls.min_seconds) ls.min_seconds = total;
      if (total > ls.max_seconds) ls.max_seconds = total;
    }
    ls.sum_seconds += total;
  }

  entries_.push_back(std::move(stats));
  while (capacity_ > 0 && entries_.size() > capacity_) {
    entries_.pop_front();
  }
}

std::vector<QueryStats> QueryLog::SnapshotEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<QueryStats>(entries_.begin(), entries_.end());
}

std::vector<DriftEvent> QueryLog::DriftEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<DriftEvent>(drift_events_.begin(), drift_events_.end());
}

std::vector<MisestimateEvent> QueryLog::MisestimateEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<MisestimateEvent>(misestimate_events_.begin(),
                                       misestimate_events_.end());
}

std::vector<std::string> QueryLog::QErrorDrilldown(
    const std::string& label) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> lines;
  char buf[256];
  size_t matched = 0;
  for (const auto& ev : misestimate_events_) {
    if (!label.empty() && ev.label != label) continue;
    ++matched;
  }
  if (matched == 0) {
    std::snprintf(buf, sizeof(buf),
                  "no misestimates recorded%s%s%s (threshold: max q-error "
                  ">= %.1f)",
                  label.empty() ? "" : " for label '",
                  label.c_str(), label.empty() ? "" : "'",
                  qerror_threshold_);
    lines.emplace_back(buf);
    return lines;
  }
  std::snprintf(buf, sizeof(buf),
                "misestimates: %zu retained run(s)%s%s%s (threshold: max "
                "q-error >= %.1f)",
                matched, label.empty() ? "" : " for label '", label.c_str(),
                label.empty() ? "" : "'", qerror_threshold_);
  lines.emplace_back(buf);
  for (const auto& ev : misestimate_events_) {
    if (!label.empty() && ev.label != label) continue;
    std::snprintf(buf, sizeof(buf),
                  "  #%-4lld %-8s %-9s @%-10s q-err=%8.2f est=%.0f act=%.0f",
                  static_cast<long long>(ev.sequence), ev.label.c_str(),
                  ev.op.c_str(), ev.server.c_str(), ev.q_error, ev.est_rows,
                  ev.act_rows);
    lines.emplace_back(buf);
    if (!ev.predicate_shape.empty()) {
      lines.emplace_back("        shape: " + ev.predicate_shape);
    }
  }
  return lines;
}

void QueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  next_label_.clear();
  total_recorded_ = 0;
  total_failed_ = 0;
  lifetime_modelled_seconds_ = 0;
  lifetime_useful_bytes_ = 0;
  lifetime_wasted_bytes_ = 0;
  label_stats_.clear();
  drift_events_.clear();
  misestimate_events_.clear();
}

std::vector<std::string> QueryLog::Summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> lines;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "queries: %lld total (%lld failed), %.2fs modelled, "
                "%.0f B useful / %.0f B wasted transferred; retaining last "
                "%zu of %lld",
                static_cast<long long>(total_recorded_),
                static_cast<long long>(total_failed_),
                lifetime_modelled_seconds_, lifetime_useful_bytes_,
                lifetime_wasted_bytes_, entries_.size(),
                static_cast<long long>(total_recorded_));
  lines.emplace_back(buf);
  if (!drift_events_.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "drift: %zu run(s) diverged >%.0f%% from label history "
                  "(drill down with \\stats <label>)",
                  drift_events_.size(), drift_threshold_ * 100.0);
    lines.emplace_back(buf);
  }
  if (!misestimate_events_.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "misestimates: %zu run(s) with max q-error >= %.1f "
                  "(drill down with \\qerror [label])",
                  misestimate_events_.size(), qerror_threshold_);
    lines.emplace_back(buf);
  }
  for (const auto& q : entries_) {
    // Compression token only when the columnar wire actually saved bytes —
    // raw-mode lines stay byte-identical to before the columnar wire.
    const double wire = q.useful_bytes + q.wasted_bytes;
    char comp[32] = "";
    if (q.raw_bytes > wire && wire > 0) {
      std::snprintf(comp, sizeof(comp), "  [%.2fx columnar]",
                    q.raw_bytes / wire);
    }
    // Partial token only for degraded results — complete-result lines stay
    // byte-identical to before graceful degradation.
    char part[32] = "";
    if (q.partial) {
      std::snprintf(part, sizeof(part), "  [PARTIAL %.0f%%]",
                    q.completeness_fraction * 100.0);
    }
    // Misestimate token only past the threshold — well-estimated lines stay
    // byte-identical to before the accountability plane.
    char qerr[32] = "";
    if (q.max_q_error >= qerror_threshold_) {
      std::snprintf(qerr, sizeof(qerr), "  [q-err=%.1f]", q.max_q_error);
    }
    std::snprintf(buf, sizeof(buf),
                  "#%-4lld %-8s %-7s %8.2fs  useful=%.0fB wasted=%.0fB "
                  "transfers=%d retries=%d replans=%d recovery=%s%s%s%s%s%s",
                  static_cast<long long>(q.sequence), q.label.c_str(),
                  q.system.c_str(), q.total_seconds(), q.useful_bytes,
                  q.wasted_bytes, q.transfers, q.retries, q.replan_rounds,
                  q.recovery_action.c_str(), comp, part, qerr,
                  q.plan_cache_hit ? "  [cached plan]" : "",
                  q.ok ? "" : "  FAILED");
    lines.emplace_back(buf);
    for (const auto& [server, seconds] : q.per_server_seconds) {
      std::snprintf(buf, sizeof(buf), "      %-10s %8.2fs compute",
                    server.c_str(), seconds);
      lines.emplace_back(buf);
    }
    for (const auto& [op, seconds] : q.hot_operators) {
      std::snprintf(buf, sizeof(buf), "      hot: %-40s %8.3fs",
                    op.c_str(), seconds);
      lines.emplace_back(buf);
    }
  }
  return lines;
}

std::vector<std::string> QueryLog::LabelDrilldown(
    const std::string& label) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> lines;
  char buf[256];
  if (label.empty() || label_stats_.find(label) == label_stats_.end()) {
    lines.emplace_back(label.empty() ? "known labels:"
                                     : "unknown label '" + label +
                                           "'; known labels:");
    if (label_stats_.empty()) {
      lines.emplace_back("  (no queries recorded yet)");
      return lines;
    }
    for (const auto& [name, ls] : label_stats_) {
      std::snprintf(buf, sizeof(buf), "  %-8s %lld run(s)%s", name.c_str(),
                    static_cast<long long>(ls.runs),
                    ls.drifts > 0 ? "  [drifted]" : "");
      lines.emplace_back(buf);
    }
    return lines;
  }
  const LabelStats& ls = label_stats_.at(label);
  std::snprintf(buf, sizeof(buf),
                "%s: %lld run(s), %lld failed, %lld served from plan cache",
                label.c_str(), static_cast<long long>(ls.runs),
                static_cast<long long>(ls.failures),
                static_cast<long long>(ls.cache_hits));
  lines.emplace_back(buf);
  if (ls.ok_runs() > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  modelled seconds: mean=%.3f min=%.3f max=%.3f "
                  "(over %lld successful run(s))",
                  ls.mean_seconds(), ls.min_seconds, ls.max_seconds,
                  static_cast<long long>(ls.ok_runs()));
    lines.emplace_back(buf);
  }
  std::snprintf(buf, sizeof(buf),
                "  drift: %lld run(s) diverged >%.0f%% from the running "
                "mean",
                static_cast<long long>(ls.drifts), drift_threshold_ * 100.0);
  lines.emplace_back(buf);
  for (const auto& ev : drift_events_) {
    if (ev.label != label) continue;
    std::snprintf(buf, sizeof(buf),
                  "    #%-4lld expected %.3fs, got %.3fs (%+.0f%%)",
                  static_cast<long long>(ev.sequence), ev.expected_seconds,
                  ev.actual_seconds, ev.delta_fraction * 100.0);
    lines.emplace_back(buf);
  }
  for (const auto& q : entries_) {
    if (q.label != label) continue;
    std::snprintf(buf, sizeof(buf),
                  "  #%-4lld %-7s %8.3fs  useful=%.0fB wasted=%.0fB "
                  "replans=%d%s%s",
                  static_cast<long long>(q.sequence), q.system.c_str(),
                  q.total_seconds(), q.useful_bytes, q.wasted_bytes,
                  q.replan_rounds,
                  q.plan_cache_hit ? "  [cached plan]" : "",
                  q.ok ? "" : "  FAILED");
    lines.emplace_back(buf);
  }
  return lines;
}

std::string QueryLog::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Field("total_recorded", total_recorded_);
  w.Field("total_failed", total_failed_);
  w.Field("lifetime_modelled_seconds", lifetime_modelled_seconds_);
  w.Field("lifetime_useful_bytes", lifetime_useful_bytes_);
  w.Field("lifetime_wasted_bytes", lifetime_wasted_bytes_);
  w.Field("capacity", static_cast<int64_t>(capacity_));
  w.Key("drift_events");
  w.BeginArray();
  for (const auto& ev : drift_events_) {
    w.BeginObject();
    w.Field("sequence", ev.sequence);
    w.Field("label", ev.label);
    w.Field("expected_seconds", ev.expected_seconds);
    w.Field("actual_seconds", ev.actual_seconds);
    w.Field("delta_fraction", ev.delta_fraction);
    w.EndObject();
  }
  w.EndArray();
  w.Key("misestimate_events");
  w.BeginArray();
  for (const auto& ev : misestimate_events_) {
    w.BeginObject();
    w.Field("sequence", ev.sequence);
    w.Field("label", ev.label);
    w.Field("op", ev.op);
    w.Field("server", ev.server);
    w.Field("predicate_shape", ev.predicate_shape);
    w.Field("est_rows", ev.est_rows);
    w.Field("act_rows", ev.act_rows);
    w.Field("q_error", ev.q_error);
    w.EndObject();
  }
  w.EndArray();
  w.Key("queries");
  w.BeginArray();
  for (const auto& q : entries_) {
    w.BeginObject();
    w.Field("sequence", q.sequence);
    w.Field("label", q.label);
    w.Field("system", q.system);
    w.Field("sql", q.sql);
    w.Field("ok", q.ok);
    if (!q.error.empty()) w.Field("error", q.error);
    w.Field("plan_cache_hit", q.plan_cache_hit);
    w.Key("phases");
    w.BeginObject();
    w.Field("prep", q.prep_seconds);
    w.Field("lopt", q.lopt_seconds);
    w.Field("ann", q.ann_seconds);
    w.Field("exec", q.exec_seconds);
    w.Field("total", q.total_seconds());
    w.EndObject();
    w.Field("useful_bytes", q.useful_bytes);
    w.Field("wasted_bytes", q.wasted_bytes);
    w.Field("raw_bytes", q.raw_bytes);
    w.Field("transfer_rows", q.transfer_rows);
    w.Field("transfers", q.transfers);
    w.Field("retries", q.retries);
    w.Field("replan_rounds", q.replan_rounds);
    w.Field("recovery_action", q.recovery_action);
    w.Field("partial", q.partial);
    w.Field("completeness_fraction", q.completeness_fraction);
    w.Field("lost_fragments", q.lost_fragments);
    w.Field("max_q_error", q.max_q_error);
    w.Key("per_server_seconds");
    w.BeginObject();
    for (const auto& [server, seconds] : q.per_server_seconds) {
      w.Field(server, seconds);
    }
    w.EndObject();
    w.Key("hot_operators");
    w.BeginArray();
    for (const auto& [op, seconds] : q.hot_operators) {
      w.BeginObject();
      w.Field("operator", op);
      w.Field("modelled_seconds", seconds);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace xdb
