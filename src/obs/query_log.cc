#include "src/obs/query_log.h"

#include <cstdio>

#include "src/common/json_writer.h"

namespace xdb {

void QueryLog::set_capacity(size_t capacity) {
  capacity_ = capacity;
  while (capacity_ > 0 && entries_.size() > capacity_) {
    entries_.pop_front();
  }
}

void QueryLog::Record(QueryStats stats) {
  stats.sequence = ++total_recorded_;
  if (stats.label.empty()) {
    if (!next_label_.empty()) {
      stats.label = std::move(next_label_);
      next_label_.clear();
    } else {
      stats.label = "q" + std::to_string(stats.sequence);
    }
  }
  if (!stats.ok) ++total_failed_;
  lifetime_modelled_seconds_ += stats.total_seconds();
  lifetime_useful_bytes_ += stats.useful_bytes;
  lifetime_wasted_bytes_ += stats.wasted_bytes;
  entries_.push_back(std::move(stats));
  while (capacity_ > 0 && entries_.size() > capacity_) {
    entries_.pop_front();
  }
}

void QueryLog::Clear() {
  entries_.clear();
  next_label_.clear();
  total_recorded_ = 0;
  total_failed_ = 0;
  lifetime_modelled_seconds_ = 0;
  lifetime_useful_bytes_ = 0;
  lifetime_wasted_bytes_ = 0;
}

std::vector<std::string> QueryLog::Summary() const {
  std::vector<std::string> lines;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "queries: %lld total (%lld failed), %.2fs modelled, "
                "%.0f B useful / %.0f B wasted transferred; retaining last "
                "%zu of %lld",
                static_cast<long long>(total_recorded_),
                static_cast<long long>(total_failed_),
                lifetime_modelled_seconds_, lifetime_useful_bytes_,
                lifetime_wasted_bytes_, entries_.size(),
                static_cast<long long>(total_recorded_));
  lines.emplace_back(buf);
  for (const auto& q : entries_) {
    std::snprintf(buf, sizeof(buf),
                  "#%-4lld %-8s %-7s %8.2fs  useful=%.0fB wasted=%.0fB "
                  "transfers=%d retries=%d replans=%d recovery=%s%s",
                  static_cast<long long>(q.sequence), q.label.c_str(),
                  q.system.c_str(), q.total_seconds(), q.useful_bytes,
                  q.wasted_bytes, q.transfers, q.retries, q.replan_rounds,
                  q.recovery_action.c_str(), q.ok ? "" : "  FAILED");
    lines.emplace_back(buf);
    for (const auto& [server, seconds] : q.per_server_seconds) {
      std::snprintf(buf, sizeof(buf), "      %-10s %8.2fs compute",
                    server.c_str(), seconds);
      lines.emplace_back(buf);
    }
    for (const auto& [op, seconds] : q.hot_operators) {
      std::snprintf(buf, sizeof(buf), "      hot: %-40s %8.3fs",
                    op.c_str(), seconds);
      lines.emplace_back(buf);
    }
  }
  return lines;
}

std::string QueryLog::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Field("total_recorded", total_recorded_);
  w.Field("total_failed", total_failed_);
  w.Field("lifetime_modelled_seconds", lifetime_modelled_seconds_);
  w.Field("lifetime_useful_bytes", lifetime_useful_bytes_);
  w.Field("lifetime_wasted_bytes", lifetime_wasted_bytes_);
  w.Field("capacity", static_cast<int64_t>(capacity_));
  w.Key("queries");
  w.BeginArray();
  for (const auto& q : entries_) {
    w.BeginObject();
    w.Field("sequence", q.sequence);
    w.Field("label", q.label);
    w.Field("system", q.system);
    w.Field("sql", q.sql);
    w.Field("ok", q.ok);
    if (!q.error.empty()) w.Field("error", q.error);
    w.Key("phases");
    w.BeginObject();
    w.Field("prep", q.prep_seconds);
    w.Field("lopt", q.lopt_seconds);
    w.Field("ann", q.ann_seconds);
    w.Field("exec", q.exec_seconds);
    w.Field("total", q.total_seconds());
    w.EndObject();
    w.Field("useful_bytes", q.useful_bytes);
    w.Field("wasted_bytes", q.wasted_bytes);
    w.Field("transfer_rows", q.transfer_rows);
    w.Field("transfers", q.transfers);
    w.Field("retries", q.retries);
    w.Field("replan_rounds", q.replan_rounds);
    w.Field("recovery_action", q.recovery_action);
    w.Key("per_server_seconds");
    w.BeginObject();
    for (const auto& [server, seconds] : q.per_server_seconds) {
      w.Field(server, seconds);
    }
    w.EndObject();
    w.Key("hot_operators");
    w.BeginArray();
    for (const auto& [op, seconds] : q.hot_operators) {
      w.BeginObject();
      w.Field("operator", op);
      w.Field("modelled_seconds", seconds);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace xdb
