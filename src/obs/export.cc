#include "src/obs/export.h"

#include "src/common/json_writer.h"
#include "src/xdb/xdb.h"

namespace xdb {

std::string SpansToChromeTrace(const std::vector<Span>& spans) {
  JsonWriter w;
  w.BeginObject();
  w.Field("displayTimeUnit", "ms");
  w.Key("traceEvents");
  w.BeginArray();
  for (const Span& s : spans) {
    w.BeginObject();
    w.Field("name", s.name);
    w.Field("ph", "X");
    // Modelled seconds -> trace microseconds.
    w.Field("ts", s.start_seconds * 1e6);
    w.Field("dur", (s.finish_seconds - s.start_seconds) * 1e6);
    w.Field("pid", 1);
    w.Field("tid", 1);
    w.Field("cat", "xdb");
    w.Key("args");
    w.BeginObject();
    w.Field("span_id", s.id);
    w.Field("parent_id", s.parent_id);
    if (s.record_id >= 0) w.Field("record_id", s.record_id);
    for (const auto& [k, v] : s.tags) w.Field(k, v);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

namespace {

void WriteComputeTrace(JsonWriter* w, const ComputeTrace& t) {
  w->BeginObject();
  w->Field("scan_rows", t.scan_rows);
  w->Field("foreign_rows", t.foreign_rows);
  w->Field("filter_input_rows", t.filter_input_rows);
  w->Field("project_rows", t.project_rows);
  w->Field("join_build_rows", t.join_build_rows);
  w->Field("join_probe_rows", t.join_probe_rows);
  w->Field("join_output_rows", t.join_output_rows);
  w->Field("agg_input_rows", t.agg_input_rows);
  w->Field("agg_output_rows", t.agg_output_rows);
  w->Field("sort_rows", t.sort_rows);
  w->Field("materialized_rows", t.materialized_rows);
  w->Field("output_rows", t.output_rows);
  w->EndObject();
}

void WriteRunTrace(JsonWriter* w, const RunTrace& trace) {
  w->BeginObject();
  w->Field("root_server", trace.root_server);
  w->Key("root_compute");
  WriteComputeTrace(w, trace.root_compute);
  w->Key("transfers");
  w->BeginArray();
  for (const auto& t : trace.transfers) {
    w->BeginObject();
    w->Field("id", t.id);
    w->Field("parent_id", t.parent_id);
    w->Field("src", t.src);
    w->Field("dst", t.dst);
    w->Field("relation", t.relation);
    w->Field("rows", t.rows);
    w->Field("bytes", t.bytes);
    w->Field("raw_bytes", t.raw_bytes);
    w->Field("messages", t.messages);
    w->Field("encoded", t.encoded);
    w->Field("materialized", t.materialized);
    w->Field("failed", t.failed);
    w->Field("est_rows", t.est_rows);
    w->Field("est_bytes", t.est_bytes);
    w->Key("producer_compute");
    WriteComputeTrace(w, t.producer_compute);
    w->EndObject();
  }
  w->EndArray();
  w->Key("per_server");
  w->BeginObject();
  for (const auto& [server, compute] : trace.per_server) {
    w->Key(server);
    WriteComputeTrace(w, compute);
  }
  w->EndObject();
  w->Key("retries");
  w->BeginArray();
  for (const auto& r : trace.retries) {
    w->BeginObject();
    w->Field("server", r.server);
    w->Field("op", r.op);
    w->Field("attempts", r.attempts);
    w->Field("backoff_seconds", r.backoff_seconds);
    w->Field("succeeded", r.succeeded);
    if (!r.error.empty()) w->Field("error", r.error);
    w->EndObject();
  }
  w->EndArray();
  w->Field("total_backoff_seconds", trace.total_backoff_seconds);
  w->Field("injected_delay_seconds", trace.injected_delay_seconds);
  w->Field("wasted_attempt_seconds", trace.wasted_attempt_seconds);
  w->Field("replan_rounds", trace.replan_rounds);
  w->Key("excluded_servers");
  w->BeginArray();
  for (const auto& s : trace.excluded_servers) w->String(s);
  w->EndArray();
  w->Key("lost_fragments");
  w->BeginArray();
  for (const auto& l : trace.lost_fragments) {
    w->BeginObject();
    w->Field("relation", l.relation);
    w->Field("server", l.server);
    w->Field("consumer", l.consumer);
    w->Field("reason", l.reason);
    w->Field("est_rows", l.est_rows);
    w->EndObject();
  }
  w->EndArray();
  w->Field("recovery_action", trace.recovery_action);
  w->Field("useful_bytes", trace.UsefulTransferredBytes());
  w->Field("wasted_bytes", trace.WastedTransferredBytes());
  w->Field("total_bytes", trace.TotalTransferredBytes());
  w->Field("raw_bytes", trace.TotalRawTransferredBytes());
  w->Field("total_rows", trace.TotalTransferredRows());
  w->EndObject();
}

}  // namespace

std::string ComputeTraceToJson(const ComputeTrace& trace) {
  JsonWriter w;
  WriteComputeTrace(&w, trace);
  return w.str();
}

std::string RunTraceToJson(const RunTrace& trace) {
  JsonWriter w;
  WriteRunTrace(&w, trace);
  return w.str();
}

std::string XdbReportToJson(const XdbReport& report) {
  JsonWriter w;
  w.BeginObject();
  w.Key("phases");
  w.BeginObject();
  w.Field("prep", report.phases.prep);
  w.Field("lopt", report.phases.lopt);
  w.Field("ann", report.phases.ann);
  w.Field("exec", report.phases.exec);
  w.Field("total", report.phases.total());
  w.EndObject();
  w.Key("exec_timing");
  w.BeginObject();
  w.Field("total", report.exec_timing.total);
  w.Field("compute_only", report.exec_timing.compute_only);
  w.Field("transfer_share", report.exec_timing.transfer_share);
  w.EndObject();
  w.Field("wall_seconds", report.wall_seconds);
  w.Field("metadata_roundtrips", report.metadata_roundtrips);
  w.Field("consultations", report.consultations);
  w.Field("ddl_statements", report.ddl_statements);
  w.Field("result_rows",
          report.result ? static_cast<int64_t>(report.result->num_rows())
                        : int64_t{0});
  w.Key("completeness");
  w.BeginObject();
  w.Field("complete", report.completeness.complete);
  w.Field("completeness_fraction", report.completeness.completeness_fraction);
  w.Field("lost", static_cast<int64_t>(report.completeness.lost.size()));
  w.EndObject();
  w.Key("estimates");
  w.BeginObject();
  w.Field("max_q_error", report.trace.MaxQError());
  w.Key("operators");
  w.BeginArray();
  for (const auto& ea : report.trace.estimates) {
    w.BeginObject();
    w.Field("op", ea.op);
    w.Field("server", ea.server);
    w.Field("detail", ea.detail);
    w.Field("est_input_rows", ea.est_input_rows);
    w.Field("est_rows", ea.est_rows);
    w.Field("act_rows", ea.act_rows);
    w.Field("est_seconds", ea.est_seconds);
    w.Field("act_seconds", ea.act_seconds);
    w.Field("est_bytes", ea.est_bytes);
    w.Field("act_bytes", ea.act_bytes);
    w.Field("q_error", ea.q_error);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.Key("trace");
  WriteRunTrace(&w, report.trace);
  w.EndObject();
  return w.str();
}

}  // namespace xdb
