#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/dbms/run_trace.h"

namespace xdb {

/// \brief One compact history record per top-level query: where its modelled
/// time and bytes went. Banked by XdbSystem::Query / MediatorSystem::Query
/// when a QueryLog is attached to the federation; sized so a bounded ring of
/// them summarizes a long session (the paper's §VI per-query statistics,
/// Trino-style query history).
struct QueryStats {
  int64_t sequence = 0;   // assigned by the log, monotonically increasing
  std::string label;      // "Q5" when hinted, else "q<sequence>"
  std::string system;     // "xdb" | "garlic" | "presto" | "sclera"
  std::string sql;
  bool ok = true;
  std::string error;  // final status message when !ok
  bool plan_cache_hit = false;  // plan served from the delegation-plan cache

  // Modelled phase seconds (the paper's Figure 15 buckets).
  double prep_seconds = 0;
  double lopt_seconds = 0;
  double ann_seconds = 0;
  double exec_seconds = 0;

  // Transfer accounting (local-scale bytes; multiply by scale_up for paper
  // scale, like RunTrace).
  double useful_bytes = 0;
  double wasted_bytes = 0;
  /// Uncompressed row-format bytes of the same transfers — exceeds
  /// useful+wasted only when the columnar wire shipped compressed chunks.
  double raw_bytes = 0;
  double transfer_rows = 0;
  int transfers = 0;

  // Recovery trail.
  int retries = 0;
  int replan_rounds = 0;
  std::string recovery_action = "none";

  // Graceful degradation (allow_partial queries only; defaults mean a
  // complete result).
  bool partial = false;                // result is missing >= 1 fragment
  double completeness_fraction = 1.0;  // delivered / (delivered + lost)
  int lost_fragments = 0;

  /// Modelled compute seconds per component DBMS (at the system's
  /// scale-up) — the per-node breakdown a process-wide total cannot give.
  std::map<std::string, double> per_server_seconds;

  /// Top operators by modelled seconds ("server: OpLabel" -> seconds),
  /// filled when OperatorProfilers were attached (EXPLAIN ANALYZE, benches);
  /// empty otherwise.
  std::vector<std::pair<std::string, double>> hot_operators;

  /// Estimate-vs-actual ledger of the winning round (transfers always;
  /// operators when a profiler was attached). Retained so
  /// XdbSystem::ExportCalibrationLog can pair features with outcomes.
  std::vector<EstimateActual> estimates;

  /// The winning round's transfer records, retained verbatim so the
  /// `xdb_stat.transfers` system table can aggregate per-link raw/encoded
  /// bytes and est-vs-act over the history ring. Bounded by the ring
  /// capacity; not part of the ToJson artifact.
  std::vector<TransferRecord> transfer_log;

  /// Max operator/transfer q-error of this query (filled by Record from
  /// `estimates`; 0 = nothing stamped was observed).
  double max_q_error = 0;

  double total_seconds() const {
    return prep_seconds + lopt_seconds + ann_seconds + exec_seconds;
  }
};

/// \brief A recorded query whose modelled runtime diverged from its label's
/// running history by more than the drift threshold — the serving-layer
/// signal that a placement, statistic, or plan regressed for a recurring
/// query shape.
struct DriftEvent {
  int64_t sequence = 0;
  std::string label;
  double expected_seconds = 0;  // label's running mean before this query
  double actual_seconds = 0;
  double delta_fraction = 0;  // (actual - expected) / expected, signed
};

/// \brief A recorded query whose worst operator (or transfer) q-error
/// crossed the misestimate threshold — the accountability-plane signal that
/// the planner's cardinality model is wrong for this query shape. The
/// offending operator and its digit-normalized predicate shape are retained
/// so recurring shapes group together in the `\qerror` drill-down.
struct MisestimateEvent {
  int64_t sequence = 0;
  std::string label;
  std::string op;      // offending operator kind ("Join", "transfer", ...)
  std::string server;  // executing DBMS (or src->dst link for transfers)
  std::string predicate_shape;  // operator detail with digit runs -> '*'
  double est_rows = 0;
  double act_rows = 0;
  double q_error = 1.0;
};

/// \brief Bounded ring of QueryStats — the query-history side of the
/// observability layer. Attached to a Federation like the span recorder
/// (nullptr detaches; recording is observational only). Holds at most
/// `capacity` records: older queries are evicted, lifetime totals keep
/// counting, so a 10,000-query session holds O(capacity) memory.
///
/// Thread-safe: concurrent sessions Record() in parallel; readers get
/// snapshots. entries() still returns a reference and remains a
/// single-threaded inspection API — use SnapshotEntries() under concurrency.
///
/// Per-label drift detection: the log keeps running aggregates per label
/// (bounded by the label vocabulary, which is bounded by construction —
/// DESIGN.md §8). Once a label has `kDriftMinSamples` successful runs, any
/// further run whose modelled time diverges from the label's running mean
/// by more than `drift_threshold` (default 25%) is banked as a DriftEvent,
/// surfaced in Summary() and the `\stats <label>` drill-down.
class QueryLog {
 public:
  explicit QueryLog(size_t capacity = 256) : capacity_(capacity) {}

  void set_capacity(size_t capacity);
  size_t capacity() const { return capacity_; }

  /// Banks one record (assigns `sequence`; fills `label` from the pending
  /// hint or "q<sequence>"). Evicts the oldest record when over capacity.
  void Record(QueryStats stats);

  /// Labels the *next* recorded query (e.g. "Q5" from a bench driver); the
  /// hint is consumed by the next Record. Labels feed the `{query=...}`
  /// metric dimension, so they should come from a bounded vocabulary
  /// (DESIGN.md §8 cardinality rules). Racy under concurrent serving by
  /// nature (two sessions' hints interleave) — sessions should label via
  /// QueryContext::label instead.
  void set_next_label(std::string label) {
    std::lock_guard<std::mutex> lock(mu_);
    next_label_ = std::move(label);
  }
  std::string next_label() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_label_;
  }

  const std::deque<QueryStats>& entries() const { return entries_; }
  /// Thread-safe copy of the retained history.
  std::vector<QueryStats> SnapshotEntries() const;
  /// Lifetime count, including evicted records.
  int64_t total_recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_recorded_;
  }
  int64_t total_failed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_failed_;
  }

  // --- drift detection ---

  /// Divergence-from-mean fraction beyond which a run counts as drifted
  /// (0.25 = 25%). Applies to queries recorded after the change.
  void set_drift_threshold(double fraction);
  double drift_threshold() const;

  /// Drifted runs observed so far (bounded ring of the most recent 64).
  std::vector<DriftEvent> DriftEvents() const;

  // --- misestimate tracking (estimation accountability) ---

  /// Max-q-error threshold at or above which a recorded query is banked as
  /// a MisestimateEvent (default 4.0). Applies to queries recorded after
  /// the change.
  void set_qerror_threshold(double q);
  double qerror_threshold() const;

  /// Misestimated runs observed so far (bounded ring of the most recent 64).
  std::vector<MisestimateEvent> MisestimateEvents() const;

  /// Shell-facing `\qerror [label]` drill-down: the retained misestimate
  /// ring (optionally filtered to one label), worst operator first per
  /// entry, with estimate, actual, q-error, and predicate shape.
  std::vector<std::string> QErrorDrilldown(const std::string& label) const;

  void Clear();

  /// Shell-facing summary: lifetime totals, then one line per retained
  /// query (label, system, modelled seconds, bytes, recovery).
  std::vector<std::string> Summary() const;

  /// Shell-facing per-label drill-down: the label's running aggregates
  /// (runs, failures, cache hits, mean/min/max modelled seconds), its
  /// retained runs, and any drift events. Empty label -> list of known
  /// labels.
  std::vector<std::string> LabelDrilldown(const std::string& label) const;

  /// JSON dump of the retained history (machine-readable `\stats` / the
  /// bench --querylog artifact).
  std::string ToJson() const;

 private:
  /// Running aggregates for one query label. Mean/min/max track successful
  /// runs only (a failed run's time measures the fault schedule, not the
  /// plan).
  struct LabelStats {
    int64_t runs = 0;
    int64_t failures = 0;
    int64_t cache_hits = 0;
    int64_t drifts = 0;
    double sum_seconds = 0;
    double min_seconds = 0;
    double max_seconds = 0;
    int64_t ok_runs() const { return runs - failures; }
    double mean_seconds() const {
      return ok_runs() > 0 ? sum_seconds / static_cast<double>(ok_runs()) : 0;
    }
  };

  static constexpr int64_t kDriftMinSamples = 3;
  static constexpr size_t kDriftRingCapacity = 64;
  static constexpr size_t kMisestimateRingCapacity = 64;

  mutable std::mutex mu_;
  size_t capacity_;
  std::deque<QueryStats> entries_;
  std::string next_label_;
  int64_t total_recorded_ = 0;
  int64_t total_failed_ = 0;
  double lifetime_modelled_seconds_ = 0;
  double lifetime_useful_bytes_ = 0;
  double lifetime_wasted_bytes_ = 0;
  double drift_threshold_ = 0.25;
  double qerror_threshold_ = 4.0;
  std::map<std::string, LabelStats> label_stats_;
  std::deque<DriftEvent> drift_events_;
  std::deque<MisestimateEvent> misestimate_events_;
};

}  // namespace xdb
