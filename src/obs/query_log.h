#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace xdb {

/// \brief One compact history record per top-level query: where its modelled
/// time and bytes went. Banked by XdbSystem::Query / MediatorSystem::Query
/// when a QueryLog is attached to the federation; sized so a bounded ring of
/// them summarizes a long session (the paper's §VI per-query statistics,
/// Trino-style query history).
struct QueryStats {
  int64_t sequence = 0;   // assigned by the log, monotonically increasing
  std::string label;      // "Q5" when hinted, else "q<sequence>"
  std::string system;     // "xdb" | "garlic" | "presto" | "sclera"
  std::string sql;
  bool ok = true;
  std::string error;  // final status message when !ok

  // Modelled phase seconds (the paper's Figure 15 buckets).
  double prep_seconds = 0;
  double lopt_seconds = 0;
  double ann_seconds = 0;
  double exec_seconds = 0;

  // Transfer accounting (local-scale bytes; multiply by scale_up for paper
  // scale, like RunTrace).
  double useful_bytes = 0;
  double wasted_bytes = 0;
  double transfer_rows = 0;
  int transfers = 0;

  // Recovery trail.
  int retries = 0;
  int replan_rounds = 0;
  std::string recovery_action = "none";

  /// Modelled compute seconds per component DBMS (at the system's
  /// scale-up) — the per-node breakdown a process-wide total cannot give.
  std::map<std::string, double> per_server_seconds;

  /// Top operators by modelled seconds ("server: OpLabel" -> seconds),
  /// filled when OperatorProfilers were attached (EXPLAIN ANALYZE, benches);
  /// empty otherwise.
  std::vector<std::pair<std::string, double>> hot_operators;

  double total_seconds() const {
    return prep_seconds + lopt_seconds + ann_seconds + exec_seconds;
  }
};

/// \brief Bounded ring of QueryStats — the query-history side of the
/// observability layer. Attached to a Federation like the span recorder
/// (nullptr detaches; recording is observational only). Holds at most
/// `capacity` records: older queries are evicted, lifetime totals keep
/// counting, so a 10,000-query session holds O(capacity) memory.
class QueryLog {
 public:
  explicit QueryLog(size_t capacity = 256) : capacity_(capacity) {}

  void set_capacity(size_t capacity);
  size_t capacity() const { return capacity_; }

  /// Banks one record (assigns `sequence`; fills `label` from the pending
  /// hint or "q<sequence>"). Evicts the oldest record when over capacity.
  void Record(QueryStats stats);

  /// Labels the *next* recorded query (e.g. "Q5" from a bench driver); the
  /// hint is consumed by the next Record. Labels feed the `{query=...}`
  /// metric dimension, so they should come from a bounded vocabulary
  /// (DESIGN.md §8 cardinality rules).
  void set_next_label(std::string label) { next_label_ = std::move(label); }
  const std::string& next_label() const { return next_label_; }

  const std::deque<QueryStats>& entries() const { return entries_; }
  /// Lifetime count, including evicted records.
  int64_t total_recorded() const { return total_recorded_; }
  int64_t total_failed() const { return total_failed_; }

  void Clear();

  /// Shell-facing summary: lifetime totals, then one line per retained
  /// query (label, system, modelled seconds, bytes, recovery).
  std::vector<std::string> Summary() const;

  /// JSON dump of the retained history (machine-readable `\stats` / the
  /// bench --querylog artifact).
  std::string ToJson() const;

 private:
  size_t capacity_;
  std::deque<QueryStats> entries_;
  std::string next_label_;
  int64_t total_recorded_ = 0;
  int64_t total_failed_ = 0;
  double lifetime_modelled_seconds_ = 0;
  double lifetime_useful_bytes_ = 0;
  double lifetime_wasted_bytes_ = 0;
};

}  // namespace xdb
