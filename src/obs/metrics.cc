#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace xdb {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_storage_ =
      std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  counts_ = counts_storage_.get();
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double v) {
  size_t i =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), v) -
                          bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (!e.counter) {
    e.counter = std::make_unique<Counter>();
    if (!help.empty()) e.help = help;
  }
  return e.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (!e.gauge) {
    e.gauge = std::make_unique<Gauge>();
    if (!help.empty()) e.help = help;
  }
  return e.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
    if (!help.empty()) e.help = help;
  }
  return e.histogram.get();
}

namespace {
std::string FormatNumber(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}
}  // namespace

std::string MetricsRegistry::TextExposition() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, e] : entries_) {
    if (!e.help.empty()) out += "# HELP " + name + " " + e.help + "\n";
    if (e.counter) {
      out += "# TYPE " + name + " counter\n";
      out += name + " " + FormatNumber(e.counter->Value()) + "\n";
    }
    if (e.gauge) {
      out += "# TYPE " + name + " gauge\n";
      out += name + " " + FormatNumber(e.gauge->Value()) + "\n";
    }
    if (e.histogram) {
      const Histogram& h = *e.histogram;
      out += "# TYPE " + name + " histogram\n";
      int64_t cumulative = 0;
      for (size_t i = 0; i < h.upper_bounds().size(); ++i) {
        cumulative += h.BucketCount(i);
        out += name + "_bucket{le=\"" + FormatNumber(h.upper_bounds()[i]) +
               "\"} " + std::to_string(cumulative) + "\n";
      }
      cumulative += h.BucketCount(h.upper_bounds().size());
      out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
             "\n";
      out += name + "_sum " + FormatNumber(h.Sum()) + "\n";
      out += name + "_count " + std::to_string(h.Count()) + "\n";
    }
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    if (e.counter) e.counter->Reset();
    if (e.gauge) e.gauge->Reset();
    if (e.histogram) e.histogram->Reset();
  }
}

}  // namespace xdb
