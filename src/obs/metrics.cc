#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace xdb {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_storage_ =
      std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  counts_ = counts_storage_.get();
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double v) {
  size_t i =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), v) -
                          bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricLabels MetricsRegistry::Canonicalize(MetricLabels labels) {
  std::stable_sort(
      labels.begin(), labels.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  // Duplicate keys: the later entry wins (matches map-insertion intuition).
  MetricLabels out;
  for (auto& kv : labels) {
    if (!out.empty() && out.back().first == kv.first) {
      out.back().second = std::move(kv.second);
    } else {
      out.push_back(std::move(kv));
    }
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  return GetCounter(name, MetricLabels{}, help);
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels,
                                     const std::string& help) {
  MetricLabels key = Canonicalize(labels);
  std::lock_guard<std::mutex> lock(mu_);
  Family& f = entries_[name];
  if (f.help.empty() && !help.empty()) f.help = help;
  auto& cell = f.counters[std::move(key)];
  if (!cell) cell = std::make_unique<Counter>();
  return cell.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  return GetGauge(name, MetricLabels{}, help);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const MetricLabels& labels,
                                 const std::string& help) {
  MetricLabels key = Canonicalize(labels);
  std::lock_guard<std::mutex> lock(mu_);
  Family& f = entries_[name];
  if (f.help.empty() && !help.empty()) f.help = help;
  auto& cell = f.gauges[std::move(key)];
  if (!cell) cell = std::make_unique<Gauge>();
  return cell.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds,
                                         const std::string& help) {
  return GetHistogram(name, MetricLabels{}, std::move(upper_bounds), help);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const MetricLabels& labels,
                                         std::vector<double> upper_bounds,
                                         const std::string& help) {
  MetricLabels key = Canonicalize(labels);
  std::lock_guard<std::mutex> lock(mu_);
  Family& f = entries_[name];
  if (f.help.empty() && !help.empty()) f.help = help;
  // The family's first registration fixes the bucket layout; later cells
  // (any label set) share it so `le` buckets line up across the family.
  if (f.histograms.empty() && f.bounds.empty()) {
    f.bounds = std::move(upper_bounds);
    std::sort(f.bounds.begin(), f.bounds.end());
  }
  auto& cell = f.histograms[std::move(key)];
  if (!cell) cell = std::make_unique<Histogram>(f.bounds);
  return cell.get();
}

namespace {

std::string FormatNumber(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Renders `{k1="v1",k2="v2"}`; empty label sets render as nothing. `extra`
/// appends one pre-rendered pair (the histogram `le`) after the sorted keys.
std::string RenderLabels(const MetricLabels& labels,
                         const std::string& extra = std::string()) {
  if (labels.empty() && extra.empty()) return std::string();
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + MetricsRegistry::EscapeLabelValue(v) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

}  // namespace

std::string MetricsRegistry::EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string MetricsRegistry::EscapeHelp(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string MetricsRegistry::ExposeText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, f] : entries_) {
    if (!f.help.empty()) {
      out += "# HELP " + name + " " + EscapeHelp(f.help) + "\n";
    }
    if (!f.counters.empty()) {
      out += "# TYPE " + name + " counter\n";
      for (const auto& [labels, c] : f.counters) {
        out += name + RenderLabels(labels) + " " + FormatNumber(c->Value()) +
               "\n";
      }
    }
    if (!f.gauges.empty()) {
      out += "# TYPE " + name + " gauge\n";
      for (const auto& [labels, g] : f.gauges) {
        out += name + RenderLabels(labels) + " " + FormatNumber(g->Value()) +
               "\n";
      }
    }
    if (!f.histograms.empty()) {
      out += "# TYPE " + name + " histogram\n";
      for (const auto& [labels, cell] : f.histograms) {
        const Histogram& h = *cell;
        int64_t cumulative = 0;
        for (size_t i = 0; i < h.upper_bounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          out += name + "_bucket" +
                 RenderLabels(labels, "le=\"" +
                                          FormatNumber(h.upper_bounds()[i]) +
                                          "\"") +
                 " " + std::to_string(cumulative) + "\n";
        }
        cumulative += h.BucketCount(h.upper_bounds().size());
        out += name + "_bucket" + RenderLabels(labels, "le=\"+Inf\"") + " " +
               std::to_string(cumulative) + "\n";
        out += name + "_sum" + RenderLabels(labels) + " " +
               FormatNumber(h.Sum()) + "\n";
        out += name + "_count" + RenderLabels(labels) + " " +
               std::to_string(h.Count()) + "\n";
      }
    }
  }
  return out;
}

std::vector<MetricSample> MetricsRegistry::CollectSamples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  for (const auto& [name, f] : entries_) {
    for (const auto& [labels, c] : f.counters) {
      out.push_back({name, RenderLabels(labels), "counter", c->Value()});
    }
    for (const auto& [labels, g] : f.gauges) {
      out.push_back({name, RenderLabels(labels), "gauge", g->Value()});
    }
    for (const auto& [labels, cell] : f.histograms) {
      const Histogram& h = *cell;
      int64_t cumulative = 0;
      for (size_t i = 0; i < h.upper_bounds().size(); ++i) {
        cumulative += h.BucketCount(i);
        out.push_back({name,
                       RenderLabels(labels,
                                    "le=\"" +
                                        FormatNumber(h.upper_bounds()[i]) +
                                        "\""),
                       "bucket", static_cast<double>(cumulative)});
      }
      cumulative += h.BucketCount(h.upper_bounds().size());
      out.push_back({name, RenderLabels(labels, "le=\"+Inf\""), "bucket",
                     static_cast<double>(cumulative)});
      out.push_back({name, RenderLabels(labels), "sum", h.Sum()});
      out.push_back({name, RenderLabels(labels), "count",
                     static_cast<double>(h.Count())});
    }
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, f] : entries_) {
    for (auto& [labels, c] : f.counters) c->Reset();
    for (auto& [labels, g] : f.gauges) g->Reset();
    for (auto& [labels, h] : f.histograms) h->Reset();
  }
}

}  // namespace xdb
