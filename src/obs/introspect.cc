#include "src/obs/introspect.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "src/dbms/federation.h"
#include "src/dbms/health.h"
#include "src/dbms/server.h"
#include "src/obs/metrics.h"
#include "src/obs/query_log.h"
#include "src/xdb/plan_cache.h"
#include "src/xdb/session.h"
#include "src/xdb/xdb.h"

namespace xdb {

namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Common base: fixed name + schema, rows supplied by the subclass.
class ProviderBase : public SystemTableProvider {
 public:
  ProviderBase(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

 protected:
  TablePtr MakeTable() const { return std::make_shared<Table>(schema_); }

  const std::string name_;
  const Schema schema_;
};

/// `xdb_stat.metrics`: one row per metric cell, in ExposeText() order.
/// Before snapshotting, refreshes the two always-present cells —
/// `xdb_build_info{threads=,version=}` (gauge, value 1) and
/// `xdb_uptime_queries_total` (queries started on this XdbSystem) — so a
/// cold system still has rows. When no registry is attached to the
/// federation, exactly those two rows are synthesized directly.
class MetricsProvider : public ProviderBase {
 public:
  MetricsProvider(Federation* fed, XdbSystem* xdb)
      : ProviderBase("metrics", Schema({{"family", TypeId::kString},
                                        {"labels", TypeId::kString},
                                        {"kind", TypeId::kString},
                                        {"value", TypeId::kDouble}})),
        fed_(fed),
        xdb_(xdb) {}

  TablePtr Snapshot() const override {
    const std::string threads = std::to_string(xdb_->options().exec_threads);
    const double started = static_cast<double>(xdb_->queries_started());
    std::vector<MetricSample> samples;
    if (MetricsRegistry* reg = fed_->metrics()) {
      reg->GetGauge("xdb_build_info",
                    {{"threads", threads}, {"version", kXdbVersion}},
                    "Constant 1; build/configuration in the labels")
          ->Set(1);
      Counter* up = reg->GetCounter("xdb_uptime_queries_total",
                                    "Queries started on this XdbSystem");
      up->Reset();
      up->Increment(started);
      samples = reg->CollectSamples();
    } else {
      const std::string info_labels =
          "{threads=\"" + threads + "\",version=\"" + kXdbVersion + "\"}";
      samples.push_back({"xdb_build_info", info_labels, "gauge", 1});
      samples.push_back({"xdb_uptime_queries_total", "", "counter", started});
    }
    TablePtr t = MakeTable();
    t->Reserve(samples.size());
    for (auto& s : samples) {
      t->AppendRow({Value::String(std::move(s.family)),
                    Value::String(std::move(s.labels)),
                    Value::String(std::move(s.kind)), Value::Double(s.value)});
    }
    return t;
  }

 private:
  Federation* fed_;
  XdbSystem* xdb_;
};

/// `xdb_stat.queries`: the QueryLog's retained history, by sequence.
class QueriesProvider : public ProviderBase {
 public:
  explicit QueriesProvider(Federation* fed)
      : ProviderBase("queries",
                     Schema({{"sequence", TypeId::kInt64},
                             {"label", TypeId::kString},
                             {"system", TypeId::kString},
                             {"status", TypeId::kString},
                             {"plan_cache_hit", TypeId::kBool},
                             {"modelled_seconds", TypeId::kDouble},
                             {"useful_bytes", TypeId::kDouble},
                             {"wasted_bytes", TypeId::kDouble},
                             {"retries", TypeId::kInt64},
                             {"replan_rounds", TypeId::kInt64},
                             {"completeness", TypeId::kDouble},
                             {"max_q_error", TypeId::kDouble}})),
        fed_(fed) {}

  TablePtr Snapshot() const override {
    TablePtr t = MakeTable();
    QueryLog* log = fed_->query_log();
    if (!log) return t;
    std::vector<QueryStats> entries = log->SnapshotEntries();
    t->Reserve(entries.size());
    for (const auto& q : entries) {
      t->AppendRow({Value::Int64(q.sequence), Value::String(q.label),
                    Value::String(q.system),
                    Value::String(q.ok ? "ok" : "error"),
                    Value::Bool(q.plan_cache_hit),
                    Value::Double(q.total_seconds()),
                    Value::Double(q.useful_bytes),
                    Value::Double(q.wasted_bytes), Value::Int64(q.retries),
                    Value::Int64(q.replan_rounds),
                    Value::Double(q.completeness_fraction),
                    Value::Double(q.max_q_error)});
    }
    return t;
  }

 private:
  Federation* fed_;
};

/// `xdb_stat.operators`: the per-operator estimate-vs-actual ledger across
/// the retained history, by (query sequence, ledger index).
class OperatorsProvider : public ProviderBase {
 public:
  explicit OperatorsProvider(Federation* fed)
      : ProviderBase("operators",
                     Schema({{"query_sequence", TypeId::kInt64},
                             {"query_label", TypeId::kString},
                             {"op", TypeId::kString},
                             {"server", TypeId::kString},
                             {"detail", TypeId::kString},
                             {"est_rows", TypeId::kDouble},
                             {"act_rows", TypeId::kDouble},
                             {"est_seconds", TypeId::kDouble},
                             {"act_seconds", TypeId::kDouble},
                             {"est_bytes", TypeId::kDouble},
                             {"act_bytes", TypeId::kDouble},
                             {"q_error", TypeId::kDouble}})),
        fed_(fed) {}

  TablePtr Snapshot() const override {
    TablePtr t = MakeTable();
    QueryLog* log = fed_->query_log();
    if (!log) return t;
    for (const auto& q : log->SnapshotEntries()) {
      for (const auto& e : q.estimates) {
        t->AppendRow({Value::Int64(q.sequence), Value::String(q.label),
                      Value::String(e.op), Value::String(e.server),
                      Value::String(e.detail), Value::Double(e.est_rows),
                      Value::Double(e.act_rows), Value::Double(e.est_seconds),
                      Value::Double(e.act_seconds), Value::Double(e.est_bytes),
                      Value::Double(e.act_bytes), Value::Double(e.q_error)});
      }
    }
    return t;
  }

 private:
  Federation* fed_;
};

/// `xdb_stat.transfers`: per-link aggregates over every transfer in the
/// retained history, by link ("src->dst"). Estimate sums cover only stamped
/// transfers (est_rows/est_bytes >= 0 in the record).
class TransfersProvider : public ProviderBase {
 public:
  explicit TransfersProvider(Federation* fed)
      : ProviderBase("transfers", Schema({{"link", TypeId::kString},
                                          {"transfers", TypeId::kInt64},
                                          {"rows", TypeId::kDouble},
                                          {"bytes", TypeId::kDouble},
                                          {"raw_bytes", TypeId::kDouble},
                                          {"est_rows", TypeId::kDouble},
                                          {"est_bytes", TypeId::kDouble},
                                          {"failed", TypeId::kInt64}})),
        fed_(fed) {}

  TablePtr Snapshot() const override {
    TablePtr t = MakeTable();
    QueryLog* log = fed_->query_log();
    if (!log) return t;
    struct LinkAgg {
      int64_t transfers = 0;
      double rows = 0, bytes = 0, raw_bytes = 0, est_rows = 0, est_bytes = 0;
      int64_t failed = 0;
    };
    std::map<std::string, LinkAgg> links;  // key-sorted output order
    for (const auto& q : log->SnapshotEntries()) {
      for (const auto& tr : q.transfer_log) {
        LinkAgg& a = links[tr.src + "->" + tr.dst];
        ++a.transfers;
        a.rows += tr.rows;
        a.bytes += tr.bytes;
        a.raw_bytes += tr.raw_bytes;
        if (tr.est_rows >= 0) a.est_rows += tr.est_rows;
        if (tr.est_bytes >= 0) a.est_bytes += tr.est_bytes;
        if (tr.failed) ++a.failed;
      }
    }
    t->Reserve(links.size());
    for (const auto& [link, a] : links) {
      t->AppendRow({Value::String(link), Value::Int64(a.transfers),
                    Value::Double(a.rows), Value::Double(a.bytes),
                    Value::Double(a.raw_bytes), Value::Double(a.est_rows),
                    Value::Double(a.est_bytes), Value::Int64(a.failed)});
    }
    return t;
  }

 private:
  Federation* fed_;
};

/// `xdb_stat.plan_cache`: resident cache entries, by normalized key.
class PlanCacheProvider : public ProviderBase {
 public:
  explicit PlanCacheProvider(XdbSystem* xdb)
      : ProviderBase("plan_cache", Schema({{"key", TypeId::kString},
                                           {"fingerprint", TypeId::kString},
                                           {"hits", TypeId::kInt64},
                                           {"age", TypeId::kInt64}})),
        xdb_(xdb) {}

  TablePtr Snapshot() const override {
    TablePtr t = MakeTable();
    DelegationPlanCache* cache = xdb_->plan_cache();
    if (!cache) return t;
    for (const auto& e : cache->SnapshotEntries()) {
      t->AppendRow({Value::String(e.key), Value::String(e.fingerprint),
                    Value::Int64(e.hits), Value::Int64(e.age)});
    }
    return t;
  }

 private:
  XdbSystem* xdb_;
};

/// `xdb_stat.sessions`: open serving sessions, by id. Empty when no
/// SessionManager is wired.
class SessionsProvider : public ProviderBase {
 public:
  explicit SessionsProvider(SessionManager* sessions)
      : ProviderBase("sessions",
                     Schema({{"id", TypeId::kInt64},
                             {"namespace", TypeId::kString},
                             {"inflight", TypeId::kInt64},
                             {"queries_served", TypeId::kInt64},
                             {"failures", TypeId::kInt64}})),
        sessions_(sessions) {}

  TablePtr Snapshot() const override {
    TablePtr t = MakeTable();
    if (!sessions_) return t;
    for (const auto& s : sessions_->SnapshotSessions()) {
      t->AppendRow({Value::Int64(s.id), Value::String(s.ddl_prefix),
                    Value::Int64(s.inflight), Value::Int64(s.queries_served),
                    Value::Int64(s.failures)});
    }
    return t;
  }

 private:
  SessionManager* sessions_;
};

/// `xdb_stat.servers`: every component DBMS with its engine profile and
/// breaker state, by server name. Without a HealthTracker every breaker
/// reads closed with a zero failure window.
class ServersProvider : public ProviderBase {
 public:
  explicit ServersProvider(Federation* fed)
      : ProviderBase("servers", Schema({{"server", TypeId::kString},
                                        {"vendor", TypeId::kString},
                                        {"parallelism", TypeId::kInt64},
                                        {"breaker_state", TypeId::kString},
                                        {"error_rate", TypeId::kDouble},
                                        {"trips", TypeId::kInt64}})),
        fed_(fed) {}

  TablePtr Snapshot() const override {
    TablePtr t = MakeTable();
    HealthTracker* health = fed_->health_tracker();
    for (const std::string& name : fed_->ServerNames()) {  // sorted
      const DatabaseServer* server = fed_->GetServer(name);
      const EngineProfile& profile = server->profile();
      std::string state = "closed";
      double error_rate = 0;
      int64_t trips = 0;
      if (health) {
        state = BreakerStateToString(health->state(name));
        error_rate = health->RollingErrorRate(name);
        trips = health->trips(name);
      }
      t->AppendRow({Value::String(name), Value::String(profile.vendor),
                    Value::Int64(profile.parallelism), Value::String(state),
                    Value::Double(error_rate), Value::Int64(trips)});
    }
    return t;
  }

 private:
  Federation* fed_;
};

}  // namespace

void IntrospectionRegistry::Register(
    std::unique_ptr<SystemTableProvider> provider) {
  std::string key = Lower(provider->name());
  providers_[std::move(key)] = std::move(provider);
}

SystemTableProvider* IntrospectionRegistry::Find(
    const std::string& table) const {
  auto it = providers_.find(Lower(table));
  return it == providers_.end() ? nullptr : it->second.get();
}

std::vector<std::string> IntrospectionRegistry::TableNames() const {
  std::vector<std::string> names;
  names.reserve(providers_.size());
  for (const auto& [name, p] : providers_) names.push_back(name);
  return names;  // map iteration is sorted already
}

void RegisterStandardProviders(IntrospectionRegistry* registry,
                               Federation* fed, XdbSystem* xdb,
                               SessionManager* sessions) {
  registry->Register(std::make_unique<MetricsProvider>(fed, xdb));
  registry->Register(std::make_unique<QueriesProvider>(fed));
  registry->Register(std::make_unique<OperatorsProvider>(fed));
  registry->Register(std::make_unique<TransfersProvider>(fed));
  registry->Register(std::make_unique<PlanCacheProvider>(xdb));
  registry->Register(std::make_unique<SessionsProvider>(sessions));
  registry->Register(std::make_unique<ServersProvider>(fed));
}

}  // namespace xdb
