#pragma once

#include <string>
#include <vector>

#include "src/dbms/run_trace.h"
#include "src/obs/span.h"

namespace xdb {

struct XdbReport;
class MetricsRegistry;

/// \brief JSON exporters for run artefacts (machine-readable counterpart of
/// the bench tables; the `BENCH_*.json` files the perf trajectory collects).
///
/// Formats:
///  - Chrome trace-event JSON (`chrome://tracing` / Perfetto "JSON" import):
///    one complete ("ph":"X") event per span, ts/dur in microseconds of
///    modelled time. Call SpanRecorder::FinalizeTimeline() first.
///  - RunTrace JSON: the full transfer tree, per-server compute totals, and
///    the recovery trail.
///  - XdbReport JSON: phases + timing + trace for one query run (what the
///    bench `--json` emission is built from).

/// Serializes spans as a Chrome trace-event file.
std::string SpansToChromeTrace(const std::vector<Span>& spans);

/// Serializes one ComputeTrace as a JSON object.
std::string ComputeTraceToJson(const ComputeTrace& trace);

/// Serializes the full RunTrace (transfers, per-server, recovery trail).
std::string RunTraceToJson(const RunTrace& trace);

/// Serializes one query run's report: phases, modelled timing, transfer
/// totals (useful/wasted split), DDL counts, and the embedded RunTrace.
std::string XdbReportToJson(const XdbReport& report);

}  // namespace xdb
