#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace xdb {

/// \brief Circuit-breaker state of one server (DESIGN.md §11).
enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateToString(BreakerState state);

/// \brief Knobs for the per-server circuit breakers.
struct BreakerOptions {
  int window = 16;        // rolling per-server outcome window
  int min_samples = 4;    // outcomes needed before the error rate can trip
  double trip_error_rate = 0.5;  // rolling error rate that trips the breaker
  int consecutive_failures = 3;  // consecutive failures trip regardless
  /// Top-level planning consultations an open breaker sits out before it
  /// half-opens and admits one probe query.
  int cooldown_consults = 2;
  int half_open_probes = 1;  // successes a half-open probe needs to close
};

/// \brief Per-server health tracking with circuit breakers.
///
/// Outcomes feed in passively from every retry site — foreign fetches,
/// delegation DDL, root query triggering (Federation::RecordHealthOutcome)
/// — so both XDB and the mediator baselines contribute evidence. The XDB
/// planner consults PlanningExclusions() once per top-level query and
/// routes around open breakers through the same PlacementConstraints
/// machinery failover uses: a tripped server is simply not a Rule-4
/// placement candidate, so the next query never retries against it.
///
/// Breakers influence *planning only*; they never block an operation.
/// Cleanup DDL, mediator materialized-view drops, and probes all flow
/// regardless of breaker state — a tripped breaker cannot strand state on
/// a sick server.
///
/// State machine per server: Closed -> (consecutive failures, or rolling
/// error rate over >= min_samples) -> Open -> (cooldown_consults planning
/// consultations sat out) -> HalfOpen -> one probe query; success closes,
/// a retryable failure re-opens.
///
/// Thread-safe. state_epoch() increments on every transition and feeds the
/// plan-cache placement fingerprint, so cached plans built under an old
/// health map are retired exactly like plans from a retired placement
/// epoch.
class HealthTracker {
 public:
  explicit HealthTracker(BreakerOptions options = {}) : options_(options) {}

  /// Records one operation outcome against `server` (failed = retryable
  /// failure; catalog/parse errors say nothing about health and must not
  /// be recorded). Drives the Closed->Open and HalfOpen->{Closed,Open}
  /// transitions.
  void RecordOutcome(const std::string& server, bool ok);

  /// Consulted once per top-level planning pass: returns the servers the
  /// planner must route around (open breakers still cooling down). Each
  /// call advances open cooldowns; a breaker whose cooldown just expired
  /// half-opens and is *not* excluded — the caller's query becomes its
  /// probe.
  std::vector<std::string> PlanningExclusions();

  BreakerState state(const std::string& server) const;
  /// Rolling error rate over the server's outcome window (0 when empty).
  double RollingErrorRate(const std::string& server) const;
  int64_t trips(const std::string& server) const;

  /// Monotone counter bumped on every state transition; part of the plan
  /// cache's placement fingerprint.
  int64_t state_epoch() const;

  /// Human-readable per-server table (xdbcli \health).
  std::vector<std::string> Render() const;

  /// Attaches a metrics registry: xdb_breaker_state{server=} (0 closed,
  /// 1 open, 2 half-open) and xdb_breaker_trips_total{server=}.
  void SetMetricsRegistry(MetricsRegistry* registry);

  const BreakerOptions& options() const { return options_; }

 private:
  struct ServerHealth {
    BreakerState state = BreakerState::kClosed;
    std::deque<bool> window;  // true = failure
    int consecutive_failures = 0;
    int cooldown_remaining = 0;
    int probe_successes = 0;
    int64_t trips = 0;
    Gauge* state_gauge = nullptr;
    Counter* trip_counter = nullptr;
  };

  ServerHealth& GetLocked(const std::string& server);
  void TransitionLocked(const std::string& server, ServerHealth* h,
                        BreakerState to);
  double ErrorRateLocked(const ServerHealth& h) const;

  const BreakerOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, ServerHealth> servers_;
  int64_t state_epoch_ = 0;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace xdb
