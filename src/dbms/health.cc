#include "src/dbms/health.h"

#include <cstdio>

namespace xdb {

const char* BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

HealthTracker::ServerHealth& HealthTracker::GetLocked(
    const std::string& server) {
  auto it = servers_.find(server);
  if (it == servers_.end()) {
    it = servers_.emplace(server, ServerHealth{}).first;
    if (metrics_ != nullptr) {
      it->second.state_gauge = metrics_->GetGauge(
          "xdb_breaker_state", {{"server", server}},
          "Circuit breaker state: 0 closed, 1 open, 2 half-open");
      it->second.trip_counter = metrics_->GetCounter(
          "xdb_breaker_trips_total", {{"server", server}},
          "Circuit breaker trips (Closed/HalfOpen -> Open)");
    }
  }
  return it->second;
}

void HealthTracker::TransitionLocked(const std::string& server,
                                     ServerHealth* h, BreakerState to) {
  (void)server;
  if (h->state == to) return;
  h->state = to;
  ++state_epoch_;
  if (h->state_gauge != nullptr) {
    h->state_gauge->Set(to == BreakerState::kClosed     ? 0
                        : to == BreakerState::kOpen     ? 1
                                                        : 2);
  }
}

double HealthTracker::ErrorRateLocked(const ServerHealth& h) const {
  if (h.window.empty()) return 0;
  int failures = 0;
  for (bool failed : h.window) failures += failed ? 1 : 0;
  return static_cast<double>(failures) / static_cast<double>(h.window.size());
}

void HealthTracker::RecordOutcome(const std::string& server, bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  ServerHealth& h = GetLocked(server);
  h.window.push_back(!ok);
  while (static_cast<int>(h.window.size()) > options_.window) {
    h.window.pop_front();
  }
  if (ok) {
    h.consecutive_failures = 0;
    if (h.state == BreakerState::kHalfOpen &&
        ++h.probe_successes >= options_.half_open_probes) {
      // The probe came back healthy: close, with a clean slate so one old
      // burst in the window can't immediately re-trip.
      h.window.clear();
      TransitionLocked(server, &h, BreakerState::kClosed);
    }
    return;
  }
  ++h.consecutive_failures;
  switch (h.state) {
    case BreakerState::kClosed: {
      const bool by_streak =
          h.consecutive_failures >= options_.consecutive_failures;
      const bool by_rate =
          static_cast<int>(h.window.size()) >= options_.min_samples &&
          ErrorRateLocked(h) >= options_.trip_error_rate;
      if (by_streak || by_rate) {
        ++h.trips;
        if (h.trip_counter != nullptr) h.trip_counter->Increment();
        h.cooldown_remaining = options_.cooldown_consults;
        TransitionLocked(server, &h, BreakerState::kOpen);
      }
      break;
    }
    case BreakerState::kHalfOpen:
      // The probe failed: straight back to Open for another cooldown.
      ++h.trips;
      if (h.trip_counter != nullptr) h.trip_counter->Increment();
      h.cooldown_remaining = options_.cooldown_consults;
      h.probe_successes = 0;
      TransitionLocked(server, &h, BreakerState::kOpen);
      break;
    case BreakerState::kOpen:
      break;  // already open; keep accumulating evidence in the window
  }
}

std::vector<std::string> HealthTracker::PlanningExclusions() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> excluded;
  for (auto& [server, h] : servers_) {
    if (h.state != BreakerState::kOpen) continue;
    if (h.cooldown_remaining > 0) {
      --h.cooldown_remaining;
      excluded.push_back(server);
    } else {
      // Cooldown served: half-open and let this query probe the server.
      h.probe_successes = 0;
      TransitionLocked(server, &h, BreakerState::kHalfOpen);
    }
  }
  return excluded;
}

BreakerState HealthTracker::state(const std::string& server) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = servers_.find(server);
  return it == servers_.end() ? BreakerState::kClosed : it->second.state;
}

double HealthTracker::RollingErrorRate(const std::string& server) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = servers_.find(server);
  return it == servers_.end() ? 0 : ErrorRateLocked(it->second);
}

int64_t HealthTracker::trips(const std::string& server) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = servers_.find(server);
  return it == servers_.end() ? 0 : it->second.trips;
}

int64_t HealthTracker::state_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_epoch_;
}

std::vector<std::string> HealthTracker::Render() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> lines;
  if (servers_.empty()) {
    lines.push_back("no health data yet (no operations recorded)");
    return lines;
  }
  char buf[160];
  for (const auto& [server, h] : servers_) {
    int failures = 0;
    for (bool failed : h.window) failures += failed ? 1 : 0;
    std::snprintf(buf, sizeof(buf),
                  "%-12s %-9s err=%.2f (%d/%zu) streak=%d trips=%lld%s",
                  server.c_str(), BreakerStateToString(h.state),
                  ErrorRateLocked(h), failures, h.window.size(),
                  h.consecutive_failures, static_cast<long long>(h.trips),
                  h.state == BreakerState::kOpen
                      ? (" cooldown=" + std::to_string(h.cooldown_remaining))
                            .c_str()
                      : "");
    lines.push_back(buf);
  }
  return lines;
}

void HealthTracker::SetMetricsRegistry(MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = registry;
  for (auto& [server, h] : servers_) {
    if (metrics_ == nullptr) {
      h.state_gauge = nullptr;
      h.trip_counter = nullptr;
      continue;
    }
    h.state_gauge = metrics_->GetGauge(
        "xdb_breaker_state", {{"server", server}},
        "Circuit breaker state: 0 closed, 1 open, 2 half-open");
    h.trip_counter = metrics_->GetCounter(
        "xdb_breaker_trips_total", {{"server", server}},
        "Circuit breaker trips (Closed/HalfOpen -> Open)");
    h.state_gauge->Set(h.state == BreakerState::kClosed     ? 0
                       : h.state == BreakerState::kOpen     ? 1
                                                            : 2);
  }
}

}  // namespace xdb
