#include "src/dbms/federation.h"

#include "src/dbms/server.h"

namespace xdb {

Federation::Federation() = default;
Federation::~Federation() = default;

DatabaseServer* Federation::AddServer(const std::string& name,
                                      EngineProfile profile) {
  auto server = std::make_unique<DatabaseServer>(name, std::move(profile),
                                                 this);
  DatabaseServer* ptr = server.get();
  servers_[name] = std::move(server);
  network_.AddNode(name);
  return ptr;
}

DatabaseServer* Federation::GetServer(const std::string& name) const {
  auto it = servers_.find(name);
  return it != servers_.end() ? it->second.get() : nullptr;
}

std::vector<std::string> Federation::ServerNames() const {
  std::vector<std::string> names;
  for (const auto& [n, s] : servers_) names.push_back(n);
  return names;
}

void Federation::BeginRun(const std::string& root_server) {
  run_ = RunTrace{};
  run_.root_server = root_server;
  stack_.clear();
  next_record_id_ = 0;
  control_messages_ = 0;
  run_active_ = true;
}

RunTrace Federation::FinishRun() {
  run_active_ = false;
  run_.per_server[run_.root_server].Add(run_.root_compute);
  if (metrics_ != nullptr) {
    // Useful/wasted split is only final once the run closed (a transfer can
    // be marked failed after its PopFetch), so bytes flush here — to the
    // process-wide totals and, per transfer, to the producing server's and
    // the link's labeled series.
    m_.bytes_useful->Increment(run_.UsefulTransferredBytes());
    m_.bytes_wasted->Increment(run_.WastedTransferredBytes());
    m_.backoff_seconds->Increment(run_.total_backoff_seconds);
    m_.injected_delay_seconds->Increment(run_.injected_delay_seconds);
    for (const auto& t : run_.transfers) {
      m_.transfer_bytes->Observe(t.bytes);
      const std::string link = t.src + "->" + t.dst;
      auto it = m_.transfer_bytes_by_link.find(link);
      if (it == m_.transfer_bytes_by_link.end()) {
        it = m_.transfer_bytes_by_link
                 .emplace(link,
                          metrics_->GetHistogram(
                              "xdb_federation_transfer_bytes",
                              {{"link", link}}, {}))
                 .first;
      }
      it->second->Observe(t.bytes);
      if (t.failed) {
        ServerCell(&m_.wasted_by_server, "xdb_federation_wasted_bytes_total",
                   t.src)
            ->Increment(t.bytes);
        LinkCell(&m_.wasted_by_link, "xdb_federation_wasted_bytes_total",
                 t.src, t.dst)
            ->Increment(t.bytes);
      } else {
        ServerCell(&m_.useful_by_server, "xdb_federation_useful_bytes_total",
                   t.src)
            ->Increment(t.bytes);
        LinkCell(&m_.useful_by_link, "xdb_federation_useful_bytes_total",
                 t.src, t.dst)
            ->Increment(t.bytes);
      }
    }
  }
  return std::move(run_);
}

Counter* Federation::ServerCell(std::map<std::string, Counter*>* cache,
                                const char* name,
                                const std::string& server) {
  auto it = cache->find(server);
  if (it == cache->end()) {
    it = cache->emplace(server,
                        metrics_->GetCounter(name, {{"server", server}}))
             .first;
  }
  return it->second;
}

Counter* Federation::LinkCell(std::map<std::string, Counter*>* cache,
                              const char* name, const std::string& src,
                              const std::string& dst) {
  std::string link = src + "->" + dst;
  auto it = cache->find(link);
  if (it == cache->end()) {
    it = cache->emplace(link, metrics_->GetCounter(name, {{"link", link}}))
             .first;
  }
  return it->second;
}

ComputeTrace* Federation::CurrentTrace() {
  if (!run_active_) return &scratch_;
  if (!stack_.empty()) return &stack_.back().trace;
  return &run_.root_compute;
}

int Federation::PushFetch(const std::string& src, const std::string& dst,
                          const std::string& relation) {
  if (!run_active_) {
    stack_.push_back({-1, -1, ComputeTrace{}});
    return -1;
  }
  TransferRecord rec;
  rec.id = next_record_id_++;
  rec.parent_id = stack_.empty() ? -1 : stack_.back().record_id;
  rec.src = src;
  rec.dst = dst;
  rec.relation = relation;
  run_.transfers.push_back(rec);
  int64_t span_id = -1;
  if (spans_ != nullptr) {
    span_id = spans_->StartSpan("fetch " + relation);
    Span* sp = spans_->mutable_span(span_id);
    sp->record_id = rec.id;
    sp->Tag("src", src);
    sp->Tag("dst", dst);
    sp->Tag("relation", relation);
  }
  if (metrics_ != nullptr) {
    m_.fetches->Increment();
    ServerCell(&m_.fetches_by_server, "xdb_federation_fetches_total", src)
        ->Increment();
  }
  stack_.push_back({rec.id, span_id, ComputeTrace{}});
  return rec.id;
}

void Federation::PopFetch(int id, double rows, double bytes,
                          uint64_t messages, bool materialized) {
  Frame frame = std::move(stack_.back());
  stack_.pop_back();
  // span_id == -1 means no span was opened (no recorder at PushFetch);
  // kDroppedSpan (sampled-out tree) must still be ended to keep the
  // recorder's open-span stack balanced.
  if (spans_ != nullptr && frame.span_id != -1) {
    Span* sp = spans_->mutable_span(frame.span_id);
    sp->Tag("rows", rows);
    sp->Tag("bytes", bytes);
    sp->Tag("messages", static_cast<int64_t>(messages));
    if (materialized) sp->Tag("materialized", std::string("true"));
    spans_->EndSpan(frame.span_id);
  }
  if (metrics_ != nullptr) m_.fetch_rows->Increment(rows);
  if (!run_active_ || id < 0) return;
  // Records are appended in id order (id == index within the run), so the
  // lookup is O(1) — the previous linear scan made deeply-fetching runs
  // quadratic in their transfer count.
  size_t idx = static_cast<size_t>(id);
  if (idx >= run_.transfers.size() || run_.transfers[idx].id != id) return;
  TransferRecord& rec = run_.transfers[idx];
  rec.rows = rows;
  rec.bytes = bytes;
  rec.messages = messages;
  rec.materialized = materialized;
  rec.producer_compute = frame.trace;
  run_.per_server[rec.src].Add(frame.trace);
  if (metrics_ != nullptr) {
    ServerCell(&m_.fetch_rows_by_server, "xdb_federation_fetch_rows_total",
               rec.src)
        ->Increment(rows);
  }
}

Status Federation::InjectFault(const std::string& server, FaultOp op,
                               const std::string& peer) {
  if (injector_ == nullptr) return Status::OK();
  Status st = injector_->OnOperation(server, op, peer);
  double delay = injector_->TakeInjectedDelay();
  if (run_active_ && delay > 0) run_.injected_delay_seconds += delay;
  if (!st.ok() && metrics_ != nullptr) {
    m_.faults_injected->Increment();
    ServerCell(&m_.faults_by_server, "xdb_federation_faults_injected_total",
               server)
        ->Increment();
  }
  return st;
}

void Federation::RecordRetry(RetryEvent event) {
  if (spans_ != nullptr && (event.attempts > 1 || !event.succeeded)) {
    int64_t id = spans_->StartSpan("retry " + event.op);
    Span* sp = spans_->mutable_span(id);
    sp->duration_seconds = event.backoff_seconds;
    sp->Tag("server", event.server);
    sp->Tag("attempts", static_cast<int64_t>(event.attempts));
    sp->Tag("succeeded", std::string(event.succeeded ? "true" : "false"));
    if (!event.error.empty()) sp->Tag("error", event.error);
    spans_->EndSpan(id);
  }
  if (metrics_ != nullptr && event.attempts > 1) {
    m_.retries->Increment(event.attempts - 1);
    ServerCell(&m_.retries_by_server, "xdb_federation_retries_total",
               event.server)
        ->Increment(event.attempts - 1);
  }
  if (!run_active_) return;
  run_.total_backoff_seconds += event.backoff_seconds;
  if (event.attempts > 1 && event.succeeded) NoteRecovery("retried");
  run_.retries.push_back(std::move(event));
}

namespace {
int RecoveryRank(const std::string& action) {
  if (action == "retried") return 1;
  if (action == "rolled-back") return 2;
  if (action == "replanned") return 3;
  if (action == "failed") return 4;
  return 0;  // "none" / unknown
}
}  // namespace

void Federation::NoteRecovery(const std::string& action) {
  if (metrics_ != nullptr && action == "rolled-back") {
    m_.rollbacks->Increment();
  }
  if (!run_active_) return;
  if (RecoveryRank(action) > RecoveryRank(run_.recovery_action)) {
    run_.recovery_action = action;
  }
}

void Federation::MarkTransferFailed(int id) {
  if (!run_active_ || id < 0) return;
  size_t idx = static_cast<size_t>(id);
  if (idx >= run_.transfers.size() || run_.transfers[idx].id != id) return;
  run_.transfers[idx].failed = true;
}

void Federation::RecordControlMessage(const std::string& a,
                                      const std::string& b, double bytes) {
  network_.RecordTransfer(a, b, bytes, 1);
  if (run_active_) ++control_messages_;
}

void Federation::SetMetricsRegistry(MetricsRegistry* registry) {
  metrics_ = registry;
  network_.set_metrics(registry);
  // Drop every cached handle (including the lazily-built labeled cells):
  // they point into the previous registry.
  m_ = FedMetrics{};
  if (registry == nullptr) return;
  m_.fetches = registry->GetCounter(
      "xdb_federation_fetches_total", "Inter-DBMS foreign fetches started");
  m_.fetch_rows = registry->GetCounter(
      "xdb_federation_fetch_rows_total", "Rows delivered by foreign fetches");
  m_.bytes_useful = registry->GetCounter(
      "xdb_federation_useful_bytes_total",
      "Transferred bytes of completed fetches (payload the consumer used)");
  m_.bytes_wasted = registry->GetCounter(
      "xdb_federation_wasted_bytes_total",
      "Transferred bytes of failed fetches (dropped mid-flight / replanned "
      "away)");
  m_.retries = registry->GetCounter(
      "xdb_federation_retries_total", "Extra attempts beyond the first");
  m_.backoff_seconds = registry->GetCounter(
      "xdb_federation_backoff_seconds_total", "Modelled retry backoff");
  m_.rollbacks = registry->GetCounter(
      "xdb_federation_rollbacks_total", "All-or-nothing deploy rollbacks");
  m_.replan_rounds = registry->GetCounter(
      "xdb_federation_replan_rounds_total", "Failover re-annotation rounds");
  m_.faults_injected = registry->GetCounter(
      "xdb_federation_faults_injected_total", "Faults fired by the injector");
  m_.injected_delay_seconds = registry->GetCounter(
      "xdb_federation_injected_delay_seconds_total",
      "Modelled delay charged by injected faults");
  m_.ddl = registry->GetCounter(
      "xdb_delegation_ddl_total",
      "DDL statements issued to component DBMSs (deploy / cleanup)");
  m_.transfer_bytes = registry->GetHistogram(
      "xdb_federation_transfer_bytes",
      {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9},
      "Per-transfer payload size distribution");
}

void Federation::CountReplanRounds(int rounds) {
  if (metrics_ != nullptr && rounds > 0) m_.replan_rounds->Increment(rounds);
}

void Federation::CountDdl(const std::string& server) {
  if (metrics_ == nullptr) return;
  m_.ddl->Increment();
  ServerCell(&m_.ddl_by_server, "xdb_delegation_ddl_total", server)
      ->Increment();
}

}  // namespace xdb
