#include "src/dbms/federation.h"

#include "src/dbms/server.h"

namespace xdb {

Federation::Federation() = default;
Federation::~Federation() = default;

DatabaseServer* Federation::AddServer(const std::string& name,
                                      EngineProfile profile) {
  auto server = std::make_unique<DatabaseServer>(name, std::move(profile),
                                                 this);
  DatabaseServer* ptr = server.get();
  servers_[name] = std::move(server);
  network_.AddNode(name);
  return ptr;
}

DatabaseServer* Federation::GetServer(const std::string& name) const {
  auto it = servers_.find(name);
  return it != servers_.end() ? it->second.get() : nullptr;
}

std::vector<std::string> Federation::ServerNames() const {
  std::vector<std::string> names;
  for (const auto& [n, s] : servers_) names.push_back(n);
  return names;
}

void Federation::BeginRun(const std::string& root_server) {
  run_ = RunTrace{};
  run_.root_server = root_server;
  stack_.clear();
  next_record_id_ = 0;
  control_messages_ = 0;
  run_active_ = true;
}

RunTrace Federation::FinishRun() {
  run_active_ = false;
  run_.per_server[run_.root_server].Add(run_.root_compute);
  return std::move(run_);
}

ComputeTrace* Federation::CurrentTrace() {
  if (!run_active_) return &scratch_;
  if (!stack_.empty()) return &stack_.back().trace;
  return &run_.root_compute;
}

int Federation::PushFetch(const std::string& src, const std::string& dst,
                          const std::string& relation) {
  if (!run_active_) {
    stack_.push_back({-1, ComputeTrace{}});
    return -1;
  }
  TransferRecord rec;
  rec.id = next_record_id_++;
  rec.parent_id = stack_.empty() ? -1 : stack_.back().record_id;
  rec.src = src;
  rec.dst = dst;
  rec.relation = relation;
  run_.transfers.push_back(rec);
  stack_.push_back({rec.id, ComputeTrace{}});
  return rec.id;
}

void Federation::PopFetch(int id, double rows, double bytes,
                          uint64_t messages, bool materialized) {
  Frame frame = std::move(stack_.back());
  stack_.pop_back();
  if (!run_active_ || id < 0) return;
  // Records are appended in id order (id == index within the run), so the
  // lookup is O(1) — the previous linear scan made deeply-fetching runs
  // quadratic in their transfer count.
  size_t idx = static_cast<size_t>(id);
  if (idx >= run_.transfers.size() || run_.transfers[idx].id != id) return;
  TransferRecord& rec = run_.transfers[idx];
  rec.rows = rows;
  rec.bytes = bytes;
  rec.messages = messages;
  rec.materialized = materialized;
  rec.producer_compute = frame.trace;
  run_.per_server[rec.src].Add(frame.trace);
}

Status Federation::InjectFault(const std::string& server, FaultOp op,
                               const std::string& peer) {
  if (injector_ == nullptr) return Status::OK();
  Status st = injector_->OnOperation(server, op, peer);
  double delay = injector_->TakeInjectedDelay();
  if (run_active_ && delay > 0) run_.injected_delay_seconds += delay;
  return st;
}

void Federation::RecordRetry(RetryEvent event) {
  if (!run_active_) return;
  run_.total_backoff_seconds += event.backoff_seconds;
  if (event.attempts > 1 && event.succeeded) NoteRecovery("retried");
  run_.retries.push_back(std::move(event));
}

namespace {
int RecoveryRank(const std::string& action) {
  if (action == "retried") return 1;
  if (action == "rolled-back") return 2;
  if (action == "replanned") return 3;
  if (action == "failed") return 4;
  return 0;  // "none" / unknown
}
}  // namespace

void Federation::NoteRecovery(const std::string& action) {
  if (!run_active_) return;
  if (RecoveryRank(action) > RecoveryRank(run_.recovery_action)) {
    run_.recovery_action = action;
  }
}

void Federation::MarkTransferFailed(int id) {
  if (!run_active_ || id < 0) return;
  size_t idx = static_cast<size_t>(id);
  if (idx >= run_.transfers.size() || run_.transfers[idx].id != id) return;
  run_.transfers[idx].failed = true;
}

void Federation::RecordControlMessage(const std::string& a,
                                      const std::string& b, double bytes) {
  network_.RecordTransfer(a, b, bytes, 1);
  if (run_active_) ++control_messages_;
}

}  // namespace xdb
