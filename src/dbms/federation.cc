#include "src/dbms/federation.h"

#include <algorithm>

#include "src/dbms/server.h"

namespace xdb {

namespace {
// Per-thread span-recorder override; concurrent sessions record their own
// timelines (a SpanRecorder's open-span stack is single-threaded).
thread_local SpanRecorder* t_span_override = nullptr;
}  // namespace

Federation::Federation() = default;
Federation::~Federation() = default;

Federation::RunState& Federation::ThreadRun() {
  static thread_local RunState t_run;
  return t_run;
}

SpanRecorder* Federation::span_recorder() const {
  return t_span_override != nullptr ? t_span_override : spans_;
}

void Federation::SetThreadSpanRecorder(SpanRecorder* recorder) {
  t_span_override = recorder;
}

DatabaseServer* Federation::AddServer(const std::string& name,
                                      EngineProfile profile) {
  auto server = std::make_unique<DatabaseServer>(name, std::move(profile),
                                                 this);
  DatabaseServer* ptr = server.get();
  servers_[name] = std::move(server);
  network_.AddNode(name);
  return ptr;
}

DatabaseServer* Federation::GetServer(const std::string& name) const {
  auto it = servers_.find(name);
  return it != servers_.end() ? it->second.get() : nullptr;
}

std::vector<std::string> Federation::ServerNames() const {
  std::vector<std::string> names;
  for (const auto& [n, s] : servers_) names.push_back(n);
  return names;
}

void Federation::BeginRun(const std::string& root_server) {
  RunState& rs = ThreadRun();
  rs.run = RunTrace{};
  rs.run.root_server = root_server;
  rs.stack.clear();
  rs.next_record_id = 0;
  rs.control_messages = 0;
  rs.owner = this;
  rs.active = true;
}

RunTrace Federation::FinishRun() {
  RunState& rs = ThreadRun();
  // Join delivered transfers with their planning-time estimates: failed
  // transfers (and replanned-away rounds — each round is its own run) never
  // enter the ledger, so estimates always describe executed work.
  for (const auto& t : rs.run.transfers) {
    // messages == 0 is the remote-evaluation-failure pop: nothing was
    // delivered, so there is no actual to hold the estimate against.
    if (t.failed || t.est_rows < 0 || t.messages == 0) continue;
    EstimateActual ea;
    ea.op = "transfer";
    ea.server = t.src + "->" + t.dst;
    ea.detail = t.relation;
    ea.est_rows = t.est_rows;
    ea.act_rows = t.rows;
    ea.est_bytes = std::max(0.0, t.est_bytes);
    ea.act_bytes = t.bytes;
    ea.q_error = QError(t.est_rows, t.rows);
    if (metrics_ != nullptr) {
      m_.qerror->Observe(ea.q_error);
      QErrorHistogram(ea.op, ea.server)->Observe(ea.q_error);
      double berr = QError(ea.est_bytes, ea.act_bytes);
      m_.bytes_error->Observe(berr);
      BytesErrorHistogram(ea.server)->Observe(berr);
    }
    rs.run.estimates.push_back(std::move(ea));
  }
  rs.active = false;
  rs.owner = nullptr;
  rs.run.per_server[rs.run.root_server].Add(rs.run.root_compute);
  if (metrics_ != nullptr) {
    // Useful/wasted split is only final once the run closed (a transfer can
    // be marked failed after its PopFetch), so bytes flush here — to the
    // process-wide totals and, per transfer, to the producing server's and
    // the link's labeled series.
    m_.bytes_useful->Increment(rs.run.UsefulTransferredBytes());
    m_.bytes_wasted->Increment(rs.run.WastedTransferredBytes());
    m_.backoff_seconds->Increment(rs.run.total_backoff_seconds);
    m_.injected_delay_seconds->Increment(rs.run.injected_delay_seconds);
    for (const auto& t : rs.run.transfers) {
      m_.transfer_bytes->Observe(t.bytes);
      LinkHistogram(t.src + "->" + t.dst)->Observe(t.bytes);
      if (t.failed) {
        ServerCell(&m_.wasted_by_server, "xdb_federation_wasted_bytes_total",
                   t.src)
            ->Increment(t.bytes);
        LinkCell(&m_.wasted_by_link, "xdb_federation_wasted_bytes_total",
                 t.src, t.dst)
            ->Increment(t.bytes);
      } else {
        ServerCell(&m_.useful_by_server, "xdb_federation_useful_bytes_total",
                   t.src)
            ->Increment(t.bytes);
        LinkCell(&m_.useful_by_link, "xdb_federation_useful_bytes_total",
                 t.src, t.dst)
            ->Increment(t.bytes);
      }
    }
  }
  return std::move(rs.run);
}

bool Federation::run_active() const { return ActiveHere(ThreadRun()); }

int Federation::control_messages() const {
  return ThreadRun().control_messages;
}

Counter* Federation::ServerCell(std::map<std::string, Counter*>* cache,
                                const char* name,
                                const std::string& server) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  auto it = cache->find(server);
  if (it == cache->end()) {
    it = cache->emplace(server,
                        metrics_->GetCounter(name, {{"server", server}}))
             .first;
  }
  return it->second;
}

Counter* Federation::LinkCell(std::map<std::string, Counter*>* cache,
                              const char* name, const std::string& src,
                              const std::string& dst) {
  std::string link = src + "->" + dst;
  std::lock_guard<std::mutex> lock(metrics_mu_);
  auto it = cache->find(link);
  if (it == cache->end()) {
    it = cache->emplace(link, metrics_->GetCounter(name, {{"link", link}}))
             .first;
  }
  return it->second;
}

Histogram* Federation::LinkHistogram(const std::string& link) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  auto it = m_.transfer_bytes_by_link.find(link);
  if (it == m_.transfer_bytes_by_link.end()) {
    it = m_.transfer_bytes_by_link
             .emplace(link, metrics_->GetHistogram(
                                "xdb_federation_transfer_bytes",
                                {{"link", link}}, {}))
             .first;
  }
  return it->second;
}

Histogram* Federation::QErrorHistogram(const std::string& op,
                                       const std::string& server) {
  std::string key = op + "|" + server;
  std::lock_guard<std::mutex> lock(metrics_mu_);
  auto it = m_.qerror_by_cell.find(key);
  if (it == m_.qerror_by_cell.end()) {
    it = m_.qerror_by_cell
             .emplace(key, metrics_->GetHistogram(
                               "xdb_qerror",
                               {{"op", op}, {"server", server}}, {}))
             .first;
  }
  return it->second;
}

Histogram* Federation::BytesErrorHistogram(const std::string& link) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  auto it = m_.bytes_error_by_link.find(link);
  if (it == m_.bytes_error_by_link.end()) {
    it = m_.bytes_error_by_link
             .emplace(link, metrics_->GetHistogram("xdb_bytes_error",
                                                   {{"link", link}}, {}))
             .first;
  }
  return it->second;
}

namespace {
/// Collapses every digit run to '*' so per-query deployed-view names
/// (xdb_q12_t4, xdb_q12_t7, ...) share one label cell: the gauge tracks
/// compression per relation *shape*, keeping label cardinality bounded by
/// the schema rather than by query count.
std::string NormalizeRelationLabel(const std::string& relation) {
  std::string out;
  out.reserve(relation.size());
  bool in_digits = false;
  for (char c : relation) {
    if (c >= '0' && c <= '9') {
      if (!in_digits) out.push_back('*');
      in_digits = true;
    } else {
      out.push_back(c);
      in_digits = false;
    }
  }
  return out;
}
}  // namespace

Gauge* Federation::CompressionGauge(const std::string& relation) {
  std::string label = NormalizeRelationLabel(relation);
  std::lock_guard<std::mutex> lock(metrics_mu_);
  auto it = m_.compression_by_relation.find(label);
  if (it == m_.compression_by_relation.end()) {
    it = m_.compression_by_relation
             .emplace(label,
                      metrics_->GetGauge(
                          "xdb_transfer_compression_ratio",
                          {{"relation", label}},
                          "Raw/encoded byte ratio of the latest columnar "
                          "transfer of this relation shape"))
             .first;
  }
  return it->second;
}

ComputeTrace* Federation::CurrentTrace() {
  RunState& rs = ThreadRun();
  if (!ActiveHere(rs)) return &rs.scratch;
  if (!rs.stack.empty()) return &rs.stack.back().trace;
  return &rs.run.root_compute;
}

int Federation::PushFetch(const std::string& src, const std::string& dst,
                          const std::string& relation, double est_rows,
                          double est_bytes) {
  RunState& rs = ThreadRun();
  if (!ActiveHere(rs)) {
    rs.stack.push_back({-1, -1, ComputeTrace{}});
    return -1;
  }
  TransferRecord rec;
  rec.id = rs.next_record_id++;
  rec.parent_id = rs.stack.empty() ? -1 : rs.stack.back().record_id;
  rec.src = src;
  rec.dst = dst;
  rec.relation = relation;
  rec.est_rows = est_rows;
  rec.est_bytes = est_bytes;
  rs.run.transfers.push_back(rec);
  int64_t span_id = -1;
  SpanRecorder* spans = span_recorder();
  if (spans != nullptr) {
    span_id = spans->StartSpan("fetch " + relation);
    Span* sp = spans->mutable_span(span_id);
    sp->record_id = rec.id;
    sp->Tag("src", src);
    sp->Tag("dst", dst);
    sp->Tag("relation", relation);
  }
  if (metrics_ != nullptr) {
    m_.fetches->Increment();
    ServerCell(&m_.fetches_by_server, "xdb_federation_fetches_total", src)
        ->Increment();
  }
  rs.stack.push_back({rec.id, span_id, ComputeTrace{}});
  return rec.id;
}

void Federation::PopFetch(int id, double rows, double bytes,
                          uint64_t messages, bool materialized,
                          double raw_bytes) {
  RunState& rs = ThreadRun();
  Frame frame = std::move(rs.stack.back());
  rs.stack.pop_back();
  // span_id == -1 means no span was opened (no recorder at PushFetch);
  // kDroppedSpan (sampled-out tree) must still be ended to keep the
  // recorder's open-span stack balanced.
  SpanRecorder* spans = span_recorder();
  if (spans != nullptr && frame.span_id != -1) {
    Span* sp = spans->mutable_span(frame.span_id);
    sp->Tag("rows", rows);
    sp->Tag("bytes", bytes);
    sp->Tag("messages", static_cast<int64_t>(messages));
    if (materialized) sp->Tag("materialized", std::string("true"));
    spans->EndSpan(frame.span_id);
  }
  if (metrics_ != nullptr) m_.fetch_rows->Increment(rows);
  if (!ActiveHere(rs) || id < 0) return;
  // Records are appended in id order (id == index within the run), so the
  // lookup is O(1) — the previous linear scan made deeply-fetching runs
  // quadratic in their transfer count.
  size_t idx = static_cast<size_t>(id);
  if (idx >= rs.run.transfers.size() || rs.run.transfers[idx].id != id) {
    return;
  }
  TransferRecord& rec = rs.run.transfers[idx];
  rec.rows = rows;
  rec.bytes = bytes;
  // Negative raw_bytes means "raw-row transfer": the wire bytes *are* the
  // row-format bytes. Encoded transfers pass the uncompressed size so the
  // per-transfer compression is preserved in the trace.
  rec.raw_bytes = raw_bytes < 0 ? bytes : raw_bytes;
  rec.encoded = raw_bytes >= 0;
  rec.messages = messages;
  rec.materialized = materialized;
  rec.producer_compute = frame.trace;
  rs.run.per_server[rec.src].Add(frame.trace);
  if (metrics_ != nullptr) {
    ServerCell(&m_.fetch_rows_by_server, "xdb_federation_fetch_rows_total",
               rec.src)
        ->Increment(rows);
    if (rec.encoded && bytes > 0) {
      CompressionGauge(rec.relation)->Set(rec.raw_bytes / bytes);
    }
  }
}

Status Federation::InjectFault(const std::string& server, FaultOp op,
                               const std::string& peer) {
  if (injector_ == nullptr) return Status::OK();
  Status st = injector_->OnOperation(server, op, peer);
  double delay = injector_->TakeInjectedDelay();
  if (delay > 0) ChargeBudget(delay);
  RunState& rs = ThreadRun();
  if (ActiveHere(rs) && delay > 0) rs.run.injected_delay_seconds += delay;
  if (!st.ok() && metrics_ != nullptr) {
    m_.faults_injected->Increment();
    ServerCell(&m_.faults_by_server, "xdb_federation_faults_injected_total",
               server)
        ->Increment();
  }
  return st;
}

void Federation::RecordRetry(RetryEvent event) {
  SpanRecorder* spans = span_recorder();
  if (spans != nullptr && (event.attempts > 1 || !event.succeeded)) {
    int64_t id = spans->StartSpan("retry " + event.op);
    Span* sp = spans->mutable_span(id);
    sp->duration_seconds = event.backoff_seconds;
    sp->Tag("server", event.server);
    sp->Tag("attempts", static_cast<int64_t>(event.attempts));
    sp->Tag("succeeded", std::string(event.succeeded ? "true" : "false"));
    if (!event.error.empty()) sp->Tag("error", event.error);
    spans->EndSpan(id);
  }
  if (metrics_ != nullptr && event.attempts > 1) {
    m_.retries->Increment(event.attempts - 1);
    ServerCell(&m_.retries_by_server, "xdb_federation_retries_total",
               event.server)
        ->Increment(event.attempts - 1);
  }
  ChargeBudget(event.backoff_seconds);
  RunState& rs = ThreadRun();
  if (!ActiveHere(rs)) return;
  rs.run.total_backoff_seconds += event.backoff_seconds;
  if (event.attempts > 1 && event.succeeded) NoteRecovery("retried");
  rs.run.retries.push_back(std::move(event));
}

namespace {
int RecoveryRank(const std::string& action) {
  if (action == "retried") return 1;
  if (action == "rolled-back") return 2;
  if (action == "replanned") return 3;
  if (action == "degraded") return 4;
  if (action == "failed") return 5;
  return 0;  // "none" / unknown
}
}  // namespace

void Federation::NoteRecovery(const std::string& action) {
  if (metrics_ != nullptr && action == "rolled-back") {
    m_.rollbacks->Increment();
  }
  RunState& rs = ThreadRun();
  if (!ActiveHere(rs)) return;
  if (RecoveryRank(action) > RecoveryRank(rs.run.recovery_action)) {
    rs.run.recovery_action = action;
  }
}

void Federation::MarkTransferFailed(int id) {
  RunState& rs = ThreadRun();
  if (!ActiveHere(rs) || id < 0) return;
  size_t idx = static_cast<size_t>(id);
  if (idx >= rs.run.transfers.size() || rs.run.transfers[idx].id != id) {
    return;
  }
  rs.run.transfers[idx].failed = true;
}

void Federation::RecordEstimate(EstimateActual record) {
  record.q_error = QError(record.est_rows, record.act_rows);
  if (metrics_ != nullptr) {
    m_.qerror->Observe(record.q_error);
    QErrorHistogram(record.op, record.server)->Observe(record.q_error);
  }
  RunState& rs = ThreadRun();
  if (!ActiveHere(rs)) return;
  rs.run.estimates.push_back(std::move(record));
}

void Federation::RecordControlMessage(const std::string& a,
                                      const std::string& b, double bytes) {
  network_.RecordTransfer(a, b, bytes, 1);
  RunState& rs = ThreadRun();
  if (ActiveHere(rs)) ++rs.control_messages;
}

void Federation::SetMetricsRegistry(MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  metrics_ = registry;
  network_.set_metrics(registry);
  // Drop every cached handle (including the lazily-built labeled cells):
  // they point into the previous registry.
  m_ = FedMetrics{};
  if (registry == nullptr) return;
  m_.fetches = registry->GetCounter(
      "xdb_federation_fetches_total", "Inter-DBMS foreign fetches started");
  m_.fetch_rows = registry->GetCounter(
      "xdb_federation_fetch_rows_total", "Rows delivered by foreign fetches");
  m_.bytes_useful = registry->GetCounter(
      "xdb_federation_useful_bytes_total",
      "Transferred bytes of completed fetches (payload the consumer used)");
  m_.bytes_wasted = registry->GetCounter(
      "xdb_federation_wasted_bytes_total",
      "Transferred bytes of failed fetches (dropped mid-flight / replanned "
      "away)");
  m_.retries = registry->GetCounter(
      "xdb_federation_retries_total", "Extra attempts beyond the first");
  m_.backoff_seconds = registry->GetCounter(
      "xdb_federation_backoff_seconds_total", "Modelled retry backoff");
  m_.rollbacks = registry->GetCounter(
      "xdb_federation_rollbacks_total", "All-or-nothing deploy rollbacks");
  m_.replan_rounds = registry->GetCounter(
      "xdb_federation_replan_rounds_total", "Failover re-annotation rounds");
  m_.faults_injected = registry->GetCounter(
      "xdb_federation_faults_injected_total", "Faults fired by the injector");
  m_.injected_delay_seconds = registry->GetCounter(
      "xdb_federation_injected_delay_seconds_total",
      "Modelled delay charged by injected faults");
  m_.ddl = registry->GetCounter(
      "xdb_delegation_ddl_total",
      "DDL statements issued to component DBMSs (deploy / cleanup)");
  m_.transfer_bytes = registry->GetHistogram(
      "xdb_federation_transfer_bytes",
      {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9},
      "Per-transfer payload size distribution");
  m_.qerror = registry->GetHistogram(
      "xdb_qerror", {1.5, 2, 4, 8, 16, 64, 256, 1024},
      "Cardinality q-error of planner estimates vs observed rows");
  m_.bytes_error = registry->GetHistogram(
      "xdb_bytes_error", {1.5, 2, 4, 8, 16, 64, 256, 1024},
      "Byte-volume q-error of transfer estimates vs wire bytes");
  if (health_ != nullptr) health_->SetMetricsRegistry(registry);
}

void Federation::CountReplanRounds(int rounds) {
  if (metrics_ != nullptr && rounds > 0) m_.replan_rounds->Increment(rounds);
}

void Federation::CountDdl(const std::string& server) {
  if (metrics_ == nullptr) return;
  m_.ddl->Increment();
  ServerCell(&m_.ddl_by_server, "xdb_delegation_ddl_total", server)
      ->Increment();
}

void Federation::SetHealthTracker(HealthTracker* tracker) {
  health_ = tracker;
  if (health_ != nullptr && metrics_ != nullptr) {
    health_->SetMetricsRegistry(metrics_);
  }
}

void Federation::RecordHealthOutcome(const std::string& server, int attempts,
                                     const Status& final_status) {
  if (health_ == nullptr) return;
  // Every intermediate attempt failed retryably by construction of the
  // retry loop; the final attempt counts only when its verdict speaks to
  // server health.
  for (int i = 1; i < attempts; ++i) health_->RecordOutcome(server, false);
  if (final_status.ok()) {
    health_->RecordOutcome(server, true);
  } else if (final_status.IsRetryable()) {
    health_->RecordOutcome(server, false);
  }
}

Federation::BudgetState& Federation::ThreadBudget() {
  static thread_local BudgetState t_budget;
  return t_budget;
}

void Federation::ArmQueryBudget(double deadline_seconds, bool allow_partial) {
  BudgetState& b = ThreadBudget();
  b.owner = this;
  b.deadline_armed = deadline_seconds > 0;
  b.remaining = deadline_seconds;
  b.allow_partial = allow_partial;
}

void Federation::DisarmQueryBudget() {
  BudgetState& b = ThreadBudget();
  b.owner = nullptr;
  b.deadline_armed = false;
  b.remaining = 0;
  b.allow_partial = false;
}

double Federation::RemainingBudget() const {
  const BudgetState& b = ThreadBudget();
  if (b.owner != this || !b.deadline_armed) return -1.0;
  return std::max(0.0, b.remaining);
}

void Federation::ChargeBudget(double seconds) {
  BudgetState& b = ThreadBudget();
  if (b.owner != this || !b.deadline_armed || seconds <= 0) return;
  b.remaining -= seconds;
}

bool Federation::PartialAllowed() const {
  const BudgetState& b = ThreadBudget();
  return b.owner == this && b.allow_partial;
}

void Federation::RecordLostFragment(FragmentLoss loss) {
  if (metrics_ != nullptr) {
    Counter* cell = nullptr;
    {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      auto it = m_.partials_by_reason.find(loss.reason);
      if (it == m_.partials_by_reason.end()) {
        it = m_.partials_by_reason
                 .emplace(loss.reason,
                          metrics_->GetCounter(
                              "xdb_partial_results_total",
                              {{"reason", loss.reason}},
                              "Result fragments abandoned under the "
                              "partial-results policy"))
                 .first;
      }
      cell = it->second;
    }
    cell->Increment();
  }
  NoteRecovery("degraded");
  RunState& rs = ThreadRun();
  if (!ActiveHere(rs)) return;
  rs.run.lost_fragments.push_back(std::move(loss));
}

}  // namespace xdb
