#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/exec/executor.h"

namespace xdb {

/// \brief One inter-DBMS transfer observed during a query run.
///
/// Transfers form a tree: `parent_id` is the transfer during whose producer
/// evaluation this transfer happened (-1 for transfers triggered directly by
/// the top-level query). The timing model composes finish times over this
/// tree (DESIGN.md §5).
struct TransferRecord {
  int id = -1;
  int parent_id = -1;
  std::string src;        // producing DBMS
  std::string dst;        // consuming DBMS
  std::string relation;   // remote relation fetched
  double rows = 0;
  double bytes = 0;       // serialized payload bytes (before wire inflation)
  uint64_t messages = 1;  // batches on the wire
  bool materialized = false;  // consumer wrote it to a local table (CTAS)

  /// Compute performed by the producer to serve this fetch (excluding
  /// compute already attributed to nested fetches).
  ComputeTrace producer_compute;
};

/// \brief Everything observed while executing one top-level query across
/// the federation: the root's compute plus the tree of transfers.
struct RunTrace {
  ComputeTrace root_compute;       // compute on the root (client-facing) DBMS
  std::string root_server;
  std::vector<TransferRecord> transfers;
  std::map<std::string, ComputeTrace> per_server;  // totals, for inspection

  double TotalTransferredBytes() const {
    double b = 0;
    for (const auto& t : transfers) b += t.bytes;
    return b;
  }
  double TotalTransferredRows() const {
    double r = 0;
    for (const auto& t : transfers) r += t.rows;
    return r;
  }
};

}  // namespace xdb
