#pragma once

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/exec/executor.h"

namespace xdb {

/// \brief The q-error of a cardinality (or byte) estimate: the factor by
/// which it missed, symmetric in direction and always >= 1. Both sides are
/// clamped to 1 so empty relations and zero-row actuals stay well-defined.
inline double QError(double est, double act) {
  double e = std::max(est, 1.0);
  double a = std::max(act, 1.0);
  return std::max(e / a, a / e);
}

/// \brief One planning-time estimate joined with its observed outcome.
///
/// Emitted onto the active RunTrace by the operator profiler (one record per
/// profiled operator) and by the fetch path (op == "transfer", one record per
/// delivered transfer whose producing scan was stamped). The q-error is the
/// cardinality error; byte error is derivable from est_bytes/act_bytes.
struct EstimateActual {
  std::string op;      // operator kind ("Scan", "Join", ...) or "transfer"
  std::string server;  // executing DBMS, or "src->dst" link for transfers
  std::string detail;  // operator label / fetched relation (drill-down key)
  double est_input_rows = 0;  // planning-time input cardinality (features)
  double est_rows = 0;
  double act_rows = 0;
  double est_seconds = 0;  // modelled seconds under estimated cardinalities
  double act_seconds = 0;  // modelled seconds under observed cardinalities
  double est_bytes = 0;    // estimated wire/output bytes
  double act_bytes = 0;    // observed wire/output bytes
  double q_error = 1.0;    // QError(est_rows, act_rows)
};

/// \brief One inter-DBMS transfer observed during a query run.
///
/// Transfers form a tree: `parent_id` is the transfer during whose producer
/// evaluation this transfer happened (-1 for transfers triggered directly by
/// the top-level query). The timing model composes finish times over this
/// tree (DESIGN.md §5).
struct TransferRecord {
  int id = -1;
  int parent_id = -1;
  std::string src;        // producing DBMS
  std::string dst;        // consuming DBMS
  std::string relation;   // remote relation fetched
  double rows = 0;
  double bytes = 0;       // bytes charged on the wire (encoded columnar
                          // payload when the federation ships compressed)
  double raw_bytes = 0;   // uncompressed row-format bytes (== bytes unless
                          // the transfer shipped encoded)
  uint64_t messages = 1;  // batches on the wire
  bool encoded = false;   // shipped as compressed column chunks
  bool materialized = false;  // consumer wrote it to a local table (CTAS)
  bool failed = false;        // link dropped mid-transfer; bytes were wasted
  double est_rows = -1;   // planner's row estimate for this transfer
                          // (-1 when the producing scan was never stamped)
  double est_bytes = -1;  // planner's wire-byte estimate (same inflation
                          // basis as `bytes`; -1 when unstamped)

  /// Compute performed by the producer to serve this fetch (excluding
  /// compute already attributed to nested fetches).
  ComputeTrace producer_compute;
};

/// \brief One retried operation (DDL deployment or inter-DBMS fetch):
/// how many attempts it took, how long the modelled backoff waited, and
/// whether it eventually succeeded. Only operations that actually retried
/// or failed are recorded — a clean run has an empty retry log.
struct RetryEvent {
  std::string server;  // DBMS the operation targeted
  std::string op;      // "ddl" | "fetch"
  int attempts = 1;
  double backoff_seconds = 0;  // modelled wait across all retries
  bool succeeded = true;
  std::string error;  // final error message when !succeeded
};

/// \brief One result fragment abandoned under graceful degradation: the
/// consumer substituted an empty relation for a fetch that could not be
/// delivered (producer down, link dead after retries, or the deadline
/// budget ran out) because the query opted into partial results.
struct FragmentLoss {
  std::string relation;  // remote relation whose fetch was abandoned
  std::string server;    // producing DBMS
  std::string consumer;  // DBMS that substituted the empty fragment
  std::string reason;    // "node-down" | "link-drop" | "deadline"
  double est_rows = 0;   // producer's row estimate for the lost fragment
};

/// \brief Per-result completeness annotation. Attached to every XdbReport;
/// a complete result has fraction 1.0 and an empty loss list. Only queries
/// running with `allow_partial` can ever be incomplete.
struct ResultCompleteness {
  bool complete = true;
  /// delivered / (delivered + lost) over the winning round's fragments
  /// (failed rounds' losses were replanned away and don't count).
  double completeness_fraction = 1.0;
  std::vector<FragmentLoss> lost;
};

/// \brief Everything observed while executing one top-level query across
/// the federation: the root's compute plus the tree of transfers, and —
/// when faults struck — the recovery trail (retries, rollbacks, replans).
struct RunTrace {
  ComputeTrace root_compute;       // compute on the root (client-facing) DBMS
  std::string root_server;
  std::vector<TransferRecord> transfers;
  std::map<std::string, ComputeTrace> per_server;  // totals, for inspection

  // --- recovery trail (all zero/empty on a fault-free run) ---
  std::vector<RetryEvent> retries;
  double total_backoff_seconds = 0;   // modelled retry backoff
  double injected_delay_seconds = 0;  // modelled delay charged by faults
  double wasted_attempt_seconds = 0;  // modelled time of failed replanned
                                      // deploy/execution rounds
  int replan_rounds = 0;              // failover re-annotation rounds taken
  std::vector<std::string> excluded_servers;  // placements excluded by
                                              // failover
  /// Fragments abandoned under the partial-results policy (empty unless
  /// the query ran with allow_partial and lost a subtree).
  std::vector<FragmentLoss> lost_fragments;
  /// Most significant recovery action taken: "none" < "retried" <
  /// "rolled-back" < "replanned" < "degraded" < "failed".
  std::string recovery_action = "none";

  /// Estimate-vs-actual ledger for the winning round: transfer records are
  /// always present when plans were stamped; per-operator records appear
  /// when an OperatorProfiler was attached to the executing server.
  std::vector<EstimateActual> estimates;

  /// Worst cardinality q-error across the ledger (0 when it is empty).
  double MaxQError() const {
    double q = 0;
    for (const auto& e : estimates) q = std::max(q, e.q_error);
    return q;
  }

  /// All bytes that hit the wire, delivered or not. Equals
  /// UsefulTransferredBytes() + WastedTransferredBytes().
  double TotalTransferredBytes() const {
    double b = 0;
    for (const auto& t : transfers) b += t.bytes;
    return b;
  }
  /// Bytes of transfers that completed (the payload the consumer used).
  double UsefulTransferredBytes() const {
    double b = 0;
    for (const auto& t : transfers) {
      if (!t.failed) b += t.bytes;
    }
    return b;
  }
  /// Bytes of failed transfers (link dropped mid-flight, or the round was
  /// replanned away) — on the wire for nothing. Zero on a fault-free run.
  double WastedTransferredBytes() const {
    double b = 0;
    for (const auto& t : transfers) {
      if (t.failed) b += t.bytes;
    }
    return b;
  }
  double TotalTransferredRows() const {
    double r = 0;
    for (const auto& t : transfers) r += t.rows;
    return r;
  }
  /// Row-format bytes the same transfers would have cost uncompressed.
  /// Equals TotalTransferredBytes() when nothing shipped encoded.
  double TotalRawTransferredBytes() const {
    double b = 0;
    for (const auto& t : transfers) b += t.raw_bytes;
    return b;
  }
  /// raw/encoded byte ratio over the whole run (1.0 when nothing moved or
  /// nothing shipped encoded).
  double CompressionRatio() const {
    const double total = TotalTransferredBytes();
    return total > 0 ? TotalRawTransferredBytes() / total : 1.0;
  }
};

}  // namespace xdb
