#pragma once

#include <string>

namespace xdb {

/// \brief Per-vendor performance profile of a simulated DBMS engine.
///
/// The paper's testbed mixes PostgreSQL, MariaDB and Hive; their relevant
/// differences (OLAP row-processing speed, query startup, transfer protocol
/// overhead, worker parallelism) are captured here and consumed by the
/// timing model. All row costs are seconds per row at paper scale.
struct EngineProfile {
  std::string vendor = "postgres";

  // Compute costs (seconds/row).
  double scan_row_cost = 2.5e-7;
  double join_row_cost = 4.0e-7;   // per build + probe + output row
  double agg_row_cost = 3.0e-7;
  double sort_row_cost = 5.0e-7;
  double filter_row_cost = 5.0e-8;
  double project_row_cost = 5.0e-8;
  double materialize_row_cost = 6.0e-7;  // writing a local table (CTAS)

  // Per-query fixed startup (seconds). Hive pays multiple seconds here.
  double startup_cost = 0.05;

  // Consumer-side cost of ingesting one row through a remote fetch
  // (FDW cursor / JDBC iterator overhead) and the wire inflation factor of
  // the protocol (binary = 1, text/JDBC > 1).
  double fetch_row_cost = 2.0e-6;
  double wire_inflation = 1.0;

  // Degree of intra-query parallelism the engine can apply to its compute
  // (Presto worker scale-out sets this on the mediator profile).
  int parallelism = 1;

  // Fraction of compute that benefits from parallelism (Amdahl).
  double parallel_fraction = 0.7;

  /// PostgreSQL: fast OLAP-ish row engine, binary transfer protocol.
  static EngineProfile Postgres();

  /// MariaDB: not designed for OLAP (paper §VI-B); slower joins/aggregates.
  static EngineProfile MariaDb();

  /// Hive: high query startup, slow per-row path when run on one node.
  static EngineProfile Hive();

  /// Presto/Trino mediator: fast vectorised engine but JDBC connectors
  /// with high per-row fetch overhead (paper §VI-B).
  static EngineProfile PrestoMediator(int workers);

  /// Garlic-like mediator: a PostgreSQL instance using binary protocols.
  static EngineProfile GarlicMediator();

  /// ScleraDB mediator: naive transfer path, high per-row overheads.
  static EngineProfile ScleraMediator();
};

}  // namespace xdb
