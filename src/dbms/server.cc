#include "src/dbms/server.h"

#include <algorithm>
#include <cmath>

#include "src/common/retry.h"
#include "src/common/str_util.h"
#include "src/common/thread_pool.h"
#include "src/sql/parser.h"

namespace xdb {

namespace {
// Rows per wire batch (FDW cursor fetch size at the scale we model).
constexpr double kRowsPerMessage = 10000.0;

// When an injected link drop aborts a transfer, this fraction of the
// payload is modelled as already on the wire (wasted bytes that still
// count toward transfer accounting and modelled time).
constexpr double kLinkDropFraction = 0.5;

uint64_t MessagesFor(double rows) {
  return static_cast<uint64_t>(std::ceil(rows / kRowsPerMessage)) + 1;
}

// The server whose CREATE TABLE AS the calling thread is currently
// materializing (nullptr otherwise). Thread-local so concurrent sessions on
// one server don't mislabel each other's fetches as explicit movement.
thread_local const DatabaseServer* t_materializing = nullptr;
}  // namespace

bool DatabaseServer::MaterializingHere() const {
  return t_materializing == this;
}

DatabaseServer::CatalogEntry* DatabaseServer::FindEntry(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  auto it = catalog_.find(key);
  return it == catalog_.end() ? nullptr : &it->second;
}

const DatabaseServer::CatalogEntry* DatabaseServer::FindEntry(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  auto it = catalog_.find(key);
  return it == catalog_.end() ? nullptr : &it->second;
}

DatabaseServer::DatabaseServer(std::string name, EngineProfile profile,
                               Federation* fed)
    : name_(std::move(name)), profile_(std::move(profile)), fed_(fed) {}

Status DatabaseServer::CreateBaseTable(const std::string& table_name,
                                       TablePtr table) {
  std::string key = ToLower(table_name);
  CatalogEntry entry;
  entry.kind = EntryKind::kBase;
  entry.stats = ComputeTableStats(*table);
  // Encode the columnar representation at load time: base tables are what
  // scans and wire transfers touch, and chunking them here keeps the first
  // query's hot path free of encode work. Intermediates stay row-only.
  table->EnsureChunked();
  entry.table = std::move(table);
  std::lock_guard<std::mutex> lock(catalog_mu_);
  if (catalog_.count(key)) {
    return Status::CatalogError("relation already exists: " + key);
  }
  catalog_[key] = std::move(entry);
  return Status::OK();
}

bool DatabaseServer::HasRelation(const std::string& relation) const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  return catalog_.count(ToLower(relation)) > 0;
}

std::vector<std::string> DatabaseServer::TransientRelations() const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  std::vector<std::string> out;
  for (const auto& [name, entry] : catalog_) {
    if (entry.kind != EntryKind::kBase) out.push_back(name);
  }
  return out;
}

std::vector<std::string> DatabaseServer::BaseRelations() const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  std::vector<std::string> out;
  for (const auto& [name, entry] : catalog_) {
    if (entry.kind == EntryKind::kBase) out.push_back(name);
  }
  return out;
}

Result<TableStats> DatabaseServer::GetRelationStats(
    const std::string& relation) const {
  const CatalogEntry* entry = FindEntry(ToLower(relation));
  if (entry == nullptr) {
    return Status::CatalogError("unknown relation '" + relation + "' on " +
                                name_);
  }
  if (entry->kind != EntryKind::kBase &&
      entry->kind != EntryKind::kMaterialized) {
    return Status::CatalogError("statistics only exist for stored tables");
  }
  return entry->stats;
}

// ---------------------------------------------------------------------------
// Execution context
// ---------------------------------------------------------------------------

Result<TablePtr> DatabaseServer::Context::GetLocalTable(
    const std::string& table) {
  const CatalogEntry* found = server_->FindEntry(ToLower(table));
  if (found == nullptr) {
    return Status::CatalogError("unknown relation '" + table + "' on " +
                                server_->name_);
  }
  const CatalogEntry& entry = *found;
  if (entry.kind != EntryKind::kBase &&
      entry.kind != EntryKind::kMaterialized) {
    return Status::Internal("relation '" + table +
                            "' is not a stored table; the planner should "
                            "have expanded it");
  }
  return entry.table;
}

Result<TablePtr> DatabaseServer::Context::ForeignFetch(
    const std::string& server, const std::string& relation, double est_rows,
    double est_bytes) {
  Federation* fed = server_->fed_;
  DatabaseServer* remote = fed->GetServer(server);
  if (remote == nullptr) {
    return Status::NetworkError("unknown foreign server: " + server);
  }
  if (!fed->network().IsReachable(server_->name_, server)) {
    return Status::NetworkError("no connectivity between " +
                                server_->name_ + " and " + server);
  }
  double inflation = std::max(server_->profile_.wire_inflation,
                              remote->profile().wire_inflation);
  // The planner's byte estimate is in serialized row-format bytes; put it
  // on the same wire-inflation basis as the observed charge so the byte
  // q-error reflects cardinality/width error, not protocol constants.
  double est_wire_bytes = est_bytes < 0 ? -1 : est_bytes * inflation;

  // One fetch attempt end to end: fault gate, request message, remote
  // evaluation, wire transfer (which an injected link drop can abort
  // mid-flight, wasting the bytes already sent).
  TablePtr table;
  auto attempt_fetch = [&]() -> Status {
    XDB_RETURN_NOT_OK(
        fed->InjectFault(server, FaultOp::kFetch, server_->name_));
    // Request message (the `SELECT * FROM relation` text).
    fed->network().RecordTransfer(server_->name_, server, 128.0, 1);
    int id = fed->PushFetch(server, server_->name_, relation, est_rows,
                            est_wire_bytes);
    Result<TablePtr> result = remote->ServeRemote(relation);
    if (!result.ok()) {
      fed->PopFetch(id, 0, 0, 0, false);
      return result.status();
    }
    TablePtr t = std::move(result).value();
    double raw_bytes = static_cast<double>(t->SerializedSize()) * inflation;
    // Columnar wire: ship the compressed chunk encoding instead of inflated
    // row text. min() guards the (rare) payload whose encoded form is not
    // smaller — the sender would just fall back to the row protocol.
    const bool encoded = fed->wire_format() == WireFormat::kColumnar;
    double bytes =
        encoded ? std::min(raw_bytes,
                           static_cast<double>(t->EncodedSerializedSize()))
                : raw_bytes;
    double rows = static_cast<double>(t->num_rows());
    uint64_t messages = MessagesFor(rows);
    Status drop = fed->InjectFault(server, FaultOp::kTransfer,
                                   server_->name_);
    if (!drop.ok()) {
      // Link dropped mid-transfer: the producer's compute and part of the
      // payload are wasted but still accounted (they really happened).
      double wasted = bytes * kLinkDropFraction;
      uint64_t partial =
          std::max<uint64_t>(1, static_cast<uint64_t>(
                                    static_cast<double>(messages) *
                                    kLinkDropFraction));
      fed->network().RecordTransfer(server, server_->name_, wasted, partial,
                                    encoded);
      fed->PopFetch(id, 0, wasted, partial, false,
                    encoded ? raw_bytes * kLinkDropFraction : -1);
      fed->MarkTransferFailed(id);
      return drop;
    }
    fed->network().RecordTransfer(server, server_->name_, bytes, messages,
                                  encoded);
    fed->PopFetch(id, rows, bytes, messages, server_->MaterializingHere(),
                  encoded ? raw_bytes : -1);
    table = std::move(t);
    return Status::OK();
  };

  // The retry loop stops early when the remaining deadline budget cannot
  // cover the next backoff; only the backoff actually waited is charged.
  RetryOutcome out = RetryWithBackoffBudget(fed->retry_policy(),
                                            attempt_fetch,
                                            fed->RemainingBudget());
  const Status& st = out.status;
  if (out.attempts > 1 || st.IsRetryable()) {
    fed->RecordRetry({server, "fetch", out.attempts, out.backoff_seconds,
                      st.ok(), st.ok() ? std::string() : st.message()});
  }
  fed->RecordHealthOutcome(server, out.attempts, st);
  if (!st.ok()) {
    // Graceful degradation: when the query opted into partial results, an
    // undeliverable non-root fragment becomes an empty relation with the
    // declared schema (available locally through the foreign-table
    // mapping, like an FDW's) so joins and aggregates above it still run
    // over the surviving fragments. The root query itself never passes
    // through ForeignFetch, so the top of the plan cannot be substituted.
    if (st.IsRetryable() && fed->PartialAllowed()) {
      Result<Schema> schema = remote->DescribeRelation(relation);
      if (schema.ok()) {
        FragmentLoss loss;
        loss.relation = relation;
        loss.server = server;
        loss.consumer = server_->name_;
        loss.reason = out.budget_exhausted ? "deadline"
                      : st.code() == StatusCode::kTimeout ? "link-drop"
                                                          : "node-down";
        if (Result<double> est = remote->EstimateRelationRows(relation);
            est.ok()) {
          loss.est_rows = *est;
        }
        fed->RecordLostFragment(std::move(loss));
        return std::make_shared<Table>(*schema);
      }
    }
    return st.WithContext("foreign fetch of " + server + "." + relation +
                          " by " + server_->name_);
  }
  return table;
}

ComputeTrace* DatabaseServer::Context::trace() {
  return server_->fed_->CurrentTrace();
}

int DatabaseServer::Context::exec_threads() const {
  return server_->exec_threads();
}

OperatorProfiler* DatabaseServer::Context::profiler() {
  return server_->profiler();
}

int DatabaseServer::exec_threads() const {
  return exec_threads_ > 0 ? exec_threads_ : DefaultExecThreads();
}

// ---------------------------------------------------------------------------
// Resolution & planning
// ---------------------------------------------------------------------------

Result<PlanPtr> DatabaseServer::Resolve(const std::string& db,
                                        const std::string& table) {
  if (!db.empty() && !EqualsIgnoreCase(db, name_)) {
    return Status::CatalogError("server " + name_ +
                                " cannot resolve remote qualifier '" + db +
                                "'");
  }
  std::string key = ToLower(table);
  CatalogEntry* found = FindEntry(key);
  if (found == nullptr) {
    return Status::CatalogError("unknown relation '" + key + "' on " +
                                name_);
  }
  CatalogEntry& entry = *found;
  switch (entry.kind) {
    case EntryKind::kBase:
    case EntryKind::kMaterialized:
      return PlanNode::MakeScan(name_, key, key, entry.table->schema(),
                                entry.stats);
    case EntryKind::kView: {
      Planner planner(this);
      return planner.Plan(*entry.view_def);
    }
    case EntryKind::kForeign: {
      if (!entry.schema_cached) {
        DatabaseServer* remote = fed_->GetServer(entry.server);
        if (remote == nullptr) {
          return Status::NetworkError("unknown foreign server: " +
                                      entry.server);
        }
        fed_->RecordControlMessage(name_, entry.server);
        XDB_ASSIGN_OR_RETURN(Schema remote_schema,
                             remote->DescribeRelation(
                                 entry.remote_relation));
        // A column list in CREATE FOREIGN TABLE renames the columns.
        if (!entry.cached_schema.fields().empty()) {
          if (entry.cached_schema.num_fields() !=
              remote_schema.num_fields()) {
            return Status::CatalogError(
                "foreign table '" + key + "' declares " +
                std::to_string(entry.cached_schema.num_fields()) +
                " columns but remote relation has " +
                std::to_string(remote_schema.num_fields()));
          }
          Schema renamed;
          for (size_t i = 0; i < remote_schema.num_fields(); ++i) {
            renamed.AddField({entry.cached_schema.field(i).name,
                              remote_schema.field(i).type});
          }
          entry.cached_schema = std::move(renamed);
        } else {
          entry.cached_schema = std::move(remote_schema);
        }
        fed_->RecordControlMessage(name_, entry.server);
        XDB_ASSIGN_OR_RETURN(double rows, remote->EstimateRelationRows(
                                              entry.remote_relation));
        entry.stats.row_count = rows;
        entry.stats.columns.assign(entry.cached_schema.num_fields(),
                                   ColumnStats{});
        entry.schema_cached = true;
      }
      PlanPtr scan = PlanNode::MakeScan(name_, key, key,
                                        entry.cached_schema, entry.stats);
      scan->is_foreign = true;
      scan->foreign_server = entry.server;
      scan->remote_relation = entry.remote_relation;
      return scan;
    }
  }
  return Status::Internal("unreachable");
}

Result<PlanPtr> DatabaseServer::PlanQuery(const sql::SelectStmt& stmt) {
  Planner planner(this);
  XDB_ASSIGN_OR_RETURN(PlanPtr plan, planner.Plan(stmt));
  // Stamp planning-time estimates on every node before execution: the
  // executor threads them into transfer records, and an attached profiler
  // joins them with observed cardinalities (estimation accountability).
  // One bottom-up pass over a small plan — observationally free.
  Estimator().StampEstimates(*plan);
  return plan;
}

// ---------------------------------------------------------------------------
// Declarative interface
// ---------------------------------------------------------------------------

namespace {
const char* OperatorName(const OperatorStats& s) {
  switch (s.kind) {
    case PlanKind::kScan:
      return s.is_foreign ? "ForeignScan" : "Scan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kLimit:
      return "Limit";
    case PlanKind::kPlaceholder:
      return "Placeholder";
  }
  return "Unknown";
}
}  // namespace

Result<TablePtr> DatabaseServer::ExecutePlanHere(const PlanNode& plan) {
  Context ctx(this);
  OperatorProfiler* prof = profiler();
  if (prof == nullptr) return ExecutePlan(plan, &ctx);
  // With a profiler attached, join each newly-profiled operator's stamped
  // estimate with its observed cardinality and bank the divergence on the
  // active run. The watermark scopes the join to this statement, so a
  // profiler attached across a whole bench run never double-emits.
  size_t mark = prof->records().size();
  Result<TablePtr> result = ExecutePlan(plan, &ctx);
  if (result.ok()) {
    for (size_t i = mark; i < prof->records().size(); ++i) {
      const OperatorStats& s = prof->records()[i];
      if (s.est_rows < 0) continue;
      EstimateActual ea;
      ea.op = OperatorName(s);
      ea.server = name_;
      ea.detail = s.label;
      ea.est_input_rows = s.est_input_rows;
      ea.est_rows = s.est_rows;
      ea.act_rows = s.output_rows;
      ea.est_seconds = OperatorProfiler::EstimatedSeconds(s, profile_);
      ea.act_seconds = OperatorProfiler::ModelledSeconds(s, profile_);
      ea.est_bytes = s.est_bytes;
      // Per-operator output bytes are not observed (intermediates are
      // row-format); observed rows at the planned width keeps the byte
      // fields cardinality-accountable without serializing every operator.
      ea.act_bytes = s.output_rows * (s.est_rows > 0
                                          ? s.est_bytes / s.est_rows
                                          : 0.0);
      fed_->RecordEstimate(std::move(ea));
    }
  }
  return result;
}

Result<TablePtr> DatabaseServer::ExecuteQuery(const std::string& sql) {
  XDB_ASSIGN_OR_RETURN(sql::SelectPtr stmt, sql::ParseSelect(sql));
  XDB_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(*stmt));
  XDB_ASSIGN_OR_RETURN(TablePtr result, ExecutePlanHere(*plan));
  fed_->CurrentTrace()->output_rows +=
      static_cast<double>(result->num_rows());
  return result;
}

Result<TablePtr> DatabaseServer::ServeRemote(const std::string& relation) {
  XDB_ASSIGN_OR_RETURN(PlanPtr plan, Resolve("", relation));
  // Resolve() hands back unstamped plans (base scans, expanded views);
  // stamp here so delegated-view evaluation is accountable too.
  Estimator().StampEstimates(*plan);
  return ExecutePlanHere(*plan);
}

Result<TablePtr> DatabaseServer::ExecuteSql(const std::string& sql) {
  XDB_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseStatement(sql));
  TablePtr out;
  XDB_RETURN_NOT_OK(ExecuteParsed(*stmt, &out));
  if (!out) out = std::make_shared<Table>();
  return out;
}

Status DatabaseServer::ExecuteDdl(const std::string& sql) {
  XDB_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseStatement(sql));
  if (stmt->kind == sql::StatementKind::kSelect) {
    return Status::InvalidArgument("expected DDL, got a SELECT");
  }
  return ExecuteParsed(*stmt, nullptr);
}

Status DatabaseServer::ExecuteParsed(const sql::Statement& stmt,
                                     TablePtr* out) {
  switch (stmt.kind) {
    case sql::StatementKind::kSelect: {
      XDB_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(*stmt.select));
      XDB_ASSIGN_OR_RETURN(TablePtr result, ExecutePlanHere(*plan));
      fed_->CurrentTrace()->output_rows +=
          static_cast<double>(result->num_rows());
      if (out) *out = std::move(result);
      return Status::OK();
    }
    case sql::StatementKind::kExplain: {
      if (stmt.explain_analyze) {
        // EXPLAIN ANALYZE: execute the query with a per-operator profiler
        // attached and annotate each plan line with observed rows,
        // selectivity, morsel batches, and modelled operator seconds.
        XDB_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(*stmt.select));
        OperatorProfiler prof;
        OperatorProfiler* saved = profiler_.exchange(&prof);
        Result<TablePtr> result = ExecutePlanHere(*plan);
        profiler_.store(saved);
        XDB_RETURN_NOT_OK(result.status());
        fed_->CurrentTrace()->output_rows +=
            static_cast<double>((*result)->num_rows());
        auto table = std::make_shared<Table>(
            Schema({{"plan", TypeId::kString}}));
        for (const auto& line : prof.Render(profile_)) {
          table->AppendRow({Value::String(line)});
        }
        double modelled = 0;
        for (const auto& s : prof.records()) {
          modelled += OperatorProfiler::ModelledSeconds(s, profile_);
        }
        char summary[128];
        std::snprintf(summary, sizeof(summary),
                      "(actual rows=%lld, modelled compute=%.6f s)",
                      static_cast<long long>((*result)->num_rows()),
                      modelled);
        table->AppendRow({Value::String(summary)});
        if (out) *out = std::move(table);
        return Status::OK();
      }
      // EXPLAIN as a statement: one text row per plan line, plus a cost
      // summary — roughly what a real DBMS prints.
      XDB_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(*stmt.select));
      Estimator est;
      PlanEstimate e = est.Estimate(*plan);
      auto table = std::make_shared<Table>(
          Schema({{"plan", TypeId::kString}}));
      for (const auto& line : Split(plan->ToString(), '\n')) {
        if (!line.empty()) table->AppendRow({Value::String(line)});
      }
      char summary[128];
      std::snprintf(summary, sizeof(summary),
                    "(cost=%.4f s, rows=%.0f, width=%.0f)",
                    ModeledPlanCost(*plan), e.rows, e.row_width);
      table->AppendRow({Value::String(summary)});
      if (out) *out = std::move(table);
      return Status::OK();
    }
    case sql::StatementKind::kCreateView: {
      std::string key = ToLower(stmt.relation_name);
      if (FindEntry(key) != nullptr) {
        return Status::CatalogError("relation already exists: " + key);
      }
      // Validate now so delegation errors surface at DDL time, as they
      // would on a real DBMS. Planning resolves other relations, so it runs
      // outside the catalog lock; the insert re-checks existence.
      XDB_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(*stmt.select));
      CatalogEntry entry;
      entry.kind = EntryKind::kView;
      entry.view_def = stmt.select;
      entry.cached_schema = plan->output_schema;
      entry.schema_cached = true;
      std::lock_guard<std::mutex> lock(catalog_mu_);
      if (catalog_.count(key)) {
        return Status::CatalogError("relation already exists: " + key);
      }
      catalog_[key] = std::move(entry);
      return Status::OK();
    }
    case sql::StatementKind::kCreateForeignTable: {
      std::string key = ToLower(stmt.relation_name);
      if (fed_->GetServer(stmt.server) == nullptr) {
        return Status::CatalogError("unknown SERVER: " + stmt.server);
      }
      CatalogEntry entry;
      entry.kind = EntryKind::kForeign;
      entry.server = stmt.server;
      entry.remote_relation = ToLower(stmt.remote_relation);
      for (const auto& c : stmt.column_names) {
        entry.cached_schema.AddField({ToLower(c), TypeId::kInt64});
      }
      entry.schema_cached = false;  // resolved lazily on first use
      std::lock_guard<std::mutex> lock(catalog_mu_);
      if (catalog_.count(key)) {
        return Status::CatalogError("relation already exists: " + key);
      }
      catalog_[key] = std::move(entry);
      return Status::OK();
    }
    case sql::StatementKind::kCreateTableAs: {
      std::string key = ToLower(stmt.relation_name);
      if (FindEntry(key) != nullptr) {
        return Status::CatalogError("relation already exists: " + key);
      }
      XDB_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(*stmt.select));
      const DatabaseServer* saved = t_materializing;
      t_materializing = this;
      Result<TablePtr> result = ExecutePlanHere(*plan);
      t_materializing = saved;
      XDB_RETURN_NOT_OK(result.status());
      TablePtr table = std::move(result).value();
      fed_->CurrentTrace()->materialized_rows +=
          static_cast<double>(table->num_rows());
      CatalogEntry entry;
      entry.kind = EntryKind::kMaterialized;
      entry.stats = ComputeTableStats(*table);
      entry.table = std::move(table);
      std::lock_guard<std::mutex> lock(catalog_mu_);
      if (catalog_.count(key)) {
        return Status::CatalogError("relation already exists: " + key);
      }
      catalog_[key] = std::move(entry);
      return Status::OK();
    }
    case sql::StatementKind::kDrop: {
      std::string key = ToLower(stmt.relation_name);
      std::lock_guard<std::mutex> lock(catalog_mu_);
      auto it = catalog_.find(key);
      if (it == catalog_.end()) {
        if (stmt.if_exists) return Status::OK();
        return Status::CatalogError("unknown relation: " + key);
      }
      bool kind_ok =
          (stmt.relation_kind == sql::RelationKind::kView &&
           it->second.kind == EntryKind::kView) ||
          (stmt.relation_kind == sql::RelationKind::kForeignTable &&
           it->second.kind == EntryKind::kForeign) ||
          (stmt.relation_kind == sql::RelationKind::kTable &&
           (it->second.kind == EntryKind::kBase ||
            it->second.kind == EntryKind::kMaterialized));
      if (!kind_ok) {
        return Status::CatalogError("relation '" + key +
                                    "' is not of the dropped kind");
      }
      catalog_.erase(it);
      return Status::OK();
    }
  }
  return Status::Internal("unreachable statement kind");
}

// ---------------------------------------------------------------------------
// Metadata & costing interface
// ---------------------------------------------------------------------------

Result<Schema> DatabaseServer::DescribeRelation(const std::string& relation) {
  std::string key = ToLower(relation);
  CatalogEntry* found = FindEntry(key);
  if (found == nullptr) {
    return Status::CatalogError("unknown relation '" + key + "' on " +
                                name_);
  }
  CatalogEntry& entry = *found;
  if (entry.kind == EntryKind::kBase ||
      entry.kind == EntryKind::kMaterialized) {
    return entry.table->schema();
  }
  if (entry.schema_cached) return entry.cached_schema;
  XDB_ASSIGN_OR_RETURN(PlanPtr plan, Resolve("", key));
  return plan->output_schema;
}

Result<double> DatabaseServer::EstimateRelationRows(
    const std::string& relation) {
  std::string key = ToLower(relation);
  CatalogEntry* found = FindEntry(key);
  if (found == nullptr) {
    return Status::CatalogError("unknown relation '" + key + "' on " +
                                name_);
  }
  CatalogEntry& entry = *found;
  if (entry.kind == EntryKind::kBase ||
      entry.kind == EntryKind::kMaterialized) {
    return entry.stats.row_count;
  }
  XDB_ASSIGN_OR_RETURN(PlanPtr plan, Resolve("", key));
  Estimator est;
  return est.Estimate(*plan).rows;
}

double DatabaseServer::ModeledPlanCost(const PlanNode& plan) const {
  Estimator est;
  double cost = 0;
  // Recursive walk; each node contributes rows x profile weight.
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& node) {
    for (const auto& c : node.children) walk(*c);
    PlanEstimate e = est.Estimate(node);
    switch (node.kind) {
      case PlanKind::kScan:
        cost += e.rows * (node.is_foreign ? profile_.fetch_row_cost
                                          : profile_.scan_row_cost);
        break;
      case PlanKind::kFilter:
        cost += est.Estimate(*node.children[0]).rows *
                profile_.filter_row_cost;
        break;
      case PlanKind::kProject:
        cost += e.rows * profile_.project_row_cost;
        break;
      case PlanKind::kJoin: {
        double l = est.Estimate(*node.children[0]).rows;
        double r = est.Estimate(*node.children[1]).rows;
        // Joining against a pipelined foreign stream is costlier than a
        // local relation: the engine has no statistics and cannot pick
        // build sides, and a large stream risks rescans (the paper's
        // rationale for explicit movement). Streams that dwarf the local
        // side are penalised sharply — this is what tips Eq. 1 towards
        // explicit movement for large inputs, reproducing Table IV's mix.
        auto stream_penalty = [&](const PlanNode& c, double own_rows,
                                  double other_rows) {
          bool streamed =
              (c.kind == PlanKind::kPlaceholder && c.placeholder_foreign) ||
              (c.kind == PlanKind::kScan && c.is_foreign);
          if (!streamed) return 1.0;
          return own_rows > other_rows / 2 ? 5.0 : 1.5;
        };
        cost += (l * stream_penalty(*node.children[0], l, r) +
                 r * stream_penalty(*node.children[1], r, l) + e.rows) *
                profile_.join_row_cost;
        break;
      }
      case PlanKind::kAggregate:
        cost += (est.Estimate(*node.children[0]).rows + e.rows) *
                profile_.agg_row_cost;
        break;
      case PlanKind::kSort: {
        double n = e.rows;
        cost += n * std::log2(n + 2.0) * profile_.sort_row_cost;
        break;
      }
      case PlanKind::kLimit:
        break;
      case PlanKind::kPlaceholder:
        // Reading the "?" input: a foreign stream pays the per-row fetch
        // overhead; a materialised input is a plain local scan.
        cost += e.rows * (node.placeholder_foreign ? profile_.fetch_row_cost
                                                   : profile_.scan_row_cost);
        break;
    }
  };
  walk(plan);
  return cost + profile_.startup_cost;
}

Result<ExplainResult> DatabaseServer::Explain(const std::string& sql) {
  std::string text = Trim(sql);
  if (StartsWith(ToUpper(text), "EXPLAIN")) {
    text = Trim(text.substr(7));
  }
  XDB_ASSIGN_OR_RETURN(sql::SelectPtr stmt, sql::ParseSelect(text));
  XDB_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(*stmt));
  Estimator est;
  PlanEstimate e = est.Estimate(*plan);
  ExplainResult out;
  out.cost_seconds = ModeledPlanCost(*plan);
  out.est_rows = e.rows;
  out.est_bytes = e.bytes();
  return out;
}

}  // namespace xdb
