#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <string>

#include "src/common/result.h"
#include "src/dbms/engine_profile.h"
#include "src/dbms/federation.h"
#include "src/exec/executor.h"
#include "src/exec/profile.h"
#include "src/plan/planner.h"
#include "src/sql/ast.h"

namespace xdb {

/// \brief Output of the EXPLAIN interface, consumed by XDB's "consulting"
/// cost probes (paper Section IV-B-2).
struct ExplainResult {
  double cost_seconds = 0;  // modelled local execution cost
  double est_rows = 0;      // estimated result cardinality
  double est_bytes = 0;     // estimated result volume
};

/// \brief A simulated autonomous DBMS.
///
/// The server exposes exactly what the paper assumes of component DBMSes: a
/// declarative SQL interface (queries + short-lived DDL), an EXPLAIN-style
/// costing interface, and a SQL/MED foreign-table implementation that lets
/// it read relations living on other servers. It is a black box otherwise —
/// it plans and executes delegated statements with its *own* optimizer.
///
/// Concurrency: catalog map operations (lookup/insert/erase/listing) are
/// mutex-guarded so concurrent sessions may deploy and drop their own
/// namespaced relations on one server. Entry *contents* are accessed
/// unlocked: base/materialized/view entries are immutable once created, and
/// a foreign entry's lazily-resolved schema is only ever touched by the one
/// query that deployed it (transient relations are per-query named). The
/// CTAS "materializing" marker is thread-local, so one session's explicit
/// movement never mislabels another session's concurrent fetches.
class DatabaseServer : public RelationResolver {
 public:
  DatabaseServer(std::string name, EngineProfile profile, Federation* fed);

  const std::string& name() const { return name_; }
  const EngineProfile& profile() const { return profile_; }

  /// Sets the morsel-parallel worker budget for this server's executor.
  /// 0 (the default) resolves to the hardware concurrency; 1 forces the
  /// legacy single-threaded path. Wall-clock only — modelled times, traces,
  /// and results are identical for every setting.
  void set_exec_threads(int n) { exec_threads_ = n; }

  /// Resolved worker count (never 0).
  int exec_threads() const;

  /// Attaches a per-operator profiler to this server's executor (nullptr —
  /// the default — detaches; the executor then pays one pointer compare per
  /// plan node). EXPLAIN ANALYZE attaches one internally for the statement
  /// it executes; benches attach one across whole runs. Observational only.
  void set_profiler(OperatorProfiler* profiler) {
    profiler_.store(profiler, std::memory_order_release);
  }
  OperatorProfiler* profiler() const {
    return profiler_.load(std::memory_order_acquire);
  }

  // --- storage bootstrap (out-of-band; not part of the query interface) ---

  /// Loads a base table and computes its statistics (ANALYZE).
  Status CreateBaseTable(const std::string& table_name, TablePtr table);

  // --- declarative interface (what XDB and mediators are allowed to use) --

  /// Executes any supported statement; SELECT returns rows, DDL returns an
  /// empty table.
  Result<TablePtr> ExecuteSql(const std::string& sql);

  /// Executes a SELECT.
  Result<TablePtr> ExecuteQuery(const std::string& sql);

  /// Executes a DDL statement (CREATE VIEW / FOREIGN TABLE / TABLE AS,
  /// DROP ...).
  Status ExecuteDdl(const std::string& sql);

  /// EXPLAIN: cost and cardinality estimate without executing.
  Result<ExplainResult> Explain(const std::string& sql);

  /// Schema of a catalogued relation (metadata interface).
  Result<Schema> DescribeRelation(const std::string& relation);

  /// Row-count estimate for a catalogued relation.
  Result<double> EstimateRelationRows(const std::string& relation);

  /// True if the relation exists in this server's catalog.
  bool HasRelation(const std::string& relation) const;

  /// Names of short-lived relations (views/foreign/materialised) — used by
  /// the delegation engine's cleanup path and by tests.
  std::vector<std::string> TransientRelations() const;

  /// Names of base tables (the catalog-browsing metadata interface XDB's
  /// preparation phase uses to build the Global-as-a-View schema).
  std::vector<std::string> BaseRelations() const;

  /// Full statistics for a base/materialised relation.
  Result<TableStats> GetRelationStats(const std::string& relation) const;

  // --- server-to-server path (invoked via Federation on foreign scans) ---

  /// Serves `SELECT * FROM relation` to a peer. The federation has already
  /// pushed a producer trace frame; compute lands there.
  Result<TablePtr> ServeRemote(const std::string& relation);

  // --- RelationResolver (local names; used by the local planner) ---
  Result<PlanPtr> Resolve(const std::string& db,
                          const std::string& table) override;

  /// Plans a SELECT with this server's local optimizer.
  Result<PlanPtr> PlanQuery(const sql::SelectStmt& stmt);

  /// Modelled local cost of executing a plan (used by Explain).
  double ModeledPlanCost(const PlanNode& plan) const;

 private:
  enum class EntryKind { kBase, kMaterialized, kView, kForeign };

  struct CatalogEntry {
    EntryKind kind = EntryKind::kBase;
    TablePtr table;          // kBase / kMaterialized
    TableStats stats;        // kBase / kMaterialized
    sql::SelectPtr view_def; // kView
    std::string server;           // kForeign: remote DBMS
    std::string remote_relation;  // kForeign
    Schema cached_schema;    // kView / kForeign (lazily filled)
    bool schema_cached = false;
  };

  /// ExecContext wired to this server + the federation's trace stack.
  class Context : public ExecContext {
   public:
    explicit Context(DatabaseServer* server) : server_(server) {}
    Result<TablePtr> GetLocalTable(const std::string& table) override;
    Result<TablePtr> ForeignFetch(const std::string& server,
                                  const std::string& relation,
                                  double est_rows = -1,
                                  double est_bytes = -1) override;
    ComputeTrace* trace() override;
    int exec_threads() const override;
    OperatorProfiler* profiler() override;

   private:
    DatabaseServer* server_;
  };

  Result<TablePtr> ExecutePlanHere(const PlanNode& plan);
  Status ExecuteParsed(const sql::Statement& stmt, TablePtr* out);

  /// Node-stable pointer to the entry for `key` (already lowercased), or
  /// nullptr when absent. The lock covers only the map lookup; see the
  /// class comment for why entry contents are safe to use unlocked.
  CatalogEntry* FindEntry(const std::string& key);
  const CatalogEntry* FindEntry(const std::string& key) const;

  /// True while the *calling thread* materializes a CTAS on this server
  /// (marks its foreign fetches as explicit-movement transfers).
  bool MaterializingHere() const;

  std::string name_;
  EngineProfile profile_;
  Federation* fed_;
  mutable std::mutex catalog_mu_;  // guards catalog_ map operations
  std::map<std::string, CatalogEntry> catalog_;
  int exec_threads_ = 0;  // 0 = hardware concurrency
  std::atomic<OperatorProfiler*> profiler_{nullptr};

  friend class Context;
};

}  // namespace xdb
