#include "src/dbms/engine_profile.h"

namespace xdb {

EngineProfile EngineProfile::Postgres() {
  EngineProfile p;
  p.vendor = "postgres";
  p.scan_row_cost = 1.5e-7;
  p.join_row_cost = 2.5e-7;
  p.agg_row_cost = 2.5e-7;
  p.sort_row_cost = 4.0e-7;
  return p;
}

EngineProfile EngineProfile::MariaDb() {
  EngineProfile p;
  p.vendor = "mariadb";
  p.scan_row_cost = 2.5e-7;
  p.join_row_cost = 7.0e-7;   // nested-loop-leaning OLTP engine
  p.agg_row_cost = 5.0e-7;
  p.sort_row_cost = 7.0e-7;
  p.fetch_row_cost = 3.0e-6;
  return p;
}

EngineProfile EngineProfile::Hive() {
  EngineProfile p;
  p.vendor = "hive";
  p.scan_row_cost = 5.0e-7;
  p.join_row_cost = 8.0e-7;
  p.agg_row_cost = 6.0e-7;
  p.sort_row_cost = 9.0e-7;
  p.startup_cost = 8.0;       // MR/Tez job launch, single node
  p.fetch_row_cost = 5.0e-6;  // no binary wire protocol
  p.wire_inflation = 1.6;
  return p;
}

EngineProfile EngineProfile::PrestoMediator(int workers) {
  EngineProfile p;
  p.vendor = "presto";
  p.scan_row_cost = 1.0e-7;   // vectorised execution
  p.join_row_cost = 1.5e-7;
  p.agg_row_cost = 1.2e-7;
  p.sort_row_cost = 2.0e-7;
  p.startup_cost = 1.0;       // coordinator scheduling
  p.fetch_row_cost = 4.0e-6;  // JDBC connector row iteration (paper §VI-B)
  p.wire_inflation = 2.2;     // serialized text/JDBC representation
  p.parallelism = workers;
  p.parallel_fraction = 0.85;
  return p;
}

EngineProfile EngineProfile::GarlicMediator() {
  EngineProfile p = Postgres();
  p.vendor = "garlic";
  // A PostgreSQL mediator: binary protocol (wire_inflation 1) but FDW
  // cursor overhead on every ingested row.
  p.fetch_row_cost = 2.0e-6;
  return p;
}

EngineProfile EngineProfile::ScleraMediator() {
  EngineProfile p;
  p.vendor = "sclera";
  p.scan_row_cost = 6.0e-7;
  p.join_row_cost = 1.2e-6;
  p.agg_row_cost = 8.0e-7;
  p.sort_row_cost = 1.0e-6;
  p.startup_cost = 0.5;
  p.fetch_row_cost = 1.0e-5;   // row-at-a-time driver loop
  p.wire_inflation = 2.5;
  p.materialize_row_cost = 4.0e-6;  // INSERT-based loading
  return p;
}

}  // namespace xdb
