#pragma once

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/retry.h"
#include "src/dbms/engine_profile.h"
#include "src/dbms/health.h"
#include "src/dbms/run_trace.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"
#include "src/obs/query_log.h"
#include "src/obs/span.h"
#include "src/testing/fault_injector.h"

namespace xdb {

class DatabaseServer;

/// \brief How inter-DBMS transfers are shipped on the simulated wire.
enum class WireFormat : uint8_t {
  /// Classic row-format text protocol: bytes = sum of row serialized sizes
  /// times the engine-pair wire inflation. The default; all accounting is
  /// bit-identical to before the columnar wire existed.
  kRawRows,
  /// Compressed column chunks (dictionary/RLE; see ColumnChunk): bytes =
  /// the table's encoded size, with no text-protocol inflation. Always <=
  /// the raw-row bytes for the same payload; transfer records additionally
  /// carry the raw byte count so compression is measurable per transfer.
  kColumnar,
};

/// \brief The federation: the set of autonomous DBMS servers plus the
/// simulated network between them.
///
/// The federation is also the run recorder: while a top-level query executes
/// it maintains a stack of compute-trace frames so that each inter-DBMS fetch
/// is attributed to its producing server and nests correctly under the fetch
/// that triggered it (RunTrace's transfer tree).
///
/// Concurrency: run-recording state is *thread-local* — each serving thread
/// records its own query's run independently, so concurrent sessions sharing
/// one federation never interleave their traces (BeginRun/FinishRun must be
/// called on the thread that executes the query, which the single-threaded
/// query systems already guarantee). Topology mutation (AddServer/SetNetwork)
/// and observability attachment (SetSpanRecorder/SetMetricsRegistry/...) are
/// setup-time only; the lazily-memoized labeled metric cells are mutex-
/// guarded so concurrent runs may flush them safely.
class Federation {
 public:
  Federation();
  ~Federation();

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  /// Creates and registers a server; the federation owns it.
  DatabaseServer* AddServer(const std::string& name,
                            EngineProfile profile);

  /// Returns nullptr when unknown.
  DatabaseServer* GetServer(const std::string& name) const;

  std::vector<std::string> ServerNames() const;

  Network& network() { return network_; }
  const Network& network() const { return network_; }
  void SetNetwork(Network net) {
    network_ = std::move(net);
    network_.set_fault_injector(injector_);
    network_.set_metrics(metrics_);
  }

  /// Wire format for inter-DBMS data transfers (setup-time only; benches
  /// flip it per testbed pass). Defaults to kRawRows, which keeps every
  /// byte count bit-identical to the pre-columnar accounting.
  void set_wire_format(WireFormat format) { wire_format_ = format; }
  WireFormat wire_format() const { return wire_format_; }

  // --- observability (no-ops unless a recorder/registry is attached) ---

  /// Attaches a span recorder (nullptr detaches — the default). While
  /// attached, every query run yields a hierarchical timeline: the systems
  /// open phase spans, the federation opens one span per inter-DBMS fetch
  /// and per retry. Recording is observational only: modelled seconds,
  /// transfer bytes, and results are bit-identical with and without it.
  void SetSpanRecorder(SpanRecorder* recorder) { spans_ = recorder; }

  /// The recorder the *calling thread* should use: the thread override when
  /// one is set (concurrent sessions each record their own timeline — a
  /// single SpanRecorder's open-span stack cannot be shared across threads),
  /// otherwise the federation-wide recorder.
  SpanRecorder* span_recorder() const;

  /// Sets (nullptr clears) the calling thread's span-recorder override.
  /// Scoped by the serving layer around each query it runs.
  static void SetThreadSpanRecorder(SpanRecorder* recorder);

  /// Attaches a metrics registry (nullptr detaches — the default; pass
  /// &MetricsRegistry::Global() for process-wide exposition). Federation
  /// counters: fetches, useful/wasted transferred bytes, retries, backoff,
  /// rollbacks, replans, injected faults — each both as a process-wide
  /// total and as per-`{server=...}` / per-`{link="src->dst"}` labeled
  /// series (DESIGN.md §8 label-cardinality rules). Also handed to the
  /// network for per-message and per-link accounting.
  void SetMetricsRegistry(MetricsRegistry* registry);
  MetricsRegistry* metrics() const { return metrics_; }

  /// Attaches a query-history log (nullptr detaches — the default). The
  /// query systems (XdbSystem, MediatorSystem) bank one QueryStats record
  /// per top-level query here. Observational only.
  void SetQueryLog(QueryLog* log) { query_log_ = log; }
  QueryLog* query_log() const { return query_log_; }

  /// Raises the federation-level counter for one completed replan round
  /// (failover accounting lives in XdbSystem; the counter lives here so
  /// every system sharing the federation reports to one place).
  void CountReplanRounds(int rounds);

  /// Counts one issued DDL statement on `server` (delegation deploy /
  /// cleanup path) under `xdb_delegation_ddl_total{server=...}`.
  void CountDdl(const std::string& server);

  // --- fault injection & retry (no-ops unless an injector is attached) ---

  /// Attaches a fault injector (nullptr detaches). The injector is also
  /// handed to the network for slow-link degradation. The caller keeps
  /// ownership and must outlive the federation's use.
  void SetFaultInjector(FaultInjector* injector) {
    injector_ = injector;
    network_.set_fault_injector(injector);
  }
  FaultInjector* fault_injector() const { return injector_; }

  /// Consults the injector for an operation on `server` (peer = other link
  /// endpoint for fetches/transfers). OK when no injector is attached.
  /// Modelled delay charged by fired faults lands on the active run.
  Status InjectFault(const std::string& server, FaultOp op,
                     const std::string& peer = std::string());

  /// Federation-wide retry policy used by the delegation engine's DDL path
  /// and the servers' foreign-fetch path.
  void set_retry_policy(RetryPolicy policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Appends a retry event to the active run (dropped when none).
  void RecordRetry(RetryEvent event);

  /// Raises the active run's recovery action if `action` outranks it
  /// ("none" < "retried" < "rolled-back" < "replanned" < "degraded" <
  /// "failed").
  void NoteRecovery(const std::string& action);

  /// Marks a closed transfer record as failed (link dropped mid-transfer).
  void MarkTransferFailed(int id);

  // --- per-server health & circuit breakers ---

  /// Attaches a health tracker (nullptr detaches — the default). Retry
  /// sites feed operation outcomes into it passively; XdbSystem consults
  /// it when planning to route around open breakers. The caller keeps
  /// ownership and must outlive the federation's use.
  void SetHealthTracker(HealthTracker* tracker);
  HealthTracker* health_tracker() const { return health_; }

  /// Feeds one retried operation's outcome into the attached tracker:
  /// `attempts - 1` retryable failures plus the final outcome. The final
  /// status counts as a failure only when itself retryable — a catalog or
  /// parse error says nothing about the server's health. No-op when no
  /// tracker is attached.
  void RecordHealthOutcome(const std::string& server, int attempts,
                           const Status& final_status);

  // --- per-query degradation budget (thread-local, armed by the query
  //     systems around each top-level query) ---

  /// Arms the calling thread's modelled-time deadline budget and partial-
  /// results policy for one top-level query. `deadline_seconds <= 0` means
  /// no deadline (allow_partial may still be set). Always pair with
  /// DisarmQueryBudget.
  void ArmQueryBudget(double deadline_seconds, bool allow_partial);
  void DisarmQueryBudget();

  /// Remaining modelled budget of the calling thread's query, clamped at
  /// zero; negative when no deadline is armed (unlimited).
  double RemainingBudget() const;

  /// Deducts modelled seconds from the armed budget (no-op when none).
  /// Retry backoff and injected fault delay charge automatically through
  /// RecordRetry/InjectFault; the query systems charge planning phases and
  /// failed failover rounds explicitly.
  void ChargeBudget(double seconds);

  /// Whether the calling thread's query opted into partial results.
  bool PartialAllowed() const;

  /// Records a fragment abandoned under the partial-results policy on the
  /// active run: notes the "degraded" recovery action and bumps
  /// xdb_partial_results_total{reason=...}.
  void RecordLostFragment(FragmentLoss loss);

  // --- run recording (thread-local: one active run per serving thread) ---

  /// Starts recording a top-level query run rooted at `root_server` on the
  /// calling thread.
  void BeginRun(const std::string& root_server);

  /// Ends recording and returns everything observed on the calling thread.
  RunTrace FinishRun();

  /// Whether the calling thread has an active run on this federation.
  bool run_active() const;

  /// The compute-trace frame rows should currently be attributed to.
  ComputeTrace* CurrentTrace();

  /// Opens a transfer record for a fetch of `relation` from `src` by `dst`
  /// and pushes a fresh producer-compute frame. Returns the record id.
  /// `est_rows`/`est_bytes` are the planner's stamped estimates for the
  /// transfer (wire-inflation basis for bytes); -1 means unstamped, and the
  /// transfer then never contributes to the estimate ledger.
  int PushFetch(const std::string& src, const std::string& dst,
                const std::string& relation, double est_rows = -1,
                double est_bytes = -1);

  /// Closes the transfer record: fills in observed volume and pops the
  /// producer frame (attributing it to `src` in per-server totals).
  /// `raw_bytes` is the uncompressed row-format byte count when the
  /// transfer shipped encoded (columnar wire); pass a negative value (the
  /// default) for raw-row transfers, where it equals `bytes`.
  void PopFetch(int id, double rows, double bytes, uint64_t messages,
                bool materialized, double raw_bytes = -1);

  /// Appends one estimate-vs-actual record to the active run's ledger
  /// (dropped when none) and observes its cardinality q-error — computed
  /// here from est/act rows — on `xdb_qerror{op=,server=}`. Called by the
  /// servers after a profiled statement; the fetch path feeds the ledger
  /// through PushFetch estimates instead.
  void RecordEstimate(EstimateActual record);

  /// Accounts a small control-plane round trip (metadata, DDL, EXPLAIN).
  void RecordControlMessage(const std::string& a, const std::string& b,
                            double bytes = 256);

  /// Count of control messages in the calling thread's active run
  /// (prep/delegation costing).
  int control_messages() const;

 private:
  struct Frame {
    int record_id;
    int64_t span_id;  // open fetch span (-1 when no recorder / no run)
    ComputeTrace trace;
  };

  /// Per-thread run-recording state. One serving thread drives one query at
  /// a time, so a thread_local instance (keyed by `owner`) replaces the
  /// former member state without changing single-threaded behaviour.
  struct RunState {
    const Federation* owner = nullptr;
    bool active = false;
    RunTrace run;
    // Deque, not vector: CurrentTrace() hands out pointers to the top frame
    // that must survive nested PushFetch growth (vector reallocation would
    // dangle them).
    std::deque<Frame> stack;
    ComputeTrace scratch;  // sink when no run is active
    int next_record_id = 0;
    int control_messages = 0;
  };
  static RunState& ThreadRun();
  bool ActiveHere(const RunState& rs) const {
    return rs.active && rs.owner == this;
  }

  /// Per-thread deadline budget + partial policy. Separate from RunState
  /// because one query's budget spans preparation and *multiple* failover
  /// rounds, each of which is its own BeginRun/FinishRun pair.
  struct BudgetState {
    const Federation* owner = nullptr;
    bool deadline_armed = false;
    double remaining = 0;
    bool allow_partial = false;
  };
  static BudgetState& ThreadBudget();

  /// Cached metric handles (resolved once at SetMetricsRegistry; hot paths
  /// then increment lock-free). The labeled per-server / per-link cells are
  /// resolved lazily on first use and memoized here — label cardinality is
  /// bounded by the topology, so the caches are small and stable. The maps
  /// are guarded by metrics_mu_ (concurrent runs resolve cells in parallel);
  /// the cells themselves are atomic.
  struct FedMetrics {
    Counter* fetches = nullptr;
    Counter* fetch_rows = nullptr;
    Counter* bytes_useful = nullptr;
    Counter* bytes_wasted = nullptr;
    Counter* retries = nullptr;
    Counter* backoff_seconds = nullptr;
    Counter* rollbacks = nullptr;
    Counter* replan_rounds = nullptr;
    Counter* faults_injected = nullptr;
    Counter* injected_delay_seconds = nullptr;
    Counter* ddl = nullptr;
    Histogram* transfer_bytes = nullptr;
    Histogram* qerror = nullptr;       // cardinality q-error, all operators
    Histogram* bytes_error = nullptr;  // transfer byte-volume q-error

    std::map<std::string, Counter*> fetches_by_server;
    std::map<std::string, Counter*> fetch_rows_by_server;
    std::map<std::string, Counter*> useful_by_server;
    std::map<std::string, Counter*> wasted_by_server;
    std::map<std::string, Counter*> retries_by_server;
    std::map<std::string, Counter*> faults_by_server;
    std::map<std::string, Counter*> ddl_by_server;
    std::map<std::string, Counter*> useful_by_link;
    std::map<std::string, Counter*> wasted_by_link;
    std::map<std::string, Histogram*> transfer_bytes_by_link;
    // Estimate-accountability cells: q-error keyed by "op|server", byte
    // error keyed by link. Cardinality is bounded by operator kinds times
    // topology size.
    std::map<std::string, Histogram*> qerror_by_cell;
    std::map<std::string, Histogram*> bytes_error_by_link;
    // Per-relation compression-ratio gauges (columnar wire only). Keyed by
    // the digit-normalized relation name (xdb_q12_t4 -> xdb_q*_t*) so
    // deployed-view names don't blow up label cardinality.
    std::map<std::string, Gauge*> compression_by_relation;
    // Fragments abandoned under the partial-results policy, by reason
    // ("node-down" | "link-drop" | "deadline" — a tiny fixed set).
    std::map<std::string, Counter*> partials_by_reason;
  };

  /// Memoized `{server=...}` cell of counter family `name`.
  Counter* ServerCell(std::map<std::string, Counter*>* cache,
                      const char* name, const std::string& server);
  /// Memoized `{link="src->dst"}` cell of counter family `name`.
  Counter* LinkCell(std::map<std::string, Counter*>* cache, const char* name,
                    const std::string& src, const std::string& dst);
  /// Memoized `{link=...}` cell of the transfer-bytes histogram.
  Histogram* LinkHistogram(const std::string& link);

  /// Memoized `{op=,server=}` cell of the xdb_qerror histogram.
  Histogram* QErrorHistogram(const std::string& op,
                             const std::string& server);
  /// Memoized `{link=...}` cell of the xdb_bytes_error histogram.
  Histogram* BytesErrorHistogram(const std::string& link);

  /// Memoized `{relation=...}` gauge of the compression-ratio family.
  Gauge* CompressionGauge(const std::string& relation);

  std::map<std::string, std::unique_ptr<DatabaseServer>> servers_;
  Network network_;
  WireFormat wire_format_ = WireFormat::kRawRows;
  FaultInjector* injector_ = nullptr;
  HealthTracker* health_ = nullptr;
  SpanRecorder* spans_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  QueryLog* query_log_ = nullptr;
  FedMetrics m_;
  mutable std::mutex metrics_mu_;  // guards m_'s memoized label-cell maps
  RetryPolicy retry_policy_;
};

}  // namespace xdb
