#include "src/net/network.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/testing/fault_injector.h"

namespace xdb {

namespace {
constexpr double kGigabit = 125e6;    // bytes/sec
constexpr double kFiftyMbit = 6.25e6;
constexpr double kHundredMbit = 12.5e6;
}  // namespace

void Network::AddNode(const std::string& name) {
  if (!HasNode(name)) nodes_.push_back(name);
}

bool Network::HasNode(const std::string& name) const {
  return std::find(nodes_.begin(), nodes_.end(), name) != nodes_.end();
}

void Network::SetLink(const std::string& a, const std::string& b,
                      LinkProps props) {
  links_[Key(a, b)] = props;
}

bool Network::CheckNodeKnown(const std::string& name) const {
  if (HasNode(name)) return true;
  unknown_nodes_.insert(name);
  return false;
}

LinkProps Network::GetLink(const std::string& a,
                           const std::string& b) const {
  {
    std::lock_guard<std::mutex> lock(*mu_);
    CheckNodeKnown(a);
    CheckNodeKnown(b);
  }
  auto it = links_.find(Key(a, b));
  LinkProps props = it != links_.end() ? it->second : default_link_;
  if (injector_ != nullptr) injector_->DegradeLink(a, b, &props);
  return props;
}

void Network::BlockLink(const std::string& a, const std::string& b) {
  blocked_.insert(Key(a, b));
}

void Network::UnblockLink(const std::string& a, const std::string& b) {
  blocked_.erase(Key(a, b));
}

bool Network::IsReachable(const std::string& a, const std::string& b) const {
  if (a == b) return true;
  return blocked_.count(Key(a, b)) == 0;
}

void Network::set_metrics(MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(*mu_);
  metrics_ = registry;
  metric_by_link_.clear();
  metric_encoded_by_link_.clear();
  if (registry == nullptr) {
    metric_bytes_ = nullptr;
    metric_messages_ = nullptr;
    metric_encoded_ = nullptr;
    return;
  }
  metric_bytes_ = registry->GetCounter(
      "xdb_network_bytes_total", "Bytes put on the wire (all links)");
  metric_messages_ = registry->GetCounter(
      "xdb_network_messages_total", "Messages put on the wire (all links)");
  metric_encoded_ = registry->GetCounter(
      "xdb_network_encoded_bytes_total",
      "Bytes shipped as compressed column chunks (all links)");
}

void Network::RecordTransfer(const std::string& src, const std::string& dst,
                             double bytes, uint64_t messages, bool encoded) {
  std::lock_guard<std::mutex> lock(*mu_);
  bool src_ok = CheckNodeKnown(src);
  if (!CheckNodeKnown(dst) || !src_ok) return;
  LinkStats& s = stats_[{src, dst}];
  s.bytes += bytes;
  s.messages += messages;
  if (metric_bytes_ != nullptr) {
    metric_bytes_->Increment(bytes);
    metric_messages_->Increment(static_cast<double>(messages));
    std::string link = src + "->" + dst;
    auto it = metric_by_link_.find(link);
    if (it == metric_by_link_.end()) {
      it = metric_by_link_
               .emplace(link,
                        std::make_pair(
                            metrics_->GetCounter("xdb_network_bytes_total",
                                                 {{"link", link}}),
                            metrics_->GetCounter("xdb_network_messages_total",
                                                 {{"link", link}})))
               .first;
    }
    it->second.first->Increment(bytes);
    it->second.second->Increment(static_cast<double>(messages));
    if (encoded) {
      metric_encoded_->Increment(bytes);
      auto eit = metric_encoded_by_link_.find(link);
      if (eit == metric_encoded_by_link_.end()) {
        eit = metric_encoded_by_link_
                  .emplace(link, metrics_->GetCounter(
                                     "xdb_network_encoded_bytes_total",
                                     {{"link", link}}))
                  .first;
      }
      eit->second->Increment(bytes);
    }
  }
}

double Network::TotalBytes() const {
  std::lock_guard<std::mutex> lock(*mu_);
  double total = 0;
  for (const auto& [k, s] : stats_) total += s.bytes;
  return total;
}

double Network::BytesInvolving(const std::string& node) const {
  std::lock_guard<std::mutex> lock(*mu_);
  double total = 0;
  for (const auto& [k, s] : stats_) {
    if (k.first == node || k.second == node) total += s.bytes;
  }
  return total;
}

Network Network::Lan(const std::vector<std::string>& nodes) {
  Network net;
  net.SetDefaultLink({kGigabit, 0.0001});
  for (const auto& n : nodes) net.AddNode(n);
  return net;
}

Network Network::OnPremiseWithCloud(const std::vector<std::string>& nodes,
                                    const std::string& cloud_node) {
  Network net;
  net.SetDefaultLink({kGigabit, 0.0001});
  for (const auto& n : nodes) net.AddNode(n);
  net.AddNode(cloud_node);
  for (const auto& n : nodes) {
    if (n != cloud_node) net.SetLink(n, cloud_node, {kFiftyMbit, 0.020});
  }
  return net;
}

Network Network::GeoDistributed(const std::vector<std::string>& nodes,
                                const std::string& cloud_node) {
  Network net;
  net.SetDefaultLink({kHundredMbit, 0.040});
  for (const auto& n : nodes) net.AddNode(n);
  net.AddNode(cloud_node);
  return net;
}

}  // namespace xdb
