#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace xdb {

class FaultInjector;
class MetricsRegistry;
class Counter;

/// \brief Physical properties of a (bidirectional) link.
struct LinkProps {
  double bandwidth = 125e6;  // bytes/second (default: 1 Gbit)
  double latency = 0.0001;   // seconds one-way (default: LAN)
};

/// \brief Accumulated traffic over a directed link.
struct LinkStats {
  double bytes = 0;
  uint64_t messages = 0;
};

/// \brief Simulated network between DBMS nodes (and a cloud/mediator node).
///
/// The network does two things: (1) byte/message accounting per directed
/// (src,dst) pair — this is the ground truth behind the paper's Figure 14
/// data-transfer experiment (the paper reads Docker's network statistics;
/// we read these counters); and (2) it supplies link properties to the
/// timing model. It never sleeps or blocks — time is modelled, not spent.
///
/// Concurrency: topology (nodes/links/blocked pairs) is setup-time only.
/// The *accounting* paths — RecordTransfer, the unknown-node violation set,
/// and the memoized per-link metric cells — are mutex-guarded so concurrent
/// queries may record traffic safely. The network is move-only (the mutex
/// travels behind a pointer); reads of stats() must not race RecordTransfer.
class Network {
 public:
  /// Registers a node; links to other nodes use the default props unless
  /// overridden by SetLink.
  void AddNode(const std::string& name);

  bool HasNode(const std::string& name) const;

  void SetDefaultLink(LinkProps props) { default_link_ = props; }

  /// Sets (symmetric) properties for a specific pair.
  void SetLink(const std::string& a, const std::string& b, LinkProps props);

  /// Effective properties of the pair's link: the configured (or default)
  /// props, degraded by any matching slow-link fault when an injector is
  /// attached. Both endpoints must be registered — an unknown name is
  /// recorded as a violation (see unknown_nodes()) so topology typos can't
  /// silently run on default link props and skew transfer accounting.
  LinkProps GetLink(const std::string& a, const std::string& b) const;

  /// Marks a pair as unreachable (no direct connectivity — e.g. firewalled
  /// departments). XDB's annotator restricts placement candidates to
  /// reachable DBMSes (the paper's "constraining the possible values of
  /// set A depending on the network", Section IV-B).
  void BlockLink(const std::string& a, const std::string& b);
  void UnblockLink(const std::string& a, const std::string& b);

  /// True unless the pair was blocked. Same-node is always reachable.
  bool IsReachable(const std::string& a, const std::string& b) const;

  /// Records a directed transfer. Transfers naming an unregistered node
  /// are rejected (recorded as violations, not counted) so typos cannot
  /// skew Figure-14-style byte accounting. `encoded` marks payloads shipped
  /// as compressed column chunks: the bytes count normally everywhere and
  /// additionally bump xdb_network_encoded_bytes_total (+ its per-link
  /// cell) when a metrics registry is attached.
  void RecordTransfer(const std::string& src, const std::string& dst,
                      double bytes, uint64_t messages = 1,
                      bool encoded = false);

  /// Node names seen by GetLink/RecordTransfer that were never registered
  /// with AddNode. Empty in a correctly wired federation; tests assert on
  /// it to catch topology typos.
  std::set<std::string> unknown_nodes() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return unknown_nodes_;
  }
  void ClearUnknownNodes() {
    std::lock_guard<std::mutex> lock(*mu_);
    unknown_nodes_.clear();
  }

  /// Attaches a fault injector whose slow-link specs degrade GetLink
  /// results (nullptr detaches; the default). Degradation feeds both the
  /// annotator's move-cost estimates and the timing model.
  void set_fault_injector(const FaultInjector* injector) {
    injector_ = injector;
  }

  /// Attaches a metrics registry: every RecordTransfer additionally bumps
  /// the process-wide byte/message counters plus their per-directed-link
  /// `{link="src->dst"}` labeled cells (nullptr detaches; the default).
  /// Purely additive — the per-link stats() accounting is unchanged.
  void set_metrics(MetricsRegistry* registry);

  /// Traffic counters per directed pair (snapshot; safe to call while other
  /// threads record transfers).
  std::map<std::pair<std::string, std::string>, LinkStats> stats() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return stats_;
  }

  double TotalBytes() const;

  /// Bytes on links where `node` is source or destination.
  double BytesInvolving(const std::string& node) const;

  void ResetStats() {
    std::lock_guard<std::mutex> lock(*mu_);
    stats_.clear();
  }

  // --- topology presets (see DESIGN.md §1) ---

  /// Single-cluster LAN: every link 1 Gbit / 0.1 ms (the paper's testbed).
  static Network Lan(const std::vector<std::string>& nodes);

  /// On-premise DBMSes + a managed-cloud node: DBMS-DBMS links are LAN,
  /// links to `cloud_node` are a 50 Mbit / 20 ms WAN uplink.
  static Network OnPremiseWithCloud(const std::vector<std::string>& nodes,
                                    const std::string& cloud_node);

  /// Geo-distributed DBMSes (different data centers): all links
  /// 100 Mbit / 40 ms, including to the cloud node.
  static Network GeoDistributed(const std::vector<std::string>& nodes,
                                const std::string& cloud_node);

 private:
  static std::pair<std::string, std::string> Key(const std::string& a,
                                                 const std::string& b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  /// Records (and returns false for) an unregistered node name.
  /// Caller must hold *mu_.
  bool CheckNodeKnown(const std::string& name) const;

  // Guards the accounting state (stats_, unknown_nodes_, metric_by_link_).
  // Behind a pointer so Network stays movable (preset factories return by
  // value); a moved-from network must not be used.
  mutable std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  std::vector<std::string> nodes_;
  LinkProps default_link_;
  const FaultInjector* injector_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  Counter* metric_bytes_ = nullptr;     // xdb_network_bytes_total
  Counter* metric_messages_ = nullptr;  // xdb_network_messages_total
  Counter* metric_encoded_ = nullptr;   // xdb_network_encoded_bytes_total
  // Memoized labeled cells, keyed by "src->dst" (cardinality is bounded by
  // the topology). Rebuilt from scratch when the registry changes.
  std::map<std::string, std::pair<Counter*, Counter*>> metric_by_link_;
  // Per-link encoded-byte cells, created lazily on first encoded transfer
  // over the link so raw-mode runs expose no zero-valued encoded series.
  std::map<std::string, Counter*> metric_encoded_by_link_;
  mutable std::set<std::string> unknown_nodes_;
  std::map<std::pair<std::string, std::string>, LinkProps> links_;
  std::set<std::pair<std::string, std::string>> blocked_;
  std::map<std::pair<std::string, std::string>, LinkStats> stats_;
};

}  // namespace xdb
