#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>

#include "src/common/status.h"
#include "src/net/network.h"

namespace xdb {

/// \brief Operation classes the injector can intercept. These are the
/// interaction points the paper's architecture exposes: DDL deployment and
/// query triggering through a connector, and server-to-server fetches /
/// data transfers on the simulated network.
enum class FaultOp { kDdl, kQuery, kFetch, kTransfer };

/// \brief What an injected fault does.
enum class FaultKind {
  kNodeDown,        // the server refuses every operation (kUnavailable)
  kTransientError,  // the matched operation fails (kUnavailable)
  kLinkDrop,        // a fetch/transfer over the link aborts (kTimeout)
  kSlowLink,        // no error; link bandwidth/latency degrade by a factor
};

const char* FaultOpToString(FaultOp op);
const char* FaultKindToString(FaultKind kind);

/// \brief One programmable fault: *where* it applies (server, or a link
/// endpoint pair for link kinds; empty strings are wildcards), *what* it
/// does (kind), and *when* it fires (a deterministic trigger over the
/// per-spec count of matched calls, optionally gated by a seeded PRNG).
struct FaultSpec {
  std::string server;  // target DBMS ("" = any); link kinds: one endpoint
  std::string peer;    // link kinds: the other endpoint ("" = any)
  FaultOp op = FaultOp::kDdl;  // ignored by kNodeDown (all ops) & kSlowLink
  FaultKind kind = FaultKind::kTransientError;

  // Trigger predicate, evaluated against this spec's 1-based count of
  // matched calls: fires when the count lies in [first_attempt,
  // last_attempt], AND (when every_nth > 0) is a multiple of every_nth,
  // AND (when probability < 1) a seeded coin toss succeeds.
  int first_attempt = 1;
  int last_attempt = std::numeric_limits<int>::max();
  int every_nth = 0;
  double probability = 1.0;

  // Modelled seconds charged to the run when the fault fires (e.g. the
  // time a client waits before noticing a dead connection).
  double delay_seconds = 0.0;

  // kSlowLink: bandwidth is divided and latency multiplied by this factor.
  double slow_factor = 1.0;

  // --- Gilbert–Elliott bursty loss ---------------------------------------
  // When ge_p_enter > 0, a two-state Markov channel replaces the uniform
  // `probability` coin: each matched call first advances the chain (good ->
  // bad with ge_p_enter, bad -> good with ge_p_exit), then the fault fires
  // with the *current state's* loss probability. The defaults give the
  // classic bursty channel — lossless good state, always-lossy bad state —
  // so failures arrive in correlated bursts with geometric burst lengths
  // of mean 1/ge_p_exit, instead of as independent coin flips.
  double ge_p_enter = 0.0;  // P(good -> bad) per matched call; 0 disables
  double ge_p_exit = 0.0;   // P(bad -> good) per matched call
  double ge_loss_good = 0.0;
  double ge_loss_bad = 1.0;
  bool gilbert_elliott() const { return ge_p_enter > 0.0; }

  // --- diurnal slow-link profile (kSlowLink only) ------------------------
  // When diurnal_period > 0, the degradation follows a deterministic square
  // wave over this spec's matched link consultations: the first
  // round(diurnal_duty * diurnal_period) consultations of every period are
  // "peak hours" (degraded by slow_factor); the rest run at full speed.
  // Models a WAN whose effective bandwidth sags during business hours.
  int diurnal_period = 0;
  double diurnal_duty = 0.5;
};

/// \brief What fired last — consumed by the failover logic to decide which
/// node or link to exclude when replanning.
struct FaultEvent {
  int fault_id = -1;  // -1 for MarkNodeDown-driven failures
  std::string server;
  std::string peer;
  FaultOp op = FaultOp::kDdl;
  FaultKind kind = FaultKind::kNodeDown;
};

/// \brief Deterministic, seeded fault injector for the simulated
/// federation (wired in through Federation::SetFaultInjector).
///
/// Fully reproducible: triggers are counters over matched calls plus a
/// SplitMix64 stream seeded at construction — no wall clock, no real
/// sleeps. Injected delays and retry backoff are modelled seconds charged
/// to the query's timing breakdown. When no injector is attached (the
/// default), every hook is a null-pointer check: the fault-free path is
/// bit-identical to a build without the framework.
///
/// Thread-safe: counters, PRNG, and the last-fault record are mutex-guarded
/// so concurrent sessions may share one injector. Under concurrency the
/// *interleaving* of matched calls (and hence which query a probabilistic
/// fault hits) is scheduling-dependent; single-threaded runs keep the exact
/// deterministic sequence. Prefer LastFaultSnapshot() over last_fault() from
/// concurrent callers.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : prng_state_(seed) {}

  /// Registers a fault; returns an id usable with RemoveFault.
  int AddFault(FaultSpec spec);
  void RemoveFault(int id);
  void Clear();

  /// Convenience: the server refuses everything until MarkNodeUp.
  void MarkNodeDown(const std::string& server);
  void MarkNodeUp(const std::string& server);
  bool IsNodeDown(const std::string& server) const;

  /// Interception hook: returns OK or the injected failure for an
  /// operation on `server` (for fetches/transfers, `peer` is the other
  /// link endpoint). Matched-call counters advance deterministically.
  Status OnOperation(const std::string& server, FaultOp op,
                     const std::string& peer = std::string());

  /// Applies every matching kSlowLink spec to `props` (bandwidth divided,
  /// latency multiplied). Pure — consulted by Network::GetLink so the
  /// degradation feeds both the annotator's move costs and the timing
  /// model.
  void DegradeLink(const std::string& a, const std::string& b,
                   LinkProps* props) const;

  /// Single-threaded inspection API (tests): reference into guarded state.
  const std::optional<FaultEvent>& last_fault() const { return last_fault_; }

  /// Concurrency-safe snapshot of the last fired fault (copy under lock).
  std::optional<FaultEvent> LastFaultSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_fault_;
  }

  int faults_fired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return faults_fired_;
  }
  double injected_delay_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_delay_seconds_;
  }

  /// Drains modelled delay accumulated by fired faults since the last
  /// call; the federation charges it to the active run.
  double TakeInjectedDelay();

  /// Test hook: whether a Gilbert–Elliott fault's channel is currently in
  /// the bad (bursty) state. False for unknown ids or non-GE specs.
  bool InBurstState(int id) const;

 private:
  struct ActiveFault {
    FaultSpec spec;
    int match_count = 0;
    bool ge_bad = false;  // Gilbert–Elliott channel state
    // Per-spec count of matched DegradeLink consultations driving the
    // diurnal square wave; mutable because DegradeLink is const (pure with
    // respect to modelled results — the wave position is part of the
    // deterministic schedule, like match_count is for Fires).
    mutable int degrade_count = 0;
  };

  /// SplitMix64 — cheap, seedable, platform-stable.
  double NextUniform();

  bool Fires(ActiveFault* fault);

  mutable std::mutex mu_;
  std::map<int, ActiveFault> faults_;
  std::set<std::string> down_nodes_;
  int next_id_ = 0;
  uint64_t prng_state_;
  std::optional<FaultEvent> last_fault_;
  int faults_fired_ = 0;
  double pending_delay_seconds_ = 0;
  double total_delay_seconds_ = 0;
};

}  // namespace xdb
