#include "src/testing/fault_injector.h"

namespace xdb {

namespace {

/// Unordered-pair match for link faults: (spec.server, spec.peer) against
/// (server, peer), empty spec fields matching anything.
bool LinkMatches(const FaultSpec& spec, const std::string& a,
                 const std::string& b) {
  auto one_way = [](const std::string& sa, const std::string& sb,
                    const std::string& x, const std::string& y) {
    return (sa.empty() || sa == x) && (sb.empty() || sb == y);
  };
  return one_way(spec.server, spec.peer, a, b) ||
         one_way(spec.server, spec.peer, b, a);
}

}  // namespace

const char* FaultOpToString(FaultOp op) {
  switch (op) {
    case FaultOp::kDdl:
      return "ddl";
    case FaultOp::kQuery:
      return "query";
    case FaultOp::kFetch:
      return "fetch";
    case FaultOp::kTransfer:
      return "transfer";
  }
  return "unknown";
}

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeDown:
      return "node-down";
    case FaultKind::kTransientError:
      return "transient-error";
    case FaultKind::kLinkDrop:
      return "link-drop";
    case FaultKind::kSlowLink:
      return "slow-link";
  }
  return "unknown";
}

int FaultInjector::AddFault(FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  int id = next_id_++;
  faults_[id] = ActiveFault{std::move(spec), 0};
  return id;
}

void FaultInjector::RemoveFault(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.erase(id);
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
  down_nodes_.clear();
}

void FaultInjector::MarkNodeDown(const std::string& server) {
  std::lock_guard<std::mutex> lock(mu_);
  down_nodes_.insert(server);
}

void FaultInjector::MarkNodeUp(const std::string& server) {
  std::lock_guard<std::mutex> lock(mu_);
  down_nodes_.erase(server);
}

bool FaultInjector::IsNodeDown(const std::string& server) const {
  std::lock_guard<std::mutex> lock(mu_);
  return down_nodes_.count(server) > 0;
}

double FaultInjector::NextUniform() {
  // SplitMix64 (public domain, Vigna): one 64-bit state, full period.
  prng_state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = prng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);  // 2^53
}

bool FaultInjector::Fires(ActiveFault* fault) {
  const FaultSpec& spec = fault->spec;
  int count = ++fault->match_count;
  if (count < spec.first_attempt || count > spec.last_attempt) return false;
  if (spec.every_nth > 0 && count % spec.every_nth != 0) return false;
  if (spec.gilbert_elliott()) {
    // Advance the two-state Markov channel, then toss the current state's
    // loss coin. Both draws come from the seeded stream, so the burst
    // pattern is exactly reproducible for a given seed and call sequence.
    if (fault->ge_bad) {
      if (NextUniform() < spec.ge_p_exit) fault->ge_bad = false;
    } else {
      if (NextUniform() < spec.ge_p_enter) fault->ge_bad = true;
    }
    const double loss = fault->ge_bad ? spec.ge_loss_bad : spec.ge_loss_good;
    if (loss >= 1.0) return true;
    if (loss <= 0.0) return false;
    return NextUniform() < loss;
  }
  if (spec.probability < 1.0 && NextUniform() >= spec.probability) {
    return false;
  }
  return true;
}

Status FaultInjector::OnOperation(const std::string& server, FaultOp op,
                                  const std::string& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  if (down_nodes_.count(server) > 0) {
    last_fault_ = FaultEvent{-1, server, peer, op, FaultKind::kNodeDown};
    ++faults_fired_;
    return Status::Unavailable("DBMS '" + server + "' is down");
  }
  for (auto& [id, fault] : faults_) {
    const FaultSpec& spec = fault.spec;
    switch (spec.kind) {
      case FaultKind::kSlowLink:
        continue;  // degradation only; never an error
      case FaultKind::kNodeDown:
        // Matches every operation on the server.
        if (!spec.server.empty() && spec.server != server) continue;
        break;
      case FaultKind::kTransientError:
        if (spec.op != op) continue;
        if (!spec.server.empty() && spec.server != server) continue;
        break;
      case FaultKind::kLinkDrop:
        // Only meaningful on the data paths between two endpoints.
        if (op != FaultOp::kFetch && op != FaultOp::kTransfer) continue;
        if (spec.op != op) continue;
        if (peer.empty() || !LinkMatches(spec, server, peer)) continue;
        break;
    }
    if (!Fires(&fault)) continue;

    last_fault_ = FaultEvent{id, server, peer, op, spec.kind};
    ++faults_fired_;
    pending_delay_seconds_ += spec.delay_seconds;
    total_delay_seconds_ += spec.delay_seconds;
    switch (spec.kind) {
      case FaultKind::kNodeDown:
        return Status::Unavailable("DBMS '" + server + "' is down");
      case FaultKind::kTransientError:
        return Status::Unavailable(
            "injected transient fault on '" + server + "' during " +
            FaultOpToString(op));
      case FaultKind::kLinkDrop:
        return Status::Timeout("link " + server + "<->" + peer +
                               " dropped during " + FaultOpToString(op));
      case FaultKind::kSlowLink:
        break;  // unreachable
    }
  }
  return Status::OK();
}

void FaultInjector::DegradeLink(const std::string& a, const std::string& b,
                                LinkProps* props) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, fault] : faults_) {
    const FaultSpec& spec = fault.spec;
    if (spec.kind != FaultKind::kSlowLink || spec.slow_factor <= 1.0) {
      continue;
    }
    if (!LinkMatches(spec, a, b)) continue;
    if (spec.diurnal_period > 0) {
      // Deterministic square wave over this spec's matched consultations:
      // the first round(duty * period) calls of every period are peak
      // hours; off-peak consultations see the undegraded link.
      const int phase = fault.degrade_count++ % spec.diurnal_period;
      const int peak = static_cast<int>(
          spec.diurnal_duty * spec.diurnal_period + 0.5);
      if (phase >= peak) continue;
    }
    props->bandwidth /= spec.slow_factor;
    props->latency *= spec.slow_factor;
  }
}

double FaultInjector::TakeInjectedDelay() {
  std::lock_guard<std::mutex> lock(mu_);
  double d = pending_delay_seconds_;
  pending_delay_seconds_ = 0;
  return d;
}

bool FaultInjector::InBurstState(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = faults_.find(id);
  return it != faults_.end() && it->second.ge_bad;
}

}  // namespace xdb
