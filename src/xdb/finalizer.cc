#include "src/xdb/finalizer.h"

#include "src/plan/estimator.h"

namespace xdb {

namespace {

std::string AlgebraLabel(const PlanNode& node);

/// Builds tasks bottom-up. `Cut` walks a subtree that belongs to the task
/// annotated `current`, descending through same-annotation nodes and
/// replacing each differently-annotated child subtree by a Placeholder plus
/// a recursively built producer task.
class TaskBuilder {
 public:
  TaskBuilder(int query_id, std::string prefix)
      : query_id_(query_id), prefix_(std::move(prefix)) {}

  Result<DelegationPlan> Build(const PlanNode& root) {
    PlanPtr cloned = root.Clone();
    XDB_ASSIGN_OR_RETURN(int root_id, BuildTask(cloned));
    (void)root_id;
    return std::move(plan_);
  }

 private:
  /// Creates the task rooted at `node` (annotation = node->annotation).
  Result<int> BuildTask(PlanPtr node) {
    std::vector<DelegationEdge> pending;
    XDB_ASSIGN_OR_RETURN(PlanPtr fragment,
                         Cut(std::move(node), &pending));
    DelegationTask task;
    task.id = next_task_id_++;
    task.server = fragment->annotation;
    task.expr = fragment;
    task.view_name = prefix_ + "_q" + std::to_string(query_id_) + "_t" +
                     std::to_string(task.id);
    Estimator est;
    task.est_rows = est.Estimate(*fragment).rows;
    for (auto& e : pending) {
      e.consumer = task.id;
      plan_.edges.push_back(e);
    }
    plan_.tasks.push_back(std::move(task));
    return plan_.tasks.back().id;
  }

  Result<PlanPtr> Cut(PlanPtr node, std::vector<DelegationEdge>* pending) {
    for (auto& child : node->children) {
      if (child->annotation == node->annotation) {
        XDB_ASSIGN_OR_RETURN(child, Cut(std::move(child), pending));
        continue;
      }
      // Annotation changes: the child subtree becomes its own task and the
      // child position becomes a "?" placeholder (a dummy input operator).
      Movement movement = child->edge_movement;
      Estimator est;
      double rows = est.Estimate(*child).rows;
      Schema schema = child->output_schema;
      std::vector<std::string> quals = child->output_qualifiers;
      XDB_ASSIGN_OR_RETURN(int producer_id, BuildTask(std::move(child)));
      const DelegationTask* producer = plan_.FindTask(producer_id);
      PlanPtr ph = PlanNode::MakePlaceholder(producer->view_name,
                                             std::move(schema),
                                             std::move(quals), rows);
      ph->placeholder_foreign = movement == Movement::kImplicit;
      ph->annotation = node->annotation;
      child = std::move(ph);

      DelegationEdge edge;
      edge.producer = producer_id;
      edge.movement = movement;
      edge.est_rows = rows;
      pending->push_back(edge);
    }
    return node;
  }

  int query_id_;
  std::string prefix_;
  int next_task_id_ = 0;
  DelegationPlan plan_;
};

std::string AlgebraLabel(const PlanNode& node) { return node.ToAlgebraString(); }

}  // namespace

Result<DelegationPlan> FinalizePlan(const PlanNode& annotated_plan,
                                    int query_id,
                                    const std::string& name_prefix) {
  if (annotated_plan.annotation.empty()) {
    return Status::InvalidArgument(
        "plan must be annotated before finalization");
  }
  TaskBuilder builder(query_id, name_prefix);
  return builder.Build(annotated_plan);
}

std::string DelegationPlan::ToDot() const {
  std::string out = "digraph delegation {\n  rankdir=BT;\n"
                    "  node [shape=box, fontname=\"monospace\"];\n";
  for (const auto& t : tasks) {
    out += "  t" + std::to_string(t.id) + " [label=\"" + t.server + ":\\n" +
           AlgebraLabel(*t.expr) + "\\n~" +
           std::to_string(static_cast<int64_t>(t.est_rows)) + " rows\"];\n";
  }
  for (const auto& e : edges) {
    out += "  t" + std::to_string(e.producer) + " -> t" +
           std::to_string(e.consumer) + " [label=\"" +
           (e.movement == Movement::kImplicit ? "i" : "e") + "\"" +
           (e.movement == Movement::kExplicit ? ", style=dashed" : "") +
           "];\n";
  }
  out += "}\n";
  return out;
}

std::string DelegationPlan::ToString() const {
  std::string out;
  for (const auto& t : tasks) {
    out += "task " + std::to_string(t.id) + " [" + t.view_name + "] @" +
           t.server + ": " + AlgebraLabel(*t.expr) + "  (~" +
           std::to_string(static_cast<int64_t>(t.est_rows)) + " rows)\n";
  }
  for (const auto& e : edges) {
    const DelegationTask* p = FindTask(e.producer);
    const DelegationTask* c = FindTask(e.consumer);
    out += p->server + ":" + AlgebraLabel(*p->expr) + " --" +
           MovementToString(e.movement) + "--> " + c->server + ":" +
           AlgebraLabel(*c->expr) + "  (~" +
           std::to_string(static_cast<int64_t>(e.est_rows)) + " rows)\n";
  }
  return out;
}

}  // namespace xdb
