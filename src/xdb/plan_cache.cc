#include "src/xdb/plan_cache.h"

#include <cctype>

namespace xdb {

std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_string = false;
  bool pending_space = false;
  for (char c : sql) {
    if (in_string) {
      out.push_back(c);
      if (c == '\'') in_string = false;
      continue;
    }
    if (c == '\'') {
      if (pending_space && !out.empty()) out.push_back(' ');
      pending_space = false;
      out.push_back(c);
      in_string = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

PlanPtr DelegationPlanCache::Lookup(const std::string& norm_sql,
                                    const std::string& fingerprint) {
  PlanPtr master;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(norm_sql);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    if (it->second->fingerprint != fingerprint) {
      // Stale placement: the world changed under this plan. Retire it.
      lru_.erase(it->second);
      index_.erase(it);
      ++misses_;
      ++evictions_;
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    master = it->second->plan;
    ++it->second->hits;
    ++hits_;
  }
  // Clone outside the lock: the master is immutable and the shared_ptr
  // keeps it alive even if it gets evicted concurrently.
  return master->Clone();
}

int DelegationPlanCache::Insert(const std::string& norm_sql,
                                const std::string& fingerprint,
                                PlanPtr plan) {
  std::lock_guard<std::mutex> lock(mu_);
  int evicted = 0;
  auto it = index_.find(norm_sql);
  if (it != index_.end()) {
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(
      Entry{norm_sql, fingerprint, std::move(plan), 0, insert_counter_++});
  index_[norm_sql] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evicted;
  }
  evictions_ += evicted;
  return evicted;
}

void DelegationPlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  evictions_ += static_cast<int64_t>(lru_.size());
  lru_.clear();
  index_.clear();
}

int64_t DelegationPlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t DelegationPlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int64_t DelegationPlanCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t DelegationPlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::vector<DelegationPlanCache::EntrySnapshot>
DelegationPlanCache::SnapshotEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EntrySnapshot> out;
  out.reserve(lru_.size());
  for (const auto& [key, it] : index_) {
    out.push_back(EntrySnapshot{key, it->fingerprint, it->hits,
                                insert_counter_ - 1 - it->inserted_at});
  }
  return out;  // index_ is key-ordered already
}

}  // namespace xdb
