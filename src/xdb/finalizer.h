#pragma once

#include "src/common/result.h"
#include "src/xdb/delegation_plan.h"

namespace xdb {

/// \brief The Plan Finalizer (paper Section IV-B-3).
///
/// Groups maximal runs of same-annotation operators into tasks: a modified
/// depth-first post-order traversal cuts the annotated plan wherever a
/// node's annotation differs from its parent's, inserting a Placeholder
/// ("?", a dummy input operator) at each cut and emitting a dataflow edge
/// with the movement type the annotator chose. Fewer tasks mean less
/// delegation traffic and larger units for the component DBMSes' own
/// optimizers — grouping is maximal by construction.
///
/// `query_id` and `name_prefix` namespace the generated short-lived view
/// names so queries from different middleware instances (XDB, the mediator
/// baselines) never collide on the shared DBMSes.
Result<DelegationPlan> FinalizePlan(const PlanNode& annotated_plan,
                                    int query_id,
                                    const std::string& name_prefix = "xdb");

}  // namespace xdb
