#include "src/xdb/session.h"

#include "src/obs/metrics.h"

namespace xdb {

XdbSession::XdbSession(SessionManager* mgr, int id, size_t span_capacity)
    : mgr_(mgr),
      id_(id),
      ddl_prefix_("xdb_s" + std::to_string(id)),
      counters_(std::make_shared<Counters>()) {
  counters_->ddl_prefix = ddl_prefix_;
  if (span_capacity > 0) {
    spans_ = std::make_unique<SpanRecorder>();
    spans_->set_capacity(span_capacity);
  }
}

XdbSession::~XdbSession() { mgr_->CloseSession(id_); }

Result<XdbReport> XdbSession::Query(const std::string& sql,
                                    const std::string& label) {
  return mgr_->Run(this, sql, label);
}

SessionManager::SessionManager(XdbSystem* xdb, ServingOptions options)
    : xdb_(xdb), options_(options) {}

std::unique_ptr<XdbSession> SessionManager::OpenSession() {
  int id = next_session_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  int active = active_sessions_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (MetricsRegistry* m = xdb_->federation()->metrics()) {
    m->GetCounter("xdb_sessions_opened_total", "Sessions opened")
        ->Increment();
  }
  SetGauge("xdb_active_sessions", active, "Sessions currently open");
  // unique_ptr via `new`: the constructor is private to this friend.
  auto session = std::unique_ptr<XdbSession>(
      new XdbSession(this, id, options_.session_span_capacity));
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_[id] = session->counters_;
  }
  return session;
}

void SessionManager::CloseSession(int id) {
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.erase(id);
  }
  int active = active_sessions_.fetch_sub(1, std::memory_order_relaxed) - 1;
  SetGauge("xdb_active_sessions", active, "Sessions currently open");
}

std::vector<SessionSnapshot> SessionManager::SnapshotSessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  std::vector<SessionSnapshot> out;
  out.reserve(sessions_.size());
  for (const auto& [id, c] : sessions_) {
    SessionSnapshot s;
    s.id = id;
    s.ddl_prefix = c->ddl_prefix;
    s.inflight = c->inflight.load(std::memory_order_relaxed);
    s.queries_served = c->served.load(std::memory_order_relaxed);
    s.failures = c->failures.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;  // map iteration is id-ordered already
}

void SessionManager::SetGauge(const std::string& name, double value,
                              const std::string& help) {
  if (MetricsRegistry* m = xdb_->federation()->metrics()) {
    m->GetGauge(name, help)->Set(value);
  }
}

Result<XdbReport> SessionManager::Run(XdbSession* session,
                                      const std::string& sql,
                                      const std::string& label) {
  // Admission: closed-loop clients block here when the federation is at
  // its in-flight limit, bounding memory and scheduler pressure.
  int inflight_now = active_sessions_.load(std::memory_order_relaxed);
  if (options_.max_concurrent_queries > 0) {
    std::unique_lock<std::mutex> lock(admission_mu_);
    admission_cv_.wait(lock, [&] {
      return inflight_ < options_.max_concurrent_queries;
    });
    inflight_now = ++inflight_;
  }
  SetGauge("xdb_inflight_queries", inflight_now,
           "Queries currently executing");
  session->counters_->inflight.fetch_add(1, std::memory_order_relaxed);

  QueryContext ctx;
  ctx.ddl_prefix = session->ddl_prefix_;
  ctx.label = label;
  ctx.spans = session->spans();
  ctx.deadline_seconds = options_.default_deadline_seconds;
  ctx.allow_partial = options_.allow_partial;
  Result<XdbReport> result = xdb_->Query(sql, ctx);

  total_queries_.fetch_add(1, std::memory_order_relaxed);
  session->counters_->inflight.fetch_sub(1, std::memory_order_relaxed);
  session->counters_->served.fetch_add(1, std::memory_order_relaxed);
  if (!result.ok()) {
    session->counters_->failures.fetch_add(1, std::memory_order_relaxed);
  }
  if (result.ok()) {
    session->latencies_.push_back(result->total_seconds());
    if (result->plan_cache_hit) ++session->plan_cache_hits_;
  } else {
    // Failures are counted, not timed: the failed trace lives in the
    // system-wide last_trace(), which concurrent sessions overwrite — any
    // read here would make the latency series schedule-dependent.
    ++session->failures_;
  }

  if (options_.max_concurrent_queries > 0) {
    {
      std::lock_guard<std::mutex> lock(admission_mu_);
      --inflight_;
    }
    admission_cv_.notify_one();
  }
  return result;
}

}  // namespace xdb
