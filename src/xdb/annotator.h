#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>

#include "src/connect/connector.h"
#include "src/net/network.h"
#include "src/plan/estimator.h"

namespace xdb {

/// \brief Failover constraints on placement (paper Section IV-B's
/// reachability constraint, extended to observed faults): servers excluded
/// from hosting cross-database operators and links observed dead. Filled
/// by XdbSystem's failover loop as deploy/execution failures implicate
/// nodes and links; an empty constraint set leaves annotation untouched.
struct PlacementConstraints {
  std::set<std::string> excluded_servers;
  std::set<std::pair<std::string, std::string>> blocked_links;  // normalized

  static std::pair<std::string, std::string> LinkKey(const std::string& a,
                                                     const std::string& b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }
  bool Excluded(const std::string& server) const {
    return excluded_servers.count(server) > 0;
  }
  bool LinkBlocked(const std::string& a, const std::string& b) const {
    return blocked_links.count(LinkKey(a, b)) > 0;
  }
  bool empty() const {
    return excluded_servers.empty() && blocked_links.empty();
  }
};

/// \brief The Plan Annotator (paper Section IV-B-2).
///
/// Walks the optimized logical plan bottom-up and decides, per operator, the
/// executing DBMS and, per edge, the data-movement type:
///
///  - Rule 1: table scans inherit the DBMS that stores the table;
///  - Rule 2: unary operators inherit their input's annotation (implicit);
///  - Rule 3: binary operators with equal input annotations inherit it;
///  - Rule 4: cross-database binary operators choose the placement and
///    movement minimising Eq. 1, evaluated by *consulting* the candidate
///    DBMSes through their connectors' EXPLAIN-style cost probes.
///
/// The candidate set is pruned to the two input annotations (the paper's
/// |R|+|S| > max(|R|,|S|) argument), which also guarantees that no plan of
/// the Figure 5c shape (a cross-database operator placed on a third DBMS)
/// is ever produced.
/// \brief How Rule 4 chooses between implicit and explicit movement.
/// kCostBased is the paper's Eq. 1; the forced policies exist for the
/// ablation benches (what does the movement-type decision buy?).
enum class MovementPolicy { kCostBased, kAlwaysImplicit, kAlwaysExplicit };

class Annotator {
 public:
  /// `constraints` (optional, caller-owned) restricts Rule 4's candidate
  /// placements — used by failover replanning to route around nodes and
  /// links observed dead.
  Annotator(std::map<std::string, DbmsConnector*> connectors,
            const Network* network,
            MovementPolicy policy = MovementPolicy::kCostBased,
            const PlacementConstraints* constraints = nullptr)
      : connectors_(std::move(connectors)),
        network_(network),
        policy_(policy),
        constraints_(constraints) {}

  /// Annotates `plan` in place. `plan` must be fully bound with Scan leaves
  /// carrying their owning DBMS in `db`.
  Status Annotate(PlanNode* plan);

  /// Number of consultation round trips performed (4 per cross-database
  /// join: two placements x two movement types).
  int consultations() const { return consultations_; }
  void ResetCounters() { consultations_ = 0; }

 private:
  Status AnnotateNode(PlanNode* node);
  Status AnnotateCrossJoin(PlanNode* node);

  /// Modelled seconds to move an intermediate result from `src` to `dst`
  /// (Eq. 2's moveCost): volume over the link plus per-batch latency.
  double MoveCost(const PlanEstimate& producer, const std::string& src,
                  const std::string& dst) const;

  std::map<std::string, DbmsConnector*> connectors_;
  const Network* network_;
  MovementPolicy policy_;
  const PlacementConstraints* constraints_ = nullptr;
  Estimator estimator_;
  int consultations_ = 0;
};

}  // namespace xdb
