#include "src/xdb/global_catalog.h"

#include "src/common/str_util.h"

namespace xdb {

namespace {
thread_local int t_metadata_roundtrips = 0;
}  // namespace

int GlobalCatalog::ThreadRoundtrips() { return t_metadata_roundtrips; }

void GlobalCatalog::ResetThreadRoundtrips() { t_metadata_roundtrips = 0; }

GlobalCatalog::GlobalCatalog(
    std::map<std::string, DbmsConnector*> connectors)
    : connectors_(std::move(connectors)) {
  for (auto& [server, dc] : connectors_) {
    for (const auto& table : dc->ListTables()) {
      TableMeta meta;
      meta.server = server;
      tables_[ToLower(table)] = std::move(meta);
    }
  }
}

std::string GlobalCatalog::LocateTable(const std::string& table) const {
  auto it = tables_.find(ToLower(table));
  return it != tables_.end() ? it->second.server : "";
}

Result<PlanPtr> GlobalCatalog::Resolve(const std::string& db,
                                       const std::string& table) {
  std::string key = ToLower(table);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::CatalogError("table '" + key +
                                "' not found in the global schema");
  }
  TableMeta& meta = it->second;
  if (!db.empty() && !EqualsIgnoreCase(db, meta.server)) {
    return Status::CatalogError("table '" + key + "' resides on " +
                                meta.server + ", not on '" + db + "'");
  }
  // The lock spans the lazy load so two sessions racing on a cold table
  // fetch its metadata exactly once (the loser sees loaded == true).
  std::lock_guard<std::mutex> lock(mu_);
  if (!meta.loaded) {
    DbmsConnector* dc = connectors_.at(meta.server);
    XDB_ASSIGN_OR_RETURN(meta.schema, dc->DescribeTable(key));
    metadata_roundtrips_.fetch_add(1, std::memory_order_relaxed);
    ++t_metadata_roundtrips;
    XDB_ASSIGN_OR_RETURN(meta.stats, dc->FetchStats(key));
    metadata_roundtrips_.fetch_add(1, std::memory_order_relaxed);
    ++t_metadata_roundtrips;
    meta.loaded = true;
  }
  return PlanNode::MakeScan(meta.server, key, key, meta.schema, meta.stats);
}

void GlobalCatalog::InvalidateTable(const std::string& table) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(ToLower(table));
    if (it != tables_.end()) it->second.loaded = false;
  }
  catalog_version_.fetch_add(1, std::memory_order_acq_rel);
}

void GlobalCatalog::InvalidateStats(const std::string& table) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(ToLower(table));
    if (it != tables_.end()) it->second.loaded = false;
  }
  stats_version_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace xdb
