#include "src/xdb/global_catalog.h"

#include "src/common/str_util.h"

namespace xdb {

GlobalCatalog::GlobalCatalog(
    std::map<std::string, DbmsConnector*> connectors)
    : connectors_(std::move(connectors)) {
  for (auto& [server, dc] : connectors_) {
    for (const auto& table : dc->ListTables()) {
      TableMeta meta;
      meta.server = server;
      tables_[ToLower(table)] = std::move(meta);
    }
  }
}

std::string GlobalCatalog::LocateTable(const std::string& table) const {
  auto it = tables_.find(ToLower(table));
  return it != tables_.end() ? it->second.server : "";
}

Result<PlanPtr> GlobalCatalog::Resolve(const std::string& db,
                                       const std::string& table) {
  std::string key = ToLower(table);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::CatalogError("table '" + key +
                                "' not found in the global schema");
  }
  TableMeta& meta = it->second;
  if (!db.empty() && !EqualsIgnoreCase(db, meta.server)) {
    return Status::CatalogError("table '" + key + "' resides on " +
                                meta.server + ", not on '" + db + "'");
  }
  if (!meta.loaded) {
    DbmsConnector* dc = connectors_.at(meta.server);
    XDB_ASSIGN_OR_RETURN(meta.schema, dc->DescribeTable(key));
    ++metadata_roundtrips_;
    XDB_ASSIGN_OR_RETURN(meta.stats, dc->FetchStats(key));
    ++metadata_roundtrips_;
    meta.loaded = true;
  }
  return PlanNode::MakeScan(meta.server, key, key, meta.schema, meta.stats);
}

}  // namespace xdb
