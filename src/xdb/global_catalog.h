#pragma once

#include <map>
#include <memory>
#include <string>

#include "src/connect/connector.h"
#include "src/plan/planner.h"

namespace xdb {

/// \brief XDB's Global-as-a-View catalog: the union of the component
/// DBMSes' local schemas (paper Section III).
///
/// It doubles as the RelationResolver for XDB's logical optimizer: each
/// table resolves to a Scan annotated with the DBMS that stores it. Schema
/// and statistics come from the connectors' metadata interface; fetches are
/// cached across queries and counted per query, since they are what the
/// paper's "prep" phase pays for.
class GlobalCatalog : public RelationResolver {
 public:
  /// Discovers all base tables on all connectors (table listing only;
  /// schemas/stats are fetched lazily per query).
  explicit GlobalCatalog(std::map<std::string, DbmsConnector*> connectors);

  Result<PlanPtr> Resolve(const std::string& db,
                          const std::string& table) override;

  /// The DBMS storing `table` (empty when unknown).
  std::string LocateTable(const std::string& table) const;

  /// Metadata round trips performed since the last reset.
  int metadata_roundtrips() const { return metadata_roundtrips_; }
  void ResetCounters() { metadata_roundtrips_ = 0; }

 private:
  struct TableMeta {
    std::string server;
    Schema schema;
    TableStats stats;
    bool loaded = false;
  };

  std::map<std::string, DbmsConnector*> connectors_;
  std::map<std::string, TableMeta> tables_;  // global table name -> meta
  int metadata_roundtrips_ = 0;
};

}  // namespace xdb
