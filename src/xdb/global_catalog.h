#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/connect/connector.h"
#include "src/plan/planner.h"

namespace xdb {

/// \brief XDB's Global-as-a-View catalog: the union of the component
/// DBMSes' local schemas (paper Section III).
///
/// It doubles as the RelationResolver for XDB's logical optimizer: each
/// table resolves to a Scan annotated with the DBMS that stores it. Schema
/// and statistics come from the connectors' metadata interface; fetches are
/// cached across queries and counted per query, since they are what the
/// paper's "prep" phase pays for.
///
/// Concurrency: lazy metadata loads are mutex-guarded so concurrent
/// sessions may resolve tables in parallel. The catalog carries monotonic
/// schema/statistics version counters — the delegation-plan cache folds
/// them into its placement fingerprint, so invalidating a table's metadata
/// retires every cached plan built against the stale versions.
class GlobalCatalog : public RelationResolver {
 public:
  /// Discovers all base tables on all connectors (table listing only;
  /// schemas/stats are fetched lazily per query).
  explicit GlobalCatalog(std::map<std::string, DbmsConnector*> connectors);

  Result<PlanPtr> Resolve(const std::string& db,
                          const std::string& table) override;

  /// The DBMS storing `table` (empty when unknown).
  std::string LocateTable(const std::string& table) const;

  /// Metadata round trips performed since the last reset (process-wide;
  /// under concurrency use the thread-scoped counters below for per-query
  /// attribution).
  int metadata_roundtrips() const {
    return metadata_roundtrips_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    metadata_roundtrips_.store(0, std::memory_order_relaxed);
  }

  /// Metadata round trips performed by the *calling thread* since its last
  /// ResetThreadRoundtrips() — deterministic per query even when sessions
  /// share the catalog.
  static int ThreadRoundtrips();
  static void ResetThreadRoundtrips();

  // --- schema/statistics versioning (plan-cache fingerprint inputs) ---

  /// Monotonic counter bumped whenever a table's cached schema is
  /// invalidated (simulates DDL on a component DBMS).
  int64_t catalog_version() const {
    return catalog_version_.load(std::memory_order_acquire);
  }

  /// Monotonic counter bumped whenever a table's cached statistics are
  /// invalidated (simulates ANALYZE / significant data change).
  int64_t stats_version() const {
    return stats_version_.load(std::memory_order_acquire);
  }

  /// Drops `table`'s cached schema+stats (re-fetched on next resolve) and
  /// bumps the catalog version. Unknown tables still bump the version (the
  /// set of tables itself changed from the caller's point of view).
  void InvalidateTable(const std::string& table);

  /// Drops `table`'s cached metadata and bumps the *stats* version only —
  /// placements chosen from the old statistics are no longer trustworthy,
  /// but the schema is unchanged.
  void InvalidateStats(const std::string& table);

 private:
  struct TableMeta {
    std::string server;
    Schema schema;
    TableStats stats;
    bool loaded = false;
  };

  std::map<std::string, DbmsConnector*> connectors_;
  mutable std::mutex mu_;  // guards tables_ meta mutation (lazy loads)
  std::map<std::string, TableMeta> tables_;  // global table name -> meta
  std::atomic<int> metadata_roundtrips_{0};
  std::atomic<int64_t> catalog_version_{0};
  std::atomic<int64_t> stats_version_{0};
};

}  // namespace xdb
