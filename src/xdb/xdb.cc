#include "src/xdb/xdb.h"

#include <chrono>

#include "src/sql/parser.h"
#include "src/xdb/annotator.h"
#include "src/xdb/finalizer.h"

namespace xdb {

namespace {

Dialect DialectForVendor(const std::string& vendor) {
  if (vendor == "mariadb") return Dialect::MariaDb();
  if (vendor == "hive") return Dialect::Hive();
  return Dialect::Postgres();
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

XdbSystem::XdbSystem(Federation* fed, XdbOptions options)
    : fed_(fed), options_(std::move(options)) {
  fed_->network().AddNode(options_.middleware_node);
  for (const auto& name : fed_->ServerNames()) {
    DatabaseServer* server = fed_->GetServer(name);
    // >0 only: a default-constructed system must not clobber an explicit
    // per-server setting (federations are shared across systems in benches).
    if (options_.exec_threads > 0) {
      server->set_exec_threads(options_.exec_threads);
    }
    auto dc = std::make_unique<DbmsConnector>(
        server, DialectForVendor(server->profile().vendor), fed_,
        options_.middleware_node);
    connector_ptrs_[name] = dc.get();
    connectors_[name] = std::move(dc);
  }
  catalog_ = std::make_unique<GlobalCatalog>(connector_ptrs_);
}

DbmsConnector* XdbSystem::connector(const std::string& server) const {
  auto it = connector_ptrs_.find(server);
  return it != connector_ptrs_.end() ? it->second : nullptr;
}

double XdbSystem::Rtt(const std::string& server) const {
  LinkProps link =
      fed_->network().GetLink(options_.middleware_node, server);
  return 2.0 * link.latency;
}

Result<XdbReport> XdbSystem::Query(const std::string& sql) {
  XdbReport report;
  const double wall_start = NowSeconds();
  const int query_id = ++query_counter_;

  catalog_->ResetCounters();
  for (auto& [name, dc] : connector_ptrs_) dc->ResetCounters();

  // --- Preparation: parse/analyze + gather metadata via connectors. ---
  XDB_ASSIGN_OR_RETURN(sql::SelectPtr stmt, sql::ParseSelect(sql));
  double prep_rtt = 0;
  // Touch every referenced base table (recursing into derived tables) so
  // schema + statistics are fetched through the owning DBMS's connector
  // (cached across queries).
  std::function<Status(const sql::SelectStmt&)> touch =
      [&](const sql::SelectStmt& sel) -> Status {
    for (const auto& ref : sel.from) {
      if (ref.subquery) {
        XDB_RETURN_NOT_OK(touch(*ref.subquery));
        continue;
      }
      XDB_RETURN_NOT_OK(catalog_->Resolve(ref.db, ref.table).status());
      std::string server = catalog_->LocateTable(ref.table);
      if (!server.empty()) prep_rtt += Rtt(server);
    }
    return Status::OK();
  };
  XDB_RETURN_NOT_OK(touch(*stmt));
  report.metadata_roundtrips = catalog_->metadata_roundtrips();
  report.phases.prep =
      options_.parse_analyze_cost +
      report.metadata_roundtrips * options_.metadata_roundtrip_cost +
      prep_rtt;

  // --- Logical optimization (pushdowns + left-deep join ordering). ---
  Planner planner(catalog_.get(), options_.planner);
  XDB_ASSIGN_OR_RETURN(PlanPtr plan, planner.Plan(*stmt));
  size_t njoins = stmt->from.size() > 0 ? stmt->from.size() - 1 : 0;
  report.phases.lopt = options_.lopt_base_cost +
                       options_.lopt_per_join_cost *
                           static_cast<double>(njoins);

  // --- Plan annotation (consulting) + finalization. ---
  Annotator annotator(connector_ptrs_, &fed_->network(),
                      static_cast<MovementPolicy>(options_.movement_policy));
  XDB_RETURN_NOT_OK(annotator.Annotate(plan.get()));
  report.consultations = annotator.consultations();
  double ann_rtt = 0;
  // Each consultation is one round trip to one of the two candidate DBMSes;
  // charge the average middleware<->DBMS RTT.
  for (int i = 0; i < report.consultations; ++i) {
    ann_rtt += options_.consultation_cost;
  }
  report.phases.ann = ann_rtt;

  XDB_ASSIGN_OR_RETURN(DelegationPlan dplan, FinalizePlan(*plan, query_id));

  // --- Delegation + execution (the paper's combined exec phase). ---
  DelegationEngine engine(connector_ptrs_);
  fed_->BeginRun(dplan.tasks.back().server);
  Result<XdbQuery> xdb_query = engine.Deploy(&dplan);
  if (!xdb_query.ok()) {
    fed_->FinishRun();
    (void)engine.Cleanup();
    return xdb_query.status();
  }
  // The client triggers the in-situ execution with the XDB query.
  DbmsConnector* root_dc = connector_ptrs_.at(xdb_query->server);
  Result<TablePtr> result = root_dc->RunQuery(xdb_query->sql);
  if (!result.ok()) {
    fed_->FinishRun();
    (void)engine.Cleanup();
    return result.status();
  }
  // The final result is the only data that leaves the federation.
  fed_->network().RecordTransfer(xdb_query->server,
                                 options_.middleware_node,
                                 static_cast<double>(
                                     (*result)->SerializedSize()),
                                 1);
  report.trace = fed_->FinishRun();
  report.ddl_statements = engine.ddl_count();
  report.ddl_log = engine.ddl_log();

  TimingModel model(fed_, TimingOptions{options_.scale_up});
  report.exec_timing = model.ModelRun(report.trace);
  report.phases.exec =
      report.exec_timing.total +
      report.ddl_statements * options_.ddl_roundtrip_cost;

  report.result = std::move(result).value();
  report.plan = std::move(dplan);
  report.xdb_query = *xdb_query;

  if (options_.cleanup_after_query) {
    XDB_RETURN_NOT_OK(engine.Cleanup());
  }
  report.wall_seconds = NowSeconds() - wall_start;
  return report;
}

}  // namespace xdb
