#include "src/xdb/xdb.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <functional>
#include <optional>
#include <thread>

#include "src/common/json_writer.h"
#include "src/common/thread_pool.h"
#include "src/exec/executor.h"
#include "src/obs/introspect.h"
#include "src/plan/estimator.h"
#include "src/plan/planner.h"
#include "src/plan/stats.h"
#include "src/sql/parser.h"
#include "src/testing/fault_injector.h"
#include "src/xdb/annotator.h"
#include "src/xdb/finalizer.h"

namespace xdb {

namespace {

Dialect DialectForVendor(const std::string& vendor) {
  if (vendor == "mariadb") return Dialect::MariaDb();
  if (vendor == "hive") return Dialect::Hive();
  return Dialect::Postgres();
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void HashCombine(uint64_t* h, uint64_t v) {
  *h ^= v + 0x9e3779b97f4a7c15ULL + (*h << 6) + (*h >> 2);
}

/// Engine profiles are fixed at federation setup, so this hash is computed
/// once; it exists so a cache carried across reconfigured federations (e.g.
/// in tests) can never serve a plan annotated under different cost models.
uint64_t HashProfiles(Federation* fed) {
  std::hash<std::string> hs;
  std::hash<double> hd;
  uint64_t h = 0;
  for (const auto& name : fed->ServerNames()) {
    const EngineProfile& p = fed->GetServer(name)->profile();
    HashCombine(&h, hs(name));
    HashCombine(&h, hs(p.vendor));
    for (double c : {p.scan_row_cost, p.join_row_cost, p.agg_row_cost,
                     p.sort_row_cost, p.materialize_row_cost, p.startup_cost,
                     p.fetch_row_cost, p.wire_inflation}) {
      HashCombine(&h, hd(c));
    }
    HashCombine(&h, static_cast<uint64_t>(p.parallelism));
  }
  return h;
}

std::string AsciiLower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Case-insensitive substring probe for the `xdb_stat.` qualifier — the
/// cheap pre-filter that keeps non-introspection queries at one scan of the
/// raw SQL text (false positives are sorted out by parsing the FROM list).
bool MentionsXdbStat(const std::string& sql) {
  static constexpr char kNeedle[] = "xdb_stat.";
  constexpr size_t n = sizeof(kNeedle) - 1;
  if (sql.size() < n) return false;
  for (size_t i = 0; i + n <= sql.size(); ++i) {
    size_t j = 0;
    while (j < n && std::tolower(static_cast<unsigned char>(sql[i + j])) ==
                        kNeedle[j]) {
      ++j;
    }
    if (j == n) return true;
  }
  return false;
}

/// Mediator-local execution services for an introspection query: relations
/// resolve against the per-query snapshot map, and foreign fetches are
/// structurally impossible (every `xdb_stat` scan is pinned local).
class IntrospectionExecContext : public ExecContext {
 public:
  IntrospectionExecContext(const std::map<std::string, TablePtr>* snapshots,
                           int threads)
      : snapshots_(snapshots), threads_(threads) {}

  Result<TablePtr> GetLocalTable(const std::string& name) override {
    auto it = snapshots_->find(AsciiLower(name));
    if (it == snapshots_->end()) {
      return Status::CatalogError("unknown system table '" + name + "'");
    }
    return it->second;
  }

  Result<TablePtr> ForeignFetch(const std::string& server,
                                const std::string& relation, double,
                                double) override {
    return Status::Internal("introspection queries are mediator-local: "
                            "unexpected foreign fetch of '" + relation +
                            "' from '" + server + "'");
  }

  ComputeTrace* trace() override { return &trace_; }
  int exec_threads() const override { return threads_; }

 private:
  const std::map<std::string, TablePtr>* snapshots_;
  int threads_;
  ComputeTrace trace_;
};

/// Resolves FROM refs of an introspection query to scans over the
/// query-start snapshots (never the GlobalCatalog — zero roundtrips).
class IntrospectionResolver : public RelationResolver {
 public:
  explicit IntrospectionResolver(
      const std::map<std::string, TablePtr>* snapshots)
      : snapshots_(snapshots) {}

  Result<PlanPtr> Resolve(const std::string& db,
                          const std::string& table) override {
    std::string key = AsciiLower(table);
    auto it = snapshots_->find(key);
    if (it == snapshots_->end()) {
      return Status::CatalogError("unknown system table '" + db + "." +
                                  table + "'");
    }
    const TablePtr& snap = it->second;
    return PlanNode::MakeScan(kXdbStatDb, key, key, snap->schema(),
                              ComputeTableStats(*snap));
  }

 private:
  const std::map<std::string, TablePtr>* snapshots_;
};

/// Coarse predicate class of an operator's detail string, a calibration
/// feature: range subsumes equality ("<=" contains '='), LIKE wins over
/// both, "none" covers scans/joins/aggregates without inline predicates.
std::string PredicateClass(const std::string& detail) {
  if (detail.find("LIKE") != std::string::npos ||
      detail.find(" like ") != std::string::npos) {
    return "like";
  }
  if (detail.find('<') != std::string::npos ||
      detail.find('>') != std::string::npos) {
    return "range";
  }
  if (detail.find('=') != std::string::npos) return "equality";
  return "none";
}

}  // namespace

XdbSystem::XdbSystem(Federation* fed, XdbOptions options)
    : fed_(fed), options_(std::move(options)) {
  fed_->network().AddNode(options_.middleware_node);
  for (const auto& name : fed_->ServerNames()) {
    DatabaseServer* server = fed_->GetServer(name);
    // >0 only: a default-constructed system must not clobber an explicit
    // per-server setting (federations are shared across systems in benches).
    if (options_.exec_threads > 0) {
      server->set_exec_threads(options_.exec_threads);
    }
    auto dc = std::make_unique<DbmsConnector>(
        server, DialectForVendor(server->profile().vendor), fed_,
        options_.middleware_node);
    connector_ptrs_[name] = dc.get();
    connectors_[name] = std::move(dc);
  }
  catalog_ = std::make_unique<GlobalCatalog>(connector_ptrs_);
  profile_hash_ = HashProfiles(fed_);
  if (options_.plan_cache_capacity > 0) {
    plan_cache_ =
        std::make_unique<DelegationPlanCache>(options_.plan_cache_capacity);
  }
}

// Out-of-line: ~unique_ptr<IntrospectionRegistry> needs the complete type.
XdbSystem::~XdbSystem() = default;

IntrospectionRegistry* XdbSystem::EnableIntrospection(
    SessionManager* sessions) {
  // (Re-)registering is idempotent: providers are stateless views, so a
  // later call that finally has a SessionManager just swaps the standard
  // set in again with the sessions provider wired.
  if (introspect_ == nullptr || sessions != nullptr) {
    if (introspect_ == nullptr) {
      introspect_ = std::make_unique<IntrospectionRegistry>();
    }
    RegisterStandardProviders(introspect_.get(), fed_, this, sessions);
  }
  return introspect_.get();
}

std::string XdbSystem::PlacementFingerprint() const {
  // Everything annotation depends on, cheap enough to recompute per query:
  // schema/stats versions, engine profiles, placement epoch, and the policy
  // knobs (constant per system, but a cache moved between systems must not
  // cross-serve).
  return "c" + std::to_string(catalog_->catalog_version()) + ":s" +
         std::to_string(catalog_->stats_version()) + ":p" +
         std::to_string(profile_hash_) + ":e" +
         std::to_string(placement_epoch_.load(std::memory_order_acquire)) +
         ":m" + std::to_string(options_.movement_policy) + ":pl" +
         std::to_string(static_cast<int>(options_.planner.reorder_joins)) +
         std::to_string(static_cast<int>(options_.planner.prune_columns)) +
         std::to_string(static_cast<int>(options_.planner.push_down_filters)) +
         std::to_string(static_cast<int>(options_.planner.bushy_joins)) +
         // Health epoch: every breaker transition retires cached plans the
         // way a placement-epoch bump does (":h0" with no tracker).
         ":h" +
         std::to_string(fed_->health_tracker() != nullptr
                            ? fed_->health_tracker()->state_epoch()
                            : 0);
}

std::string XdbSystem::ExportCalibrationLog() const {
  JsonWriter w;
  w.BeginObject();
  w.Field("schema", "xdb-calibration-v1");
  w.Key("records");
  w.BeginArray();
  if (QueryLog* qlog = fed_->query_log()) {
    for (const QueryStats& q : qlog->SnapshotEntries()) {
      for (const EstimateActual& ea : q.estimates) {
        // Engine feature: the executing DBMS's optimizer vendor — transfer
        // records span a link, so they calibrate the wire model instead.
        std::string engine = "wire";
        if (ea.op != "transfer") {
          const DatabaseServer* server = fed_->GetServer(ea.server);
          engine = server != nullptr ? server->profile().vendor : "unknown";
        }
        w.BeginObject();
        w.Field("query_sequence", q.sequence);
        w.Field("label", q.label);
        w.Key("features");
        w.BeginObject();
        w.Field("op", ea.op);
        w.Field("predicate_class", PredicateClass(ea.detail));
        w.Field("est_input_rows", ea.est_input_rows);
        w.Field("engine", engine);
        w.Field("placement", ea.server);
        w.EndObject();
        w.Key("outcome");
        w.BeginObject();
        w.Field("est_rows", ea.est_rows);
        w.Field("act_rows", ea.act_rows);
        w.Field("est_seconds", ea.est_seconds);
        w.Field("act_seconds", ea.act_seconds);
        w.Field("est_bytes", ea.est_bytes);
        w.Field("act_bytes", ea.act_bytes);
        w.Field("q_error", ea.q_error);
        w.EndObject();
        w.EndObject();
      }
    }
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

void XdbSystem::CountPlanCache(bool hit, int evictions) {
  MetricsRegistry* metrics = fed_->metrics();
  if (metrics == nullptr) return;
  metrics
      ->GetCounter(hit ? "xdb_plan_cache_hits_total"
                       : "xdb_plan_cache_misses_total",
                   {}, hit ? "Delegation-plan cache hits"
                           : "Delegation-plan cache misses")
      ->Increment();
  CountPlanCacheEvictions(evictions);
}

void XdbSystem::CountPlanCacheEvictions(int evictions) {
  MetricsRegistry* metrics = fed_->metrics();
  if (metrics == nullptr || evictions <= 0) return;
  metrics
      ->GetCounter("xdb_plan_cache_evictions_total", {},
                   "Delegation-plan cache evictions (LRU + stale)")
      ->Increment(evictions);
}

DbmsConnector* XdbSystem::connector(const std::string& server) const {
  auto it = connector_ptrs_.find(server);
  return it != connector_ptrs_.end() ? it->second : nullptr;
}

double XdbSystem::Rtt(const std::string& server) const {
  LinkProps link =
      fed_->network().GetLink(options_.middleware_node, server);
  return 2.0 * link.latency;
}

Result<XdbReport> XdbSystem::Query(const std::string& sql) {
  return Query(sql, QueryContext{});
}

Result<XdbReport> XdbSystem::Query(const std::string& sql,
                                   const QueryContext& ctx) {
  const int query_id =
      query_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Tag every morsel this query submits so the shared pool round-robins
  // fairly across concurrent queries.
  ScopedQueryTag query_tag(static_cast<uint64_t>(query_id));
  // A session-scoped span recorder (if any) applies to this thread only.
  struct SpanOverride {
    bool set;
    explicit SpanOverride(SpanRecorder* r) : set(r != nullptr) {
      if (set) Federation::SetThreadSpanRecorder(r);
    }
    ~SpanOverride() {
      if (set) Federation::SetThreadSpanRecorder(nullptr);
    }
  } span_override(ctx.spans);

  RunTrace fail_trace;
  Result<XdbReport> result = QueryImpl(sql, ctx, query_id, &fail_trace);
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    last_trace_ = result.ok() ? result->trace : fail_trace;
  }
  RecordQueryStats(sql, result, fail_trace, ctx.label);
  return result;
}

void XdbSystem::RecordQueryStats(const std::string& sql,
                                 const Result<XdbReport>& result,
                                 const RunTrace& fail_trace,
                                 const std::string& label_hint) {
  QueryLog* qlog = fed_->query_log();
  MetricsRegistry* metrics = fed_->metrics();
  if (qlog == nullptr && metrics == nullptr) return;

  QueryStats qs;
  qs.system = "xdb";
  qs.sql = sql;
  qs.ok = result.ok();
  // The trace of a failed query is the accumulated recovery trail; a
  // successful one reports its winning round's trace.
  const RunTrace& trace = result.ok() ? result->trace : fail_trace;
  qs.useful_bytes = trace.UsefulTransferredBytes();
  qs.wasted_bytes = trace.WastedTransferredBytes();
  qs.raw_bytes = trace.TotalRawTransferredBytes();
  qs.transfer_rows = trace.TotalTransferredRows();
  qs.transfers = static_cast<int>(trace.transfers.size());
  qs.retries = static_cast<int>(trace.retries.size());
  qs.replan_rounds = trace.replan_rounds;
  qs.recovery_action = trace.recovery_action;
  qs.lost_fragments = static_cast<int>(trace.lost_fragments.size());
  // Estimate-vs-actual ledger of the executed plan. A replanned query's
  // trace is the winning round's, so these estimates belong to the plan
  // that actually ran, never to an abandoned alternate.
  qs.estimates = trace.estimates;
  // Winning round's transfer records, verbatim, for `xdb_stat.transfers`.
  qs.transfer_log = trace.transfers;
  if (result.ok()) {
    qs.prep_seconds = result->phases.prep;
    qs.lopt_seconds = result->phases.lopt;
    qs.ann_seconds = result->phases.ann;
    qs.exec_seconds = result->phases.exec;
    qs.plan_cache_hit = result->plan_cache_hit;
    qs.partial = result->partial();
    qs.completeness_fraction = result->completeness.completeness_fraction;
  } else {
    qs.error = result.status().message();
    qs.exec_seconds = trace.wasted_attempt_seconds +
                      trace.total_backoff_seconds +
                      trace.injected_delay_seconds;
  }
  TimingModel model(fed_, TimingOptions{options_.scale_up});
  for (const auto& [srv, compute] : trace.per_server) {
    const DatabaseServer* server = fed_->GetServer(srv);
    if (server == nullptr) continue;
    qs.per_server_seconds[srv] =
        model.ComputeSeconds(compute, server->profile(),
                             /*free_network=*/false);
  }
  // Hot spots are available whenever profilers happen to be attached
  // (EXPLAIN ANALYZE, benches); plain queries leave this empty.
  for (const auto& name : fed_->ServerNames()) {
    const DatabaseServer* server = fed_->GetServer(name);
    const OperatorProfiler* prof = server->profiler();
    if (prof == nullptr) continue;
    for (const auto& rec : prof->records()) {
      qs.hot_operators.emplace_back(
          name + ": " + rec.label,
          OperatorProfiler::ModelledSeconds(rec, server->profile(),
                                            options_.scale_up));
    }
  }
  std::stable_sort(qs.hot_operators.begin(), qs.hot_operators.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  if (qs.hot_operators.size() > 3) qs.hot_operators.resize(3);

  // Label priority: explicit QueryContext label (sessions), then the
  // log's pending next_label (single-threaded bench drivers; consumed by
  // Record below since qs.label stays empty), then the catch-all bucket.
  std::string label = label_hint;
  if (label.empty() && qlog != nullptr) label = qlog->next_label();
  if (label.empty()) label = "adhoc";
  qs.label = label_hint;  // empty = let Record consume the pending hint
  if (metrics != nullptr) {
    // `{query=...}` stays bounded: an explicit hint (bench drivers label
    // "Q5" etc.) or the single bucket "adhoc" — never raw SQL.
    metrics
        ->GetCounter("xdb_queries_total",
                     {{"status", qs.ok ? "ok" : "error"}},
                     "Top-level queries by final status")
        ->Increment();
    metrics
        ->GetCounter("xdb_query_modelled_seconds_total", {{"query", label}},
                     "Modelled end-to-end seconds per query label")
        ->Increment(qs.total_seconds());
  }
  if (qlog != nullptr) qlog->Record(std::move(qs));
}

Result<XdbReport> XdbSystem::RunIntrospectionQuery(const std::string& sql,
                                                   const QueryContext& ctx,
                                                   bool* handled) {
  *handled = false;
  Result<sql::SelectPtr> parsed = sql::ParseSelect(sql);
  // Parse failures fall through: the federation pipeline owns the (same)
  // error, keeping diagnostics identical for SQL that merely mentions the
  // qualifier in a literal.
  if (!parsed.ok()) return parsed.status();
  sql::SelectPtr stmt = std::move(parsed).value();

  // Classify every FROM ref (recursing into derived tables): an
  // introspection query references xdb_stat relations exclusively — the
  // system tables live outside the federation and have no placement, so
  // mixing them with component-DBMS relations is a hard error, not a
  // silent cross plan.
  std::vector<std::string> stat_tables;
  std::vector<std::string> fed_tables;
  std::function<void(const sql::SelectStmt&)> classify =
      [&](const sql::SelectStmt& sel) {
        for (const auto& ref : sel.from) {
          if (ref.subquery) {
            classify(*ref.subquery);
            continue;
          }
          if (AsciiLower(ref.db) == kXdbStatDb) {
            stat_tables.push_back(AsciiLower(ref.table));
          } else {
            fed_tables.push_back(ref.table);
          }
        }
      };
  classify(*stmt);
  if (stat_tables.empty()) {
    // `xdb_stat.` only appeared in a literal; the caller discards this.
    return Status::InvalidArgument("not an introspection query");
  }
  *handled = true;
  if (!fed_tables.empty()) {
    return Status::InvalidArgument(
        "cannot mix xdb_stat system tables with federation relations "
        "(found '" + fed_tables.front() +
        "'); query system tables separately");
  }

  // Atomically-consistent view: snapshot each referenced provider exactly
  // once, at query start, before planning. A self-join over one system
  // table therefore joins one snapshot with itself.
  std::map<std::string, TablePtr> snapshots;
  for (const auto& table : stat_tables) {
    if (snapshots.count(table) > 0) continue;
    SystemTableProvider* provider = introspect_->Find(table);
    if (provider == nullptr) {
      std::string known;
      for (const auto& name : introspect_->TableNames()) {
        known += (known.empty() ? "" : ", ") + name;
      }
      return Status::CatalogError("unknown system table 'xdb_stat." + table +
                                  "'; known system tables: [" + known + "]");
    }
    snapshots[table] = provider->Snapshot();
  }

  SpanRecorder* spans = fed_->span_recorder();
  SpanGuard introspect_span(spans, "introspect");
  if (Span* sp = introspect_span.span()) {
    sp->Tag("snapshots", static_cast<int64_t>(snapshots.size()));
  }

  XdbReport report;
  // Mediator-local planning: the normal logical optimizer over a resolver
  // that binds against the snapshots — never the GlobalCatalog, so zero
  // metadata roundtrips by construction (asserted in tests via
  // report.metadata_roundtrips).
  IntrospectionResolver resolver(&snapshots);
  Planner planner(&resolver, options_.planner);
  XDB_ASSIGN_OR_RETURN(PlanPtr plan, planner.Plan(*stmt));
  size_t njoins = stmt->from.size() > 0 ? stmt->from.size() - 1 : 0;
  report.phases.prep = options_.parse_analyze_cost;
  report.phases.lopt =
      options_.lopt_base_cost +
      options_.lopt_per_join_cost * static_cast<double>(njoins);
  fed_->ChargeBudget(report.phases.prep + report.phases.lopt);
  if (ctx.deadline_seconds > 0 && fed_->RemainingBudget() == 0.0) {
    return Status::Timeout("query deadline (" +
                           std::to_string(ctx.deadline_seconds) +
                           "s of modelled time) exhausted during "
                           "introspection planning");
  }

  // Execute on the middleware node with the normal vectorized executor.
  // No delegation, no DDL, no transfers — phases.ann and phases.exec stay
  // zero and the trace carries no transfer records.
  int threads = options_.exec_threads;
  if (threads <= 0) {
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  IntrospectionExecContext exec_ctx(&snapshots, threads);
  XDB_ASSIGN_OR_RETURN(report.result, ExecutePlan(*plan, &exec_ctx));
  report.trace.root_server = options_.middleware_node;
  report.trace.root_compute = *exec_ctx.trace();
  return report;
}

Result<XdbReport> XdbSystem::QueryImpl(const std::string& sql,
                                       const QueryContext& ctx, int query_id,
                                       RunTrace* fail_trace) {
  XdbReport report;
  const double wall_start = NowSeconds();

  // Reset up front, not at execution start: a query failing in parse or
  // prepare must not report the previous query's recovery trail (or bank
  // its bytes into the query log).
  *fail_trace = RunTrace();

  // Arm this thread's modelled-time budget + partial-results policy. Retry
  // backoff and injected delay charge automatically; planning phases and
  // failed failover rounds are charged explicitly below. Disarmed on every
  // exit path.
  fed_->ArmQueryBudget(ctx.deadline_seconds, ctx.allow_partial);
  struct DisarmBudget {
    Federation* fed;
    ~DisarmBudget() { fed->DisarmQueryBudget(); }
  } disarm_budget{fed_};
  auto budget_exhausted = [this] { return fed_->RemainingBudget() == 0.0; };
  auto deadline_status = [&](const std::string& where) {
    return Status::Timeout("query deadline (" +
                           std::to_string(ctx.deadline_seconds) +
                           "s of modelled time) exhausted " + where);
  };

  GlobalCatalog::ResetThreadRoundtrips();

  // Observability is opt-in per federation; `spans == nullptr` keeps every
  // hook below at one pointer compare and never changes modelled results.
  SpanRecorder* spans = fed_->span_recorder();
  struct FinalizeSpans {
    SpanRecorder* r;
    ~FinalizeSpans() {
      if (r != nullptr) r->FinalizeTimeline();
    }
  } finalize_spans{spans};
  SpanGuard query_span(spans, "query " + std::to_string(query_id));
  if (Span* sp = query_span.span()) sp->Tag("sql", sql);

  // --- `xdb_stat.*` system tables: mediator-local, before everything. ---
  // Routed ahead of the health consult and the plan-cache probe so an
  // introspection query never consults breakers, never probes or populates
  // the cache, and never touches the GlobalCatalog. The substring probe is
  // the only cost non-users pay — and only once introspection was enabled.
  if (introspect_ != nullptr && MentionsXdbStat(sql)) {
    bool handled = false;
    Result<XdbReport> r = RunIntrospectionQuery(sql, ctx, &handled);
    if (handled) {
      if (r.ok()) r->wall_seconds = NowSeconds() - wall_start;
      return r;
    }
    // Parsed but referenced no xdb_stat relation (the qualifier sat in a
    // string literal) — fall through to the federation pipeline.
  }

  // --- Circuit breakers: consult the health tracker once per query. ---
  // Every open breaker seeds the planning constraints, so the planner
  // routes around sick servers *before* touching them — the next query
  // after a trip makes zero attempts against the tripped server. The
  // consult may advance cooldowns (Open -> HalfOpen bumps the health
  // epoch), so it must precede the fingerprint computation below.
  PlacementConstraints constraints;
  if (HealthTracker* health = fed_->health_tracker()) {
    for (auto& sick : health->PlanningExclusions()) {
      constraints.excluded_servers.insert(std::move(sick));
    }
  }

  // --- Delegation-plan cache probe. ---
  // A hit skips parsing, preparation, logical optimization, AND the
  // annotation consultations of round 0: the cached plan is already
  // annotated for the current placement (the fingerprint proves it), so
  // prep/lopt/ann phase costs are genuinely zero.
  PlanPtr plan;         // un-annotated logical plan (miss path)
  PlanPtr cached_plan;  // annotated master clone (hit path)
  std::string norm_sql;
  std::string fingerprint;
  bool cache_hit = false;
  if (plan_cache_ != nullptr) {
    norm_sql = NormalizeSql(sql);
    fingerprint = PlacementFingerprint();
    cached_plan = plan_cache_->Lookup(norm_sql, fingerprint);
    cache_hit = cached_plan != nullptr;
    CountPlanCache(cache_hit, /*evictions=*/0);
  }
  report.plan_cache_hit = cache_hit;

  if (cache_hit) {
    if (spans != nullptr) {
      int64_t id = spans->StartSpan("plan-cache-hit");
      spans->mutable_span(id)->Tag("fingerprint", fingerprint);
      spans->EndSpan(id);
    }
  } else {
    // --- Preparation: parse/analyze + gather metadata via connectors. ---
    XDB_ASSIGN_OR_RETURN(sql::SelectPtr stmt, sql::ParseSelect(sql));
    double prep_rtt = 0;
    // Touch every referenced base table (recursing into derived tables) so
    // schema + statistics are fetched through the owning DBMS's connector
    // (cached across queries).
    std::function<Status(const sql::SelectStmt&)> touch =
        [&](const sql::SelectStmt& sel) -> Status {
      for (const auto& ref : sel.from) {
        if (ref.subquery) {
          XDB_RETURN_NOT_OK(touch(*ref.subquery));
          continue;
        }
        XDB_RETURN_NOT_OK(catalog_->Resolve(ref.db, ref.table).status());
        std::string server = catalog_->LocateTable(ref.table);
        if (!server.empty()) prep_rtt += Rtt(server);
      }
      return Status::OK();
    };
    XDB_RETURN_NOT_OK(touch(*stmt));
    // Thread-scoped count: concurrent sessions sharing the catalog must
    // each bill exactly their own lazy metadata fetches.
    report.metadata_roundtrips = GlobalCatalog::ThreadRoundtrips();
    report.phases.prep =
        options_.parse_analyze_cost +
        report.metadata_roundtrips * options_.metadata_roundtrip_cost +
        prep_rtt;
    if (spans != nullptr) {
      int64_t id = spans->StartSpan("prepare");
      Span* sp = spans->mutable_span(id);
      sp->duration_seconds = report.phases.prep;
      sp->Tag("metadata_roundtrips",
              static_cast<int64_t>(report.metadata_roundtrips));
      spans->EndSpan(id);
    }

    // --- Logical optimization (pushdowns + left-deep join ordering). ---
    Planner planner(catalog_.get(), options_.planner);
    XDB_ASSIGN_OR_RETURN(plan, planner.Plan(*stmt));
    // Stamp planning-time estimates once on the logical plan: every clone —
    // failover rounds and the cached master copy alike — then carries the
    // same est_rows/est_width annotations, so a plan-cache hit replays
    // bit-identical estimates. Write-only metadata; no modelled cost.
    Estimator().StampEstimates(*plan);
    size_t njoins = stmt->from.size() > 0 ? stmt->from.size() - 1 : 0;
    report.phases.lopt = options_.lopt_base_cost +
                         options_.lopt_per_join_cost *
                             static_cast<double>(njoins);
    if (spans != nullptr) {
      int64_t id = spans->StartSpan("logical-optimize");
      spans->mutable_span(id)->duration_seconds = report.phases.lopt;
      spans->EndSpan(id);
    }
  }

  // Preparation + logical optimization count against the deadline; failing
  // here (rather than deep in a replan round) is the fail-fast path.
  fed_->ChargeBudget(report.phases.prep + report.phases.lopt);
  if (budget_exhausted()) return deadline_status("during preparation");

  // --- Plan annotation + delegation + execution, with failover. ---
  // A retryable failure (node down, link dead) excludes the implicated
  // placement/link and re-runs annotation + deployment on a fresh clone of
  // the logical plan, up to max_failover_alternates alternate rounds. The
  // recovery trail of failed rounds accumulates into the final trace.
  RunTrace accum;  // recovery observed across failed rounds
  Status final_status = Status::OK();
  bool deadline_hit = false;  // deadline ended the failover loop
  const int max_rounds = std::max(0, options_.max_failover_alternates);
  TimingModel model(fed_, TimingOptions{options_.scale_up});

  // Once a round's trace is final, give its transfer spans the modelled
  // wire seconds (spans carry the record id; ids restart every round, so
  // only spans with id >= `begin_id` are matched against `tr`). The window
  // is a span *id*, not an index: under ring-buffer retention ids are
  // stable while positions shift.
  auto attach_transfer_seconds = [&](int64_t begin_id, const RunTrace& tr) {
    if (spans == nullptr) return;
    for (Span& s : spans->mutable_spans()) {
      if (s.id < begin_id || s.record_id < 0) continue;
      size_t idx = static_cast<size_t>(s.record_id);
      if (idx < tr.transfers.size() &&
          tr.transfers[idx].id == s.record_id) {
        s.duration_seconds = model.TransferSeconds(tr.transfers[idx]);
      }
    }
  };

  for (int round = 0;; ++round) {
    const int64_t round_span_begin =
        spans != nullptr ? spans->next_id() : 0;
    SpanGuard round_span(spans, "round " + std::to_string(round));
    // Hit path, round 0: the cached clone is already annotated — no
    // consultations, no "annotate" span. Failover rounds (and the miss
    // path) annotate a fresh clone against the current constraints; for a
    // cached plan the annotator simply overwrites the stale placements.
    PlanPtr round_plan =
        cache_hit ? cached_plan->Clone() : plan->Clone();
    const bool need_annotate =
        !cache_hit || round > 0 || !constraints.empty();
    if (need_annotate) {
      Annotator annotator(connector_ptrs_, &fed_->network(),
                          static_cast<MovementPolicy>(
                              options_.movement_policy),
                          constraints.empty() ? nullptr : &constraints);
      Status ann_st;
      {
        SpanGuard ann_span(spans, "annotate");
        ann_st = annotator.Annotate(round_plan.get());
        if (Span* sp = ann_span.span()) {
          sp->duration_seconds =
              annotator.consultations() * options_.consultation_cost;
          sp->Tag("consultations",
                  static_cast<int64_t>(annotator.consultations()));
        }
      }
      report.consultations += annotator.consultations();
      // Each consultation is one round trip to one of the two candidate
      // DBMSes.
      report.phases.ann +=
          annotator.consultations() * options_.consultation_cost;
      fed_->ChargeBudget(annotator.consultations() *
                         options_.consultation_cost);
      if (!ann_st.ok()) {
        // Exclusions emptied the candidate set (kUnavailable) or the plan
        // is unannotatable outright — nothing left to try either way.
        final_status = std::move(ann_st);
        break;
      }
      if (budget_exhausted()) {
        deadline_hit = true;
        final_status = deadline_status("during plan annotation");
        break;
      }
      // First successful unconstrained annotation: this plan is the one
      // worth caching (constrained rounds bake failover exclusions into
      // their placements — never cache those).
      if (!cache_hit && plan_cache_ != nullptr && round == 0 &&
          constraints.empty()) {
        int evicted =
            plan_cache_->Insert(norm_sql, fingerprint, round_plan->Clone());
        CountPlanCacheEvictions(evicted);  // the miss was counted at lookup
      }
    }

    // Later rounds get their own name prefix: a fault window may have left
    // the previous round's rollback incomplete, and redeployment must not
    // collide with relations still awaiting cleanup.
    std::string prefix = round == 0
                             ? ctx.ddl_prefix
                             : ctx.ddl_prefix + "_r" + std::to_string(round);
    Result<DelegationPlan> dplan_r =
        FinalizePlan(*round_plan, query_id, prefix);
    if (!dplan_r.ok()) {
      final_status = dplan_r.status();
      break;
    }
    DelegationPlan dplan = std::move(dplan_r).value();
    const std::string round_root = dplan.tasks.back().server;

    DelegationEngine engine(connector_ptrs_, fed_);
    fed_->BeginRun(round_root);
    std::optional<Result<XdbQuery>> deploy_result;
    {
      SpanGuard deploy_span(spans, "deploy");
      if (Span* sp = deploy_span.span()) {
        sp->Tag("tasks", static_cast<int64_t>(dplan.tasks.size()));
        sp->Tag("root", round_root);
      }
      deploy_result.emplace(engine.Deploy(&dplan));
    }
    Result<XdbQuery>& xdb_query = *deploy_result;
    Status run_status = xdb_query.status();
    if (xdb_query.ok()) {
      // The client triggers the in-situ execution with the XDB query.
      DbmsConnector* root_dc = connector_ptrs_.at(xdb_query->server);
      int64_t exec_span_id = -1;
      std::optional<Result<TablePtr>> exec_result;
      {
        SpanGuard exec_span(spans, "execute");
        exec_span_id = exec_span.id();
        if (Span* sp = exec_span.span()) sp->Tag("server", xdb_query->server);
        exec_result.emplace(root_dc->RunQuery(xdb_query->sql));
      }
      Result<TablePtr>& result = *exec_result;
      run_status = result.status();
      // Root triggering is a single attempt (retry lives below in the
      // fetch/DDL paths); its verdict still feeds the health tracker —
      // except when the failure bubbled up from a foreign fetch, which
      // already charged the remote it named. Blaming the (healthy) root
      // too would trip every breaker on the path of one sick server.
      const bool remote_attributed =
          !run_status.ok() && run_status.message().find("foreign fetch of ") !=
                                  std::string::npos;
      if (!remote_attributed) {
        fed_->RecordHealthOutcome(xdb_query->server, 1, run_status);
      }
      if (result.ok()) {
        // The final result is the only data that leaves the federation.
        const bool enc_wire =
            fed_->wire_format() == WireFormat::kColumnar;
        const double result_raw =
            static_cast<double>((*result)->SerializedSize());
        const double result_bytes =
            enc_wire
                ? std::min(result_raw, static_cast<double>(
                                           (*result)->EncodedSerializedSize()))
                : result_raw;
        fed_->network().RecordTransfer(xdb_query->server,
                                       options_.middleware_node, result_bytes,
                                       1, enc_wire);
        report.trace = fed_->FinishRun();

        // Fold the failed rounds' recovery trail into the winning trace.
        report.trace.retries.insert(report.trace.retries.begin(),
                                    accum.retries.begin(),
                                    accum.retries.end());
        report.trace.total_backoff_seconds += accum.total_backoff_seconds;
        report.trace.injected_delay_seconds += accum.injected_delay_seconds;
        report.trace.wasted_attempt_seconds += accum.wasted_attempt_seconds;
        // Compute spent serving failed rounds' transfers really happened on
        // those servers — fold it into the per-server totals (it is already
        // part of wasted_attempt_seconds on the time side).
        for (const auto& [srv, compute] : accum.per_server) {
          report.trace.per_server[srv].Add(compute);
        }
        report.trace.replan_rounds = round;
        report.trace.excluded_servers.assign(
            constraints.excluded_servers.begin(),
            constraints.excluded_servers.end());
        if (round > 0 && report.trace.recovery_action != "failed" &&
            report.trace.recovery_action != "degraded") {
          report.trace.recovery_action = "replanned";
        }

        // Completeness over the winning round only: a fragment lost in a
        // *failed* round was re-fetched by the replan, so it doesn't make
        // the result incomplete. Fragment-count based — est_rows of lost
        // fragments are estimates, not ground truth.
        report.completeness.lost = report.trace.lost_fragments;
        report.completeness.complete = report.trace.lost_fragments.empty();
        if (!report.completeness.complete) {
          double delivered = 0;
          for (const auto& t : report.trace.transfers) {
            if (!t.failed) delivered += 1;
          }
          const double lost =
              static_cast<double>(report.trace.lost_fragments.size());
          report.completeness.completeness_fraction =
              delivered / (delivered + lost);
        }

        report.ddl_statements = engine.ddl_count();
        report.ddl_log = engine.ddl_log();
        report.exec_timing = model.ModelRun(report.trace);
        attach_transfer_seconds(round_span_begin, report.trace);
        if (spans != nullptr && exec_span_id >= 0) {
          spans->mutable_span(exec_span_id)->duration_seconds =
              report.exec_timing.total;
        }
        fed_->CountReplanRounds(round);
        report.phases.exec =
            report.exec_timing.total +
            report.ddl_statements * options_.ddl_roundtrip_cost +
            report.trace.total_backoff_seconds +
            report.trace.injected_delay_seconds +
            report.trace.wasted_attempt_seconds;

        report.result = std::move(result).value();
        report.plan = std::move(dplan);
        report.xdb_query = *xdb_query;
        if (round > 0) {
          // Failover changed the placement landscape; retire every cached
          // plan built before it by advancing the epoch.
          placement_epoch_.fetch_add(1, std::memory_order_acq_rel);
        }

        if (options_.cleanup_after_query) {
          XDB_RETURN_NOT_OK(engine.Cleanup());
        }
        report.wall_seconds = NowSeconds() - wall_start;
        return report;
      }
      // Execution failed after a successful deploy: roll the cascade back
      // (Deploy-time failures already rolled themselves back).
      (void)engine.Cleanup();
      fed_->NoteRecovery("rolled-back");
    }

    // This round is lost. Bank its recovery trail and its modelled cost.
    RunTrace failed = fed_->FinishRun();
    attach_transfer_seconds(round_span_begin, failed);
    accum.retries.insert(accum.retries.end(), failed.retries.begin(),
                         failed.retries.end());
    accum.total_backoff_seconds += failed.total_backoff_seconds;
    accum.injected_delay_seconds += failed.injected_delay_seconds;
    // Per-server compute of the lost round: the servers really did that
    // work to serve the round's transfers, so it stays on their totals.
    for (const auto& [srv, compute] : failed.per_server) {
      accum.per_server[srv].Add(compute);
    }
    const double round_cost = model.ModelRun(failed).total +
                              engine.ddl_count() * options_.ddl_roundtrip_cost;
    accum.wasted_attempt_seconds += round_cost;
    // Backoff and injected delay already charged themselves as they
    // happened; the round's modelled execution time charges here.
    fed_->ChargeBudget(round_cost);

    if (!run_status.IsRetryable() || round >= max_rounds) {
      final_status = std::move(run_status);
      break;
    }
    if (budget_exhausted()) {
      // Fail fast with kTimeout instead of burning further replan rounds
      // the deadline can no longer pay for.
      deadline_hit = true;
      final_status = deadline_status(
          "after " + std::to_string(round + 1) + " round(s): " +
          run_status.message());
      break;
    }

    // Decide what to exclude for the next round, preferring the injector's
    // precise fault site, then the engine's failure site, then the round's
    // root server. No new exclusion means no way to make progress.
    bool progressed = false;
    const FaultInjector* inj = fed_->fault_injector();
    // Snapshot, not live reference: under concurrent serving another
    // session's fault may land between reads.
    std::optional<FaultEvent> fault;
    if (inj != nullptr) fault = inj->LastFaultSnapshot();
    if (fault.has_value() && fault->kind == FaultKind::kLinkDrop &&
        !fault->peer.empty()) {
      progressed = constraints.blocked_links
                       .insert(PlacementConstraints::LinkKey(fault->server,
                                                             fault->peer))
                       .second;
    }
    if (!progressed) {
      std::string culprit;
      if (engine.last_failure().has_value()) {
        culprit = engine.last_failure()->server;
      } else if (fault.has_value()) {
        culprit = fault->server;
      } else {
        culprit = round_root;
      }
      if (!culprit.empty()) {
        progressed = constraints.excluded_servers.insert(culprit).second;
      }
    }
    if (!progressed) {
      final_status = std::move(run_status);
      break;
    }
    accum.replan_rounds = round + 1;
  }

  // Every alternate exhausted (or the failure was terminal). Preserve the
  // recovery trail and name what was unavailable.
  accum.recovery_action = "failed";
  accum.excluded_servers.assign(constraints.excluded_servers.begin(),
                                constraints.excluded_servers.end());
  fed_->CountReplanRounds(accum.replan_rounds);
  if (!constraints.empty()) {
    // Even a failed query learned that some placements are bad — cached
    // plans that might route through them must not be served again.
    placement_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  *fail_trace = std::move(accum);
  // A deadline timeout surfaces as kTimeout untouched — callers (and
  // tests) distinguish "out of budget" from "ran out of alternates".
  if (!deadline_hit && final_status.IsRetryable() && !constraints.empty()) {
    std::string unavailable;
    for (const auto& s : constraints.excluded_servers) {
      unavailable += (unavailable.empty() ? "" : ", ") + s;
    }
    for (const auto& [a, b] : constraints.blocked_links) {
      unavailable +=
          (unavailable.empty() ? "" : ", ") + a + "<->" + b;
    }
    return Status::Unavailable(
        "query failed after " + std::to_string(fail_trace->replan_rounds) +
        " failover round(s); unavailable: [" + unavailable +
        "]: " + final_status.message());
  }
  return final_status;
}

Result<TablePtr> XdbSystem::ExplainAnalyze(const std::string& sql) {
  return ExplainAnalyze(sql, QueryContext{});
}

Result<TablePtr> XdbSystem::ExplainAnalyze(const std::string& sql,
                                           const QueryContext& ctx) {
  // One profiler per component DBMS; detached again before returning so
  // subsequent queries go back to the unprofiled fast path.
  std::map<std::string, OperatorProfiler> profilers;
  for (const auto& name : fed_->ServerNames()) {
    fed_->GetServer(name)->set_profiler(&profilers[name]);
  }
  Result<XdbReport> report = Query(sql, ctx);
  for (const auto& name : fed_->ServerNames()) {
    fed_->GetServer(name)->set_profiler(nullptr);
  }
  XDB_RETURN_NOT_OK(report.status());

  auto table = std::make_shared<Table>(Schema({{"plan", TypeId::kString}}));
  auto emit = [&](const std::string& line) {
    table->AppendRow({Value::String(line)});
  };
  char buf[256];
  const PhaseBreakdown& ph = report->phases;
  std::snprintf(buf, sizeof(buf),
                "phases: prep=%.3fs lopt=%.3fs ann=%.3fs exec=%.3fs "
                "total=%.3fs",
                ph.prep, ph.lopt, ph.ann, ph.exec, ph.total());
  emit(buf);
  const RunTrace& trace = report->trace;
  std::snprintf(buf, sizeof(buf),
                "transfers: %zu (%.0f rows, useful=%.0f B, wasted=%.0f B)",
                trace.transfers.size(), trace.TotalTransferredRows(),
                trace.UsefulTransferredBytes(),
                trace.WastedTransferredBytes());
  emit(buf);
  // Completeness section: only for partial results, so complete runs stay
  // byte-identical to before graceful degradation existed.
  if (report->partial()) {
    std::snprintf(buf, sizeof(buf),
                  "completeness: PARTIAL (%.0f%% of fragments delivered, "
                  "%zu lost)",
                  report->completeness.completeness_fraction * 100.0,
                  report->completeness.lost.size());
    emit(buf);
    for (const auto& l : report->completeness.lost) {
      std::snprintf(buf, sizeof(buf),
                    "  lost %s@%s -> %s (%s, est %.0f rows)",
                    l.relation.c_str(), l.server.c_str(), l.consumer.c_str(),
                    l.reason.c_str(), l.est_rows);
      emit(buf);
    }
  }
  // Wire-encoding summary: only when something actually shipped encoded,
  // so raw-mode output stays byte-identical to before the columnar wire.
  bool any_encoded = false;
  for (const auto& t : trace.transfers) any_encoded |= t.encoded;
  if (any_encoded) {
    std::snprintf(buf, sizeof(buf),
                  "wire: columnar (raw=%.0f B, encoded=%.0f B, ratio=%.2fx)",
                  trace.TotalRawTransferredBytes(),
                  trace.TotalTransferredBytes(), trace.CompressionRatio());
    emit(buf);
  }
  for (const auto& name : fed_->ServerNames()) {
    const OperatorProfiler& prof = profilers[name];
    bool served = false;
    double srv_raw = 0;
    double srv_enc = 0;
    if (any_encoded) {
      for (const auto& t : trace.transfers) {
        if (t.src != name || !t.encoded) continue;
        served = true;
        srv_raw += t.raw_bytes;
        srv_enc += t.bytes;
      }
    }
    if (prof.records().empty() && !served) continue;
    const DatabaseServer* server = fed_->GetServer(name);
    emit("server " + name + " (" + server->profile().vendor + "):");
    if (served) {
      std::snprintf(buf, sizeof(buf),
                    "  shipped: raw=%.0f B encoded=%.0f B (%.2fx)", srv_raw,
                    srv_enc, srv_enc > 0 ? srv_raw / srv_enc : 1.0);
      emit(buf);
    }
    for (const auto& line :
         prof.Render(server->profile(), options_.scale_up)) {
      emit("  " + line);
    }
  }
  return table;
}

}  // namespace xdb
