#include "src/xdb/xdb.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "src/sql/parser.h"
#include "src/testing/fault_injector.h"
#include "src/xdb/annotator.h"
#include "src/xdb/finalizer.h"

namespace xdb {

namespace {

Dialect DialectForVendor(const std::string& vendor) {
  if (vendor == "mariadb") return Dialect::MariaDb();
  if (vendor == "hive") return Dialect::Hive();
  return Dialect::Postgres();
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

XdbSystem::XdbSystem(Federation* fed, XdbOptions options)
    : fed_(fed), options_(std::move(options)) {
  fed_->network().AddNode(options_.middleware_node);
  for (const auto& name : fed_->ServerNames()) {
    DatabaseServer* server = fed_->GetServer(name);
    // >0 only: a default-constructed system must not clobber an explicit
    // per-server setting (federations are shared across systems in benches).
    if (options_.exec_threads > 0) {
      server->set_exec_threads(options_.exec_threads);
    }
    auto dc = std::make_unique<DbmsConnector>(
        server, DialectForVendor(server->profile().vendor), fed_,
        options_.middleware_node);
    connector_ptrs_[name] = dc.get();
    connectors_[name] = std::move(dc);
  }
  catalog_ = std::make_unique<GlobalCatalog>(connector_ptrs_);
}

DbmsConnector* XdbSystem::connector(const std::string& server) const {
  auto it = connector_ptrs_.find(server);
  return it != connector_ptrs_.end() ? it->second : nullptr;
}

double XdbSystem::Rtt(const std::string& server) const {
  LinkProps link =
      fed_->network().GetLink(options_.middleware_node, server);
  return 2.0 * link.latency;
}

Result<XdbReport> XdbSystem::Query(const std::string& sql) {
  Result<XdbReport> result = QueryImpl(sql);
  RecordQueryStats(sql, result);
  return result;
}

void XdbSystem::RecordQueryStats(const std::string& sql,
                                 const Result<XdbReport>& result) {
  QueryLog* qlog = fed_->query_log();
  MetricsRegistry* metrics = fed_->metrics();
  if (qlog == nullptr && metrics == nullptr) return;

  QueryStats qs;
  qs.system = "xdb";
  qs.sql = sql;
  qs.ok = result.ok();
  // The trace of a failed query is the accumulated recovery trail; a
  // successful one reports its winning round's trace.
  const RunTrace& trace = result.ok() ? result->trace : last_trace_;
  qs.useful_bytes = trace.UsefulTransferredBytes();
  qs.wasted_bytes = trace.WastedTransferredBytes();
  qs.transfer_rows = trace.TotalTransferredRows();
  qs.transfers = static_cast<int>(trace.transfers.size());
  qs.retries = static_cast<int>(trace.retries.size());
  qs.replan_rounds = trace.replan_rounds;
  qs.recovery_action = trace.recovery_action;
  if (result.ok()) {
    qs.prep_seconds = result->phases.prep;
    qs.lopt_seconds = result->phases.lopt;
    qs.ann_seconds = result->phases.ann;
    qs.exec_seconds = result->phases.exec;
  } else {
    qs.error = result.status().message();
    qs.exec_seconds = trace.wasted_attempt_seconds +
                      trace.total_backoff_seconds +
                      trace.injected_delay_seconds;
  }
  TimingModel model(fed_, TimingOptions{options_.scale_up});
  for (const auto& [srv, compute] : trace.per_server) {
    const DatabaseServer* server = fed_->GetServer(srv);
    if (server == nullptr) continue;
    qs.per_server_seconds[srv] =
        model.ComputeSeconds(compute, server->profile(),
                             /*free_network=*/false);
  }
  // Hot spots are available whenever profilers happen to be attached
  // (EXPLAIN ANALYZE, benches); plain queries leave this empty.
  for (const auto& name : fed_->ServerNames()) {
    const DatabaseServer* server = fed_->GetServer(name);
    const OperatorProfiler* prof = server->profiler();
    if (prof == nullptr) continue;
    for (const auto& rec : prof->records()) {
      qs.hot_operators.emplace_back(
          name + ": " + rec.label,
          OperatorProfiler::ModelledSeconds(rec, server->profile(),
                                            options_.scale_up));
    }
  }
  std::stable_sort(qs.hot_operators.begin(), qs.hot_operators.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  if (qs.hot_operators.size() > 3) qs.hot_operators.resize(3);

  if (metrics != nullptr) {
    // `{query=...}` stays bounded: an explicit hint (bench drivers label
    // "Q5" etc.) or the single bucket "adhoc" — never raw SQL.
    std::string label =
        qlog != nullptr && !qlog->next_label().empty() ? qlog->next_label()
                                                       : "adhoc";
    metrics
        ->GetCounter("xdb_queries_total",
                     {{"status", qs.ok ? "ok" : "error"}},
                     "Top-level queries by final status")
        ->Increment();
    metrics
        ->GetCounter("xdb_query_modelled_seconds_total", {{"query", label}},
                     "Modelled end-to-end seconds per query label")
        ->Increment(qs.total_seconds());
  }
  if (qlog != nullptr) qlog->Record(std::move(qs));
}

Result<XdbReport> XdbSystem::QueryImpl(const std::string& sql) {
  XdbReport report;
  const double wall_start = NowSeconds();
  const int query_id = ++query_counter_;

  // Reset up front, not at execution start: a query failing in parse or
  // prepare must not report the previous query's recovery trail (or bank
  // its bytes into the query log).
  last_trace_ = RunTrace();

  catalog_->ResetCounters();
  for (auto& [name, dc] : connector_ptrs_) dc->ResetCounters();

  // Observability is opt-in per federation; `spans == nullptr` keeps every
  // hook below at one pointer compare and never changes modelled results.
  SpanRecorder* spans = fed_->span_recorder();
  struct FinalizeSpans {
    SpanRecorder* r;
    ~FinalizeSpans() {
      if (r != nullptr) r->FinalizeTimeline();
    }
  } finalize_spans{spans};
  SpanGuard query_span(spans, "query " + std::to_string(query_id));
  if (Span* sp = query_span.span()) sp->Tag("sql", sql);

  // --- Preparation: parse/analyze + gather metadata via connectors. ---
  XDB_ASSIGN_OR_RETURN(sql::SelectPtr stmt, sql::ParseSelect(sql));
  double prep_rtt = 0;
  // Touch every referenced base table (recursing into derived tables) so
  // schema + statistics are fetched through the owning DBMS's connector
  // (cached across queries).
  std::function<Status(const sql::SelectStmt&)> touch =
      [&](const sql::SelectStmt& sel) -> Status {
    for (const auto& ref : sel.from) {
      if (ref.subquery) {
        XDB_RETURN_NOT_OK(touch(*ref.subquery));
        continue;
      }
      XDB_RETURN_NOT_OK(catalog_->Resolve(ref.db, ref.table).status());
      std::string server = catalog_->LocateTable(ref.table);
      if (!server.empty()) prep_rtt += Rtt(server);
    }
    return Status::OK();
  };
  XDB_RETURN_NOT_OK(touch(*stmt));
  report.metadata_roundtrips = catalog_->metadata_roundtrips();
  report.phases.prep =
      options_.parse_analyze_cost +
      report.metadata_roundtrips * options_.metadata_roundtrip_cost +
      prep_rtt;
  if (spans != nullptr) {
    int64_t id = spans->StartSpan("prepare");
    Span* sp = spans->mutable_span(id);
    sp->duration_seconds = report.phases.prep;
    sp->Tag("metadata_roundtrips",
            static_cast<int64_t>(report.metadata_roundtrips));
    spans->EndSpan(id);
  }

  // --- Logical optimization (pushdowns + left-deep join ordering). ---
  Planner planner(catalog_.get(), options_.planner);
  XDB_ASSIGN_OR_RETURN(PlanPtr plan, planner.Plan(*stmt));
  size_t njoins = stmt->from.size() > 0 ? stmt->from.size() - 1 : 0;
  report.phases.lopt = options_.lopt_base_cost +
                       options_.lopt_per_join_cost *
                           static_cast<double>(njoins);
  if (spans != nullptr) {
    int64_t id = spans->StartSpan("logical-optimize");
    spans->mutable_span(id)->duration_seconds = report.phases.lopt;
    spans->EndSpan(id);
  }

  // --- Plan annotation + delegation + execution, with failover. ---
  // A retryable failure (node down, link dead) excludes the implicated
  // placement/link and re-runs annotation + deployment on a fresh clone of
  // the logical plan, up to max_failover_alternates alternate rounds. The
  // recovery trail of failed rounds accumulates into the final trace.
  PlacementConstraints constraints;
  RunTrace accum;  // recovery observed across failed rounds
  Status final_status = Status::OK();
  const int max_rounds = std::max(0, options_.max_failover_alternates);
  TimingModel model(fed_, TimingOptions{options_.scale_up});

  // Once a round's trace is final, give its transfer spans the modelled
  // wire seconds (spans carry the record id; ids restart every round, so
  // only spans with id >= `begin_id` are matched against `tr`). The window
  // is a span *id*, not an index: under ring-buffer retention ids are
  // stable while positions shift.
  auto attach_transfer_seconds = [&](int64_t begin_id, const RunTrace& tr) {
    if (spans == nullptr) return;
    for (Span& s : spans->mutable_spans()) {
      if (s.id < begin_id || s.record_id < 0) continue;
      size_t idx = static_cast<size_t>(s.record_id);
      if (idx < tr.transfers.size() &&
          tr.transfers[idx].id == s.record_id) {
        s.duration_seconds = model.TransferSeconds(tr.transfers[idx]);
      }
    }
  };

  for (int round = 0;; ++round) {
    const int64_t round_span_begin =
        spans != nullptr ? spans->next_id() : 0;
    SpanGuard round_span(spans, "round " + std::to_string(round));
    PlanPtr round_plan = plan->Clone();
    Annotator annotator(connector_ptrs_, &fed_->network(),
                        static_cast<MovementPolicy>(options_.movement_policy),
                        constraints.empty() ? nullptr : &constraints);
    Status ann_st;
    {
      SpanGuard ann_span(spans, "annotate");
      ann_st = annotator.Annotate(round_plan.get());
      if (Span* sp = ann_span.span()) {
        sp->duration_seconds =
            annotator.consultations() * options_.consultation_cost;
        sp->Tag("consultations",
                static_cast<int64_t>(annotator.consultations()));
      }
    }
    report.consultations += annotator.consultations();
    // Each consultation is one round trip to one of the two candidate
    // DBMSes.
    report.phases.ann +=
        annotator.consultations() * options_.consultation_cost;
    if (!ann_st.ok()) {
      // Exclusions emptied the candidate set (kUnavailable) or the plan is
      // unannotatable outright — either way there is nothing left to try.
      final_status = std::move(ann_st);
      break;
    }

    // Later rounds get their own name prefix: a fault window may have left
    // the previous round's rollback incomplete, and redeployment must not
    // collide with relations still awaiting cleanup.
    std::string prefix =
        round == 0 ? "xdb" : "xdb_r" + std::to_string(round);
    Result<DelegationPlan> dplan_r =
        FinalizePlan(*round_plan, query_id, prefix);
    if (!dplan_r.ok()) {
      final_status = dplan_r.status();
      break;
    }
    DelegationPlan dplan = std::move(dplan_r).value();
    const std::string round_root = dplan.tasks.back().server;

    DelegationEngine engine(connector_ptrs_, fed_);
    fed_->BeginRun(round_root);
    std::optional<Result<XdbQuery>> deploy_result;
    {
      SpanGuard deploy_span(spans, "deploy");
      if (Span* sp = deploy_span.span()) {
        sp->Tag("tasks", static_cast<int64_t>(dplan.tasks.size()));
        sp->Tag("root", round_root);
      }
      deploy_result.emplace(engine.Deploy(&dplan));
    }
    Result<XdbQuery>& xdb_query = *deploy_result;
    Status run_status = xdb_query.status();
    if (xdb_query.ok()) {
      // The client triggers the in-situ execution with the XDB query.
      DbmsConnector* root_dc = connector_ptrs_.at(xdb_query->server);
      int64_t exec_span_id = -1;
      std::optional<Result<TablePtr>> exec_result;
      {
        SpanGuard exec_span(spans, "execute");
        exec_span_id = exec_span.id();
        if (Span* sp = exec_span.span()) sp->Tag("server", xdb_query->server);
        exec_result.emplace(root_dc->RunQuery(xdb_query->sql));
      }
      Result<TablePtr>& result = *exec_result;
      run_status = result.status();
      if (result.ok()) {
        // The final result is the only data that leaves the federation.
        fed_->network().RecordTransfer(
            xdb_query->server, options_.middleware_node,
            static_cast<double>((*result)->SerializedSize()), 1);
        report.trace = fed_->FinishRun();

        // Fold the failed rounds' recovery trail into the winning trace.
        report.trace.retries.insert(report.trace.retries.begin(),
                                    accum.retries.begin(),
                                    accum.retries.end());
        report.trace.total_backoff_seconds += accum.total_backoff_seconds;
        report.trace.injected_delay_seconds += accum.injected_delay_seconds;
        report.trace.wasted_attempt_seconds += accum.wasted_attempt_seconds;
        // Compute spent serving failed rounds' transfers really happened on
        // those servers — fold it into the per-server totals (it is already
        // part of wasted_attempt_seconds on the time side).
        for (const auto& [srv, compute] : accum.per_server) {
          report.trace.per_server[srv].Add(compute);
        }
        report.trace.replan_rounds = round;
        report.trace.excluded_servers.assign(
            constraints.excluded_servers.begin(),
            constraints.excluded_servers.end());
        if (round > 0 && report.trace.recovery_action != "failed") {
          report.trace.recovery_action = "replanned";
        }

        report.ddl_statements = engine.ddl_count();
        report.ddl_log = engine.ddl_log();
        report.exec_timing = model.ModelRun(report.trace);
        attach_transfer_seconds(round_span_begin, report.trace);
        if (spans != nullptr && exec_span_id >= 0) {
          spans->mutable_span(exec_span_id)->duration_seconds =
              report.exec_timing.total;
        }
        fed_->CountReplanRounds(round);
        report.phases.exec =
            report.exec_timing.total +
            report.ddl_statements * options_.ddl_roundtrip_cost +
            report.trace.total_backoff_seconds +
            report.trace.injected_delay_seconds +
            report.trace.wasted_attempt_seconds;

        report.result = std::move(result).value();
        report.plan = std::move(dplan);
        report.xdb_query = *xdb_query;
        last_trace_ = report.trace;

        if (options_.cleanup_after_query) {
          XDB_RETURN_NOT_OK(engine.Cleanup());
        }
        report.wall_seconds = NowSeconds() - wall_start;
        return report;
      }
      // Execution failed after a successful deploy: roll the cascade back
      // (Deploy-time failures already rolled themselves back).
      (void)engine.Cleanup();
      fed_->NoteRecovery("rolled-back");
    }

    // This round is lost. Bank its recovery trail and its modelled cost.
    RunTrace failed = fed_->FinishRun();
    attach_transfer_seconds(round_span_begin, failed);
    accum.retries.insert(accum.retries.end(), failed.retries.begin(),
                         failed.retries.end());
    accum.total_backoff_seconds += failed.total_backoff_seconds;
    accum.injected_delay_seconds += failed.injected_delay_seconds;
    // Per-server compute of the lost round: the servers really did that
    // work to serve the round's transfers, so it stays on their totals.
    for (const auto& [srv, compute] : failed.per_server) {
      accum.per_server[srv].Add(compute);
    }
    accum.wasted_attempt_seconds +=
        model.ModelRun(failed).total +
        engine.ddl_count() * options_.ddl_roundtrip_cost;

    if (!run_status.IsRetryable() || round >= max_rounds) {
      final_status = std::move(run_status);
      break;
    }

    // Decide what to exclude for the next round, preferring the injector's
    // precise fault site, then the engine's failure site, then the round's
    // root server. No new exclusion means no way to make progress.
    bool progressed = false;
    const FaultInjector* inj = fed_->fault_injector();
    if (inj != nullptr && inj->last_fault().has_value() &&
        inj->last_fault()->kind == FaultKind::kLinkDrop &&
        !inj->last_fault()->peer.empty()) {
      progressed = constraints.blocked_links
                       .insert(PlacementConstraints::LinkKey(
                           inj->last_fault()->server,
                           inj->last_fault()->peer))
                       .second;
    }
    if (!progressed) {
      std::string culprit;
      if (engine.last_failure().has_value()) {
        culprit = engine.last_failure()->server;
      } else if (inj != nullptr && inj->last_fault().has_value()) {
        culprit = inj->last_fault()->server;
      } else {
        culprit = round_root;
      }
      if (!culprit.empty()) {
        progressed = constraints.excluded_servers.insert(culprit).second;
      }
    }
    if (!progressed) {
      final_status = std::move(run_status);
      break;
    }
    accum.replan_rounds = round + 1;
  }

  // Every alternate exhausted (or the failure was terminal). Preserve the
  // recovery trail and name what was unavailable.
  accum.recovery_action = "failed";
  accum.excluded_servers.assign(constraints.excluded_servers.begin(),
                                constraints.excluded_servers.end());
  fed_->CountReplanRounds(accum.replan_rounds);
  last_trace_ = std::move(accum);
  if (final_status.IsRetryable() && !constraints.empty()) {
    std::string unavailable;
    for (const auto& s : constraints.excluded_servers) {
      unavailable += (unavailable.empty() ? "" : ", ") + s;
    }
    for (const auto& [a, b] : constraints.blocked_links) {
      unavailable +=
          (unavailable.empty() ? "" : ", ") + a + "<->" + b;
    }
    return Status::Unavailable(
        "query failed after " + std::to_string(last_trace_.replan_rounds) +
        " failover round(s); unavailable: [" + unavailable +
        "]: " + final_status.message());
  }
  return final_status;
}

Result<TablePtr> XdbSystem::ExplainAnalyze(const std::string& sql) {
  // One profiler per component DBMS; detached again before returning so
  // subsequent queries go back to the unprofiled fast path.
  std::map<std::string, OperatorProfiler> profilers;
  for (const auto& name : fed_->ServerNames()) {
    fed_->GetServer(name)->set_profiler(&profilers[name]);
  }
  Result<XdbReport> report = Query(sql);
  for (const auto& name : fed_->ServerNames()) {
    fed_->GetServer(name)->set_profiler(nullptr);
  }
  XDB_RETURN_NOT_OK(report.status());

  auto table = std::make_shared<Table>(Schema({{"plan", TypeId::kString}}));
  auto emit = [&](const std::string& line) {
    table->AppendRow({Value::String(line)});
  };
  char buf[256];
  const PhaseBreakdown& ph = report->phases;
  std::snprintf(buf, sizeof(buf),
                "phases: prep=%.3fs lopt=%.3fs ann=%.3fs exec=%.3fs "
                "total=%.3fs",
                ph.prep, ph.lopt, ph.ann, ph.exec, ph.total());
  emit(buf);
  const RunTrace& trace = report->trace;
  std::snprintf(buf, sizeof(buf),
                "transfers: %zu (%.0f rows, useful=%.0f B, wasted=%.0f B)",
                trace.transfers.size(), trace.TotalTransferredRows(),
                trace.UsefulTransferredBytes(),
                trace.WastedTransferredBytes());
  emit(buf);
  for (const auto& name : fed_->ServerNames()) {
    const OperatorProfiler& prof = profilers[name];
    if (prof.records().empty()) continue;
    const DatabaseServer* server = fed_->GetServer(name);
    emit("server " + name + " (" + server->profile().vendor + "):");
    for (const auto& line :
         prof.Render(server->profile(), options_.scale_up)) {
      emit("  " + line);
    }
  }
  return table;
}

}  // namespace xdb
