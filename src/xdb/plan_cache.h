#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/plan/plan.h"

namespace xdb {

/// \brief Canonical cache key for a SQL text: lowercased outside string
/// literals, whitespace collapsed, trailing semicolon dropped. Two queries
/// normalizing to the same string are the same statement to the planner.
std::string NormalizeSql(const std::string& sql);

/// \brief Bounded LRU cache of *annotated* logical plans, keyed by
/// normalized SQL + placement fingerprint.
///
/// The fingerprint folds together everything the annotation depends on —
/// global-catalog schema/stats versions, the engine-profile hash, the
/// planner/movement configuration, and the serving layer's placement epoch
/// (bumped on failover replanning) — so a hit is only possible when the
/// cached placement decision is still valid. A fingerprint mismatch on
/// lookup retires the stale entry (counted as a miss), which is how
/// catalog/stats invalidation and failover epochs evict without a sweep.
///
/// Hits return a deep *clone*: callers mutate their plan (finalization,
/// re-annotation in failover rounds), so the cached master stays pristine.
/// Thread-safe; cloning happens outside the lock.
class DelegationPlanCache {
 public:
  /// `capacity` = max resident plans (>=1; callers gate capacity 0 by not
  /// constructing a cache at all).
  explicit DelegationPlanCache(size_t capacity) : capacity_(capacity) {}

  /// Returns a clone of the cached annotated plan for (normalized sql,
  /// fingerprint), or nullptr on miss.
  PlanPtr Lookup(const std::string& norm_sql, const std::string& fingerprint);

  /// Caches `plan` (treated as immutable from now on) under the key.
  /// Replaces an existing entry for the same SQL; evicts LRU entries over
  /// capacity. Returns how many entries were evicted.
  int Insert(const std::string& norm_sql, const std::string& fingerprint,
             PlanPtr plan);

  /// Drops every entry (explicit invalidation; counted as evictions).
  void Clear();

  int64_t hits() const;
  int64_t misses() const;
  int64_t evictions() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// \brief One resident entry as seen by `xdb_stat.plan_cache`: the
  /// normalized key, its placement fingerprint, how many lookups it served,
  /// and its age in insertions (0 = most recently inserted entry).
  struct EntrySnapshot {
    std::string key;
    std::string fingerprint;
    int64_t hits = 0;
    int64_t age = 0;
  };

  /// Consistent copy of the resident entries, sorted by key (deterministic
  /// regardless of LRU order).
  std::vector<EntrySnapshot> SnapshotEntries() const;

 private:
  struct Entry {
    std::string key;
    std::string fingerprint;
    PlanPtr plan;
    int64_t hits = 0;         // lookups served by this residency
    int64_t inserted_at = 0;  // insert-sequence stamp (for age)
  };

  mutable std::mutex mu_;
  size_t capacity_;
  // MRU at front; map points into the list (iterators are stable).
  std::list<Entry> lru_;
  std::map<std::string, std::list<Entry>::iterator> index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t insert_counter_ = 0;
};

}  // namespace xdb
