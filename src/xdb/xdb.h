#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/connect/connector.h"
#include "src/timing/timing_model.h"
#include "src/xdb/delegation_engine.h"
#include "src/xdb/delegation_plan.h"
#include "src/xdb/global_catalog.h"
#include "src/xdb/plan_cache.h"

namespace xdb {

class IntrospectionRegistry;
class SessionManager;

/// \brief Knobs for the XDB middleware.
struct XdbOptions {
  /// Modelled-time scale-up: local rows are costed as if multiplied by this
  /// factor (local SF -> paper SF mapping; DESIGN.md §1).
  double scale_up = 1.0;

  /// Network node name hosting the middleware + client (control traffic and
  /// the final result flow to it).
  std::string middleware_node = "xdb";

  /// Logical-optimizer switches (for the ablation benches).
  PlannerOptions planner;

  /// Movement-type decision policy (for the ablation benches).
  int movement_policy = 0;  // 0 = cost-based, 1 = always implicit,
                            // 2 = always explicit (MovementPolicy order)

  /// Drop all short-lived relations after each query (on by default; the
  /// examples switch it off to show the deployed cascade).
  bool cleanup_after_query = true;

  /// Failover replanning: when deployment or execution fails with a
  /// retryable status (node down, link dead), re-run annotation with the
  /// implicated placement excluded and redeploy, up to this many alternate
  /// rounds. 0 disables failover (first failure is final).
  int max_failover_alternates = 2;

  /// Morsel-parallel worker budget applied to every component DBMS's
  /// executor: 0 = hardware concurrency (default), 1 = legacy serial path.
  /// Wall-clock only; modelled times and traces are identical either way.
  int exec_threads = 0;

  /// Delegation-plan cache capacity (entries). 0 (the default) disables
  /// caching entirely — every query runs the full parse/optimize/annotate
  /// pipeline, preserving the single-query paths bit-for-bit. The serving
  /// layer and the qps bench turn it on.
  size_t plan_cache_capacity = 0;

  // Control-plane cost constants (seconds per round trip, on top of link
  // latency). Calibrated so prep+lopt+ann stays in the paper's <=10 s band.
  double parse_analyze_cost = 0.05;
  double metadata_roundtrip_cost = 0.02;
  double lopt_base_cost = 0.1;
  double lopt_per_join_cost = 0.05;
  double consultation_cost = 0.04;   // one EXPLAIN probe on a DBMS
  double ddl_roundtrip_cost = 0.02;  // one DDL statement
};

/// \brief Per-query execution context supplied by the serving layer.
/// Defaults reproduce the classic single-tenant behaviour exactly.
struct QueryContext {
  /// Prefix for deployed relation names ("xdb" -> xdb_q<id>_t<k>). Sessions
  /// pass a session-scoped prefix so concurrent deployments cannot collide
  /// even if query-id allocation ever changes.
  std::string ddl_prefix = "xdb";

  /// Query-log label (bounded cardinality; e.g. "Q5"). Empty = use the
  /// log's pending next_label / "adhoc" fallback.
  std::string label;

  /// Per-session span recorder override (nullptr = federation recorder).
  /// Installed thread-locally for the duration of the query so concurrent
  /// sessions each record their own timeline.
  SpanRecorder* spans = nullptr;

  /// Modelled-time deadline for the whole query (seconds; 0 = none). The
  /// budget is threaded through planning phases, retry backoff, injected
  /// fault delay, and failover replanning: a retry loop stops when the
  /// remaining budget cannot cover the next backoff, and when the budget
  /// runs out the query fails fast with kTimeout (or degrades under
  /// allow_partial) instead of burning further replan rounds. A round that
  /// completes successfully still returns its result even if it finished
  /// over budget — the deadline stops new work, not finished work.
  double deadline_seconds = 0;

  /// Opt-in partial results: when a non-root fragment cannot be delivered
  /// (producer down, link dead after retries, deadline expired), an empty
  /// fragment is substituted and the query returns the surviving rows with
  /// a ResultCompleteness annotation instead of failing. Default off —
  /// behaviour and every modelled number stay bit-identical.
  bool allow_partial = false;
};

/// \brief Per-phase modelled times, matching the paper's Figure 15 buckets.
struct PhaseBreakdown {
  double prep = 0;  // parse/analyze + metadata gathering via connectors
  double lopt = 0;  // logical optimization
  double ann = 0;   // plan annotation + finalization (consultations)
  double exec = 0;  // delegation + decentralized execution

  double total() const { return prep + lopt + ann + exec; }
};

/// \brief Everything a query run produces, for benches and inspection.
struct XdbReport {
  TablePtr result;
  DelegationPlan plan;
  XdbQuery xdb_query;
  std::vector<std::pair<std::string, std::string>> ddl_log;
  RunTrace trace;
  TimingBreakdown exec_timing;
  PhaseBreakdown phases;
  double wall_seconds = 0;  // real wall-clock of the whole pipeline

  int metadata_roundtrips = 0;
  int consultations = 0;
  int ddl_statements = 0;
  bool plan_cache_hit = false;  // annotated plan served from the cache

  /// Which fragments made it (always complete unless the query ran with
  /// allow_partial and lost a subtree).
  ResultCompleteness completeness;

  double total_seconds() const { return phases.total(); }
  double transferred_bytes() const { return trace.TotalTransferredBytes(); }
  bool partial() const { return !completeness.complete; }
};

/// \brief The XDB middleware: optimizer + delegation engine over a
/// federation of autonomous DBMSes (the paper's Figure 4b).
///
/// XDB itself has *no execution engine*. Query() optimizes the
/// cross-database query into a delegation plan, deploys it as views +
/// foreign tables through the vendor connectors, and triggers the XDB query
/// on the root DBMS; the component DBMSes then execute the query among
/// themselves, streaming intermediate data directly.
class XdbSystem {
 public:
  /// Builds connectors (with vendor dialects) for every server in `fed` and
  /// discovers the Global-as-a-View schema.
  explicit XdbSystem(Federation* fed, XdbOptions options = {});
  ~XdbSystem();

  /// Runs a cross-database SQL query end to end. When the federation has a
  /// QueryLog and/or MetricsRegistry attached, one QueryStats record and
  /// the `{query=...}`/`{status=...}` labeled query counters are banked per
  /// call — observationally only (results and modelled times are
  /// bit-identical either way).
  Result<XdbReport> Query(const std::string& sql);

  /// Query() with an explicit serving context (DDL namespace, log label,
  /// per-session span recorder). Thread-safe: concurrent calls on one
  /// XdbSystem are supported — each runs on its calling thread with
  /// thread-local run recording and a query-tagged morsel scheduler.
  Result<XdbReport> Query(const std::string& sql, const QueryContext& ctx);

  /// EXPLAIN ANALYZE at the federation level: runs the query with a
  /// per-operator profiler attached to every component DBMS and returns a
  /// one-column text table — phase breakdown, transfer totals (useful vs.
  /// wasted bytes), then each server's executed operator tree annotated
  /// with observed rows, selectivity, morsel batches, and modelled operator
  /// seconds (at the configured scale-up). Purely observational: the
  /// underlying Query() produces bit-identical results and modelled times.
  Result<TablePtr> ExplainAnalyze(const std::string& sql);

  /// ExplainAnalyze under an explicit context (deadline / allow_partial /
  /// session namespace); partial results gain a completeness section.
  Result<TablePtr> ExplainAnalyze(const std::string& sql,
                                  const QueryContext& ctx);

  GlobalCatalog& catalog() { return *catalog_; }
  DbmsConnector* connector(const std::string& server) const;
  const XdbOptions& options() const { return options_; }
  Federation* federation() const { return fed_; }

  /// The delegation-plan cache (nullptr when plan_cache_capacity == 0).
  DelegationPlanCache* plan_cache() const { return plan_cache_.get(); }

  /// Placement epoch: bumped whenever failover replanning routed around a
  /// node or link, retiring every cached plan built for the old placement.
  int64_t placement_epoch() const {
    return placement_epoch_.load(std::memory_order_acquire);
  }

  /// The cache-key fingerprint current placements hash to (catalog/stats
  /// versions + engine-profile hash + placement epoch + policy knobs).
  std::string PlacementFingerprint() const;

  /// JSON calibration log: one record per observed operator/transfer in the
  /// federation QueryLog's retained history, pairing planning-time features
  /// (operator type, input cardinality, predicate class, engine, placement)
  /// with observed outcomes (rows, modelled seconds, bytes, q-error) —
  /// offline training data for estimator recalibration. Empty `records`
  /// when no QueryLog is attached.
  std::string ExportCalibrationLog() const;

  /// Trace of the most recent Query() — kept even when Query returned an
  /// error, so the recovery trail (retries, rollbacks, replan rounds) of a
  /// failed query stays inspectable. Single-threaded inspection API; under
  /// concurrent serving, "most recent" is whichever query finished last.
  const RunTrace& last_trace() const { return last_trace_; }

  // --- SQL-queryable introspection (DESIGN.md §14) ---

  /// Enables the `xdb_stat.*` virtual system tables on this system,
  /// registering the standard providers lazily (idempotent; later calls may
  /// wire a SessionManager that wasn't available earlier). Until this is
  /// called, `xdb_stat` queries fail with a catalog error and the query
  /// pipeline pays nothing — the default detached path is bit-identical.
  /// Setup-time API: call before serving queries concurrently.
  IntrospectionRegistry* EnableIntrospection(
      SessionManager* sessions = nullptr);

  /// The registry when introspection is enabled, else nullptr.
  IntrospectionRegistry* introspection() const { return introspect_.get(); }

  /// Lifetime count of queries started on this system (feeds the
  /// `xdb_uptime_queries_total` snapshot counter).
  int64_t queries_started() const {
    return query_counter_.load(std::memory_order_relaxed);
  }

 private:
  double Rtt(const std::string& server) const;

  /// Query() minus the history/metrics bookkeeping (every early return of
  /// the pipeline funnels through the public wrapper). On failure the
  /// accumulated recovery trail lands in `*fail_trace`.
  Result<XdbReport> QueryImpl(const std::string& sql,
                              const QueryContext& ctx, int query_id,
                              RunTrace* fail_trace);

  /// Banks one QueryStats into the federation's QueryLog and bumps the
  /// labeled query counters. No-op when neither sink is attached.
  void RecordQueryStats(const std::string& sql,
                        const Result<XdbReport>& result,
                        const RunTrace& fail_trace,
                        const std::string& label);

  /// Bumps xdb_plan_cache_{hits,misses,evictions}_total when a registry is
  /// attached (evictions may be 0).
  void CountPlanCache(bool hit, int evictions);
  void CountPlanCacheEvictions(int evictions);

  /// Runs a `SELECT` over the `xdb_stat.*` system tables mediator-local:
  /// snapshots every referenced provider once at query start, plans with
  /// the normal logical optimizer, and executes on the middleware node with
  /// the vectorized executor — zero metadata roundtrips, zero consultations,
  /// zero transfers, never plan-cached. `*handled` is false (fall through
  /// to the federation pipeline) when the statement parses but references
  /// no xdb_stat relation after all.
  Result<XdbReport> RunIntrospectionQuery(const std::string& sql,
                                          const QueryContext& ctx,
                                          bool* handled);

  Federation* fed_;
  XdbOptions options_;
  std::map<std::string, std::unique_ptr<DbmsConnector>> connectors_;
  std::map<std::string, DbmsConnector*> connector_ptrs_;
  std::unique_ptr<GlobalCatalog> catalog_;
  std::unique_ptr<DelegationPlanCache> plan_cache_;
  std::unique_ptr<IntrospectionRegistry> introspect_;  // null until enabled
  uint64_t profile_hash_ = 0;  // engine profiles are setup-time constant
  std::atomic<int64_t> placement_epoch_{0};
  std::atomic<int> query_counter_{0};
  mutable std::mutex trace_mu_;  // guards last_trace_ under concurrency
  RunTrace last_trace_;
};

}  // namespace xdb
