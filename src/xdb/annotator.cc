#include "src/xdb/annotator.h"

#include <cmath>

namespace xdb {

namespace {
constexpr double kRowsPerMessage = 10000.0;
}

Status Annotator::Annotate(PlanNode* plan) {
  return AnnotateNode(plan);
}

double Annotator::MoveCost(const PlanEstimate& producer,
                           const std::string& src,
                           const std::string& dst) const {
  if (src == dst) return 0.0;
  LinkProps link = network_->GetLink(src, dst);
  double messages = std::ceil(producer.rows / kRowsPerMessage) + 1.0;
  return producer.bytes() / link.bandwidth + link.latency * messages;
}

Status Annotator::AnnotateNode(PlanNode* node) {
  for (auto& child : node->children) {
    XDB_RETURN_NOT_OK(AnnotateNode(child.get()));
  }
  switch (node->kind) {
    case PlanKind::kScan:
      // Rule 1: leaves live where their table lives.
      node->annotation = node->db;
      return Status::OK();
    case PlanKind::kPlaceholder:
      return Status::Internal(
          "placeholder encountered during annotation; finalization must "
          "run after annotation");
    case PlanKind::kFilter:
    case PlanKind::kProject:
    case PlanKind::kAggregate:
    case PlanKind::kSort:
    case PlanKind::kLimit:
      // Rule 2.
      node->annotation = node->children[0]->annotation;
      node->children[0]->edge_movement = Movement::kImplicit;
      return Status::OK();
    case PlanKind::kJoin: {
      const std::string& la = node->children[0]->annotation;
      const std::string& ra = node->children[1]->annotation;
      if (la == ra) {
        // Rule 3.
        node->annotation = la;
        node->children[0]->edge_movement = Movement::kImplicit;
        node->children[1]->edge_movement = Movement::kImplicit;
        return Status::OK();
      }
      return AnnotateCrossJoin(node);
    }
  }
  return Status::Internal("unknown plan kind");
}

Status Annotator::AnnotateCrossJoin(PlanNode* node) {
  // Rule 4 with the pruned candidate set {A(o_l), A(o_r)}.
  PlanEstimate left_est = estimator_.Estimate(*node->children[0]);
  PlanEstimate right_est = estimator_.Estimate(*node->children[1]);

  struct Candidate {
    std::string placement;
    size_t remote_child;  // index of the child that must move
    Movement movement;
    double cost;
  };

  Candidate best;
  best.cost = -1;
  bool excluded_candidate = false;

  for (size_t local = 0; local < 2; ++local) {
    size_t remote = 1 - local;
    const std::string& a = node->children[local]->annotation;
    const std::string& remote_db = node->children[remote]->annotation;
    // Failover constraint: skip placements on servers observed unavailable
    // and links observed dead (replanning routes around them).
    if (constraints_ != nullptr &&
        (constraints_->Excluded(a) ||
         constraints_->LinkBlocked(remote_db, a))) {
      excluded_candidate = true;
      continue;
    }
    // Topology constraint: a placement is only a candidate if the remote
    // input can actually reach it (paper Section IV-B: "constraining the
    // possible values of set A depending on the network").
    if (!network_->IsReachable(remote_db, a)) continue;
    auto it = connectors_.find(a);
    if (it == connectors_.end()) {
      return Status::CatalogError("no connector for DBMS '" + a + "'");
    }
    DbmsConnector* dc = it->second;
    const PlanEstimate& local_est = local == 0 ? left_est : right_est;
    const PlanEstimate& remote_est = local == 0 ? right_est : left_est;

    std::vector<Movement> movements;
    switch (policy_) {
      case MovementPolicy::kCostBased:
        movements = {Movement::kImplicit, Movement::kExplicit};
        break;
      case MovementPolicy::kAlwaysImplicit:
        movements = {Movement::kImplicit};
        break;
      case MovementPolicy::kAlwaysExplicit:
        movements = {Movement::kExplicit};
        break;
    }
    for (Movement x : movements) {
      // Build the probe fragment: the join with both inputs as
      // placeholders — the local one "already there", the remote one
      // arriving as a foreign stream (implicit) or a materialised table
      // (explicit). Key indices are preserved by keeping child widths.
      auto make_ph = [](const PlanNode& child, double rows, bool foreign) {
        PlanPtr ph = PlanNode::MakePlaceholder(
            "?", child.output_schema, child.output_qualifiers, rows);
        ph->placeholder_foreign = foreign;
        return ph;
      };
      PlanPtr l_ph = make_ph(*node->children[0],
                             left_est.rows,
                             local != 0 && x == Movement::kImplicit);
      PlanPtr r_ph = make_ph(*node->children[1],
                             right_est.rows,
                             local != 1 && x == Movement::kImplicit);
      PlanPtr fragment = PlanNode::MakeJoin(
          l_ph, r_ph, node->left_keys, node->right_keys,
          node->residual ? node->residual->Clone() : nullptr);

      // Eq. 1: operator cost at `a` (consultation) ...
      double cost = dc->ProbeCost(*fragment);
      ++consultations_;
      // ... plus the cost of moving the remote input (Eq. 2 / Eq. 3).
      cost += MoveCost(remote_est, remote_db, a);
      if (x == Movement::kExplicit) {
        // Explicit movement additionally ingests the input through the
        // wrapper (the CTAS pays the same per-row fetch as a pipelined
        // read) and materialises it at `a`.
        cost += remote_est.rows * (dc->profile().fetch_row_cost +
                                   dc->profile().materialize_row_cost);
      }
      (void)local_est;

      if (best.cost < 0 || cost < best.cost) {
        best = {a, remote, x, cost};
      }
    }
  }

  if (best.cost < 0) {
    if (excluded_candidate) {
      std::string excluded;
      for (const auto& s : constraints_->excluded_servers) {
        excluded += (excluded.empty() ? "" : ", ") + s;
      }
      return Status::Unavailable(
          "no surviving placement for a cross-database join between '" +
          node->children[0]->annotation + "' and '" +
          node->children[1]->annotation + "' (unavailable: [" + excluded +
          "])");
    }
    return Status::NetworkError(
        "no reachable placement for a cross-database join between '" +
        node->children[0]->annotation + "' and '" +
        node->children[1]->annotation +
        "' under the current topology constraints");
  }
  node->annotation = best.placement;
  node->children[1 - best.remote_child]->edge_movement = Movement::kImplicit;
  node->children[best.remote_child]->edge_movement = best.movement;
  return Status::OK();
}

}  // namespace xdb
