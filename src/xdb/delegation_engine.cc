#include "src/xdb/delegation_engine.h"

#include <algorithm>

#include "src/common/retry.h"
#include "src/connect/deparser.h"

namespace xdb {

namespace {

/// Renames placeholder leaves for `producer_view` to `new_name` and updates
/// their schemas to the names the deployed view actually publishes.
void RewirePlaceholders(PlanNode* node, const std::string& producer_view,
                        const std::string& new_name,
                        const std::vector<std::string>& column_names,
                        bool foreign_stream) {
  if (node->kind == PlanKind::kPlaceholder &&
      node->placeholder_name == producer_view) {
    node->placeholder_name = new_name;
    node->placeholder_foreign = foreign_stream;
    Schema renamed;
    for (size_t i = 0; i < node->output_schema.num_fields(); ++i) {
      renamed.AddField({column_names[i], node->output_schema.field(i).type});
    }
    node->output_schema = std::move(renamed);
  }
  for (auto& c : node->children) {
    RewirePlaceholders(c.get(), producer_view, new_name, column_names,
                       foreign_stream);
  }
}

}  // namespace

Status DelegationEngine::IssueWithRetry(DbmsConnector* dc,
                                        const std::string& server,
                                        const std::string& ddl) {
  const RetryPolicy policy =
      fed_ != nullptr ? fed_->retry_policy() : RetryPolicy::NoRetry();
  const double budget = fed_ != nullptr ? fed_->RemainingBudget() : -1.0;
  RetryOutcome out = RetryWithBackoffBudget(
      policy, [&] { return dc->Deploy(ddl); }, budget);
  if (fed_ != nullptr) {
    if (out.attempts > 1 || out.status.IsRetryable()) {
      fed_->RecordRetry({server, "ddl", out.attempts, out.backoff_seconds,
                         out.status.ok(),
                         out.status.ok() ? std::string()
                                         : out.status.message()});
    }
    // A DDL that failed because a foreign fetch inside it failed (e.g. a
    // CTAS ingesting a remote stream) was already charged to the remote the
    // fetch named; don't also blame the server running the DDL.
    const bool remote_attributed =
        !out.status.ok() &&
        out.status.message().find("foreign fetch of ") != std::string::npos;
    if (!remote_attributed) {
      fed_->RecordHealthOutcome(server, out.attempts, out.status);
    }
  }
  return out.status;
}

Status DelegationEngine::Issue(const std::string& server,
                               const std::string& ddl) {
  auto it = connectors_.find(server);
  if (it == connectors_.end()) {
    return Status::CatalogError("no connector for DBMS '" + server + "'");
  }
  XDB_RETURN_NOT_OK(
      IssueWithRetry(it->second, server, ddl).WithContext("on " + server));
  ddl_log_.emplace_back(server, ddl);
  ++ddl_count_;
  if (fed_ != nullptr) fed_->CountDdl(server);
  return Status::OK();
}

Result<XdbQuery> DelegationEngine::Deploy(DelegationPlan* plan) {
  ddl_log_.clear();
  ddl_count_ = 0;
  failure_.reset();
  XdbQuery out;

  // Any failure rolls back every relation this Deploy created so far —
  // the federation never sees a half-deployed cascade.
  auto fail = [&](Status st, const std::string& server,
                  const std::string& ddl) -> Status {
    failure_ = FailureInfo{server, ddl, st};
    size_t n = created_.size();
    Status rollback = Cleanup();
    if (fed_ != nullptr) fed_->NoteRecovery("rolled-back");
    if (n > 0) {
      std::string note = "rolled back " + std::to_string(n) + " relation(s)";
      if (!rollback.ok()) {
        note += "; rollback incomplete: " + rollback.message();
      }
      st = st.WithContext(note);
    }
    return st;
  };

  SpanRecorder* spans = fed_ != nullptr ? fed_->span_recorder() : nullptr;

  // Tasks are already topologically ordered (producers first).
  for (auto& task : plan->tasks) {
    SpanGuard task_span(spans, "deploy " + task.view_name);
    if (Span* sp = task_span.span()) sp->Tag("server", task.server);
    auto dc_it = connectors_.find(task.server);
    if (dc_it == connectors_.end()) {
      return fail(
          Status::CatalogError("no connector for DBMS '" + task.server + "'"),
          task.server, std::string());
    }
    const Dialect& dialect = dc_it->second->dialect();

    // Wire up inputs: one foreign table per child task, materialised when
    // the edge is explicit.
    for (const DelegationEdge* edge : plan->InEdges(task.id)) {
      const DelegationTask* child = plan->FindTask(edge->producer);
      std::string ft_ddl = dialect.CreateForeignTableSql(
          child->view_name, child->column_names, child->server,
          child->view_name);
      if (Status st = Issue(task.server, ft_ddl); !st.ok()) {
        return fail(std::move(st), task.server, ft_ddl);
      }
      created_.emplace_back(task.server, child->view_name, "FOREIGN TABLE");
      std::string input_relation = child->view_name;
      if (edge->movement == Movement::kExplicit) {
        // Algorithm 1's CREATELOCALTABLE: the CTAS pulls the child's output
        // across (directly between the two DBMSes) and materialises it on
        // the consumer. This is why the paper reports delegation+execution
        // as one phase — explicit movements flow at delegation time.
        std::string mat = child->view_name + "_m";
        std::string ctas = dialect.CreateTableAsSql(mat, child->view_name);
        if (Status st = Issue(task.server, ctas); !st.ok()) {
          return fail(std::move(st), task.server, ctas);
        }
        created_.emplace_back(task.server, mat, "TABLE");
        input_relation = mat;
      }
      RewirePlaceholders(task.expr.get(), child->view_name, input_relation,
                         child->column_names,
                         edge->movement == Movement::kImplicit);
    }

    // Deparse the algebraic instruction and publish it as a view.
    Result<DeparsedQuery> dq = DeparsePlan(*task.expr, dialect);
    if (!dq.ok()) return fail(dq.status(), task.server, std::string());
    task.column_names = dq->column_names;
    std::string view_ddl = dialect.CreateViewSql(task.view_name, dq->sql);
    if (Status st = Issue(task.server, view_ddl); !st.ok()) {
      return fail(std::move(st), task.server, view_ddl);
    }
    created_.emplace_back(task.server, task.view_name, "VIEW");
  }

  out.server = plan->root().server;
  out.sql = "SELECT * FROM " + plan->root().view_name;
  return out;
}

Status DelegationEngine::Cleanup() {
  SpanGuard cleanup_span(
      fed_ != nullptr ? fed_->span_recorder() : nullptr, "cleanup");
  if (Span* sp = cleanup_span.span()) {
    sp->Tag("relations", static_cast<int64_t>(created_.size()));
  }
  Status first_error = Status::OK();
  // Relations that could not be dropped stay in the ledger (in creation
  // order) so a later Cleanup can finish the job.
  std::vector<std::tuple<std::string, std::string, std::string>> remaining;
  for (auto it = created_.rbegin(); it != created_.rend(); ++it) {
    const auto& [server, relation, kind] = *it;
    auto dc = connectors_.find(server);
    if (dc == connectors_.end()) {
      if (first_error.ok()) {
        first_error = Status::CatalogError(
            "cleanup skipped " + kind + " '" + relation + "' on '" + server +
            "': no connector for that DBMS");
      }
      remaining.push_back(*it);
      continue;
    }
    Status st = IssueWithRetry(
        dc->second, server, "DROP " + kind + " IF EXISTS " + relation);
    if (!st.ok()) {
      if (first_error.ok()) first_error = st.WithContext("on " + server);
      remaining.push_back(*it);
    }
  }
  std::reverse(remaining.begin(), remaining.end());
  created_ = std::move(remaining);
  return first_error;
}

}  // namespace xdb
