#include "src/xdb/delegation_engine.h"

#include "src/connect/deparser.h"

namespace xdb {

namespace {

/// Renames placeholder leaves for `producer_view` to `new_name` and updates
/// their schemas to the names the deployed view actually publishes.
void RewirePlaceholders(PlanNode* node, const std::string& producer_view,
                        const std::string& new_name,
                        const std::vector<std::string>& column_names,
                        bool foreign_stream) {
  if (node->kind == PlanKind::kPlaceholder &&
      node->placeholder_name == producer_view) {
    node->placeholder_name = new_name;
    node->placeholder_foreign = foreign_stream;
    Schema renamed;
    for (size_t i = 0; i < node->output_schema.num_fields(); ++i) {
      renamed.AddField({column_names[i], node->output_schema.field(i).type});
    }
    node->output_schema = std::move(renamed);
  }
  for (auto& c : node->children) {
    RewirePlaceholders(c.get(), producer_view, new_name, column_names,
                       foreign_stream);
  }
}

}  // namespace

Status DelegationEngine::Issue(const std::string& server,
                               const std::string& ddl) {
  auto it = connectors_.find(server);
  if (it == connectors_.end()) {
    return Status::CatalogError("no connector for DBMS '" + server + "'");
  }
  XDB_RETURN_NOT_OK(it->second->Deploy(ddl).WithContext("on " + server));
  ddl_log_.emplace_back(server, ddl);
  ++ddl_count_;
  return Status::OK();
}

Result<XdbQuery> DelegationEngine::Deploy(DelegationPlan* plan) {
  ddl_log_.clear();
  ddl_count_ = 0;
  XdbQuery out;

  // Tasks are already topologically ordered (producers first).
  for (auto& task : plan->tasks) {
    auto dc_it = connectors_.find(task.server);
    if (dc_it == connectors_.end()) {
      return Status::CatalogError("no connector for DBMS '" + task.server +
                                  "'");
    }
    const Dialect& dialect = dc_it->second->dialect();

    // Wire up inputs: one foreign table per child task, materialised when
    // the edge is explicit.
    for (const DelegationEdge* edge : plan->InEdges(task.id)) {
      const DelegationTask* child = plan->FindTask(edge->producer);
      XDB_RETURN_NOT_OK(Issue(
          task.server,
          dialect.CreateForeignTableSql(child->view_name,
                                        child->column_names, child->server,
                                        child->view_name)));
      created_.emplace_back(task.server, child->view_name, "FOREIGN TABLE");
      std::string input_relation = child->view_name;
      if (edge->movement == Movement::kExplicit) {
        // Algorithm 1's CREATELOCALTABLE: the CTAS pulls the child's output
        // across (directly between the two DBMSes) and materialises it on
        // the consumer. This is why the paper reports delegation+execution
        // as one phase — explicit movements flow at delegation time.
        std::string mat = child->view_name + "_m";
        XDB_RETURN_NOT_OK(Issue(
            task.server, dialect.CreateTableAsSql(mat, child->view_name)));
        created_.emplace_back(task.server, mat, "TABLE");
        input_relation = mat;
      }
      RewirePlaceholders(task.expr.get(), child->view_name, input_relation,
                         child->column_names,
                         edge->movement == Movement::kImplicit);
    }

    // Deparse the algebraic instruction and publish it as a view.
    XDB_ASSIGN_OR_RETURN(DeparsedQuery dq, DeparsePlan(*task.expr, dialect));
    task.column_names = dq.column_names;
    XDB_RETURN_NOT_OK(
        Issue(task.server, dialect.CreateViewSql(task.view_name, dq.sql)));
    created_.emplace_back(task.server, task.view_name, "VIEW");
  }

  out.server = plan->root().server;
  out.sql = "SELECT * FROM " + plan->root().view_name;
  return out;
}

Status DelegationEngine::Cleanup() {
  Status first_error = Status::OK();
  for (auto it = created_.rbegin(); it != created_.rend(); ++it) {
    const auto& [server, relation, kind] = *it;
    auto dc = connectors_.find(server);
    if (dc == connectors_.end()) continue;
    Status st = dc->second->Deploy("DROP " + kind + " IF EXISTS " + relation);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  created_.clear();
  return first_error;
}

}  // namespace xdb
