#pragma once

#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "src/connect/connector.h"
#include "src/xdb/delegation_plan.h"

namespace xdb {

/// \brief The query that XDB hands back to the client (paper Section V):
/// a plain SELECT on one DBMS whose evaluation triggers the whole in-situ
/// cascade.
struct XdbQuery {
  std::string server;
  std::string sql;
};

/// \brief The Delegation Engine: rewrites a delegation plan into a cascade
/// of views chained with SQL/MED foreign tables (Algorithm 1).
///
/// For each task (children first): create foreign tables on the task's DBMS
/// pointing at the child tasks' views, then create the task's own view from
/// the deparsed algebraic instruction. Implicit edges are consumed through
/// the foreign table directly (pipelined); explicit edges materialise the
/// foreign table into a local table first. All DDL is issued through the
/// vendor-specific connectors; XDB never touches the data itself.
///
/// Deployment is all-or-nothing: a failure mid-cascade automatically drops
/// every relation already created (reverse order), so a failed query never
/// leaves transient relations behind. DDL statements that fail with a
/// retryable status (kUnavailable/kTimeout) are retried under the
/// federation's RetryPolicy with modelled backoff, recorded in the active
/// RunTrace.
class DelegationEngine {
 public:
  /// `fed` enables retries (with its RetryPolicy) and recovery recording in
  /// the active run; nullptr disables both (single-attempt DDL).
  explicit DelegationEngine(std::map<std::string, DbmsConnector*> connectors,
                            Federation* fed = nullptr)
      : connectors_(std::move(connectors)), fed_(fed) {}

  /// What made Deploy give up, for the failover logic upstream.
  struct FailureInfo {
    std::string server;
    std::string ddl;
    Status status;
  };

  /// Deploys the plan (mutates it: fills tasks' column_names and rewrites
  /// placeholder names to the created relations) and returns the XDB query.
  /// On failure every already-created relation is rolled back before the
  /// error returns.
  Result<XdbQuery> Deploy(DelegationPlan* plan);

  /// Drops every short-lived relation Deploy created, in reverse order.
  /// Idempotent: relations that fail to drop (or whose server has no
  /// connector — reported by name) are retained for a later attempt;
  /// calling again on an empty ledger is a no-op.
  Status Cleanup();

  /// Relations still awaiting cleanup (non-empty after a failed Cleanup).
  size_t pending_cleanup() const { return created_.size(); }

  const std::optional<FailureInfo>& last_failure() const { return failure_; }

  /// Full DDL log of the last Deploy, for inspection/printing — the
  /// reproduction of the paper's Figure 7.
  const std::vector<std::pair<std::string, std::string>>& ddl_log() const {
    return ddl_log_;
  }

  /// DDL statements issued during the delegation phase (excludes the
  /// execution-time CTAS prologue).
  int ddl_count() const { return ddl_count_; }

  /// Test hook: the live connector map, for simulating a connector that
  /// disappears between Deploy and Cleanup.
  std::map<std::string, DbmsConnector*>& connectors_for_test() {
    return connectors_;
  }

 private:
  Status Issue(const std::string& server, const std::string& ddl);

  /// One DDL statement through `dc` with the federation's retry policy;
  /// records a RetryEvent when it retried or failed.
  Status IssueWithRetry(DbmsConnector* dc, const std::string& server,
                        const std::string& ddl);

  std::map<std::string, DbmsConnector*> connectors_;
  Federation* fed_ = nullptr;
  std::vector<std::pair<std::string, std::string>> ddl_log_;
  // (server, relation, kind) in creation order; dropped in reverse.
  std::vector<std::tuple<std::string, std::string, std::string>> created_;
  int ddl_count_ = 0;
  std::optional<FailureInfo> failure_;
};

}  // namespace xdb
