#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/connect/connector.h"
#include "src/xdb/delegation_plan.h"

namespace xdb {

/// \brief The query that XDB hands back to the client (paper Section V):
/// a plain SELECT on one DBMS whose evaluation triggers the whole in-situ
/// cascade.
struct XdbQuery {
  std::string server;
  std::string sql;
};

/// \brief The Delegation Engine: rewrites a delegation plan into a cascade
/// of views chained with SQL/MED foreign tables (Algorithm 1).
///
/// For each task (children first): create foreign tables on the task's DBMS
/// pointing at the child tasks' views, then create the task's own view from
/// the deparsed algebraic instruction. Implicit edges are consumed through
/// the foreign table directly (pipelined); explicit edges materialise the
/// foreign table into a local table first. All DDL is issued through the
/// vendor-specific connectors; XDB never touches the data itself.
class DelegationEngine {
 public:
  explicit DelegationEngine(std::map<std::string, DbmsConnector*> connectors)
      : connectors_(std::move(connectors)) {}

  /// Deploys the plan (mutates it: fills tasks' column_names and rewrites
  /// placeholder names to the created relations) and returns the XDB query.
  Result<XdbQuery> Deploy(DelegationPlan* plan);

  /// Drops every short-lived relation Deploy created, in reverse order.
  Status Cleanup();

  /// Full DDL log of the last Deploy, for inspection/printing — the
  /// reproduction of the paper's Figure 7.
  const std::vector<std::pair<std::string, std::string>>& ddl_log() const {
    return ddl_log_;
  }

  /// DDL statements issued during the delegation phase (excludes the
  /// execution-time CTAS prologue).
  int ddl_count() const { return ddl_count_; }

 private:
  Status Issue(const std::string& server, const std::string& ddl);

  std::map<std::string, DbmsConnector*> connectors_;
  std::vector<std::pair<std::string, std::string>> ddl_log_;
  // (server, relation, kind) in creation order; dropped in reverse.
  std::vector<std::tuple<std::string, std::string, std::string>> created_;
  int ddl_count_ = 0;
};

}  // namespace xdb
