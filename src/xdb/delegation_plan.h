#pragma once

#include <string>
#include <vector>

#include "src/plan/plan.h"

namespace xdb {

/// \brief A task t = (r, a): an algebraic expression `expr` (with
/// Placeholder leaves standing for inputs produced by other tasks) assigned
/// to DBMS `server` (paper Section IV-A).
struct DelegationTask {
  int id = -1;
  std::string server;
  PlanPtr expr;
  std::string view_name;  // short-lived relation this task publishes
  double est_rows = 0;    // estimated output cardinality

  /// Actual column names the deployed view publishes (filled during
  /// delegation, after deparsing).
  std::vector<std::string> column_names;
};

/// \brief A dataflow edge t_producer --x--> t_consumer.
struct DelegationEdge {
  int producer = -1;
  int consumer = -1;
  Movement movement = Movement::kImplicit;
  double est_rows = 0;
};

/// \brief The delegation plan G = (T, E): a DAG of per-DBMS tasks with
/// implicit/explicit dataflow edges. Tasks are stored in topological order
/// (every producer precedes its consumers; the root task is last).
struct DelegationPlan {
  std::vector<DelegationTask> tasks;
  std::vector<DelegationEdge> edges;

  const DelegationTask& root() const { return tasks.back(); }

  const DelegationTask* FindTask(int id) const {
    for (const auto& t : tasks) {
      if (t.id == id) return &t;
    }
    return nullptr;
  }

  /// Edges consumed by task `consumer_id`.
  std::vector<const DelegationEdge*> InEdges(int consumer_id) const {
    std::vector<const DelegationEdge*> out;
    for (const auto& e : edges) {
      if (e.consumer == consumer_id) out.push_back(&e);
    }
    return out;
  }

  /// Count of inter-DBMS movements (all edges cross DBMSes by construction).
  size_t NumMovements() const { return edges.size(); }

  /// Paper-style rendering: one line per edge
  /// "db1:join(c,o) --implicit--> db2:join(?,l)  [~N rows]".
  std::string ToString() const;

  /// Graphviz rendering (one node per task, dashed edges for explicit
  /// movements) — `dot -Tsvg` gives the paper's Figure 5 pictures.
  std::string ToDot() const;
};

}  // namespace xdb
