#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/span.h"
#include "src/xdb/xdb.h"

namespace xdb {

class SessionManager;

/// \brief Serving-layer knobs for one SessionManager.
struct ServingOptions {
  /// Queries allowed in flight simultaneously across all sessions
  /// (admission control). 0 = unlimited. Excess callers block in Query()
  /// until a slot frees — closed-loop clients self-throttle.
  int max_concurrent_queries = 0;

  /// Per-session span-recorder ring capacity. 0 (default) disables
  /// per-session recording — sessions then share whatever recorder is on
  /// the federation, which interleaves timelines under concurrency.
  size_t session_span_capacity = 0;

  /// Modelled-time deadline applied to every query served through this
  /// manager (seconds; 0 = none). See QueryContext::deadline_seconds.
  double default_deadline_seconds = 0;

  /// Fleet-wide partial-results policy: served queries substitute empty
  /// fragments for undeliverable non-root subtrees instead of failing
  /// (QueryContext::allow_partial). Default off — bit-identical serving.
  bool allow_partial = false;
};

/// \brief Point-in-time view of one *open* session, as surfaced by the
/// `xdb_stat.sessions` system table. Counters come from the manager's
/// atomic per-session registry, so snapshotting is safe while other
/// sessions run queries (the session object itself stays single-threaded).
struct SessionSnapshot {
  int id = 0;
  std::string ddl_prefix;       // the session's DDL namespace
  int inflight = 0;             // queries executing right now (0 or 1)
  int64_t queries_served = 0;   // completed queries, successes + failures
  int64_t failures = 0;
};

/// \brief One client's connection to the federation: a DDL namespace, a
/// query-label channel, an optional private span timeline, and per-session
/// latency bookkeeping. Obtained from SessionManager::OpenSession().
///
/// A session is NOT itself thread-safe — it models one client, so one
/// thread drives it at a time. Concurrency comes from many sessions
/// calling Query() in parallel: the underlying XdbSystem runs each on its
/// calling thread with thread-local run recording, session-scoped relation
/// names ("xdb_s<id>_q<n>_t<k>"), and a fair query-tagged morsel scheduler.
class XdbSession {
 public:
  ~XdbSession();
  XdbSession(const XdbSession&) = delete;
  XdbSession& operator=(const XdbSession&) = delete;

  /// Runs one query under this session's namespace. Blocks for admission
  /// when the manager's in-flight limit is reached.
  Result<XdbReport> Query(const std::string& sql) { return Query(sql, ""); }

  /// Query() with a query-log label ("Q5"-style, bounded vocabulary).
  Result<XdbReport> Query(const std::string& sql, const std::string& label);

  int id() const { return id_; }
  /// Prefix for every relation this session deploys ("xdb_s<id>").
  const std::string& ddl_prefix() const { return ddl_prefix_; }

  int64_t queries_run() const {
    return static_cast<int64_t>(latencies_.size()) + failures_;
  }
  int64_t plan_cache_hits() const { return plan_cache_hits_; }
  int64_t failures() const { return failures_; }

  /// Modelled end-to-end seconds of each *successful* query, in issue
  /// order (failures are counted in failures(), not timed). The qps bench
  /// aggregates these into p50/p99.
  const std::vector<double>& modelled_latencies() const { return latencies_; }

  /// This session's private span timeline (nullptr unless the manager was
  /// configured with session_span_capacity > 0).
  SpanRecorder* spans() { return spans_ ? spans_.get() : nullptr; }

 private:
  friend class SessionManager;
  XdbSession(SessionManager* mgr, int id, size_t span_capacity);

  struct Counters;  // atomic per-session cells shared with the manager

  SessionManager* mgr_;
  int id_;
  std::string ddl_prefix_;
  std::unique_ptr<SpanRecorder> spans_;
  std::shared_ptr<Counters> counters_;
  std::vector<double> latencies_;
  int64_t plan_cache_hits_ = 0;
  int64_t failures_ = 0;
};

/// \brief Atomic per-session counters, shared between the session (writer,
/// from Run's calling thread) and the manager's registry (readers:
/// SnapshotSessions under concurrent serving). Separate from XdbSession's
/// plain members so introspection never races the single-threaded session
/// object.
struct XdbSession::Counters {
  std::string ddl_prefix;
  std::atomic<int> inflight{0};
  std::atomic<int64_t> served{0};
  std::atomic<int64_t> failures{0};
};

/// \brief The multi-tenant serving layer over one XdbSystem (ISSUE 6
/// tentpole): hands out sessions, enforces admission control, and keeps
/// fleet-level counters. Thread-safe; typically one per process.
///
/// Exposes xdb_sessions_opened_total / xdb_active_sessions /
/// xdb_inflight_queries through the federation's MetricsRegistry when one
/// is attached.
class SessionManager {
 public:
  explicit SessionManager(XdbSystem* xdb, ServingOptions options = {});

  /// Opens a new session with a fresh id/namespace. Sessions may outlive
  /// the manager's other sessions but not the manager itself.
  std::unique_ptr<XdbSession> OpenSession();

  XdbSystem* system() const { return xdb_; }
  const ServingOptions& options() const { return options_; }

  int64_t total_queries() const {
    return total_queries_.load(std::memory_order_relaxed);
  }
  int active_sessions() const {
    return active_sessions_.load(std::memory_order_relaxed);
  }

  /// Point-in-time view of every open session, sorted by id. Safe to call
  /// while other threads serve queries: the registry map is mutex-guarded
  /// and the per-session counters are atomic.
  std::vector<SessionSnapshot> SnapshotSessions() const;

 private:
  friend class XdbSession;

  /// The one query path: admission -> XdbSystem::Query with the session's
  /// context -> bookkeeping.
  Result<XdbReport> Run(XdbSession* session, const std::string& sql,
                        const std::string& label);
  void CloseSession(int id);

  void SetGauge(const std::string& name, double value,
                const std::string& help);

  XdbSystem* xdb_;
  ServingOptions options_;
  std::atomic<int> next_session_id_{0};
  std::atomic<int> active_sessions_{0};
  std::atomic<int64_t> total_queries_{0};

  // Admission control.
  std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  int inflight_ = 0;

  // Session registry (id -> shared counters) for SnapshotSessions. The map
  // is guarded; the counters themselves are atomic, so query threads never
  // take this mutex.
  mutable std::mutex sessions_mu_;
  std::map<int, std::shared_ptr<XdbSession::Counters>> sessions_;
};

}  // namespace xdb
