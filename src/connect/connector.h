#pragma once

#include <atomic>
#include <string>

#include "src/connect/dialect.h"
#include "src/dbms/federation.h"
#include "src/dbms/server.h"

namespace xdb {

/// \brief XDB's DBMS connector (DC): the only channel between the
/// middleware and a component DBMS.
///
/// Everything flows through the server's declarative interface — SQL text,
/// DDL, EXPLAIN-style probes, and catalog metadata — and every call records
/// a control-plane round trip on the simulated network (these round trips
/// are what the paper's prep/ann/delegation phase costs consist of).
class DbmsConnector {
 public:
  DbmsConnector(DatabaseServer* server, Dialect dialect, Federation* fed,
                std::string middleware_node)
      : server_(server),
        dialect_(std::move(dialect)),
        fed_(fed),
        middleware_node_(std::move(middleware_node)) {}

  const std::string& server_name() const { return server_->name(); }
  const Dialect& dialect() const { return dialect_; }
  DatabaseServer* server() const { return server_; }
  const EngineProfile& profile() const { return server_->profile(); }

  // --- metadata (preparation phase) ---

  Result<Schema> DescribeTable(const std::string& table) {
    RoundTrip();
    return server_->DescribeRelation(table);
  }

  Result<TableStats> FetchStats(const std::string& table) {
    RoundTrip();
    return server_->GetRelationStats(table);
  }

  std::vector<std::string> ListTables() {
    RoundTrip();
    return server_->BaseRelations();
  }

  // --- consultation (plan annotation phase, Section IV-B-2) ---

  /// Cost of executing the plan fragment on this DBMS, obtained by wrapping
  /// the server's EXPLAIN-style costing (the Garlic-style "consulting"
  /// approach [44]). Placeholder leaves model the "?" inputs of a partial
  /// cross-database plan. Calibrated into common cost units via
  /// `cost_calibration`.
  double ProbeCost(const PlanNode& fragment) {
    RoundTrip();
    probe_count_.fetch_add(1, std::memory_order_relaxed);
    return server_->ModeledPlanCost(fragment) * cost_calibration_;
  }

  int probe_count() const {
    return probe_count_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    probe_count_.store(0, std::memory_order_relaxed);
    roundtrip_count_.store(0, std::memory_order_relaxed);
  }
  int roundtrip_count() const {
    return roundtrip_count_.load(std::memory_order_relaxed);
  }

  /// Aligns this DBMS's cost units with the federation-wide unit (paper
  /// footnote 6: a simple calibration approach across engines).
  void set_cost_calibration(double factor) { cost_calibration_ = factor; }

  // --- deployment (delegation phase) ---

  Status Deploy(const std::string& ddl) {
    RoundTrip();
    XDB_RETURN_NOT_OK(fed_->InjectFault(server_->name(), FaultOp::kDdl));
    return server_->ExecuteDdl(ddl);
  }

  Result<TablePtr> RunQuery(const std::string& sql) {
    RoundTrip();
    XDB_RETURN_NOT_OK(fed_->InjectFault(server_->name(), FaultOp::kQuery));
    return server_->ExecuteQuery(sql);
  }

 private:
  void RoundTrip() {
    roundtrip_count_.fetch_add(1, std::memory_order_relaxed);
    fed_->RecordControlMessage(middleware_node_, server_->name());
    fed_->RecordControlMessage(server_->name(), middleware_node_);
  }

  DatabaseServer* server_;
  Dialect dialect_;
  Federation* fed_;
  std::string middleware_node_;
  double cost_calibration_ = 1.0;
  std::atomic<int> probe_count_{0};
  std::atomic<int> roundtrip_count_{0};
};

}  // namespace xdb
