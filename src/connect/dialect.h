#pragma once

#include <string>
#include <vector>

namespace xdb {

/// \brief Vendor SQL dialect used when generating delegated DDL.
///
/// The paper's delegation engine "translates and executes DBMS-specific
/// instructions". Our simulated servers all parse a common grammar, so the
/// dialects differ where that grammar tolerates it (identifier quoting), and
/// the connector is the single place a real deployment would widen.
struct Dialect {
  std::string name = "postgres";
  char identifier_quote = '"';
  bool quote_identifiers = false;  // only quote when necessary by default

  std::string QuoteIdent(const std::string& ident) const {
    if (!quote_identifiers) return ident;
    return std::string(1, identifier_quote) + ident +
           std::string(1, identifier_quote);
  }

  /// CREATE VIEW <name> AS <select>
  std::string CreateViewSql(const std::string& view_name,
                            const std::string& select_sql) const {
    return "CREATE VIEW " + QuoteIdent(view_name) + " AS " + select_sql;
  }

  /// CREATE FOREIGN TABLE <name>(cols) SERVER <server>
  ///   OPTIONS (table '<remote>')
  std::string CreateForeignTableSql(
      const std::string& table_name, const std::vector<std::string>& columns,
      const std::string& server, const std::string& remote_relation) const {
    std::string sql = "CREATE FOREIGN TABLE " + QuoteIdent(table_name);
    if (!columns.empty()) {
      sql += "(";
      for (size_t i = 0; i < columns.size(); ++i) {
        if (i > 0) sql += ", ";
        sql += QuoteIdent(columns[i]);
      }
      sql += ")";
    }
    sql += " SERVER " + server;
    if (!remote_relation.empty() && remote_relation != table_name) {
      sql += " OPTIONS (table '" + remote_relation + "')";
    }
    return sql;
  }

  /// CREATE TABLE <name> AS SELECT * FROM <source>
  std::string CreateTableAsSql(const std::string& table_name,
                               const std::string& source_relation) const {
    return "CREATE TABLE " + QuoteIdent(table_name) + " AS SELECT * FROM " +
           QuoteIdent(source_relation);
  }

  std::string DropSql(const std::string& relation,
                      const std::string& kind) const {
    return "DROP " + kind + " IF EXISTS " + QuoteIdent(relation);
  }

  static Dialect Postgres() { return Dialect{"postgres", '"', false}; }
  static Dialect MariaDb() { return Dialect{"mariadb", '`', true}; }
  static Dialect Hive() { return Dialect{"hive", '`', false}; }
};

}  // namespace xdb
