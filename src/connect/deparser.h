#pragma once

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/connect/dialect.h"
#include "src/plan/plan.h"

namespace xdb {

/// \brief A task plan rendered back to a flat declarative query.
struct DeparsedQuery {
  std::string sql;                       // the SELECT text
  std::vector<std::string> column_names; // unique output column names
};

/// \brief Renders a task's plan subtree as a single flat SELECT statement.
///
/// This is the inverse direction of the planner and the heart of delegation:
/// the optimizer hands a DBMS an *algebraic instruction* (a plan subtree),
/// but autonomous DBMSes only accept declarative SQL — so the instruction is
/// deparsed into SELECT-FROM-WHERE[-GROUP BY...] text and shipped as a view
/// definition. Placeholder leaves ("?" inputs produced by other tasks)
/// render as references to their `placeholder_name` relation (the foreign
/// table or materialised table created on the target DBMS).
///
/// Operator order *within* the task is intentionally not preserved — the
/// target DBMS re-optimizes the flat query locally, exactly as the paper
/// observes for delegated tasks (Section IV-B-1).
///
/// Supported shapes: Limit?(Sort?(Project?(Aggregate?(Filter/Join tree over
/// Scan/Placeholder leaves)))). An Aggregate below a Join cannot be
/// flattened and returns NotImplemented (XDB's finalizer never produces it).
Result<DeparsedQuery> DeparsePlan(const PlanNode& plan,
                                  const Dialect& dialect);

}  // namespace xdb
