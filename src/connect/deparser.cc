#include "src/connect/deparser.h"

#include <map>
#include <set>

#include "src/common/str_util.h"

namespace xdb {

namespace {

/// Intermediate flattening state: FROM items, WHERE conjuncts, and the SQL
/// rendering of each output column of the current subtree.
struct FlatQuery {
  struct FromItem {
    std::string relation;   // relation name, or raw SELECT text when
                            // is_subquery (rendered as a derived table)
    std::string alias;
    bool is_subquery = false;
  };
  std::vector<FromItem> from;
  std::vector<std::string> where;
  std::vector<std::string> out_sql;    // per output column
  std::vector<std::string> out_names;  // display names (may collide)

  bool has_aggregate = false;
  std::vector<std::string> group_by;
  std::vector<std::string> having;
  std::vector<std::pair<std::string, bool>> order_by;  // (sql, descending)
  int64_t limit = -1;
};

std::vector<std::string> UniquifyNames(const std::vector<std::string>& names);

/// Assembles a FlatQuery into SELECT text; output columns are aliased to
/// `names` (which must be unique identifiers).
std::string AssembleSql(const FlatQuery& q,
                        const std::vector<std::string>& names,
                        const Dialect& dialect) {
  std::string sql = "SELECT ";
  for (size_t i = 0; i < q.out_sql.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += q.out_sql[i] + " AS " + dialect.QuoteIdent(names[i]);
  }
  sql += " FROM ";
  for (size_t i = 0; i < q.from.size(); ++i) {
    if (i > 0) sql += ", ";
    if (q.from[i].is_subquery) {
      sql += "(" + q.from[i].relation + ") AS " + q.from[i].alias;
      continue;
    }
    sql += dialect.QuoteIdent(q.from[i].relation);
    if (q.from[i].alias != q.from[i].relation) {
      sql += " AS " + q.from[i].alias;
    }
  }
  if (!q.where.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < q.where.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += q.where[i];
    }
  }
  if (!q.group_by.empty()) {
    sql += " GROUP BY ";
    for (size_t i = 0; i < q.group_by.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += q.group_by[i];
    }
  }
  if (!q.having.empty()) {
    sql += " HAVING ";
    for (size_t i = 0; i < q.having.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += q.having[i];
    }
  }
  if (!q.order_by.empty()) {
    sql += " ORDER BY ";
    for (size_t i = 0; i < q.order_by.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += q.order_by[i].first;
      if (q.order_by[i].second) sql += " DESC";
    }
  }
  if (q.limit >= 0) sql += " LIMIT " + std::to_string(q.limit);
  return sql;
}

/// Renders a bound expression, substituting `cols[i]` for column i.
std::string RenderExpr(const Expr& e, const std::vector<std::string>& cols) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
      return cols[static_cast<size_t>(e.column_index)];
    case ExprKind::kLiteral:
      return e.literal.ToSqlLiteral();
    case ExprKind::kBinary:
      return "(" + RenderExpr(*e.children[0], cols) + " " +
             BinaryOpToSql(e.binary_op) + " " +
             RenderExpr(*e.children[1], cols) + ")";
    case ExprKind::kUnary:
      switch (e.unary_op) {
        case UnaryOp::kNot:
          return "(NOT " + RenderExpr(*e.children[0], cols) + ")";
        case UnaryOp::kNeg:
          return "(-" + RenderExpr(*e.children[0], cols) + ")";
        case UnaryOp::kIsNull:
          return "(" + RenderExpr(*e.children[0], cols) + " IS NULL)";
        case UnaryOp::kIsNotNull:
          return "(" + RenderExpr(*e.children[0], cols) + " IS NOT NULL)";
      }
      return "?";
    case ExprKind::kBetween:
      return "(" + RenderExpr(*e.children[0], cols) + " BETWEEN " +
             RenderExpr(*e.children[1], cols) + " AND " +
             RenderExpr(*e.children[2], cols) + ")";
    case ExprKind::kLike:
      return "(" + RenderExpr(*e.children[0], cols) + " LIKE " +
             RenderExpr(*e.children[1], cols) + ")";
    case ExprKind::kInList: {
      std::string out = "(" + RenderExpr(*e.children[0], cols) + " IN (";
      for (size_t i = 1; i < e.children.size(); ++i) {
        if (i > 1) out += ", ";
        out += RenderExpr(*e.children[i], cols);
      }
      return out + "))";
    }
    case ExprKind::kCaseWhen: {
      std::string out = "CASE";
      size_t pairs = (e.children.size() - (e.case_has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        out += " WHEN " + RenderExpr(*e.children[2 * i], cols) + " THEN " +
               RenderExpr(*e.children[2 * i + 1], cols);
      }
      if (e.case_has_else) {
        out += " ELSE " + RenderExpr(*e.children.back(), cols);
      }
      return out + " END";
    }
    case ExprKind::kFunction:
      if (e.function_name == "extract_year") {
        return "EXTRACT(YEAR FROM " + RenderExpr(*e.children[0], cols) + ")";
      } else {
        std::string out = ToUpper(e.function_name) + "(";
        for (size_t i = 0; i < e.children.size(); ++i) {
          if (i > 0) out += ", ";
          out += RenderExpr(*e.children[i], cols);
        }
        return out + ")";
      }
    case ExprKind::kAggregate:
      if (e.agg_kind == AggKind::kCountStar) return "COUNT(*)";
      return std::string(AggKindToSql(e.agg_kind)) + "(" +
             RenderExpr(*e.children[0], cols) + ")";
  }
  return "?";
}

class Flattener {
 public:
  explicit Flattener(const Dialect& dialect) : dialect_(dialect) {}

  Result<FlatQuery> Walk(const PlanNode& node) {
    switch (node.kind) {
      case PlanKind::kScan: {
        FlatQuery q;
        std::string alias = UniqueAlias(
            node.alias.empty() ? node.table : node.alias);
        q.from.push_back({node.table, alias});
        for (const auto& f : node.output_schema.fields()) {
          q.out_sql.push_back(alias + "." + dialect_.QuoteIdent(f.name));
          q.out_names.push_back(f.name);
        }
        return q;
      }
      case PlanKind::kPlaceholder: {
        FlatQuery q;
        std::string alias = UniqueAlias(node.placeholder_name);
        q.from.push_back({node.placeholder_name, alias});
        for (const auto& f : node.output_schema.fields()) {
          q.out_sql.push_back(alias + "." + dialect_.QuoteIdent(f.name));
          q.out_names.push_back(f.name);
        }
        return q;
      }
      case PlanKind::kFilter: {
        XDB_ASSIGN_OR_RETURN(FlatQuery q, Walk(*node.children[0]));
        if (q.has_aggregate) {
          // A filter over aggregate output is SQL's HAVING clause.
          q.having.push_back(RenderExpr(*node.predicate, q.out_sql));
          return q;
        }
        q.where.push_back(RenderExpr(*node.predicate, q.out_sql));
        return q;
      }
      case PlanKind::kProject: {
        XDB_ASSIGN_OR_RETURN(FlatQuery q, Walk(*node.children[0]));
        std::vector<std::string> sql, names;
        for (const auto& e : node.exprs) {
          sql.push_back(RenderExpr(*e, q.out_sql));
          names.push_back(e->OutputName());
        }
        q.out_sql = std::move(sql);
        q.out_names = std::move(names);
        return q;
      }
      case PlanKind::kJoin: {
        XDB_ASSIGN_OR_RETURN(FlatQuery l, Walk(*node.children[0]));
        XDB_ASSIGN_OR_RETURN(FlatQuery r, Walk(*node.children[1]));
        // A join input that already aggregates (or sorts/limits) cannot be
        // merged into this SELECT's FROM list directly — collapse it into
        // a derived table `(SELECT ...) AS dN`.
        if (l.has_aggregate || l.limit >= 0) l = Collapse(std::move(l));
        if (r.has_aggregate || r.limit >= 0) r = Collapse(std::move(r));
        FlatQuery q;
        q.from = l.from;
        q.from.insert(q.from.end(), r.from.begin(), r.from.end());
        q.where = l.where;
        q.where.insert(q.where.end(), r.where.begin(), r.where.end());
        q.out_sql = l.out_sql;
        q.out_sql.insert(q.out_sql.end(), r.out_sql.begin(), r.out_sql.end());
        q.out_names = l.out_names;
        q.out_names.insert(q.out_names.end(), r.out_names.begin(),
                           r.out_names.end());
        for (size_t i = 0; i < node.left_keys.size(); ++i) {
          q.where.push_back(
              l.out_sql[static_cast<size_t>(node.left_keys[i])] + " = " +
              r.out_sql[static_cast<size_t>(node.right_keys[i])]);
        }
        if (node.residual) {
          q.where.push_back(RenderExpr(*node.residual, q.out_sql));
        }
        return q;
      }
      case PlanKind::kAggregate: {
        XDB_ASSIGN_OR_RETURN(FlatQuery q, Walk(*node.children[0]));
        if (q.has_aggregate || q.limit >= 0) {
          // Aggregate over an aggregate (or over a LIMITed input): wrap the
          // inner query as a derived table and aggregate over it.
          q = Collapse(std::move(q));
        }
        std::vector<std::string> sql, names;
        for (const auto& g : node.group_keys) {
          std::string rendered = RenderExpr(*g, q.out_sql);
          q.group_by.push_back(rendered);
          sql.push_back(rendered);
          names.push_back(g->OutputName());
        }
        for (const auto& a : node.aggregates) {
          sql.push_back(RenderExpr(*a, q.out_sql));
          names.push_back(a->OutputName());
        }
        q.out_sql = std::move(sql);
        q.out_names = std::move(names);
        q.has_aggregate = true;
        return q;
      }
      case PlanKind::kSort: {
        XDB_ASSIGN_OR_RETURN(FlatQuery q, Walk(*node.children[0]));
        for (const auto& [idx, desc] : node.sort_keys) {
          q.order_by.emplace_back(q.out_sql[static_cast<size_t>(idx)], desc);
        }
        return q;
      }
      case PlanKind::kLimit: {
        XDB_ASSIGN_OR_RETURN(FlatQuery q, Walk(*node.children[0]));
        q.limit = node.limit;
        return q;
      }
    }
    return Status::Internal("unknown plan kind in deparser");
  }

 private:
  /// Collapses a FlatQuery into a single derived-table FROM item whose
  /// columns are plain references into the subselect's output.
  FlatQuery Collapse(FlatQuery inner) {
    std::vector<std::string> names = UniquifyNames(inner.out_names);
    std::string alias = UniqueAlias("dq");
    FlatQuery out;
    FlatQuery::FromItem item;
    item.relation = AssembleSql(inner, names, dialect_);
    item.alias = alias;
    item.is_subquery = true;
    out.from.push_back(std::move(item));
    for (size_t i = 0; i < names.size(); ++i) {
      out.out_sql.push_back(alias + "." + dialect_.QuoteIdent(names[i]));
      out.out_names.push_back(inner.out_names[i]);
    }
    return out;
  }

  std::string UniqueAlias(const std::string& base) {
    std::string alias = ToLower(base);
    int suffix = 1;
    while (used_aliases_.count(alias)) {
      alias = ToLower(base) + "_" + std::to_string(++suffix);
    }
    used_aliases_.insert(alias);
    return alias;
  }

  const Dialect& dialect_;
  std::set<std::string> used_aliases_;
};

/// Makes output names unique and identifier-safe.
std::vector<std::string> UniquifyNames(const std::vector<std::string>& names) {
  std::vector<std::string> out;
  std::set<std::string> used;
  for (size_t i = 0; i < names.size(); ++i) {
    std::string base = ToLower(names[i]);
    // Derived expressions get positional names; identifiers pass through.
    bool ident = !base.empty() &&
                 (std::isalpha(static_cast<unsigned char>(base[0])) ||
                  base[0] == '_');
    for (char c : base) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
        ident = false;
        break;
      }
    }
    if (!ident) base = "col_" + std::to_string(i + 1);
    std::string name = base;
    int suffix = 1;
    while (used.count(name)) name = base + "_" + std::to_string(++suffix);
    used.insert(name);
    out.push_back(name);
  }
  return out;
}

}  // namespace

Result<DeparsedQuery> DeparsePlan(const PlanNode& plan,
                                  const Dialect& dialect) {
  Flattener flattener(dialect);
  XDB_ASSIGN_OR_RETURN(FlatQuery q, flattener.Walk(plan));

  DeparsedQuery out;
  out.column_names = UniquifyNames(q.out_names);
  out.sql = AssembleSql(q, out.column_names, dialect);
  return out;
}

}  // namespace xdb
