#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/types/schema.h"
#include "src/types/table.h"

namespace xdb {

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// \brief Node kinds of the scalar-expression AST.
enum class ExprKind : uint8_t {
  kColumnRef,   // qualified or unqualified column reference
  kLiteral,     // constant Value
  kBinary,      // arithmetic / comparison / AND / OR
  kUnary,       // NOT, negation, IS [NOT] NULL
  kBetween,     // a BETWEEN lo AND hi
  kLike,        // a LIKE 'pattern'
  kInList,      // a IN (v1, v2, ...)
  kCaseWhen,    // CASE WHEN c THEN v ... [ELSE e] END
  kFunction,    // scalar function call (EXTRACT-year, SUBSTRING, ...)
  kAggregate,   // SUM/AVG/COUNT/MIN/MAX(arg); only valid in SELECT lists
};

enum class BinaryOp : uint8_t {
  kAdd, kSub, kMul, kDiv,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnaryOp : uint8_t { kNot, kNeg, kIsNull, kIsNotNull };

enum class AggKind : uint8_t { kSum, kAvg, kCount, kMin, kMax, kCountStar };

const char* BinaryOpToSql(BinaryOp op);
const char* AggKindToSql(AggKind k);

/// \brief A scalar expression tree node.
///
/// A single tagged node type (in the SQLite tradition) rather than a class
/// hierarchy: expressions here are small and the uniform representation keeps
/// cloning, binding, printing and hashing in one place each.
///
/// Column references exist in two states: *unbound* (identified by optional
/// qualifier + column name, as parsed) and *bound* (index into the input
/// schema, set by BindExpr). Evaluation requires a bound tree.
class Expr {
 public:
  ExprKind kind;

  // kColumnRef
  std::string qualifier;   // table alias or table name; may be empty
  std::string column;      // column name
  int column_index = -1;   // >= 0 once bound
  TypeId column_type = TypeId::kInt64;  // valid once bound

  // kLiteral
  Value literal = Value::Int64(0);

  // kBinary / kUnary
  BinaryOp binary_op = BinaryOp::kAdd;
  UnaryOp unary_op = UnaryOp::kNot;

  // kAggregate
  AggKind agg_kind = AggKind::kSum;

  // kFunction
  std::string function_name;  // lowercase

  // children: operands; for kCaseWhen: [when1, then1, when2, then2, ..., else?]
  std::vector<ExprPtr> children;
  bool case_has_else = false;

  /// Optional output alias (SELECT ... AS alias).
  std::string alias;

  // ---- factories ----
  static ExprPtr Column(std::string qualifier, std::string column);
  static ExprPtr BoundColumn(int index, TypeId type, std::string name);
  static ExprPtr Literal(Value v);
  static ExprPtr Binary(BinaryOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Between(ExprPtr v, ExprPtr lo, ExprPtr hi);
  static ExprPtr Like(ExprPtr v, ExprPtr pattern);
  static ExprPtr InList(ExprPtr v, std::vector<ExprPtr> list);
  static ExprPtr Case(std::vector<ExprPtr> when_then_pairs, ExprPtr else_expr);
  static ExprPtr Function(std::string name, std::vector<ExprPtr> args);
  static ExprPtr Aggregate(AggKind kind, ExprPtr arg);  // arg null for COUNT(*)

  /// Deep copy.
  ExprPtr Clone() const;

  /// True if any node in the tree is an aggregate.
  bool ContainsAggregate() const;

  /// Output name: alias if set, else a derived name ("col", "sum(...)", ...).
  std::string OutputName() const;

  /// Renders as (dialect-neutral) SQL text.
  std::string ToSql() const;

  /// Structural equality (ignores alias).
  bool Equals(const Expr& other) const;
};

/// \brief Resolves column references against `schema`, returning a bound
/// clone. Qualifiers are matched against `qualifiers[i]` for field i when
/// provided (same length as schema); otherwise only names are matched.
Result<ExprPtr> BindExpr(const ExprPtr& expr, const Schema& schema,
                         const std::vector<std::string>* qualifiers = nullptr);

/// \brief Static result type of a bound expression.
TypeId InferType(const ExprPtr& expr);

/// \brief Evaluates a bound, aggregate-free expression against a row.
Value EvalExpr(const Expr& expr, const Row& row);

/// \brief True iff the predicate evaluates to (non-NULL) TRUE on the row.
bool EvalPredicate(const Expr& expr, const Row& row);

/// \brief Applies a non-AND/OR binary operator to two already-evaluated
/// operands. This is the single value-level kernel behind both the scalar
/// evaluator and the vectorized fallback path (vector_eval.cc), so the two
/// agree bit for bit by construction.
Value EvalBinaryValues(BinaryOp op, const Value& l, const Value& r);

/// \brief Applies a unary operator to an already-evaluated operand (same
/// sharing contract as EvalBinaryValues).
Value EvalUnaryValue(UnaryOp op, const Value& v);

/// \brief Collects all column indices referenced by a bound tree.
void CollectColumnIndices(const Expr& expr, std::vector<int>* out);

/// \brief Collects all unbound column names (qualifier.column) in the tree.
void CollectColumnNames(const Expr& expr,
                        std::vector<std::pair<std::string, std::string>>* out);

}  // namespace xdb
