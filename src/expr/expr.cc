#include "src/expr/expr.h"

#include <cmath>

#include "src/common/str_util.h"

namespace xdb {

const char* BinaryOpToSql(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

const char* AggKindToSql(AggKind k) {
  switch (k) {
    case AggKind::kSum: return "SUM";
    case AggKind::kAvg: return "AVG";
    case AggKind::kCount: return "COUNT";
    case AggKind::kMin: return "MIN";
    case AggKind::kMax: return "MAX";
    case AggKind::kCountStar: return "COUNT";
  }
  return "?";
}

ExprPtr Expr::Column(std::string qualifier, std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr Expr::BoundColumn(int index, TypeId type, std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column = std::move(name);
  e->column_index = index;
  e->column_type = type;
  return e;
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children = {std::move(operand)};
  return e;
}

ExprPtr Expr::Between(ExprPtr v, ExprPtr lo, ExprPtr hi) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBetween;
  e->children = {std::move(v), std::move(lo), std::move(hi)};
  return e;
}

ExprPtr Expr::Like(ExprPtr v, ExprPtr pattern) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLike;
  e->children = {std::move(v), std::move(pattern)};
  return e;
}

ExprPtr Expr::InList(ExprPtr v, std::vector<ExprPtr> list) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kInList;
  e->children.push_back(std::move(v));
  for (auto& x : list) e->children.push_back(std::move(x));
  return e;
}

ExprPtr Expr::Case(std::vector<ExprPtr> when_then_pairs, ExprPtr else_expr) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCaseWhen;
  e->children = std::move(when_then_pairs);
  if (else_expr) {
    e->children.push_back(std::move(else_expr));
    e->case_has_else = true;
  }
  return e;
}

ExprPtr Expr::Function(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFunction;
  e->function_name = ToLower(name);
  e->children = std::move(args);
  return e;
}

ExprPtr Expr::Aggregate(AggKind kind, ExprPtr arg) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAggregate;
  e->agg_kind = kind;
  if (arg) e->children.push_back(std::move(arg));
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_shared<Expr>(*this);
  for (auto& c : e->children) c = c->Clone();
  return e;
}

bool Expr::ContainsAggregate() const {
  if (kind == ExprKind::kAggregate) return true;
  for (const auto& c : children) {
    if (c->ContainsAggregate()) return true;
  }
  return false;
}

std::string Expr::OutputName() const {
  if (!alias.empty()) return alias;
  if (kind == ExprKind::kColumnRef) return column;
  return ToSql();
}

std::string Expr::ToSql() const {
  switch (kind) {
    case ExprKind::kColumnRef:
      if (!qualifier.empty()) return qualifier + "." + column;
      return column;
    case ExprKind::kLiteral:
      return literal.ToSqlLiteral();
    case ExprKind::kBinary:
      return "(" + children[0]->ToSql() + " " + BinaryOpToSql(binary_op) +
             " " + children[1]->ToSql() + ")";
    case ExprKind::kUnary:
      switch (unary_op) {
        case UnaryOp::kNot:
          return "(NOT " + children[0]->ToSql() + ")";
        case UnaryOp::kNeg:
          return "(-" + children[0]->ToSql() + ")";
        case UnaryOp::kIsNull:
          return "(" + children[0]->ToSql() + " IS NULL)";
        case UnaryOp::kIsNotNull:
          return "(" + children[0]->ToSql() + " IS NOT NULL)";
      }
      return "?";
    case ExprKind::kBetween:
      return "(" + children[0]->ToSql() + " BETWEEN " + children[1]->ToSql() +
             " AND " + children[2]->ToSql() + ")";
    case ExprKind::kLike:
      return "(" + children[0]->ToSql() + " LIKE " + children[1]->ToSql() +
             ")";
    case ExprKind::kInList: {
      std::string out = "(" + children[0]->ToSql() + " IN (";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToSql();
      }
      return out + "))";
    }
    case ExprKind::kCaseWhen: {
      std::string out = "CASE";
      size_t pairs = (children.size() - (case_has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        out += " WHEN " + children[2 * i]->ToSql() + " THEN " +
               children[2 * i + 1]->ToSql();
      }
      if (case_has_else) out += " ELSE " + children.back()->ToSql();
      return out + " END";
    }
    case ExprKind::kFunction: {
      if (function_name == "extract_year") {
        return "EXTRACT(YEAR FROM " + children[0]->ToSql() + ")";
      }
      std::string out = ToUpper(function_name) + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToSql();
      }
      return out + ")";
    }
    case ExprKind::kAggregate:
      if (agg_kind == AggKind::kCountStar) return "COUNT(*)";
      return std::string(AggKindToSql(agg_kind)) + "(" +
             children[0]->ToSql() + ")";
  }
  return "?";
}

bool Expr::Equals(const Expr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case ExprKind::kColumnRef:
      if (column_index >= 0 || other.column_index >= 0) {
        return column_index == other.column_index;
      }
      return EqualsIgnoreCase(qualifier, other.qualifier) &&
             EqualsIgnoreCase(column, other.column);
    case ExprKind::kLiteral:
      if (literal.is_null() != other.literal.is_null()) return false;
      return literal.Compare(other.literal) == 0;
    case ExprKind::kBinary:
      if (binary_op != other.binary_op) return false;
      break;
    case ExprKind::kUnary:
      if (unary_op != other.unary_op) return false;
      break;
    case ExprKind::kAggregate:
      if (agg_kind != other.agg_kind) return false;
      break;
    case ExprKind::kFunction:
      if (function_name != other.function_name) return false;
      break;
    case ExprKind::kCaseWhen:
      if (case_has_else != other.case_has_else) return false;
      break;
    default:
      break;
  }
  if (children.size() != other.children.size()) return false;
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->Equals(*other.children[i])) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Binding
// ---------------------------------------------------------------------------

Result<ExprPtr> BindExpr(const ExprPtr& expr, const Schema& schema,
                         const std::vector<std::string>* qualifiers) {
  ExprPtr bound = expr->Clone();

  // Recursive in-place resolution over the cloned tree.
  struct Binder {
    const Schema& schema;
    const std::vector<std::string>* quals;

    Status Bind(Expr* e) {
      if (e->kind == ExprKind::kColumnRef) {
        if (e->column_index >= 0) {
          if (static_cast<size_t>(e->column_index) >= schema.num_fields()) {
            return Status::BindError("bound column index out of range: " +
                                     std::to_string(e->column_index));
          }
          e->column_type = schema.field(e->column_index).type;
          return Status::OK();
        }
        int found = -1;
        for (size_t i = 0; i < schema.num_fields(); ++i) {
          if (!EqualsIgnoreCase(schema.field(i).name, e->column)) continue;
          if (!e->qualifier.empty() && quals != nullptr &&
              !EqualsIgnoreCase((*quals)[i], e->qualifier)) {
            continue;
          }
          if (found >= 0) {
            return Status::BindError("ambiguous column reference: " +
                                     e->ToSql());
          }
          found = static_cast<int>(i);
        }
        if (found < 0) {
          return Status::BindError("unknown column: " + e->ToSql() +
                                   " in schema " + schema.ToString());
        }
        e->column_index = found;
        e->column_type = schema.field(found).type;
        return Status::OK();
      }
      for (auto& c : e->children) XDB_RETURN_NOT_OK(Bind(c.get()));
      return Status::OK();
    }
  };

  Binder binder{schema, qualifiers};
  XDB_RETURN_NOT_OK(binder.Bind(bound.get()));
  return bound;
}

TypeId InferType(const ExprPtr& expr) {
  switch (expr->kind) {
    case ExprKind::kColumnRef:
      return expr->column_type;
    case ExprKind::kLiteral:
      return expr->literal.type();
    case ExprKind::kBinary:
      switch (expr->binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul: {
          TypeId l = InferType(expr->children[0]);
          TypeId r = InferType(expr->children[1]);
          if (l == TypeId::kDouble || r == TypeId::kDouble) {
            return TypeId::kDouble;
          }
          if (l == TypeId::kDate || r == TypeId::kDate) return TypeId::kDate;
          return TypeId::kInt64;
        }
        case BinaryOp::kDiv:
          return TypeId::kDouble;
        default:
          return TypeId::kBool;
      }
    case ExprKind::kUnary:
      if (expr->unary_op == UnaryOp::kNeg) {
        return InferType(expr->children[0]);
      }
      return TypeId::kBool;
    case ExprKind::kBetween:
    case ExprKind::kLike:
    case ExprKind::kInList:
      return TypeId::kBool;
    case ExprKind::kCaseWhen: {
      // Type of the first THEN branch.
      if (expr->children.size() >= 2) return InferType(expr->children[1]);
      return TypeId::kString;
    }
    case ExprKind::kFunction:
      if (expr->function_name == "extract_year") return TypeId::kInt64;
      if (expr->function_name == "substring") return TypeId::kString;
      if ((expr->function_name == "coalesce" ||
           expr->function_name == "abs") &&
          !expr->children.empty()) {
        return InferType(expr->children[0]);
      }
      return TypeId::kDouble;
    case ExprKind::kAggregate:
      switch (expr->agg_kind) {
        case AggKind::kCount:
        case AggKind::kCountStar:
          return TypeId::kInt64;
        case AggKind::kAvg:
          return TypeId::kDouble;
        case AggKind::kSum: {
          TypeId t = InferType(expr->children[0]);
          return t == TypeId::kInt64 ? TypeId::kInt64 : TypeId::kDouble;
        }
        case AggKind::kMin:
        case AggKind::kMax:
          return InferType(expr->children[0]);
      }
  }
  return TypeId::kInt64;
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

namespace {

Value EvalBinary(const Expr& e, const Row& row) {
  // AND/OR use three-valued logic with short-circuiting.
  if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
    Value l = EvalExpr(*e.children[0], row);
    bool is_and = e.binary_op == BinaryOp::kAnd;
    if (!l.is_null()) {
      bool lb = l.bool_value();
      if (is_and && !lb) return Value::Bool(false);
      if (!is_and && lb) return Value::Bool(true);
    }
    Value r = EvalExpr(*e.children[1], row);
    if (!r.is_null()) {
      bool rb = r.bool_value();
      if (is_and && !rb) return Value::Bool(false);
      if (!is_and && rb) return Value::Bool(true);
    }
    if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBool);
    return Value::Bool(is_and);
  }

  return EvalBinaryValues(e.binary_op,
                          EvalExpr(*e.children[0], row),
                          EvalExpr(*e.children[1], row));
}

}  // namespace

Value EvalBinaryValues(BinaryOp op, const Value& l, const Value& r) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (l.is_null() || r.is_null()) {
        return Value::Null(TypeId::kDouble);
      }
      bool as_int = l.type() != TypeId::kDouble &&
                    r.type() != TypeId::kDouble && op != BinaryOp::kDiv;
      if (as_int) {
        int64_t a = l.int64_value(), b = r.int64_value();
        int64_t out = op == BinaryOp::kAdd   ? a + b
                      : op == BinaryOp::kSub ? a - b
                                             : a * b;
        // Date +/- integer stays a date.
        if ((l.type() == TypeId::kDate || r.type() == TypeId::kDate) &&
            op != BinaryOp::kMul) {
          return Value::Date(out);
        }
        return Value::Int64(out);
      }
      double a = l.AsDouble(), b = r.AsDouble();
      switch (op) {
        case BinaryOp::kAdd: return Value::Double(a + b);
        case BinaryOp::kSub: return Value::Double(a - b);
        case BinaryOp::kMul: return Value::Double(a * b);
        default:
          if (b == 0.0) return Value::Null(TypeId::kDouble);
          return Value::Double(a / b);
      }
    }
    default: {
      if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBool);
      int c = l.Compare(r);
      switch (op) {
        case BinaryOp::kEq: return Value::Bool(c == 0);
        case BinaryOp::kNe: return Value::Bool(c != 0);
        case BinaryOp::kLt: return Value::Bool(c < 0);
        case BinaryOp::kLe: return Value::Bool(c <= 0);
        case BinaryOp::kGt: return Value::Bool(c > 0);
        case BinaryOp::kGe: return Value::Bool(c >= 0);
        default: return Value::Null(TypeId::kBool);
      }
    }
  }
}

Value EvalUnaryValue(UnaryOp op, const Value& v) {
  switch (op) {
    case UnaryOp::kNot:
      if (v.is_null()) return Value::Null(TypeId::kBool);
      return Value::Bool(!v.bool_value());
    case UnaryOp::kNeg:
      if (v.is_null()) return v;
      if (v.type() == TypeId::kDouble) {
        return Value::Double(-v.double_value());
      }
      return Value::Int64(-v.int64_value());
    case UnaryOp::kIsNull:
      return Value::Bool(v.is_null());
    case UnaryOp::kIsNotNull:
      return Value::Bool(!v.is_null());
  }
  return Value::Null(TypeId::kBool);
}

Value EvalExpr(const Expr& expr, const Row& row) {
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      return row[static_cast<size_t>(expr.column_index)];
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kBinary:
      return EvalBinary(expr, row);
    case ExprKind::kUnary:
      return EvalUnaryValue(expr.unary_op, EvalExpr(*expr.children[0], row));
    case ExprKind::kBetween: {
      Value v = EvalExpr(*expr.children[0], row);
      Value lo = EvalExpr(*expr.children[1], row);
      Value hi = EvalExpr(*expr.children[2], row);
      if (v.is_null() || lo.is_null() || hi.is_null()) {
        return Value::Null(TypeId::kBool);
      }
      return Value::Bool(v.Compare(lo) >= 0 && v.Compare(hi) <= 0);
    }
    case ExprKind::kLike: {
      Value v = EvalExpr(*expr.children[0], row);
      Value p = EvalExpr(*expr.children[1], row);
      if (v.is_null() || p.is_null()) return Value::Null(TypeId::kBool);
      return Value::Bool(LikeMatch(v.string_value(), p.string_value()));
    }
    case ExprKind::kInList: {
      Value v = EvalExpr(*expr.children[0], row);
      if (v.is_null()) return Value::Null(TypeId::kBool);
      bool saw_null = false;
      for (size_t i = 1; i < expr.children.size(); ++i) {
        Value c = EvalExpr(*expr.children[i], row);
        if (c.is_null()) {
          saw_null = true;
          continue;
        }
        if (v.Compare(c) == 0) return Value::Bool(true);
      }
      return saw_null ? Value::Null(TypeId::kBool) : Value::Bool(false);
    }
    case ExprKind::kCaseWhen: {
      size_t pairs = (expr.children.size() - (expr.case_has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        Value c = EvalExpr(*expr.children[2 * i], row);
        if (!c.is_null() && c.bool_value()) {
          return EvalExpr(*expr.children[2 * i + 1], row);
        }
      }
      if (expr.case_has_else) return EvalExpr(*expr.children.back(), row);
      return Value::Null(TypeId::kString);
    }
    case ExprKind::kFunction: {
      if (expr.function_name == "extract_year") {
        Value v = EvalExpr(*expr.children[0], row);
        if (v.is_null()) return Value::Null(TypeId::kInt64);
        int y, m, d;
        CivilFromDays(v.date_value(), &y, &m, &d);
        return Value::Int64(y);
      }
      if (expr.function_name == "coalesce") {
        for (const auto& child : expr.children) {
          Value v = EvalExpr(*child, row);
          if (!v.is_null()) return v;
        }
        return Value::Null(expr.children.empty()
                               ? TypeId::kInt64
                               : InferType(expr.children[0]));
      }
      if (expr.function_name == "abs") {
        Value v = EvalExpr(*expr.children[0], row);
        if (v.is_null()) return v;
        if (v.type() == TypeId::kDouble) {
          return Value::Double(std::fabs(v.double_value()));
        }
        return Value::Int64(std::llabs(v.int64_value()));
      }
      if (expr.function_name == "round") {
        Value v = EvalExpr(*expr.children[0], row);
        if (v.is_null()) return Value::Null(TypeId::kDouble);
        double scale = 1.0;
        if (expr.children.size() > 1) {
          Value digits = EvalExpr(*expr.children[1], row);
          if (!digits.is_null()) {
            scale = std::pow(10.0, digits.AsDouble());
          }
        }
        return Value::Double(std::round(v.AsDouble() * scale) / scale);
      }
      if (expr.function_name == "substring") {
        Value v = EvalExpr(*expr.children[0], row);
        Value start = EvalExpr(*expr.children[1], row);
        Value len = EvalExpr(*expr.children[2], row);
        if (v.is_null() || start.is_null() || len.is_null()) {
          return Value::Null(TypeId::kString);
        }
        const std::string& s = v.string_value();
        int64_t b = std::max<int64_t>(1, start.int64_value()) - 1;
        if (b >= static_cast<int64_t>(s.size())) return Value::String("");
        return Value::String(
            s.substr(static_cast<size_t>(b),
                     static_cast<size_t>(std::max<int64_t>(
                         0, len.int64_value()))));
      }
      return Value::Null(TypeId::kDouble);
    }
    case ExprKind::kAggregate:
      // Aggregates are computed by the HashAggregate operator; a bare
      // aggregate reaching the evaluator is a planner bug.
      return Value::Null(TypeId::kDouble);
  }
  return Value::Null(TypeId::kInt64);
}

bool EvalPredicate(const Expr& expr, const Row& row) {
  Value v = EvalExpr(expr, row);
  return !v.is_null() && v.bool_value();
}

void CollectColumnIndices(const Expr& expr, std::vector<int>* out) {
  if (expr.kind == ExprKind::kColumnRef && expr.column_index >= 0) {
    out->push_back(expr.column_index);
  }
  for (const auto& c : expr.children) CollectColumnIndices(*c, out);
}

void CollectColumnNames(
    const Expr& expr,
    std::vector<std::pair<std::string, std::string>>* out) {
  if (expr.kind == ExprKind::kColumnRef) {
    out->emplace_back(expr.qualifier, expr.column);
  }
  for (const auto& c : expr.children) CollectColumnNames(*c, out);
}

}  // namespace xdb
