#pragma once

#include <cstdint>
#include <vector>

#include "src/expr/expr.h"
#include "src/types/table.h"

namespace xdb {

/// \brief Selection vector: ascending row indices into a row span. The batch
/// evaluator touches only selected rows, so Filter chains (AND conjuncts)
/// shrink it in place instead of re-testing already-rejected rows.
using SelVector = std::vector<uint32_t>;

/// Fills `sel` with [begin, end) — the dense selection a morsel starts from.
void SelRange(size_t begin, size_t end, SelVector* sel);

/// \brief Input span for the batch evaluator: the row vector plus an optional
/// columnar mirror of the same data (Table::chunked()). When `chunks` is set,
/// column-ref gathers read the typed column vectors directly — plain columns
/// load unboxed payloads without per-lane type checks, RLE columns decode
/// runs, and dictionary columns stay in code space so comparisons against a
/// literal translate the literal once per dictionary instead of per lane.
/// Results are bit-identical to the row path either way.
struct RowBlock {
  const std::vector<Row>* rows = nullptr;
  const ChunkedTable* chunks = nullptr;
};

/// \brief Evaluates a bound, aggregate-free expression over every selected
/// row, appending one Value per selection lane to `out` (out->size() grows by
/// sel.size(); lane i corresponds to rows[sel[i]]).
///
/// Contract: the appended values are bit-identical to calling
/// `EvalExpr(expr, rows[sel[i]])` lane by lane — including NULL type tags,
/// `-0.0` payloads, int-vs-double promotion, date arithmetic, and division by
/// zero. Hot shapes (int64/double/date column refs and literals, + - * /,
/// comparisons, AND/OR, NOT/negate/IS NULL, BETWEEN) run typed inner loops
/// over unboxed payload arrays; everything else falls back to the scalar
/// evaluator per selected row, so coverage is total.
void EvalExprBatch(const Expr& expr, const RowBlock& block,
                   const SelVector& sel, std::vector<Value>* out);
void EvalExprBatch(const Expr& expr, const std::vector<Row>& rows,
                   const SelVector& sel, std::vector<Value>* out);

/// \brief Filters `sel` down to the rows where the predicate evaluates to
/// (non-NULL) TRUE, preserving order — identical to keeping the rows where
/// `EvalPredicate(expr, rows[i])` holds.
///
/// Top-level AND short-circuits by selection-vector intersection: the left
/// conjunct shrinks `sel`, and the right conjunct is only evaluated on the
/// survivors.
void EvalPredicateBatch(const Expr& expr, const RowBlock& block,
                        SelVector* sel);
void EvalPredicateBatch(const Expr& expr, const std::vector<Row>& rows,
                        SelVector* sel);

}  // namespace xdb
