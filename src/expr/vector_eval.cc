#include "src/expr/vector_eval.h"

#include <cstddef>

namespace xdb {

namespace {

/// \brief A batch of evaluated lanes, one per entry of the driving selection
/// vector.
///
/// Numeric lanes live unboxed in payload arrays (`i64` for the int64-payload
/// type class bool/int64/date, `f64` for double) with a side NULL mask;
/// dictionary-encoded string columns stay in code space (`dict` + `codes`);
/// everything else (plain strings, mixed-type columns, fallback results) is
/// boxed as full Values. `type` is the lane type of non-NULL lanes and
/// `null_type` the type tag a NULL lane materializes with — kept separately
/// because the scalar evaluator types NULLs by operator, not by operand
/// (arithmetic yields Null(kDouble) even over int64 inputs), and bit-identity
/// includes the NULL's type tag.
struct Vec {
  enum class Repr : uint8_t { kI64, kF64, kDict, kBoxed };

  Repr repr = Repr::kBoxed;
  TypeId type = TypeId::kInt64;
  TypeId null_type = TypeId::kInt64;
  bool uniform = false;  // all lanes hold the same value (literal splat)
  std::vector<uint8_t> nulls;  // 1 = NULL; sized to lanes except kBoxed
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<Value> boxed;
  const std::vector<std::string>* dict = nullptr;  // kDict: borrowed from
  std::vector<uint32_t> codes;                     // the source ColumnChunk

  size_t lanes() const {
    return repr == Repr::kBoxed ? boxed.size() : nulls.size();
  }
  bool IsNullLane(size_t i) const {
    return repr == Repr::kBoxed ? boxed[i].is_null() : nulls[i] != 0;
  }
};

/// Materializes lane `i` as a Value, bit-identical to what the scalar
/// evaluator would have produced for that subtree on that row.
Value LaneValue(const Vec& v, size_t i) {
  if (v.repr == Vec::Repr::kBoxed) return v.boxed[i];
  if (v.nulls[i]) return Value::Null(v.null_type);
  if (v.repr == Vec::Repr::kF64) return Value::Double(v.f64[i]);
  if (v.repr == Vec::Repr::kDict) return Value::String((*v.dict)[v.codes[i]]);
  switch (v.type) {
    case TypeId::kBool: return Value::Bool(v.i64[i] != 0);
    case TypeId::kDate: return Value::Date(v.i64[i]);
    default: return Value::Int64(v.i64[i]);
  }
}

/// Three-valued truth of a lane, matching `!v.is_null() && v.bool_value()`
/// plus the NULL case. Note Value::bool_value() reads the int64 payload, so a
/// double or string lane is never TRUE — the f64/dict reprs mirror that quirk
/// exactly.
enum class Truth : uint8_t { kFalse, kTrue, kNull };

Truth LaneTruth(const Vec& v, size_t i) {
  if (v.IsNullLane(i)) return Truth::kNull;
  switch (v.repr) {
    case Vec::Repr::kI64: return v.i64[i] != 0 ? Truth::kTrue : Truth::kFalse;
    case Vec::Repr::kF64: return Truth::kFalse;
    case Vec::Repr::kDict: return Truth::kFalse;
    case Vec::Repr::kBoxed:
      return v.boxed[i].bool_value() ? Truth::kTrue : Truth::kFalse;
  }
  return Truth::kFalse;
}

bool IsI64Class(TypeId t) {
  return t == TypeId::kBool || t == TypeId::kInt64 || t == TypeId::kDate;
}

Vec EvalVec(const Expr& expr, const RowBlock& b, const SelVector& sel);

/// Whole-subtree fallback: scalar-evaluates the node per selected row. Any
/// shape without a typed kernel lands here, which makes batch coverage total.
Vec EvalVecScalarFallback(const Expr& expr, const RowBlock& b,
                          const SelVector& sel) {
  const std::vector<Row>& rows = *b.rows;
  Vec out;
  out.repr = Vec::Repr::kBoxed;
  out.boxed.reserve(sel.size());
  for (uint32_t r : sel) out.boxed.push_back(EvalExpr(expr, rows[r]));
  return out;
}

/// Gather from the columnar mirror: typed payloads load without per-lane type
/// checks (the chunk encoder already proved lane uniformity), RLE runs decode
/// with a forward cursor, dictionary columns stay in code space.
Vec GatherChunkColumn(const ColumnChunk& chunk, const SelVector& sel) {
  const size_t n = sel.size();
  const TypeId t = chunk.type();
  Vec out;
  out.type = t;
  out.null_type = t;
  switch (chunk.encoding()) {
    case ColumnEncoding::kPlain: {
      out.nulls.resize(n);
      const std::vector<uint8_t>& cn = chunk.null_bytemap();
      if (t == TypeId::kDouble) {
        out.repr = Vec::Repr::kF64;
        out.f64.resize(n);
        const std::vector<double>& payload = chunk.f64_data();
        for (size_t i = 0; i < n; ++i) {
          out.f64[i] = payload[sel[i]];
          out.nulls[i] = cn.empty() ? 0 : cn[sel[i]];
        }
        return out;
      }
      out.repr = Vec::Repr::kI64;
      out.i64.resize(n);
      const std::vector<int64_t>& payload = chunk.i64_data();
      for (size_t i = 0; i < n; ++i) {
        out.i64[i] = payload[sel[i]];
        out.nulls[i] = cn.empty() ? 0 : cn[sel[i]];
      }
      return out;
    }
    case ColumnEncoding::kRle: {
      // Null-free by construction; selection vectors are ascending, so one
      // forward cursor walks the runs (with a reset guard just in case).
      out.repr = Vec::Repr::kI64;
      out.nulls.assign(n, 0);
      out.i64.resize(n);
      const std::vector<uint32_t>& starts = chunk.run_starts();
      const std::vector<int64_t>& vals = chunk.run_values();
      size_t run = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = sel[i];
        if (i > 0 && r < sel[i - 1]) run = 0;
        while (run + 1 < starts.size() && starts[run + 1] <= r) ++run;
        out.i64[i] = vals[run];
      }
      return out;
    }
    case ColumnEncoding::kFor: {
      out.repr = Vec::Repr::kI64;
      out.nulls.resize(n);
      out.i64.resize(n);
      const std::vector<uint8_t>& cn = chunk.null_bytemap();
      const std::vector<uint32_t>& codes = chunk.codes();
      const uint64_t ref = static_cast<uint64_t>(chunk.for_ref());
      for (size_t i = 0; i < n; ++i) {
        out.i64[i] = static_cast<int64_t>(ref + codes[sel[i]]);
        out.nulls[i] = cn.empty() ? 0 : cn[sel[i]];
      }
      return out;
    }
    case ColumnEncoding::kDictionary: {
      out.repr = Vec::Repr::kDict;
      out.dict = &chunk.dict();
      out.nulls.resize(n);
      out.codes.resize(n);
      const std::vector<uint8_t>& cn = chunk.null_bytemap();
      const std::vector<uint32_t>& codes = chunk.codes();
      for (size_t i = 0; i < n; ++i) {
        out.codes[i] = codes[sel[i]];
        out.nulls[i] = cn.empty() ? 0 : cn[sel[i]];
      }
      return out;
    }
    case ColumnEncoding::kBoxed:
      break;  // caller falls back to the row gather
  }
  out.repr = Vec::Repr::kBoxed;
  const std::vector<Value>& boxed = chunk.boxed();
  out.boxed.reserve(n);
  for (uint32_t r : sel) out.boxed.push_back(boxed[r]);
  return out;
}

Vec GatherColumn(const Expr& expr, const RowBlock& b, const SelVector& sel) {
  const size_t col = static_cast<size_t>(expr.column_index);
  const TypeId t = expr.column_type;
  if (b.chunks != nullptr && col < b.chunks->num_columns()) {
    const ColumnChunk& chunk = b.chunks->column(col);
    // Plain strings gain nothing over the row gather; everything else does.
    if (chunk.type() == t && !(chunk.encoding() == ColumnEncoding::kPlain &&
                               t == TypeId::kString)) {
      return GatherChunkColumn(chunk, sel);
    }
  }
  const std::vector<Row>& rows = *b.rows;
  Vec out;
  out.type = t;
  out.null_type = t;
  const size_t n = sel.size();
  if (IsI64Class(t) || t == TypeId::kDouble) {
    out.repr = IsI64Class(t) ? Vec::Repr::kI64 : Vec::Repr::kF64;
    out.nulls.resize(n);
    auto& payload_i = out.i64;
    auto& payload_f = out.f64;
    if (out.repr == Vec::Repr::kI64) payload_i.resize(n);
    else payload_f.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const Value& v = rows[sel[i]][col];
      if (v.type() != t) {
        // A lane deviating from the declared column type (possible through
        // expression-valued views) voids the typed layout; re-gather boxed.
        out = Vec();
        out.repr = Vec::Repr::kBoxed;
        out.boxed.reserve(n);
        for (uint32_t r : sel) out.boxed.push_back(rows[r][col]);
        return out;
      }
      out.nulls[i] = v.is_null() ? 1 : 0;
      if (out.repr == Vec::Repr::kI64) payload_i[i] = v.int64_value();
      else payload_f[i] = v.double_value();
    }
    return out;
  }
  out.repr = Vec::Repr::kBoxed;
  out.boxed.reserve(n);
  for (uint32_t r : sel) out.boxed.push_back(rows[r][col]);
  return out;
}

Vec SplatLiteral(const Value& lit, size_t n) {
  Vec out;
  out.uniform = true;
  if (!lit.is_null() && IsI64Class(lit.type())) {
    out.repr = Vec::Repr::kI64;
    out.type = out.null_type = lit.type();
    out.nulls.assign(n, 0);
    out.i64.assign(n, lit.int64_value());
    return out;
  }
  if (!lit.is_null() && lit.type() == TypeId::kDouble) {
    out.repr = Vec::Repr::kF64;
    out.type = out.null_type = TypeId::kDouble;
    out.nulls.assign(n, 0);
    out.f64.assign(n, lit.double_value());
    return out;
  }
  out.repr = Vec::Repr::kBoxed;
  out.boxed.assign(n, lit);
  return out;
}

bool IsTypedNumeric(const Vec& v) {
  return v.repr == Vec::Repr::kI64 || v.repr == Vec::Repr::kF64;
}

double LaneAsDouble(const Vec& v, size_t i) {
  return v.repr == Vec::Repr::kF64 ? v.f64[i]
                                   : static_cast<double>(v.i64[i]);
}

/// Arithmetic over two evaluated operand vectors. Typed loops mirror
/// EvalBinaryValues' int/double promotion exactly; shapes the loops don't
/// cover (dates, strings, boxed/dict lanes) combine per lane through
/// EvalBinaryValues itself.
Vec EvalArithVec(BinaryOp op, const Vec& l, const Vec& r) {
  const size_t n = l.lanes();
  Vec out;
  out.null_type = TypeId::kDouble;  // arithmetic NULLs are typed double
  // Integer loop: both int64-class, no date (date +/- has its own result
  // type), and not division (always double).
  if (l.repr == Vec::Repr::kI64 && r.repr == Vec::Repr::kI64 &&
      l.type != TypeId::kDate && r.type != TypeId::kDate &&
      op != BinaryOp::kDiv) {
    out.repr = Vec::Repr::kI64;
    out.type = TypeId::kInt64;
    out.nulls.resize(n);
    out.i64.resize(n);
    for (size_t i = 0; i < n; ++i) {
      if (l.nulls[i] | r.nulls[i]) {
        out.nulls[i] = 1;
        out.i64[i] = 0;
        continue;
      }
      const int64_t a = l.i64[i], b = r.i64[i];
      out.i64[i] = op == BinaryOp::kAdd   ? a + b
                   : op == BinaryOp::kSub ? a - b
                                          : a * b;
    }
    return out;
  }
  // Double loop: either side double (dates allowed on the int side — scalar
  // widens them with AsDouble), or any op over two doubles, or division.
  if (IsTypedNumeric(l) && IsTypedNumeric(r) &&
      (l.repr == Vec::Repr::kF64 || r.repr == Vec::Repr::kF64 ||
       op == BinaryOp::kDiv)) {
    // kDiv over two int64-class lanes also lands here (scalar: div is always
    // double); date lanes widen via AsDouble the same way scalar does.
    out.repr = Vec::Repr::kF64;
    out.type = TypeId::kDouble;
    out.nulls.resize(n);
    out.f64.resize(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      if (l.nulls[i] | r.nulls[i]) {
        out.nulls[i] = 1;
        continue;
      }
      const double a = LaneAsDouble(l, i), b = LaneAsDouble(r, i);
      switch (op) {
        case BinaryOp::kAdd: out.f64[i] = a + b; break;
        case BinaryOp::kSub: out.f64[i] = a - b; break;
        case BinaryOp::kMul: out.f64[i] = a * b; break;
        default:
          if (b == 0.0) out.nulls[i] = 1;
          else out.f64[i] = a / b;
          break;
      }
    }
    return out;
  }
  out.repr = Vec::Repr::kBoxed;
  out.boxed.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.boxed.push_back(EvalBinaryValues(op, LaneValue(l, i), LaneValue(r, i)));
  }
  return out;
}

int CmpResult(BinaryOp op, int c) {
  switch (op) {
    case BinaryOp::kEq: return c == 0;
    case BinaryOp::kNe: return c != 0;
    case BinaryOp::kLt: return c < 0;
    case BinaryOp::kLe: return c <= 0;
    case BinaryOp::kGt: return c > 0;
    default: return c >= 0;  // kGe
  }
}

/// Comparison over two evaluated operand vectors. Value::Compare for two
/// non-double numerics is a raw int64 compare; when either side is double it
/// widens with AsDouble — both decisions are lane-uniform for typed vectors,
/// so the loop body is branch-free on type.
Vec EvalCompareVec(BinaryOp op, const Vec& l, const Vec& r) {
  const size_t n = l.lanes();
  Vec out;
  out.repr = Vec::Repr::kI64;
  out.type = TypeId::kBool;
  out.null_type = TypeId::kBool;
  out.nulls.resize(n);
  out.i64.resize(n, 0);
  if (l.repr == Vec::Repr::kI64 && r.repr == Vec::Repr::kI64) {
    for (size_t i = 0; i < n; ++i) {
      if (l.nulls[i] | r.nulls[i]) {
        out.nulls[i] = 1;
        continue;
      }
      const int64_t a = l.i64[i], b = r.i64[i];
      out.i64[i] = CmpResult(op, a < b ? -1 : (a == b ? 0 : 1));
    }
    return out;
  }
  if (IsTypedNumeric(l) && IsTypedNumeric(r)) {
    for (size_t i = 0; i < n; ++i) {
      if (l.nulls[i] | r.nulls[i]) {
        out.nulls[i] = 1;
        continue;
      }
      const double a = LaneAsDouble(l, i), b = LaneAsDouble(r, i);
      out.i64[i] = CmpResult(op, a < b ? -1 : (a == b ? 0 : 1));
    }
    return out;
  }
  // Dictionary-code kernel: comparing a dict column against a uniform
  // (literal) operand translates the literal into a per-dictionary-entry
  // verdict table once, then each lane is a code lookup — no string compare,
  // no Value materialization. Value::Compare's verdict depends only on the
  // entry and the literal, so the table is exact (including mixed-type
  // ordering when the literal is not a string).
  {
    const Vec* dv = nullptr;
    const Vec* lit = nullptr;
    bool dict_left = false;
    if (l.repr == Vec::Repr::kDict && r.uniform) {
      dv = &l; lit = &r; dict_left = true;
    } else if (r.repr == Vec::Repr::kDict && l.uniform) {
      dv = &r; lit = &l;
    }
    if (dv != nullptr && n > 0 && !lit->IsNullLane(0)) {
      const Value litv = LaneValue(*lit, 0);
      const std::vector<std::string>& dict = *dv->dict;
      std::vector<uint8_t> match(dict.size());
      for (size_t k = 0; k < dict.size(); ++k) {
        const Value entry = Value::String(dict[k]);
        const int c = dict_left ? entry.Compare(litv) : litv.Compare(entry);
        match[k] = static_cast<uint8_t>(CmpResult(op, c));
      }
      for (size_t i = 0; i < n; ++i) {
        if (dv->nulls[i]) {
          out.nulls[i] = 1;
          continue;
        }
        out.i64[i] = match[dv->codes[i]];
      }
      return out;
    }
  }
  // Boxed/mixed lanes: NULL-check + Value::Compare per lane, exactly the
  // scalar default branch, on the already-evaluated operands.
  for (size_t i = 0; i < n; ++i) {
    const Value lv = LaneValue(l, i), rv = LaneValue(r, i);
    if (lv.is_null() || rv.is_null()) {
      out.nulls[i] = 1;
      continue;
    }
    out.i64[i] = CmpResult(op, lv.Compare(rv));
  }
  return out;
}

/// AND/OR with short-circuit by selection intersection: the right child is
/// evaluated only on lanes the left child did not already decide (non-null
/// FALSE decides AND; non-null TRUE decides OR), then scattered back.
/// Lane-wise combination follows the scalar three-valued truth table.
Vec EvalAndOrVec(const Expr& expr, const RowBlock& b, const SelVector& sel) {
  const bool is_and = expr.binary_op == BinaryOp::kAnd;
  const size_t n = sel.size();
  Vec left = EvalVec(*expr.children[0], b, sel);

  SelVector sub_sel;
  std::vector<uint32_t> sub_pos;
  sub_sel.reserve(n);
  sub_pos.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Truth t = LaneTruth(left, i);
    const bool decided = is_and ? t == Truth::kFalse : t == Truth::kTrue;
    if (!decided) {
      sub_sel.push_back(sel[i]);
      sub_pos.push_back(static_cast<uint32_t>(i));
    }
  }

  Vec out;
  out.repr = Vec::Repr::kI64;
  out.type = TypeId::kBool;
  out.null_type = TypeId::kBool;
  out.nulls.assign(n, 0);
  // Decided lanes: AND -> FALSE (0), OR -> TRUE (1).
  out.i64.assign(n, is_and ? 0 : 1);

  if (!sub_sel.empty()) {
    Vec right = EvalVec(*expr.children[1], b, sub_sel);
    for (size_t s = 0; s < sub_sel.size(); ++s) {
      const size_t i = sub_pos[s];
      const Truth lt = LaneTruth(left, i);
      const Truth rt = LaneTruth(right, s);
      Truth res;
      if (is_and) {
        // left is TRUE or NULL here.
        if (rt == Truth::kFalse) res = Truth::kFalse;
        else if (lt == Truth::kNull || rt == Truth::kNull) res = Truth::kNull;
        else res = Truth::kTrue;
      } else {
        // left is FALSE or NULL here.
        if (rt == Truth::kTrue) res = Truth::kTrue;
        else if (lt == Truth::kNull || rt == Truth::kNull) res = Truth::kNull;
        else res = Truth::kFalse;
      }
      if (res == Truth::kNull) out.nulls[i] = 1, out.i64[i] = 0;
      else out.i64[i] = res == Truth::kTrue ? 1 : 0;
    }
  }
  return out;
}

Vec EvalUnaryVec(const Expr& expr, const RowBlock& b, const SelVector& sel) {
  Vec child = EvalVec(*expr.children[0], b, sel);
  const size_t n = child.lanes();
  Vec out;
  switch (expr.unary_op) {
    case UnaryOp::kIsNull:
    case UnaryOp::kIsNotNull: {
      const bool want_null = expr.unary_op == UnaryOp::kIsNull;
      out.repr = Vec::Repr::kI64;
      out.type = out.null_type = TypeId::kBool;
      out.nulls.assign(n, 0);
      out.i64.resize(n);
      for (size_t i = 0; i < n; ++i) {
        out.i64[i] = child.IsNullLane(i) == want_null ? 1 : 0;
      }
      return out;
    }
    case UnaryOp::kNot:
      if (child.repr == Vec::Repr::kI64 && child.type == TypeId::kBool) {
        out.repr = Vec::Repr::kI64;
        out.type = out.null_type = TypeId::kBool;
        out.nulls = child.nulls;
        out.i64.resize(n);
        for (size_t i = 0; i < n; ++i) {
          out.i64[i] = child.nulls[i] ? 0 : (child.i64[i] == 0 ? 1 : 0);
        }
        return out;
      }
      break;
    case UnaryOp::kNeg:
      if (child.repr == Vec::Repr::kI64) {
        out.repr = Vec::Repr::kI64;
        out.type = TypeId::kInt64;
        // Scalar kNeg returns a NULL operand unchanged, keeping its type.
        out.null_type = child.null_type;
        out.nulls = child.nulls;
        out.i64.resize(n);
        for (size_t i = 0; i < n; ++i) {
          out.i64[i] = child.nulls[i] ? 0 : -child.i64[i];
        }
        return out;
      }
      if (child.repr == Vec::Repr::kF64) {
        out.repr = Vec::Repr::kF64;
        out.type = TypeId::kDouble;
        out.null_type = child.null_type;
        out.nulls = child.nulls;
        out.f64.resize(n);
        for (size_t i = 0; i < n; ++i) {
          out.f64[i] = child.nulls[i] ? 0.0 : -child.f64[i];
        }
        return out;
      }
      break;
  }
  out.repr = Vec::Repr::kBoxed;
  out.boxed.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.boxed.push_back(EvalUnaryValue(expr.unary_op, LaneValue(child, i)));
  }
  return out;
}

Vec EvalBetweenVec(const Expr& expr, const RowBlock& b, const SelVector& sel) {
  Vec v = EvalVec(*expr.children[0], b, sel);
  Vec lo = EvalVec(*expr.children[1], b, sel);
  Vec hi = EvalVec(*expr.children[2], b, sel);
  const size_t n = v.lanes();
  Vec out;
  out.repr = Vec::Repr::kI64;
  out.type = out.null_type = TypeId::kBool;
  out.nulls.resize(n);
  out.i64.resize(n, 0);
  if (IsTypedNumeric(v) && IsTypedNumeric(lo) && IsTypedNumeric(hi)) {
    // Each bound pair picks int or double comparison exactly as
    // Value::Compare would, decided once per vector pair.
    const bool lo_int =
        v.repr == Vec::Repr::kI64 && lo.repr == Vec::Repr::kI64;
    const bool hi_int =
        v.repr == Vec::Repr::kI64 && hi.repr == Vec::Repr::kI64;
    for (size_t i = 0; i < n; ++i) {
      if (v.nulls[i] | lo.nulls[i] | hi.nulls[i]) {
        out.nulls[i] = 1;
        continue;
      }
      const bool ge_lo = lo_int ? v.i64[i] >= lo.i64[i]
                                : LaneAsDouble(v, i) >= LaneAsDouble(lo, i);
      const bool le_hi = hi_int ? v.i64[i] <= hi.i64[i]
                                : LaneAsDouble(v, i) <= LaneAsDouble(hi, i);
      out.i64[i] = ge_lo && le_hi ? 1 : 0;
    }
    return out;
  }
  for (size_t i = 0; i < n; ++i) {
    const Value vv = LaneValue(v, i);
    const Value lv = LaneValue(lo, i);
    const Value hv = LaneValue(hi, i);
    if (vv.is_null() || lv.is_null() || hv.is_null()) {
      out.nulls[i] = 1;
      continue;
    }
    out.i64[i] = vv.Compare(lv) >= 0 && vv.Compare(hv) <= 0 ? 1 : 0;
  }
  return out;
}

Vec EvalVec(const Expr& expr, const RowBlock& b, const SelVector& sel) {
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      return GatherColumn(expr, b, sel);
    case ExprKind::kLiteral:
      return SplatLiteral(expr.literal, sel.size());
    case ExprKind::kBinary:
      if (expr.binary_op == BinaryOp::kAnd ||
          expr.binary_op == BinaryOp::kOr) {
        return EvalAndOrVec(expr, b, sel);
      }
      {
        Vec l = EvalVec(*expr.children[0], b, sel);
        Vec r = EvalVec(*expr.children[1], b, sel);
        switch (expr.binary_op) {
          case BinaryOp::kAdd:
          case BinaryOp::kSub:
          case BinaryOp::kMul:
          case BinaryOp::kDiv:
            return EvalArithVec(expr.binary_op, l, r);
          default:
            return EvalCompareVec(expr.binary_op, l, r);
        }
      }
    case ExprKind::kUnary:
      return EvalUnaryVec(expr, b, sel);
    case ExprKind::kBetween:
      return EvalBetweenVec(expr, b, sel);
    default:
      // LIKE, IN, CASE, functions, (mis-planned) aggregates.
      return EvalVecScalarFallback(expr, b, sel);
  }
}

}  // namespace

void SelRange(size_t begin, size_t end, SelVector* sel) {
  sel->clear();
  sel->reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    sel->push_back(static_cast<uint32_t>(i));
  }
}

void EvalExprBatch(const Expr& expr, const RowBlock& block,
                   const SelVector& sel, std::vector<Value>* out) {
  Vec v = EvalVec(expr, block, sel);
  out->reserve(out->size() + sel.size());
  if (v.repr == Vec::Repr::kBoxed) {
    for (auto& val : v.boxed) out->push_back(std::move(val));
    return;
  }
  for (size_t i = 0; i < v.lanes(); ++i) out->push_back(LaneValue(v, i));
}

void EvalExprBatch(const Expr& expr, const std::vector<Row>& rows,
                   const SelVector& sel, std::vector<Value>* out) {
  EvalExprBatch(expr, RowBlock{&rows, nullptr}, sel, out);
}

void EvalPredicateBatch(const Expr& expr, const RowBlock& block,
                        SelVector* sel) {
  if (sel->empty()) return;
  // Conjunction = selection intersection: the left conjunct shrinks the
  // selection, the right conjunct never sees rejected rows. (NULL and FALSE
  // both reject, exactly like scalar EvalPredicate on an AND.)
  if (expr.kind == ExprKind::kBinary && expr.binary_op == BinaryOp::kAnd) {
    EvalPredicateBatch(*expr.children[0], block, sel);
    EvalPredicateBatch(*expr.children[1], block, sel);
    return;
  }
  Vec v = EvalVec(expr, block, *sel);
  size_t kept = 0;
  for (size_t i = 0; i < sel->size(); ++i) {
    if (LaneTruth(v, i) == Truth::kTrue) (*sel)[kept++] = (*sel)[i];
  }
  sel->resize(kept);
}

void EvalPredicateBatch(const Expr& expr, const std::vector<Row>& rows,
                        SelVector* sel) {
  EvalPredicateBatch(expr, RowBlock{&rows, nullptr}, sel);
}

}  // namespace xdb
