// Parameterised properties of the TPC-H-style generator across scale
// factors: cardinality ratios, key integrity, date ranges, and the value
// distributions the evaluation queries' selectivities depend on.

#include <gtest/gtest.h>

#include <set>

#include "src/dbms/server.h"
#include "src/tpch/dbgen.h"
#include "src/tpch/distributions.h"

namespace xdb {
namespace tpch {
namespace {

class DbGenSweep : public ::testing::TestWithParam<double> {};

TEST_P(DbGenSweep, CardinalityRatiosScale) {
  DbGen gen(GetParam());
  // TPC-H base ratios: customer:supplier = 15:1, part:customer = 4:3,
  // orders:customer = 10:1 (subject to the minimum-row floors at tiny SF).
  if (GetParam() >= 0.01) {
    EXPECT_NEAR(static_cast<double>(gen.num_customers()) /
                    static_cast<double>(gen.num_suppliers()),
                15.0, 1.0);
    EXPECT_NEAR(static_cast<double>(gen.num_orders()) /
                    static_cast<double>(gen.num_customers()),
                10.0, 0.5);
  }
  auto orders = gen.Orders();
  EXPECT_EQ(orders->num_rows(), static_cast<size_t>(gen.num_orders()));
}

TEST_P(DbGenSweep, ForeignKeysAreValid) {
  DbGen gen(GetParam());
  auto orders = gen.Orders();
  for (size_t i = 0; i < std::min<size_t>(500, orders->num_rows()); ++i) {
    int64_t cust = orders->row(i)[1].int64_value();
    EXPECT_GE(cust, 1);
    EXPECT_LE(cust, gen.num_customers());
  }
  auto lineitem = gen.Lineitem();
  for (size_t i = 0; i < std::min<size_t>(500, lineitem->num_rows()); ++i) {
    const Row& row = lineitem->row(i);
    EXPECT_GE(row[0].int64_value(), 1);                  // l_orderkey
    EXPECT_LE(row[0].int64_value(), gen.num_orders());
    EXPECT_GE(row[1].int64_value(), 1);                  // l_partkey
    EXPECT_LE(row[1].int64_value(), gen.num_parts());
    EXPECT_GE(row[2].int64_value(), 1);                  // l_suppkey
    EXPECT_LE(row[2].int64_value(), gen.num_suppliers());
  }
}

TEST_P(DbGenSweep, DatesInTpchRange) {
  DbGen gen(GetParam());
  int64_t lo = DaysFromCivil(1992, 1, 1);
  int64_t hi = DaysFromCivil(1998, 12, 31);
  auto orders = gen.Orders();
  for (size_t i = 0; i < std::min<size_t>(300, orders->num_rows()); ++i) {
    int64_t d = orders->row(i)[4].date_value();
    EXPECT_GE(d, lo);
    EXPECT_LE(d, hi);
  }
  auto lineitem = gen.Lineitem();
  for (size_t i = 0; i < std::min<size_t>(300, lineitem->num_rows()); ++i) {
    // shipdate <= receiptdate, both after the order epoch.
    EXPECT_LE(lineitem->row(i)[10].date_value(),
              lineitem->row(i)[12].date_value());
    EXPECT_GE(lineitem->row(i)[10].date_value(), lo);
  }
}

TEST_P(DbGenSweep, PartSuppIsAKey) {
  DbGen gen(GetParam());
  auto ps = gen.PartSupp();
  std::set<std::pair<int64_t, int64_t>> seen;
  for (const auto& row : ps->rows()) {
    auto key = std::make_pair(row[0].int64_value(), row[1].int64_value());
    EXPECT_TRUE(seen.insert(key).second)
        << "duplicate partsupp (" << key.first << "," << key.second << ")";
  }
  EXPECT_EQ(ps->num_rows(), 4u * static_cast<size_t>(gen.num_parts()));
}

TEST_P(DbGenSweep, DistributionsCoverTheFiveSegments) {
  DbGen gen(GetParam());
  auto customer = gen.Customer();
  std::set<std::string> segments;
  for (const auto& row : customer->rows()) {
    segments.insert(row[6].string_value());
  }
  EXPECT_EQ(segments.size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(ScaleFactors, DbGenSweep,
                         ::testing::Values(0.001, 0.005, 0.02, 0.05),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "sf" + std::to_string(static_cast<int>(
                                             info.param * 1000));
                         });

TEST(DistributionTest, EveryTableDistributionPlacesAllEightTables) {
  const char* tables[] = {"lineitem", "orders",   "customer", "supplier",
                          "part",     "partsupp", "nation",   "region"};
  for (int td = 1; td <= 3; ++td) {
    TableDistribution d = DistributionByIndex(td);
    EXPECT_EQ(d.size(), 8u);
    for (const char* t : tables) {
      ASSERT_TRUE(d.count(t)) << "TD" << td << " misses " << t;
      // Placement targets must be real nodes.
      bool known = false;
      for (const auto& n : TpchNodes()) {
        if (d.at(t) == n) known = true;
      }
      EXPECT_TRUE(known) << d.at(t);
    }
  }
}

TEST(DistributionTest, Td1MatchesPaperTableIII) {
  TableDistribution d = TD1();
  EXPECT_EQ(d.at("lineitem"), "db1");
  EXPECT_EQ(d.at("customer"), "db2");
  EXPECT_EQ(d.at("orders"), "db2");
  EXPECT_EQ(d.at("supplier"), "db3");
  EXPECT_EQ(d.at("nation"), "db3");
  EXPECT_EQ(d.at("region"), "db3");
  EXPECT_EQ(d.at("part"), "db4");
  EXPECT_EQ(d.at("partsupp"), "db4");
}

TEST(DistributionTest, Td3SpreadsEverythingApart) {
  TableDistribution d = TD3();
  std::set<std::string> used;
  for (const auto& [table, node] : d) used.insert(node);
  EXPECT_EQ(used.size(), 7u);  // all seven nodes host something
}

TEST(DistributionTest, FederationLoadsTablesWhereTheDistributionSays) {
  auto fed = BuildTpchFederation(0.001, TD2());
  EXPECT_TRUE(fed->GetServer("db1")->HasRelation("lineitem"));
  EXPECT_TRUE(fed->GetServer("db1")->HasRelation("supplier"));
  EXPECT_TRUE(fed->GetServer("db3")->HasRelation("customer"));
  EXPECT_FALSE(fed->GetServer("db3")->HasRelation("orders"));
  EXPECT_TRUE(fed->GetServer("db5")->BaseRelations().empty());
}

TEST(DistributionTest, HeterogeneousAssignmentMatchesPaper) {
  EngineAssignment a = HeterogeneousAssignment();
  EXPECT_EQ(a.at("db2").vendor, "mariadb");
  EXPECT_EQ(a.at("db3").vendor, "hive");
  EXPECT_EQ(a.at("db1").vendor, "postgres");
}

}  // namespace
}  // namespace tpch
}  // namespace xdb
