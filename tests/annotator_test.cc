#include <gtest/gtest.h>

#include "src/dbms/federation.h"
#include "src/dbms/server.h"
#include "src/xdb/annotator.h"
#include "src/xdb/finalizer.h"

namespace xdb {
namespace {

/// Two servers with one table each plus connectors; plans are hand-built so
/// every rule fires in a controlled way.
class AnnotatorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    fed_.SetNetwork(Network::Lan({"dba", "dbb"}));
    // The middleware node the connectors report control traffic against
    // (XdbSystem registers it the same way; unregistered names are now
    // rejected by the network's accounting).
    fed_.network().AddNode("xdb");
    dba_ = fed_.AddServer("dba", EngineProfile::Postgres());
    dbb_ = fed_.AddServer("dbb", EngineProfile::Postgres());
    auto make_table = [](int rows) {
      auto t = std::make_shared<Table>(
          Schema({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}));
      for (int i = 0; i < rows; ++i) {
        t->AppendRow({Value::Int64(i), Value::Int64(i * 2)});
      }
      return t;
    };
    ASSERT_TRUE(dba_->CreateBaseTable("ta", make_table(1000)).ok());
    ASSERT_TRUE(dbb_->CreateBaseTable("tb", make_table(10)).ok());
    dca_ = std::make_unique<DbmsConnector>(dba_, Dialect::Postgres(), &fed_,
                                           "xdb");
    dcb_ = std::make_unique<DbmsConnector>(dbb_, Dialect::Postgres(), &fed_,
                                           "xdb");
    connectors_ = {{"dba", dca_.get()}, {"dbb", dcb_.get()}};
  }

  PlanPtr ScanOn(const std::string& server, const std::string& table,
                 double rows) {
    Schema schema({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}});
    TableStats stats;
    stats.row_count = rows;
    stats.columns.assign(2, ColumnStats{});
    stats.columns[0].ndv = rows;
    stats.columns[1].ndv = rows;
    return PlanNode::MakeScan(server, table, table, schema, stats);
  }

  Federation fed_;
  DatabaseServer* dba_ = nullptr;
  DatabaseServer* dbb_ = nullptr;
  std::unique_ptr<DbmsConnector> dca_, dcb_;
  std::map<std::string, DbmsConnector*> connectors_;
};

TEST_F(AnnotatorFixture, Rule1LeavesGetTheirDbms) {
  PlanPtr scan = ScanOn("dba", "ta", 1000);
  Annotator ann(connectors_, &fed_.network());
  ASSERT_TRUE(ann.Annotate(scan.get()).ok());
  EXPECT_EQ(scan->annotation, "dba");
  EXPECT_EQ(ann.consultations(), 0);
}

TEST_F(AnnotatorFixture, Rule2UnaryInheritsChild) {
  PlanPtr filter = PlanNode::MakeFilter(
      ScanOn("dbb", "tb", 10),
      Expr::Binary(BinaryOp::kGt, Expr::BoundColumn(0, TypeId::kInt64, "k"),
                   Expr::Literal(Value::Int64(1))));
  Annotator ann(connectors_, &fed_.network());
  ASSERT_TRUE(ann.Annotate(filter.get()).ok());
  EXPECT_EQ(filter->annotation, "dbb");
  EXPECT_EQ(filter->children[0]->edge_movement, Movement::kImplicit);
}

TEST_F(AnnotatorFixture, Rule3SameAnnotationJoinStaysPut) {
  PlanPtr join = PlanNode::MakeJoin(ScanOn("dba", "ta", 1000),
                                    ScanOn("dba", "ta", 1000), {0}, {0},
                                    nullptr);
  Annotator ann(connectors_, &fed_.network());
  ASSERT_TRUE(ann.Annotate(join.get()).ok());
  EXPECT_EQ(join->annotation, "dba");
  EXPECT_EQ(ann.consultations(), 0);  // no consulting for co-located joins
}

TEST_F(AnnotatorFixture, Rule4PlacementFromInputCandidatesOnly) {
  PlanPtr join = PlanNode::MakeJoin(ScanOn("dba", "ta", 1000),
                                    ScanOn("dbb", "tb", 10), {0}, {0},
                                    nullptr);
  Annotator ann(connectors_, &fed_.network());
  ASSERT_TRUE(ann.Annotate(join.get()).ok());
  // The pruning rule: placement must be one of the two input DBMSes.
  EXPECT_TRUE(join->annotation == "dba" || join->annotation == "dbb");
  // Exactly 4 consultations: 2 placements x 2 movement types.
  EXPECT_EQ(ann.consultations(), 4);
}

TEST_F(AnnotatorFixture, Rule4PrefersKeepingTheBigSideLocal) {
  // Moving 10 rows beats moving 1000 rows; the join should land on dba.
  PlanPtr join = PlanNode::MakeJoin(ScanOn("dba", "ta", 100000),
                                    ScanOn("dbb", "tb", 10), {0}, {0},
                                    nullptr);
  Annotator ann(connectors_, &fed_.network());
  ASSERT_TRUE(ann.Annotate(join.get()).ok());
  EXPECT_EQ(join->annotation, "dba");
  // The small remote side moves; the local side's edge is implicit.
  EXPECT_EQ(join->children[0]->edge_movement, Movement::kImplicit);
}

TEST_F(AnnotatorFixture, MovementPolicyForced) {
  for (auto [policy, want] :
       {std::pair{MovementPolicy::kAlwaysImplicit, Movement::kImplicit},
        std::pair{MovementPolicy::kAlwaysExplicit, Movement::kExplicit}}) {
    PlanPtr join = PlanNode::MakeJoin(ScanOn("dba", "ta", 1000),
                                      ScanOn("dbb", "tb", 10), {0}, {0},
                                      nullptr);
    Annotator ann(connectors_, &fed_.network(), policy);
    ASSERT_TRUE(ann.Annotate(join.get()).ok());
    // The remote child's edge carries the forced movement.
    size_t remote = join->children[0]->annotation == join->annotation ? 1
                                                                      : 0;
    EXPECT_EQ(join->children[remote]->edge_movement, want);
    // Forced policies consult half as much (2 candidates x 1 movement).
    EXPECT_EQ(ann.consultations(), 2);
  }
}

TEST_F(AnnotatorFixture, MissingConnectorIsCatalogError) {
  PlanPtr join = PlanNode::MakeJoin(ScanOn("dba", "ta", 1000),
                                    ScanOn("nowhere", "tx", 10), {0}, {0},
                                    nullptr);
  Annotator ann(connectors_, &fed_.network());
  auto st = ann.Annotate(join.get());
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCatalogError());
}

TEST_F(AnnotatorFixture, ConsultationsChargeControlMessages) {
  PlanPtr join = PlanNode::MakeJoin(ScanOn("dba", "ta", 1000),
                                    ScanOn("dbb", "tb", 10), {0}, {0},
                                    nullptr);
  double before = fed_.network().TotalBytes();
  Annotator ann(connectors_, &fed_.network());
  ASSERT_TRUE(ann.Annotate(join.get()).ok());
  EXPECT_GT(fed_.network().TotalBytes(), before);
}

// ---------------------------------------------------------------------------
// Finalizer
// ---------------------------------------------------------------------------

TEST_F(AnnotatorFixture, FinalizerGroupsMaximalRuns) {
  // filter(join(scan_a, scan_b)) with the join on dba: the filter and join
  // and scan_a form ONE task; scan_b forms another.
  PlanPtr join = PlanNode::MakeJoin(ScanOn("dba", "ta", 100000),
                                    ScanOn("dbb", "tb", 10), {0}, {0},
                                    nullptr);
  PlanPtr top = PlanNode::MakeLimit(join, 5);
  Annotator ann(connectors_, &fed_.network());
  ASSERT_TRUE(ann.Annotate(top.get()).ok());
  ASSERT_EQ(top->annotation, "dba");

  auto plan = FinalizePlan(*top, 7);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->tasks.size(), 2u);
  ASSERT_EQ(plan->edges.size(), 1u);
  const DelegationTask& producer = plan->tasks[0];
  const DelegationTask& root = plan->tasks[1];
  EXPECT_EQ(producer.server, "dbb");
  EXPECT_EQ(root.server, "dba");
  // View names are namespaced by the query id.
  EXPECT_NE(producer.view_name.find("q7"), std::string::npos);
  // The root task's expression has exactly one placeholder leaf.
  int placeholders = 0;
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& n) {
    if (n.kind == PlanKind::kPlaceholder) ++placeholders;
    for (const auto& c : n.children) walk(*c);
  };
  walk(*root.expr);
  EXPECT_EQ(placeholders, 1);
}

TEST_F(AnnotatorFixture, FinalizerSingleTaskWhenColocated) {
  PlanPtr join = PlanNode::MakeJoin(ScanOn("dba", "ta", 100),
                                    ScanOn("dba", "ta", 100), {0}, {0},
                                    nullptr);
  Annotator ann(connectors_, &fed_.network());
  ASSERT_TRUE(ann.Annotate(join.get()).ok());
  auto plan = FinalizePlan(*join, 1);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->tasks.size(), 1u);
  EXPECT_TRUE(plan->edges.empty());
}

TEST_F(AnnotatorFixture, FinalizerRejectsUnannotatedPlan) {
  PlanPtr scan = ScanOn("dba", "ta", 10);
  auto plan = FinalizePlan(*scan, 1);
  ASSERT_FALSE(plan.ok());
}

TEST_F(AnnotatorFixture, FinalizerPropagatesMovementToEdges) {
  PlanPtr join = PlanNode::MakeJoin(ScanOn("dba", "ta", 1000),
                                    ScanOn("dbb", "tb", 10), {0}, {0},
                                    nullptr);
  Annotator ann(connectors_, &fed_.network(),
                MovementPolicy::kAlwaysExplicit);
  ASSERT_TRUE(ann.Annotate(join.get()).ok());
  auto plan = FinalizePlan(*join, 1);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->edges.size(), 1u);
  EXPECT_EQ(plan->edges[0].movement, Movement::kExplicit);
  // Placeholder of an explicit edge is a local (non-foreign) relation.
  std::function<const PlanNode*(const PlanNode&)> find_ph =
      [&](const PlanNode& n) -> const PlanNode* {
    if (n.kind == PlanKind::kPlaceholder) return &n;
    for (const auto& c : n.children) {
      if (const PlanNode* f = find_ph(*c)) return f;
    }
    return nullptr;
  };
  const PlanNode* ph = find_ph(*plan->root().expr);
  ASSERT_NE(ph, nullptr);
  EXPECT_FALSE(ph->placeholder_foreign);
}

TEST_F(AnnotatorFixture, DelegationPlanToStringMentionsEverything) {
  PlanPtr join = PlanNode::MakeJoin(ScanOn("dba", "ta", 1000),
                                    ScanOn("dbb", "tb", 10), {0}, {0},
                                    nullptr);
  Annotator ann(connectors_, &fed_.network());
  ASSERT_TRUE(ann.Annotate(join.get()).ok());
  auto plan = FinalizePlan(*join, 1);
  ASSERT_TRUE(plan.ok());
  std::string s = plan->ToString();
  EXPECT_NE(s.find("dba"), std::string::npos);
  EXPECT_NE(s.find("dbb"), std::string::npos);
  EXPECT_NE(s.find("-->"), std::string::npos);
}

}  // namespace
}  // namespace xdb
