// Dimensional observability: labeled metric cells (server / link / query
// dimensions), deterministic Prometheus exposition, bounded span retention
// with head/tail sampling, and the query-history log. The standing
// invariant: every labeled series is purely additive over the unlabeled
// totals, and the whole stack stays observational (bit-identical results
// attached vs. detached), even with retention and sampling active.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/dbms/server.h"
#include "src/obs/metrics.h"
#include "src/obs/query_log.h"
#include "src/obs/span.h"
#include "src/xdb/xdb.h"

namespace xdb {
namespace {

constexpr char kJoinSql[] =
    "SELECT t1.b, t2.c FROM t1, t2 WHERE t1.a = t2.a";

/// Two Postgres nodes, t1(a,b) on d1 and t2(a,c) on d2, 10 matching keys.
void Populate(Federation* fed) {
  fed->SetNetwork(Network::Lan({"d1", "d2"}));
  DatabaseServer* d1 = fed->AddServer("d1", EngineProfile::Postgres());
  DatabaseServer* d2 = fed->AddServer("d2", EngineProfile::Postgres());
  auto t = std::make_shared<Table>(
      Schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}}));
  auto u = std::make_shared<Table>(
      Schema({{"a", TypeId::kInt64}, {"c", TypeId::kInt64}}));
  for (int i = 0; i < 10; ++i) {
    t->AppendRow({Value::Int64(i), Value::Int64(i)});
    u->AppendRow({Value::Int64(i), Value::Int64(i * 10)});
  }
  ASSERT_TRUE(d1->CreateBaseTable("t1", t).ok());
  ASSERT_TRUE(d2->CreateBaseTable("t2", u).ok());
}

// --------------------------------------------------------------------------
// Labeled registry cells
// --------------------------------------------------------------------------

TEST(LabeledMetricsTest, SameNameAndLabelsYieldSameCell) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("m", {{"server", "db1"}});
  Counter* b = reg.GetCounter("m", {{"server", "db1"}});
  EXPECT_EQ(a, b);
  // Label order is canonicalized away.
  Counter* c1 = reg.GetCounter("m", {{"x", "1"}, {"y", "2"}});
  Counter* c2 = reg.GetCounter("m", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(c1, c2);
  // Different values, different keys, and the unlabeled series are all
  // distinct cells of the one family.
  EXPECT_NE(a, reg.GetCounter("m", {{"server", "db2"}}));
  EXPECT_NE(a, reg.GetCounter("m", {{"link", "db1"}}));
  EXPECT_NE(a, reg.GetCounter("m"));
}

TEST(LabeledMetricsTest, DuplicateKeysLastWins) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("m", {{"k", "old"}, {"k", "new"}});
  Counter* b = reg.GetCounter("m", {{"k", "new"}});
  EXPECT_EQ(a, b);
}

TEST(LabeledMetricsTest, HistogramFamilySharesBucketLayout) {
  MetricsRegistry reg;
  Histogram* plain = reg.GetHistogram("h", {10, 100}, "help");
  // A labeled cell registered with different bounds still gets the family's
  // layout, so `le` buckets line up across the family.
  Histogram* labeled = reg.GetHistogram("h", {{"link", "a->b"}}, {5, 7, 9});
  EXPECT_EQ(labeled->upper_bounds(), plain->upper_bounds());
}

TEST(LabeledMetricsTest, ExpositionIsDeterministicAcrossInsertionOrder) {
  MetricsRegistry first;
  MetricsRegistry second;
  // Same cells and values, registered in opposite orders.
  first.GetCounter("zz_total", {{"server", "a"}}, "Z")->Increment(1);
  first.GetCounter("aa_total", {{"link", "a->b"}}, "A")->Increment(2);
  first.GetCounter("aa_total", {{"link", "b->a"}}, "A")->Increment(3);
  first.GetHistogram("hh", {{"link", "a->b"}}, {10, 100}, "H")->Observe(4);

  second.GetHistogram("hh", {{"link", "a->b"}}, {10, 100}, "H")->Observe(4);
  second.GetCounter("aa_total", {{"link", "b->a"}}, "A")->Increment(3);
  second.GetCounter("aa_total", {{"link", "a->b"}}, "A")->Increment(2);
  second.GetCounter("zz_total", {{"server", "a"}}, "Z")->Increment(1);

  EXPECT_EQ(first.ExposeText(), second.ExposeText());
  // Families render name-sorted.
  std::string text = first.ExposeText();
  EXPECT_LT(text.find("aa_total"), text.find("zz_total"));
}

TEST(LabeledMetricsTest, ExpositionEscapesLabelValuesAndHelp) {
  MetricsRegistry reg;
  reg.GetCounter("m_total", {{"v", "a\\b\"c\nd"}}, "help \\ with\nnewline")
      ->Increment();
  std::string text = reg.ExposeText();
  EXPECT_NE(text.find("# HELP m_total help \\\\ with\\nnewline\n"),
            std::string::npos);
  EXPECT_NE(text.find("m_total{v=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(LabeledMetricsTest, LabeledHistogramRendersBucketSumCount) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("tb", {{"link", "a->b"}}, {10, 100});
  h->Observe(5);
  h->Observe(50);
  h->Observe(500);
  std::string text = reg.ExposeText();
  EXPECT_NE(text.find("tb_bucket{link=\"a->b\",le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("tb_bucket{link=\"a->b\",le=\"100\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("tb_bucket{link=\"a->b\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("tb_sum{link=\"a->b\"} 555\n"), std::string::npos);
  EXPECT_NE(text.find("tb_count{link=\"a->b\"} 3\n"), std::string::npos);
}

// --------------------------------------------------------------------------
// Bounded span retention + sampling
// --------------------------------------------------------------------------

/// Records one closed root tree of `spans_per_tree` spans.
void RecordTree(SpanRecorder* rec, int spans_per_tree) {
  int64_t root = rec->StartSpan("root");
  for (int i = 0; i < spans_per_tree - 1; ++i) {
    rec->EndSpan(rec->StartSpan("child"));
  }
  rec->EndSpan(root);
}

TEST(SpanRetentionTest, CapacityEvictsWholeClosedTreesOldestFirst) {
  SpanRecorder rec;
  rec.set_capacity(10);
  for (int t = 0; t < 8; ++t) RecordTree(&rec, 4);
  // 8 trees x 4 spans recorded; at most capacity + one tree retained.
  EXPECT_LE(rec.size(), 10u + 4u);
  EXPECT_EQ(rec.next_id(), 32);
  EXPECT_EQ(rec.dropped_spans() + static_cast<int64_t>(rec.size()), 32);
  // The retained window is the most recent spans; the front is a root.
  EXPECT_EQ(rec.spans().front().parent_id, -1);
  EXPECT_EQ(rec.spans().back().id, 31);
  // Evicted ids resolve to nullptr; retained ids resolve by id, not index.
  EXPECT_EQ(rec.mutable_span(0), nullptr);
  ASSERT_NE(rec.mutable_span(31), nullptr);
  EXPECT_EQ(rec.mutable_span(31)->id, 31);
}

TEST(SpanRetentionTest, OversizedSingleTreeStaysUntilNextQuery) {
  SpanRecorder rec;
  rec.set_capacity(4);
  RecordTree(&rec, 8);  // twice the capacity, but the only tree
  EXPECT_EQ(rec.size(), 8u);  // inspectable until the next tree begins
  RecordTree(&rec, 2);
  EXPECT_LE(rec.size(), 4u);  // the oversized tree went first
  EXPECT_EQ(rec.spans().front().name, "root");
  EXPECT_EQ(rec.spans().front().id, 8);
}

TEST(SpanRetentionTest, ClearPreservesIdMonotonicity) {
  SpanRecorder rec;
  RecordTree(&rec, 3);
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  int64_t id = rec.StartSpan("after-clear");
  EXPECT_EQ(id, 3);  // ids never restart — windows by id stay valid
  rec.EndSpan(id);
}

TEST(SpanSamplingTest, HeadTailSamplingKeepsWholeTrees) {
  SpanRecorder rec;
  rec.SetSampling(/*head_trees=*/2, /*keep_every=*/3);
  for (int t = 0; t < 11; ++t) RecordTree(&rec, 2);
  // Kept: trees 1,2 (head) and 3,6,9 (every 3rd of the tail) = 5 trees.
  EXPECT_EQ(rec.trees_started(), 11);
  EXPECT_EQ(rec.size(), 5u * 2u);
  EXPECT_EQ(rec.dropped_spans(), 6 * 2);
  for (const auto& s : rec.spans()) {
    EXPECT_TRUE(s.name == "root" || s.name == "child");
  }
}

TEST(SpanSamplingTest, DroppedTreeWritesLandInScratch) {
  SpanRecorder rec;
  rec.SetSampling(/*head_trees=*/0, /*keep_every=*/0);  // drop everything
  int64_t id = rec.StartSpan("dropped");
  EXPECT_EQ(id, SpanRecorder::kDroppedSpan);
  Span* sp = rec.mutable_span(id);
  ASSERT_NE(sp, nullptr);
  sp->Tag("key", std::string("value"));  // must not crash or leak into spans_
  rec.EndSpan(id);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.current(), -1);
}

TEST(SpanSamplingTest, KeptTreesMatchUnsampledRecorderBitForBit) {
  Federation fed_full;
  Populate(&fed_full);
  XdbSystem xdb_full(&fed_full);
  SpanRecorder full;
  fed_full.SetSpanRecorder(&full);

  Federation fed_sampled;
  Populate(&fed_sampled);
  XdbSystem xdb_sampled(&fed_sampled);
  SpanRecorder sampled;
  sampled.SetSampling(/*head_trees=*/1, /*keep_every=*/0);  // first query only
  fed_sampled.SetSpanRecorder(&sampled);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(xdb_full.Query(kJoinSql).ok());
    ASSERT_TRUE(xdb_sampled.Query(kJoinSql).ok());
  }
  // The sampled recorder kept exactly the first query's tree, and that tree
  // matches the unsampled recorder's first tree span for span.
  ASSERT_LT(sampled.size(), full.size());
  for (size_t i = 0; i < sampled.size(); ++i) {
    const Span& a = sampled.spans()[i];
    const Span& b = full.spans()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.parent_id, b.parent_id);
    EXPECT_EQ(a.duration_seconds, b.duration_seconds);
    EXPECT_EQ(a.tags, b.tags);
  }
}

// --------------------------------------------------------------------------
// Federation-labeled dimensions
// --------------------------------------------------------------------------

TEST(DimensionalMetricsTest, LabeledCellsSumToUnlabeledTotals) {
  Federation fed;
  Populate(&fed);
  XdbSystem xdb(&fed);
  MetricsRegistry reg;
  fed.SetMetricsRegistry(&reg);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(xdb.Query(kJoinSql).ok());

  auto total = [&](const char* name) { return reg.GetCounter(name)->Value(); };
  auto cell = [&](const char* name, const char* key, const char* value) {
    return reg.GetCounter(name, {{key, value}})->Value();
  };

  EXPECT_GT(total("xdb_federation_fetches_total"), 0);
  EXPECT_EQ(total("xdb_federation_fetches_total"),
            cell("xdb_federation_fetches_total", "server", "d1") +
                cell("xdb_federation_fetches_total", "server", "d2"));
  EXPECT_GT(total("xdb_federation_useful_bytes_total"), 0);
  // By-server and by-link decompositions both cover the same total.
  double by_server =
      cell("xdb_federation_useful_bytes_total", "server", "d1") +
      cell("xdb_federation_useful_bytes_total", "server", "d2");
  double by_link = cell("xdb_federation_useful_bytes_total", "link",
                        "d1->d2") +
                   cell("xdb_federation_useful_bytes_total", "link",
                        "d2->d1") +
                   cell("xdb_federation_useful_bytes_total", "link",
                        "d1->xdb") +
                   cell("xdb_federation_useful_bytes_total", "link",
                        "d2->xdb");
  EXPECT_DOUBLE_EQ(total("xdb_federation_useful_bytes_total"), by_server);
  EXPECT_DOUBLE_EQ(total("xdb_federation_useful_bytes_total"), by_link);

  EXPECT_GT(total("xdb_delegation_ddl_total"), 0);
  EXPECT_EQ(total("xdb_delegation_ddl_total"),
            cell("xdb_delegation_ddl_total", "server", "d1") +
                cell("xdb_delegation_ddl_total", "server", "d2"));

  // Network bytes decompose by directed link (control + data + result).
  double net_total = total("xdb_network_bytes_total");
  double net_links = 0;
  for (const auto& [pair, stats] : fed.network().stats()) {
    net_links += reg.GetCounter("xdb_network_bytes_total",
                                {{"link", pair.first + "->" + pair.second}})
                     ->Value();
    (void)stats;
  }
  EXPECT_GT(net_total, 0);
  EXPECT_DOUBLE_EQ(net_total, net_links);

  // Per-query counters carry the status and (bounded) query-label dims.
  EXPECT_EQ(reg.GetCounter("xdb_queries_total", {{"status", "ok"}})->Value(),
            3);
  EXPECT_GT(reg.GetCounter("xdb_query_modelled_seconds_total",
                           {{"query", "adhoc"}})
                ->Value(),
            0);
}

// --------------------------------------------------------------------------
// Query history
// --------------------------------------------------------------------------

TEST(QueryLogTest, RecordsPerQueryStatsAndEvictsAtCapacity) {
  Federation fed;
  Populate(&fed);
  XdbSystem xdb(&fed);
  QueryLog log(2);
  fed.SetQueryLog(&log);

  log.set_next_label("Q-join");
  ASSERT_TRUE(xdb.Query(kJoinSql).ok());
  ASSERT_TRUE(xdb.Query(kJoinSql).ok());
  ASSERT_TRUE(xdb.Query(kJoinSql).ok());

  EXPECT_EQ(log.total_recorded(), 3);
  EXPECT_EQ(log.total_failed(), 0);
  ASSERT_EQ(log.entries().size(), 2u);  // capacity evicted the oldest
  const QueryStats& last = log.entries().back();
  EXPECT_EQ(last.sequence, 3);
  EXPECT_EQ(last.label, "q3");  // hint was consumed by query 1
  EXPECT_EQ(last.system, "xdb");
  EXPECT_TRUE(last.ok);
  EXPECT_GT(last.total_seconds(), 0);
  EXPECT_GT(last.useful_bytes, 0);
  EXPECT_GT(last.transfers, 0);
  EXPECT_FALSE(last.per_server_seconds.empty());

  // The evicted first query kept its label only in the lifetime totals;
  // the retained window starts at sequence 2.
  EXPECT_EQ(log.entries().front().sequence, 2);

  std::string json = log.ToJson();
  EXPECT_NE(json.find("\"total_recorded\":3"), std::string::npos);
  EXPECT_NE(json.find("\"per_server_seconds\""), std::string::npos);
  EXPECT_FALSE(log.Summary().empty());
}

TEST(QueryLogTest, FailedQueriesAreRecordedWithError) {
  Federation fed;
  Populate(&fed);
  XdbSystem xdb(&fed);
  QueryLog log;
  fed.SetQueryLog(&log);
  ASSERT_FALSE(xdb.Query("SELECT x FROM missing m").ok());
  EXPECT_EQ(log.total_recorded(), 1);
  EXPECT_EQ(log.total_failed(), 1);
  ASSERT_EQ(log.entries().size(), 1u);
  EXPECT_FALSE(log.entries().front().ok);
  EXPECT_FALSE(log.entries().front().error.empty());
}

TEST(QueryLogTest, PreExecutionFailureDoesNotInheritPreviousTrace) {
  Federation fed;
  Populate(&fed);
  XdbSystem xdb(&fed);
  QueryLog log;
  fed.SetQueryLog(&log);
  ASSERT_TRUE(xdb.Query(kJoinSql).ok());
  ASSERT_GT(log.entries().back().useful_bytes, 0);
  // A parse error never reaches execution; its record must not carry the
  // previous query's transfers/bytes/per-server compute.
  ASSERT_FALSE(xdb.Query("SELEC bogus").ok());
  const QueryStats& failed = log.entries().back();
  EXPECT_FALSE(failed.ok);
  EXPECT_EQ(failed.useful_bytes, 0);
  EXPECT_EQ(failed.wasted_bytes, 0);
  EXPECT_EQ(failed.transfers, 0);
  EXPECT_EQ(failed.retries, 0);
  EXPECT_TRUE(failed.per_server_seconds.empty());
}

TEST(QueryLogTest, ExplainAnalyzeFillsHotOperators) {
  Federation fed;
  Populate(&fed);
  XdbSystem xdb(&fed);
  QueryLog log;
  fed.SetQueryLog(&log);
  ASSERT_TRUE(xdb.ExplainAnalyze(kJoinSql).ok());
  ASSERT_EQ(log.entries().size(), 1u);
  const QueryStats& qs = log.entries().front();
  ASSERT_FALSE(qs.hot_operators.empty());
  EXPECT_LE(qs.hot_operators.size(), 3u);
  // Ranked by modelled seconds, descending.
  for (size_t i = 1; i < qs.hot_operators.size(); ++i) {
    EXPECT_GE(qs.hot_operators[i - 1].second, qs.hot_operators[i].second);
  }
}

// --------------------------------------------------------------------------
// Boundedness + bit-identity of the full stack
// --------------------------------------------------------------------------

TEST(BoundedObservabilityTest, TenThousandTreesStayWithinCapacity) {
  SpanRecorder rec;
  rec.set_capacity(512);
  QueryLog log(256);
  for (int q = 0; q < 10000; ++q) {
    RecordTree(&rec, 6);
    QueryStats qs;
    qs.system = "xdb";
    qs.sql = "SELECT 1";
    qs.exec_seconds = 0.001;
    log.Record(std::move(qs));
  }
  EXPECT_EQ(rec.next_id(), 60000);
  EXPECT_LE(rec.size(), 512u + 6u);  // capacity + the final tree
  EXPECT_EQ(log.entries().size(), 256u);
  EXPECT_EQ(log.total_recorded(), 10000);
  EXPECT_EQ(log.entries().back().sequence, 10000);
}

TEST(BoundedObservabilityTest, RepeatedQueriesKeepRecorderBounded) {
  Federation fed;
  Populate(&fed);
  XdbSystem xdb(&fed);
  SpanRecorder rec;
  rec.set_capacity(128);
  QueryLog log(16);
  fed.SetSpanRecorder(&rec);
  fed.SetQueryLog(&log);
  size_t one_query_spans = 0;
  for (int q = 0; q < 50; ++q) {
    ASSERT_TRUE(xdb.Query(kJoinSql).ok());
    if (q == 0) one_query_spans = rec.size();
  }
  EXPECT_LE(rec.size(), 128u + one_query_spans);
  EXPECT_EQ(log.entries().size(), 16u);
  EXPECT_EQ(log.total_recorded(), 50);
}

TEST(BoundedObservabilityTest, FullStackAttachedIsBitIdenticalToDetached) {
  // Both sides run the same 3-query sequence (the first query warms the
  // metadata cache, so query N is only comparable to query N).
  Federation fed_plain;
  Populate(&fed_plain);
  XdbSystem xdb_plain(&fed_plain);
  std::optional<Result<XdbReport>> plain_r;
  for (int i = 0; i < 3; ++i) {
    plain_r.emplace(xdb_plain.Query(kJoinSql));
    ASSERT_TRUE(plain_r->ok());
  }
  const XdbReport& plain = **plain_r;

  Federation fed_obs;
  Populate(&fed_obs);
  XdbSystem xdb_obs(&fed_obs);
  SpanRecorder rec;
  rec.set_capacity(64);
  rec.SetSampling(/*head_trees=*/0, /*keep_every=*/2);
  MetricsRegistry reg;
  QueryLog log(4);
  fed_obs.SetSpanRecorder(&rec);
  fed_obs.SetMetricsRegistry(&reg);
  fed_obs.SetQueryLog(&log);
  std::optional<Result<XdbReport>> observed;
  for (int i = 0; i < 3; ++i) {
    observed.emplace(xdb_obs.Query(kJoinSql));
    ASSERT_TRUE(observed->ok());
  }

  const XdbReport& obs = **observed;
  EXPECT_EQ(plain.result->ToDisplayString(50),
            obs.result->ToDisplayString(50));
  EXPECT_EQ(plain.phases.total(), obs.phases.total());
  EXPECT_EQ(plain.exec_timing.total, obs.exec_timing.total);
  EXPECT_EQ(plain.trace.UsefulTransferredBytes(),
            obs.trace.UsefulTransferredBytes());
  EXPECT_EQ(plain.trace.TotalTransferredRows(),
            obs.trace.TotalTransferredRows());
}

}  // namespace
}  // namespace xdb
