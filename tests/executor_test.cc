#include <gtest/gtest.h>

#include "src/exec/executor.h"

namespace xdb {
namespace {

/// Minimal ExecContext over a fixed set of named tables; foreign fetches
/// are served from the same map (as if the remote produced them).
class FakeContext : public ExecContext {
 public:
  void Add(const std::string& name, TablePtr t) { tables_[name] = t; }

  Result<TablePtr> GetLocalTable(const std::string& name) override {
    auto it = tables_.find(name);
    if (it == tables_.end()) return Status::CatalogError("no " + name);
    return it->second;
  }
  Result<TablePtr> ForeignFetch(const std::string& server,
                                const std::string& relation,
                                double /*est_rows*/,
                                double /*est_bytes*/) override {
    fetches_.emplace_back(server, relation);
    return GetLocalTable(relation);
  }
  ComputeTrace* trace() override { return &trace_; }

  ComputeTrace trace_;
  std::vector<std::pair<std::string, std::string>> fetches_;

 private:
  std::map<std::string, TablePtr> tables_;
};

TablePtr MakeTable(Schema schema, std::vector<Row> rows) {
  return std::make_shared<Table>(std::move(schema), std::move(rows));
}

Schema Ab() { return Schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}}); }

PlanPtr ScanOf(const std::string& name, TablePtr t) {
  return PlanNode::MakeScan("db", name, name, t->schema(),
                            ComputeTableStats(*t));
}

TEST(ExecutorTest, ScanProducesAllRows) {
  FakeContext ctx;
  auto t = MakeTable(Ab(), {{Value::Int64(1), Value::Int64(2)},
                            {Value::Int64(3), Value::Int64(4)}});
  ctx.Add("t", t);
  auto r = ExecutePlan(*ScanOf("t", t), &ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(ctx.trace_.scan_rows, 2.0);
}

TEST(ExecutorTest, ForeignScanRoutesThroughFetch) {
  FakeContext ctx;
  auto t = MakeTable(Ab(), {{Value::Int64(1), Value::Int64(2)}});
  ctx.Add("remote_rel", t);
  PlanPtr scan = ScanOf("remote_rel", t);
  scan->is_foreign = true;
  scan->foreign_server = "other";
  scan->remote_relation = "remote_rel";
  auto r = ExecutePlan(*scan, &ctx);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(ctx.fetches_.size(), 1u);
  EXPECT_EQ(ctx.fetches_[0].first, "other");
  EXPECT_DOUBLE_EQ(ctx.trace_.foreign_rows, 1.0);
  EXPECT_DOUBLE_EQ(ctx.trace_.scan_rows, 0.0);
}

TEST(ExecutorTest, FilterKeepsOnlyTrueRows) {
  FakeContext ctx;
  auto t = MakeTable(Ab(), {{Value::Int64(1), Value::Int64(10)},
                            {Value::Int64(2), Value::Int64(20)},
                            {Value::Null(TypeId::kInt64), Value::Int64(30)}});
  ctx.Add("t", t);
  // a > 1 — NULL predicate result must NOT pass (three-valued logic).
  ExprPtr pred = Expr::Binary(BinaryOp::kGt,
                              Expr::BoundColumn(0, TypeId::kInt64, "a"),
                              Expr::Literal(Value::Int64(1)));
  auto plan = PlanNode::MakeFilter(ScanOf("t", t), pred);
  auto r = ExecutePlan(*plan, &ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 1u);
  EXPECT_EQ((*r)->row(0)[1].int64_value(), 20);
}

TEST(ExecutorTest, ProjectComputesExpressions) {
  FakeContext ctx;
  auto t = MakeTable(Ab(), {{Value::Int64(3), Value::Int64(4)}});
  ctx.Add("t", t);
  ExprPtr sum = Expr::Binary(BinaryOp::kAdd,
                             Expr::BoundColumn(0, TypeId::kInt64, "a"),
                             Expr::BoundColumn(1, TypeId::kInt64, "b"));
  auto plan = PlanNode::MakeProject(ScanOf("t", t), {sum});
  auto r = ExecutePlan(*plan, &ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->row(0)[0].int64_value(), 7);
}

PlanPtr JoinPlans(PlanPtr l, PlanPtr r, int lk, int rk) {
  return PlanNode::MakeJoin(std::move(l), std::move(r), {lk}, {rk}, nullptr);
}

TEST(ExecutorTest, HashJoinBasic) {
  FakeContext ctx;
  auto l = MakeTable(Ab(), {{Value::Int64(1), Value::Int64(10)},
                            {Value::Int64(2), Value::Int64(20)},
                            {Value::Int64(3), Value::Int64(30)}});
  auto r = MakeTable(Schema({{"k", TypeId::kInt64}, {"v", TypeId::kString}}),
                     {{Value::Int64(2), Value::String("two")},
                      {Value::Int64(3), Value::String("three")},
                      {Value::Int64(4), Value::String("four")}});
  ctx.Add("l", l);
  ctx.Add("r", r);
  auto plan = JoinPlans(ScanOf("l", l), ScanOf("r", r), 0, 0);
  auto out = ExecutePlan(*plan, &ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->num_rows(), 2u);
  // Output schema order is always (left || right) regardless of build side.
  EXPECT_EQ((*out)->schema().field(0).name, "a");
  EXPECT_EQ((*out)->schema().field(3).name, "v");
}

TEST(ExecutorTest, HashJoinDuplicatesMultiply) {
  FakeContext ctx;
  auto l = MakeTable(Ab(), {{Value::Int64(1), Value::Int64(1)},
                            {Value::Int64(1), Value::Int64(2)}});
  auto r = MakeTable(Ab(), {{Value::Int64(1), Value::Int64(3)},
                            {Value::Int64(1), Value::Int64(4)},
                            {Value::Int64(1), Value::Int64(5)}});
  ctx.Add("l", l);
  ctx.Add("r", r);
  auto out = ExecutePlan(*JoinPlans(ScanOf("l", l), ScanOf("r", r), 0, 0),
                         &ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->num_rows(), 6u);  // 2 x 3
}

TEST(ExecutorTest, HashJoinNullKeysNeverMatch) {
  FakeContext ctx;
  auto l = MakeTable(Ab(), {{Value::Null(TypeId::kInt64), Value::Int64(1)}});
  auto r = MakeTable(Ab(), {{Value::Null(TypeId::kInt64), Value::Int64(2)}});
  ctx.Add("l", l);
  ctx.Add("r", r);
  auto out = ExecutePlan(*JoinPlans(ScanOf("l", l), ScanOf("r", r), 0, 0),
                         &ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->num_rows(), 0u);
}

TEST(ExecutorTest, HashJoinEmptyInputs) {
  FakeContext ctx;
  auto l = MakeTable(Ab(), {});
  auto r = MakeTable(Ab(), {{Value::Int64(1), Value::Int64(2)}});
  ctx.Add("l", l);
  ctx.Add("r", r);
  auto out = ExecutePlan(*JoinPlans(ScanOf("l", l), ScanOf("r", r), 0, 0),
                         &ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->num_rows(), 0u);
}

TEST(ExecutorTest, MultiKeyJoin) {
  FakeContext ctx;
  auto l = MakeTable(Ab(), {{Value::Int64(1), Value::Int64(1)},
                            {Value::Int64(1), Value::Int64(2)}});
  auto r = MakeTable(Ab(), {{Value::Int64(1), Value::Int64(2)},
                            {Value::Int64(2), Value::Int64(2)}});
  ctx.Add("l", l);
  ctx.Add("r", r);
  auto plan = PlanNode::MakeJoin(ScanOf("l", l), ScanOf("r", r), {0, 1},
                                 {0, 1}, nullptr);
  auto out = ExecutePlan(*plan, &ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->num_rows(), 1u);  // only (1,2) matches on both keys
}

TEST(ExecutorTest, JoinResidualPredicate) {
  FakeContext ctx;
  auto l = MakeTable(Ab(), {{Value::Int64(1), Value::Int64(10)},
                            {Value::Int64(2), Value::Int64(5)}});
  auto r = MakeTable(Ab(), {{Value::Int64(1), Value::Int64(7)},
                            {Value::Int64(2), Value::Int64(9)}});
  ctx.Add("l", l);
  ctx.Add("r", r);
  // join on a=a AND residual l.b > r.b (columns 1 and 3 of the concat).
  ExprPtr residual = Expr::Binary(BinaryOp::kGt,
                                  Expr::BoundColumn(1, TypeId::kInt64, "b"),
                                  Expr::BoundColumn(3, TypeId::kInt64, "b"));
  auto plan = PlanNode::MakeJoin(ScanOf("l", l), ScanOf("r", r), {0}, {0},
                                 residual);
  auto out = ExecutePlan(*plan, &ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)->num_rows(), 1u);
  EXPECT_EQ((*out)->row(0)[1].int64_value(), 10);
}

TEST(ExecutorTest, CrossProductWhenNoKeys) {
  FakeContext ctx;
  auto l = MakeTable(Ab(), {{Value::Int64(1), Value::Int64(1)},
                            {Value::Int64(2), Value::Int64(2)}});
  auto r = MakeTable(Ab(), {{Value::Int64(3), Value::Int64(3)},
                            {Value::Int64(4), Value::Int64(4)},
                            {Value::Int64(5), Value::Int64(5)}});
  ctx.Add("l", l);
  ctx.Add("r", r);
  auto plan = PlanNode::MakeJoin(ScanOf("l", l), ScanOf("r", r), {}, {},
                                 nullptr);
  auto out = ExecutePlan(*plan, &ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->num_rows(), 6u);
}

PlanPtr AggPlan(PlanPtr child, std::vector<ExprPtr> keys,
                std::vector<ExprPtr> aggs) {
  return PlanNode::MakeAggregate(std::move(child), std::move(keys),
                                 std::move(aggs));
}

TEST(ExecutorTest, GlobalAggregateOnEmptyInputYieldsOneRow) {
  FakeContext ctx;
  auto t = MakeTable(Ab(), {});
  ctx.Add("t", t);
  auto plan = AggPlan(
      ScanOf("t", t), {},
      {Expr::Aggregate(AggKind::kCountStar, nullptr),
       Expr::Aggregate(AggKind::kSum, Expr::BoundColumn(0, TypeId::kInt64,
                                                        "a"))});
  auto out = ExecutePlan(*plan, &ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)->num_rows(), 1u);
  EXPECT_EQ((*out)->row(0)[0].int64_value(), 0);
  EXPECT_TRUE((*out)->row(0)[1].is_null());  // SUM over nothing is NULL
}

TEST(ExecutorTest, GroupedAggregateOnEmptyInputYieldsNoRows) {
  FakeContext ctx;
  auto t = MakeTable(Ab(), {});
  ctx.Add("t", t);
  auto plan = AggPlan(ScanOf("t", t),
                      {Expr::BoundColumn(0, TypeId::kInt64, "a")},
                      {Expr::Aggregate(AggKind::kCountStar, nullptr)});
  auto out = ExecutePlan(*plan, &ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->num_rows(), 0u);
}

TEST(ExecutorTest, AggregatesSkipNulls) {
  FakeContext ctx;
  auto t = MakeTable(Ab(), {{Value::Int64(1), Value::Int64(10)},
                            {Value::Int64(1), Value::Null(TypeId::kInt64)},
                            {Value::Int64(1), Value::Int64(30)}});
  ctx.Add("t", t);
  ExprPtr b = Expr::BoundColumn(1, TypeId::kInt64, "b");
  auto plan = AggPlan(ScanOf("t", t),
                      {Expr::BoundColumn(0, TypeId::kInt64, "a")},
                      {Expr::Aggregate(AggKind::kCount, b->Clone()),
                       Expr::Aggregate(AggKind::kCountStar, nullptr),
                       Expr::Aggregate(AggKind::kAvg, b->Clone()),
                       Expr::Aggregate(AggKind::kMin, b->Clone()),
                       Expr::Aggregate(AggKind::kMax, b->Clone())});
  auto out = ExecutePlan(*plan, &ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)->num_rows(), 1u);
  const Row& row = (*out)->row(0);
  EXPECT_EQ(row[1].int64_value(), 2);  // COUNT(b) skips the NULL
  EXPECT_EQ(row[2].int64_value(), 3);  // COUNT(*) does not
  EXPECT_DOUBLE_EQ(row[3].double_value(), 20.0);
  EXPECT_EQ(row[4].int64_value(), 10);
  EXPECT_EQ(row[5].int64_value(), 30);
}

TEST(ExecutorTest, MinMaxOverAllNullGroupReturnsTypedNull) {
  // Regression: MIN/MAX over a group whose inputs are all NULL used to
  // return a kInt64-typed NULL regardless of the column type, so a
  // downstream comparison against a string/double column misbehaved.
  FakeContext ctx;
  auto t = MakeTable(Schema({{"g", TypeId::kInt64},
                             {"s", TypeId::kString},
                             {"d", TypeId::kDouble}}),
                     {{Value::Int64(1), Value::Null(TypeId::kString),
                       Value::Null(TypeId::kDouble)},
                      {Value::Int64(1), Value::Null(TypeId::kString),
                       Value::Null(TypeId::kDouble)}});
  ctx.Add("t", t);
  auto plan = AggPlan(
      ScanOf("t", t), {Expr::BoundColumn(0, TypeId::kInt64, "g")},
      {Expr::Aggregate(AggKind::kMin,
                       Expr::BoundColumn(1, TypeId::kString, "s")),
       Expr::Aggregate(AggKind::kMax,
                       Expr::BoundColumn(1, TypeId::kString, "s")),
       Expr::Aggregate(AggKind::kMin,
                       Expr::BoundColumn(2, TypeId::kDouble, "d")),
       Expr::Aggregate(AggKind::kMax,
                       Expr::BoundColumn(2, TypeId::kDouble, "d"))});
  auto out = ExecutePlan(*plan, &ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)->num_rows(), 1u);
  const Row& row = (*out)->row(0);
  for (int c = 1; c <= 4; ++c) EXPECT_TRUE(row[c].is_null()) << c;
  EXPECT_EQ(row[1].type(), TypeId::kString);
  EXPECT_EQ(row[2].type(), TypeId::kString);
  EXPECT_EQ(row[3].type(), TypeId::kDouble);
  EXPECT_EQ(row[4].type(), TypeId::kDouble);
}

TEST(ExecutorTest, GroupByNullIsItsOwnGroup) {
  FakeContext ctx;
  auto t = MakeTable(Ab(), {{Value::Null(TypeId::kInt64), Value::Int64(1)},
                            {Value::Null(TypeId::kInt64), Value::Int64(2)},
                            {Value::Int64(7), Value::Int64(3)}});
  ctx.Add("t", t);
  auto plan = AggPlan(ScanOf("t", t),
                      {Expr::BoundColumn(0, TypeId::kInt64, "a")},
                      {Expr::Aggregate(AggKind::kCountStar, nullptr)});
  auto out = ExecutePlan(*plan, &ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)->num_rows(), 2u);  // NULL group + 7 group
}

TEST(ExecutorTest, SumPromotesToDoubleWhenMixed) {
  FakeContext ctx;
  auto t = MakeTable(Schema({{"x", TypeId::kDouble}}),
                     {{Value::Int64(1)}, {Value::Double(2.5)}});
  ctx.Add("t", t);
  auto plan = AggPlan(ScanOf("t", t), {},
                      {Expr::Aggregate(AggKind::kSum,
                                       Expr::BoundColumn(0, TypeId::kDouble,
                                                         "x"))});
  auto out = ExecutePlan(*plan, &ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)->row(0)[0].AsDouble(), 3.5);
}

TEST(ExecutorTest, SortAscDescAndStability) {
  FakeContext ctx;
  auto t = MakeTable(Ab(), {{Value::Int64(2), Value::Int64(1)},
                            {Value::Int64(1), Value::Int64(2)},
                            {Value::Int64(2), Value::Int64(3)},
                            {Value::Int64(1), Value::Int64(4)}});
  ctx.Add("t", t);
  auto plan = PlanNode::MakeSort(ScanOf("t", t), {{0, true}});
  auto out = ExecutePlan(*plan, &ctx);
  ASSERT_TRUE(out.ok());
  // Descending by a; equal keys keep input order (stable sort).
  EXPECT_EQ((*out)->row(0)[1].int64_value(), 1);
  EXPECT_EQ((*out)->row(1)[1].int64_value(), 3);
  EXPECT_EQ((*out)->row(2)[1].int64_value(), 2);
  EXPECT_EQ((*out)->row(3)[1].int64_value(), 4);
}

TEST(ExecutorTest, SortNullsFirst) {
  FakeContext ctx;
  auto t = MakeTable(Ab(), {{Value::Int64(5), Value::Int64(1)},
                            {Value::Null(TypeId::kInt64), Value::Int64(2)}});
  ctx.Add("t", t);
  auto plan = PlanNode::MakeSort(ScanOf("t", t), {{0, false}});
  auto out = ExecutePlan(*plan, &ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE((*out)->row(0)[0].is_null());
}

TEST(ExecutorTest, LimitTruncatesAndHandlesOverrun) {
  FakeContext ctx;
  auto t = MakeTable(Ab(), {{Value::Int64(1), Value::Int64(1)},
                            {Value::Int64(2), Value::Int64(2)}});
  ctx.Add("t", t);
  auto limit1 = ExecutePlan(*PlanNode::MakeLimit(ScanOf("t", t), 1), &ctx);
  ASSERT_TRUE(limit1.ok());
  EXPECT_EQ((*limit1)->num_rows(), 1u);
  auto limit9 = ExecutePlan(*PlanNode::MakeLimit(ScanOf("t", t), 9), &ctx);
  ASSERT_TRUE(limit9.ok());
  EXPECT_EQ((*limit9)->num_rows(), 2u);
  auto limit0 = ExecutePlan(*PlanNode::MakeLimit(ScanOf("t", t), 0), &ctx);
  ASSERT_TRUE(limit0.ok());
  EXPECT_EQ((*limit0)->num_rows(), 0u);
}

TEST(ExecutorTest, PlaceholderIsAnExecutionError) {
  FakeContext ctx;
  auto plan = PlanNode::MakePlaceholder("x", Ab(), {}, 10);
  auto out = ExecutePlan(*plan, &ctx);
  ASSERT_FALSE(out.ok());
}

TEST(ExecutorTest, TraceCountersAccumulate) {
  FakeContext ctx;
  auto l = MakeTable(Ab(), {{Value::Int64(1), Value::Int64(1)},
                            {Value::Int64(2), Value::Int64(2)}});
  auto r = MakeTable(Ab(), {{Value::Int64(1), Value::Int64(9)}});
  ctx.Add("l", l);
  ctx.Add("r", r);
  auto plan = JoinPlans(ScanOf("l", l), ScanOf("r", r), 0, 0);
  ASSERT_TRUE(ExecutePlan(*plan, &ctx).ok());
  EXPECT_DOUBLE_EQ(ctx.trace_.scan_rows, 3.0);
  EXPECT_DOUBLE_EQ(ctx.trace_.join_build_rows, 1.0);  // builds smaller side
  EXPECT_DOUBLE_EQ(ctx.trace_.join_probe_rows, 2.0);
  EXPECT_DOUBLE_EQ(ctx.trace_.join_output_rows, 1.0);
}

}  // namespace
}  // namespace xdb
