// Deterministic fault injection: programmable faults with seeded triggers,
// retry with modelled backoff, all-or-nothing deploy rollback, failover
// replanning — and a fault-free path that is bit-identical to a build
// without the framework. Nothing here sleeps; every delay is modelled.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/common/retry.h"
#include "src/dbms/server.h"
#include "src/mediator/mediator.h"
#include "src/testing/fault_injector.h"
#include "src/xdb/delegation_engine.h"
#include "src/xdb/xdb.h"

namespace xdb {
namespace {

constexpr char kJoinSql[] =
    "SELECT t1.b, t2.c FROM t1, t2 WHERE t1.a = t2.a";

/// Two Postgres nodes, t1(a,b) on d1 and t2(a,c) on d2, 10 matching keys.
void Populate(Federation* fed) {
  fed->SetNetwork(Network::Lan({"d1", "d2"}));
  DatabaseServer* d1 = fed->AddServer("d1", EngineProfile::Postgres());
  DatabaseServer* d2 = fed->AddServer("d2", EngineProfile::Postgres());
  auto t = std::make_shared<Table>(
      Schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}}));
  auto u = std::make_shared<Table>(
      Schema({{"a", TypeId::kInt64}, {"c", TypeId::kInt64}}));
  for (int i = 0; i < 10; ++i) {
    t->AppendRow({Value::Int64(i), Value::Int64(i)});
    u->AppendRow({Value::Int64(i), Value::Int64(i * 10)});
  }
  ASSERT_TRUE(d1->CreateBaseTable("t1", t).ok());
  ASSERT_TRUE(d2->CreateBaseTable("t2", u).ok());
}

class FaultFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Populate(&fed_);
    d1_ = fed_.GetServer("d1");
    d2_ = fed_.GetServer("d2");
    fed_.SetFaultInjector(&injector_);
  }

  void ExpectClean() {
    EXPECT_TRUE(d1_->TransientRelations().empty());
    EXPECT_TRUE(d2_->TransientRelations().empty());
  }

  Federation fed_;
  FaultInjector injector_{42};
  DatabaseServer* d1_ = nullptr;
  DatabaseServer* d2_ = nullptr;
};

// --------------------------------------------------------------------------
// Retry policy & injector mechanics
// --------------------------------------------------------------------------

TEST(RetryPolicyTest, BackoffScheduleIsExponentialAndCapped) {
  RetryPolicy p;  // 3 attempts, 0.05 s initial, x2, 5 s cap
  EXPECT_DOUBLE_EQ(p.BackoffAfter(1), 0.05);
  EXPECT_DOUBLE_EQ(p.BackoffAfter(2), 0.10);
  EXPECT_DOUBLE_EQ(p.BackoffAfter(3), 0.20);
  EXPECT_DOUBLE_EQ(p.BackoffAfter(20), 5.0);
  EXPECT_EQ(RetryPolicy::NoRetry().max_attempts, 1);
}

TEST(RetryPolicyTest, RetriesOnlyRetryableStatuses) {
  RetryPolicy p;
  int attempts = 0;
  double backoff = 0;
  int calls = 0;
  Status st = RetryWithBackoff(
      p,
      [&] {
        ++calls;
        return calls < 3 ? Status::Unavailable("flaky") : Status::OK();
      },
      &attempts, &backoff);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(attempts, 3);
  EXPECT_DOUBLE_EQ(backoff, 0.05 + 0.10);

  // A static error is never retried.
  calls = 0;
  st = RetryWithBackoff(
      p,
      [&] {
        ++calls;
        return Status::BindError("static");
      },
      &attempts, &backoff);
  EXPECT_TRUE(st.IsBindError());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(attempts, 1);
  EXPECT_DOUBLE_EQ(backoff, 0.0);
}

TEST(FaultInjectorTest, WindowEveryNthAndNodeDownTriggers) {
  FaultInjector inj;
  FaultSpec spec;
  spec.server = "x";
  spec.op = FaultOp::kDdl;
  spec.kind = FaultKind::kTransientError;
  spec.first_attempt = 2;
  spec.last_attempt = 3;
  int id = inj.AddFault(spec);
  EXPECT_TRUE(inj.OnOperation("x", FaultOp::kDdl).ok());       // 1
  EXPECT_FALSE(inj.OnOperation("x", FaultOp::kDdl).ok());      // 2
  EXPECT_FALSE(inj.OnOperation("x", FaultOp::kDdl).ok());      // 3
  EXPECT_TRUE(inj.OnOperation("x", FaultOp::kDdl).ok());       // 4
  EXPECT_TRUE(inj.OnOperation("y", FaultOp::kDdl).ok());       // other server
  EXPECT_TRUE(inj.OnOperation("x", FaultOp::kQuery).ok());     // other op
  inj.RemoveFault(id);

  FaultSpec nth;
  nth.server = "x";
  nth.op = FaultOp::kFetch;
  nth.kind = FaultKind::kTransientError;
  nth.every_nth = 2;
  inj.AddFault(nth);
  EXPECT_TRUE(inj.OnOperation("x", FaultOp::kFetch).ok());
  EXPECT_FALSE(inj.OnOperation("x", FaultOp::kFetch).ok());
  EXPECT_TRUE(inj.OnOperation("x", FaultOp::kFetch).ok());
  EXPECT_FALSE(inj.OnOperation("x", FaultOp::kFetch).ok());

  inj.MarkNodeDown("y");
  Status down = inj.OnOperation("y", FaultOp::kQuery);
  EXPECT_TRUE(down.IsUnavailable());
  EXPECT_NE(down.message().find("y"), std::string::npos);
  inj.MarkNodeUp("y");
  EXPECT_TRUE(inj.OnOperation("y", FaultOp::kQuery).ok());
}

TEST(FaultInjectorTest, ProbabilisticTriggersAreSeedReproducible) {
  auto pattern = [](uint64_t seed) {
    FaultInjector inj(seed);
    FaultSpec spec;
    spec.op = FaultOp::kFetch;
    spec.kind = FaultKind::kTransientError;
    spec.probability = 0.4;
    spec.delay_seconds = 0.25;
    inj.AddFault(spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!inj.OnOperation("d1", FaultOp::kFetch).ok());
    }
    return std::make_pair(fired, inj.injected_delay_seconds());
  };
  auto a = pattern(7);
  auto b = pattern(7);
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);

  // The modelled delay matches the number of firings exactly.
  int fires = 0;
  for (bool f : a.first) fires += f ? 1 : 0;
  EXPECT_DOUBLE_EQ(a.second, 0.25 * fires);
}

TEST(FaultInjectorTest, SlowLinkDegradesModelledLinkProps) {
  Network net = Network::Lan({"a", "b", "c"});
  LinkProps base = net.GetLink("a", "b");

  FaultInjector inj;
  FaultSpec slow;
  slow.server = "a";
  slow.peer = "b";
  slow.kind = FaultKind::kSlowLink;
  slow.slow_factor = 4.0;
  inj.AddFault(slow);
  net.set_fault_injector(&inj);

  LinkProps degraded = net.GetLink("a", "b");
  EXPECT_DOUBLE_EQ(degraded.bandwidth, base.bandwidth / 4.0);
  EXPECT_DOUBLE_EQ(degraded.latency, base.latency * 4.0);
  // Symmetric, and other links untouched.
  EXPECT_DOUBLE_EQ(net.GetLink("b", "a").bandwidth, base.bandwidth / 4.0);
  EXPECT_DOUBLE_EQ(net.GetLink("a", "c").bandwidth, base.bandwidth);

  net.set_fault_injector(nullptr);
  EXPECT_DOUBLE_EQ(net.GetLink("a", "b").bandwidth, base.bandwidth);
}

TEST(NetworkValidationTest, UnknownNodeNamesAreRecordedAndNotCounted) {
  Network net = Network::Lan({"a", "b"});
  EXPECT_TRUE(net.unknown_nodes().empty());

  (void)net.GetLink("a", "ghost");
  EXPECT_EQ(net.unknown_nodes().count("ghost"), 1u);

  // A transfer naming an unregistered node must not skew the accounting.
  net.RecordTransfer("phantom", "a", 1e6, 3);
  net.RecordTransfer("a", "phantom", 1e6, 3);
  EXPECT_DOUBLE_EQ(net.TotalBytes(), 0.0);
  EXPECT_EQ(net.unknown_nodes().count("phantom"), 1u);

  net.RecordTransfer("a", "b", 1000, 1);
  EXPECT_DOUBLE_EQ(net.TotalBytes(), 1000.0);

  net.ClearUnknownNodes();
  EXPECT_TRUE(net.unknown_nodes().empty());
}

// --------------------------------------------------------------------------
// End-to-end: the fault-free path must not change
// --------------------------------------------------------------------------

TEST(FaultFreePathTest, AttachedIdleInjectorIsBitIdentical) {
  Federation plain;
  Populate(&plain);
  Federation wired;
  Populate(&wired);
  FaultInjector idle(123);  // attached but no fault specs
  wired.SetFaultInjector(&idle);

  XdbSystem a(&plain);
  XdbSystem b(&wired);
  auto ra = a.Query(kJoinSql);
  auto rb = b.Query(kJoinSql);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());

  EXPECT_DOUBLE_EQ(ra->phases.prep, rb->phases.prep);
  EXPECT_DOUBLE_EQ(ra->phases.lopt, rb->phases.lopt);
  EXPECT_DOUBLE_EQ(ra->phases.ann, rb->phases.ann);
  EXPECT_DOUBLE_EQ(ra->phases.exec, rb->phases.exec);
  EXPECT_DOUBLE_EQ(ra->transferred_bytes(), rb->transferred_bytes());
  EXPECT_EQ(ra->ddl_statements, rb->ddl_statements);
  EXPECT_EQ(ra->consultations, rb->consultations);
  EXPECT_EQ(ra->result->num_rows(), rb->result->num_rows());

  EXPECT_TRUE(rb->trace.retries.empty());
  EXPECT_EQ(rb->trace.replan_rounds, 0);
  EXPECT_EQ(rb->trace.recovery_action, "none");
  EXPECT_DOUBLE_EQ(rb->trace.total_backoff_seconds, 0.0);
  EXPECT_DOUBLE_EQ(rb->trace.injected_delay_seconds, 0.0);
  EXPECT_DOUBLE_EQ(rb->trace.wasted_attempt_seconds, 0.0);
  EXPECT_EQ(idle.faults_fired(), 0);
}

// --------------------------------------------------------------------------
// Retry with modelled backoff
// --------------------------------------------------------------------------

TEST_F(FaultFixture, DdlTransientFaultRetriesUntilSuccess) {
  FaultSpec spec;  // first two DDL attempts anywhere fail
  spec.op = FaultOp::kDdl;
  spec.kind = FaultKind::kTransientError;
  spec.first_attempt = 1;
  spec.last_attempt = 2;
  injector_.AddFault(spec);

  XdbSystem xdb(&fed_);
  auto r = xdb.Query(kJoinSql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->result->num_rows(), 10u);

  ASSERT_EQ(r->trace.retries.size(), 1u);
  const RetryEvent& ev = r->trace.retries[0];
  EXPECT_EQ(ev.op, "ddl");
  EXPECT_EQ(ev.attempts, 3);
  EXPECT_TRUE(ev.succeeded);
  EXPECT_DOUBLE_EQ(ev.backoff_seconds, 0.05 + 0.10);
  EXPECT_DOUBLE_EQ(r->trace.total_backoff_seconds, 0.15);
  EXPECT_EQ(r->trace.recovery_action, "retried");
  EXPECT_EQ(r->trace.replan_rounds, 0);
  ExpectClean();
}

TEST_F(FaultFixture, InjectedDelayAndBackoffAreChargedToModelledExec) {
  XdbSystem xdb(&fed_);
  auto clean = xdb.Query(kJoinSql);
  ASSERT_TRUE(clean.ok());

  FaultSpec spec;  // exactly one DDL attempt fails, costing 1.5 modelled s
  spec.op = FaultOp::kDdl;
  spec.kind = FaultKind::kTransientError;
  spec.first_attempt = 1;
  spec.last_attempt = 1;
  spec.delay_seconds = 1.5;
  injector_.AddFault(spec);

  auto faulted = xdb.Query(kJoinSql);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_DOUBLE_EQ(faulted->trace.injected_delay_seconds, 1.5);
  EXPECT_DOUBLE_EQ(faulted->trace.total_backoff_seconds, 0.05);
  // Same run plus the injected delay and one backoff — nothing else moves.
  EXPECT_DOUBLE_EQ(faulted->phases.exec, clean->phases.exec + 1.5 + 0.05);
  ExpectClean();
}

TEST_F(FaultFixture, FetchLinkDropRetriesAndAccountsWastedBytes) {
  XdbSystem xdb(&fed_);
  auto clean = xdb.Query(kJoinSql);
  ASSERT_TRUE(clean.ok());
  const double clean_bytes = clean->transferred_bytes();

  FaultSpec drop;  // the first payload transfer aborts mid-flight
  drop.op = FaultOp::kTransfer;
  drop.kind = FaultKind::kLinkDrop;
  drop.first_attempt = 1;
  drop.last_attempt = 1;
  injector_.AddFault(drop);

  auto r = xdb.Query(kJoinSql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->result->num_rows(), 10u);

  ASSERT_EQ(r->trace.retries.size(), 1u);
  EXPECT_EQ(r->trace.retries[0].op, "fetch");
  EXPECT_EQ(r->trace.retries[0].attempts, 2);
  EXPECT_TRUE(r->trace.retries[0].succeeded);
  EXPECT_EQ(r->trace.recovery_action, "retried");

  int failed_transfers = 0;
  double wasted = 0;
  for (const auto& t : r->trace.transfers) {
    if (t.failed) {
      ++failed_transfers;
      wasted += t.bytes;
    }
  }
  EXPECT_EQ(failed_transfers, 1);
  EXPECT_GT(wasted, 0.0);
  // The aborted attempt's bytes really crossed the wire — accounted, not
  // erased.
  EXPECT_GT(r->transferred_bytes(), clean_bytes);
  ExpectClean();
}

// --------------------------------------------------------------------------
// Rollback + failover replanning
// --------------------------------------------------------------------------

TEST_F(FaultFixture, MidDeployFaultAtEveryDdlIndexRollsBackAndRecovers) {
  XdbSystem xdb(&fed_);
  auto probe = xdb.Query(kJoinSql);
  ASSERT_TRUE(probe.ok());
  const int ddl_total = probe->ddl_statements;
  ASSERT_GE(ddl_total, 3);

  // No in-place retry: every injected fault must force rollback + replan.
  fed_.set_retry_policy(RetryPolicy::NoRetry());
  for (int k = 1; k <= ddl_total; ++k) {
    FaultSpec spec;  // exactly the k-th DDL statement of this query fails
    spec.op = FaultOp::kDdl;
    spec.kind = FaultKind::kTransientError;
    spec.first_attempt = k;
    spec.last_attempt = k;
    int id = injector_.AddFault(spec);

    auto r = xdb.Query(kJoinSql);
    ASSERT_TRUE(r.ok()) << "DDL index " << k << ": "
                        << r.status().ToString();
    EXPECT_EQ(r->result->num_rows(), 10u) << "DDL index " << k;
    EXPECT_GE(r->trace.replan_rounds, 1) << "DDL index " << k;
    EXPECT_EQ(r->trace.recovery_action, "replanned") << "DDL index " << k;
    EXPECT_FALSE(r->trace.retries.empty());
    ExpectClean();
    injector_.RemoveFault(id);
  }
}

TEST_F(FaultFixture, FailoverMovesPlacementOffTheFailingRoot) {
  XdbSystem xdb(&fed_);
  auto probe = xdb.Query(kJoinSql);
  ASSERT_TRUE(probe.ok());
  const std::string old_root = probe->xdb_query.server;

  FaultSpec spec;  // the old root refuses to run client queries, forever
  spec.server = old_root;
  spec.op = FaultOp::kQuery;
  spec.kind = FaultKind::kTransientError;
  injector_.AddFault(spec);

  auto r = xdb.Query(kJoinSql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->xdb_query.server, old_root);
  EXPECT_EQ(r->result->num_rows(), 10u);
  EXPECT_EQ(r->trace.replan_rounds, 1);
  EXPECT_EQ(r->trace.recovery_action, "replanned");
  ASSERT_EQ(r->trace.excluded_servers.size(), 1u);
  EXPECT_EQ(r->trace.excluded_servers[0], old_root);
  ExpectClean();
}

TEST_F(FaultFixture, UnrecoverableNodeDownNamesTheDeadNodeAndStaysClean) {
  injector_.MarkNodeDown("d2");

  XdbSystem xdb(&fed_);
  auto r = xdb.Query(kJoinSql);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
  EXPECT_NE(r.status().message().find("d2"), std::string::npos);

  const RunTrace& trace = xdb.last_trace();
  EXPECT_EQ(trace.recovery_action, "failed");
  EXPECT_FALSE(trace.retries.empty());
  ExpectClean();

  // Mediator baselines degrade the same way (no failover by design).
  MediatorSystem garlic(&fed_, MediatorKind::kGarlic);
  EXPECT_FALSE(garlic.Query(kJoinSql).ok());
  ExpectClean();

  // The node coming back heals the federation.
  injector_.MarkNodeUp("d2");
  auto again = xdb.Query(kJoinSql);
  EXPECT_TRUE(again.ok()) << again.status().ToString();
  ExpectClean();
}

// --------------------------------------------------------------------------
// Determinism: same seed => identical run, bit for bit
// --------------------------------------------------------------------------

TEST(FaultDeterminismTest, SameSeedReproducesTheWholeRecoveryTrail) {
  auto run = [](uint64_t seed) {
    Federation fed;
    Populate(&fed);
    FaultInjector inj(seed);
    FaultSpec flaky;  // every fetch attempt fails with probability 0.5
    flaky.op = FaultOp::kFetch;
    flaky.kind = FaultKind::kTransientError;
    flaky.probability = 0.5;
    flaky.delay_seconds = 0.01;
    inj.AddFault(flaky);
    fed.SetFaultInjector(&inj);

    XdbSystem xdb(&fed);
    auto r = xdb.Query(kJoinSql);
    const RunTrace& trace = r.ok() ? r->trace : xdb.last_trace();
    size_t retry_attempts = 0;
    for (const auto& ev : trace.retries) retry_attempts += ev.attempts;
    return std::make_tuple(r.ok(), inj.faults_fired(), trace.retries.size(),
                           retry_attempts, trace.total_backoff_seconds,
                           trace.injected_delay_seconds, trace.replan_rounds,
                           trace.recovery_action,
                           r.ok() ? r->phases.exec : -1.0,
                           r.ok() ? r->transferred_bytes() : -1.0);
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_EQ(run(99), run(99));
}

// --------------------------------------------------------------------------
// Cleanup: idempotent, and loud about what it could not drop
// --------------------------------------------------------------------------

TEST_F(FaultFixture, CleanupReportsMissingConnectorAndFinishesLater) {
  XdbSystem xdb(&fed_);
  std::map<std::string, DbmsConnector*> conns{{"d1", xdb.connector("d1")}};
  DelegationEngine engine(conns, &fed_);

  auto schema = d1_->DescribeRelation("t1");
  ASSERT_TRUE(schema.ok());
  auto stats = d1_->GetRelationStats("t1");
  ASSERT_TRUE(stats.ok());
  DelegationPlan plan;
  DelegationTask task;
  task.id = 1;
  task.server = "d1";
  task.view_name = "eng_probe";
  task.expr = PlanNode::MakeScan("d1", "t1", "t1", *schema, *stats);
  plan.tasks.push_back(std::move(task));

  ASSERT_TRUE(engine.Deploy(&plan).ok());
  EXPECT_FALSE(d1_->TransientRelations().empty());

  // The connector disappears: cleanup must say so, by server name, and
  // keep the relation on its ledger instead of silently leaking it.
  auto saved = engine.connectors_for_test();
  engine.connectors_for_test().clear();
  Status st = engine.Cleanup();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCatalogError());
  EXPECT_NE(st.message().find("d1"), std::string::npos);
  EXPECT_NE(st.message().find("eng_probe"), std::string::npos);
  EXPECT_EQ(engine.pending_cleanup(), 1u);

  // Connector restored: a later Cleanup finishes the job.
  engine.connectors_for_test() = saved;
  EXPECT_TRUE(engine.Cleanup().ok());
  EXPECT_EQ(engine.pending_cleanup(), 0u);
  ExpectClean();
}

TEST_F(FaultFixture, CleanupRetriesRelationsBlockedByAFaultWindow) {
  XdbSystem xdb(&fed_);
  std::map<std::string, DbmsConnector*> conns{{"d1", xdb.connector("d1")}};
  DelegationEngine engine(conns, &fed_);

  auto schema = d1_->DescribeRelation("t1");
  ASSERT_TRUE(schema.ok());
  auto stats = d1_->GetRelationStats("t1");
  ASSERT_TRUE(stats.ok());
  DelegationPlan plan;
  DelegationTask task;
  task.id = 1;
  task.server = "d1";
  task.view_name = "eng_probe";
  task.expr = PlanNode::MakeScan("d1", "t1", "t1", *schema, *stats);
  plan.tasks.push_back(std::move(task));
  ASSERT_TRUE(engine.Deploy(&plan).ok());

  // Every DDL on d1 fails for a while: the DROP cannot get through.
  fed_.set_retry_policy(RetryPolicy::NoRetry());
  FaultSpec spec;
  spec.server = "d1";
  spec.op = FaultOp::kDdl;
  spec.kind = FaultKind::kTransientError;
  int id = injector_.AddFault(spec);

  Status st = engine.Cleanup();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsRetryable());
  EXPECT_EQ(engine.pending_cleanup(), 1u);
  EXPECT_TRUE(d1_->HasRelation("eng_probe"));

  // Fault window over: the retained ledger entry is dropped after all.
  injector_.RemoveFault(id);
  EXPECT_TRUE(engine.Cleanup().ok());
  EXPECT_EQ(engine.pending_cleanup(), 0u);
  ExpectClean();
}

}  // namespace
}  // namespace xdb
