// Tests for HAVING and derived tables (FROM subqueries) across the whole
// stack: parser, planner, local execution, and federated execution.

#include <gtest/gtest.h>

#include "src/dbms/server.h"
#include "src/sql/parser.h"
#include "src/xdb/xdb.h"

namespace xdb {
namespace {

class SqlFeaturesFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    fed_.SetNetwork(Network::Lan({"d1", "d2"}));
    d1_ = fed_.AddServer("d1", EngineProfile::Postgres());
    d2_ = fed_.AddServer("d2", EngineProfile::Postgres());
    auto sales = std::make_shared<Table>(Schema({{"emp", TypeId::kInt64},
                                                 {"amount",
                                                  TypeId::kInt64}}));
    // emp 0: 10+20+30=60 over 3 sales; emp 1: 100 over 1; emp 2: 5+5=10.
    sales->AppendRow({Value::Int64(0), Value::Int64(10)});
    sales->AppendRow({Value::Int64(0), Value::Int64(20)});
    sales->AppendRow({Value::Int64(0), Value::Int64(30)});
    sales->AppendRow({Value::Int64(1), Value::Int64(100)});
    sales->AppendRow({Value::Int64(2), Value::Int64(5)});
    sales->AppendRow({Value::Int64(2), Value::Int64(5)});
    ASSERT_TRUE(d1_->CreateBaseTable("sales", sales).ok());

    auto emps = std::make_shared<Table>(
        Schema({{"id", TypeId::kInt64}, {"name", TypeId::kString}}));
    for (int i = 0; i < 3; ++i) {
      emps->AppendRow({Value::Int64(i),
                       Value::String("emp" + std::to_string(i))});
    }
    ASSERT_TRUE(d2_->CreateBaseTable("emps", emps).ok());
  }

  Federation fed_;
  DatabaseServer* d1_ = nullptr;
  DatabaseServer* d2_ = nullptr;
};

TEST_F(SqlFeaturesFixture, ParserAcceptsHaving) {
  auto sel = sql::ParseSelect(
      "SELECT emp, SUM(amount) AS s FROM sales GROUP BY emp "
      "HAVING SUM(amount) > 50 ORDER BY emp");
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  ASSERT_NE((*sel)->having, nullptr);
  // Round-trips through ToSql.
  auto again = sql::ParseSelect((*sel)->ToSql());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*sel)->ToSql(), (*again)->ToSql());
}

TEST_F(SqlFeaturesFixture, HavingFiltersGroups) {
  auto r = d1_->ExecuteQuery(
      "SELECT emp, SUM(amount) AS s FROM sales GROUP BY emp "
      "HAVING SUM(amount) > 50 ORDER BY emp");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->num_rows(), 2u);  // emps 0 (60) and 1 (100)
  EXPECT_EQ((*r)->row(0)[0].int64_value(), 0);
  EXPECT_EQ((*r)->row(0)[1].int64_value(), 60);
  EXPECT_EQ((*r)->row(1)[0].int64_value(), 1);
}

TEST_F(SqlFeaturesFixture, HavingOnGroupKeyAndCount) {
  auto r = d1_->ExecuteQuery(
      "SELECT emp, COUNT(*) AS n FROM sales GROUP BY emp "
      "HAVING COUNT(*) >= 2 AND emp < 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->num_rows(), 1u);  // only emp 0 (3 sales, < 2)
  EXPECT_EQ((*r)->row(0)[0].int64_value(), 0);
}

TEST_F(SqlFeaturesFixture, HavingWithAggregateNotInSelect) {
  auto r = d1_->ExecuteQuery(
      "SELECT emp FROM sales GROUP BY emp HAVING MIN(amount) >= 10");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 2u);  // emps 0 and 1
}

TEST_F(SqlFeaturesFixture, HavingWithoutAggregationIsError) {
  auto r = d1_->ExecuteQuery("SELECT emp FROM sales HAVING emp > 1");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsBindError());
}

TEST_F(SqlFeaturesFixture, HavingOutsideGroupByIsError) {
  auto r = d1_->ExecuteQuery(
      "SELECT emp, COUNT(*) AS n FROM sales GROUP BY emp "
      "HAVING amount > 5");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsBindError());
}

TEST_F(SqlFeaturesFixture, DerivedTableBasic) {
  auto r = d1_->ExecuteQuery(
      "SELECT t.s FROM (SELECT emp, SUM(amount) AS s FROM sales "
      "GROUP BY emp) AS t WHERE t.s > 50 ORDER BY t.s");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->num_rows(), 2u);
  EXPECT_EQ((*r)->row(0)[0].int64_value(), 60);
  EXPECT_EQ((*r)->row(1)[0].int64_value(), 100);
}

TEST_F(SqlFeaturesFixture, DerivedTableJoinsWithBaseTable) {
  auto r = d1_->ExecuteQuery(
      "SELECT s.emp, t.total FROM sales s, "
      "(SELECT emp, SUM(amount) AS total FROM sales GROUP BY emp) t "
      "WHERE s.emp = t.emp AND s.amount = 100");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->num_rows(), 1u);
  EXPECT_EQ((*r)->row(0)[1].int64_value(), 100);
}

TEST_F(SqlFeaturesFixture, DerivedTableCrossDatabase) {
  // A derived aggregate over d1 joined with a base table on d2, through
  // the full XDB pipeline.
  XdbSystem xdb(&fed_);
  auto r = xdb.Query(
      "SELECT e.name, t.total FROM "
      "(SELECT emp, SUM(amount) AS total FROM sales GROUP BY emp) t, "
      "emps e WHERE t.emp = e.id AND t.total >= 60 ORDER BY t.total");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->result->num_rows(), 2u);
  EXPECT_EQ(r->result->row(0)[0].string_value(), "emp0");
  EXPECT_EQ(r->result->row(1)[0].string_value(), "emp1");
  // The aggregate runs on d1 (in-situ), only 2 small rows cross.
  for (const auto& t : r->trace.transfers) {
    EXPECT_LE(t.rows, 3.0);
  }
}

TEST_F(SqlFeaturesFixture, HavingCrossDatabase) {
  XdbSystem xdb(&fed_);
  auto r = xdb.Query(
      "SELECT e.name, SUM(s.amount) AS total FROM sales s, emps e "
      "WHERE s.emp = e.id GROUP BY e.name HAVING SUM(s.amount) > 50 "
      "ORDER BY total DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->result->num_rows(), 2u);
  EXPECT_EQ(r->result->row(0)[1].int64_value(), 100);
}

TEST_F(SqlFeaturesFixture, NestedDerivedTables) {
  auto r = d1_->ExecuteQuery(
      "SELECT u.m FROM (SELECT t.s AS m FROM "
      "(SELECT emp, SUM(amount) AS s FROM sales GROUP BY emp) t) u "
      "ORDER BY u.m DESC LIMIT 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->num_rows(), 1u);
  EXPECT_EQ((*r)->row(0)[0].int64_value(), 100);
}

TEST_F(SqlFeaturesFixture, DerivedTableRequiresAlias) {
  auto sel = sql::ParseSelect("SELECT x FROM (SELECT emp FROM sales)");
  EXPECT_FALSE(sel.ok());
}

TEST_F(SqlFeaturesFixture, ExplainStatementProducesPlanText) {
  auto r = d1_->ExecuteSql("EXPLAIN SELECT emp, SUM(amount) FROM sales "
                           "GROUP BY emp");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GT((*r)->num_rows(), 2u);
  std::string all;
  for (const auto& row : (*r)->rows()) all += row[0].string_value() + "\n";
  EXPECT_NE(all.find("Aggregate"), std::string::npos);
  EXPECT_NE(all.find("Scan(d1.sales)"), std::string::npos);
  EXPECT_NE(all.find("cost="), std::string::npos);
}

}  // namespace
}  // namespace xdb
