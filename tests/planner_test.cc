#include <gtest/gtest.h>

#include <functional>

#include "src/plan/planner.h"
#include "src/sql/parser.h"

namespace xdb {
namespace {

/// Resolver over a fixed synthetic catalog with controllable cardinalities.
class FakeResolver : public RelationResolver {
 public:
  void Add(const std::string& table, Schema schema, double rows,
           std::vector<double> ndvs = {}) {
    Entry e;
    e.schema = std::move(schema);
    e.stats.row_count = rows;
    for (size_t i = 0; i < e.schema.num_fields(); ++i) {
      ColumnStats cs;
      cs.ndv = i < ndvs.size() ? ndvs[i] : rows;
      cs.min = Value::Int64(0);
      cs.max = Value::Int64(static_cast<int64_t>(rows));
      e.stats.columns.push_back(cs);
    }
    tables_[table] = std::move(e);
  }

  Result<PlanPtr> Resolve(const std::string& db,
                          const std::string& table) override {
    auto it = tables_.find(table);
    if (it == tables_.end()) {
      return Status::CatalogError("unknown " + table);
    }
    return PlanNode::MakeScan(db.empty() ? "db" : db, table, table,
                              it->second.schema, it->second.stats);
  }

 private:
  struct Entry {
    Schema schema;
    TableStats stats;
  };
  std::map<std::string, Entry> tables_;
};

FakeResolver MakeCatalog() {
  FakeResolver r;
  r.Add("big", Schema({{"id", TypeId::kInt64}, {"x", TypeId::kInt64},
                       {"pad", TypeId::kString}}),
        100000, {100000, 100});
  r.Add("mid", Schema({{"id", TypeId::kInt64}, {"big_id", TypeId::kInt64},
                       {"y", TypeId::kInt64}}),
        1000, {1000, 100000, 50});
  r.Add("small", Schema({{"id", TypeId::kInt64}, {"z", TypeId::kString}}),
        10, {10, 10});
  return r;
}

PlanPtr MustPlan(RelationResolver* r, const std::string& sql,
                 PlannerOptions opts = {}) {
  auto stmt = sql::ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  Planner planner(r, opts);
  auto plan = planner.Plan(**stmt);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.ok() ? *plan : nullptr;
}

/// Counts nodes of a kind in the tree.
int CountKind(const PlanNode& node, PlanKind kind) {
  int n = node.kind == kind ? 1 : 0;
  for (const auto& c : node.children) n += CountKind(*c, kind);
  return n;
}

const PlanNode* FindFirst(const PlanNode& node, PlanKind kind) {
  if (node.kind == kind) return &node;
  for (const auto& c : node.children) {
    if (const PlanNode* f = FindFirst(*c, kind)) return f;
  }
  return nullptr;
}

TEST(PlannerTest, FilterPushedBelowJoin) {
  FakeResolver cat = MakeCatalog();
  PlanPtr plan = MustPlan(&cat,
                          "SELECT b.x FROM big b, mid m "
                          "WHERE b.id = m.big_id AND b.x > 50");
  // The single-table predicate must sit below the join.
  const PlanNode* join = FindFirst(*plan, PlanKind::kJoin);
  ASSERT_NE(join, nullptr);
  bool filter_below_join = false;
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& n) {
    if (n.kind == PlanKind::kFilter) filter_below_join = true;
    for (const auto& c : n.children) walk(*c);
  };
  for (const auto& c : join->children) walk(*c);
  EXPECT_TRUE(filter_below_join);
}

TEST(PlannerTest, FilterStaysOnTopWithoutPushdown) {
  FakeResolver cat = MakeCatalog();
  PlannerOptions opts;
  opts.push_down_filters = false;
  PlanPtr plan = MustPlan(&cat,
                          "SELECT b.x FROM big b, mid m "
                          "WHERE b.id = m.big_id AND b.x > 50",
                          opts);
  const PlanNode* join = FindFirst(*plan, PlanKind::kJoin);
  ASSERT_NE(join, nullptr);
  // No Filter below the join; the predicate is applied above it.
  for (const auto& c : join->children) {
    EXPECT_EQ(CountKind(*c, PlanKind::kFilter), 0);
  }
  EXPECT_EQ(CountKind(*plan, PlanKind::kFilter), 1);
}

TEST(PlannerTest, ColumnPruningShrinksScans) {
  FakeResolver cat = MakeCatalog();
  PlanPtr plan = MustPlan(&cat,
                          "SELECT m.y FROM big b, mid m "
                          "WHERE b.id = m.big_id");
  // big has 3 columns but only `id` is needed -> a 1-column projection
  // below the join on the big side.
  const PlanNode* join = FindFirst(*plan, PlanKind::kJoin);
  ASSERT_NE(join, nullptr);
  for (const auto& c : join->children) {
    EXPECT_LE(c->output_schema.num_fields(), 2u);
  }
}

TEST(PlannerTest, NoPruningKeepsFullWidth) {
  FakeResolver cat = MakeCatalog();
  PlannerOptions opts;
  opts.prune_columns = false;
  PlanPtr plan = MustPlan(&cat,
                          "SELECT m.y FROM big b, mid m "
                          "WHERE b.id = m.big_id",
                          opts);
  const PlanNode* join = FindFirst(*plan, PlanKind::kJoin);
  ASSERT_NE(join, nullptr);
  size_t total = join->children[0]->output_schema.num_fields() +
                 join->children[1]->output_schema.num_fields();
  EXPECT_EQ(total, 6u);  // 3 (big) + 3 (mid)
}

TEST(PlannerTest, JoinOrderPutsSelectiveSideFirst) {
  FakeResolver cat = MakeCatalog();
  // Chain big -(id=big_id)- mid -(id=id)- small. Left-deep DP should not
  // start from `big` x `small` (a cross product) and should order to keep
  // intermediates small.
  PlanPtr plan = MustPlan(&cat,
                          "SELECT s.z FROM big b, mid m, small s "
                          "WHERE b.id = m.big_id AND m.id = s.id");
  EXPECT_EQ(CountKind(*plan, PlanKind::kJoin), 2);
  // No cross products: every join has keys.
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& n) {
    if (n.kind == PlanKind::kJoin) {
      EXPECT_FALSE(n.left_keys.empty());
    }
    for (const auto& c : n.children) walk(*c);
  };
  walk(*plan);
}

TEST(PlannerTest, CrossProductOnlyWhenDisconnected) {
  FakeResolver cat = MakeCatalog();
  PlanPtr plan = MustPlan(&cat, "SELECT s.z FROM small s, mid m");
  const PlanNode* join = FindFirst(*plan, PlanKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_TRUE(join->left_keys.empty());
}

TEST(PlannerTest, NonEquiCrossPredicateBecomesResidualFilter) {
  FakeResolver cat = MakeCatalog();
  PlanPtr plan = MustPlan(&cat,
                          "SELECT m.y FROM big b, mid m "
                          "WHERE b.id = m.big_id AND b.x > m.y");
  // b.x > m.y spans both relations and is not an equi-join: it must appear
  // as a filter above the join (or as a join residual).
  const PlanNode* join = FindFirst(*plan, PlanKind::kJoin);
  ASSERT_NE(join, nullptr);
  bool has_residual_or_filter =
      join->residual != nullptr || CountKind(*plan, PlanKind::kFilter) > 0;
  EXPECT_TRUE(has_residual_or_filter);
}

TEST(PlannerTest, SelfJoinWithAliases) {
  FakeResolver cat = MakeCatalog();
  PlanPtr plan = MustPlan(&cat,
                          "SELECT a.y FROM mid a, mid b "
                          "WHERE a.id = b.big_id AND b.y > 5");
  EXPECT_EQ(CountKind(*plan, PlanKind::kJoin), 1);
  EXPECT_EQ(CountKind(*plan, PlanKind::kScan), 2);
}

TEST(PlannerTest, GroupByAliasFromSelectList) {
  FakeResolver cat = MakeCatalog();
  PlanPtr plan = MustPlan(&cat,
                          "SELECT m.y * 2 AS dy, COUNT(*) AS n FROM mid m "
                          "GROUP BY dy");
  const PlanNode* agg = FindFirst(*plan, PlanKind::kAggregate);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->group_keys.size(), 1u);
  EXPECT_EQ(plan->output_schema.field(0).name, "dy");
}

TEST(PlannerTest, PostAggregateArithmetic) {
  FakeResolver cat = MakeCatalog();
  PlanPtr plan = MustPlan(&cat,
                          "SELECT SUM(m.y) / COUNT(*) AS avg_y "
                          "FROM mid m");
  // A Project above the Aggregate computes the division.
  EXPECT_EQ(plan->kind, PlanKind::kProject);
  EXPECT_EQ(plan->children[0]->kind, PlanKind::kAggregate);
  EXPECT_EQ(plan->children[0]->aggregates.size(), 2u);
}

TEST(PlannerTest, DuplicateAggregatesComputedOnce) {
  FakeResolver cat = MakeCatalog();
  PlanPtr plan = MustPlan(&cat,
                          "SELECT SUM(m.y), SUM(m.y) + 1 FROM mid m");
  const PlanNode* agg = FindFirst(*plan, PlanKind::kAggregate);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->aggregates.size(), 1u);
}

TEST(PlannerTest, SelectOutsideGroupByRejected) {
  FakeResolver cat = MakeCatalog();
  auto stmt = sql::ParseSelect(
      "SELECT m.y, COUNT(*) FROM mid m GROUP BY m.id");
  ASSERT_TRUE(stmt.ok());
  Planner planner(&cat);
  auto plan = planner.Plan(**stmt);
  ASSERT_FALSE(plan.ok());
  EXPECT_TRUE(plan.status().IsBindError());
}

TEST(PlannerTest, OrderByAliasAndExpression) {
  FakeResolver cat = MakeCatalog();
  // By alias.
  PlanPtr p1 = MustPlan(&cat,
                        "SELECT m.y AS v FROM mid m ORDER BY v DESC");
  EXPECT_EQ(p1->kind, PlanKind::kSort);
  EXPECT_TRUE(p1->sort_keys[0].second);
  // By structural match with a select expression.
  PlanPtr p2 = MustPlan(&cat,
                        "SELECT SUM(m.y) AS s FROM mid m GROUP BY m.id "
                        "ORDER BY SUM(m.y)");
  EXPECT_EQ(p2->kind, PlanKind::kSort);
}

TEST(PlannerTest, OrderByUnknownFails) {
  FakeResolver cat = MakeCatalog();
  auto stmt = sql::ParseSelect("SELECT m.y FROM mid m ORDER BY nosuch");
  ASSERT_TRUE(stmt.ok());
  Planner planner(&cat);
  EXPECT_FALSE(planner.Plan(**stmt).ok());
}

TEST(PlannerTest, SelectStarSingleAndMultiTable) {
  FakeResolver cat = MakeCatalog();
  PlanPtr p1 = MustPlan(&cat, "SELECT * FROM small s");
  EXPECT_EQ(p1->output_schema.num_fields(), 2u);
  PlanPtr p2 = MustPlan(&cat,
                        "SELECT * FROM small s, mid m WHERE s.id = m.id");
  EXPECT_EQ(p2->output_schema.num_fields(), 5u);
  // FROM order is preserved in the output even if the join order differs.
  EXPECT_EQ(p2->output_schema.field(0).name, "id");
  EXPECT_EQ(p2->output_schema.field(1).name, "z");
}

TEST(PlannerTest, AmbiguousUnqualifiedColumnFails) {
  FakeResolver cat = MakeCatalog();
  auto stmt =
      sql::ParseSelect("SELECT id FROM small s, mid m WHERE s.id = m.id");
  ASSERT_TRUE(stmt.ok());
  Planner planner(&cat);
  auto plan = planner.Plan(**stmt);
  ASSERT_FALSE(plan.ok());
  EXPECT_TRUE(plan.status().IsBindError());
}

TEST(PlannerTest, UnknownTableFails) {
  FakeResolver cat = MakeCatalog();
  auto stmt = sql::ParseSelect("SELECT x FROM nosuch");
  ASSERT_TRUE(stmt.ok());
  Planner planner(&cat);
  EXPECT_TRUE(planner.Plan(**stmt).status().IsCatalogError());
}

TEST(PlannerTest, ConjunctSplitAndCombineRoundTrip) {
  auto stmt = sql::ParseSelect(
      "SELECT m.y FROM mid m WHERE m.y > 1 AND m.id < 5 AND m.big_id = 3");
  ASSERT_TRUE(stmt.ok());
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts((*stmt)->where, &conjuncts);
  EXPECT_EQ(conjuncts.size(), 3u);
  ExprPtr recombined = CombineConjuncts(conjuncts);
  std::vector<ExprPtr> again;
  SplitConjuncts(recombined, &again);
  EXPECT_EQ(again.size(), 3u);
  EXPECT_EQ(CombineConjuncts({}), nullptr);
}

}  // namespace
}  // namespace xdb
