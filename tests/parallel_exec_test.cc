// Determinism of the morsel-driven parallel executor: for the paper's
// evaluation queries, exec_threads=1 (legacy serial) and exec_threads=4 must
// produce bit-identical result tables, ComputeTrace counters, and transfer
// records. This is what keeps every figure reproduction valid — wall-clock
// parallelism must never leak into modelled quantities (DESIGN.md,
// "Parallel execution vs. the timing model").

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "src/common/thread_pool.h"
#include "src/dbms/federation.h"
#include "src/dbms/server.h"
#include "src/tpch/distributions.h"
#include "src/tpch/queries.h"
#include "src/xdb/xdb.h"

namespace xdb {
namespace {

constexpr double kSf = 0.002;  // lineitem ~12k rows — several morsels

/// Bitwise value equality: doubles must match to the bit, not within a
/// tolerance — that is the determinism contract under test.
bool BitEqual(const Value& a, const Value& b) {
  if (a.type() != b.type() || a.is_null() != b.is_null()) return false;
  if (a.is_null()) return true;
  switch (a.type()) {
    case TypeId::kString:
      return a.string_value() == b.string_value();
    case TypeId::kDouble: {
      double x = a.double_value(), y = b.double_value();
      return std::memcmp(&x, &y, sizeof(x)) == 0;
    }
    default:
      return a.int64_value() == b.int64_value();
  }
}

std::vector<Row> Sorted(const Table& t) {
  std::vector<Row> rows = t.rows();
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
  return rows;
}

void ExpectTracesEqual(const ComputeTrace& a, const ComputeTrace& b,
                       const std::string& label) {
  EXPECT_EQ(a.scan_rows, b.scan_rows) << label;
  EXPECT_EQ(a.foreign_rows, b.foreign_rows) << label;
  EXPECT_EQ(a.filter_input_rows, b.filter_input_rows) << label;
  EXPECT_EQ(a.project_rows, b.project_rows) << label;
  EXPECT_EQ(a.join_build_rows, b.join_build_rows) << label;
  EXPECT_EQ(a.join_probe_rows, b.join_probe_rows) << label;
  EXPECT_EQ(a.join_output_rows, b.join_output_rows) << label;
  EXPECT_EQ(a.agg_input_rows, b.agg_input_rows) << label;
  EXPECT_EQ(a.agg_output_rows, b.agg_output_rows) << label;
  EXPECT_EQ(a.sort_rows, b.sort_rows) << label;
  EXPECT_EQ(a.materialized_rows, b.materialized_rows) << label;
  EXPECT_EQ(a.output_rows, b.output_rows) << label;
}

struct Bed {
  std::unique_ptr<Federation> fed;
  std::unique_ptr<XdbSystem> xdb;
};

Bed MakeBed(int exec_threads) {
  Bed bed;
  bed.fed = tpch::BuildTpchFederation(kSf, tpch::TD1());
  XdbOptions opts;
  opts.exec_threads = exec_threads;
  bed.xdb = std::make_unique<XdbSystem>(bed.fed.get(), opts);
  return bed;
}

TEST(ParallelExecTest, SerialAndParallelRunsAreBitIdentical) {
  Bed serial = MakeBed(1);
  Bed parallel = MakeBed(4);
  for (const char* qid : {"Q3", "Q5", "Q10"}) {
    const auto* q = tpch::FindQuery(qid);
    ASSERT_NE(q, nullptr) << qid;
    auto rs = serial.xdb->Query(q->sql);
    auto rp = parallel.xdb->Query(q->sql);
    ASSERT_TRUE(rs.ok()) << qid << ": " << rs.status().ToString();
    ASSERT_TRUE(rp.ok()) << qid << ": " << rp.status().ToString();

    // Result tables: identical rows, bit-for-bit (order-insensitive — the
    // two runs use distinct federations, so we only canonicalize).
    ASSERT_EQ(rs->result->num_rows(), rp->result->num_rows()) << qid;
    auto srows = Sorted(*rs->result), prows = Sorted(*rp->result);
    for (size_t i = 0; i < srows.size(); ++i) {
      ASSERT_EQ(srows[i].size(), prows[i].size()) << qid;
      for (size_t c = 0; c < srows[i].size(); ++c) {
        EXPECT_TRUE(BitEqual(srows[i][c], prows[i][c]))
            << qid << " row " << i << " col " << c << ": "
            << srows[i][c].ToString() << " vs " << prows[i][c].ToString();
      }
    }

    // Every compute counter, per server and at the root.
    ExpectTracesEqual(rs->trace.root_compute, rp->trace.root_compute,
                      std::string(qid) + "/root");
    ASSERT_EQ(rs->trace.per_server.size(), rp->trace.per_server.size());
    for (const auto& [server, trace] : rs->trace.per_server) {
      auto it = rp->trace.per_server.find(server);
      ASSERT_NE(it, rp->trace.per_server.end()) << qid << "/" << server;
      ExpectTracesEqual(trace, it->second, std::string(qid) + "/" + server);
    }

    // Every transfer record: same fetch tree, same byte counts to the digit.
    ASSERT_EQ(rs->trace.transfers.size(), rp->trace.transfers.size()) << qid;
    for (size_t i = 0; i < rs->trace.transfers.size(); ++i) {
      const auto& ts = rs->trace.transfers[i];
      const auto& tp = rp->trace.transfers[i];
      EXPECT_EQ(ts.id, tp.id) << qid;
      EXPECT_EQ(ts.parent_id, tp.parent_id) << qid;
      EXPECT_EQ(ts.src, tp.src) << qid;
      EXPECT_EQ(ts.dst, tp.dst) << qid;
      EXPECT_EQ(ts.relation, tp.relation) << qid;
      EXPECT_EQ(ts.rows, tp.rows) << qid << " transfer " << i;
      EXPECT_EQ(ts.bytes, tp.bytes) << qid << " transfer " << i;
      EXPECT_EQ(ts.messages, tp.messages) << qid << " transfer " << i;
      EXPECT_EQ(ts.materialized, tp.materialized) << qid;
      ExpectTracesEqual(ts.producer_compute, tp.producer_compute,
                        std::string(qid) + "/transfer" + std::to_string(i));
    }

    // Modelled times derive from the above; spot-check they agree too.
    EXPECT_EQ(rs->exec_timing.total, rp->exec_timing.total) << qid;
    EXPECT_EQ(rs->transferred_bytes(), rp->transferred_bytes()) << qid;
  }
}

TEST(ParallelExecTest, RepeatedParallelRunsAreStable) {
  // Dynamic morsel stealing must not leak scheduling nondeterminism into
  // results: the same federation queried twice returns identical tables.
  Bed bed = MakeBed(4);
  const auto* q = tpch::FindQuery("Q5");
  auto r1 = bed.xdb->Query(q->sql);
  auto r2 = bed.xdb->Query(q->sql);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_EQ(r1->result->num_rows(), r2->result->num_rows());
  for (size_t i = 0; i < r1->result->num_rows(); ++i) {
    const Row& a = r1->result->row(i);
    const Row& b = r2->result->row(i);
    ASSERT_EQ(a.size(), b.size());
    for (size_t c = 0; c < a.size(); ++c) {
      EXPECT_TRUE(BitEqual(a[c], b[c])) << "row " << i << " col " << c;
    }
  }
}

TEST(ParallelExecTest, ServerKnobResolvesHardwareDefault) {
  Federation fed;
  auto* s = fed.AddServer("s", EngineProfile{});
  EXPECT_EQ(s->exec_threads(), DefaultExecThreads());
  s->set_exec_threads(1);
  EXPECT_EQ(s->exec_threads(), 1);
  s->set_exec_threads(3);
  EXPECT_EQ(s->exec_threads(), 3);
  s->set_exec_threads(0);
  EXPECT_EQ(s->exec_threads(), DefaultExecThreads());
}

}  // namespace
}  // namespace xdb
