// Unit tests for the delegation machinery: the global catalog, the
// connectors' counters, Algorithm 1's deployment order, cleanup, and the
// plan renderings.

#include <gtest/gtest.h>

#include "src/dbms/server.h"
#include "src/sql/parser.h"
#include "src/xdb/annotator.h"
#include "src/xdb/delegation_engine.h"
#include "src/xdb/finalizer.h"
#include "src/xdb/global_catalog.h"
#include "src/xdb/xdb.h"

namespace xdb {
namespace {

class DelegationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    fed_.SetNetwork(Network::Lan({"d1", "d2", "d3"}));
    for (const char* name : {"d1", "d2", "d3"}) {
      servers_[name] = fed_.AddServer(name, EngineProfile::Postgres());
    }
    auto make = [](int rows) {
      auto t = std::make_shared<Table>(
          Schema({{"k", TypeId::kInt64}, {"w", TypeId::kInt64}}));
      for (int i = 0; i < rows; ++i) {
        t->AppendRow({Value::Int64(i % 20), Value::Int64(i)});
      }
      return t;
    };
    ASSERT_TRUE(servers_["d1"]->CreateBaseTable("big", make(400)).ok());
    ASSERT_TRUE(servers_["d2"]->CreateBaseTable("mid", make(100)).ok());
    ASSERT_TRUE(servers_["d3"]->CreateBaseTable("tiny", make(20)).ok());
    for (auto& [name, server] : servers_) {
      connectors_[name] = std::make_unique<DbmsConnector>(
          server, Dialect::Postgres(), &fed_, "xdb");
      dc_ptrs_[name] = connectors_[name].get();
    }
  }

  /// Annotated + finalized plan for the 3-way chain join.
  DelegationPlan MakePlan() {
    GlobalCatalog catalog(dc_ptrs_);
    Planner planner(&catalog);
    auto stmt = sql::ParseSelect(
        "SELECT b.w FROM big b, mid m, tiny t "
        "WHERE b.k = m.k AND m.k = t.k");
    EXPECT_TRUE(stmt.ok());
    auto plan = planner.Plan(**stmt);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    Annotator annotator(dc_ptrs_, &fed_.network());
    EXPECT_TRUE(annotator.Annotate(plan->get()).ok());
    auto dplan = FinalizePlan(**plan, 1);
    EXPECT_TRUE(dplan.ok());
    return *dplan;
  }

  Federation fed_;
  std::map<std::string, DatabaseServer*> servers_;
  std::map<std::string, std::unique_ptr<DbmsConnector>> connectors_;
  std::map<std::string, DbmsConnector*> dc_ptrs_;
};

TEST_F(DelegationFixture, GlobalCatalogDiscoversAllTables) {
  GlobalCatalog catalog(dc_ptrs_);
  EXPECT_EQ(catalog.LocateTable("big"), "d1");
  EXPECT_EQ(catalog.LocateTable("mid"), "d2");
  EXPECT_EQ(catalog.LocateTable("TINY"), "d3");  // case-insensitive
  EXPECT_EQ(catalog.LocateTable("ghost"), "");
}

TEST_F(DelegationFixture, GlobalCatalogMetadataIsCached) {
  GlobalCatalog catalog(dc_ptrs_);
  catalog.ResetCounters();
  ASSERT_TRUE(catalog.Resolve("", "big").ok());
  int first = catalog.metadata_roundtrips();
  EXPECT_GT(first, 0);
  ASSERT_TRUE(catalog.Resolve("", "big").ok());
  EXPECT_EQ(catalog.metadata_roundtrips(), first);  // cache hit, no refetch
}

TEST_F(DelegationFixture, GlobalCatalogRejectsWrongQualifier) {
  GlobalCatalog catalog(dc_ptrs_);
  EXPECT_TRUE(catalog.Resolve("d1", "big").ok());
  auto r = catalog.Resolve("d2", "big");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCatalogError());
}

TEST_F(DelegationFixture, ConnectorCountsRoundTrips) {
  DbmsConnector* dc = dc_ptrs_["d1"];
  dc->ResetCounters();
  (void)dc->ListTables();
  (void)dc->DescribeTable("big");
  (void)dc->FetchStats("big");
  EXPECT_EQ(dc->roundtrip_count(), 3);
  EXPECT_EQ(dc->probe_count(), 0);
}

TEST_F(DelegationFixture, ConnectorCalibrationScalesProbes) {
  PlanPtr ph = PlanNode::MakePlaceholder(
      "x", Schema({{"k", TypeId::kInt64}}), {}, 1000);
  PlanPtr join = PlanNode::MakeJoin(ph, ph->Clone(), {0}, {0}, nullptr);
  DbmsConnector* dc = dc_ptrs_["d1"];
  double base = dc->ProbeCost(*join);
  dc->set_cost_calibration(2.0);
  EXPECT_NEAR(dc->ProbeCost(*join), 2.0 * base, 1e-9);
  dc->set_cost_calibration(1.0);
}

TEST_F(DelegationFixture, DeployCreatesRelationsInTopologicalOrder) {
  DelegationPlan plan = MakePlan();
  DelegationEngine engine(dc_ptrs_);
  auto query = engine.Deploy(&plan);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  // Every task's view exists on its server until cleanup.
  for (const auto& t : plan.tasks) {
    EXPECT_TRUE(servers_[t.server]->HasRelation(t.view_name))
        << t.view_name << " @" << t.server;
  }
  // A producer's view is created before any foreign table that points to
  // it: scan the DDL log.
  const auto& log = engine.ddl_log();
  auto index_of = [&](const std::string& needle, const std::string& kind) {
    for (size_t i = 0; i < log.size(); ++i) {
      if (log[i].second.find(kind) == 0 &&
          log[i].second.find(needle) != std::string::npos) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  for (const auto& e : plan.edges) {
    const auto* producer = plan.FindTask(e.producer);
    int view_at = index_of(producer->view_name, "CREATE VIEW");
    int ft_at = index_of(producer->view_name, "CREATE FOREIGN TABLE");
    ASSERT_GE(view_at, 0);
    ASSERT_GE(ft_at, 0);
    EXPECT_LT(view_at, ft_at);
  }

  // The XDB query targets the root view.
  EXPECT_EQ(query->server, plan.root().server);
  EXPECT_NE(query->sql.find(plan.root().view_name), std::string::npos);

  // Executing it yields rows; cleanup removes everything.
  auto result = servers_[query->server]->ExecuteQuery(query->sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT((*result)->num_rows(), 0u);
  ASSERT_TRUE(engine.Cleanup().ok());
  for (auto& [name, server] : servers_) {
    EXPECT_TRUE(server->TransientRelations().empty()) << name;
  }
}

TEST_F(DelegationFixture, DeployFillsPublishedColumnNames) {
  DelegationPlan plan = MakePlan();
  DelegationEngine engine(dc_ptrs_);
  ASSERT_TRUE(engine.Deploy(&plan).ok());
  for (const auto& t : plan.tasks) {
    EXPECT_EQ(t.column_names.size(), t.expr->output_schema.num_fields());
  }
  (void)engine.Cleanup();
}

TEST_F(DelegationFixture, CleanupIsIdempotent) {
  DelegationPlan plan = MakePlan();
  DelegationEngine engine(dc_ptrs_);
  ASSERT_TRUE(engine.Deploy(&plan).ok());
  EXPECT_TRUE(engine.Cleanup().ok());
  EXPECT_TRUE(engine.Cleanup().ok());  // nothing left; still OK
}

TEST_F(DelegationFixture, ToDotRendersGraphviz) {
  DelegationPlan plan = MakePlan();
  std::string dot = plan.ToDot();
  EXPECT_NE(dot.find("digraph delegation"), std::string::npos);
  for (const auto& t : plan.tasks) {
    EXPECT_NE(dot.find("t" + std::to_string(t.id) + " [label="),
              std::string::npos);
  }
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST_F(DelegationFixture, PlanFromXdbReportExposesDot) {
  XdbSystem xdb(&fed_);
  auto r = xdb.Query("SELECT b.w FROM big b, tiny t WHERE b.k = t.k");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->plan.ToDot().find("digraph"), std::string::npos);
}

}  // namespace
}  // namespace xdb
