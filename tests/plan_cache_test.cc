// Delegation-plan cache correctness (ISSUE 6 tentpole): hit/miss/LRU
// mechanics of the cache itself, and the end-to-end contract on XdbSystem —
// hits skip parse/optimize/annotate but return bit-identical results, and
// every placement-relevant change (catalog, statistics, failover
// replanning) invalidates.

#include <gtest/gtest.h>

#include "src/dbms/federation.h"
#include "src/dbms/server.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/testing/fault_injector.h"
#include "src/xdb/plan_cache.h"
#include "src/xdb/xdb.h"

namespace xdb {
namespace {

constexpr char kJoinSql[] =
    "SELECT t1.b, t2.c FROM t1, t2 WHERE t1.a = t2.a";

void Populate(Federation* fed) {
  fed->SetNetwork(Network::Lan({"d1", "d2"}));
  DatabaseServer* d1 = fed->AddServer("d1", EngineProfile::Postgres());
  DatabaseServer* d2 = fed->AddServer("d2", EngineProfile::Postgres());
  auto t = std::make_shared<Table>(
      Schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}}));
  auto u = std::make_shared<Table>(
      Schema({{"a", TypeId::kInt64}, {"c", TypeId::kInt64}}));
  for (int i = 0; i < 10; ++i) {
    t->AppendRow({Value::Int64(i), Value::Int64(i)});
    u->AppendRow({Value::Int64(i), Value::Int64(i * 10)});
  }
  ASSERT_TRUE(d1->CreateBaseTable("t1", t).ok());
  ASSERT_TRUE(d2->CreateBaseTable("t2", u).ok());
}

// --- NormalizeSql ---

TEST(NormalizeSql, CollapsesCaseAndWhitespace) {
  EXPECT_EQ(NormalizeSql("SELECT  a\n FROM t ;"), "select a from t");
  EXPECT_EQ(NormalizeSql("select a from t"), "select a from t");
  EXPECT_EQ(NormalizeSql("  SELECT A FROM T  "), "select a from t");
}

TEST(NormalizeSql, PreservesStringLiterals) {
  EXPECT_EQ(NormalizeSql("SELECT 'FOO  Bar' FROM t"),
            "select 'FOO  Bar' from t");
}

TEST(NormalizeSql, DistinctQueriesStayDistinct) {
  EXPECT_NE(NormalizeSql("SELECT a FROM t"), NormalizeSql("SELECT b FROM t"));
}

// --- DelegationPlanCache unit ---

PlanPtr DummyPlan(const std::string& table) {
  TableStats stats;
  stats.row_count = 1;
  return PlanNode::MakeScan("d1", table, table,
                            Schema({{"a", TypeId::kInt64}}), stats);
}

TEST(DelegationPlanCache, HitReturnsCloneNotMaster) {
  DelegationPlanCache cache(4);
  cache.Insert("k", "fp", DummyPlan("t"));
  PlanPtr a = cache.Lookup("k", "fp");
  PlanPtr b = cache.Lookup("k", "fp");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get());  // clones: callers may mutate freely
  EXPECT_EQ(a->table, "t");
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 0);
}

TEST(DelegationPlanCache, MissOnUnknownKey) {
  DelegationPlanCache cache(4);
  EXPECT_EQ(cache.Lookup("nope", "fp"), nullptr);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(DelegationPlanCache, FingerprintMismatchRetiresEntry) {
  DelegationPlanCache cache(4);
  cache.Insert("k", "fp1", DummyPlan("t"));
  EXPECT_EQ(cache.Lookup("k", "fp2"), nullptr);  // stale -> retired
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.size(), 0u);
  // Even the old fingerprint misses now: the entry is gone, not shadowed.
  EXPECT_EQ(cache.Lookup("k", "fp1"), nullptr);
  EXPECT_EQ(cache.misses(), 2);
}

TEST(DelegationPlanCache, LruEvictsOldest) {
  DelegationPlanCache cache(2);
  cache.Insert("a", "fp", DummyPlan("ta"));
  cache.Insert("b", "fp", DummyPlan("tb"));
  ASSERT_NE(cache.Lookup("a", "fp"), nullptr);  // refresh a: b is now LRU
  EXPECT_EQ(cache.Insert("c", "fp", DummyPlan("tc")), 1);
  EXPECT_EQ(cache.Lookup("b", "fp"), nullptr);
  ASSERT_NE(cache.Lookup("a", "fp"), nullptr);
  ASSERT_NE(cache.Lookup("c", "fp"), nullptr);
  EXPECT_EQ(cache.evictions(), 1);
}

TEST(DelegationPlanCache, ClearCountsEvictions) {
  DelegationPlanCache cache(4);
  cache.Insert("a", "fp", DummyPlan("ta"));
  cache.Insert("b", "fp", DummyPlan("tb"));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.evictions(), 2);
}

// --- End-to-end on XdbSystem ---

class PlanCacheE2E : public ::testing::Test {
 protected:
  void SetUp() override { Populate(&fed_); }

  XdbOptions CachedOptions() {
    XdbOptions opts;
    opts.plan_cache_capacity = 8;
    return opts;
  }

  Federation fed_;
};

TEST_F(PlanCacheE2E, DisabledByDefault) {
  XdbSystem xdb(&fed_);
  EXPECT_EQ(xdb.plan_cache(), nullptr);
  auto r1 = xdb.Query(kJoinSql);
  auto r2 = xdb.Query(kJoinSql);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r1->plan_cache_hit);
  EXPECT_FALSE(r2->plan_cache_hit);
}

TEST_F(PlanCacheE2E, HitSkipsPlanningAndMatchesColdResult) {
  XdbSystem xdb(&fed_, CachedOptions());
  auto cold = xdb.Query(kJoinSql);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->plan_cache_hit);
  EXPECT_GT(cold->phases.prep, 0.0);
  EXPECT_GT(cold->phases.lopt, 0.0);

  auto warm = xdb.Query(kJoinSql);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  // The hit path genuinely skips parse/prepare/optimize/annotate.
  EXPECT_EQ(warm->phases.prep, 0.0);
  EXPECT_EQ(warm->phases.lopt, 0.0);
  EXPECT_EQ(warm->phases.ann, 0.0);
  EXPECT_EQ(warm->metadata_roundtrips, 0);
  EXPECT_EQ(warm->consultations, 0);
  // Bit-identical result and execution to the cold-planned run.
  EXPECT_EQ(warm->result->ToDisplayString(100),
            cold->result->ToDisplayString(100));
  EXPECT_EQ(warm->phases.exec, cold->phases.exec);
  EXPECT_EQ(warm->xdb_query.server, cold->xdb_query.server);

  EXPECT_EQ(xdb.plan_cache()->hits(), 1);
  EXPECT_EQ(xdb.plan_cache()->misses(), 1);
}

TEST_F(PlanCacheE2E, NormalizedVariantsShareOneEntry) {
  XdbSystem xdb(&fed_, CachedOptions());
  ASSERT_TRUE(xdb.Query(kJoinSql).ok());
  auto r = xdb.Query(
      "select  t1.b,  t2.c  FROM t1, t2 WHERE t1.a = t2.a ;");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->plan_cache_hit);
  EXPECT_EQ(xdb.plan_cache()->size(), 1u);
}

TEST_F(PlanCacheE2E, HitHasNoOptimizeSpan) {
  SpanRecorder spans;
  fed_.SetSpanRecorder(&spans);
  XdbSystem xdb(&fed_, CachedOptions());
  ASSERT_TRUE(xdb.Query(kJoinSql).ok());

  auto has_span = [&](const char* name) {
    for (const auto& s : spans.spans()) {
      if (s.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_span("logical-optimize"));
  EXPECT_TRUE(has_span("prepare"));
  EXPECT_TRUE(has_span("annotate"));

  spans.Clear();
  ASSERT_TRUE(xdb.Query(kJoinSql).ok());
  EXPECT_FALSE(has_span("logical-optimize"));
  EXPECT_FALSE(has_span("prepare"));
  EXPECT_FALSE(has_span("annotate"));
  EXPECT_TRUE(has_span("plan-cache-hit"));
  fed_.SetSpanRecorder(nullptr);
}

TEST_F(PlanCacheE2E, CatalogInvalidationForcesMiss) {
  XdbSystem xdb(&fed_, CachedOptions());
  ASSERT_TRUE(xdb.Query(kJoinSql).ok());
  xdb.catalog().InvalidateTable("t1");
  auto r = xdb.Query(kJoinSql);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->plan_cache_hit);
  // The stale entry was retired on lookup, then replaced by the re-planned
  // entry — which hits again.
  EXPECT_GE(xdb.plan_cache()->evictions(), 1);
  auto r2 = xdb.Query(kJoinSql);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->plan_cache_hit);
}

TEST_F(PlanCacheE2E, StatsInvalidationForcesMiss) {
  XdbSystem xdb(&fed_, CachedOptions());
  ASSERT_TRUE(xdb.Query(kJoinSql).ok());
  xdb.catalog().InvalidateStats("t2");
  auto r = xdb.Query(kJoinSql);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->plan_cache_hit);
}

TEST_F(PlanCacheE2E, FailoverReplanningBumpsEpochAndInvalidates) {
  FaultInjector injector(7);
  fed_.SetFaultInjector(&injector);
  XdbSystem xdb(&fed_, CachedOptions());

  auto probe = xdb.Query(kJoinSql);
  ASSERT_TRUE(probe.ok());
  const std::string old_root = probe->xdb_query.server;
  const int64_t epoch0 = xdb.placement_epoch();

  // The old root refuses client queries: the next run replans to the
  // other node...
  FaultSpec spec;
  spec.server = old_root;
  spec.op = FaultOp::kQuery;
  spec.kind = FaultKind::kTransientError;
  int fault_id = injector.AddFault(spec);

  auto r = xdb.Query(kJoinSql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->trace.recovery_action, "replanned");
  // ...even though its cache lookup hit (the cached plan routed through
  // the now-dead root, which is exactly why the epoch must advance).
  EXPECT_GT(xdb.placement_epoch(), epoch0);

  // With the fault removed, the pre-failover entry must NOT be served:
  // the epoch change retires it, and the fresh plan misses then refills.
  injector.RemoveFault(fault_id);
  auto r2 = xdb.Query(kJoinSql);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->plan_cache_hit);
  auto r3 = xdb.Query(kJoinSql);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3->plan_cache_hit);
  EXPECT_EQ(r3->result->ToDisplayString(100),
            r2->result->ToDisplayString(100));
  fed_.SetFaultInjector(nullptr);
}

TEST_F(PlanCacheE2E, MetricsCountersExported) {
  MetricsRegistry metrics;
  fed_.SetMetricsRegistry(&metrics);
  XdbSystem xdb(&fed_, CachedOptions());
  ASSERT_TRUE(xdb.Query(kJoinSql).ok());
  ASSERT_TRUE(xdb.Query(kJoinSql).ok());
  EXPECT_EQ(metrics.GetCounter("xdb_plan_cache_misses_total")->Value(), 1.0);
  EXPECT_EQ(metrics.GetCounter("xdb_plan_cache_hits_total")->Value(), 1.0);
  fed_.SetMetricsRegistry(nullptr);
}

TEST_F(PlanCacheE2E, LruCapacityOneStillCorrect) {
  XdbOptions opts;
  opts.plan_cache_capacity = 1;
  XdbSystem xdb(&fed_, opts);
  const char* kOther = "SELECT t1.a, t1.b FROM t1";
  ASSERT_TRUE(xdb.Query(kJoinSql).ok());
  ASSERT_TRUE(xdb.Query(kOther).ok());  // evicts the join plan
  auto r = xdb.Query(kJoinSql);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->plan_cache_hit);
  EXPECT_GE(xdb.plan_cache()->evictions(), 1);
  EXPECT_EQ(xdb.plan_cache()->size(), 1u);
}

}  // namespace
}  // namespace xdb
