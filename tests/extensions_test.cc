// Tests for the two future-work extensions the paper calls out:
// bushy join trees (footnote 5) and topology-constrained placement
// (Section IV-B's "constraining the possible values of set A").

#include <gtest/gtest.h>

#include <functional>

#include "src/dbms/server.h"
#include "src/tpch/distributions.h"
#include "src/tpch/queries.h"
#include "src/xdb/xdb.h"

namespace xdb {
namespace {

int MaxLeftDepth(const PlanNode& node) {
  if (node.kind == PlanKind::kJoin) {
    // A bushy node has a join on its right side.
    std::function<bool(const PlanNode&)> has_join =
        [&](const PlanNode& n) -> bool {
      if (n.kind == PlanKind::kJoin) return true;
      for (const auto& c : n.children) {
        if (has_join(*c)) return true;
      }
      return false;
    };
    if (has_join(*node.children[1])) return 1;
  }
  int deepest = 0;
  for (const auto& c : node.children) {
    deepest = std::max(deepest, MaxLeftDepth(*c));
  }
  return deepest;
}

TEST(BushyJoinsTest, ResultsMatchLeftDeep) {
  auto fed = tpch::BuildTpchFederation(0.002, tpch::TD1());
  XdbSystem left_deep(fed.get());
  XdbOptions bushy_opts;
  bushy_opts.planner.bushy_joins = true;
  auto fed2 = tpch::BuildTpchFederation(0.002, tpch::TD1());
  XdbSystem bushy(fed2.get(), bushy_opts);

  for (const auto& q : tpch::EvaluationQueries()) {
    auto a = left_deep.Query(q.sql);
    auto b = bushy.Query(q.sql);
    ASSERT_TRUE(a.ok()) << q.id << a.status().ToString();
    ASSERT_TRUE(b.ok()) << q.id << b.status().ToString();
    EXPECT_EQ(a->result->num_rows(), b->result->num_rows()) << q.id;
  }
}

TEST(BushyJoinsTest, BushyShapeAppearsWhenProfitable) {
  // Two independent filtered pairs joined at the top: the bushy optimizer
  // should join within each pair first.
  Federation fed;
  fed.SetNetwork(Network::Lan({"s1", "s2"}));
  auto* s1 = fed.AddServer("s1", EngineProfile::Postgres());
  auto* s2 = fed.AddServer("s2", EngineProfile::Postgres());
  auto make = [](int rows, int ndv) {
    auto t = std::make_shared<Table>(
        Schema({{"k", TypeId::kInt64}, {"w", TypeId::kInt64}}));
    for (int i = 0; i < rows; ++i) {
      t->AppendRow({Value::Int64(i % ndv), Value::Int64(i)});
    }
    return t;
  };
  ASSERT_TRUE(s1->CreateBaseTable("a1", make(1000, 100)).ok());
  ASSERT_TRUE(s1->CreateBaseTable("a2", make(1000, 100)).ok());
  ASSERT_TRUE(s2->CreateBaseTable("b1", make(1000, 100)).ok());
  ASSERT_TRUE(s2->CreateBaseTable("b2", make(1000, 100)).ok());

  const char* sql =
      "SELECT COUNT(*) AS n FROM a1, a2, b1, b2 "
      "WHERE a1.k = a2.k AND b1.k = b2.k AND a1.w = b1.w";

  XdbOptions opts;
  opts.planner.bushy_joins = true;
  XdbSystem bushy(&fed, opts);
  auto r = bushy.Query(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The co-located pairs form tasks on their own servers — at least two
  // tasks, and the root joins two *composite* inputs (bushy).
  EXPECT_GE(r->plan.tasks.size(), 2u);
  bool any_bushy = false;
  for (const auto& t : r->plan.tasks) {
    if (MaxLeftDepth(*t.expr) > 0) any_bushy = true;
  }
  EXPECT_TRUE(any_bushy);

  // And it agrees with the left-deep result.
  Federation fed2;
  auto* mono = fed2.AddServer("mono", EngineProfile::Postgres());
  ASSERT_TRUE(mono->CreateBaseTable("a1", make(1000, 100)).ok());
  ASSERT_TRUE(mono->CreateBaseTable("a2", make(1000, 100)).ok());
  ASSERT_TRUE(mono->CreateBaseTable("b1", make(1000, 100)).ok());
  ASSERT_TRUE(mono->CreateBaseTable("b2", make(1000, 100)).ok());
  auto want = mono->ExecuteQuery(sql);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(r->result->row(0)[0].int64_value(),
            (*want)->row(0)[0].int64_value());
}

TEST(TopologyConstraintTest, ReachabilityApi) {
  Network net = Network::Lan({"a", "b", "c"});
  EXPECT_TRUE(net.IsReachable("a", "b"));
  net.BlockLink("a", "b");
  EXPECT_FALSE(net.IsReachable("a", "b"));
  EXPECT_FALSE(net.IsReachable("b", "a"));
  EXPECT_TRUE(net.IsReachable("a", "c"));
  EXPECT_TRUE(net.IsReachable("a", "a"));
  net.UnblockLink("b", "a");
  EXPECT_TRUE(net.IsReachable("a", "b"));
}

class ConstrainedTopologyFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    fed_.SetNetwork(Network::Lan({"d1", "d2"}));
    auto* d1 = fed_.AddServer("d1", EngineProfile::Postgres());
    auto* d2 = fed_.AddServer("d2", EngineProfile::Postgres());
    auto make = [] {
      auto t = std::make_shared<Table>(
          Schema({{"k", TypeId::kInt64}, {"w", TypeId::kInt64}}));
      for (int i = 0; i < 100; ++i) {
        t->AppendRow({Value::Int64(i % 10), Value::Int64(i)});
      }
      return t;
    };
    ASSERT_TRUE(d1->CreateBaseTable("t1", make()).ok());
    ASSERT_TRUE(d2->CreateBaseTable("t2", make()).ok());
  }

  Federation fed_;
};

TEST_F(ConstrainedTopologyFixture, BlockedPairFailsWithClearError) {
  fed_.network().BlockLink("d1", "d2");
  XdbSystem xdb(&fed_);
  auto r = xdb.Query(
      "SELECT t1.w FROM t1, t2 WHERE t1.k = t2.k");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNetworkError);
  EXPECT_NE(r.status().message().find("topology"), std::string::npos);
}

TEST_F(ConstrainedTopologyFixture, UnblockedPairWorksAgain) {
  fed_.network().BlockLink("d1", "d2");
  fed_.network().UnblockLink("d1", "d2");
  XdbSystem xdb(&fed_);
  auto r = xdb.Query("SELECT t1.w FROM t1, t2 WHERE t1.k = t2.k");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST_F(ConstrainedTopologyFixture, ExecutionTimeFetchAlsoGuarded) {
  // Even a hand-wired foreign table cannot cross a blocked link.
  auto* d1 = fed_.GetServer("d1");
  ASSERT_TRUE(d1->ExecuteDdl("CREATE FOREIGN TABLE t2 SERVER d2").ok());
  fed_.network().BlockLink("d1", "d2");
  auto r = d1->ExecuteQuery("SELECT * FROM t2");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNetworkError);
}

TEST(BushyJoinsTest, RandomizedAgreementWithLeftDeep) {
  // Property: for chain joins of 3-6 synthetic tables, bushy and left-deep
  // plans always produce identical aggregates.
  for (uint32_t seed = 1; seed <= 8; ++seed) {
    Federation fed;
    fed.SetNetwork(Network::Lan({"x", "y"}));
    auto* x = fed.AddServer("x", EngineProfile::Postgres());
    auto* y = fed.AddServer("y", EngineProfile::Postgres());
    int ntables = 3 + static_cast<int>(seed % 4);
    std::string sql = "SELECT COUNT(*) AS n, SUM(a0.w) AS s FROM ";
    for (int t = 0; t < ntables; ++t) {
      auto table = std::make_shared<Table>(
          Schema({{"k", TypeId::kInt64}, {"w", TypeId::kInt64}}));
      uint64_t state = seed * 77 + static_cast<uint64_t>(t);
      for (int i = 0; i < 60; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        table->AppendRow({Value::Int64(static_cast<int64_t>(state % 12)),
                          Value::Int64(static_cast<int64_t>(state % 97))});
      }
      ASSERT_TRUE((t % 2 ? x : y)
                      ->CreateBaseTable("r" + std::to_string(t), table)
                      .ok());
      sql += (t ? ", r" : "r") + std::to_string(t) + " a" +
             std::to_string(t);
    }
    sql += " WHERE ";
    for (int t = 1; t < ntables; ++t) {
      if (t > 1) sql += " AND ";
      sql += "a" + std::to_string(t - 1) + ".k = a" + std::to_string(t) +
             ".k";
    }
    XdbSystem left_deep(&fed);
    XdbOptions opts;
    opts.planner.bushy_joins = true;
    XdbSystem bushy(&fed, opts);
    auto a = left_deep.Query(sql);
    auto b = bushy.Query(sql);
    ASSERT_TRUE(a.ok()) << sql << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << b.status().ToString();
    EXPECT_EQ(a->result->row(0)[0].int64_value(),
              b->result->row(0)[0].int64_value())
        << "seed " << seed;
    EXPECT_EQ(a->result->row(0)[1].Compare(b->result->row(0)[1]), 0)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace xdb
