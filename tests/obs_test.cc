// End-to-end query observability: span trees over the delegation pipeline,
// per-operator profiling (EXPLAIN ANALYZE at the server and federation
// level), the metrics registry, and the JSON exporters. The standing
// invariant everywhere: attached observers never change modelled seconds,
// transfer bytes, or result rows — the fault-free discipline applied to
// observability.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/dbms/server.h"
#include "src/exec/profile.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/testing/fault_injector.h"
#include "src/xdb/xdb.h"

namespace xdb {
namespace {

constexpr char kJoinSql[] =
    "SELECT t1.b, t2.c FROM t1, t2 WHERE t1.a = t2.a";

/// Two Postgres nodes, t1(a,b) on d1 and t2(a,c) on d2, 10 matching keys.
void Populate(Federation* fed) {
  fed->SetNetwork(Network::Lan({"d1", "d2"}));
  DatabaseServer* d1 = fed->AddServer("d1", EngineProfile::Postgres());
  DatabaseServer* d2 = fed->AddServer("d2", EngineProfile::Postgres());
  auto t = std::make_shared<Table>(
      Schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}}));
  auto u = std::make_shared<Table>(
      Schema({{"a", TypeId::kInt64}, {"c", TypeId::kInt64}}));
  for (int i = 0; i < 10; ++i) {
    t->AppendRow({Value::Int64(i), Value::Int64(i)});
    u->AppendRow({Value::Int64(i), Value::Int64(i * 10)});
  }
  ASSERT_TRUE(d1->CreateBaseTable("t1", t).ok());
  ASSERT_TRUE(d2->CreateBaseTable("t2", u).ok());
}

const Span* FindSpan(const std::vector<Span>& spans,
                     const std::string& name) {
  for (const auto& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string Concatenate(const Table& table) {
  std::string all;
  for (const auto& row : table.rows()) all += row[0].string_value() + "\n";
  return all;
}

// --------------------------------------------------------------------------
// Span recorder mechanics
// --------------------------------------------------------------------------

TEST(SpanRecorderTest, NestingEstablishesParentLinks) {
  SpanRecorder rec;
  int64_t root = rec.StartSpan("query");
  int64_t child = rec.StartSpan("deploy");
  EXPECT_EQ(rec.current(), child);
  rec.EndSpan(child);
  int64_t sibling = rec.StartSpan("execute");
  rec.EndSpan(sibling);
  rec.EndSpan(root);
  EXPECT_EQ(rec.current(), -1);

  ASSERT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.spans()[0].parent_id, -1);
  EXPECT_EQ(rec.spans()[1].parent_id, root);
  EXPECT_EQ(rec.spans()[2].parent_id, root);

  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
}

TEST(SpanRecorderTest, FinalizeTimelineLaysChildrenSequentially) {
  SpanRecorder rec;
  int64_t root = rec.StartSpan("query");
  int64_t a = rec.StartSpan("a");
  rec.mutable_span(a)->duration_seconds = 2.0;
  rec.EndSpan(a);
  int64_t b = rec.StartSpan("b");
  rec.mutable_span(b)->duration_seconds = 3.0;
  rec.EndSpan(b);
  rec.EndSpan(root);

  rec.FinalizeTimeline();
  const Span& rs = rec.spans()[0];
  const Span& as = rec.spans()[1];
  const Span& bs = rec.spans()[2];
  // Children are sequential within the parent; the parent covers them.
  EXPECT_DOUBLE_EQ(as.start_seconds, rs.start_seconds);
  EXPECT_DOUBLE_EQ(as.finish_seconds - as.start_seconds, 2.0);
  EXPECT_DOUBLE_EQ(bs.start_seconds, as.finish_seconds);
  EXPECT_DOUBLE_EQ(bs.finish_seconds - bs.start_seconds, 3.0);
  EXPECT_DOUBLE_EQ(rs.finish_seconds - rs.start_seconds, 5.0);

  // Idempotent: a second call changes nothing.
  std::vector<Span> before = rec.spans();
  rec.FinalizeTimeline();
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(rec.spans()[i].start_seconds,
                     before[i].start_seconds);
    EXPECT_DOUBLE_EQ(rec.spans()[i].finish_seconds,
                     before[i].finish_seconds);
  }
}

TEST(SpanRecorderTest, ParentExtentIsMaxOfOwnDurationAndChildren) {
  SpanRecorder rec;
  int64_t root = rec.StartSpan("execute");
  rec.mutable_span(root)->duration_seconds = 10.0;  // own modelled cost
  int64_t child = rec.StartSpan("fetch");
  rec.mutable_span(child)->duration_seconds = 1.0;
  rec.EndSpan(child);
  rec.EndSpan(root);
  rec.FinalizeTimeline();
  // Own duration dominates the child sum.
  EXPECT_DOUBLE_EQ(rec.spans()[0].finish_seconds -
                       rec.spans()[0].start_seconds,
                   10.0);
}

TEST(SpanGuardTest, NullRecorderIsANoop) {
  SpanGuard guard(nullptr, "anything");
  EXPECT_FALSE(guard.active());
  EXPECT_EQ(guard.span(), nullptr);
}

TEST(SpanTest, TagsRoundTrip) {
  Span s;
  s.Tag("server", std::string("d1"));
  s.Tag("rows", static_cast<int64_t>(42));
  s.Tag("bytes", 10.5);
  ASSERT_NE(s.FindTag("server"), nullptr);
  EXPECT_EQ(*s.FindTag("server"), "d1");
  EXPECT_EQ(*s.FindTag("rows"), "42");
  EXPECT_EQ(s.FindTag("missing"), nullptr);
}

TEST(ChromeTraceTest, ExportsCompleteEventsInMicroseconds) {
  SpanRecorder rec;
  int64_t root = rec.StartSpan("query");
  int64_t child = rec.StartSpan("fetch t2");
  Span* sp = rec.mutable_span(child);
  sp->duration_seconds = 0.25;
  sp->Tag("server", std::string("d2"));
  rec.EndSpan(child);
  rec.EndSpan(root);
  rec.FinalizeTimeline();

  std::string json = SpansToChromeTrace(rec.spans());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fetch t2\""), std::string::npos);
  // 0.25 modelled seconds -> 250000 microseconds of trace time.
  EXPECT_NE(json.find("250000"), std::string::npos);
  EXPECT_NE(json.find("\"server\":\"d2\""), std::string::npos);
}

// --------------------------------------------------------------------------
// Metrics registry
// --------------------------------------------------------------------------

TEST(MetricsTest, CounterGaugeHistogramSemantics) {
  Counter c;
  c.Increment();
  c.Increment(2.5);
  EXPECT_DOUBLE_EQ(c.Value(), 3.5);
  c.Reset();
  EXPECT_DOUBLE_EQ(c.Value(), 0.0);

  Gauge g;
  g.Set(7);
  g.Add(-2);
  EXPECT_DOUBLE_EQ(g.Value(), 5.0);

  Histogram h({10, 100, 1000});
  h.Observe(5);
  h.Observe(50);
  h.Observe(50);
  h.Observe(5000);  // overflow bucket
  EXPECT_EQ(h.BucketCount(0), 1);
  EXPECT_EQ(h.BucketCount(1), 2);
  EXPECT_EQ(h.BucketCount(2), 0);
  EXPECT_EQ(h.BucketCount(3), 1);
  EXPECT_EQ(h.Count(), 4);
  EXPECT_DOUBLE_EQ(h.Sum(), 5105.0);
}

TEST(MetricsTest, RegistryIsIdempotentAndExposesPrometheusText) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("xdb_test_total", "a test counter");
  EXPECT_EQ(reg.GetCounter("xdb_test_total"), c);
  c->Increment(3);
  reg.GetGauge("xdb_test_gauge")->Set(1.5);
  Histogram* h = reg.GetHistogram("xdb_test_bytes", {10, 100});
  h->Observe(42);

  std::string text = reg.TextExposition();
  EXPECT_NE(text.find("# HELP xdb_test_total a test counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE xdb_test_total counter"), std::string::npos);
  EXPECT_NE(text.find("xdb_test_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE xdb_test_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE xdb_test_bytes histogram"),
            std::string::npos);
  EXPECT_NE(text.find("xdb_test_bytes_bucket{le=\"100\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("xdb_test_bytes_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("xdb_test_bytes_count 1"), std::string::npos);

  reg.ResetAll();
  EXPECT_DOUBLE_EQ(c->Value(), 0.0);
  EXPECT_EQ(h->Count(), 0);
  // Metrics stay registered after a reset.
  EXPECT_EQ(reg.GetCounter("xdb_test_total"), c);
}

// --------------------------------------------------------------------------
// Operator profiling and EXPLAIN ANALYZE
// --------------------------------------------------------------------------

TEST(OperatorProfilerTest, RecordsPreOrderWithDepths) {
  OperatorProfiler prof;
  Schema s({{"a", TypeId::kInt64}});
  PlanPtr scan = PlanNode::MakeScan("d1", "t", "t", s, {});
  size_t root = prof.Enter(*scan);
  size_t child = prof.Enter(*scan);
  ASSERT_NE(prof.current(), nullptr);
  prof.current()->input_rows = 9;
  prof.Exit(child);
  prof.stats(root).output_rows = 5;
  prof.Exit(root);

  ASSERT_EQ(prof.records().size(), 2u);
  EXPECT_EQ(prof.records()[0].depth, 0);
  EXPECT_EQ(prof.records()[1].depth, 1);
  EXPECT_DOUBLE_EQ(prof.records()[1].input_rows, 9);
  EXPECT_DOUBLE_EQ(prof.records()[0].output_rows, 5);
  EXPECT_EQ(prof.current(), nullptr);

  prof.Clear();
  EXPECT_TRUE(prof.records().empty());
}

TEST(ExplainAnalyzeTest, ServerStatementAnnotatesThePlanWithActuals) {
  Federation fed;
  Populate(&fed);
  DatabaseServer* d1 = fed.GetServer("d1");

  auto r = d1->ExecuteSql(
      "EXPLAIN ANALYZE SELECT t1.b FROM t1 WHERE t1.a < 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string all = Concatenate(**r);
  // The filter line carries observed input/output rows and selectivity.
  EXPECT_NE(all.find("in=10"), std::string::npos);
  EXPECT_NE(all.find("rows=5"), std::string::npos);
  EXPECT_NE(all.find("sel=50.0%"), std::string::npos);
  EXPECT_NE(all.find("modelled="), std::string::npos);
  EXPECT_NE(all.find("(actual rows=5, modelled compute="),
            std::string::npos);

  // The profiler detaches afterwards: plain queries still run unprofiled.
  EXPECT_EQ(d1->profiler(), nullptr);
  auto plain = d1->ExecuteSql("SELECT t1.b FROM t1 WHERE t1.a < 5");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ((*plain)->num_rows(), 5u);
}

TEST(ExplainAnalyzeTest, FederationLevelRendersPhasesAndPerServerTrees) {
  Federation fed;
  Populate(&fed);
  XdbSystem xdb(&fed);

  auto r = xdb.ExplainAnalyze(kJoinSql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string all = Concatenate(**r);
  EXPECT_NE(all.find("phases: prep="), std::string::npos);
  EXPECT_NE(all.find("transfers: "), std::string::npos);
  EXPECT_NE(all.find("useful="), std::string::npos);
  EXPECT_NE(all.find("wasted=0 B"), std::string::npos);
  // Both component DBMSes executed something and report their trees.
  EXPECT_NE(all.find("server d1 (postgres):"), std::string::npos);
  EXPECT_NE(all.find("server d2 (postgres):"), std::string::npos);
  EXPECT_NE(all.find("Scan"), std::string::npos);

  // Profilers are detached again; a later query is bit-identical to one on
  // a never-profiled system.
  for (const auto& name : fed.ServerNames()) {
    EXPECT_EQ(fed.GetServer(name)->profiler(), nullptr);
  }
  auto after = xdb.Query(kJoinSql);
  Federation plain;
  Populate(&plain);
  XdbSystem fresh(&plain);
  auto baseline = fresh.Query(kJoinSql);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(baseline.ok());
  EXPECT_DOUBLE_EQ(after->phases.exec, baseline->phases.exec);
  EXPECT_DOUBLE_EQ(after->transferred_bytes(),
                   baseline->transferred_bytes());
}

// --------------------------------------------------------------------------
// End-to-end span trees over the delegation pipeline
// --------------------------------------------------------------------------

TEST(QuerySpansTest, PipelinePhasesAndFetchesAppearInTheTree) {
  Federation fed;
  Populate(&fed);
  XdbSystem xdb(&fed);
  SpanRecorder rec;
  fed.SetSpanRecorder(&rec);
  auto r = xdb.Query(kJoinSql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const std::vector<Span>& spans = rec.spans();
  const Span* query = FindSpan(spans, "query 1");
  ASSERT_NE(query, nullptr);
  EXPECT_EQ(query->parent_id, -1);
  ASSERT_NE(query->FindTag("sql"), nullptr);

  for (const char* name :
       {"prepare", "logical-optimize", "round 0", "annotate", "deploy",
        "execute", "cleanup"}) {
    EXPECT_NE(FindSpan(spans, name), nullptr) << name;
  }

  // Deploy emitted one child span per delegation task.
  const Span* deploy = FindSpan(spans, "deploy");
  int tasks = 0;
  for (const auto& s : spans) {
    if (s.parent_id == deploy->id) ++tasks;
  }
  EXPECT_EQ(tasks, static_cast<int>(r->plan.tasks.size()));

  // Every completed transfer has a tagged fetch span with its modelled wire
  // seconds attached; their sum matches the timing model exactly.
  double span_seconds = 0;
  int fetch_spans = 0;
  for (const auto& s : spans) {
    if (s.record_id < 0) continue;
    ++fetch_spans;
    ASSERT_NE(s.FindTag("rows"), nullptr);
    ASSERT_NE(s.FindTag("bytes"), nullptr);
    EXPECT_GT(s.duration_seconds, 0.0);
    span_seconds += s.duration_seconds;
  }
  EXPECT_EQ(fetch_spans, static_cast<int>(r->trace.transfers.size()));
  TimingModel model(&fed, TimingOptions{1.0});
  double model_seconds = 0;
  for (const auto& t : r->trace.transfers) {
    model_seconds += model.TransferSeconds(t);
  }
  EXPECT_NEAR(span_seconds, model_seconds, 1e-12);

  // Query() finalized the timeline on exit: the root covers every span.
  for (const auto& s : spans) {
    EXPECT_GE(s.finish_seconds, s.start_seconds);
    EXPECT_LE(s.finish_seconds, query->finish_seconds + 1e-9);
  }
  fed.SetSpanRecorder(nullptr);
}

TEST(QuerySpansTest, AttachedObserversAreBitIdentical) {
  Federation plain;
  Populate(&plain);
  Federation wired;
  Populate(&wired);
  SpanRecorder rec;
  MetricsRegistry reg;
  wired.SetSpanRecorder(&rec);
  wired.SetMetricsRegistry(&reg);

  XdbSystem a(&plain);
  XdbSystem b(&wired);
  auto ra = a.Query(kJoinSql);
  auto rb = b.Query(kJoinSql);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());

  EXPECT_DOUBLE_EQ(ra->phases.prep, rb->phases.prep);
  EXPECT_DOUBLE_EQ(ra->phases.lopt, rb->phases.lopt);
  EXPECT_DOUBLE_EQ(ra->phases.ann, rb->phases.ann);
  EXPECT_DOUBLE_EQ(ra->phases.exec, rb->phases.exec);
  EXPECT_DOUBLE_EQ(ra->exec_timing.total, rb->exec_timing.total);
  EXPECT_DOUBLE_EQ(ra->transferred_bytes(), rb->transferred_bytes());
  EXPECT_EQ(ra->ddl_statements, rb->ddl_statements);
  EXPECT_EQ(ra->result->num_rows(), rb->result->num_rows());
  EXPECT_GT(rec.size(), 0u);
}

TEST(QuerySpansTest, FederationMetricsMatchTheRunTrace) {
  Federation fed;
  Populate(&fed);
  MetricsRegistry reg;
  fed.SetMetricsRegistry(&reg);
  XdbSystem xdb(&fed);
  auto r = xdb.Query(kJoinSql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_DOUBLE_EQ(reg.GetCounter("xdb_federation_fetches_total")->Value(),
                   static_cast<double>(r->trace.transfers.size()));
  EXPECT_DOUBLE_EQ(
      reg.GetCounter("xdb_federation_useful_bytes_total")->Value(),
      r->trace.UsefulTransferredBytes());
  EXPECT_DOUBLE_EQ(
      reg.GetCounter("xdb_federation_wasted_bytes_total")->Value(),
      0.0);
  EXPECT_DOUBLE_EQ(
      reg.GetCounter("xdb_federation_retries_total")->Value(), 0.0);
  Histogram* h = reg.GetHistogram("xdb_federation_transfer_bytes", {});
  EXPECT_EQ(h->Count(),
            static_cast<int64_t>(r->trace.transfers.size()));

  std::string text = reg.TextExposition();
  EXPECT_NE(text.find("xdb_federation_fetches_total"), std::string::npos);
  EXPECT_NE(text.find("xdb_network_bytes_total"), std::string::npos);
  fed.SetMetricsRegistry(nullptr);
}

// --------------------------------------------------------------------------
// Observability under faults: useful/wasted split, failed-round compute,
// last_trace() across multi-round failover
// --------------------------------------------------------------------------

TEST(FaultObservabilityTest, LinkDropSplitsUsefulFromWastedBytes) {
  Federation fed;
  Populate(&fed);
  FaultInjector inj(42);
  fed.SetFaultInjector(&inj);
  MetricsRegistry reg;
  fed.SetMetricsRegistry(&reg);

  FaultSpec drop;  // the first payload transfer aborts mid-flight
  drop.op = FaultOp::kTransfer;
  drop.kind = FaultKind::kLinkDrop;
  drop.first_attempt = 1;
  drop.last_attempt = 1;
  inj.AddFault(drop);

  XdbSystem xdb(&fed);
  auto r = xdb.Query(kJoinSql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const RunTrace& trace = r->trace;
  EXPECT_GT(trace.WastedTransferredBytes(), 0.0);
  EXPECT_GT(trace.UsefulTransferredBytes(), 0.0);
  EXPECT_DOUBLE_EQ(
      trace.UsefulTransferredBytes() + trace.WastedTransferredBytes(),
      trace.TotalTransferredBytes());
  EXPECT_DOUBLE_EQ(
      reg.GetCounter("xdb_federation_wasted_bytes_total")->Value(),
      trace.WastedTransferredBytes());
  EXPECT_DOUBLE_EQ(
      reg.GetCounter("xdb_federation_useful_bytes_total")->Value(),
      trace.UsefulTransferredBytes());
  EXPECT_GT(reg.GetCounter("xdb_federation_retries_total")->Value(), 0.0);
}

double SumScanRows(const RunTrace& trace) {
  double rows = 0;
  for (const auto& [srv, compute] : trace.per_server) {
    rows += compute.scan_rows;
  }
  return rows;
}

TEST(FaultObservabilityTest, PerServerKeepsComputeFromFailedReplanRounds) {
  Federation fed;
  Populate(&fed);
  FaultInjector inj(42);
  fed.SetFaultInjector(&inj);
  // Always-explicit movements: data moves during deploy (CTAS), so a round
  // whose execution step fails has still made its producers do real work.
  XdbOptions opts;
  opts.movement_policy = 2;
  XdbSystem xdb(&fed, opts);
  auto clean = xdb.Query(kJoinSql);
  ASSERT_TRUE(clean.ok());
  const std::string old_root = clean->xdb_query.server;
  const double clean_scan_rows = SumScanRows(clean->trace);
  ASSERT_GT(clean_scan_rows, 0.0);

  FaultSpec spec;  // the old root refuses to run client queries, forever
  spec.server = old_root;
  spec.op = FaultOp::kQuery;
  spec.kind = FaultKind::kTransientError;
  inj.AddFault(spec);

  auto r = xdb.Query(kJoinSql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->trace.replan_rounds, 1);
  EXPECT_NE(r->xdb_query.server, old_root);
  EXPECT_GT(r->trace.wasted_attempt_seconds, 0.0);

  // The failed first round scanned and shipped data before its execution
  // step failed; that compute must survive into the final trace's
  // per-server totals rather than vanish with the failed round.
  EXPECT_GT(SumScanRows(r->trace), clean_scan_rows);
}

TEST(FaultObservabilityTest, LastTraceSurvivesMultiRoundFailover) {
  Federation fed;
  Populate(&fed);
  FaultInjector inj(42);
  fed.SetFaultInjector(&inj);
  MetricsRegistry reg;
  fed.SetMetricsRegistry(&reg);
  XdbOptions opts;
  opts.movement_policy = 2;  // deploy-time CTAS: failed rounds move data
  XdbSystem xdb(&fed, opts);

  // Every server refuses client queries: every failover round fails, and
  // the query is ultimately unrecoverable.
  for (const char* server : {"d1", "d2"}) {
    FaultSpec spec;
    spec.server = server;
    spec.op = FaultOp::kQuery;
    spec.kind = FaultKind::kTransientError;
    inj.AddFault(spec);
  }
  auto r = xdb.Query(kJoinSql);
  ASSERT_FALSE(r.ok());

  const RunTrace& trace = xdb.last_trace();
  EXPECT_EQ(trace.recovery_action, "failed");
  EXPECT_GE(trace.replan_rounds, 1);
  EXPECT_FALSE(trace.excluded_servers.empty());
  // The banked rounds kept their per-server compute and their wasted cost
  // even though nothing was ever delivered to the client.
  EXPECT_GT(SumScanRows(trace), 0.0);
  EXPECT_GT(trace.wasted_attempt_seconds, 0.0);
  EXPECT_GT(reg.GetCounter("xdb_federation_rollbacks_total")->Value(), 0.0);
  EXPECT_DOUBLE_EQ(
      reg.GetCounter("xdb_federation_replan_rounds_total")->Value(),
      static_cast<double>(trace.replan_rounds));

  // A later successful query replaces last_trace() wholesale.
  inj.Clear();
  auto ok = xdb.Query(kJoinSql);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(xdb.last_trace().recovery_action, "none");
  EXPECT_EQ(xdb.last_trace().replan_rounds, 0);
  EXPECT_TRUE(xdb.last_trace().retries.empty());
}

// --------------------------------------------------------------------------
// JSON exporters
// --------------------------------------------------------------------------

TEST(ExportTest, RunTraceAndReportJsonCarryTheSplitByteCounters) {
  Federation fed;
  Populate(&fed);
  XdbSystem xdb(&fed);
  auto r = xdb.Query(kJoinSql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  std::string trace_json = RunTraceToJson(r->trace);
  EXPECT_NE(trace_json.find("\"useful_bytes\":"), std::string::npos);
  EXPECT_NE(trace_json.find("\"wasted_bytes\":"), std::string::npos);
  EXPECT_NE(trace_json.find("\"transfers\":"), std::string::npos);
  EXPECT_NE(trace_json.find("\"per_server\":"), std::string::npos);

  std::string report_json = XdbReportToJson(*r);
  EXPECT_NE(report_json.find("\"phases\":"), std::string::npos);
  EXPECT_NE(report_json.find("\"exec_timing\":"), std::string::npos);
  EXPECT_NE(report_json.find("\"trace\":"), std::string::npos);
  // Escaping: no raw control characters or stray quotes break the output.
  Span s;
  s.Tag("sql", std::string("SELECT \"x\"\nFROM t"));
  std::string chrome = SpansToChromeTrace({s});
  EXPECT_NE(chrome.find("SELECT \\\"x\\\"\\nFROM t"), std::string::npos);
}

}  // namespace
}  // namespace xdb
