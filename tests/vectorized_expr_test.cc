// Property test for the vectorized expression kernels: EvalExprBatch /
// EvalPredicateBatch must be *bit-identical* to the scalar EvalExpr /
// EvalPredicate on every row — including NULL type tags, -0.0 payloads,
// int-vs-double promotion, date arithmetic and division by zero. Randomized
// bound trees drive both the typed fast paths and the scalar fallback.

#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "src/expr/expr.h"
#include "src/expr/vector_eval.h"

namespace xdb {
namespace {

// Column layout of the random test table.
constexpr int kColA = 0;     // int64
constexpr int kColB = 1;     // int64, many NULLs
constexpr int kColX = 2;     // double (integral values, -0.0, fractions)
constexpr int kColY = 3;     // double, many NULLs
constexpr int kColD = 4;     // date
constexpr int kColFlag = 5;  // bool
constexpr int kColS = 6;     // string

bool BitEqual(const Value& a, const Value& b) {
  if (a.type() != b.type() || a.is_null() != b.is_null()) return false;
  if (a.is_null()) return true;
  switch (a.type()) {
    case TypeId::kString:
      return a.string_value() == b.string_value();
    case TypeId::kDouble: {
      double x = a.double_value(), y = b.double_value();
      return std::memcmp(&x, &y, sizeof(x)) == 0;
    }
    default:
      return a.int64_value() == b.int64_value();
  }
}

std::vector<Row> MakeRows(std::mt19937* rng, size_t n) {
  std::uniform_int_distribution<int> pct(0, 99);
  std::uniform_int_distribution<int64_t> small(-50, 50);
  std::uniform_real_distribution<double> frac(-2.0, 2.0);
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row row;
    row.push_back(pct(*rng) < 10 ? Value::Null(TypeId::kInt64)
                                 : Value::Int64(small(*rng)));
    row.push_back(pct(*rng) < 40 ? Value::Null(TypeId::kInt64)
                                 : Value::Int64(small(*rng) * 1000));
    // x: exercise -0.0, +0.0, integral doubles (normalized-key / promotion
    // edge cases) and fractions.
    int xs = pct(*rng);
    if (xs < 8) row.push_back(Value::Double(-0.0));
    else if (xs < 16) row.push_back(Value::Double(0.0));
    else if (xs < 40) row.push_back(Value::Double(double(small(*rng))));
    else if (xs < 50) row.push_back(Value::Null(TypeId::kDouble));
    else row.push_back(Value::Double(frac(*rng)));
    row.push_back(pct(*rng) < 40 ? Value::Null(TypeId::kDouble)
                                 : Value::Double(frac(*rng) * 100));
    row.push_back(pct(*rng) < 10
                      ? Value::Null(TypeId::kDate)
                      : Value::Date(DaysFromCivil(1995, 1, 1) + small(*rng)));
    row.push_back(pct(*rng) < 10 ? Value::Null(TypeId::kBool)
                                 : Value::Bool(pct(*rng) < 50));
    static const char* strs[] = {"alpha", "beta", "gamma", "", "alphabet"};
    row.push_back(pct(*rng) < 10
                      ? Value::Null(TypeId::kString)
                      : Value::String(strs[pct(*rng) % 5]));
    rows.push_back(std::move(row));
  }
  return rows;
}

ExprPtr NumericColumn(std::mt19937* rng) {
  switch ((*rng)() % 5) {
    case 0: return Expr::BoundColumn(kColA, TypeId::kInt64, "a");
    case 1: return Expr::BoundColumn(kColB, TypeId::kInt64, "b");
    case 2: return Expr::BoundColumn(kColX, TypeId::kDouble, "x");
    case 3: return Expr::BoundColumn(kColY, TypeId::kDouble, "y");
    default: return Expr::BoundColumn(kColD, TypeId::kDate, "d");
  }
}

ExprPtr NumericLiteral(std::mt19937* rng) {
  switch ((*rng)() % 6) {
    case 0: return Expr::Literal(Value::Int64(int64_t((*rng)() % 41) - 20));
    case 1: return Expr::Literal(Value::Double(-0.0));
    case 2: return Expr::Literal(Value::Double(1.5));
    case 3: return Expr::Literal(Value::Double(3.0));  // integral double
    case 4: return Expr::Literal(Value::Null(TypeId::kDouble));
    default:
      return Expr::Literal(Value::Date(DaysFromCivil(1995, 1, 10)));
  }
}

ExprPtr GenNumeric(std::mt19937* rng, int depth);
ExprPtr GenBool(std::mt19937* rng, int depth);

ExprPtr GenNumeric(std::mt19937* rng, int depth) {
  if (depth <= 0 || (*rng)() % 3 == 0) {
    return (*rng)() % 2 ? NumericColumn(rng) : NumericLiteral(rng);
  }
  switch ((*rng)() % 8) {
    case 0:
    case 1:
      return Expr::Binary(static_cast<BinaryOp>((*rng)() % 4),  // + - * /
                          GenNumeric(rng, depth - 1),
                          GenNumeric(rng, depth - 1));
    case 2:
      return Expr::Unary(UnaryOp::kNeg, GenNumeric(rng, depth - 1));
    case 3:  // scalar-fallback shapes
      return Expr::Function("abs", {GenNumeric(rng, depth - 1)});
    case 4:
      return Expr::Function("coalesce", {GenNumeric(rng, depth - 1),
                                         GenNumeric(rng, depth - 1)});
    case 5:
      return Expr::Case({GenBool(rng, depth - 1), GenNumeric(rng, depth - 1)},
                        GenNumeric(rng, depth - 1));
    default:
      return Expr::Binary(static_cast<BinaryOp>((*rng)() % 4),
                          GenNumeric(rng, depth - 1),
                          GenNumeric(rng, depth - 1));
  }
}

ExprPtr GenBool(std::mt19937* rng, int depth) {
  if (depth <= 0) {
    return Expr::Binary(
        static_cast<BinaryOp>(4 + (*rng)() % 6),  // = <> < <= > >=
        NumericColumn(rng), NumericLiteral(rng));
  }
  switch ((*rng)() % 10) {
    case 0:
    case 1:
      return Expr::Binary(static_cast<BinaryOp>(4 + (*rng)() % 6),
                          GenNumeric(rng, depth - 1),
                          GenNumeric(rng, depth - 1));
    case 2:
      return Expr::Binary(BinaryOp::kAnd, GenBool(rng, depth - 1),
                          GenBool(rng, depth - 1));
    case 3:
      return Expr::Binary(BinaryOp::kOr, GenBool(rng, depth - 1),
                          GenBool(rng, depth - 1));
    case 4:
      return Expr::Unary(UnaryOp::kNot, GenBool(rng, depth - 1));
    case 5:
      return Expr::Unary((*rng)() % 2 ? UnaryOp::kIsNull
                                      : UnaryOp::kIsNotNull,
                         GenNumeric(rng, depth - 1));
    case 6:
      return Expr::Between(GenNumeric(rng, depth - 1),
                           GenNumeric(rng, depth - 1),
                           GenNumeric(rng, depth - 1));
    case 7:  // string comparison (boxed lanes)
      return Expr::Binary(
          static_cast<BinaryOp>(4 + (*rng)() % 6),
          Expr::BoundColumn(kColS, TypeId::kString, "s"),
          Expr::Literal(Value::String((*rng)() % 2 ? "beta" : "alpha")));
    case 8:  // scalar-fallback shapes: LIKE / IN
      if ((*rng)() % 2) {
        return Expr::Like(Expr::BoundColumn(kColS, TypeId::kString, "s"),
                          Expr::Literal(Value::String("%a%")));
      }
      return Expr::InList(NumericColumn(rng),
                          {NumericLiteral(rng), NumericLiteral(rng),
                           Expr::Literal(Value::Null(TypeId::kInt64))});
    default:
      return Expr::Binary(BinaryOp::kEq,
                          Expr::BoundColumn(kColFlag, TypeId::kBool, "flag"),
                          Expr::Literal(Value::Bool((*rng)() % 2 == 0)));
  }
}

/// Checks batch == scalar on a full and on a random sparse selection.
void CheckExpr(const Expr& e, const std::vector<Row>& rows,
               std::mt19937* rng) {
  SelVector full;
  SelRange(0, rows.size(), &full);
  SelVector sparse;
  for (uint32_t i = 0; i < rows.size(); ++i) {
    if ((*rng)() % 3 == 0) sparse.push_back(i);
  }
  for (const SelVector& sel : {full, sparse}) {
    std::vector<Value> batch;
    EvalExprBatch(e, rows, sel, &batch);
    ASSERT_EQ(batch.size(), sel.size());
    for (size_t i = 0; i < sel.size(); ++i) {
      Value scalar = EvalExpr(e, rows[sel[i]]);
      ASSERT_TRUE(BitEqual(batch[i], scalar))
          << e.ToSql() << " row " << sel[i] << ": batch="
          << batch[i].ToString() << " (" << TypeIdToString(batch[i].type())
          << (batch[i].is_null() ? ",null" : "") << ") scalar="
          << scalar.ToString() << " (" << TypeIdToString(scalar.type())
          << (scalar.is_null() ? ",null" : "") << ")";
    }
  }
}

void CheckPredicate(const Expr& e, const std::vector<Row>& rows) {
  SelVector sel;
  SelRange(0, rows.size(), &sel);
  EvalPredicateBatch(e, rows, &sel);
  SelVector expected;
  for (uint32_t i = 0; i < rows.size(); ++i) {
    if (EvalPredicate(e, rows[i])) expected.push_back(i);
  }
  ASSERT_EQ(sel, expected) << e.ToSql();
}

TEST(VectorizedExprTest, RandomizedNumericExprsMatchScalarBitForBit) {
  for (uint32_t seed = 0; seed < 60; ++seed) {
    std::mt19937 rng(seed);
    auto rows = MakeRows(&rng, 97);  // not a morsel multiple
    ExprPtr e = GenNumeric(&rng, 4);
    CheckExpr(*e, rows, &rng);
  }
}

TEST(VectorizedExprTest, RandomizedPredicatesMatchScalarBitForBit) {
  for (uint32_t seed = 100; seed < 180; ++seed) {
    std::mt19937 rng(seed);
    auto rows = MakeRows(&rng, 103);
    ExprPtr e = GenBool(&rng, 4);
    CheckExpr(*e, rows, &rng);
    CheckPredicate(*e, rows);
  }
}

TEST(VectorizedExprTest, DirectedEdgeCases) {
  std::mt19937 rng(7);
  auto rows = MakeRows(&rng, 64);
  auto x = [] { return Expr::BoundColumn(kColX, TypeId::kDouble, "x"); };
  auto a = [] { return Expr::BoundColumn(kColA, TypeId::kInt64, "a"); };
  auto b = [] { return Expr::BoundColumn(kColB, TypeId::kInt64, "b"); };
  auto d = [] { return Expr::BoundColumn(kColD, TypeId::kDate, "d"); };

  std::vector<ExprPtr> cases;
  // -0.0 vs 0 comparison and arithmetic sign propagation.
  cases.push_back(Expr::Binary(BinaryOp::kEq, x(),
                               Expr::Literal(Value::Double(0.0))));
  cases.push_back(Expr::Binary(BinaryOp::kMul, x(),
                               Expr::Literal(Value::Double(-1.0))));
  // int/double promotion and division by zero -> NULL(double).
  cases.push_back(Expr::Binary(BinaryOp::kDiv, a(), b()));
  cases.push_back(Expr::Binary(BinaryOp::kAdd, a(), x()));
  cases.push_back(Expr::Binary(BinaryOp::kMul, a(), b()));
  // Date arithmetic stays a date (boxed fallback path).
  cases.push_back(Expr::Binary(BinaryOp::kAdd, d(),
                               Expr::Literal(Value::Int64(5))));
  // Date comparison runs the int64 typed loop.
  cases.push_back(Expr::Binary(
      BinaryOp::kGe, d(),
      Expr::Literal(Value::Date(DaysFromCivil(1995, 1, 1)))));
  // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE (three-valued logic).
  cases.push_back(Expr::Binary(
      BinaryOp::kAnd, Expr::Unary(UnaryOp::kIsNull, b()),
      Expr::Binary(BinaryOp::kLt, a(), Expr::Literal(Value::Int64(0)))));
  cases.push_back(Expr::Binary(
      BinaryOp::kOr, Expr::Unary(UnaryOp::kIsNull, b()),
      Expr::Binary(BinaryOp::kGt, a(), Expr::Literal(Value::Int64(0)))));
  // NOT over a non-bool operand reads the int64 payload (double -> TRUE).
  cases.push_back(Expr::Unary(UnaryOp::kNot, x()));
  // Negation keeps a NULL operand's type; dates negate to int64.
  cases.push_back(Expr::Unary(UnaryOp::kNeg, b()));
  cases.push_back(Expr::Unary(UnaryOp::kNeg, d()));
  // BETWEEN with mixed int/double bounds.
  cases.push_back(Expr::Between(a(), Expr::Literal(Value::Double(-10.5)),
                                Expr::Literal(Value::Int64(10))));
  cases.push_back(Expr::Between(x(), Expr::Literal(Value::Int64(-1)),
                                Expr::Literal(Value::Double(1.0))));

  for (const auto& e : cases) {
    CheckExpr(*e, rows, &rng);
    CheckPredicate(*e, rows);
  }
}

TEST(VectorizedExprTest, EmptySelectionYieldsNothing) {
  std::mt19937 rng(3);
  auto rows = MakeRows(&rng, 8);
  ExprPtr e = Expr::Binary(BinaryOp::kAdd,
                           Expr::BoundColumn(kColA, TypeId::kInt64, "a"),
                           Expr::Literal(Value::Int64(1)));
  SelVector sel;
  std::vector<Value> out;
  EvalExprBatch(*e, rows, sel, &out);
  EXPECT_TRUE(out.empty());
  EvalPredicateBatch(*e, rows, &sel);
  EXPECT_TRUE(sel.empty());
}

}  // namespace
}  // namespace xdb
