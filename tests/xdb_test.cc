#include <gtest/gtest.h>

#include <algorithm>

#include "src/dbms/federation.h"
#include "src/dbms/server.h"
#include "src/sql/parser.h"
#include "src/xdb/xdb.h"

namespace xdb {
namespace {

TablePtr MakeCitizens(int n) {
  auto t = std::make_shared<Table>(Schema({{"id", TypeId::kInt64},
                                           {"name", TypeId::kString},
                                           {"age", TypeId::kInt64},
                                           {"address", TypeId::kString}}));
  for (int i = 0; i < n; ++i) {
    t->AppendRow({Value::Int64(i), Value::String("c" + std::to_string(i)),
                  Value::Int64(15 + (i * 7) % 70),
                  Value::String("addr" + std::to_string(i % 10))});
  }
  return t;
}

TablePtr MakeVaccines() {
  auto t = std::make_shared<Table>(Schema({{"id", TypeId::kInt64},
                                           {"name", TypeId::kString},
                                           {"type", TypeId::kString},
                                           {"manufacturer",
                                            TypeId::kString}}));
  const char* types[] = {"mrna", "vector", "protein"};
  for (int i = 0; i < 3; ++i) {
    t->AppendRow({Value::Int64(i), Value::String("vax" + std::to_string(i)),
                  Value::String(types[i]), Value::String("m")});
  }
  return t;
}

TablePtr MakeVaccinations(int n) {
  auto t = std::make_shared<Table>(Schema({{"c_id", TypeId::kInt64},
                                           {"v_id", TypeId::kInt64},
                                           {"vdate", TypeId::kDate}}));
  for (int i = 0; i < n; ++i) {
    t->AppendRow({Value::Int64(i), Value::Int64((i * 13) % 3),
                  Value::Date(DaysFromCivil(2021, 1, 1) + i % 200)});
  }
  return t;
}

TablePtr MakeMeasurements(int n) {
  auto t = std::make_shared<Table>(Schema({{"id", TypeId::kInt64},
                                           {"c_id", TypeId::kInt64},
                                           {"mdate", TypeId::kDate},
                                           {"u_ml", TypeId::kDouble}}));
  for (int i = 0; i < n; ++i) {
    t->AppendRow({Value::Int64(10000 + i), Value::Int64(i % 120),
                  Value::Date(DaysFromCivil(2021, 6, 1) + i % 100),
                  Value::Double(10.0 + (i * 37) % 200)});
  }
  return t;
}

const char* kPaperQuery =
    "SELECT v.type, AVG(m.u_ml) AS avg_uml, "
    "  CASE WHEN c.age BETWEEN 20 AND 30 THEN '20-30' "
    "       WHEN c.age BETWEEN 30 AND 40 THEN '30-40' "
    "       WHEN c.age BETWEEN 40 AND 50 THEN '40-50' "
    "       ELSE '50+' END AS age_group "
    "FROM citizen c, vaccines v, vaccination vn, measurements m "
    "WHERE c.id = vn.c_id AND c.id = m.c_id AND v.id = vn.v_id "
    "  AND c.age > 20 "
    "GROUP BY age_group, v.type "
    "ORDER BY age_group, v.type";

/// Federated setup (3 DBMSes) plus a single-server oracle.
class XdbEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    const int kCitizens = 120, kVaccinations = 150, kMeasurements = 300;

    fed_.SetNetwork(Network::Lan({"cdb", "vdb", "hdb"}));
    auto* cdb = fed_.AddServer("cdb", EngineProfile::Postgres());
    auto* vdb = fed_.AddServer("vdb", EngineProfile::MariaDb());
    auto* hdb = fed_.AddServer("hdb", EngineProfile::Postgres());
    ASSERT_TRUE(cdb->CreateBaseTable("citizen", MakeCitizens(kCitizens)).ok());
    ASSERT_TRUE(vdb->CreateBaseTable("vaccines", MakeVaccines()).ok());
    ASSERT_TRUE(
        vdb->CreateBaseTable("vaccination", MakeVaccinations(kVaccinations))
            .ok());
    ASSERT_TRUE(hdb->CreateBaseTable("measurements",
                                     MakeMeasurements(kMeasurements))
                    .ok());

    auto* oracle = oracle_fed_.AddServer("mono", EngineProfile::Postgres());
    ASSERT_TRUE(
        oracle->CreateBaseTable("citizen", MakeCitizens(kCitizens)).ok());
    ASSERT_TRUE(oracle->CreateBaseTable("vaccines", MakeVaccines()).ok());
    ASSERT_TRUE(oracle
                    ->CreateBaseTable("vaccination",
                                      MakeVaccinations(kVaccinations))
                    .ok());
    ASSERT_TRUE(oracle
                    ->CreateBaseTable("measurements",
                                      MakeMeasurements(kMeasurements))
                    .ok());
    oracle_ = oracle;
  }

  /// Sorts rows lexicographically for order-insensitive comparison.
  static std::vector<Row> Sorted(const Table& t) {
    std::vector<Row> rows = t.rows();
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      for (size_t i = 0; i < a.size(); ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c < 0;
      }
      return false;
    });
    return rows;
  }

  static void ExpectSameRows(const Table& got, const Table& want) {
    ASSERT_EQ(got.num_rows(), want.num_rows());
    ASSERT_EQ(got.schema().num_fields(), want.schema().num_fields());
    auto g = Sorted(got), w = Sorted(want);
    for (size_t i = 0; i < g.size(); ++i) {
      for (size_t c = 0; c < g[i].size(); ++c) {
        if (g[i][c].type() == TypeId::kDouble ||
            w[i][c].type() == TypeId::kDouble) {
          EXPECT_NEAR(g[i][c].AsDouble(), w[i][c].AsDouble(), 1e-6)
              << "row " << i << " col " << c;
        } else {
          EXPECT_EQ(g[i][c].Compare(w[i][c]), 0)
              << "row " << i << " col " << c << ": " << g[i][c].ToString()
              << " vs " << w[i][c].ToString();
        }
      }
    }
  }

  Federation fed_;
  Federation oracle_fed_;
  DatabaseServer* oracle_ = nullptr;
};

TEST_F(XdbEndToEnd, PaperQueryMatchesOracle) {
  XdbSystem xdb(&fed_);
  auto report = xdb.Query(kPaperQuery);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto want = oracle_->ExecuteQuery(kPaperQuery);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ExpectSameRows(*report->result, **want);
  EXPECT_GT(report->result->num_rows(), 0u);
}

TEST_F(XdbEndToEnd, DelegationPlanShape) {
  XdbSystem xdb(&fed_);
  auto report = xdb.Query(kPaperQuery);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Three DBMSes participate; tasks land only on DBMSes that store inputs.
  const DelegationPlan& plan = report->plan;
  EXPECT_GE(plan.tasks.size(), 2u);
  for (const auto& t : plan.tasks) {
    EXPECT_TRUE(t.server == "cdb" || t.server == "vdb" || t.server == "hdb")
        << t.server;
  }
  // Every edge crosses DBMSes (co-located operators are fused into tasks).
  for (const auto& e : plan.edges) {
    EXPECT_NE(plan.FindTask(e.producer)->server,
              plan.FindTask(e.consumer)->server);
  }
  // The XDB query targets the root task's DBMS.
  EXPECT_EQ(report->xdb_query.server, plan.root().server);
  EXPECT_EQ(report->xdb_query.sql,
            "SELECT * FROM " + plan.root().view_name);
}

TEST_F(XdbEndToEnd, NoMediatorDataFlow) {
  XdbSystem xdb(&fed_);
  auto report = xdb.Query(kPaperQuery);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Only control messages and the final result touch the middleware node;
  // intermediate data moves directly between DBMSes (the paper's claim).
  double mw_bytes = fed_.network().BytesInvolving("xdb");
  double result_bytes =
      static_cast<double>(report->result->SerializedSize());
  // Control messages are 256B each; allow them plus the result.
  double control_budget =
      256.0 * 2.0 *
      static_cast<double>(report->metadata_roundtrips +
                          report->consultations +
                          report->ddl_statements + 64);
  EXPECT_LE(mw_bytes, result_bytes + control_budget);
  // Inter-DBMS transfers carried the real data.
  EXPECT_GT(report->trace.transfers.size(), 0u);
}

TEST_F(XdbEndToEnd, CleanupRemovesTransientRelations) {
  XdbSystem xdb(&fed_);
  auto report = xdb.Query(kPaperQuery);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const char* s : {"cdb", "vdb", "hdb"}) {
    EXPECT_TRUE(fed_.GetServer(s)->TransientRelations().empty())
        << s << " still has transient relations";
  }
}

TEST_F(XdbEndToEnd, RepeatedQueriesDoNotCollide) {
  XdbSystem xdb(&fed_);
  for (int i = 0; i < 3; ++i) {
    auto report = xdb.Query(kPaperQuery);
    ASSERT_TRUE(report.ok()) << "iteration " << i << ": "
                             << report.status().ToString();
  }
}

TEST_F(XdbEndToEnd, PhaseBreakdownPopulated) {
  XdbSystem xdb(&fed_);
  auto report = xdb.Query(kPaperQuery);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->phases.prep, 0.0);
  EXPECT_GT(report->phases.lopt, 0.0);
  EXPECT_GT(report->phases.ann, 0.0);
  EXPECT_GT(report->phases.exec, 0.0);
  // The paper's bound: optimization overhead is small (<= 10 s).
  EXPECT_LE(report->phases.prep + report->phases.lopt + report->phases.ann,
            10.0);
  // 4 consultations per cross-database join.
  EXPECT_EQ(report->consultations % 4, 0);
  EXPECT_GT(report->consultations, 0);
}

TEST_F(XdbEndToEnd, DdlLogIsReplayableSql) {
  XdbSystem xdb(&fed_);
  auto report = xdb.Query(kPaperQuery);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->ddl_log.size(), report->plan.tasks.size());
  // Every logged DDL parses under the common grammar.
  for (const auto& [server, ddl] : report->ddl_log) {
    auto parsed = sql::ParseStatement(ddl);
    EXPECT_TRUE(parsed.ok()) << "on " << server << ": " << ddl << " -> "
                             << parsed.status().ToString();
  }
}

TEST_F(XdbEndToEnd, SingleDatabaseQueryNeedsNoMovement) {
  XdbSystem xdb(&fed_);
  auto report = xdb.Query(
      "SELECT v.type, COUNT(*) AS n FROM vaccines v, vaccination vn "
      "WHERE v.id = vn.v_id GROUP BY v.type");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->plan.tasks.size(), 1u);
  EXPECT_EQ(report->plan.edges.size(), 0u);
  EXPECT_EQ(report->trace.transfers.size(), 0u);
  EXPECT_EQ(report->result->num_rows(), 3u);
}

TEST_F(XdbEndToEnd, TwoWayCrossDatabaseJoin) {
  XdbSystem xdb(&fed_);
  auto report = xdb.Query(
      "SELECT c.age, m.u_ml FROM citizen c, measurements m "
      "WHERE c.id = m.c_id AND c.age > 60");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto want = oracle_->ExecuteQuery(
      "SELECT c.age, m.u_ml FROM citizen c, measurements m "
      "WHERE c.id = m.c_id AND c.age > 60");
  ASSERT_TRUE(want.ok());
  ExpectSameRows(*report->result, **want);
  EXPECT_EQ(report->plan.tasks.size(), 2u);
  ASSERT_EQ(report->plan.edges.size(), 1u);
}

TEST_F(XdbEndToEnd, UnknownTableIsCatalogError) {
  XdbSystem xdb(&fed_);
  auto report = xdb.Query("SELECT x FROM nosuch");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsCatalogError());
}

TEST_F(XdbEndToEnd, QualifiedTableOnWrongServerFails) {
  XdbSystem xdb(&fed_);
  auto report = xdb.Query("SELECT id FROM hdb.citizen");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsCatalogError());
}

TEST_F(XdbEndToEnd, PrunedPlacementNeverProduced) {
  // Property (paper Figure 5c): no task may be placed on a DBMS that holds
  // neither input of its cross-database operator. Equivalently: every
  // task's server must appear among the databases referenced by its own
  // expression's scans, or (for pure assembly tasks) among its producers.
  XdbSystem xdb(&fed_);
  auto report = xdb.Query(kPaperQuery);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const auto& task : report->plan.tasks) {
    std::vector<std::string> dbs = task.expr->ReferencedDatabases();
    bool local_input = std::find(dbs.begin(), dbs.end(), task.server) !=
                       dbs.end();
    if (!local_input) {
      // Pure assembly task: must consume at least one producer placed on a
      // DBMS equal to an input's annotation — by Rule 4 pruning the server
      // must equal one of its direct producers' servers.
      bool producer_match = false;
      for (const auto* e : report->plan.InEdges(task.id)) {
        if (report->plan.FindTask(e->producer)->server == task.server) {
          producer_match = true;
        }
      }
      EXPECT_TRUE(producer_match) << "task on " << task.server
                                  << " holds no input";
    }
  }
}

}  // namespace
}  // namespace xdb
