#include <gtest/gtest.h>

#include <algorithm>

#include "src/dbms/server.h"
#include "src/mediator/mediator.h"
#include "src/tpch/distributions.h"
#include "src/tpch/queries.h"
#include "src/xdb/xdb.h"

namespace xdb {
namespace {

constexpr double kTestSf = 0.002;  // lineitem ~12k rows

std::vector<Row> Sorted(const Table& t) {
  std::vector<Row> rows = t.rows();
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
  return rows;
}

void ExpectSameRows(const Table& got, const Table& want,
                    const std::string& label) {
  ASSERT_EQ(got.num_rows(), want.num_rows()) << label;
  ASSERT_EQ(got.schema().num_fields(), want.schema().num_fields()) << label;
  auto g = Sorted(got), w = Sorted(want);
  for (size_t i = 0; i < g.size(); ++i) {
    for (size_t c = 0; c < g[i].size(); ++c) {
      if (g[i][c].type() == TypeId::kDouble ||
          w[i][c].type() == TypeId::kDouble) {
        double denom = std::max(1.0, std::abs(w[i][c].AsDouble()));
        EXPECT_NEAR(g[i][c].AsDouble() / denom, w[i][c].AsDouble() / denom,
                    1e-9)
            << label << " row " << i << " col " << c;
      } else {
        EXPECT_EQ(g[i][c].Compare(w[i][c]), 0)
            << label << " row " << i << " col " << c << ": "
            << g[i][c].ToString() << " vs " << w[i][c].ToString();
      }
    }
  }
}

/// Single-server oracle holding all TPC-H tables.
std::unique_ptr<Federation> BuildOracle(double sf) {
  auto fed = std::make_unique<Federation>();
  auto* mono = fed->AddServer("mono", EngineProfile::Postgres());
  tpch::DbGen gen(sf);
  for (auto& [table, data] : gen.GenerateAll()) {
    EXPECT_TRUE(mono->CreateBaseTable(table, data).ok());
  }
  return fed;
}

class TpchFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    oracle_fed_ = BuildOracle(kTestSf).release();
  }
  static void TearDownTestSuite() {
    delete oracle_fed_;
    oracle_fed_ = nullptr;
  }

  static TablePtr Oracle(const std::string& sql) {
    auto r = oracle_fed_->GetServer("mono")->ExecuteQuery(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }

  static Federation* oracle_fed_;
};

Federation* TpchFixture::oracle_fed_ = nullptr;

TEST_F(TpchFixture, GeneratorShapes) {
  tpch::DbGen gen(kTestSf);
  auto region = gen.Region();
  auto nation = gen.Nation();
  EXPECT_EQ(region->num_rows(), 5u);
  EXPECT_EQ(nation->num_rows(), 25u);
  auto orders = gen.Orders();
  auto lineitem = gen.Lineitem();
  // ~4 lines per order on average (1..7 uniform).
  double ratio = static_cast<double>(lineitem->num_rows()) /
                 static_cast<double>(orders->num_rows());
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
  auto partsupp = gen.PartSupp();
  EXPECT_EQ(partsupp->num_rows(), 4u * static_cast<size_t>(
                                           gen.num_parts()));
}

TEST_F(TpchFixture, GeneratorIsDeterministic) {
  tpch::DbGen a(kTestSf), b(kTestSf);
  auto ta = a.Customer(), tb = b.Customer();
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  for (size_t i = 0; i < std::min<size_t>(50, ta->num_rows()); ++i) {
    for (size_t c = 0; c < ta->schema().num_fields(); ++c) {
      EXPECT_EQ(ta->row(i)[c].Compare(tb->row(i)[c]), 0);
    }
  }
}

TEST_F(TpchFixture, LineitemSupplierReferentialIntegrity) {
  // Q9 correctness depends on (l_partkey, l_suppkey) pairs existing in
  // partsupp — validated by the join cardinality being nonzero.
  auto r = Oracle(
      "SELECT COUNT(*) AS n FROM lineitem l, partsupp ps "
      "WHERE ps.ps_partkey = l.l_partkey AND ps.ps_suppkey = l.l_suppkey");
  ASSERT_NE(r, nullptr);
  auto all = Oracle("SELECT COUNT(*) AS n FROM lineitem l");
  ASSERT_NE(all, nullptr);
  // Every lineitem row must find exactly its partsupp pair.
  EXPECT_EQ(r->row(0)[0].int64_value(), all->row(0)[0].int64_value());
}

TEST_F(TpchFixture, SelectivitiesAreReasonable) {
  auto seg = Oracle(
      "SELECT COUNT(*) AS n FROM customer c "
      "WHERE c.c_mktsegment = 'BUILDING'");
  auto total = Oracle("SELECT COUNT(*) AS n FROM customer c");
  double f = seg->row(0)[0].AsDouble() / total->row(0)[0].AsDouble();
  EXPECT_GT(f, 0.1);
  EXPECT_LT(f, 0.3);  // ~1/5

  auto green = Oracle(
      "SELECT COUNT(*) AS n FROM part p WHERE p.p_name LIKE '%green%'");
  auto parts = Oracle("SELECT COUNT(*) AS n FROM part p");
  double g = green->row(0)[0].AsDouble() / parts->row(0)[0].AsDouble();
  EXPECT_GT(g, 0.05);
  EXPECT_LT(g, 0.35);
}

struct SystemCase {
  const char* system;
  int td;
};

class TpchSystemsCorrectness
    : public TpchFixture,
      public ::testing::WithParamInterface<SystemCase> {};

TEST_P(TpchSystemsCorrectness, AllQueriesMatchOracle) {
  const auto& param = GetParam();
  auto fed = tpch::BuildTpchFederation(kTestSf,
                                       tpch::DistributionByIndex(param.td));

  std::unique_ptr<XdbSystem> xdb;
  std::unique_ptr<MediatorSystem> mediator;
  std::string name = param.system;
  if (name == "xdb") {
    xdb = std::make_unique<XdbSystem>(fed.get());
  } else if (name == "garlic") {
    mediator =
        std::make_unique<MediatorSystem>(fed.get(), MediatorKind::kGarlic);
  } else if (name == "presto") {
    mediator =
        std::make_unique<MediatorSystem>(fed.get(), MediatorKind::kPresto);
  } else {
    mediator =
        std::make_unique<MediatorSystem>(fed.get(), MediatorKind::kSclera);
  }

  for (const auto& q : tpch::EvaluationQueries()) {
    TablePtr want = Oracle(q.sql);
    ASSERT_NE(want, nullptr) << q.id;
    Result<XdbReport> report =
        xdb ? xdb->Query(q.sql) : mediator->Query(q.sql);
    ASSERT_TRUE(report.ok())
        << name << "/" << q.id << ": " << report.status().ToString();
    ExpectSameRows(*report->result, *want,
                   name + "/" + q.id + "/TD" + std::to_string(param.td));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Systems, TpchSystemsCorrectness,
    ::testing::Values(SystemCase{"xdb", 1}, SystemCase{"xdb", 2},
                      SystemCase{"xdb", 3}, SystemCase{"garlic", 1},
                      SystemCase{"presto", 1}, SystemCase{"sclera", 1},
                      SystemCase{"garlic", 2}, SystemCase{"presto", 3}),
    [](const ::testing::TestParamInfo<SystemCase>& info) {
      return std::string(info.param.system) + "_TD" +
             std::to_string(info.param.td);
    });

TEST_F(TpchFixture, MediatorPlacesCrossOpsOnMediator) {
  auto fed = tpch::BuildTpchFederation(kTestSf, tpch::TD1());
  MediatorSystem presto(fed.get(), MediatorKind::kPresto);
  auto report = presto.Query(tpch::FindQuery("Q3")->sql);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The root (all joins + aggregation) runs on the mediator.
  EXPECT_EQ(report->plan.root().server, "presto");
  // All data flows into the mediator.
  for (const auto& t : report->trace.transfers) {
    EXPECT_EQ(t.dst, "presto");
  }
}

TEST_F(TpchFixture, XdbNeverPlacesTasksOffTheDataNodes) {
  auto fed = tpch::BuildTpchFederation(kTestSf, tpch::TD1());
  XdbSystem xdb(fed.get());
  for (const auto& q : tpch::EvaluationQueries()) {
    auto report = xdb.Query(q.sql);
    ASSERT_TRUE(report.ok()) << q.id << report.status().ToString();
    for (const auto& t : report->plan.tasks) {
      EXPECT_NE(t.server, "xdb") << q.id;
    }
    // And no intermediate data ever flows through the middleware node.
    for (const auto& tr : report->trace.transfers) {
      EXPECT_NE(tr.dst, "xdb") << q.id;
      EXPECT_NE(tr.src, "xdb") << q.id;
    }
  }
}

TEST_F(TpchFixture, ScleraMovesEverythingExplicitly) {
  auto fed = tpch::BuildTpchFederation(kTestSf, tpch::TD1());
  MediatorSystem sclera(fed.get(), MediatorKind::kSclera);
  auto report = sclera.Query(tpch::FindQuery("Q3")->sql);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const auto& t : report->trace.transfers) {
    EXPECT_TRUE(t.materialized) << t.src << "->" << t.dst;
  }
}

}  // namespace
}  // namespace xdb
