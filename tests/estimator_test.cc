#include <gtest/gtest.h>

#include "src/plan/estimator.h"

namespace xdb {
namespace {

/// A scan of a synthetic relation: 1000 rows, column "k" with ndv 100 and
/// range [0, 999], column "v" with ndv 1000.
PlanPtr SyntheticScan(double rows = 1000, double k_ndv = 100) {
  Schema schema({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}});
  TableStats stats;
  stats.row_count = rows;
  ColumnStats k;
  k.ndv = k_ndv;
  k.min = Value::Int64(0);
  k.max = Value::Int64(999);
  k.avg_width = 8;
  ColumnStats v;
  v.ndv = rows;
  v.min = Value::Int64(0);
  v.max = Value::Int64(static_cast<int64_t>(rows) - 1);
  v.avg_width = 8;
  stats.columns = {k, v};
  return PlanNode::MakeScan("db", "t", "t", schema, stats);
}

ExprPtr Col(int i) { return Expr::BoundColumn(i, TypeId::kInt64, "c"); }
ExprPtr Lit(int64_t v) { return Expr::Literal(Value::Int64(v)); }

TEST(EstimatorTest, ScanEstimateUsesStats) {
  Estimator est;
  PlanEstimate e = est.Estimate(*SyntheticScan());
  EXPECT_DOUBLE_EQ(e.rows, 1000.0);
  EXPECT_DOUBLE_EQ(e.row_width, 16.0);
}

TEST(EstimatorTest, EqualitySelectivityIsOneOverNdv) {
  Estimator est;
  auto plan = PlanNode::MakeFilter(
      SyntheticScan(), Expr::Binary(BinaryOp::kEq, Col(0), Lit(5)));
  PlanEstimate e = est.Estimate(*plan);
  EXPECT_NEAR(e.rows, 10.0, 1e-6);  // 1000 / ndv(k)=100
}

TEST(EstimatorTest, RangeSelectivityInterpolates) {
  Estimator est;
  // k < 500 over [0, 999] ~ half.
  auto plan = PlanNode::MakeFilter(
      SyntheticScan(), Expr::Binary(BinaryOp::kLt, Col(0), Lit(500)));
  PlanEstimate e = est.Estimate(*plan);
  EXPECT_NEAR(e.rows, 500.0, 10.0);
  // Flipped operand order: 500 > k is the same predicate.
  auto flipped = PlanNode::MakeFilter(
      SyntheticScan(), Expr::Binary(BinaryOp::kGt, Lit(500), Col(0)));
  EXPECT_NEAR(est.Estimate(*flipped).rows, 500.0, 10.0);
}

TEST(EstimatorTest, BetweenSelectivity) {
  Estimator est;
  auto plan = PlanNode::MakeFilter(
      SyntheticScan(), Expr::Between(Col(0), Lit(100), Lit(299)));
  PlanEstimate e = est.Estimate(*plan);
  EXPECT_NEAR(e.rows, 200.0, 20.0);
}

TEST(EstimatorTest, ConjunctionMultiplies) {
  Estimator est;
  ExprPtr pred = Expr::Binary(
      BinaryOp::kAnd, Expr::Binary(BinaryOp::kLt, Col(0), Lit(500)),
      Expr::Binary(BinaryOp::kEq, Col(1), Lit(3)));
  auto plan = PlanNode::MakeFilter(SyntheticScan(), pred);
  PlanEstimate e = est.Estimate(*plan);
  EXPECT_NEAR(e.rows, 1000.0 * 0.5 / 1000.0, 1.0);
}

TEST(EstimatorTest, DisjunctionAddsWithOverlap) {
  Estimator est;
  PlanEstimate in = est.Estimate(*SyntheticScan());
  ExprPtr lt = Expr::Binary(BinaryOp::kLt, Col(0), Lit(500));
  ExprPtr or_pred = Expr::Binary(BinaryOp::kOr, lt->Clone(), lt->Clone());
  // P(A or A) = 2p - p^2 under independence; must never exceed 1.
  double sel = est.Selectivity(*or_pred, in);
  EXPECT_GT(sel, 0.5);
  EXPECT_LE(sel, 1.0);
}

TEST(EstimatorTest, InListSelectivity) {
  Estimator est;
  auto plan = PlanNode::MakeFilter(
      SyntheticScan(), Expr::InList(Col(0), {Lit(1), Lit(2), Lit(3)}));
  PlanEstimate e = est.Estimate(*plan);
  EXPECT_NEAR(e.rows, 30.0, 1.0);  // 3 / ndv(100) * 1000
}

TEST(EstimatorTest, NotInverts) {
  Estimator est;
  PlanEstimate in = est.Estimate(*SyntheticScan());
  ExprPtr lt = Expr::Binary(BinaryOp::kLt, Col(0), Lit(250));
  double s = est.Selectivity(*lt, in);
  double ns = est.Selectivity(*Expr::Unary(UnaryOp::kNot, lt), in);
  EXPECT_NEAR(s + ns, 1.0, 1e-9);
}

TEST(EstimatorTest, JoinCardinalityUsesMaxNdv) {
  Estimator est;
  // |L| = 1000 (ndv 100), |R| = 1000 (ndv 100): 1000*1000/100 = 10000.
  auto join = PlanNode::MakeJoin(SyntheticScan(), SyntheticScan(), {0}, {0},
                                 nullptr);
  PlanEstimate e = est.Estimate(*join);
  EXPECT_NEAR(e.rows, 10000.0, 1.0);
}

TEST(EstimatorTest, CrossJoinMultiplies) {
  Estimator est;
  auto join = PlanNode::MakeJoin(SyntheticScan(10), SyntheticScan(20), {},
                                 {}, nullptr);
  EXPECT_NEAR(est.Estimate(*join).rows, 200.0, 1e-6);
}

TEST(EstimatorTest, AggregateCappedByGroupNdvAndInput) {
  Estimator est;
  auto agg = PlanNode::MakeAggregate(
      SyntheticScan(), {Col(0)},
      {Expr::Aggregate(AggKind::kCountStar, nullptr)});
  PlanEstimate e = est.Estimate(*agg);
  EXPECT_NEAR(e.rows, 100.0, 1e-6);  // ndv of the key

  // Small input caps below the key ndv.
  auto small = PlanNode::MakeAggregate(
      SyntheticScan(20, 100), {Col(0)},
      {Expr::Aggregate(AggKind::kCountStar, nullptr)});
  EXPECT_LE(est.Estimate(*small).rows, 20.0);
}

TEST(EstimatorTest, LimitCapsRows) {
  Estimator est;
  auto plan = PlanNode::MakeLimit(SyntheticScan(), 7);
  EXPECT_DOUBLE_EQ(est.Estimate(*plan).rows, 7.0);
}

TEST(EstimatorTest, PlaceholderCarriesProducerEstimate) {
  Estimator est;
  auto ph = PlanNode::MakePlaceholder("x",
                                      Schema({{"a", TypeId::kInt64}}), {},
                                      1234.0);
  EXPECT_DOUBLE_EQ(est.Estimate(*ph).rows, 1234.0);
}

TEST(EstimatorTest, ProjectionKeepsRowCountChangesWidth) {
  Estimator est;
  auto proj = PlanNode::MakeProject(SyntheticScan(), {Col(0)});
  PlanEstimate e = est.Estimate(*proj);
  EXPECT_DOUBLE_EQ(e.rows, 1000.0);
  EXPECT_LT(e.row_width, 16.0);
}

TEST(EstimatorTest, FilterNeverEstimatesBelowOneRow) {
  Estimator est;
  // Impossible-looking equality still estimates >= 1 row.
  auto plan = PlanNode::MakeFilter(
      SyntheticScan(1.0, 1.0),
      Expr::Binary(BinaryOp::kEq, Col(0), Lit(42)));
  EXPECT_GE(est.Estimate(*plan).rows, 1.0);
}

}  // namespace
}  // namespace xdb
