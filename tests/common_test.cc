#include <gtest/gtest.h>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/str_util.h"
#include "src/types/table.h"

namespace xdb {
namespace {

TEST(StatusTest, OkIsCheapAndEmpty) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.message(), "");
  EXPECT_EQ(ok.ToString(), "OK");
}

TEST(StatusTest, EveryCodeRoundTrips) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  Case cases[] = {
      {Status::InvalidArgument("m"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::ParseError("m"), StatusCode::kParseError, "ParseError"},
      {Status::BindError("m"), StatusCode::kBindError, "BindError"},
      {Status::CatalogError("m"), StatusCode::kCatalogError,
       "CatalogError"},
      {Status::ExecutionError("m"), StatusCode::kExecutionError,
       "ExecutionError"},
      {Status::NetworkError("m"), StatusCode::kNetworkError,
       "NetworkError"},
      {Status::NotImplemented("m"), StatusCode::kNotImplemented,
       "NotImplemented"},
      {Status::Internal("m"), StatusCode::kInternal, "Internal"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "m");
    EXPECT_EQ(std::string(StatusCodeToString(c.code)), c.name);
  }
}

TEST(StatusTest, MacroPropagates) {
  auto fail = []() -> Status { return Status::Internal("inner"); };
  auto outer = [&]() -> Status {
    XDB_RETURN_NOT_OK(fail());
    return Status::OK();
  };
  EXPECT_EQ(outer().message(), "inner");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool ok) -> Result<int> {
    if (ok) return 5;
    return Status::Internal("nope");
  };
  auto consume = [&](bool ok) -> Result<int> {
    XDB_ASSIGN_OR_RETURN(int v, produce(ok));
    return v * 2;
  };
  EXPECT_EQ(*consume(true), 10);
  EXPECT_FALSE(consume(false).ok());
}

TEST(StrUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("MiXeD_09"), "mixed_09");
  EXPECT_EQ(ToUpper("MiXeD_09"), "MIXED_09");
  EXPECT_TRUE(EqualsIgnoreCase("Hello", "hELLO"));
  EXPECT_FALSE(EqualsIgnoreCase("Hello", "Hell"));
}

TEST(StrUtilTest, SplitJoinTrim) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
}

TEST(StrUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(1.5 * 1024 * 1024), "1.50 MB");
}

TEST(TableTest, SerializedSizeSumsValues) {
  Table t(Schema({{"a", TypeId::kInt64}, {"s", TypeId::kString}}));
  t.AppendRow({Value::Int64(1), Value::String("abcd")});
  // 8 (int) + 4 + 4 (string header + bytes).
  EXPECT_EQ(t.SerializedSize(), 16u);
  EXPECT_EQ(RowSerializedSize(t.row(0)), 16u);
}

TEST(TableTest, DisplayTruncatesLongTables) {
  Table t(Schema({{"a", TypeId::kInt64}}));
  for (int i = 0; i < 30; ++i) t.AppendRow({Value::Int64(i)});
  std::string shown = t.ToDisplayString(5);
  EXPECT_NE(shown.find("25 more rows"), std::string::npos);
}

TEST(SchemaTest, LookupAndConcat) {
  Schema a({{"x", TypeId::kInt64}, {"y", TypeId::kString}});
  Schema b({{"z", TypeId::kDouble}});
  EXPECT_EQ(*a.IndexOf("Y"), 1u);
  EXPECT_FALSE(a.IndexOf("nope").has_value());
  Schema c = Schema::Concat(a, b);
  EXPECT_EQ(c.num_fields(), 3u);
  EXPECT_EQ(c.field(2).name, "z");
  EXPECT_EQ(c.ToString(), "(x:int64, y:string, z:double)");
}

}  // namespace
}  // namespace xdb
