#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/str_util.h"
#include "src/common/thread_pool.h"
#include "src/types/table.h"

namespace xdb {
namespace {

TEST(StatusTest, OkIsCheapAndEmpty) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.message(), "");
  EXPECT_EQ(ok.ToString(), "OK");
}

TEST(StatusTest, EveryCodeRoundTrips) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  Case cases[] = {
      {Status::InvalidArgument("m"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::ParseError("m"), StatusCode::kParseError, "ParseError"},
      {Status::BindError("m"), StatusCode::kBindError, "BindError"},
      {Status::CatalogError("m"), StatusCode::kCatalogError,
       "CatalogError"},
      {Status::ExecutionError("m"), StatusCode::kExecutionError,
       "ExecutionError"},
      {Status::NetworkError("m"), StatusCode::kNetworkError,
       "NetworkError"},
      {Status::NotImplemented("m"), StatusCode::kNotImplemented,
       "NotImplemented"},
      {Status::Internal("m"), StatusCode::kInternal, "Internal"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "m");
    EXPECT_EQ(std::string(StatusCodeToString(c.code)), c.name);
  }
}

TEST(StatusTest, MacroPropagates) {
  auto fail = []() -> Status { return Status::Internal("inner"); };
  auto outer = [&]() -> Status {
    XDB_RETURN_NOT_OK(fail());
    return Status::OK();
  };
  EXPECT_EQ(outer().message(), "inner");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool ok) -> Result<int> {
    if (ok) return 5;
    return Status::Internal("nope");
  };
  auto consume = [&](bool ok) -> Result<int> {
    XDB_ASSIGN_OR_RETURN(int v, produce(ok));
    return v * 2;
  };
  EXPECT_EQ(*consume(true), 10);
  EXPECT_FALSE(consume(false).ok());
}

TEST(StrUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("MiXeD_09"), "mixed_09");
  EXPECT_EQ(ToUpper("MiXeD_09"), "MIXED_09");
  EXPECT_TRUE(EqualsIgnoreCase("Hello", "hELLO"));
  EXPECT_FALSE(EqualsIgnoreCase("Hello", "Hell"));
}

TEST(StrUtilTest, SplitJoinTrim) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
}

TEST(StrUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(1.5 * 1024 * 1024), "1.50 MB");
}

TEST(TableTest, SerializedSizeSumsValues) {
  Table t(Schema({{"a", TypeId::kInt64}, {"s", TypeId::kString}}));
  t.AppendRow({Value::Int64(1), Value::String("abcd")});
  // 8 (int) + 4 + 4 (string header + bytes).
  EXPECT_EQ(t.SerializedSize(), 16u);
  EXPECT_EQ(RowSerializedSize(t.row(0)), 16u);
}

TEST(TableTest, DisplayTruncatesLongTables) {
  Table t(Schema({{"a", TypeId::kInt64}}));
  for (int i = 0; i < 30; ++i) t.AppendRow({Value::Int64(i)});
  std::string shown = t.ToDisplayString(5);
  EXPECT_NE(shown.find("25 more rows"), std::string::npos);
}

TEST(SchemaTest, LookupAndConcat) {
  Schema a({{"x", TypeId::kInt64}, {"y", TypeId::kString}});
  Schema b({{"z", TypeId::kDouble}});
  EXPECT_EQ(*a.IndexOf("Y"), 1u);
  EXPECT_FALSE(a.IndexOf("nope").has_value());
  Schema c = Schema::Concat(a, b);
  EXPECT_EQ(c.num_fields(), 3u);
  EXPECT_EQ(c.field(2).name, "z");
  EXPECT_EQ(c.ToString(), "(x:int64, y:string, z:double)");
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int workers : {1, 2, 4, 8}) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{100},
                     size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h = 0;
      ParallelFor(workers, n, /*morsel_rows=*/17,
                  [&](size_t, size_t begin, size_t end) {
                    for (size_t i = begin; i < end; ++i) hits[i]++;
                  });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "workers=" << workers << " n=" << n
                                     << " i=" << i;
      }
    }
  }
}

TEST(ParallelForTest, MorselBoundariesIndependentOfWorkers) {
  // The determinism contract: morsel (index, begin, end) triples depend
  // only on (n, morsel_rows), never on the worker count.
  auto layout = [](int workers) {
    std::vector<std::array<size_t, 3>> morsels(8);  // ceil(100/13)
    ParallelFor(workers, 100, 13, [&](size_t m, size_t b, size_t e) {
      morsels[m] = {m, b, e};
    });
    return morsels;
  };
  auto one = layout(1);
  for (int workers : {2, 4}) {
    EXPECT_EQ(layout(workers), one) << workers;
  }
  EXPECT_EQ(one[0], (std::array<size_t, 3>{0, 0, 13}));
  EXPECT_EQ(one[7], (std::array<size_t, 3>{7, 91, 100}));
}

TEST(ParallelForTest, NestedCallsRunInline) {
  // A worker that itself calls ParallelFor must not deadlock waiting for
  // pool threads that are all busy; nested calls degrade to inline loops.
  std::atomic<int> total{0};
  ParallelFor(4, 64, 8, [&](size_t, size_t begin, size_t end) {
    ParallelFor(4, end - begin, 2, [&](size_t, size_t b, size_t e) {
      total += static_cast<int>(e - b);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

std::string Norm(const Value& v) {
  std::string s;
  v.AppendNormalizedKey(&s);
  return s;
}

TEST(NormalizedKeyTest, EqualUnderCompareMeansEqualBytes) {
  // The hash-join/aggregate key encoding must agree with Value::Compare
  // equality across types (1 == 1.0 == true as grouping keys).
  EXPECT_EQ(Norm(Value::Int64(1)), Norm(Value::Double(1.0)));
  EXPECT_EQ(Norm(Value::Int64(1)), Norm(Value::Bool(true)));
  EXPECT_EQ(Norm(Value::Int64(0)), Norm(Value::Double(-0.0)));
  EXPECT_EQ(Norm(Value::Double(0.0)), Norm(Value::Double(-0.0)));
  EXPECT_NE(Norm(Value::Int64(1)), Norm(Value::Int64(2)));
  EXPECT_NE(Norm(Value::Double(1.5)), Norm(Value::Int64(1)));
  EXPECT_NE(Norm(Value::Double(1.5)), Norm(Value::Double(1.25)));
  EXPECT_EQ(Norm(Value::String("ab")), Norm(Value::String("ab")));
  EXPECT_NE(Norm(Value::String("ab")), Norm(Value::String("ac")));
}

TEST(NormalizedKeyTest, NullsAndEmptyStringsAreDistinct) {
  EXPECT_EQ(Norm(Value::Null(TypeId::kInt64)),
            Norm(Value::Null(TypeId::kString)));  // NULL groups merge
  EXPECT_NE(Norm(Value::Null(TypeId::kString)), Norm(Value::String("")));
  EXPECT_NE(Norm(Value::Null(TypeId::kInt64)), Norm(Value::Int64(0)));
}

TEST(NormalizedKeyTest, MultiColumnConcatenationIsUnambiguous) {
  // ("ab","c") must not collide with ("a","bc"): strings are
  // length-prefixed before their bytes.
  std::string k1, k2;
  Value::String("ab").AppendNormalizedKey(&k1);
  Value::String("c").AppendNormalizedKey(&k1);
  Value::String("a").AppendNormalizedKey(&k2);
  Value::String("bc").AppendNormalizedKey(&k2);
  EXPECT_NE(k1, k2);
}

}  // namespace
}  // namespace xdb
