#include <gtest/gtest.h>

#include "src/timing/timing_model.h"

namespace xdb {
namespace {

class TimingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    fed_.SetNetwork(Network::Lan({"a", "b", "c"}));
    fed_.AddServer("a", EngineProfile::Postgres());
    fed_.AddServer("b", EngineProfile::Postgres());
    fed_.AddServer("c", EngineProfile::Postgres());
  }

  static ComputeTrace ScanOnly(double rows) {
    ComputeTrace t;
    t.scan_rows = rows;
    return t;
  }

  static TransferRecord Rec(int id, int parent, const std::string& src,
                            const std::string& dst, double rows,
                            double bytes, bool materialized = false) {
    TransferRecord r;
    r.id = id;
    r.parent_id = parent;
    r.src = src;
    r.dst = dst;
    r.relation = "rel" + std::to_string(id);
    r.rows = rows;
    r.bytes = bytes;
    r.messages = 1;
    r.materialized = materialized;
    return r;
  }

  Federation fed_;
};

TEST_F(TimingFixture, ComputeSecondsWeightsCounters) {
  TimingModel model(&fed_);
  EngineProfile p = EngineProfile::Postgres();
  ComputeTrace t;
  t.scan_rows = 1e6;
  double s = model.ComputeSeconds(t, p, false);
  EXPECT_NEAR(s, 1e6 * p.scan_row_cost + p.startup_cost, 1e-9);
}

TEST_F(TimingFixture, ScaleUpMultipliesRowCosts) {
  TimingModel m1(&fed_, {1.0});
  TimingModel m10(&fed_, {10.0});
  EngineProfile p = EngineProfile::Postgres();
  ComputeTrace t = ScanOnly(1e6);
  double s1 = m1.ComputeSeconds(t, p, false) - p.startup_cost;
  double s10 = m10.ComputeSeconds(t, p, false) - p.startup_cost;
  EXPECT_NEAR(s10, 10.0 * s1, 1e-9);
}

TEST_F(TimingFixture, FreeNetworkDropsForeignIngest) {
  TimingModel model(&fed_);
  EngineProfile p = EngineProfile::Postgres();
  ComputeTrace t;
  t.foreign_rows = 1e6;
  EXPECT_GT(model.ComputeSeconds(t, p, false),
            model.ComputeSeconds(t, p, true));
  EXPECT_NEAR(model.ComputeSeconds(t, p, true), p.startup_cost, 1e-9);
}

TEST_F(TimingFixture, AmdahlParallelism) {
  TimingModel model(&fed_);
  EngineProfile p2 = EngineProfile::PrestoMediator(2);
  EngineProfile p10 = EngineProfile::PrestoMediator(10);
  ComputeTrace t;
  t.join_probe_rows = 1e8;
  double s2 = model.ComputeSeconds(t, p2, true);
  double s10 = model.ComputeSeconds(t, p10, true);
  EXPECT_LT(s10, s2);
  // But the serial fraction bounds the speedup below 5x.
  EXPECT_GT(s10 - p10.startup_cost, (s2 - p2.startup_cost) / 5.0);
}

TEST_F(TimingFixture, IngestDoesNotParallelize) {
  // The coordinator bottleneck of Figure 11: foreign ingest is identical
  // regardless of worker count.
  TimingModel model(&fed_);
  ComputeTrace t;
  t.foreign_rows = 1e7;
  double s2 = model.ComputeSeconds(t, EngineProfile::PrestoMediator(2),
                                   false);
  double s10 = model.ComputeSeconds(t, EngineProfile::PrestoMediator(10),
                                    false);
  EXPECT_NEAR(s2, s10, 1e-9);
}

TEST_F(TimingFixture, TransferSecondsBandwidthAndLatency) {
  TimingModel model(&fed_);
  TransferRecord r = Rec(0, -1, "a", "b", 1e5, 125e6);  // 1s at 1 Gbit
  double s = model.TransferSeconds(r);
  LinkProps link = fed_.network().GetLink("a", "b");
  EXPECT_NEAR(s, 1.0 + link.latency * 12.0, 0.01);  // 11 batches + 1
}

TEST_F(TimingFixture, ImplicitTransfersOverlapProduction) {
  // Producer takes X seconds of compute; the wire takes Y. Pipelined
  // arrival is max(X, Y), not X + Y.
  RunTrace trace;
  trace.root_server = "b";
  TransferRecord r = Rec(0, -1, "a", "b", 1e6, 125e6);  // wire = 1s
  r.producer_compute = ScanOnly(4e7);  // 40e6 * 1.5e-7 = 6s on postgres
  trace.transfers.push_back(r);
  TimingModel model(&fed_);
  TimingBreakdown out = model.ModelRun(trace);
  EngineProfile pg = EngineProfile::Postgres();
  double producer = 4e7 * pg.scan_row_cost + pg.startup_cost;
  // Total = max(producer, wire) + root compute(= startup only).
  EXPECT_NEAR(out.total, std::max(producer, 1.0) + pg.startup_cost, 0.1);
}

TEST_F(TimingFixture, MaterializedTransfersSerialize) {
  RunTrace trace;
  trace.root_server = "b";
  TransferRecord r = Rec(0, -1, "a", "b", 1e6, 125e6, /*materialized=*/true);
  r.producer_compute = ScanOnly(4e7);
  trace.transfers.push_back(r);
  TimingModel model(&fed_);
  TimingBreakdown out = model.ModelRun(trace);
  EngineProfile pg = EngineProfile::Postgres();
  double producer = 4e7 * pg.scan_row_cost + pg.startup_cost;
  double write = 1e6 * pg.materialize_row_cost;
  // Total = producer + wire + write + root compute: strictly more than the
  // pipelined case.
  EXPECT_NEAR(out.total, producer + 1.0 + write + pg.startup_cost, 0.1);
}

TEST_F(TimingFixture, SequentialMaterializationsAddUp) {
  RunTrace trace;
  trace.root_server = "c";
  for (int i = 0; i < 3; ++i) {
    TransferRecord r = Rec(i, -1, i % 2 ? "a" : "b", "c", 1e6, 125e6, true);
    trace.transfers.push_back(r);
  }
  TimingModel model(&fed_);
  double three = model.ModelRun(trace).total;
  trace.transfers.resize(1);
  double one = model.ModelRun(trace).total;
  EXPECT_GT(three, 2.5 * one - 2.0);  // roughly 3x (minus shared startup)
}

TEST_F(TimingFixture, ParallelImplicitSiblingsTakeTheMax) {
  RunTrace trace;
  trace.root_server = "c";
  trace.transfers.push_back(Rec(0, -1, "a", "c", 1e6, 125e6));
  trace.transfers.push_back(Rec(1, -1, "b", "c", 1e6, 125e6));
  TimingModel model(&fed_);
  double two = model.ModelRun(trace).total;
  trace.transfers.resize(1);
  double one = model.ModelRun(trace).total;
  EXPECT_NEAR(two, one, 0.05);  // independent pipelines overlap fully
}

TEST_F(TimingFixture, NestedTransfersCompose) {
  // a -> b (while serving b's fetch, b pulls from c): the chain's depth
  // shows up in the total.
  RunTrace trace;
  trace.root_server = "a";
  TransferRecord outer = Rec(0, -1, "b", "a", 1e5, 1.25e7);
  outer.producer_compute = ScanOnly(1e7);
  TransferRecord inner = Rec(1, 0, "c", "b", 1e5, 1.25e7);
  inner.producer_compute = ScanOnly(2e8);  // 30s: dominates
  trace.transfers.push_back(outer);
  trace.transfers.push_back(inner);
  TimingModel model(&fed_);
  TimingBreakdown out = model.ModelRun(trace);
  EXPECT_GT(out.total, 29.0);
}

TEST_F(TimingFixture, TransferShareDecomposition) {
  RunTrace trace;
  trace.root_server = "b";
  TransferRecord r = Rec(0, -1, "a", "b", 1e6, 1.25e9);  // 10s wire
  r.producer_compute = ScanOnly(1e6);
  trace.transfers.push_back(r);
  TimingModel model(&fed_);
  TimingBreakdown out = model.ModelRun(trace);
  EXPECT_NEAR(out.total, out.compute_only + out.transfer_share, 1e-9);
  EXPECT_GT(out.transfer_share, 5.0);
}

TEST_F(TimingFixture, PingPongChainsTerminate) {
  // Regression: materialised transfers bouncing a<->b must not cycle the
  // prereq logic (this configuration previously overflowed the stack).
  RunTrace trace;
  trace.root_server = "a";
  TransferRecord m = Rec(0, -1, "b", "a", 1e5, 1e6, true);
  TransferRecord child = Rec(1, 0, "a", "b", 1e5, 1e6);
  TransferRecord m2 = Rec(2, -1, "b", "a", 1e5, 1e6, true);
  trace.transfers = {m, child, m2};
  TimingModel model(&fed_);
  TimingBreakdown out = model.ModelRun(trace);
  EXPECT_GT(out.total, 0.0);
  EXPECT_LT(out.total, 1e6);
}

TEST_F(TimingFixture, LocalizedComputeIsRootOnly) {
  RunTrace trace;
  trace.root_server = "b";
  trace.root_compute.join_probe_rows = 1e6;
  TransferRecord r = Rec(0, -1, "a", "b", 1e6, 1e6);
  r.producer_compute = ScanOnly(1e9);  // enormous source work
  trace.transfers.push_back(r);
  TimingModel model(&fed_);
  EngineProfile pg = EngineProfile::Postgres();
  double localized = model.LocalizedCompute(trace);
  EXPECT_NEAR(localized, 1e6 * pg.join_row_cost + pg.startup_cost, 1e-6);
}

}  // namespace
}  // namespace xdb
