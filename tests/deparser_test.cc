#include <gtest/gtest.h>

#include "src/connect/deparser.h"
#include "src/dbms/federation.h"
#include "src/dbms/server.h"
#include "src/sql/parser.h"

namespace xdb {
namespace {

/// Round-trip harness: a server with data; plan a query there, deparse the
/// plan, re-execute the deparsed SQL, and compare with executing the
/// original — the deparser's key invariant.
class DeparserFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = fed_.AddServer("s", EngineProfile::Postgres());
    auto t = std::make_shared<Table>(Schema({{"a", TypeId::kInt64},
                                             {"b", TypeId::kInt64},
                                             {"s", TypeId::kString},
                                             {"d", TypeId::kDate}}));
    for (int i = 0; i < 200; ++i) {
      t->AppendRow({Value::Int64(i), Value::Int64(i % 7),
                    Value::String(i % 2 ? "even-ish" : "odd-ish"),
                    Value::Date(DaysFromCivil(1995, 1, 1) + i)});
    }
    ASSERT_TRUE(server_->CreateBaseTable("t1", t).ok());
    auto u = std::make_shared<Table>(
        Schema({{"k", TypeId::kInt64}, {"v", TypeId::kDouble}}));
    for (int i = 0; i < 7; ++i) {
      u->AppendRow({Value::Int64(i), Value::Double(i * 1.5)});
    }
    ASSERT_TRUE(server_->CreateBaseTable("t2", u).ok());
  }

  void ExpectRoundTrip(const std::string& sql) {
    auto stmt = sql::ParseSelect(sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto plan = server_->PlanQuery(**stmt);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto deparsed = DeparsePlan(**plan, Dialect::Postgres());
    ASSERT_TRUE(deparsed.ok()) << sql << ": "
                               << deparsed.status().ToString();
    auto original = server_->ExecuteQuery(sql);
    ASSERT_TRUE(original.ok()) << original.status().ToString();
    auto redone = server_->ExecuteQuery(deparsed->sql);
    ASSERT_TRUE(redone.ok())
        << "deparsed SQL failed: " << deparsed->sql << " -> "
        << redone.status().ToString();
    ASSERT_EQ((*redone)->num_rows(), (*original)->num_rows())
        << deparsed->sql;
    ASSERT_EQ((*redone)->schema().num_fields(),
              (*original)->schema().num_fields());
  }

  Federation fed_;
  DatabaseServer* server_ = nullptr;
};

TEST_F(DeparserFixture, SimpleProjectionFilter) {
  ExpectRoundTrip("SELECT a, b FROM t1 WHERE a > 100");
}

TEST_F(DeparserFixture, JoinWithKeysAndResiduals) {
  ExpectRoundTrip(
      "SELECT x.a, y.v FROM t1 x, t2 y WHERE x.b = y.k AND x.a > 50");
}

TEST_F(DeparserFixture, SelfJoinAliasesStayUnique) {
  ExpectRoundTrip(
      "SELECT x.a FROM t1 x, t1 y WHERE x.b = y.b AND y.a < 20");
}

TEST_F(DeparserFixture, AggregationGroupBy) {
  ExpectRoundTrip(
      "SELECT b, COUNT(*) AS n, SUM(a) AS total FROM t1 GROUP BY b");
}

TEST_F(DeparserFixture, PostAggregateExpressions) {
  ExpectRoundTrip(
      "SELECT b, SUM(a) / COUNT(*) AS avg_a FROM t1 GROUP BY b");
}

TEST_F(DeparserFixture, OrderByAndLimit) {
  ExpectRoundTrip("SELECT a, b FROM t1 ORDER BY b DESC, a LIMIT 5");
}

TEST_F(DeparserFixture, OrderByAggregateOutput) {
  ExpectRoundTrip(
      "SELECT b, SUM(a) AS s FROM t1 GROUP BY b ORDER BY s DESC LIMIT 3");
}

TEST_F(DeparserFixture, CaseWhenLikeExtract) {
  ExpectRoundTrip(
      "SELECT CASE WHEN a < 50 THEN 'low' ELSE 'high' END AS bucket, "
      "EXTRACT(YEAR FROM d) AS y, COUNT(*) AS n "
      "FROM t1 WHERE s LIKE '%even%' GROUP BY bucket, y");
}

TEST_F(DeparserFixture, DateLiteralsSurvive) {
  ExpectRoundTrip("SELECT a FROM t1 WHERE d BETWEEN DATE '1995-02-01' "
                  "AND DATE '1995-03-01'");
}

TEST_F(DeparserFixture, InListSurvives) {
  ExpectRoundTrip("SELECT a FROM t1 WHERE b IN (1, 3, 5)");
}

TEST_F(DeparserFixture, PlaceholderRendersAsRelation) {
  // A hand-built task plan: join of a placeholder input with a local scan.
  auto stmt = sql::ParseSelect("SELECT a, b FROM t1");
  ASSERT_TRUE(stmt.ok());
  auto scan_plan = server_->PlanQuery(**stmt);
  ASSERT_TRUE(scan_plan.ok());
  PlanPtr ph = PlanNode::MakePlaceholder(
      "xdb_q1_t0", Schema({{"k", TypeId::kInt64}, {"w", TypeId::kInt64}}),
      {}, 100);
  PlanPtr join = PlanNode::MakeJoin(*scan_plan, ph, {1}, {0}, nullptr);
  auto deparsed = DeparsePlan(*join, Dialect::Postgres());
  ASSERT_TRUE(deparsed.ok()) << deparsed.status().ToString();
  EXPECT_NE(deparsed->sql.find("xdb_q1_t0"), std::string::npos);
  EXPECT_NE(deparsed->sql.find("= xdb_q1_t0.k"), std::string::npos);
  // The deparsed text must parse under the common grammar.
  EXPECT_TRUE(sql::ParseSelect(deparsed->sql).ok()) << deparsed->sql;
}

TEST_F(DeparserFixture, DuplicateOutputNamesUniquified) {
  auto stmt =
      sql::ParseSelect("SELECT x.a, y.a FROM t1 x, t1 y WHERE x.b = y.b");
  ASSERT_TRUE(stmt.ok());
  auto plan = server_->PlanQuery(**stmt);
  ASSERT_TRUE(plan.ok());
  auto deparsed = DeparsePlan(**plan, Dialect::Postgres());
  ASSERT_TRUE(deparsed.ok());
  ASSERT_EQ(deparsed->column_names.size(), 2u);
  EXPECT_NE(deparsed->column_names[0], deparsed->column_names[1]);
}

TEST_F(DeparserFixture, DerivedColumnNamesAreIdentifierSafe) {
  auto stmt = sql::ParseSelect("SELECT a + b, a * 2 FROM t1");
  ASSERT_TRUE(stmt.ok());
  auto plan = server_->PlanQuery(**stmt);
  ASSERT_TRUE(plan.ok());
  auto deparsed = DeparsePlan(**plan, Dialect::Postgres());
  ASSERT_TRUE(deparsed.ok());
  for (const auto& name : deparsed->column_names) {
    for (char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_')
          << name;
    }
  }
}

TEST_F(DeparserFixture, AggregateBelowJoinCollapsesToDerivedTable) {
  auto stmt = sql::ParseSelect("SELECT b, COUNT(*) AS n FROM t1 GROUP BY b");
  ASSERT_TRUE(stmt.ok());
  auto agg_plan = server_->PlanQuery(**stmt);
  ASSERT_TRUE(agg_plan.ok());
  PlanPtr other = PlanNode::MakePlaceholder(
      "p", Schema({{"k", TypeId::kInt64}}), {}, 10);
  PlanPtr join = PlanNode::MakeJoin(*agg_plan, other, {0}, {0}, nullptr);
  auto deparsed = DeparsePlan(*join, Dialect::Postgres());
  ASSERT_TRUE(deparsed.ok()) << deparsed.status().ToString();
  // The aggregate side renders as a derived table and the text re-parses.
  EXPECT_NE(deparsed->sql.find("(SELECT"), std::string::npos)
      << deparsed->sql;
  EXPECT_TRUE(sql::ParseSelect(deparsed->sql).ok()) << deparsed->sql;
}

TEST_F(DeparserFixture, HavingRoundTrip) {
  ExpectRoundTrip(
      "SELECT b, SUM(a) AS s FROM t1 GROUP BY b HAVING SUM(a) > 500 "
      "ORDER BY s");
}

TEST_F(DeparserFixture, DerivedTableRoundTrip) {
  ExpectRoundTrip(
      "SELECT q.b, q.s FROM (SELECT b, SUM(a) AS s FROM t1 GROUP BY b) q "
      "WHERE q.s > 100");
}

TEST_F(DeparserFixture, MariaDbDialectQuotesIdentifiers) {
  auto stmt = sql::ParseSelect("SELECT a FROM t1 WHERE b = 3");
  ASSERT_TRUE(stmt.ok());
  auto plan = server_->PlanQuery(**stmt);
  ASSERT_TRUE(plan.ok());
  auto deparsed = DeparsePlan(**plan, Dialect::MariaDb());
  ASSERT_TRUE(deparsed.ok());
  EXPECT_NE(deparsed->sql.find('`'), std::string::npos);
  // Backquoted identifiers still parse (the lexer accepts both styles).
  EXPECT_TRUE(sql::ParseSelect(deparsed->sql).ok()) << deparsed->sql;
}

TEST(DialectTest, DdlGeneration) {
  Dialect pg = Dialect::Postgres();
  EXPECT_EQ(pg.CreateViewSql("v", "SELECT 1 FROM t"),
            "CREATE VIEW v AS SELECT 1 FROM t");
  EXPECT_EQ(pg.CreateForeignTableSql("ft", {"a", "b"}, "db2", "remote"),
            "CREATE FOREIGN TABLE ft(a, b) SERVER db2 "
            "OPTIONS (table 'remote')");
  EXPECT_EQ(pg.CreateForeignTableSql("ft", {}, "db2", "ft"),
            "CREATE FOREIGN TABLE ft SERVER db2");
  EXPECT_EQ(pg.CreateTableAsSql("m", "src"),
            "CREATE TABLE m AS SELECT * FROM src");
  EXPECT_EQ(pg.DropSql("v", "VIEW"), "DROP VIEW IF EXISTS v");

  Dialect maria = Dialect::MariaDb();
  EXPECT_EQ(maria.CreateViewSql("v", "SELECT 1 FROM t"),
            "CREATE VIEW `v` AS SELECT 1 FROM t");
}

}  // namespace
}  // namespace xdb
