// MW-baseline behaviors: placement policies, pushdown scope, transfer
// patterns, worker scaling — the architectural contrasts the paper draws.

#include <gtest/gtest.h>

#include "src/dbms/server.h"
#include "src/mediator/mediator.h"
#include "src/timing/timing_model.h"

namespace xdb {
namespace {

class MediatorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    fed_.SetNetwork(Network::Lan({"d1", "d2"}));
    d1_ = fed_.AddServer("d1", EngineProfile::Postgres());
    d2_ = fed_.AddServer("d2", EngineProfile::Postgres());
    auto make = [](int rows, int ndv) {
      auto t = std::make_shared<Table>(
          Schema({{"k", TypeId::kInt64}, {"w", TypeId::kInt64},
                  {"tag", TypeId::kString}}));
      for (int i = 0; i < rows; ++i) {
        t->AppendRow({Value::Int64(i % ndv), Value::Int64(i),
                      Value::String(i % 2 ? "hot" : "cold")});
      }
      return t;
    };
    // Two co-located tables on d1 plus one on d2; keys are (near-)unique
    // so the pushed-down co-located join is reducing, the common case the
    // paper's Garlic numbers reflect.
    ASSERT_TRUE(d1_->CreateBaseTable("a", make(500, 500)).ok());
    ASSERT_TRUE(d1_->CreateBaseTable("b", make(300, 300)).ok());
    ASSERT_TRUE(d2_->CreateBaseTable("c", make(200, 200)).ok());
  }

  static constexpr const char* kThreeWay =
      "SELECT a.w FROM a, b, c "
      "WHERE a.k = b.k AND b.k = c.k AND c.w > 100";

  Federation fed_;
  DatabaseServer* d1_ = nullptr;
  DatabaseServer* d2_ = nullptr;
};

TEST_F(MediatorFixture, GarlicPushesDownColocatedJoins) {
  MediatorSystem garlic(&fed_, MediatorKind::kGarlic);
  auto r = garlic.Query(kThreeWay);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // a JOIN b is co-located on d1 and must be one pushed-down task; the
  // cross-database join runs on the mediator.
  bool d1_task_has_join = false;
  for (const auto& t : r->plan.tasks) {
    if (t.server == "d1" &&
        t.expr->ToAlgebraString().find("join") != std::string::npos) {
      d1_task_has_join = true;
    }
  }
  EXPECT_TRUE(d1_task_has_join);
  EXPECT_EQ(r->plan.root().server, "garlic");
}

TEST_F(MediatorFixture, PrestoPushesDownOnlyScans) {
  MediatorSystem presto(&fed_, MediatorKind::kPresto);
  auto r = presto.Query(kThreeWay);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // No source-side task may contain a join — even co-located ones run in
  // the mediator (connector = scan-level pushdown only).
  for (const auto& t : r->plan.tasks) {
    if (t.server != "presto") {
      EXPECT_EQ(t.expr->ToAlgebraString().find("join"), std::string::npos)
          << t.expr->ToAlgebraString();
    }
  }
  // Hence one transfer per base table.
  EXPECT_EQ(r->trace.transfers.size(), 3u);
}

TEST_F(MediatorFixture, FiltersStillPushDownUnderPresto) {
  MediatorSystem presto(&fed_, MediatorKind::kPresto);
  auto r = presto.Query(kThreeWay);
  ASSERT_TRUE(r.ok());
  // The c.w > 100 filter runs on d2: the mediator must receive fewer rows
  // of `c` than the table holds.
  for (const auto& tr : r->trace.transfers) {
    if (tr.src == "d2") {
      EXPECT_LT(tr.rows, 200.0);
    }
  }
}

TEST_F(MediatorFixture, GarlicTransfersLessThanPresto) {
  MediatorSystem garlic(&fed_, MediatorKind::kGarlic);
  MediatorSystem presto(&fed_, MediatorKind::kPresto);
  auto g = garlic.Query(kThreeWay);
  auto p = presto.Query(kThreeWay);
  ASSERT_TRUE(g.ok() && p.ok());
  // Join pushdown reduces what crosses the wire (a joins b locally first).
  EXPECT_LE(g->trace.TotalTransferredRows(),
            p->trace.TotalTransferredRows());
}

TEST_F(MediatorFixture, ScleraSerializesMaterializations) {
  MediatorSystem sclera(&fed_, MediatorKind::kSclera);
  auto r = sclera.Query(kThreeWay);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (const auto& tr : r->trace.transfers) {
    EXPECT_TRUE(tr.materialized);
  }
  // Sclera is the slowest of the three in modelled time.
  MediatorSystem garlic(&fed_, MediatorKind::kGarlic);
  auto g = garlic.Query(kThreeWay);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(r->exec_timing.total, g->exec_timing.total);
}

TEST_F(MediatorFixture, SingleSourceQueryPushedEntirely) {
  MediatorSystem garlic(&fed_, MediatorKind::kGarlic);
  auto r = garlic.Query(
      "SELECT a.tag, COUNT(*) AS n FROM a, b WHERE a.k = b.k "
      "GROUP BY a.tag");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Everything is on d1: Garlic delegates the whole query there, including
  // the aggregation; only the result flows.
  EXPECT_EQ(r->plan.root().server, "d1");
  EXPECT_EQ(r->trace.transfers.size(), 0u);
}

TEST_F(MediatorFixture, PrestoWorkerScalingFlattensTotals) {
  MediatorOptions o2;
  o2.presto_workers = 2;
  o2.scale_up = 1000;
  MediatorOptions o10;
  o10.presto_workers = 10;
  o10.scale_up = 1000;
  o10.mediator_node = "presto10";
  MediatorSystem p2(&fed_, MediatorKind::kPresto, o2);
  MediatorSystem p10(&fed_, MediatorKind::kPresto, o10);
  auto r2 = p2.Query(kThreeWay);
  auto r10 = p10.Query(kThreeWay);
  ASSERT_TRUE(r2.ok() && r10.ok());
  // Compute improves with workers...
  EXPECT_LT(r10->exec_timing.compute_only, r2->exec_timing.compute_only);
  // ...but the total barely moves (< 15% better) — Figure 11's flat bars.
  EXPECT_GT(r10->exec_timing.total, 0.85 * r2->exec_timing.total);
}

TEST_F(MediatorFixture, MediatorCleanupLeavesSourcesPristine) {
  MediatorSystem presto(&fed_, MediatorKind::kPresto);
  ASSERT_TRUE(presto.Query(kThreeWay).ok());
  EXPECT_TRUE(d1_->TransientRelations().empty());
  EXPECT_TRUE(d2_->TransientRelations().empty());
  EXPECT_TRUE(fed_.GetServer("presto")->TransientRelations().empty());
}

TEST_F(MediatorFixture, MediatorsCoexistOnOneFederation) {
  MediatorSystem garlic(&fed_, MediatorKind::kGarlic);
  MediatorSystem presto(&fed_, MediatorKind::kPresto);
  MediatorSystem sclera(&fed_, MediatorKind::kSclera);
  auto g = garlic.Query(kThreeWay);
  auto p = presto.Query(kThreeWay);
  auto s = sclera.Query(kThreeWay);
  ASSERT_TRUE(g.ok() && p.ok() && s.ok());
  EXPECT_EQ(g->result->num_rows(), p->result->num_rows());
  EXPECT_EQ(g->result->num_rows(), s->result->num_rows());
}

TEST_F(MediatorFixture, HeterogeneousSourcesSlowTheMediatorToo) {
  // A Hive source adds startup latency to every subquery the mediator
  // issues against it.
  Federation fed2;
  fed2.SetNetwork(Network::Lan({"d1", "d2"}));
  auto* a1 = fed2.AddServer("d1", EngineProfile::Postgres());
  auto* a2 = fed2.AddServer("d2", EngineProfile::Hive());
  auto mk = [] {
    auto t = std::make_shared<Table>(
        Schema({{"k", TypeId::kInt64}, {"w", TypeId::kInt64}}));
    for (int i = 0; i < 100; ++i) {
      t->AppendRow({Value::Int64(i % 10), Value::Int64(i)});
    }
    return t;
  };
  ASSERT_TRUE(a1->CreateBaseTable("x", mk()).ok());
  ASSERT_TRUE(a2->CreateBaseTable("y", mk()).ok());

  MediatorOptions opts;
  opts.scale_up = 1.0;
  MediatorSystem presto(&fed2, MediatorKind::kPresto, opts);
  auto r = presto.Query("SELECT x.w FROM x, y WHERE x.k = y.k");
  ASSERT_TRUE(r.ok());
  // Hive's 8s startup must show in the modelled total.
  EXPECT_GT(r->exec_timing.total, 8.0);
}

}  // namespace
}  // namespace xdb
