// Property sweeps over the Value substrate: ordering laws, hash/equality
// consistency, date round trips — the invariants the hash join, hash
// aggregate and sort operators silently rely on.

#include <gtest/gtest.h>

#include <random>

#include "src/types/value.h"

namespace xdb {
namespace {

std::vector<Value> SampleValues(uint32_t seed) {
  std::mt19937 rng(seed);
  auto ri = [&](int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(rng);
  };
  std::vector<Value> vs;
  for (int i = 0; i < 24; ++i) {
    switch (ri(0, 5)) {
      case 0:
        vs.push_back(Value::Int64(ri(-1000, 1000)));
        break;
      case 1:
        vs.push_back(Value::Double(static_cast<double>(ri(-1000, 1000)) /
                                   7.0));
        break;
      case 2:
        vs.push_back(Value::String(std::string(
            static_cast<size_t>(ri(0, 6)),
            static_cast<char>('a' + ri(0, 25)))));
        break;
      case 3:
        vs.push_back(Value::Date(ri(8000, 10600)));
        break;
      case 4:
        vs.push_back(Value::Bool(ri(0, 1) != 0));
        break;
      default:
        vs.push_back(Value::Null(TypeId::kInt64));
        break;
    }
  }
  return vs;
}

class ValueLaws : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ValueLaws, CompareIsAntisymmetricAndTotal) {
  auto vs = SampleValues(GetParam());
  for (const auto& a : vs) {
    for (const auto& b : vs) {
      int ab = a.Compare(b);
      int ba = b.Compare(a);
      EXPECT_EQ(ab == 0, ba == 0);
      if (ab != 0) {
        EXPECT_EQ(ab > 0, ba < 0);
      }
    }
  }
}

TEST_P(ValueLaws, CompareIsTransitive) {
  auto vs = SampleValues(GetParam());
  for (const auto& a : vs) {
    for (const auto& b : vs) {
      for (const auto& c : vs) {
        if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
          EXPECT_LE(a.Compare(c), 0)
              << a.ToString() << " " << b.ToString() << " " << c.ToString();
        }
      }
    }
  }
}

TEST_P(ValueLaws, EqualValuesHashEqually) {
  auto vs = SampleValues(GetParam());
  for (const auto& a : vs) {
    for (const auto& b : vs) {
      if (a.is_null() || b.is_null()) continue;
      if (a.Compare(b) == 0 &&
          (a.type() != TypeId::kString) == (b.type() != TypeId::kString)) {
        // Equal comparables of the same type class must collide on hash
        // (int 3 vs double 3.0 hash differently but never meet as group or
        // join keys of one column, whose type is fixed).
        if (a.type() == b.type()) {
          EXPECT_EQ(a.Hash(), b.Hash()) << a.ToString();
        }
      }
    }
  }
}

TEST_P(ValueLaws, SqlLiteralRoundTripsThroughDisplay) {
  auto vs = SampleValues(GetParam());
  for (const auto& v : vs) {
    // ToSqlLiteral is never empty (even '' for the empty string); display
    // text is empty only for the empty string itself.
    EXPECT_FALSE(v.ToSqlLiteral().empty());
    if (v.is_null() || v.type() != TypeId::kString ||
        !v.string_value().empty()) {
      EXPECT_FALSE(v.ToString().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueLaws, ::testing::Range(1u, 9u));

class DateSweep : public ::testing::TestWithParam<int> {};

TEST_P(DateSweep, CivilRoundTripsAcrossYears) {
  int year = GetParam();
  for (int month : {1, 2, 6, 12}) {
    for (int day : {1, 15, 28}) {
      int64_t days = DaysFromCivil(year, month, day);
      int y, m, d;
      CivilFromDays(days, &y, &m, &d);
      EXPECT_EQ(y, year);
      EXPECT_EQ(m, month);
      EXPECT_EQ(d, day);
      // Parse(Format(x)) == x.
      auto parsed = ParseDate(FormatDate(days));
      ASSERT_TRUE(parsed.ok());
      EXPECT_EQ(*parsed, days);
    }
  }
}

TEST_P(DateSweep, ConsecutiveDaysDifferByOne) {
  int year = GetParam();
  int64_t jan1 = DaysFromCivil(year, 1, 1);
  int64_t dec31_prev = DaysFromCivil(year - 1, 12, 31);
  EXPECT_EQ(jan1 - dec31_prev, 1);
}

INSTANTIATE_TEST_SUITE_P(Years, DateSweep,
                         ::testing::Values(1970, 1992, 1996, 1998, 2000,
                                           2026, 2100));

TEST(DateTest, LeapYearHandling) {
  EXPECT_EQ(DaysFromCivil(1996, 3, 1) - DaysFromCivil(1996, 2, 28), 2);
  EXPECT_EQ(DaysFromCivil(1997, 3, 1) - DaysFromCivil(1997, 2, 28), 1);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1) - DaysFromCivil(2000, 2, 28), 2);
  EXPECT_EQ(DaysFromCivil(2100, 3, 1) - DaysFromCivil(2100, 2, 28), 1);
}

TEST(DateTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseDate("not-a-date").ok());
  EXPECT_FALSE(ParseDate("1995-13-01").ok());
  EXPECT_FALSE(ParseDate("1995-00-10").ok());
  EXPECT_FALSE(ParseDate("1995-01-42").ok());
}

}  // namespace
}  // namespace xdb
