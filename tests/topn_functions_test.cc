// Tests for the Top-N (LIMIT-over-Sort) fusion and the scalar function
// library (COALESCE / ABS / ROUND / SUBSTRING).

#include <gtest/gtest.h>

#include <cmath>

#include "src/dbms/server.h"
#include "src/xdb/xdb.h"

namespace xdb {
namespace {

class TopNFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = fed_.AddServer("s", EngineProfile::Postgres());
    auto t = std::make_shared<Table>(Schema({{"a", TypeId::kInt64},
                                             {"b", TypeId::kDouble},
                                             {"s", TypeId::kString}}));
    for (int i = 0; i < 500; ++i) {
      Row row = {Value::Int64((i * 37) % 500),
                 Value::Double((i * 13 % 101) - 50.5),
                 Value::String("row" + std::to_string(i))};
      if (i % 25 == 0) row[1] = Value::Null(TypeId::kDouble);
      t->AppendRow(std::move(row));
    }
    ASSERT_TRUE(server_->CreateBaseTable("t", t).ok());
  }

  TablePtr Run(const std::string& sql) {
    auto r = server_->ExecuteQuery(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }

  Federation fed_;
  DatabaseServer* server_ = nullptr;
};

TEST_F(TopNFixture, TopNMatchesFullSortPrefix) {
  // LIMIT over ORDER BY must yield exactly the full ordering's prefix
  // (keys here are unique, so the prefix is well-defined).
  TablePtr all = Run("SELECT a FROM t ORDER BY a DESC");
  for (int n : {1, 7, 100, 499, 500}) {
    TablePtr top = Run("SELECT a FROM t ORDER BY a DESC LIMIT " +
                       std::to_string(n));
    ASSERT_NE(top, nullptr);
    ASSERT_EQ(top->num_rows(), static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(top->row(static_cast<size_t>(i))[0].int64_value(),
                all->row(static_cast<size_t>(i))[0].int64_value())
          << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(TopNFixture, TopNWithMultipleKeys) {
  TablePtr top = Run(
      "SELECT b, a FROM t WHERE b IS NOT NULL ORDER BY b DESC, a LIMIT 5");
  ASSERT_EQ(top->num_rows(), 5u);
  for (size_t i = 1; i < top->num_rows(); ++i) {
    int c = top->row(i - 1)[0].Compare(top->row(i)[0]);
    EXPECT_GE(c, 0);  // non-increasing by b
    if (c == 0) {
      EXPECT_LE(top->row(i - 1)[1].Compare(top->row(i)[1]), 0);
    }
  }
}

TEST_F(TopNFixture, TopNLargerThanInput) {
  TablePtr top = Run("SELECT a FROM t WHERE a < 3 ORDER BY a LIMIT 100");
  EXPECT_LE(top->num_rows(), 3u);
}

TEST_F(TopNFixture, CoalesceSkipsNulls) {
  TablePtr r = Run(
      "SELECT COUNT(*) AS n FROM t WHERE COALESCE(b, 0) = 0");
  // Rows where b IS NULL (20 of them) count as 0 (no natural 0.0 values in
  // the generated b domain: x - 50.5 is never integral).
  EXPECT_EQ(r->row(0)[0].int64_value(), 20);
  TablePtr sums = Run("SELECT SUM(COALESCE(b, 1000)) AS s FROM t");
  TablePtr base = Run("SELECT SUM(b) AS s FROM t");
  EXPECT_NEAR(sums->row(0)[0].AsDouble(),
              base->row(0)[0].AsDouble() + 20 * 1000.0, 1e-6);
}

TEST_F(TopNFixture, AbsAndRound) {
  TablePtr r = Run(
      "SELECT ABS(-5), ABS(b), ROUND(b), ROUND(b, 1) FROM t "
      "WHERE b IS NOT NULL LIMIT 1");
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->row(0)[0].int64_value(), 5);
  EXPECT_GE(r->row(0)[1].AsDouble(), 0.0);
  double rounded = r->row(0)[2].AsDouble();
  EXPECT_DOUBLE_EQ(rounded, std::round(rounded));
}

TEST_F(TopNFixture, FunctionsSurviveDelegation) {
  // The functions must round-trip through the deparser + remote parser:
  // exercise them across a two-server federation.
  Federation fed2;
  fed2.SetNetwork(Network::Lan({"x", "y"}));
  auto* x = fed2.AddServer("x", EngineProfile::Postgres());
  auto* y = fed2.AddServer("y", EngineProfile::Postgres());
  auto t1 = std::make_shared<Table>(
      Schema({{"k", TypeId::kInt64}, {"v", TypeId::kDouble}}));
  for (int i = 0; i < 50; ++i) {
    t1->AppendRow({Value::Int64(i),
                   i % 5 == 0 ? Value::Null(TypeId::kDouble)
                              : Value::Double(i - 25.0)});
  }
  ASSERT_TRUE(x->CreateBaseTable("m", t1).ok());
  auto t2 = std::make_shared<Table>(Schema({{"k", TypeId::kInt64}}));
  for (int i = 0; i < 50; ++i) t2->AppendRow({Value::Int64(i)});
  ASSERT_TRUE(y->CreateBaseTable("keys", t2).ok());

  XdbSystem xdb(&fed2);
  auto r = xdb.Query(
      "SELECT SUM(ABS(COALESCE(m.v, 0))) AS s FROM m, keys "
      "WHERE m.k = keys.k");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Oracle by hand: sum over i not divisible by 5 of |i - 25|.
  double want = 0;
  for (int i = 0; i < 50; ++i) {
    if (i % 5 != 0) want += std::abs(i - 25.0);
  }
  EXPECT_NEAR(r->result->row(0)[0].AsDouble(), want, 1e-9);
}

}  // namespace
}  // namespace xdb
