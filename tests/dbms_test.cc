#include <gtest/gtest.h>

#include "src/dbms/federation.h"
#include "src/dbms/server.h"

namespace xdb {
namespace {

/// Builds the paper's motivating-scenario federation (Table I): CDB holds
/// citizens, VDB holds vaccines + vaccinations, HDB holds measurements.
class VaccinationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    fed_.SetNetwork(Network::Lan({"cdb", "vdb", "hdb"}));
    cdb_ = fed_.AddServer("cdb", EngineProfile::Postgres());
    vdb_ = fed_.AddServer("vdb", EngineProfile::MariaDb());
    hdb_ = fed_.AddServer("hdb", EngineProfile::Postgres());

    auto citizen = std::make_shared<Table>(Schema({{"id", TypeId::kInt64},
                                                   {"name", TypeId::kString},
                                                   {"age", TypeId::kInt64},
                                                   {"address",
                                                    TypeId::kString}}));
    for (int i = 0; i < 100; ++i) {
      citizen->AppendRow({Value::Int64(i),
                          Value::String("citizen" + std::to_string(i)),
                          Value::Int64(18 + (i % 60)),
                          Value::String("addr" + std::to_string(i))});
    }
    ASSERT_TRUE(cdb_->CreateBaseTable("citizen", citizen).ok());

    auto vaccines = std::make_shared<Table>(
        Schema({{"id", TypeId::kInt64},
                {"name", TypeId::kString},
                {"type", TypeId::kString},
                {"manufacturer", TypeId::kString}}));
    const char* types[] = {"mrna", "vector", "protein"};
    for (int i = 0; i < 3; ++i) {
      vaccines->AppendRow({Value::Int64(i),
                           Value::String("vax" + std::to_string(i)),
                           Value::String(types[i]),
                           Value::String("maker" + std::to_string(i))});
    }
    ASSERT_TRUE(vdb_->CreateBaseTable("vaccines", vaccines).ok());

    auto vaccination = std::make_shared<Table>(
        Schema({{"c_id", TypeId::kInt64},
                {"v_id", TypeId::kInt64},
                {"vdate", TypeId::kDate}}));
    for (int i = 0; i < 100; ++i) {
      vaccination->AppendRow({Value::Int64(i), Value::Int64(i % 3),
                              Value::Date(DaysFromCivil(2021, 3, 1) + i)});
    }
    ASSERT_TRUE(vdb_->CreateBaseTable("vaccination", vaccination).ok());

    auto measurements = std::make_shared<Table>(
        Schema({{"id", TypeId::kInt64},
                {"c_id", TypeId::kInt64},
                {"mdate", TypeId::kDate},
                {"u_ml", TypeId::kDouble}}));
    for (int i = 0; i < 100; ++i) {
      measurements->AppendRow({Value::Int64(1000 + i), Value::Int64(i),
                               Value::Date(DaysFromCivil(2021, 6, 1) + i),
                               Value::Double(50.0 + i)});
    }
    ASSERT_TRUE(hdb_->CreateBaseTable("measurements", measurements).ok());
  }

  Federation fed_;
  DatabaseServer* cdb_ = nullptr;
  DatabaseServer* vdb_ = nullptr;
  DatabaseServer* hdb_ = nullptr;
};

TEST_F(VaccinationFixture, LocalSelect) {
  auto r = cdb_->ExecuteQuery("SELECT id, age FROM citizen WHERE age > 70");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (const auto& row : (*r)->rows()) {
    EXPECT_GT(row[1].int64_value(), 70);
  }
}

TEST_F(VaccinationFixture, LocalJoinAndAggregate) {
  auto r = vdb_->ExecuteQuery(
      "SELECT v.type, COUNT(*) AS n FROM vaccines v, vaccination vn "
      "WHERE v.id = vn.v_id GROUP BY v.type ORDER BY v.type");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->num_rows(), 3u);
  int64_t total = 0;
  for (const auto& row : (*r)->rows()) total += row[1].int64_value();
  EXPECT_EQ(total, 100);
}

TEST_F(VaccinationFixture, CreateAndQueryView) {
  ASSERT_TRUE(vdb_->ExecuteDdl(
                      "CREATE VIEW vvn AS SELECT v.type, vn.c_id "
                      "FROM vaccines v, vaccination vn WHERE v.id = vn.v_id")
                  .ok());
  auto r = vdb_->ExecuteQuery("SELECT * FROM vvn");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 100u);
  EXPECT_EQ((*r)->schema().num_fields(), 2u);
}

TEST_F(VaccinationFixture, ViewNameConflictFails) {
  ASSERT_TRUE(
      vdb_->ExecuteDdl("CREATE VIEW v1 AS SELECT id FROM vaccines").ok());
  auto st = vdb_->ExecuteDdl("CREATE VIEW v1 AS SELECT id FROM vaccines");
  EXPECT_TRUE(st.IsCatalogError());
}

TEST_F(VaccinationFixture, InvalidViewRejectedAtDdlTime) {
  auto st = vdb_->ExecuteDdl("CREATE VIEW bad AS SELECT nosuch FROM vaccines");
  EXPECT_FALSE(st.ok());
}

TEST_F(VaccinationFixture, ForeignTableFetch) {
  // The paper's SQL/MED building block: CDB reads VDB's view remotely.
  ASSERT_TRUE(vdb_->ExecuteDdl(
                      "CREATE VIEW vvn AS SELECT v.type, vn.c_id "
                      "FROM vaccines v, vaccination vn WHERE v.id = vn.v_id")
                  .ok());
  ASSERT_TRUE(
      cdb_->ExecuteDdl("CREATE FOREIGN TABLE vvn(type, c_id) SERVER vdb")
          .ok());
  auto r = cdb_->ExecuteQuery(
      "SELECT c.id, v.type FROM vvn v, citizen c WHERE c.id = v.c_id "
      "AND c.age > 20");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT((*r)->num_rows(), 0u);
  // Bytes must have crossed the vdb -> cdb link.
  EXPECT_GT(fed_.network().BytesInvolving("vdb"), 0.0);
}

TEST_F(VaccinationFixture, PaperExecutionCascade) {
  // Full Section V cascade: VVN on VDB, CVVN on CDB (over a foreign VVN),
  // CVVNM on HDB (over a foreign CVVN, explicitly materialised), then the
  // XDB query SELECT * FROM cvvnm on HDB.
  ASSERT_TRUE(vdb_->ExecuteDdl(
                      "CREATE VIEW vvn AS SELECT v.type, vn.c_id "
                      "FROM vaccines v, vaccination vn WHERE v.id = vn.v_id")
                  .ok());
  ASSERT_TRUE(
      cdb_->ExecuteDdl("CREATE FOREIGN TABLE vvn(type, c_id) SERVER vdb")
          .ok());
  ASSERT_TRUE(cdb_->ExecuteDdl(
                      "CREATE VIEW cvvn AS SELECT c.id, c.age, v.type "
                      "FROM vvn v, citizen c "
                      "WHERE c.id = v.c_id AND c.age > 20")
                  .ok());
  ASSERT_TRUE(hdb_->ExecuteDdl(
                      "CREATE FOREIGN TABLE cvvn(id, age, type) SERVER cdb")
                  .ok());
  ASSERT_TRUE(hdb_->ExecuteDdl("CREATE TABLE cvvn_m AS SELECT * FROM cvvn")
                  .ok());
  ASSERT_TRUE(hdb_->ExecuteDdl(
                      "CREATE VIEW cvvnm AS SELECT t.type, AVG(m.u_ml) AS "
                      "avg_uml FROM cvvn_m t, measurements m "
                      "WHERE t.id = m.c_id GROUP BY t.type")
                  .ok());

  fed_.BeginRun("hdb");
  auto r = hdb_->ExecuteQuery("SELECT * FROM cvvnm");
  RunTrace trace = fed_.FinishRun();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 3u);  // one row per vaccine type

  // The materialisation happened during CTAS (before the run); the run
  // itself only reads local tables on HDB.
  EXPECT_EQ(trace.transfers.size(), 0u);

  // Now run end-to-end in one recorded run, from fresh relations.
  ASSERT_TRUE(hdb_->ExecuteDdl("DROP TABLE cvvn_m").ok());
  ASSERT_TRUE(hdb_->ExecuteDdl("DROP VIEW cvvnm").ok());
  ASSERT_TRUE(hdb_->ExecuteDdl(
                      "CREATE VIEW cvvnm AS SELECT t.type, AVG(m.u_ml) AS "
                      "avg_uml FROM cvvn t, measurements m "
                      "WHERE t.id = m.c_id GROUP BY t.type")
                  .ok());
  fed_.BeginRun("hdb");
  auto r2 = hdb_->ExecuteQuery("SELECT * FROM cvvnm");
  RunTrace t2 = fed_.FinishRun();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ((*r2)->num_rows(), 3u);

  // The cascade has two transfers: vdb -> cdb (nested) and cdb -> hdb.
  ASSERT_EQ(t2.transfers.size(), 2u);
  const TransferRecord* outer = nullptr;
  const TransferRecord* inner = nullptr;
  for (const auto& tr : t2.transfers) {
    if (tr.dst == "hdb") outer = &tr;
    if (tr.dst == "cdb") inner = &tr;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->src, "cdb");
  EXPECT_EQ(inner->src, "vdb");
  // The inner fetch happened while serving the outer one.
  EXPECT_EQ(inner->parent_id, outer->id);
  EXPECT_GT(outer->rows, 0.0);
  EXPECT_GT(inner->bytes, 0.0);
  // Producer compute is attributed to the producing servers.
  EXPECT_GT(t2.per_server["vdb"].scan_rows, 0.0);
  EXPECT_GT(t2.per_server["cdb"].join_probe_rows +
                t2.per_server["cdb"].join_build_rows,
            0.0);
}

TEST_F(VaccinationFixture, ExplainEstimates) {
  auto r = cdb_->Explain("SELECT id FROM citizen WHERE age > 40");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->cost_seconds, 0.0);
  EXPECT_GT(r->est_rows, 0.0);
  EXPECT_LT(r->est_rows, 100.0);  // the filter is selective
}

TEST_F(VaccinationFixture, DescribeAndEstimateForeign) {
  ASSERT_TRUE(
      cdb_->ExecuteDdl("CREATE FOREIGN TABLE vax SERVER vdb "
                       "OPTIONS (table 'vaccines')")
          .ok());
  auto schema = cdb_->DescribeRelation("vax");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->num_fields(), 4u);
  auto rows = cdb_->EstimateRelationRows("vax");
  ASSERT_TRUE(rows.ok());
  EXPECT_DOUBLE_EQ(*rows, 3.0);
}

TEST_F(VaccinationFixture, ForeignTableColumnArityMismatch) {
  ASSERT_TRUE(cdb_->ExecuteDdl(
                      "CREATE FOREIGN TABLE vax(a, b) SERVER vdb "
                      "OPTIONS (table 'vaccines')")
                  .ok());
  auto r = cdb_->ExecuteQuery("SELECT * FROM vax");
  EXPECT_FALSE(r.ok());  // 2 declared columns vs 4 remote columns
}

TEST_F(VaccinationFixture, DropSemantics) {
  ASSERT_TRUE(
      vdb_->ExecuteDdl("CREATE VIEW v1 AS SELECT id FROM vaccines").ok());
  EXPECT_TRUE(vdb_->ExecuteDdl("DROP TABLE v1").IsCatalogError());
  EXPECT_TRUE(vdb_->ExecuteDdl("DROP VIEW v1").ok());
  EXPECT_TRUE(vdb_->ExecuteDdl("DROP VIEW v1").IsCatalogError());
  EXPECT_TRUE(vdb_->ExecuteDdl("DROP VIEW IF EXISTS v1").ok());
  // Base tables cannot be dropped as views.
  EXPECT_TRUE(vdb_->ExecuteDdl("DROP VIEW vaccines").IsCatalogError());
}

TEST_F(VaccinationFixture, TransientRelationTracking) {
  ASSERT_TRUE(
      vdb_->ExecuteDdl("CREATE VIEW v1 AS SELECT id FROM vaccines").ok());
  ASSERT_TRUE(cdb_->ExecuteDdl("CREATE FOREIGN TABLE v1 SERVER vdb").ok());
  EXPECT_EQ(vdb_->TransientRelations().size(), 1u);
  EXPECT_EQ(cdb_->TransientRelations().size(), 1u);
  EXPECT_EQ(hdb_->TransientRelations().size(), 0u);
}

TEST(NetworkTest, TopologyPresets) {
  Network lan = Network::Lan({"a", "b"});
  EXPECT_DOUBLE_EQ(lan.GetLink("a", "b").bandwidth, 125e6);

  Network onp = Network::OnPremiseWithCloud({"a", "b"}, "cloud");
  EXPECT_DOUBLE_EQ(onp.GetLink("a", "b").bandwidth, 125e6);
  EXPECT_DOUBLE_EQ(onp.GetLink("a", "cloud").bandwidth, 6.25e6);
  EXPECT_DOUBLE_EQ(onp.GetLink("cloud", "a").bandwidth, 6.25e6);

  Network geo = Network::GeoDistributed({"a", "b"}, "cloud");
  EXPECT_DOUBLE_EQ(geo.GetLink("a", "b").bandwidth, 12.5e6);
}

TEST(NetworkTest, TransferAccounting) {
  Network net = Network::Lan({"a", "b", "c"});
  net.RecordTransfer("a", "b", 1000, 2);
  net.RecordTransfer("b", "a", 500, 1);
  net.RecordTransfer("b", "c", 200, 1);
  EXPECT_DOUBLE_EQ(net.TotalBytes(), 1700.0);
  EXPECT_DOUBLE_EQ(net.BytesInvolving("a"), 1500.0);
  EXPECT_DOUBLE_EQ(net.BytesInvolving("c"), 200.0);
  net.ResetStats();
  EXPECT_DOUBLE_EQ(net.TotalBytes(), 0.0);
}

}  // namespace
}  // namespace xdb
