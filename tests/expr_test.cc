#include <gtest/gtest.h>

#include "src/common/str_util.h"
#include "src/expr/expr.h"
#include "src/sql/parser.h"

namespace xdb {
namespace {

Schema TestSchema() {
  return Schema({{"a", TypeId::kInt64},
                 {"b", TypeId::kDouble},
                 {"s", TypeId::kString},
                 {"d", TypeId::kDate}});
}

Row TestRow() {
  return {Value::Int64(10), Value::Double(2.5), Value::String("hello"),
          Value::Date(DaysFromCivil(1995, 3, 15))};
}

ExprPtr Parse(const std::string& text) {
  auto sel = sql::ParseSelect("SELECT " + text + " FROM t");
  EXPECT_TRUE(sel.ok()) << sel.status().ToString();
  return (*sel)->select_list[0];
}

Value Eval(const std::string& text) {
  auto bound = BindExpr(Parse(text), TestSchema());
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  return EvalExpr(**bound, TestRow());
}

TEST(ValueTest, DateRoundTrip) {
  for (const char* s : {"1992-01-01", "1995-03-15", "1998-12-31",
                        "2000-02-29"}) {
    auto days = ParseDate(s);
    ASSERT_TRUE(days.ok());
    EXPECT_EQ(FormatDate(*days), s);
  }
}

TEST(ValueTest, DateOrdering) {
  auto a = ParseDate("1994-01-01");
  auto b = ParseDate("1995-01-01");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(*a, *b);
  EXPECT_EQ(*b - *a, 365);
}

TEST(ValueTest, CompareNullsFirst) {
  EXPECT_LT(Value::Null(TypeId::kInt64).Compare(Value::Int64(0)), 0);
  EXPECT_EQ(Value::Null(TypeId::kInt64).Compare(Value::Null(TypeId::kString)),
            0);
}

TEST(ValueTest, CrossNumericCompare) {
  EXPECT_EQ(Value::Int64(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int64(3).Compare(Value::Double(3.5)), 0);
}

TEST(ValueTest, SqlLiteralQuoting) {
  EXPECT_EQ(Value::String("it's").ToSqlLiteral(), "'it''s'");
  EXPECT_EQ(Value::Date(DaysFromCivil(1995, 3, 15)).ToSqlLiteral(),
            "DATE '1995-03-15'");
  EXPECT_EQ(Value::Null(TypeId::kInt64).ToSqlLiteral(), "NULL");
}

TEST(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(Eval("a + 5").int64_value(), 15);
  EXPECT_EQ(Eval("a * 2 - 3").int64_value(), 17);
  EXPECT_DOUBLE_EQ(Eval("b * 4").double_value(), 10.0);
  EXPECT_DOUBLE_EQ(Eval("a / 4").double_value(), 2.5);
}

TEST(ExprEvalTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(Eval("a / 0").is_null());
}

TEST(ExprEvalTest, Comparisons) {
  EXPECT_TRUE(Eval("a = 10").bool_value());
  EXPECT_TRUE(Eval("a <> 11").bool_value());
  EXPECT_TRUE(Eval("b < 3").bool_value());
  EXPECT_TRUE(Eval("s = 'hello'").bool_value());
  EXPECT_TRUE(Eval("d < DATE '1996-01-01'").bool_value());
}

TEST(ExprEvalTest, BooleanLogic) {
  EXPECT_TRUE(Eval("a = 10 AND b > 2").bool_value());
  EXPECT_TRUE(Eval("a = 99 OR b > 2").bool_value());
  EXPECT_FALSE(Eval("NOT (a = 10)").bool_value());
}

TEST(ExprEvalTest, ThreeValuedLogic) {
  // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; NULL AND TRUE = NULL.
  EXPECT_FALSE(Eval("NULL AND FALSE").bool_value());
  EXPECT_FALSE(Eval("NULL AND FALSE").is_null());
  EXPECT_TRUE(Eval("NULL OR TRUE").bool_value());
  EXPECT_TRUE(Eval("NULL AND TRUE").is_null());
  EXPECT_TRUE(Eval("NULL = NULL").is_null());
}

TEST(ExprEvalTest, BetweenLikeIn) {
  EXPECT_TRUE(Eval("a BETWEEN 5 AND 15").bool_value());
  EXPECT_FALSE(Eval("a BETWEEN 11 AND 15").bool_value());
  EXPECT_TRUE(Eval("s LIKE 'he%'").bool_value());
  EXPECT_TRUE(Eval("s LIKE '%ell%'").bool_value());
  EXPECT_TRUE(Eval("s LIKE 'h_llo'").bool_value());
  EXPECT_FALSE(Eval("s LIKE 'x%'").bool_value());
  EXPECT_TRUE(Eval("a IN (1, 10, 100)").bool_value());
  EXPECT_FALSE(Eval("a IN (1, 2, 3)").bool_value());
  EXPECT_TRUE(Eval("a NOT IN (1, 2, 3)").bool_value());
}

TEST(ExprEvalTest, CaseWhen) {
  Value v = Eval(
      "CASE WHEN a < 5 THEN 'small' WHEN a < 50 THEN 'mid' "
      "ELSE 'large' END");
  EXPECT_EQ(v.string_value(), "mid");
  // No ELSE and no match yields NULL.
  EXPECT_TRUE(Eval("CASE WHEN a > 100 THEN 'big' END").is_null());
}

TEST(ExprEvalTest, ExtractYear) {
  EXPECT_EQ(Eval("EXTRACT(YEAR FROM d)").int64_value(), 1995);
}

TEST(ExprEvalTest, IsNull) {
  EXPECT_FALSE(Eval("a IS NULL").bool_value());
  EXPECT_TRUE(Eval("a IS NOT NULL").bool_value());
  EXPECT_TRUE(Eval("NULL IS NULL").bool_value());
}

TEST(ExprBindTest, UnknownColumnFails) {
  auto bound = BindExpr(Parse("nosuch + 1"), TestSchema());
  EXPECT_FALSE(bound.ok());
  EXPECT_TRUE(bound.status().IsBindError());
}

TEST(ExprBindTest, QualifierResolution) {
  Schema schema({{"id", TypeId::kInt64}, {"id", TypeId::kInt64}});
  std::vector<std::string> quals = {"c", "o"};
  auto e = Parse("o.id");
  auto bound = BindExpr(e, schema, &quals);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ((*bound)->column_index, 1);
  // Unqualified reference to a duplicated name is ambiguous.
  auto amb = BindExpr(Parse("id"), schema, &quals);
  EXPECT_FALSE(amb.ok());
}

TEST(ExprTest, StructuralEquality) {
  auto a = Parse("SUM(x + 1)");
  auto b = Parse("SUM(x + 1)");
  auto c = Parse("SUM(x + 2)");
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
}

TEST(ExprTest, ToSqlRoundTrip) {
  const char* exprs[] = {
      "((a + 5) * b)",
      "(a BETWEEN 1 AND 2)",
      "CASE WHEN (a > 1) THEN 'x' ELSE 'y' END",
      "(s LIKE '%x%')",
      "EXTRACT(YEAR FROM d)",
      "SUM((a * b))",
  };
  for (const char* text : exprs) {
    ExprPtr e = Parse(text);
    ExprPtr e2 = Parse(e->ToSql());
    EXPECT_TRUE(e->Equals(*e2)) << text << " vs " << e->ToSql();
  }
}

TEST(LikeMatchTest, Wildcards) {
  EXPECT_TRUE(LikeMatch("forest green metal", "%green%"));
  EXPECT_FALSE(LikeMatch("blue", "%green%"));
  EXPECT_TRUE(LikeMatch("abc", "abc"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("ab", "a%b"));
  EXPECT_TRUE(LikeMatch("aXXb", "a%b"));
}

}  // namespace
}  // namespace xdb
