// Property-based tests: randomly generated schemas, data and cross-database
// queries, executed by XDB and the three mediator baselines, checked
// against a single-database oracle. Invariants per random case:
//   (1) result equality (all four systems vs the oracle);
//   (2) no intermediate data touches the middleware node under XDB;
//   (3) Rule-4 pruning: every task is placed on a DBMS that stores one of
//       its inputs (or its producers');
//   (4) byte-accounting conservation: the network's counters equal the sum
//       of recorded transfers plus control traffic and the final result;
//   (5) all short-lived relations are dropped afterwards.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "src/dbms/server.h"
#include "src/mediator/mediator.h"
#include "src/xdb/xdb.h"

namespace xdb {
namespace {

struct GeneratedTable {
  std::string name;
  std::string server;
  TablePtr data;
  std::string join_col;   // every table has one joinable int column
  std::string value_col;  // and one numeric payload column
};

/// Deterministic scenario generated from a seed: 2-4 servers, 2-5 tables,
/// shared join-key domain so joins produce rows.
struct Scenario {
  std::vector<std::string> servers;
  std::vector<GeneratedTable> tables;
  std::string query;
};

Scenario Generate(uint32_t seed) {
  std::mt19937 rng(seed);
  auto rand_int = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };

  Scenario s;
  int num_servers = rand_int(2, 4);
  for (int i = 0; i < num_servers; ++i) {
    s.servers.push_back("srv" + std::to_string(i));
  }
  int num_tables = rand_int(2, 4);
  const int key_domain = rand_int(12, 40);
  for (int t = 0; t < num_tables; ++t) {
    GeneratedTable gt;
    gt.name = "t" + std::to_string(t);
    gt.server = s.servers[static_cast<size_t>(
        rand_int(0, num_servers - 1))];
    gt.join_col = "k" + std::to_string(t);
    gt.value_col = "v" + std::to_string(t);
    Schema schema({{gt.join_col, TypeId::kInt64},
                   {gt.value_col, TypeId::kInt64},
                   {"s" + std::to_string(t), TypeId::kString}});
    auto table = std::make_shared<Table>(schema);
    int rows = rand_int(20, 150);
    for (int r = 0; r < rows; ++r) {
      Row row = {Value::Int64(rand_int(0, key_domain)),
                 Value::Int64(rand_int(-50, 200)),
                 Value::String(rand_int(0, 1) ? "red" : "blue")};
      // Sprinkle some NULLs into the payload column.
      if (rand_int(0, 19) == 0) row[1] = Value::Null(TypeId::kInt64);
      table->AppendRow(std::move(row));
    }
    gt.data = table;
    s.tables.push_back(std::move(gt));
  }

  // Build a chain query joining consecutive tables on their key columns,
  // with random filters, random aggregation, ordering and limit.
  std::string sql = "SELECT ";
  bool aggregate = rand_int(0, 1) == 1;
  const auto& t0 = s.tables[0];
  if (aggregate) {
    sql += "a0." + t0.join_col + " AS g, COUNT(*) AS n, SUM(a0." +
           t0.value_col + ") AS total";
  } else {
    sql += "a0." + t0.join_col + ", a0." + t0.value_col;
    if (s.tables.size() > 1) {
      sql += ", a1." + s.tables[1].value_col;
    }
  }
  sql += " FROM ";
  for (size_t i = 0; i < s.tables.size(); ++i) {
    if (i) sql += ", ";
    sql += s.tables[i].name + " a" + std::to_string(i);
  }
  std::vector<std::string> preds;
  for (size_t i = 1; i < s.tables.size(); ++i) {
    preds.push_back("a" + std::to_string(i - 1) + "." +
                    s.tables[i - 1].join_col + " = a" + std::to_string(i) +
                    "." + s.tables[i].join_col);
  }
  if (rand_int(0, 1)) {
    preds.push_back("a0." + t0.value_col + " > " +
                    std::to_string(rand_int(-40, 100)));
  }
  if (rand_int(0, 2) == 0) {
    preds.push_back("a0.s0 = 'red'");
  }
  if (!preds.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < preds.size(); ++i) {
      if (i) sql += " AND ";
      sql += preds[i];
    }
  }
  if (aggregate) {
    sql += " GROUP BY g ORDER BY g";
  } else if (rand_int(0, 1)) {
    sql += " ORDER BY a0." + t0.join_col;
    if (rand_int(0, 1)) sql += " DESC";
    sql += " LIMIT " + std::to_string(rand_int(1, 50));
  }
  s.query = std::move(sql);
  return s;
}

std::vector<Row> Sorted(const Table& t) {
  std::vector<Row> rows = t.rows();
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
  return rows;
}

void ExpectSameRows(const Table& got, const Table& want,
                    const std::string& label) {
  ASSERT_EQ(got.num_rows(), want.num_rows()) << label;
  auto g = Sorted(got), w = Sorted(want);
  for (size_t i = 0; i < g.size(); ++i) {
    ASSERT_EQ(g[i].size(), w[i].size()) << label;
    for (size_t c = 0; c < g[i].size(); ++c) {
      EXPECT_EQ(g[i][c].Compare(w[i][c]), 0)
          << label << " row " << i << " col " << c << ": "
          << g[i][c].ToString() << " vs " << w[i][c].ToString();
    }
  }
}

class RandomFederatedQuery : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RandomFederatedQuery, AllSystemsMatchOracle) {
  Scenario s = Generate(GetParam());
  SCOPED_TRACE("query: " + s.query);

  // Oracle: everything on one server.
  Federation oracle_fed;
  auto* mono = oracle_fed.AddServer("mono", EngineProfile::Postgres());
  for (const auto& t : s.tables) {
    ASSERT_TRUE(mono->CreateBaseTable(t.name, t.data).ok());
  }
  auto want = mono->ExecuteQuery(s.query);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  // ORDER BY ... LIMIT results are only set-comparable if the sort key is
  // total; our generated LIMIT queries sort by a possibly-duplicated key,
  // so compare only cardinality-stable queries row-wise.
  bool has_limit = s.query.find("LIMIT") != std::string::npos;

  // Federated: tables distributed per the scenario.
  Federation fed;
  fed.SetNetwork(Network::Lan(s.servers));
  for (const auto& srv : s.servers) {
    fed.AddServer(srv, EngineProfile::Postgres());
  }
  for (const auto& t : s.tables) {
    ASSERT_TRUE(
        fed.GetServer(t.server)->CreateBaseTable(t.name, t.data).ok());
  }

  XdbSystem xdb(&fed);
  MediatorSystem garlic(&fed, MediatorKind::kGarlic);
  MediatorSystem presto(&fed, MediatorKind::kPresto);
  MediatorSystem sclera(&fed, MediatorKind::kSclera);

  // --- XDB + its invariants. ---
  fed.network().ResetStats();
  auto xr = xdb.Query(s.query);
  ASSERT_TRUE(xr.ok()) << xr.status().ToString();
  if (has_limit) {
    EXPECT_EQ(xr->result->num_rows(), (*want)->num_rows());
  } else {
    ExpectSameRows(*xr->result, **want, "xdb");
  }

  // (2) the middleware never carries intermediate data.
  for (const auto& tr : xr->trace.transfers) {
    EXPECT_NE(tr.src, "xdb");
    EXPECT_NE(tr.dst, "xdb");
  }

  // (3) Rule-4 pruning property.
  for (const auto& task : xr->plan.tasks) {
    auto dbs = task.expr->ReferencedDatabases();
    bool ok_placement =
        std::find(dbs.begin(), dbs.end(), task.server) != dbs.end();
    if (!ok_placement) {
      for (const auto* e : xr->plan.InEdges(task.id)) {
        if (xr->plan.FindTask(e->producer)->server == task.server) {
          ok_placement = true;
        }
      }
    }
    EXPECT_TRUE(ok_placement) << "task@" << task.server;
  }

  // (4) byte conservation: data transfers + control + result account for
  // everything the network saw.
  double network_total = fed.network().TotalBytes();
  double data_bytes = xr->trace.TotalTransferredBytes();
  double result_bytes = static_cast<double>(xr->result->SerializedSize());
  EXPECT_GE(network_total + 1e-6, data_bytes + result_bytes);
  // Control messages are small: the non-data remainder is bounded by
  // 512 bytes per recorded round trip (+ the per-fetch request lines).
  double remainder = network_total - data_bytes - result_bytes;
  double roundtrips = static_cast<double>(xr->metadata_roundtrips +
                                          xr->consultations +
                                          xr->ddl_statements + 16) +
                      static_cast<double>(xr->trace.transfers.size());
  EXPECT_LE(remainder, 512.0 * roundtrips);

  // (5) cleanup left nothing behind.
  for (const auto& srv : s.servers) {
    EXPECT_TRUE(fed.GetServer(srv)->TransientRelations().empty()) << srv;
  }

  // --- the mediators agree with the oracle too. ---
  for (auto* mediator : {&garlic, &presto, &sclera}) {
    auto mr = mediator->Query(s.query);
    ASSERT_TRUE(mr.ok()) << MediatorKindToString(mediator->kind()) << ": "
                         << mr.status().ToString();
    if (has_limit) {
      EXPECT_EQ(mr->result->num_rows(), (*want)->num_rows());
    } else {
      ExpectSameRows(*mr->result, **want,
                     MediatorKindToString(mediator->kind()));
    }
    // MW property: every transfer lands in the mediator.
    for (const auto& tr : mr->trace.transfers) {
      EXPECT_EQ(tr.dst, mediator->mediator_name());
    }
  }

  // XDB must never move more bytes between DBMSes than the MW systems pull
  // into the mediator... not guaranteed row-by-row in theory, but holds for
  // chain joins with pushdown: check the weaker invariant that XDB's data
  // volume is bounded by Sclera's (which materialises every input).
  auto sr = sclera.Query(s.query);
  ASSERT_TRUE(sr.ok());
  EXPECT_LE(xr->trace.TotalTransferredRows(),
            sr->trace.TotalTransferredRows() + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFederatedQuery,
                         ::testing::Range(1u, 41u));

}  // namespace
}  // namespace xdb
