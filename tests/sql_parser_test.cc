#include <gtest/gtest.h>

#include "src/sql/lexer.h"
#include "src/sql/parser.h"

namespace xdb {
namespace sql {
namespace {

TEST(LexerTest, BasicTokens) {
  auto r = Tokenize("SELECT a, b FROM t WHERE a >= 1.5 AND b <> 'x''y'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& toks = *r;
  EXPECT_EQ(toks[0].text, "SELECT");
  EXPECT_EQ(toks[1].text, "a");
  EXPECT_EQ(toks.back().type, TokenType::kEnd);
}

TEST(LexerTest, StringEscapes) {
  auto r = Tokenize("'it''s'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].text, "it's");
}

TEST(LexerTest, LineComments) {
  auto r = Tokenize("SELECT 1 -- comment\nFROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r).size(), 5u);  // SELECT 1 FROM t <end>
}

TEST(LexerTest, UnterminatedStringFails) {
  auto r = Tokenize("SELECT 'oops");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(ParserTest, SimpleSelect) {
  auto r = ParseSelect("SELECT a, b FROM t WHERE a > 10");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto sel = *r;
  EXPECT_EQ(sel->select_list.size(), 2u);
  EXPECT_EQ(sel->from.size(), 1u);
  EXPECT_EQ(sel->from[0].table, "t");
  ASSERT_NE(sel->where, nullptr);
  EXPECT_EQ(sel->where->ToSql(), "(a > 10)");
}

TEST(ParserTest, SelectStar) {
  auto r = ParseSelect("SELECT * FROM cvvnm");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE((*r)->select_star);
}

TEST(ParserTest, CrossDatabaseQualifiers) {
  auto r = ParseSelect(
      "SELECT c.id FROM cdb.citizen c, vdb.vaccination vn "
      "WHERE c.id = vn.c_id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto sel = *r;
  EXPECT_EQ(sel->from[0].db, "cdb");
  EXPECT_EQ(sel->from[0].table, "citizen");
  EXPECT_EQ(sel->from[0].EffectiveAlias(), "c");
  EXPECT_EQ(sel->from[1].db, "vdb");
}

TEST(ParserTest, PaperExampleQuery) {
  // The motivating query of Section II-A (Figure 3).
  auto r = ParseSelect(
      "SELECT v.type, AVG(m.u_ml), "
      "  case when c.age between 20 and 30 then '20-30' "
      "       when c.age between 30 and 40 then '30-40' "
      "       else '40+' end as 'age_group' "
      "FROM cdb.citizen c, vdb.vaccines v, vdb.vaccination vn, "
      "     hdb.measurements m "
      "WHERE c.id = vn.c_id AND c.id = m.c_id AND v.id = vn.v_id "
      "  AND c.age > 20 "
      "GROUP BY age_group, v.type");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto sel = *r;
  EXPECT_EQ(sel->select_list.size(), 3u);
  EXPECT_EQ(sel->select_list[2]->alias, "age_group");
  EXPECT_EQ(sel->from.size(), 4u);
  EXPECT_EQ(sel->group_by.size(), 2u);
  EXPECT_TRUE(sel->select_list[1]->ContainsAggregate());
}

TEST(ParserTest, GroupOrderLimit) {
  auto r = ParseSelect(
      "SELECT a, SUM(b) AS s FROM t GROUP BY a ORDER BY s DESC, a LIMIT 10");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto sel = *r;
  EXPECT_EQ(sel->group_by.size(), 1u);
  ASSERT_EQ(sel->order_by.size(), 2u);
  EXPECT_TRUE(sel->order_by[0].descending);
  EXPECT_FALSE(sel->order_by[1].descending);
  EXPECT_EQ(sel->limit, 10);
}

TEST(ParserTest, DateLiteralAndExtract) {
  auto r = ParseSelect(
      "SELECT EXTRACT(YEAR FROM o_orderdate) FROM orders "
      "WHERE o_orderdate < DATE '1995-03-15'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto sel = *r;
  EXPECT_EQ(sel->select_list[0]->function_name, "extract_year");
}

TEST(ParserTest, InListAndLike) {
  auto r = ParseSelect(
      "SELECT a FROM t WHERE a IN (1, 2, 3) AND b LIKE '%green%'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(ParserTest, CreateView) {
  auto r = ParseStatement(
      "CREATE VIEW vvn AS SELECT v.type, vn.c_id FROM vaccines v, "
      "vaccination vn WHERE v.id = vn.v_id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->kind, StatementKind::kCreateView);
  EXPECT_EQ((*r)->relation_name, "vvn");
  ASSERT_NE((*r)->select, nullptr);
}

TEST(ParserTest, CreateForeignTable) {
  // The paper's DDL 2-1 (Figure 7).
  auto r = ParseStatement("CREATE FOREIGN TABLE vvn(type, c_id) SERVER vdb");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->kind, StatementKind::kCreateForeignTable);
  EXPECT_EQ((*r)->server, "vdb");
  EXPECT_EQ((*r)->column_names.size(), 2u);
  EXPECT_EQ((*r)->remote_relation, "vvn");
}

TEST(ParserTest, CreateForeignTableWithOptions) {
  auto r = ParseStatement(
      "CREATE FOREIGN TABLE ft SERVER db2 OPTIONS (table 'remote_rel')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->remote_relation, "remote_rel");
}

TEST(ParserTest, CreateTableAs) {
  auto r = ParseStatement("CREATE TABLE mat AS SELECT * FROM ft");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->kind, StatementKind::kCreateTableAs);
}

TEST(ParserTest, DropStatements) {
  auto r1 = ParseStatement("DROP VIEW v1");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ((*r1)->relation_kind, RelationKind::kView);
  auto r2 = ParseStatement("DROP FOREIGN TABLE IF EXISTS ft");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE((*r2)->if_exists);
  EXPECT_EQ((*r2)->relation_kind, RelationKind::kForeignTable);
}

TEST(ParserTest, RoundTripToSql) {
  const std::string q =
      "SELECT a, SUM(b) AS s FROM db1.t AS x WHERE (a > 10) "
      "GROUP BY a ORDER BY s DESC LIMIT 5";
  auto r = ParseSelect(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Reparse of the printed SQL must succeed and print identically.
  auto r2 = ParseSelect((*r)->ToSql());
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ((*r)->ToSql(), (*r2)->ToSql());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseStatement("CREATE VIEW v").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t extra garbage ,").ok());
}

}  // namespace
}  // namespace sql
}  // namespace xdb
